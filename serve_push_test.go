package flash

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// TestServerVerdictPush drives the wire-level subscription end to end
// over TCP: an agent subscribes to a check, other agents stream FIBs,
// and verdict changes arrive as pushed frames on the subscriber's
// connection.
func TestServerVerdictPush(t *testing.T) {
	sys := reachSys(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, sys, func(Result) {})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		<-done
	}()

	watcher, err := DialAgent(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	if err := watcher.Subscribe("a-to-d"); err != nil {
		t.Fatal(err)
	}
	// The subscribe frame travels on its own connection: wait until the
	// server has registered it before feeding, or the first verdict could
	// publish to an empty bus.
	deadline := time.Now().Add(5 * time.Second)
	for sys.StatsSnapshot().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered server-side")
		}
		time.Sleep(2 * time.Millisecond)
	}

	feeder, err := DialAgent(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer feeder.Close()
	feed := func(epoch string, bAction Action) {
		t.Helper()
		var e int
		if _, err := fmt.Sscanf(epoch, "e%d", &e); err != nil {
			t.Fatal(err)
		}
		actions := []Action{Forward(1), bAction, Forward(3), Forward(4)}
		for d, action := range actions {
			u := wildcard(int64(10*e)+int64(d), action)
			u.Rule.Pri = int32(e)
			if err := feeder.Send(Msg{
				Device: DeviceID(d), Epoch: epoch, Updates: []Update{u},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	recv := func() VerdictEvent {
		t.Helper()
		select {
		case wev := <-watcher.Verdicts():
			return VerdictFromWire(wev)
		case <-time.After(5 * time.Second):
			t.Fatal("no pushed verdict within 5s")
		}
		panic("unreachable")
	}

	feed("e1", Forward(2))
	ev := recv()
	if ev.Spec != "a-to-d" || ev.Verdict != VerdictSatisfied || !ev.First {
		t.Fatalf("pushed event = %+v, want first satisfied a-to-d", ev)
	}
	if ev.Epoch != "e1" {
		t.Fatalf("pushed epoch = %q", ev.Epoch)
	}

	feed("e2", Drop)
	ev = recv()
	if ev.Verdict != VerdictUnsatisfied || ev.PrevVerdict != VerdictSatisfied || ev.First {
		t.Fatalf("pushed flip = %+v, want unsatisfied with prev satisfied", ev)
	}
	if watcher.VerdictDrops() != 0 {
		t.Fatalf("watcher dropped %d events", watcher.VerdictDrops())
	}
}

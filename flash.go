// Package flash is a Go implementation of Flash (SIGCOMM 2022): fast,
// consistent data plane verification for large-scale network settings.
//
// Flash combines two techniques:
//
//   - Fast inverse model transformation (Fast IMT / MR2): blocks of native
//     FIB rule updates are decomposed into atomic conflict-free
//     overwrites, aggregated by action and by predicate, and applied to an
//     equivalence-class inverse model in one cross product — orders of
//     magnitude faster than per-update processing under update storms.
//   - Consistent, efficient early detection (CE2D): updates are tagged
//     with epochs identifying the network state they were computed from;
//     per-epoch verifiers detect violations (unreachable requirements,
//     forwarding loops) from partial information, without waiting for
//     long-tail stragglers and without reporting transient errors.
//
// The two entry points mirror the paper's two deployment modes:
//
//   - ModelBuilder is the throughput-oriented offline/bootstrap path: it
//     partitions the header space into subspaces, runs one Fast IMT
//     transformer per subspace in parallel, and answers model queries
//     (Table 3 / Figure 6 of the paper).
//   - System is the online path: a CE2D dispatcher plus per-epoch,
//     per-subspace verifiers fed by epoch-tagged agent messages, over TCP
//     (package wire) or in process (Figure 1 of the paper).
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure.
package flash

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atoms"
	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/deltanet"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/obs"
	"repro/internal/pat"
	"repro/internal/pred"
	"repro/internal/reach"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/topo"
	"repro/internal/wire"
)

// Re-exported core types, so that library users interact with a single
// import path.
type (
	// Action is a forwarding action (fib.Forward, fib.Drop, fib.None).
	Action = fib.Action
	// DeviceID identifies a device/switch.
	DeviceID = fib.DeviceID
	// Update is a native rule update in symbolic (wire) form.
	Update = wire.Update
	// Rule is a symbolic forwarding rule.
	Rule = wire.Rule
	// Msg is an epoch-tagged update block.
	Msg = wire.Msg
	// MatchDesc describes a rule match symbolically.
	MatchDesc = fib.MatchDesc
	// FieldMatch is one field constraint of a MatchDesc.
	FieldMatch = fib.FieldMatch
	// Graph is a network topology.
	Graph = topo.Graph
	// Layout declares the packet header fields.
	Layout = hs.Layout
	// Verdict is a reachability check outcome.
	Verdict = reach.Verdict
	// LoopResult is a loop check outcome.
	LoopResult = ce2d.LoopResult
)

// Re-exported constants.
const (
	Drop = fib.Drop
	None = fib.None

	VerdictUnknown     = reach.Unknown
	VerdictSatisfied   = reach.Satisfied
	VerdictUnsatisfied = reach.Unsatisfied

	LoopUnknown = ce2d.LoopUnknown
	LoopFound   = ce2d.LoopFound
	LoopFree    = ce2d.LoopFree
)

// Forward returns the action "forward to device d". Devices beyond the
// topology's node count denote delivery (hosts / external ports).
func Forward(d DeviceID) Action { return fib.Forward(d) }

// PredicateMode selects the per-subspace predicate representation
// strategy (see Config.PredicateMode).
type PredicateMode uint8

const (
	// PredicateBDD runs every subspace on its own BDD engine — the
	// default, and the only representation before the hybrid engine.
	PredicateBDD PredicateMode = iota
	// PredicateHybrid starts each subspace on a Delta-net-style atom
	// engine (sorted disjoint interval sets over the header line) while
	// every installed rule is a pure prefix interval, and converts the
	// subspace's whole state to a BDD engine — one way, never back — on
	// the first rule the atom representation cannot hold profitably
	// (ternary or range matches, multi-field constraints, interval
	// explosions). Prefix-only workloads stay in the atom regime where
	// interval merges beat BDD node walks (Delta-net, NSDI'17; the
	// paper's §5.1 observation); anything richer transparently lands on
	// the BDD path with identical verdicts.
	PredicateHybrid
)

// String returns the flag-friendly name ("bdd", "hybrid").
func (m PredicateMode) String() string {
	switch m {
	case PredicateBDD:
		return "bdd"
	case PredicateHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("PredicateMode(%d)", uint8(m))
}

// ParsePredicateMode parses a flag value produced by
// PredicateMode.String.
func ParsePredicateMode(s string) (PredicateMode, error) {
	switch s {
	case "bdd", "":
		return PredicateBDD, nil
	case "hybrid":
		return PredicateHybrid, nil
	}
	return PredicateBDD, fmt.Errorf("flash: unknown predicate mode %q (want bdd or hybrid)", s)
}

// CheckKind selects what a CheckSpec verifies.
type CheckKind uint8

// Check kinds.
const (
	// CheckReach verifies a path regular expression requirement. An
	// expression of the form "cover P" automatically becomes a coverage
	// check.
	CheckReach CheckKind = iota
	// CheckLoopFree verifies loop freedom.
	CheckLoopFree
	// CheckAnycast verifies that exactly one of Dests is reached.
	CheckAnycast
	// CheckMulticast verifies that all of Dests are reached.
	CheckMulticast
	// CheckCoverage verifies that every path matching Expr exists.
	CheckCoverage
)

// CheckSpec declares one verification requirement symbolically, so it can
// be compiled into every subspace verifier's own BDD engine.
type CheckSpec struct {
	Name string
	Kind CheckKind
	// Space restricts the packet space (nil = all packets).
	Space MatchDesc
	// Expr is the path regular expression (CheckReach); see package spec
	// for the grammar, e.g. "S .* [W|Y] .* D".
	Expr string
	// Sources are the entry devices by node name (CheckReach).
	Sources []string
	// Dest names the destination-owner device matched by the '>' hop and
	// required for delivery (CheckReach, CheckCoverage). Empty means any
	// device may deliver.
	Dest string
	// Dests name the destination group (CheckAnycast, CheckMulticast).
	Dests []string
	// ExitNodes names devices that can deliver packets while
	// unsynchronized (CheckLoopFree); nil means all (conservative).
	ExitNodes []string
}

// Result is one deterministic early-detection result.
type Result struct {
	Subspace int
	Epoch    string
	Check    string
	// Witness is one concrete header (field values in layout order) from
	// the equivalence class the result applies to.
	Witness []uint64
	Verdict Verdict    // CheckReach results
	Loop    LoopResult // CheckLoopFree results
}

func (r Result) String() string {
	out := fmt.Sprintf("[%s] check %q subspace %d witness %v: ", r.Epoch, r.Check, r.Subspace, r.Witness)
	if r.Loop != ce2d.LoopUnknown {
		return out + r.Loop.String()
	}
	return out + r.Verdict.String()
}

// Config configures a System or ModelBuilder.
//
// Config remains fully supported, but new code should prefer the
// functional options (see Option): a Config value can be passed directly
// to NewSystem/NewModelBuilder or bridged explicitly with WithConfig and
// refined with further options.
type Config struct {
	Topo   *Graph
	Layout *Layout
	// Subspaces partitions the destination field's space into this many
	// prefix subspaces, each verified by its own engine (§3.4). Must be
	// a power of two; 0 or 1 disables partitioning.
	Subspaces int
	// SubspaceField is the field partitioned (default "dst").
	SubspaceField string
	// SubspaceSet restricts a System to the listed global subspace
	// indices (out of Subspaces): only those workers are instantiated,
	// and Result.Subspace, fingerprints, and checkpoints keep the global
	// numbering, so disjoint sets running in separate processes compose
	// into exactly the answer one full-set System would give. Empty (the
	// default) instantiates every subspace. The shard coordinator
	// (internal/shard) uses this to split one verification problem
	// across replicas; ModelBuilder ignores it.
	SubspaceSet []int
	// Checks are the requirements verified by a System (ignored by
	// ModelBuilder).
	Checks []CheckSpec
	// PerUpdate forces per-update processing (the APKeep-style special
	// case; used by the ablation benchmarks).
	PerUpdate bool
	// PredicateMode selects the predicate representation. PredicateBDD
	// (the default) runs every subspace on a BDD engine; PredicateHybrid
	// starts each subspace on the Delta-net atom engine and cuts it over
	// to a BDD — one way — on the first rule atoms cannot hold. The
	// choice never changes models or verdicts, only which engine computes
	// them; the differential suite pins that equivalence.
	PredicateMode PredicateMode
	// Workers bounds the number of scheduler workers executing subspace
	// tasks. Subspaces are scheduled by work stealing: each subspace is a
	// serialized "home" whose pending blocks one worker drains at a time,
	// and idle workers steal queued subspaces from the busiest peer, so a
	// hot subspace no longer pins the rest of the epoch behind it.
	// 0 (the default) selects GOMAXPROCS; the effective count is capped
	// at the subspace count.
	Workers int
	// Batch bounds Fast IMT batching in native updates: ModelBuilder
	// workers coalesce consecutive same-device blocks into one MR2 pass,
	// and Pipeline gulps consecutive same-epoch messages into one
	// FeedBatch. <= 1 disables batching. Batches flush at epoch
	// boundaries and before every model query, and CE2D emits events only
	// when a device synchronizes an epoch, so batching never changes
	// verdicts — only amortizes work.
	Batch int
	// MemoryBudget bounds each subspace worker's live BDD node count.
	// After a worker applies a block (or feeds a message batch, for a
	// System), an engine grown past the budget runs an in-engine
	// mark-and-sweep GC; a ModelBuilder worker additionally falls back
	// to a full Compact rotation when collection alone cannot get back
	// under the budget. <= 0 (the default) disables automatic
	// reclamation. The budget is per worker, so total model memory
	// scales with the subspace count.
	MemoryBudget int
	// Succ optionally restricts the potential-path successor sets used by
	// reachability checks (e.g. to directed links, as in the paper's
	// Figure 3): a tighter set yields earlier detection, any superset of
	// the real forwarding stays consistent. Nil uses the topology's
	// undirected adjacency.
	Succ func(DeviceID) []DeviceID
	// Metrics optionally attaches the observability layer; every
	// subsystem publishes under its own sub-registry (see WithMetrics).
	// Nil keeps all hot paths at their zero-cost no-op default.
	Metrics *obs.Registry
	// Logger receives operational messages from Pipeline/Server
	// components (see WithLogger). Nil silences them.
	Logger *log.Logger
}

func (c *Config) subspacePreds(s *hs.Space) []bdd.Ref {
	n := c.Subspaces
	if n <= 1 {
		return []bdd.Ref{bdd.True}
	}
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	if 1<<uint(bits) != n {
		panic(fmt.Sprintf("flash: subspace count %d is not a power of two", n))
	}
	field := c.SubspaceField
	if field == "" {
		field = "dst"
	}
	width := c.Layout.FieldBits(field)
	out := make([]bdd.Ref, n)
	for i := 0; i < n; i++ {
		out[i] = s.Prefix(field, uint64(i)<<uint(width-bits), bits)
	}
	return out
}

// subspaceDesc is the symbolic form of subspace i's universe predicate:
// nil (match-all) when partitioning is off, else the same prefix
// constraint subspacePreds compiles on a BDD space — which is what lets
// an atom-mode worker mint its universe without any BDD engine.
func (c *Config) subspaceDesc(i int) fib.MatchDesc {
	n := c.Subspaces
	if n <= 1 {
		return nil
	}
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	field := c.SubspaceField
	if field == "" {
		field = "dst"
	}
	width := c.Layout.FieldBits(field)
	return fib.MatchDesc{{Field: field, Kind: fib.MatchPrefix, Value: uint64(i) << uint(width-bits), Len: bits}}
}

// atomIntervalBound caps how many disjoint intervals one compiled
// predicate may hold before the atom representation is judged
// unprofitable: the linear merges that make atoms fast on prefix
// workloads degrade past a few thousand intervals per set, while a BDD
// holds the same predicate in logarithmic depth. Exceeding the bound is
// a cutover trigger, not an error.
const atomIntervalBound = 1024

// atomCompile compiles a match descriptor on the atom engine,
// reporting ok=false when the descriptor leaves the atom regime: a
// non-prefix kind, a multi-field constraint, an interval explosion, or
// a compile past atomIntervalBound. A malformed descriptor panics like
// hs.Space.Compile would, keeping the two paths' failure behavior
// aligned.
func atomCompile(am *atoms.Engine, lay *hs.Layout, desc fib.MatchDesc) (bdd.Ref, bool) {
	if len(desc) > 1 {
		return bdd.False, false
	}
	for _, f := range desc {
		if f.Kind != fib.MatchPrefix {
			return bdd.False, false
		}
	}
	r, err := am.Compile(lay, desc)
	if err != nil {
		if errors.Is(err, deltanet.ErrIntervalExplosion) {
			return bdd.False, false
		}
		panic(fmt.Sprintf("flash: bad match descriptor %v: %v", desc, err))
	}
	if len(am.Intervals(r)) > atomIntervalBound {
		return bdd.False, false
	}
	return r, true
}

// newAtomSubspace tries to start subspace idx on the atom engine:
// possible when the header line fits the 63-bit atom universe and the
// subspace predicate itself is a pure prefix interval set.
func newAtomSubspace(cfg Config, idx int) (*atoms.Engine, bdd.Ref, bool) {
	if cfg.Layout.TotalBits() > atoms.MaxVars {
		return nil, bdd.False, false
	}
	am := atoms.New(cfg.Layout.TotalBits())
	uni, ok := atomCompile(am, cfg.Layout, cfg.subspaceDesc(idx))
	if !ok {
		return nil, bdd.False, false
	}
	return am, uni, true
}

// atomConvert rebuilds every live atom ref on a fresh BDD space and
// returns the conversion Remap — the cutover's core. Yielded refs map
// to their BDD equivalents (an OR of prefix cubes per interval);
// everything un-yielded is dead, so a held-but-not-enumerated Ref
// panics in Apply exactly as it would after a GC pass. Terminals map to
// terminals because both engines pin False=0, True=1.
func atomConvert(am *atoms.Engine, space *hs.Space, roots func(func(bdd.Ref))) bdd.Remap {
	remap := make(bdd.Remap, am.NumRefs())
	for i := range remap {
		remap[i] = -1
	}
	remap[bdd.False], remap[bdd.True] = bdd.False, bdd.True
	roots(func(r bdd.Ref) {
		if remap[r] >= 0 {
			return
		}
		nr := bdd.False
		for _, iv := range am.Intervals(r) {
			nr = space.E.Or(nr, space.LineRange(iv.Lo, iv.Hi))
		}
		remap[r] = nr
	})
	return remap
}

// subspaceSet resolves the global subspace indices a System
// instantiates: the validated, sorted, deduplicated SubspaceSet when
// non-empty, else all of [0, n).
func (c *Config) subspaceSet(n int) ([]int, error) {
	if len(c.SubspaceSet) == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	seen := make(map[int]bool, len(c.SubspaceSet))
	out := make([]int, 0, len(c.SubspaceSet))
	for _, i := range c.SubspaceSet {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("flash: subspace set index %d out of range [0,%d)", i, n)
		}
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}

// numSubspaces is the global partition count (1 when partitioning is
// disabled) — the denominator SubspaceSet indices refer to.
func (c *Config) numSubspaces() int {
	if c.Subspaces <= 1 {
		return 1
	}
	return c.Subspaces
}

// ---- ModelBuilder: offline / bootstrap model construction ----

// ModelBuilder maintains the inverse model of a data plane with Fast IMT,
// partitioned across subspace workers that are executed by a
// work-stealing scheduler (subspace i is scheduler home i, so blocks
// for one subspace stay serialized and in order while idle workers
// steal queued subspaces from busy peers).
type ModelBuilder struct {
	cfg     Config
	workers []*mbWorker
	pool    *sched.Pool

	// dispatchMu serializes Submit/Wait barriers so concurrent
	// ApplyBlock/Flush callers cannot interleave their dispatches.
	dispatchMu sync.Mutex //flashvet:lockrank 10
}

// mbWorker owns one subspace: its active engine is eng (the BDD engine
// behind space, or the atom engine am while the subspace runs in the
// hybrid atom regime), and universe is a ref minted by that engine.
//
//flashvet:allow bddref — universe is owned by eng, the worker's single engine
type mbWorker struct {
	mu  sync.Mutex //flashvet:lockrank 20
	cfg Config
	idx int // global subspace index
	// eng is the active predicate engine. Exactly one of space/am backs
	// it: space.E in BDD mode (am nil), am in atom mode (space nil).
	eng       pred.Engine
	space     *hs.Space
	am        *atoms.Engine
	universe  bdd.Ref
	transform *imt.Transformer
	batch     *imt.Batcher  // nil unless cfg.Batch > 1
	metrics   *obs.Registry // nil when uninstrumented
	// cutovers counts one-way atom→BDD conversions (0 or 1).
	cutovers int

	// base carries the monotone counters of engines this worker has
	// rotated away (Compact and the hybrid cutover discard the engine,
	// not its history), so PredicateOps/CacheStats/GC totals never move
	// backwards.
	base engineCounterBase
	// compactFloor remembers the node count a Compact rotation reached
	// while still above the budget. While the floor exceeds the budget a
	// further rotation cannot help (the live state itself is too big),
	// so the worker keeps the cheap GC-only sawtooth instead of rotating
	// after every block. Reset once the engine fits the budget again.
	compactFloor int
	gcPauseNs    *obs.Histogram // stop-the-world GC pause (nil = off)
}

// engineCounterBase accumulates the monotone activity counters of
// discarded engines.
type engineCounterBase struct {
	ops, cacheHits, cacheMisses, cacheEvictions uint64
	gcRuns, gcReclaimed                         uint64
}

// absorb folds a to-be-discarded engine's counters into the base.
func (b *engineCounterBase) absorb(e pred.Engine) {
	b.ops += e.Ops()
	h, m := e.CacheStats()
	b.cacheHits += h
	b.cacheMisses += m
	b.cacheEvictions += e.CacheEvictions()
	b.gcRuns += e.GCRuns()
	b.gcReclaimed += e.ReclaimedNodes()
}

// Roots enumerates every BDD ref the worker's state holds: the subspace
// universe, the header-space variable cache, the Fast IMT transformer
// (EC model + device tables), and any buffered batch updates. It is the
// worker's GC root set.
func (w *mbWorker) Roots(yield func(bdd.Ref)) {
	yield(w.universe)
	if w.space != nil {
		w.space.Roots(yield)
	}
	w.transform.Roots(yield)
	if w.batch != nil {
		w.batch.Roots(yield)
	}
}

// gcLocked runs a mark-and-sweep pass on the worker's engine and
// rewrites all held refs through the remap. Callers hold w.mu.
func (w *mbWorker) gcLocked() bdd.GCStats {
	start := time.Now()
	remap, st := w.eng.GC(w.Roots)
	w.universe = remap.Apply(w.universe)
	if w.space != nil {
		w.space.RemapRefs(remap)
	}
	w.transform.RemapRefs(remap)
	if w.batch != nil {
		w.batch.RemapRefs(remap)
	}
	w.gcPauseNs.Observe(time.Since(start))
	return st
}

// compileLocked compiles a rule match on the active engine,
// intersected with the subspace universe. In atom mode a descriptor
// the atom representation cannot hold triggers the one-way cutover to
// BDD first, then compiles there. Callers hold w.mu.
func (w *mbWorker) compileLocked(desc fib.MatchDesc) bdd.Ref {
	if w.am != nil {
		if r, ok := atomCompile(w.am, w.cfg.Layout, desc); ok {
			return w.am.And(r, w.universe)
		}
		w.cutoverLocked()
	}
	return w.space.E.And(w.space.Compile(desc), w.universe)
}

// cutoverLocked converts the subspace's whole atom state to a fresh
// BDD engine — the hybrid guard's one-way exit. Every live atom ref
// (the Roots set) is rebuilt as an OR of prefix cubes, held refs are
// rewritten through the conversion remap, the Fast IMT transformer is
// rebound, and counter history survives via base exactly as it does
// across a Compact rotation. Callers hold w.mu.
func (w *mbWorker) cutoverLocked() {
	space := hs.NewSpace(w.cfg.Layout)
	remap := atomConvert(w.am, space, w.Roots)
	w.base.absorb(w.am)
	w.universe = remap.Apply(w.universe)
	w.transform.RemapRefs(remap)
	w.transform.E = space.E
	if w.batch != nil {
		w.batch.RemapRefs(remap)
	}
	w.space = space
	w.eng = space.E
	w.am = nil
	w.cutovers++
}

// maybeReclaimLocked enforces the memory budget after applied work:
// first the cheap in-engine GC, then — only when the live state itself
// exceeds the budget — the full Compact rotation, with compactFloor
// guarding against rotating on every block once even a rotation cannot
// fit the budget. Callers hold w.mu.
func (w *mbWorker) maybeReclaimLocked() error {
	budget := w.cfg.MemoryBudget
	if budget <= 0 || w.eng.NumNodes() <= budget {
		return nil
	}
	w.gcLocked()
	if w.am != nil {
		// Atom GC is already complete reclamation: the engine holds
		// exactly the live interval sets afterwards, and there is no
		// shared structure a rotation could deduplicate further.
		return nil
	}
	if w.eng.NumNodes() <= budget {
		w.compactFloor = 0
		return nil
	}
	if w.compactFloor > budget {
		return nil
	}
	if err := w.compactLocked(); err != nil {
		return err
	}
	if n := w.eng.NumNodes(); n > budget {
		w.compactFloor = n
	} else {
		w.compactFloor = 0
	}
	return nil
}

// NewModelBuilder creates a builder from the given options. A bare
// Config value is accepted as an option (the original struct API), so
// both styles work:
//
//	NewModelBuilder(Config{Topo: g, Layout: l, Subspaces: 4})
//	NewModelBuilder(WithTopo(g), WithLayout(l), WithSubspaces(4, ""))
func NewModelBuilder(opts ...Option) *ModelBuilder {
	cfg := buildConfig(opts)
	b := &ModelBuilder{cfg: cfg}
	for i := 0; i < cfg.numSubspaces(); i++ {
		w := &mbWorker{cfg: cfg, idx: i}
		if cfg.PredicateMode == PredicateHybrid {
			if am, uni, ok := newAtomSubspace(cfg, i); ok {
				w.am, w.eng, w.universe = am, am, uni
			}
		}
		if w.am == nil {
			space := hs.NewSpace(cfg.Layout)
			w.space = space
			w.eng = space.E
			w.universe = cfg.subspacePreds(space)[i]
		}
		w.transform = imt.NewTransformer(w.eng, pat.NewStore(), w.universe)
		w.transform.PerUpdate = cfg.PerUpdate
		w.transform.Tag = "mb/subspace" + strconv.Itoa(i)
		if cfg.Batch > 1 {
			w.batch = imt.NewBatcher(w.transform, cfg.Batch)
		}
		if reg := cfg.Metrics.Sub("imt").Sub("subspace" + strconv.Itoa(i)); reg != nil {
			w.metrics = reg
			w.gcPauseNs = reg.Histogram("bdd_gc_pause_ns")
			w.transform.Instrument(reg)
			if w.batch != nil {
				w.batch.Instrument(reg)
			}
			instrumentWorkerEngine(reg, &w.mu,
				func() (pred.Engine, *pat.Store) { return w.eng, w.transform.Store },
				func() engineCounterBase { return w.base })
		}
		b.workers = append(b.workers, w)
	}
	b.pool = sched.NewPool(cfg.Workers, len(b.workers))
	b.pool.Instrument(cfg.Metrics.Sub("sched"))
	return b
}

// instrumentWorkerEngine registers sampled gauges for a subspace
// worker's BDD engine and PAT store. The engine is single-owner state
// guarded by the worker's mutex, so the gauges are Func callbacks that
// take the lock at snapshot time rather than counters on the hot path
// (Table 3's "# Predicate Operations" and the §5.5 memory proxies).
// state is re-read on every sample because Compact rotates the engine;
// base supplies the rotated-away counter history so every counter-like
// gauge stays monotone across rotations (bdd_nodes alone is an honest
// gauge of live nodes — the GC sawtooth is its signal).
func instrumentWorkerEngine(reg *obs.Registry, mu *sync.Mutex, state func() (pred.Engine, *pat.Store), base func() engineCounterBase) {
	sample := func(f func(pred.Engine, *pat.Store, engineCounterBase) int64) func() int64 {
		return func() int64 {
			mu.Lock()
			defer mu.Unlock()
			e, ps := state()
			return f(e, ps, base())
		}
	}
	reg.Func("bdd_nodes", sample(func(e pred.Engine, _ *pat.Store, _ engineCounterBase) int64 { return int64(e.NumNodes()) }))
	reg.Func("bdd_ops", sample(func(e pred.Engine, _ *pat.Store, b engineCounterBase) int64 { return int64(b.ops + e.Ops()) }))
	reg.Func("bdd_cache_hits", sample(func(e pred.Engine, _ *pat.Store, b engineCounterBase) int64 {
		h, _ := e.CacheStats()
		return int64(b.cacheHits + h)
	}))
	reg.Func("bdd_cache_misses", sample(func(e pred.Engine, _ *pat.Store, b engineCounterBase) int64 {
		_, m := e.CacheStats()
		return int64(b.cacheMisses + m)
	}))
	reg.Func("bdd_cache_evictions", sample(func(e pred.Engine, _ *pat.Store, b engineCounterBase) int64 {
		return int64(b.cacheEvictions + e.CacheEvictions())
	}))
	reg.Func("bdd_gc_runs", sample(func(e pred.Engine, _ *pat.Store, b engineCounterBase) int64 {
		return int64(b.gcRuns + e.GCRuns())
	}))
	reg.Func("bdd_gc_reclaimed_nodes", sample(func(e pred.Engine, _ *pat.Store, b engineCounterBase) int64 {
		return int64(b.gcReclaimed + e.ReclaimedNodes())
	}))
	reg.Func("pat_nodes", sample(func(_ pred.Engine, ps *pat.Store, _ engineCounterBase) int64 {
		if ps == nil {
			return 0
		}
		return int64(ps.NumNodes())
	}))
}

// NumSubspaces reports the number of parallel subspace workers.
func (b *ModelBuilder) NumSubspaces() int { return len(b.workers) }

// PredicateModes reports each subspace worker's live predicate
// representation, "atoms" or "bdd", indexed by worker position. Under
// PredicateBDD every entry is "bdd"; under PredicateHybrid an entry
// flips from "atoms" to "bdd" permanently when the subspace's cutover
// guard fires (see WithPredicateMode).
func (b *ModelBuilder) PredicateModes() []string {
	out := make([]string, len(b.workers))
	for i, w := range b.workers {
		w.mu.Lock()
		if w.am != nil {
			out[i] = "atoms"
		} else {
			out[i] = "bdd"
		}
		w.mu.Unlock()
	}
	return out
}

// PredicateCutovers reports the total number of atom-to-BDD cutovers
// that have fired across subspace workers. Each subspace converts at
// most once, so the count is bounded by the subspace count.
func (b *ModelBuilder) PredicateCutovers() int {
	total := 0
	for _, w := range b.workers {
		w.mu.Lock()
		total += w.cutovers
		w.mu.Unlock()
	}
	return total
}

// ApplyBlock feeds one batch of per-device symbolic update blocks to all
// subspace workers via the work-stealing scheduler. Every rule must
// carry a symbolic match descriptor; rules whose match does not
// intersect a worker's subspace are skipped there. When the builder was
// configured WithBatch, blocks are buffered per worker and flushed as
// bounded coalesced batches; call Flush (or any model query) to force
// pending work through.
func (b *ModelBuilder) ApplyBlock(blocks []DeviceBlock) error {
	b.dispatchMu.Lock()
	defer b.dispatchMu.Unlock()
	errs := make([]error, len(b.workers))
	for i, w := range b.workers {
		i, w := i, w
		b.pool.Submit(i, func() { errs[i] = w.apply(blocks) })
	}
	b.pool.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush forces every worker's pending batched updates through the Fast
// IMT pipeline. It is a no-op when batching is disabled; every model
// query flushes implicitly, so explicit calls are only needed to bound
// result latency between queries.
func (b *ModelBuilder) Flush() error {
	b.dispatchMu.Lock()
	defer b.dispatchMu.Unlock()
	return b.flushLocked()
}

func (b *ModelBuilder) flushLocked() error {
	if b.cfg.Batch <= 1 {
		return nil
	}
	errs := make([]error, len(b.workers))
	for i, w := range b.workers {
		i, w := i, w
		b.pool.Submit(i, func() { errs[i] = w.flush() })
	}
	b.pool.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *mbWorker) flush() (err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("flash: subspace worker panic during flush: %v", r)
		}
	}()
	if w.batch == nil {
		return nil
	}
	if err := w.batch.Flush(); err != nil {
		return err
	}
	return w.maybeReclaimLocked()
}

// DeviceBlock is a block of symbolic updates for one device.
type DeviceBlock struct {
	Device  DeviceID
	Updates []Update
}

func (w *mbWorker) apply(blocks []DeviceBlock) (err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// The offline path converts a transformer panic into an error rather
	// than killing the whole build fan-out.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("flash: subspace worker panic: %v", r)
		}
	}()
	compileAll := func() []fib.Block {
		compiled := make([]fib.Block, 0, len(blocks))
		for _, db := range blocks {
			fb := fib.Block{Device: db.Device}
			for _, u := range db.Updates {
				match := w.compileLocked(u.Rule.Desc)
				if match == bdd.False {
					continue
				}
				fb.Updates = append(fb.Updates, fib.Update{
					Op: u.Op,
					Rule: fib.Rule{
						ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action,
						Match: match, Desc: u.Rule.Desc,
					},
				})
			}
			if len(fb.Updates) > 0 {
				compiled = append(compiled, fb)
			}
		}
		return compiled
	}
	// A cutover firing mid-batch invalidates the matches compiled before
	// it in this very loop: they are atom refs held only in locals here,
	// invisible to the conversion remap. Recompile the whole batch on the
	// post-cutover engine — the cutover is one-way, so at most once.
	before := w.cutovers
	compiled := compileAll()
	if w.cutovers != before {
		compiled = compileAll()
	}
	if w.batch != nil {
		err = w.batch.Add(compiled)
	} else {
		err = w.transform.ApplyBlock(compiled)
	}
	if err != nil {
		return err
	}
	return w.maybeReclaimLocked()
}

// GC forces an immediate mark-and-sweep pass on every subspace engine,
// returning the total node count reclaimed. Unlike Compact it keeps the
// engines (and their counter history) and releases only unreachable
// nodes — it is the cheap reclamation the MemoryBudget watermark
// triggers automatically. Pending batches are flushed first.
func (b *ModelBuilder) GC() (int, error) {
	b.dispatchMu.Lock()
	defer b.dispatchMu.Unlock()
	if err := b.flushLocked(); err != nil {
		return 0, err
	}
	total := 0
	for _, w := range b.workers {
		w.mu.Lock()
		st := w.gcLocked()
		w.mu.Unlock()
		total += st.Reclaimed
	}
	return total, nil
}

// Compact rebuilds every subspace worker onto a fresh BDD engine from
// the symbolic descriptors of its installed rules. It is the heavyweight
// reclamation: where GC sweeps nodes no held ref can reach, a rotation
// also de-duplicates the live structure itself (re-compiling from
// descriptors rebuilds each predicate minimally), at the cost of
// re-running the whole Fast IMT pipeline. Every installed rule must
// carry a symbolic descriptor. Counter history survives rotation via
// the per-worker base (PredicateOps/CacheStats stay monotone).
func (b *ModelBuilder) Compact() error {
	b.dispatchMu.Lock()
	defer b.dispatchMu.Unlock()
	if err := b.flushLocked(); err != nil {
		return err
	}
	for _, w := range b.workers {
		if err := w.compact(); err != nil {
			return err
		}
	}
	return nil
}

func (w *mbWorker) compact() (err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("flash: subspace worker panic during compact: %v", r)
		}
	}()
	return w.compactLocked()
}

// compactLocked rotates the worker onto a fresh engine, folding the old
// engine's counters into the base first so exported totals never drop.
// An atom-mode worker runs a GC pass instead: atoms hold exactly the
// live interval sets after collection, so a rotation has nothing left
// to deduplicate. Callers hold w.mu.
func (w *mbWorker) compactLocked() error {
	if w.am != nil {
		w.gcLocked()
		return nil
	}
	cfg := w.cfg
	space := hs.NewSpace(cfg.Layout)
	var universe bdd.Ref = bdd.True
	if cfg.Subspaces > 1 {
		// Recompute this worker's subspace predicate on the new engine.
		universe = cfg.subspacePreds(space)[w.idx]
	}
	tr := imt.NewTransformer(space.E, pat.NewStore(), universe)
	tr.PerUpdate = cfg.PerUpdate
	tr.Tag = w.transform.Tag
	tr.Instrument(w.metrics) // rotation keeps the same metric handles
	var blocks []fib.Block
	for _, dev := range w.transform.Devices() {
		blk := fib.Block{Device: dev}
		for _, r := range w.transform.Table(dev).Rules() {
			if r.Desc == nil {
				return fmt.Errorf("flash: device %d rule %d has no descriptor; cannot compact", dev, r.ID)
			}
			nr := r
			nr.Match = space.E.And(space.Compile(r.Desc), universe)
			if nr.Match == bdd.False {
				continue
			}
			blk.Updates = append(blk.Updates, fib.Update{Op: fib.Insert, Rule: nr})
		}
		if len(blk.Updates) > 0 {
			blocks = append(blocks, blk)
		}
	}
	if err := tr.ApplyBlock(blocks); err != nil {
		return err
	}
	// The rotation is committed: fold the outgoing engine's counters
	// into the base so exported totals stay monotone.
	w.base.absorb(w.eng)
	w.space = space
	w.eng = space.E
	w.universe = universe
	w.transform = tr
	if w.batch != nil {
		// The batcher is empty here (Compact flushes first); rebind it to
		// the rotated transformer.
		w.batch = imt.NewBatcher(tr, w.batch.Max)
		if w.metrics != nil {
			w.batch.Instrument(w.metrics)
		}
	}
	return nil
}

// ActionAt returns the forwarding action device dev applies to the given
// header, answering point queries against the inverse model. Pending
// batched updates are flushed first.
func (b *ModelBuilder) ActionAt(dev DeviceID, header []uint64) (Action, error) {
	if err := b.Flush(); err != nil {
		return None, err
	}
	for _, w := range b.workers {
		w.mu.Lock()
		asg := b.cfg.Layout.Assignment(header)
		if !w.eng.Eval(w.universe, asg) {
			w.mu.Unlock()
			continue
		}
		vec, ok := w.transform.Model().Lookup(w.eng, asg)
		if !ok {
			w.mu.Unlock()
			return None, fmt.Errorf("flash: header %v not covered", header)
		}
		act := w.transform.Store.Get(vec, dev)
		w.mu.Unlock()
		return act, nil
	}
	return None, fmt.Errorf("flash: header %v outside every subspace", header)
}

// ---- System: online CE2D verification ----

// System is the online Flash deployment of Figure 1: per-subspace workers
// each running a CE2D dispatcher that manages per-epoch verifiers.
//
// A worker that panics while applying a message is quarantined
// ("poisoned"): its subspace stops verifying, the panic is recovered and
// counted, and all other subspaces keep running. PoisonedSubspaces and
// Health expose the degradation.
type System struct {
	cfg     Config
	workers []*sysWorker
	pool    *sched.Pool

	// bus fans verdict flips out to SubscribeVerdicts subscribers; it is
	// fed at the FeedBatch merge point (verdictbus.go).
	bus *verdictBus
	// snapCount tracks live (unreleased) snapshots (snapshot.go).
	snapCount atomic.Int64

	// dispatchMu serializes scheduler barriers across concurrent Feed
	// callers (the wire server feeds from multiple connections).
	dispatchMu sync.Mutex //flashvet:lockrank 10

	poisonMu     sync.Mutex
	poisoned     map[int]string // subspace index -> panic cause
	workerPanics *obs.Counter

	// feedHook, when set (tests only), runs inside the subspace worker's
	// scheduler task before each message is applied. A panic in the hook
	// exercises the worker-quarantine path deterministically; the hook
	// also serves as the per-device sequence witness for the scheduler
	// property tests (it observes the exact per-subspace message order).
	feedHook func(subspace int, m Msg)
}

// sysWorker owns one subspace: universe is minted by eng, the worker's
// single active engine (space.E in BDD mode, am in the hybrid atom
// regime), which the dispatcher's verifier factory also reads.
//
//flashvet:allow bddref — universe is owned by eng, the worker's single engine
type sysWorker struct {
	mu  sync.Mutex //flashvet:lockrank 20
	cfg Config
	idx int
	// eng is the active predicate engine; exactly one of space/am backs
	// it (see mbWorker).
	eng      pred.Engine
	space    *hs.Space
	am       *atoms.Engine
	universe bdd.Ref
	// cutovers counts one-way atom→BDD conversions (0 or 1).
	cutovers int
	// checks is the worker-owned compiled check set; the verifier
	// factory reads it (not a captured snapshot) so verifiers created
	// after a GC see the remapped Spaces.
	checks []ce2d.Check
	budget int // cfg.MemoryBudget; <= 0 disables automatic GC
	disp   *ce2d.Dispatcher
	// snaps pins live Snapshot captures: each holds a cloned transformer
	// whose refs must survive GC until the snapshot is released.
	snaps     []*snapSub
	feedNs    *obs.Histogram // per-message verification latency (nil = off)
	gcPauseNs *obs.Histogram // stop-the-world GC pause (nil = off)
}

// Roots enumerates every BDD ref the subspace holds: the universe, the
// variable cache, each compiled check space, pinned snapshot captures,
// and — via the dispatcher — the queued messages and every live
// per-epoch verifier. It is the worker's GC root set.
func (w *sysWorker) Roots(yield func(bdd.Ref)) {
	yield(w.universe)
	if w.space != nil {
		w.space.Roots(yield)
	}
	for i := range w.checks {
		yield(w.checks[i].Space)
	}
	for _, ss := range w.snaps {
		ss.trans.Roots(yield)
	}
	w.disp.Roots(yield)
}

// gcLocked runs a mark-and-sweep pass on the subspace engine and
// rewrites all held refs. Callers hold w.mu.
func (w *sysWorker) gcLocked() bdd.GCStats {
	start := time.Now()
	remap, st := w.eng.GC(w.Roots)
	w.universe = remap.Apply(w.universe)
	if w.space != nil {
		w.space.RemapRefs(remap)
	}
	for i := range w.checks {
		w.checks[i].Space = remap.Apply(w.checks[i].Space)
	}
	for _, ss := range w.snaps {
		ss.trans.RemapRefs(remap)
	}
	w.disp.RemapRefs(remap)
	w.gcPauseNs.Observe(time.Since(start))
	return st
}

// compileLocked compiles a rule match on the active engine,
// intersected with the subspace universe, cutting the subspace over to
// BDD first when atoms cannot hold the descriptor. Callers hold w.mu.
func (w *sysWorker) compileLocked(desc fib.MatchDesc) bdd.Ref {
	if w.am != nil {
		if r, ok := atomCompile(w.am, w.cfg.Layout, desc); ok {
			return w.am.And(r, w.universe)
		}
		w.cutoverLocked()
	}
	return w.space.E.And(w.space.Compile(desc), w.universe)
}

// cutoverLocked converts the subspace's whole atom state — universe,
// compiled check spaces, queued dispatcher messages, every live
// per-epoch verifier, and any pinned snapshot captures — to a fresh
// BDD engine, one way. A what-if transaction can trigger it exactly
// like a live feed (both funnel through compileLocked). Callers hold
// w.mu.
func (w *sysWorker) cutoverLocked() {
	space := hs.NewSpace(w.cfg.Layout)
	remap := atomConvert(w.am, space, w.Roots)
	w.universe = remap.Apply(w.universe)
	for i := range w.checks {
		w.checks[i].Space = remap.Apply(w.checks[i].Space)
	}
	for _, ss := range w.snaps {
		ss.trans.RemapRefs(remap)
		ss.trans.E = space.E
	}
	w.disp.RemapRefs(remap)
	w.disp.Rebind(space.E)
	w.space = space
	w.eng = space.E
	w.am = nil
	w.cutovers++
}

// maybeGCLocked runs a collection when the engine exceeds the memory
// budget. The online path has no Compact fallback: per-epoch verifiers
// cannot be rebuilt from descriptors mid-epoch, so when the live
// detection state itself exceeds the budget the engine simply stays at
// its live size (the budget is a watermark, not a hard cap). Callers
// hold w.mu.
func (w *sysWorker) maybeGCLocked() {
	if w.budget > 0 && w.eng.NumNodes() > w.budget {
		w.gcLocked()
	}
}

// NewSystem builds a System from the given options; checks are compiled
// per subspace. As with NewModelBuilder, a bare Config value is accepted
// as an option, so the original NewSystem(Config{...}) call style keeps
// working.
func NewSystem(opts ...Option) (*System, error) {
	cfg := buildConfig(opts)
	s := &System{cfg: cfg, poisoned: make(map[int]string)}
	s.bus = newVerdictBus(cfg.Metrics)
	s.workerPanics = cfg.Metrics.Sub("ce2d").Counter("worker_panics")
	set, err := cfg.subspaceSet(cfg.numSubspaces())
	if err != nil {
		return nil, err
	}
	for _, i := range set {
		w := &sysWorker{cfg: cfg, idx: i, budget: cfg.MemoryBudget}
		if cfg.PredicateMode == PredicateHybrid {
			if am, uni, ok := newAtomSubspace(cfg, i); ok {
				checks, compiled, err := compileChecks(cfg, func(d MatchDesc) (bdd.Ref, bool) {
					return atomCompile(am, cfg.Layout, d)
				})
				if err != nil {
					return nil, err
				}
				// A check space atoms cannot hold (a ternary ACL scope,
				// say) makes this subspace start on BDD directly rather
				// than cut over on its first message.
				if compiled {
					w.am, w.eng, w.universe, w.checks = am, am, uni, checks
				}
			}
		}
		if w.am == nil {
			space := hs.NewSpace(cfg.Layout)
			checks, _, err := compileChecks(cfg, func(d MatchDesc) (bdd.Ref, bool) {
				return space.Compile(d), true
			})
			if err != nil {
				return nil, err
			}
			w.space = space
			w.eng = space.E
			w.universe = cfg.subspacePreds(space)[i]
			w.checks = checks
		}
		// Per-subspace observability: the dispatcher publishes CE2D
		// progress under ce2d/subspace<i>, and every per-epoch verifier's
		// Fast IMT transformer shares the nested imt sub-registry, so
		// transform timings accumulate across epochs. All of it is nil
		// (and therefore free) without WithMetrics.
		sreg := cfg.Metrics.Sub("ce2d").Sub("subspace" + strconv.Itoa(i))
		ireg := sreg.Sub("imt")
		// The factory reads universe/checks from the worker, not the loop
		// locals: a GC remaps those fields, and a verifier created for a
		// later epoch must start from the post-GC refs.
		w.disp = ce2d.NewDispatcher(func(ce2d.Epoch) *ce2d.Verifier {
			v := ce2d.NewVerifier(ce2d.Config{
				Topo:     cfg.Topo,
				Engine:   w.eng,
				Universe: w.universe,
				Checks:   w.checks,
				Succ:     cfg.Succ,
			})
			v.Transformer().Tag = "ce2d/subspace" + strconv.Itoa(i)
			v.Transformer().Instrument(ireg)
			return v
		})
		w.disp.Instrument(sreg)
		if sreg != nil {
			w.feedNs = sreg.Histogram("feed_ns")
			w.gcPauseNs = sreg.Histogram("bdd_gc_pause_ns")
			instrumentWorkerEngine(sreg, &w.mu,
				func() (pred.Engine, *pat.Store) { return w.eng, nil },
				func() engineCounterBase { return engineCounterBase{} })
		}
		s.workers = append(s.workers, w)
	}
	s.pool = sched.NewPool(cfg.Workers, len(s.workers))
	s.pool.Instrument(cfg.Metrics.Sub("sched"))
	return s, nil
}

// Checks returns the verification requirements the system was built
// with (a copy; mutating it does not affect the running verifiers).
func (s *System) Checks() []CheckSpec {
	return append([]CheckSpec(nil), s.cfg.Checks...)
}

// Metrics returns the observability registry the system was built with
// (nil when observability is disabled).
func (s *System) Metrics() *obs.Registry { return s.cfg.Metrics }

// Logger returns the configured logger (nil when silenced).
func (s *System) Logger() *log.Logger { return s.cfg.Logger }

// PredicateModes reports each subspace worker's live predicate
// representation, "atoms" or "bdd", indexed by worker position (see
// SubspaceIndices for the global subspace index each position owns).
// Under PredicateBDD every entry is "bdd"; under PredicateHybrid an
// entry flips from "atoms" to "bdd" permanently when the subspace's
// cutover guard fires (see WithPredicateMode).
func (s *System) PredicateModes() []string {
	out := make([]string, len(s.workers))
	for i, w := range s.workers {
		w.mu.Lock()
		if w.am != nil {
			out[i] = "atoms"
		} else {
			out[i] = "bdd"
		}
		w.mu.Unlock()
	}
	return out
}

// PredicateCutovers reports the total number of atom-to-BDD cutovers
// that have fired across subspace workers. Each subspace converts at
// most once, so the count is bounded by the subspace count.
func (s *System) PredicateCutovers() int {
	total := 0
	for _, w := range s.workers {
		w.mu.Lock()
		total += w.cutovers
		w.mu.Unlock()
	}
	return total
}

// compileChecks builds the worker-owned check set, compiling each check
// scope through the supplied predicate compiler. compile reports
// ok=false when the scope cannot live on the chosen representation (the
// atom path's pure-prefix guard); compileChecks then stops and returns
// compiled=false so the caller can fall back to the BDD path. The BDD
// compiler never fails.
func compileChecks(cfg Config, compile func(MatchDesc) (bdd.Ref, bool)) ([]ce2d.Check, bool, error) {
	var out []ce2d.Check
	for _, cs := range cfg.Checks {
		sp, ok := compile(cs.Space)
		if !ok {
			return nil, false, nil
		}
		c := ce2d.Check{Name: cs.Name, Space: sp}
		switch cs.Kind {
		case CheckReach, CheckAnycast, CheckMulticast, CheckCoverage:
			switch cs.Kind {
			case CheckReach:
				c.Kind = ce2d.CheckReach
			case CheckAnycast:
				c.Kind = ce2d.CheckAnycast
			case CheckMulticast:
				c.Kind = ce2d.CheckMulticast
			case CheckCoverage:
				c.Kind = ce2d.CheckCoverage
			}
			expr, err := spec.Parse(cs.Expr)
			if err != nil {
				return nil, false, fmt.Errorf("flash: check %q: %w", cs.Name, err)
			}
			c.Expr = expr
			for _, name := range cs.Sources {
				id, ok := cfg.Topo.ByName(name)
				if !ok {
					return nil, false, fmt.Errorf("flash: check %q: unknown source %q: %w", cs.Name, name, ErrUnknownDevice)
				}
				c.Sources = append(c.Sources, id)
			}
			for _, name := range cs.Dests {
				id, ok := cfg.Topo.ByName(name)
				if !ok {
					return nil, false, fmt.Errorf("flash: check %q: unknown dest %q: %w", cs.Name, name, ErrUnknownDevice)
				}
				c.Dests = append(c.Dests, id)
			}
			if (cs.Kind == CheckAnycast || cs.Kind == CheckMulticast) && len(c.Dests) == 0 {
				return nil, false, fmt.Errorf("flash: check %q: %v needs Dests", cs.Name, cs.Kind)
			}
			if cs.Dest != "" {
				dst, ok := cfg.Topo.ByName(cs.Dest)
				if !ok {
					return nil, false, fmt.Errorf("flash: check %q: unknown dest %q: %w", cs.Name, cs.Dest, ErrUnknownDevice)
				}
				c.IsDest = func(n topo.NodeID) bool { return n == dst }
			} else {
				c.IsDest = func(topo.NodeID) bool { return true }
			}
		case CheckLoopFree:
			c.Kind = ce2d.CheckLoopFree
			if len(cs.ExitNodes) > 0 {
				exits := make(map[topo.NodeID]bool, len(cs.ExitNodes))
				for _, name := range cs.ExitNodes {
					id, ok := cfg.Topo.ByName(name)
					if !ok {
						return nil, false, fmt.Errorf("flash: check %q: unknown exit node %q: %w", cs.Name, name, ErrUnknownDevice)
					}
					exits[id] = true
				}
				c.CanExit = func(n topo.NodeID) bool { return exits[n] }
			}
		default:
			return nil, false, fmt.Errorf("flash: check %q: unknown kind %d", cs.Name, cs.Kind)
		}
		out = append(out, c)
	}
	return out, true, nil
}

// Feed delivers one epoch-tagged agent message to every subspace worker
// (in parallel) and returns the deterministic results it triggered. It
// is FeedContext with a background context.
//
// Deprecated: use FeedContext so ingestion participates in the caller's
// cancellation tree. Feed remains for compatibility and is equivalent to
// FeedContext(context.Background(), m).
//
//flashvet:allow ctxfeed — compatibility wrapper; this is where context-free callers get their root context
func (s *System) Feed(m Msg) ([]Result, error) {
	return s.FeedContext(context.Background(), m)
}

// FeedContext is Feed with cancellation: if ctx is canceled before a
// subspace worker picks the message up, that worker returns ctx.Err()
// and the message is not applied there. Cancellation is checked at
// worker boundaries (a worker that has started applying a block always
// finishes it, keeping the per-subspace models consistent).
//
// A worker that panics is quarantined: the panic is recovered, counted
// under ce2d/worker_panics, and the subspace is skipped by every later
// Feed. Results from healthy subspaces are still returned; only when
// every subspace is poisoned does Feed fail (with ErrSubspacePoisoned).
func (s *System) FeedContext(ctx context.Context, m Msg) ([]Result, error) {
	return s.FeedBatch(ctx, []Msg{m})
}

// FeedBatch delivers several epoch-tagged messages in one scheduler
// dispatch: every subspace worker applies the whole slice in order
// before the epoch barrier releases, amortizing the scheduling and
// lock-acquisition cost of an update storm across the batch. It is
// semantically identical to calling FeedContext once per message and
// concatenating the results (CE2D emits events only when a device
// synchronizes an epoch, and per-device order within the batch is
// preserved, so the verdict stream cannot differ); the Pipeline uses it
// to gulp consecutive same-epoch messages under WithBatch.
func (s *System) FeedBatch(ctx context.Context, msgs []Msg) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(msgs) == 0 {
		return nil, nil
	}
	// The lock is held through merge and publish (not just the scheduler
	// barrier) so concurrent FeedBatch callers publish to the verdict bus
	// in dispatch order — a later batch's flip can never be overwritten
	// by an earlier batch's stale verdict.
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	results := make([][][]Result, len(s.workers)) // [worker][msg index][...]
	errs := make([]error, len(s.workers))
	live := 0
	for i, w := range s.workers {
		// Poisoning is keyed by the global subspace index (w.idx), which
		// equals the slice position only for full-set systems; the result
		// and error slots stay slice-positional.
		if s.isPoisoned(w.idx) {
			continue
		}
		live++
		i, w := i, w
		s.pool.Submit(i, func() {
			defer func() {
				if r := recover(); r != nil {
					s.poison(w.idx, fmt.Sprint(r))
					results[i], errs[i] = nil, nil
				}
			}()
			var hook func(Msg)
			if s.feedHook != nil {
				hook = func(m Msg) { s.feedHook(w.idx, m) }
			}
			results[i], errs[i] = w.feedAll(ctx, msgs, hook)
		})
	}
	s.pool.Wait()
	if live == 0 {
		return nil, fmt.Errorf("flash: all %d subspaces are quarantined: %w", len(s.workers), ErrSubspacePoisoned)
	}
	// Merge in (message, subspace) order — exactly the concatenation a
	// sequential Feed loop would produce.
	var out []Result
	for mi := range msgs {
		for i := range s.workers {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if mi < len(results[i]) {
				out = append(out, results[i][mi]...)
			}
		}
	}
	// Workers are iterated in subspace order, so out is already sorted by
	// (message index, subspace) — the same order a sequential Feed loop
	// (which sorts each message's results by subspace) would emit.
	//
	// This merge point is the single place live results materialize, so
	// it is also where verdict-change subscriptions are fed (what-if
	// results never pass through here and never publish).
	s.bus.publish(out)
	return out, nil
}

// isPoisoned reports whether a subspace worker has been quarantined.
func (s *System) isPoisoned(i int) bool {
	s.poisonMu.Lock()
	defer s.poisonMu.Unlock()
	_, ok := s.poisoned[i]
	return ok
}

// poison quarantines a subspace worker after a recovered panic.
func (s *System) poison(i int, cause string) {
	s.poisonMu.Lock()
	first := s.poisoned[i] == ""
	if first {
		s.poisoned[i] = cause
	}
	s.poisonMu.Unlock()
	if first {
		s.workerPanics.Inc()
		if log := s.cfg.Logger; log != nil {
			log.Printf("flash: subspace %d worker panic; quarantined: %s", i, cause)
		}
	}
}

// PoisonedSubspaces returns the quarantined subspace indices, sorted.
func (s *System) PoisonedSubspaces() []int {
	s.poisonMu.Lock()
	defer s.poisonMu.Unlock()
	out := make([]int, 0, len(s.poisoned))
	for i := range s.poisoned {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Health reports the system's degradation state: degraded when any
// subspace worker has been quarantined after a panic.
func (s *System) Health() Health {
	s.poisonMu.Lock()
	defer s.poisonMu.Unlock()
	var h Health
	for i := range s.poisoned {
		h.Degraded = true
		h.Reasons = append(h.Reasons, fmt.Sprintf("subspace %d quarantined: %s", i, s.poisoned[i]))
	}
	sort.Strings(h.Reasons)
	return h
}

// ModelFingerprint returns a deterministic digest of the per-device EC
// model held by the given epoch's verifier across all subspaces: per
// subspace, the EC count and every device table's rules (identity,
// priority, action and symbolic descriptor). Two runs that consumed the
// same messages exactly once, in order, produce equal fingerprints —
// the chaos tests use this to prove at-least-once replay with dedup
// leaves the model untouched by duplicates.
func (s *System) ModelFingerprint(epoch string) (string, error) {
	parts, err := s.SubspaceFingerprints(epoch)
	if err != nil {
		return "", err
	}
	return ComposeFingerprints(parts), nil
}

// SubspaceFingerprints returns the per-subspace digest of the epoch's
// EC model, keyed by global subspace index; subspaces with no verifier
// for the epoch are absent. The shard coordinator merges the maps of
// disjoint replicas and composes them (ComposeFingerprints) into the
// fingerprint a single full-set System would report.
func (s *System) SubspaceFingerprints(epoch string) (map[int]string, error) {
	out := make(map[int]string)
	for _, w := range s.workers {
		w.mu.Lock()
		d, ok := w.fingerprintLocked(epoch)
		w.mu.Unlock()
		if ok {
			out[w.idx] = d
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flash: no verifier for epoch %q in any subspace", epoch)
	}
	return out, nil
}

// ComposeFingerprints folds per-subspace digests (as returned by
// SubspaceFingerprints, possibly merged across shards) into one model
// fingerprint, deterministically: digests are absorbed in ascending
// global subspace index order.
func ComposeFingerprints(parts map[int]string) string {
	idxs := make([]int, 0, len(parts))
	for i := range parts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	h := sha256.New()
	var b [8]byte
	for _, i := range idxs {
		binary.BigEndian.PutUint64(b[:], uint64(i))
		h.Write(b[:])
		h.Write([]byte(parts[i]))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprintLocked digests this subspace's EC model for the epoch:
// the EC count and every device table's rules (identity, priority,
// action and symbolic descriptor). Callers hold w.mu.
func (w *sysWorker) fingerprintLocked(epoch string) (string, bool) {
	v, ok := w.disp.Verifier(ce2d.Epoch(epoch))
	if !ok {
		return "", false
	}
	h := sha256.New()
	num := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	str := func(v string) {
		num(uint64(len(v)))
		h.Write([]byte(v))
	}
	tr := v.Transformer()
	num(uint64(w.idx))
	num(uint64(tr.Model().Len()))
	devs := tr.Devices()
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	for _, dev := range devs {
		num(uint64(dev))
		for _, r := range tr.Table(dev).Rules() {
			num(uint64(r.ID))
			num(uint64(r.Pri))
			num(uint64(r.Action))
			num(uint64(len(r.Desc)))
			for _, f := range r.Desc {
				str(f.Field)
				num(uint64(f.Kind))
				num(f.Value)
				num(uint64(f.Len))
				num(f.Mask)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// SubspaceIndices returns the global subspace indices this System
// instantiates, ascending — all of [0, Subspaces) unless the system
// was built with WithSubspaceSet.
func (s *System) SubspaceIndices() []int {
	out := make([]int, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.idx
	}
	return out
}

// feedAll applies a batch of messages in order under one lock
// acquisition. The returned slice is indexed by message position; a
// context cancellation mid-batch returns the error with the results of
// the messages already applied (a message that has started applying
// always finishes, keeping the per-subspace model consistent). hook,
// when non-nil, runs before each message (test seam).
func (w *sysWorker) feedAll(ctx context.Context, msgs []Msg, hook func(Msg)) ([][]Result, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([][]Result, 0, len(msgs))
	for _, m := range msgs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if hook != nil {
			hook(m)
		}
		rs, err := w.feedOne(m)
		if err != nil {
			return out, err
		}
		out = append(out, rs)
	}
	// Watermark check once per batch: results for this batch are already
	// materialized (witnesses extracted), so collecting here cannot
	// invalidate anything the caller sees.
	w.maybeGCLocked()
	return out, nil
}

// feedOne applies one message; callers hold w.mu.
func (w *sysWorker) feedOne(m Msg) ([]Result, error) {
	var start time.Time
	if w.feedNs != nil {
		start = time.Now()
	}
	compileAll := func() []fib.Update {
		var ups []fib.Update
		for _, u := range m.Updates {
			match := w.compileLocked(u.Rule.Desc)
			if match == bdd.False {
				continue
			}
			ups = append(ups, fib.Update{
				Op: u.Op,
				Rule: fib.Rule{
					ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action,
					Match: match, Desc: u.Rule.Desc,
				},
			})
		}
		return ups
	}
	// Matches compiled before a mid-message cutover are stale atom refs
	// held only in this loop's locals; recompile the whole message on the
	// post-cutover engine (one-way guard, so at most one restart).
	before := w.cutovers
	ups := compileAll()
	if w.cutovers != before {
		ups = compileAll()
	}
	evs, err := w.disp.Receive(ce2d.Msg{Device: m.Device, Epoch: ce2d.Epoch(m.Epoch), Updates: ups})
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(evs))
	for _, te := range evs {
		r := Result{
			Subspace: w.idx,
			Epoch:    string(te.Epoch),
			Check:    te.Event.Check,
			Verdict:  te.Event.Verdict,
			Loop:     te.Event.Loop,
		}
		if asg := w.eng.AnySat(te.Event.Class); asg != nil {
			r.Witness = headerFromAssignment(w.cfg.Layout, asg)
		}
		out = append(out, r)
	}
	if w.feedNs != nil {
		w.feedNs.Observe(time.Since(start))
	}
	return out, nil
}

// headerFromAssignment reconstructs per-field values from an engine
// assignment (both representations use variable i = line bit i).
func headerFromAssignment(lay *hs.Layout, asg []bool) []uint64 {
	out := make([]uint64, len(lay.Fields()))
	bit := 0
	for fi, f := range lay.Fields() {
		var v uint64
		for b := 0; b < f.Bits; b++ {
			v <<= 1
			if asg[bit] {
				v |= 1
			}
			bit++
		}
		out[fi] = v
	}
	return out
}

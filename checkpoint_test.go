package flash

import (
	"context"
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/hs"
	"repro/internal/obs"
	"repro/internal/topo"
)

// ckptSysOpts is the shared configuration for checkpoint tests; restore
// must be handed the same options (the config hash binds a checkpoint to
// its configuration).
func ckptSysOpts(extra ...Option) []Option {
	return append([]Option{
		WithTopo(topo.Internet2()),
		WithLayout(hs.NewLayout(hs.Field{Name: "dst", Bits: 16})),
		WithSubspaces(2, ""),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	}, extra...)
}

// TestCheckpointRestoreRoundTrip checkpoints a system mid-workload,
// restores it, feeds the identical suffix to both, and requires the
// model fingerprint and verdict table to be indistinguishable — the
// core bounded-time warm-restart property, without the serving plane.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	cut := len(msgs) * 3 / 5 // mid-stream, mid-epoch

	sysA, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:cut] {
		if _, err := sysA.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	info, err := sysA.Checkpoint(dir)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if info.Bytes <= 0 || info.Subspaces == 0 {
		t.Fatalf("implausible checkpoint info: %+v", info)
	}

	sysB, rep, err := Restore(dir, ckptSysOpts()...)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rep.SkippedCorrupt != 0 {
		t.Fatalf("clean restore skipped %d checkpoints", rep.SkippedCorrupt)
	}

	// The restored system must already agree on verdicts at the cut.
	if !reflect.DeepEqual(sysB.Verdicts(), sysA.Verdicts()) {
		t.Fatalf("verdicts diverge at the cut:\n  live     %v\n  restored %v", sysA.Verdicts(), sysB.Verdicts())
	}

	// Identical suffix into both systems.
	for _, m := range msgs[cut:] {
		if _, err := sysA.FeedContext(context.Background(), m); err != nil {
			t.Fatalf("live suffix: %v", err)
		}
		if _, err := sysB.FeedContext(context.Background(), m); err != nil {
			t.Fatalf("restored suffix: %v", err)
		}
	}
	finalEpoch := msgs[len(msgs)-1].Epoch
	fpA, err := sysA.ModelFingerprint(finalEpoch)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := sysB.ModelFingerprint(finalEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Fatalf("model fingerprints diverge:\n  live     %s\n  restored %s", fpA, fpB)
	}
	if !reflect.DeepEqual(sysB.Verdicts(), sysA.Verdicts()) {
		t.Fatalf("final verdicts diverge:\n  live     %v\n  restored %v", sysA.Verdicts(), sysB.Verdicts())
	}
}

// TestRestoreSkipsCorruptCheckpoint: the newest checkpoint is torn (a
// crash mid-write that somehow survived the atomic-rename discipline) —
// restore must log, count, and fall back to the older intact one.
func TestRestoreSkipsCorruptCheckpoint(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	sys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:len(msgs)/2] {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if _, err := sys.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	good := ckpt.Candidates(dir)
	if len(good) != 1 {
		t.Fatalf("candidates = %v", good)
	}

	// Plant two newer corruptions: a truncated copy and a bit-flipped copy.
	raw, err := os.ReadFile(good[0])
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xFF
	os.WriteFile(dir+"/"+"ckpt-fffffffffffffffe.fckpt", raw[:len(raw)/3], 0o644)
	os.WriteFile(dir+"/"+"ckpt-ffffffffffffffff.fckpt", flipped, 0o644)

	reg := obs.NewRegistry("flash")
	restored, rep, err := Restore(dir, ckptSysOpts(WithMetrics(reg))...)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rep.SkippedCorrupt != 2 {
		t.Fatalf("SkippedCorrupt = %d, want 2", rep.SkippedCorrupt)
	}
	if rep.Path != good[0] {
		t.Fatalf("restored from %s, want %s", rep.Path, good[0])
	}
	// The skip must be visible as a metric, not just a return value.
	if n := reg.Sub("ckpt").Snapshot().Counters["bdd_ckpt_skipped_corrupt_total"]; n != 2 {
		t.Fatalf("bdd_ckpt_skipped_corrupt_total = %d, want 2", n)
	}
	if !reflect.DeepEqual(restored.Verdicts(), sys.Verdicts()) {
		t.Fatal("fallback restore diverged from the live system")
	}
}

// TestRestoreExhaustedFallsBackToFullReingest: nothing usable in the
// directory → typed ErrNoCheckpoint (the daemon then boots fresh and
// re-ingests), never a panic.
func TestRestoreExhaustedFallsBackToFullReingest(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Restore(dir, ckptSysOpts()...); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	os.WriteFile(dir+"/ckpt-1111111111111111.fckpt", []byte("FLCKPT\x00\x01garbage"), 0o644)
	_, rep, err := Restore(dir, ckptSysOpts()...)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt dir: err = %v, want ErrNoCheckpoint", err)
	}
	if rep.SkippedCorrupt != 1 {
		t.Fatalf("SkippedCorrupt = %d, want 1", rep.SkippedCorrupt)
	}
}

// TestRestoreRejectsConfigMismatch: a checkpoint taken under one
// configuration must not restore into another (the config hash differs),
// falling through to ErrNoCheckpoint.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	sys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:len(msgs)/4] {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if _, err := sys.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	mismatched := []Option{
		WithTopo(topo.Internet2()),
		WithLayout(hs.NewLayout(hs.Field{Name: "dst", Bits: 16})),
		WithSubspaces(4, ""), // different partitioning
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	}
	if _, _, err := Restore(dir, mismatched...); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("config mismatch: err = %v, want ErrNoCheckpoint", err)
	}
}

// TestPruneCheckpoints keeps the newest N and removes stragglers.
func TestPruneCheckpoints(t *testing.T) {
	sys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	_, _, msgs := chaosWorkload(t)
	for _, m := range msgs[:len(msgs)/8] {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		if _, err := sys.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(ckpt.Candidates(dir)); got != 2 {
		t.Fatalf("kept %d checkpoints, want 2", got)
	}
}

// TestSnapshotDoubleRelease: Release is documented idempotent; a second
// call must be a no-op (no panic, no double root-unpin, no negative
// snapshot count) and the system must keep working.
func TestSnapshotDoubleRelease(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	sys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:len(msgs)/8] {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	snap.Release()
	if !snap.Released() {
		t.Fatal("Released() = false after Release")
	}
	// A fresh snapshot still works and GC still runs.
	again, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot after double release: %v", err)
	}
	again.Release()
	again.Release()
	sys.GC()
	if _, err := sys.FeedContext(context.Background(), msgs[len(msgs)/8]); err != nil {
		t.Fatalf("feed after double release: %v", err)
	}
}

// TestSnapshotReleaseRacesCheckpoint runs concurrent Feed, Snapshot/
// Release churn, GC, and background checkpoint captures. Run under
// -race this pins the lock discipline between the snapshot root set
// (worker mu) and the checkpoint capture (dispatchMu then worker mu):
// no data race, no deadlock, every checkpoint valid.
func TestSnapshotReleaseRacesCheckpoint(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	sys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// Prime so snapshots and checkpoints have something to capture.
	for _, m := range msgs[:len(msgs)/4] {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 8)

	wg.Add(1)
	go func() { // ingest keeps mutating live state (one forward pass —
		// epochs must stay monotonic per device)
		defer wg.Done()
		for _, m := range msgs[len(msgs)/4:] {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.FeedContext(context.Background(), m); err != nil {
				fail <- err
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // snapshot/release churn (one releaser double-releases)
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := sys.Snapshot()
				if err != nil {
					fail <- err
					return
				}
				snap.Release()
				snap.Release()
			}
		}()
	}
	wg.Add(1)
	go func() { // background checkpoint writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Checkpoint(dir); err != nil {
				fail <- err
				return
			}
			sys.GC()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	// Every checkpoint written during the churn must restore cleanly.
	if _, rep, err := Restore(dir, ckptSysOpts()...); err != nil {
		t.Fatalf("restore after churn: %v", err)
	} else if rep.SkippedCorrupt != 0 {
		t.Fatalf("churn produced %d corrupt checkpoints", rep.SkippedCorrupt)
	}
}

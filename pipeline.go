package flash

import (
	"sync"
)

// Pipeline wraps a System with the §7 "Implementation" extension: model
// update (Fast IMT) and requirement verification (CE2D) are decoupled so
// agents never block on detection work. Feed enqueues and returns
// immediately; deterministic results stream on Results, in order.
//
// Per-device ordering is preserved (a single worker drains the queue in
// arrival order; subspace parallelism still applies inside System.Feed).
type Pipeline struct {
	sys *System

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Msg
	closed bool
	err    error

	results chan Result
	done    chan struct{}
}

// NewPipeline starts the pipeline worker. Callers must eventually Close
// it and drain Results.
func NewPipeline(sys *System, buffer int) *Pipeline {
	p := &Pipeline{
		sys:     sys,
		results: make(chan Result, buffer),
		done:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.run()
	return p
}

// Feed enqueues one agent message; it never blocks on verification.
func (p *Pipeline) Feed(m Msg) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	if p.err != nil {
		return p.err
	}
	p.queue = append(p.queue, m)
	p.cond.Signal()
	return nil
}

// Results streams deterministic detection results. The channel closes
// after Close once the queue has drained.
func (p *Pipeline) Results() <-chan Result { return p.results }

// Close stops intake, waits for the queue to drain, and closes Results.
// It returns the first verification error, if any.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Signal()
	}
	p.mu.Unlock()
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

type pipelineError string

func (e pipelineError) Error() string { return string(e) }

const errClosed = pipelineError("flash: pipeline closed")

func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.results)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed && p.err == nil {
			p.cond.Wait()
		}
		if p.err != nil || (p.closed && len(p.queue) == 0) {
			p.mu.Unlock()
			return
		}
		m := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		results, err := p.sys.Feed(m)
		if err != nil {
			p.mu.Lock()
			p.err = err
			p.cond.Signal()
			p.mu.Unlock()
			return
		}
		for _, r := range results {
			p.results <- r
		}
	}
}

package flash

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Pipeline wraps a System with the §7 "Implementation" extension: model
// update (Fast IMT) and requirement verification (CE2D) are decoupled so
// agents never block on detection work. Feed enqueues and returns
// immediately; deterministic results stream on Results, in order.
//
// Per-device ordering is preserved (a single worker drains the queue in
// arrival order; subspace parallelism still applies inside System.Feed).
//
// When the System was built WithBatch(n), the pipeline worker "gulps"
// up to n buffered native updates of consecutive same-epoch messages
// into a single System.FeedBatch dispatch — flush-on-epoch batching: an
// epoch change in the queue always cuts the batch, so epoch barriers
// and CE2D result order are untouched, and an idle queue drains
// immediately (batching only engages when messages are actually
// waiting, i.e. exactly when amortization helps).
type Pipeline struct {
	sys *System

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []Msg
	enqueued []time.Time // parallel to queue; non-nil only when instrumented
	closed   bool
	err      error

	results chan Result
	done    chan struct{}

	m pmetrics
}

// pmetrics holds resolved observability handles; the zero value is the
// uninstrumented no-op state.
type pmetrics struct {
	fed        *obs.Counter   // messages accepted by Feed
	emitted    *obs.Counter   // results delivered on Results
	gulps      *obs.Counter   // FeedBatch dispatches issued
	gulped     *obs.Counter   // extra messages coalesced into a gulp
	queueDepth *obs.Gauge     // messages waiting in the queue
	drainNs    *obs.Histogram // enqueue → verification-done latency
}

// NewPipeline starts the pipeline worker. Callers must eventually Close
// it and drain Results. If the System was built WithMetrics, the
// pipeline publishes queue depth and drain latency under its registry's
// "pipeline" sub-registry.
func NewPipeline(sys *System, buffer int) *Pipeline {
	p := &Pipeline{
		sys:     sys,
		results: make(chan Result, buffer),
		done:    make(chan struct{}),
	}
	if reg := sys.Metrics().Sub("pipeline"); reg != nil {
		p.m = pmetrics{
			fed:        reg.Counter("fed"),
			emitted:    reg.Counter("results"),
			gulps:      reg.Counter("gulps"),
			gulped:     reg.Counter("gulped"),
			queueDepth: reg.Gauge("queue_depth"),
			drainNs:    reg.Histogram("drain_ns"),
		}
	}
	p.cond = sync.NewCond(&p.mu)
	go p.run()
	return p
}

// Feed enqueues one agent message; it never blocks on verification. It
// returns ErrClosed (wrapped) after Close, or the first verification
// error once the pipeline has failed.
//
// Deprecated: use FeedContext so the caller controls cancellation.
//
//flashvet:allow ctxfeed — compatibility wrapper; this is where context-free callers get their root context
func (p *Pipeline) Feed(m Msg) error {
	return p.FeedContext(context.Background(), m)
}

// FeedContext is Feed with cancellation: a canceled context rejects the
// message before it is enqueued. (Feed itself never blocks, so the
// context is consulted only on entry; it does not cancel verification
// work already queued.)
func (p *Pipeline) FeedContext(ctx context.Context, m Msg) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.err != nil {
		return p.err
	}
	p.queue = append(p.queue, m)
	if p.m.drainNs != nil {
		p.enqueued = append(p.enqueued, time.Now())
	}
	p.m.fed.Inc()
	p.m.queueDepth.Set(int64(len(p.queue)))
	p.cond.Signal()
	return nil
}

// Results streams deterministic detection results. The channel closes
// after Close once the queue has drained.
func (p *Pipeline) Results() <-chan Result { return p.results }

// Close stops intake, waits for the queue to drain, and closes Results.
// It returns the first verification error, if any.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Signal()
	}
	p.mu.Unlock()
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

//flashvet:allow ctxfeed — the drain worker outlives every Feed caller; queued work is cancelled via Close, not a context
func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.results)
	// A panic escaping the worker would leak the channels and deadlock
	// Close; record it as the pipeline's error instead. (System.Feed
	// already quarantines panicking subspace workers; this guards the
	// pipeline's own bookkeeping and result fan-out.)
	defer func() {
		if r := recover(); r != nil {
			if l := p.sys.Logger(); l != nil {
				l.Printf("flash: pipeline: worker panic: %v", r)
			}
			p.mu.Lock()
			if p.err == nil {
				p.err = fmt.Errorf("flash: pipeline worker panic: %v", r)
			}
			p.cond.Signal()
			p.mu.Unlock()
		}
	}()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed && p.err == nil {
			p.cond.Wait()
		}
		if p.err != nil || (p.closed && len(p.queue) == 0) {
			p.mu.Unlock()
			return
		}
		// Gulp: take the head message, then extend with consecutive
		// messages of the same epoch while the buffered native-update
		// count stays under the batch bound. An epoch change always cuts
		// the gulp (flush-on-epoch).
		take := 1
		if max := p.sys.cfg.Batch; max > 1 {
			budget := max - len(p.queue[0].Updates)
			for take < len(p.queue) &&
				p.queue[take].Epoch == p.queue[0].Epoch &&
				budget >= len(p.queue[take].Updates) {
				budget -= len(p.queue[take].Updates)
				take++
			}
		}
		batch := append([]Msg(nil), p.queue[:take]...)
		p.queue = p.queue[take:]
		var enqueuedAt time.Time
		if len(p.enqueued) > 0 {
			enqueuedAt = p.enqueued[0] // oldest message of the gulp
			drop := take
			if drop > len(p.enqueued) {
				drop = len(p.enqueued)
			}
			p.enqueued = p.enqueued[drop:]
		}
		p.m.queueDepth.Set(int64(len(p.queue)))
		p.mu.Unlock()

		p.m.gulps.Inc()
		p.m.gulped.Add(int64(take - 1))
		results, err := p.sys.FeedBatch(context.Background(), batch)
		if err != nil {
			if l := p.sys.Logger(); l != nil {
				l.Printf("flash: pipeline: verification failed: %v", err)
			}
			p.mu.Lock()
			p.err = err
			p.cond.Signal()
			p.mu.Unlock()
			return
		}
		if p.m.drainNs != nil && !enqueuedAt.IsZero() {
			p.m.drainNs.Observe(time.Since(enqueuedAt))
		}
		for _, r := range results {
			p.results <- r
			p.m.emitted.Inc()
		}
	}
}

package flash

import (
	"errors"

	"repro/internal/ce2d"
	"repro/internal/ckpt"
	"repro/internal/wire"
)

// Sentinel errors. Callers should test with errors.Is rather than
// matching error strings; the concrete errors returned by the library
// wrap these with %w and carry the specifics (device, epoch, check name)
// in their message.
var (
	// ErrClosed is returned by operations on a Pipeline or Server after
	// Close, and by context-free wrappers once their component shut down.
	ErrClosed = errors.New("flash: closed")

	// ErrUnknownDevice is returned when a check or query names a device
	// that does not exist in the configured topology.
	ErrUnknownDevice = errors.New("flash: unknown device")

	// ErrBadEpoch is returned when a device violates epoch ordering —
	// e.g. it keeps streaming updates for an epoch after having declared
	// itself synchronized with it (§4.1's per-device serialization
	// contract). It aliases the internal ce2d sentinel so wrapped
	// dispatcher errors satisfy errors.Is(err, flash.ErrBadEpoch).
	ErrBadEpoch = ce2d.ErrBadEpoch

	// ErrSubspacePoisoned is returned by Feed once every subspace worker
	// has been quarantined after a panic — no part of the header space is
	// being verified anymore. Partial poisoning does not error: healthy
	// subspaces keep verifying and Health reports the degradation.
	ErrSubspacePoisoned = errors.New("flash: subspace worker poisoned")

	// ErrNoEpoch is returned by System.Snapshot when no subspace holds a
	// live per-epoch verifier yet — there is no model to capture until
	// the first Feed.
	ErrNoEpoch = errors.New("flash: no active epoch")

	// ErrSnapshotReleased is returned by operations on a Snapshot after
	// Release.
	ErrSnapshotReleased = errors.New("flash: snapshot released")

	// Wire-protocol sentinels, re-exported so that callers holding only
	// this package can classify transport failures with errors.Is:
	// protocol corruption (a frame that parsed wrong) versus I/O loss (a
	// stream cut mid-frame) versus an oversized, unskippable frame.
	ErrCorruptFrame  = wire.ErrCorruptFrame
	ErrTruncated     = wire.ErrTruncated
	ErrFrameTooLarge = wire.ErrFrameTooLarge

	// Checkpoint sentinels, re-exported from the durability layer.
	// Restore returns an error wrapping ErrNoCheckpoint when the
	// checkpoint directory holds no usable file (none, or all corrupt /
	// config-mismatched); the caller falls back to NewSystem plus full
	// re-ingest. ErrCheckpointCorrupt classifies an individual file that
	// was torn, truncated, or bit-flipped.
	ErrNoCheckpoint      = ckpt.ErrNoCheckpoint
	ErrCheckpointCorrupt = ckpt.ErrCorrupt
)

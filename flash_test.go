package flash

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/workload"
)

func lineTopo() *topo.Graph {
	g := topo.New()
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddNode(n, topo.RoleSwitch, -1)
	}
	g.AddLink(g.MustByName("a"), g.MustByName("b"))
	g.AddLink(g.MustByName("b"), g.MustByName("c"))
	g.AddLink(g.MustByName("c"), g.MustByName("d"))
	return g
}

var dst8 = hs.NewLayout(hs.Field{Name: "dst", Bits: 8})

func wildcard(id int64, a Action) Update {
	return Update{Op: fib.Insert, Rule: Rule{ID: id, Pri: 0, Action: a,
		Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}}
}

func TestModelBuilderBasic(t *testing.T) {
	cfg := Config{Topo: lineTopo(), Layout: dst8, Subspaces: 2}
	b := NewModelBuilder(cfg)
	if b.NumSubspaces() != 2 {
		t.Fatalf("subspaces = %d", b.NumSubspaces())
	}
	blocks := []DeviceBlock{
		{Device: 0, Updates: []Update{wildcard(1, Forward(1))}},
		{Device: 1, Updates: []Update{
			wildcard(1, Drop),
			{Op: fib.Insert, Rule: Rule{ID: 2, Pri: 4, Action: Forward(2),
				Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0x80, Len: 1}}}},
		}},
	}
	if err := b.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	// dst=0x90 (upper half): b forwards to c.
	if a, err := b.ActionAt(1, []uint64{0x90}); err != nil || a != Forward(2) {
		t.Fatalf("ActionAt(1, 0x90) = %v, %v", a, err)
	}
	// dst=0x10 (lower half): b drops.
	if a, err := b.ActionAt(1, []uint64{0x10}); err != nil || a != Drop {
		t.Fatalf("ActionAt(1, 0x10) = %v, %v", a, err)
	}
	if a, err := b.ActionAt(0, []uint64{0x10}); err != nil || a != Forward(1) {
		t.Fatalf("ActionAt(0, 0x10) = %v, %v", a, err)
	}
	if b.StatsSnapshot().ECs < 2 {
		t.Errorf("ECs = %d", b.StatsSnapshot().ECs)
	}
	if b.StatsSnapshot().Transform.Updates == 0 || b.StatsSnapshot().PredicateOps == 0 || b.StatsSnapshot().MemoryNodes == 0 {
		t.Error("stats not accumulated")
	}
}

// TestModelBuilderSubspaceEquivalence: partitioned and unpartitioned
// builders must agree on every point query.
func TestModelBuilderSubspaceEquivalence(t *testing.T) {
	w := workload.LNetAPSP(topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1})
	var blocks []DeviceBlock
	for _, b := range w.Blocks {
		db := DeviceBlock{Device: b.Device}
		for _, u := range b.Updates {
			db.Updates = append(db.Updates, Update{Op: u.Op,
				Rule: Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
		}
		blocks = append(blocks, db)
	}
	one := NewModelBuilder(Config{Topo: w.Topo, Layout: w.Layout, Subspaces: 1})
	four := NewModelBuilder(Config{Topo: w.Topo, Layout: w.Layout, Subspaces: 4})
	if err := one.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	if err := four.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	for h := uint64(0); h < 1<<16; h += 257 {
		for dev := DeviceID(0); dev < DeviceID(w.Topo.N()); dev++ {
			a1, err1 := one.ActionAt(dev, []uint64{h})
			a4, err4 := four.ActionAt(dev, []uint64{h})
			if err1 != nil || err4 != nil {
				t.Fatalf("query errors: %v %v", err1, err4)
			}
			if a1 != a4 {
				t.Fatalf("dev %d header %#x: unpartitioned %v, partitioned %v", dev, h, a1, a4)
			}
		}
	}
}

func TestSystemEarlyDetection(t *testing.T) {
	sys, err := NewSystem(Config{
		Topo:   lineTopo(),
		Layout: dst8,
		Checks: []CheckSpec{{
			Name:    "a-to-d",
			Kind:    CheckReach,
			Expr:    "a .* d",
			Sources: []string{"a"},
			Dest:    "d",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// b drops everything: early unsatisfied from one message.
	results, err := sys.FeedContext(context.Background(), Msg{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Drop)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Verdict != VerdictUnsatisfied {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Witness == nil {
		t.Error("missing witness header")
	}
	if results[0].Epoch != "e1" || results[0].Check != "a-to-d" {
		t.Errorf("result metadata wrong: %+v", results[0])
	}
	if results[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestSystemBadChecks(t *testing.T) {
	base := Config{Topo: lineTopo(), Layout: dst8}
	for name, cs := range map[string]CheckSpec{
		"bad expr":   {Name: "x", Kind: CheckReach, Expr: "(", Sources: []string{"a"}},
		"bad source": {Name: "x", Kind: CheckReach, Expr: "a", Sources: []string{"zz"}},
		"bad dest":   {Name: "x", Kind: CheckReach, Expr: "a", Sources: []string{"a"}, Dest: "zz"},
		"bad exit":   {Name: "x", Kind: CheckLoopFree, ExitNodes: []string{"zz"}},
		"bad kind":   {Name: "x", Kind: CheckKind(99)},
	} {
		cfg := base
		cfg.Checks = []CheckSpec{cs}
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestServerOverTCP(t *testing.T) {
	sys, err := NewSystem(Config{
		Topo:   lineTopo(),
		Layout: dst8,
		Checks: []CheckSpec{{
			Name: "loops", Kind: CheckLoopFree, ExitNodes: []string{"d"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Result
	srv := NewServer(l, sys, func(r Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	ag, err := DialAgent(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// b→c then c→b closes a loop for the whole space within epoch e1.
	msgs := []Msg{
		{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Forward(2))}},
		{Device: 2, Epoch: "e1", Updates: []Update{wildcard(2, Forward(1))}},
	}
	for _, m := range msgs {
		if err := ag.Send(wire.Msg(m)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no result over TCP")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	ag.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Loop != LoopFound {
		t.Fatalf("result = %+v, want loop", got[0])
	}
}

func TestBadSubspaceCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two subspaces")
		}
	}()
	NewModelBuilder(Config{Topo: lineTopo(), Layout: dst8, Subspaces: 3})
}

// TestModelBuilderCompact: engine rotation must shed dead nodes after
// churn while preserving every point query.
func TestModelBuilderCompact(t *testing.T) {
	b := NewModelBuilder(Config{Topo: lineTopo(), Layout: dst8, Subspaces: 2})
	// Install a base plane, then churn: many short-lived rules.
	base := []DeviceBlock{
		{Device: 0, Updates: []Update{wildcard(1, Forward(1))}},
		{Device: 1, Updates: []Update{wildcard(1, Drop)}},
	}
	if err := b.ApplyBlock(base); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		id := int64(100 + round)
		r := Update{Op: fib.Insert, Rule: Rule{ID: id, Pri: 5, Action: Forward(2),
			Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix,
				Value: uint64(round * 7 % 256), Len: 6}}}}
		if err := b.ApplyBlock([]DeviceBlock{{Device: 1, Updates: []Update{r}}}); err != nil {
			t.Fatal(err)
		}
		d := r
		d.Op = fib.Delete
		if err := b.ApplyBlock([]DeviceBlock{{Device: 1, Updates: []Update{d}}}); err != nil {
			t.Fatal(err)
		}
	}
	before := b.StatsSnapshot().MemoryNodes
	// Record queries before compaction.
	type q struct {
		dev DeviceID
		h   uint64
	}
	var queries []q
	var want []Action
	for h := uint64(0); h < 256; h += 17 {
		for dev := DeviceID(0); dev < 2; dev++ {
			a, err := b.ActionAt(dev, []uint64{h})
			if err != nil {
				t.Fatal(err)
			}
			queries = append(queries, q{dev, h})
			want = append(want, a)
		}
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	after := b.StatsSnapshot().MemoryNodes
	if after >= before {
		t.Errorf("Compact did not shrink memory: %d -> %d", before, after)
	}
	for i, qq := range queries {
		a, err := b.ActionAt(qq.dev, []uint64{qq.h})
		if err != nil {
			t.Fatal(err)
		}
		if a != want[i] {
			t.Fatalf("query (%d,%#x) changed after Compact: %v -> %v", qq.dev, qq.h, want[i], a)
		}
	}
	// Further updates still work after rotation.
	if err := b.ApplyBlock([]DeviceBlock{{Device: 0, Updates: []Update{
		{Op: fib.Insert, Rule: Rule{ID: 999, Pri: 9, Action: Drop,
			Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0x40, Len: 2}}}},
	}}}); err != nil {
		t.Fatal(err)
	}
	if a, _ := b.ActionAt(0, []uint64{0x41}); a != Drop {
		t.Fatalf("post-compact update not applied: %v", a)
	}
}

func TestSystemAnycastAndCoverage(t *testing.T) {
	// Diamond: s—{m1,m2}—t (both middle nodes lead to t).
	g := topo.New()
	g.AddNode("s", topo.RoleSwitch, -1)
	g.AddNode("m1", topo.RoleSwitch, -1)
	g.AddNode("m2", topo.RoleSwitch, -1)
	g.AddNode("t", topo.RoleSwitch, -1)
	link := func(a, b string) { g.AddLink(g.MustByName(a), g.MustByName(b)) }
	link("s", "m1")
	link("s", "m2")
	link("m1", "t")
	link("m2", "t")

	sys, err := NewSystem(Config{
		Topo:   g,
		Layout: dst8,
		Checks: []CheckSpec{
			{Name: "any-mid", Kind: CheckAnycast, Expr: "s >", Sources: []string{"s"},
				Dests: []string{"m1", "m2"}},
			{Name: "cover-mid", Kind: CheckReach, Expr: "cover s >", Sources: []string{"s"},
				Dest: ""},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// s forwards everything to m1 only: anycast satisfied once m1
	// delivers... but m1 is a Dest marker, not a deliverer; feed m1 too.
	results, err := sys.FeedContext(context.Background(), Msg{Device: 0, Epoch: "e1",
		Updates: []Update{wildcard(1, Forward(1))}})
	if err != nil {
		t.Fatal(err)
	}
	// cover-mid requires s to forward to both m1 and m2: violated now.
	foundCover := false
	for _, r := range results {
		if r.Check == "cover-mid" && r.Verdict == VerdictUnsatisfied {
			foundCover = true
		}
	}
	if !foundCover {
		t.Fatalf("coverage violation missing from %+v", results)
	}
	// Missing Dests rejected.
	if _, err := NewSystem(Config{Topo: g, Layout: dst8,
		Checks: []CheckSpec{{Name: "x", Kind: CheckMulticast, Expr: "s >", Sources: []string{"s"}}}}); err == nil {
		t.Fatal("multicast without Dests accepted")
	}
}

package flash

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func waitEvent(t *testing.T, sub *VerdictSub) VerdictEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatal("subscription closed while waiting for an event")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no verdict event within 5s")
	}
	panic("unreachable")
}

func TestVerdictSubscriptionFirstAndFlip(t *testing.T) {
	sys := reachSys(t)
	sub := sys.SubscribeVerdicts("a-to-d", 0)
	defer sub.Cancel()
	if sub.Spec() != "a-to-d" {
		t.Fatalf("Spec() = %q", sub.Spec())
	}

	feedLine(t, sys, "e1", Forward(2))
	ev := waitEvent(t, sub)
	if !ev.First || ev.Spec != "a-to-d" || ev.Verdict != VerdictSatisfied {
		t.Fatalf("first event = %+v, want first satisfied a-to-d", ev)
	}
	if ev.Epoch != "e1" || ev.Seq == 0 {
		t.Fatalf("event metadata = %+v", ev)
	}

	// A new epoch where b drops flips the verdict; the event must carry
	// the previous state.
	feedLine(t, sys, "e2", Drop)
	ev = waitEvent(t, sub)
	if ev.First || ev.Verdict != VerdictUnsatisfied || ev.PrevVerdict != VerdictSatisfied {
		t.Fatalf("flip event = %+v, want unsatisfied with prev satisfied", ev)
	}
	if ev.Epoch != "e2" {
		t.Fatalf("flip epoch = %q", ev.Epoch)
	}

	// Re-settling the same verdict in a later epoch is silent: only the
	// stored epoch moves.
	feedLine(t, sys, "e3", Drop)
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected event for a non-flip: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	for _, vs := range sys.Verdicts() {
		if vs.Spec == "a-to-d" && vs.Epoch != "e3" {
			t.Fatalf("status epoch = %q, want e3", vs.Epoch)
		}
	}
}

func TestVerdictSubscriptionSpecFilter(t *testing.T) {
	sys, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithChecks(
			CheckSpec{Name: "a-to-d", Kind: CheckReach, Expr: "a .* d", Sources: []string{"a"}, Dest: "d"},
			CheckSpec{Name: "loops", Kind: CheckLoopFree},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	loopsOnly := sys.SubscribeVerdicts("loops", 0)
	all := sys.SubscribeVerdicts("", 0)
	defer loopsOnly.Cancel()
	defer all.Cancel()

	feedLine(t, sys, "e1", Forward(2))
	if ev := waitEvent(t, loopsOnly); ev.Spec != "loops" {
		t.Fatalf("filtered subscription got %+v", ev)
	}
	specs := map[string]bool{}
	specs[waitEvent(t, all).Spec] = true
	specs[waitEvent(t, all).Spec] = true
	if !specs["loops"] || !specs["a-to-d"] {
		t.Fatalf("unfiltered subscription saw %v, want both specs", specs)
	}
}

// TestVerdictSubscriberChaos is the acceptance chaos row: subscribers
// that never read, plus one canceled mid-push from another goroutine,
// must not stall or perturb ingest — the verdict multiset matches a
// subscriber-free control run exactly.
func TestVerdictSubscriberChaos(t *testing.T) {
	const seed = 0xc4a05
	_, seq := diffWorkload(seed)
	w, _ := diffWorkload(seed)
	epochs := diffStream(t, seq, 24)

	newSys := func() *System {
		sys, err := NewSystem(
			WithTopo(w.Topo),
			WithLayout(w.Layout),
			WithSubspaces(diffSubspaces, ""),
			WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	run := func(sys *System, chaos bool) []string {
		var stuck, victim *VerdictSub
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if chaos {
			// stuck: buffer of one, never read — every later event is
			// dropped on the floor. victim: canceled concurrently with
			// publishes.
			stuck = sys.SubscribeVerdicts("", 1)
			victim = sys.SubscribeVerdicts("", 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				victim.Cancel()
				close(stop)
			}()
		}
		var verdicts []string
		for _, msgs := range epochs {
			rs, err := sys.FeedBatch(context.Background(), msgs)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				verdicts = append(verdicts, r.String())
			}
		}
		if chaos {
			<-stop
			wg.Wait()
			stuck.Cancel()
			if ds := sys.StatsSnapshot().Subscribers; ds != 0 {
				t.Fatalf("%d subscribers still registered after Cancel", ds)
			}
		}
		sort.Strings(verdicts)
		return verdicts
	}

	want := run(newSys(), false)
	if len(want) == 0 {
		t.Fatal("control run produced no verdicts")
	}
	got := run(newSys(), true)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("verdict multiset perturbed by chaotic subscribers:\n  got %d verdicts\n  want %d", len(got), len(want))
	}
}

func TestVerdictSubCancelIdempotent(t *testing.T) {
	sys := reachSys(t)
	sub := sys.SubscribeVerdicts("", 0)
	sub.Cancel()
	sub.Cancel()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("Events open after Cancel")
	}
	// Publishing to a canceled subscription is a no-op, not a drop.
	feedLine(t, sys, "e1", Forward(2))
	if sub.Dropped() != 0 {
		t.Fatalf("Dropped() = %d on canceled subscription", sub.Dropped())
	}
}

package flash

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/hs"
	"repro/internal/openr"
	"repro/internal/topo"
	"repro/internal/wire"
)

// TestEndToEndOpenRToTCP drives the complete production pipeline of
// Figure 1: a simulated OpenR control plane produces epoch-tagged FIB
// diffs; per-device agents stream them to the Flash server over TCP; the
// CE2D dispatcher behind it must report a consistent loop-free verdict
// for the converged epoch after a link failure — and nothing transient.
func TestEndToEndOpenRToTCP(t *testing.T) {
	g := topo.Internet2()
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})

	sys, err := NewSystem(Config{
		Topo:   g,
		Layout: layout,
		Checks: []CheckSpec{{Name: "loops", Kind: CheckLoopFree}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var results []Result
	srv := NewServer(l, sys, func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	// Simulate: bootstrap, then a link failure and reconvergence.
	space := hs.NewSpace(layout)
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	sim := openr.New(g, space, owners, openr.DefaultOptions())
	sim.FailLink(10_000, g.MustByName("chic"), g.MustByName("kans"))
	sim.Run(60_000_000)

	// One agent connection per device, frames in per-device order.
	agents := make(map[DeviceID]*wire.Agent)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for _, m := range sim.Messages() {
		ag, ok := agents[m.Msg.Device]
		if !ok {
			ag, err = DialAgent(l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			agents[m.Msg.Device] = ag
		}
		wm, err := wire.FromFib(m.Msg.Device, string(m.Msg.Epoch), m.Msg.Updates)
		if err != nil {
			t.Fatal(err)
		}
		if err := ag.Send(wm); err != nil {
			t.Fatal(err)
		}
		// Serialize across agents so cross-device ordering matches the
		// simulation's arrival order: the server's ack proves the frame
		// was consumed, so the next agent's frame arrives strictly after.
		waitForDrain(t, ag)
	}

	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		n := len(results)
		mu.Unlock()
		if n >= g.N() { // one loop-free verdict per destination class
			break
		}
		select {
		case <-deadline:
			t.Fatalf("got %d results, want ≥ %d", n, g.N())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	epochs := map[string]bool{}
	for _, r := range results {
		if r.Loop != LoopFree {
			t.Fatalf("non-loop-free result over TCP: %+v", r)
		}
		epochs[r.Epoch] = true
	}
	// All verdicts must belong to consistent epochs (bootstrap and/or the
	// post-failure epoch) — and the post-failure epoch must be among them.
	if len(epochs) == 0 || len(epochs) > 2 {
		t.Fatalf("verdict epochs: %v", epochs)
	}
}

// waitForDrain blocks until the server has acknowledged (and therefore
// consumed) every frame the agent has sent.
func waitForDrain(t *testing.T, ag *wire.Agent) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ag.WaitAcked(ctx); err != nil {
		t.Fatal(err)
	}
}

package flash

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ServeOption tunes a Server's fault-tolerance and subscription
// behavior. Like Option and AdminOption it is an interface with a
// private apply method — the library's one functional-options idiom.
type ServeOption interface {
	applyServe(*serveOpts)
}

// serveOptionFunc adapts a plain function to the ServeOption interface.
type serveOptionFunc func(*serveOpts)

func (f serveOptionFunc) applyServe(o *serveOpts) { f(o) }

type serveOpts struct {
	quarantineTTL time.Duration
	readTimeout   time.Duration
	writeTimeout  time.Duration
	ackWindow     int
	acceptBackoff time.Duration
	subBuffer     int
	durableAcks   bool
	restored      map[string]uint64
}

func defaultServeOpts() serveOpts {
	return serveOpts{quarantineTTL: time.Minute, subBuffer: 64}
}

// WithQuarantineTTL sets how long a faulty device stays quarantined
// before it may feed again (default one minute; 0 quarantines until
// restart). A quarantined device's frames are consumed and acknowledged
// but not applied, so one poisoned agent cannot wedge ingestion.
func WithQuarantineTTL(d time.Duration) ServeOption {
	return serveOptionFunc(func(o *serveOpts) { o.quarantineTTL = d })
}

// WithAgentReadTimeout closes agent connections silent for longer than d
// (reconnecting clients send heartbeats to stay alive). 0 disables.
func WithAgentReadTimeout(d time.Duration) ServeOption {
	return serveOptionFunc(func(o *serveOpts) { o.readTimeout = d })
}

// WithAgentWriteTimeout bounds each ack write to an agent. 0 disables.
func WithAgentWriteTimeout(d time.Duration) ServeOption {
	return serveOptionFunc(func(o *serveOpts) { o.writeTimeout = d })
}

// WithAckWindow bounds the per-stream out-of-order buffer used to
// reassemble replayed frames (default 1024 frames).
func WithAckWindow(n int) ServeOption {
	return serveOptionFunc(func(o *serveOpts) { o.ackWindow = n })
}

// WithAcceptBackoff caps the retry backoff for temporary accept errors.
func WithAcceptBackoff(max time.Duration) ServeOption {
	return serveOptionFunc(func(o *serveOpts) { o.acceptBackoff = max })
}

// WithSubscriptionBuffer bounds each wire verdict subscription's
// delivery buffer (default 64 events). Pushes that find the buffer full
// are dropped — ingest never blocks on a slow subscriber.
func WithSubscriptionBuffer(n int) ServeOption {
	return serveOptionFunc(func(o *serveOpts) {
		if n > 0 {
			o.subBuffer = n
		}
	})
}

// WithDurableSessions integrates the session layer with checkpointing:
// the server acknowledges an agent frame only once a checkpoint
// containing it has been committed (the durable floor, advanced by each
// Server.Checkpoint), so an agent's replay buffer always covers the
// checkpoint-to-now suffix and a crash after the last checkpoint loses
// nothing. restored preloads per-stream sequence floors from a
// RestoreReport (nil when booting fresh); reconnecting agents resume
// from those floors and replay only the post-checkpoint suffix.
//
// Without this option acks follow consumption and a restored server
// relies on agents replaying from their own buffers.
func WithDurableSessions(restored map[string]uint64) ServeOption {
	return serveOptionFunc(func(o *serveOpts) {
		o.durableAcks = true
		o.restored = restored
	})
}

// Server runs a System behind the wire protocol: device agents connect
// over TCP and stream epoch-tagged update frames; deterministic detection
// results are delivered to the OnResult callback.
//
// The server degrades gracefully instead of failing loudly: a device
// whose frames fail to parse or whose Feed errors is quarantined — its
// frames are dropped (and acknowledged, so agents do not replay them
// forever) until the quarantine expires — while every other device and
// connection keeps verifying. Health reports the degradation; the serve
// sub-registry counts every fault event.
type Server struct {
	sys      *System
	srv      *wire.Server
	opts     serveOpts
	OnResult func(Result)

	mu         sync.Mutex
	baseCtx    context.Context // set by ServeContext; nil before Serve
	quarantine map[DeviceID]quarantineEntry
	// resultSubs are live wire result-stream subscriptions (shard
	// coordinators); handle pushes every result to each before the
	// frame that caused it is acked.
	resultSubs map[*resultSub]struct{}

	results         *obs.Counter
	feedErrors      *obs.Counter
	handleNs        *obs.Histogram
	quarantines     *obs.Counter
	quarantineDrops *obs.Counter
}

type quarantineEntry struct {
	until time.Time // zero: permanent
	cause string
}

// NewServer wraps a System behind a listener. Call Serve (or
// ServeContext) to start. If the System was built WithMetrics, frame,
// byte and connection counters are published under the registry's
// "wire" sub-registry and handler latency plus quarantine counters
// under "serve".
func NewServer(l net.Listener, sys *System, onResult func(Result), opts ...ServeOption) *Server {
	o := defaultServeOpts()
	for _, opt := range opts {
		opt.applyServe(&o)
	}
	s := &Server{
		sys: sys, opts: o, OnResult: onResult,
		quarantine: make(map[DeviceID]quarantineEntry),
		resultSubs: make(map[*resultSub]struct{}),
	}
	if reg := sys.Metrics(); reg != nil {
		sreg := reg.Sub("serve")
		s.results = sreg.Counter("results")
		s.feedErrors = sreg.Counter("feed_errors")
		s.handleNs = sreg.Histogram("handle_ns")
		s.quarantines = sreg.Counter("quarantines_total")
		s.quarantineDrops = sreg.Counter("quarantine_drops")
		sreg.Func("quarantined", func() int64 {
			return int64(len(s.QuarantinedDevices()))
		})
	}
	wopts := []wire.ServerOption{
		wire.WithCorruptPolicy(func(dev fib.DeviceID, seq uint64, err error) bool {
			// The envelope identified the device, so the connection (and
			// every other device multiplexed on it) survives: quarantine
			// the device, consume the frame.
			s.Quarantine(dev, fmt.Sprintf("corrupt frame at seq %d: %v", seq, err))
			return true
		}),
		wire.WithSubscriptions(s.subscribeHook),
		wire.WithResults(s.resultsHook),
		wire.WithFingerprints(sys.SubspaceFingerprints),
	}
	if log := sys.Logger(); log != nil {
		wopts = append(wopts, wire.WithServerLog(log.Printf))
	}
	if o.readTimeout > 0 {
		wopts = append(wopts, wire.WithReadTimeout(o.readTimeout))
	}
	if o.writeTimeout > 0 {
		wopts = append(wopts, wire.WithWriteTimeout(o.writeTimeout))
	}
	if o.ackWindow > 0 {
		wopts = append(wopts, wire.WithWindow(o.ackWindow))
	}
	if o.acceptBackoff > 0 {
		wopts = append(wopts, wire.WithAcceptBackoff(o.acceptBackoff))
	}
	if o.durableAcks {
		wopts = append(wopts, wire.WithDeferredAcks())
	}
	if len(o.restored) > 0 {
		wopts = append(wopts, wire.WithStreams(o.restored))
	}
	s.srv = wire.NewServer(l, s.handle, wopts...)
	s.srv.Instrument(sys.Metrics().Sub("wire"))
	return s
}

// handle consumes one in-order, deduplicated message. It only returns an
// error for faults worth a replay; device-level failures quarantine the
// device and consume the frame, keeping the connection (and the other
// devices sharing it) alive.
func (s *Server) handle(m wire.Msg) error {
	if s.isQuarantined(m.Device) {
		s.quarantineDrops.Inc()
		return nil // consumed (and acked) but not applied
	}
	var start time.Time
	if s.handleNs != nil {
		start = time.Now()
	}
	results, err := s.sys.FeedContext(s.feedCtx(), m)
	if err != nil {
		s.feedErrors.Inc()
		if log := s.sys.Logger(); log != nil {
			log.Printf("flash: serve: device %d epoch %s: %v", m.Device, m.Epoch, err)
		}
		// A Feed error is this device's fault (bad epoch, poisoned
		// updates); the rest of the stream is fine. Quarantine and move
		// on instead of tearing the connection down.
		s.Quarantine(m.Device, fmt.Sprintf("epoch %s: %v", m.Epoch, err))
		return nil
	}
	if s.handleNs != nil {
		s.handleNs.Observe(time.Since(start))
	}
	s.results.Add(int64(len(results)))
	if s.OnResult != nil {
		for _, r := range results {
			s.OnResult(r)
		}
	}
	s.pushResults(results)
	return nil
}

// resultSub is one wire result-stream subscription: push writes a
// result frame to the subscribing connection; filter (when non-nil)
// restricts delivery to a subspace set.
type resultSub struct {
	push   func(wire.ResultEvent) error
	filter map[int]bool
}

// resultsHook serves wire result-sub frames: the subscription delivers
// every subsequent result synchronously from the ingest path, so a
// coordinator that has drained its acks has seen every result its
// frames triggered. Unlike verdict subscriptions there is no buffer —
// ordering is the point — so a slow subscriber back-pressures ingest
// on its own connection's writer.
func (s *Server) resultsHook(subspaces []int, push func(wire.ResultEvent) error) (func(), error) {
	sub := &resultSub{push: push}
	if len(subspaces) > 0 {
		sub.filter = make(map[int]bool, len(subspaces))
		for _, i := range subspaces {
			sub.filter[i] = true
		}
	}
	s.mu.Lock()
	s.resultSubs[sub] = struct{}{}
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		delete(s.resultSubs, sub)
		s.mu.Unlock()
	}
	return cancel, nil
}

// pushResults fans freshly-merged results out to the wire result
// subscribers. A push error means that subscriber's connection is gone;
// it is dropped (its cancel will also run on connection teardown).
func (s *Server) pushResults(results []Result) {
	if len(results) == 0 {
		return
	}
	s.mu.Lock()
	subs := make([]*resultSub, 0, len(s.resultSubs))
	for sub := range s.resultSubs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	for _, r := range results {
		ev := resultToWire(r)
		for _, sub := range subs {
			if sub.filter != nil && !sub.filter[r.Subspace] {
				continue
			}
			if sub.push(ev) != nil {
				s.mu.Lock()
				delete(s.resultSubs, sub)
				s.mu.Unlock()
			}
		}
	}
}

// resultToWire converts a flash result to its wire push form.
func resultToWire(r Result) wire.ResultEvent {
	return wire.ResultEvent{
		Subspace: r.Subspace,
		Epoch:    r.Epoch,
		Check:    r.Check,
		Verdict:  uint8(r.Verdict),
		Loop:     uint8(r.Loop),
		Witness:  r.Witness,
	}
}

// ResultFromWire decodes a wire-pushed result event back into the
// library's typed form (the inverse of the server's result push).
func ResultFromWire(ev wire.ResultEvent) Result {
	return Result{
		Subspace: ev.Subspace,
		Epoch:    ev.Epoch,
		Check:    ev.Check,
		Verdict:  Verdict(ev.Verdict),
		Loop:     LoopResult(ev.Loop),
		Witness:  ev.Witness,
	}
}

// feedCtx returns the server's root feed context: the ServeContext
// context when serving under one, else background.
//
//flashvet:allow ctxfeed — this is the server's context root; Serve (without ServeContext) has no caller context to inherit
func (s *Server) feedCtx() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseCtx != nil {
		return s.baseCtx
	}
	return context.Background()
}

// subscribeHook bridges wire subscribe frames to the System's verdict
// bus: each subscription gets its own buffered VerdictSub and a pump
// goroutine that pushes events to the agent connection. A push failure
// (connection gone) or the server-side cancel tears the pump down;
// ingest never blocks on it.
func (s *Server) subscribeHook(spec string, push func(wire.VerdictEvent) error) (func(), error) {
	sub := s.sys.SubscribeVerdicts(spec, s.opts.subBuffer)
	go func() {
		for ev := range sub.Events() {
			if push(verdictToWire(ev)) != nil {
				sub.Cancel()
				return
			}
		}
	}()
	return sub.Cancel, nil
}

// verdictToWire converts a flash verdict event to its wire form.
func verdictToWire(ev VerdictEvent) wire.VerdictEvent {
	return wire.VerdictEvent{
		Seq:         ev.Seq,
		Spec:        ev.Spec,
		Epoch:       ev.Epoch,
		Subspace:    ev.Subspace,
		Verdict:     uint8(ev.Verdict),
		Loop:        uint8(ev.Loop),
		PrevVerdict: uint8(ev.PrevVerdict),
		PrevLoop:    uint8(ev.PrevLoop),
		First:       ev.First,
		Witness:     ev.Witness,
	}
}

// VerdictFromWire decodes a wire-pushed verdict event (as delivered on
// an Agent's Verdicts channel) back into the library's typed form.
func VerdictFromWire(ev wire.VerdictEvent) VerdictEvent {
	return VerdictEvent{
		Seq:         ev.Seq,
		Spec:        ev.Spec,
		Epoch:       ev.Epoch,
		Subspace:    ev.Subspace,
		Verdict:     Verdict(ev.Verdict),
		Loop:        LoopResult(ev.Loop),
		PrevVerdict: Verdict(ev.PrevVerdict),
		PrevLoop:    LoopResult(ev.PrevLoop),
		First:       ev.First,
		Witness:     ev.Witness,
	}
}

// Quarantine bars a device from feeding the verifier until the
// configured TTL expires (or forever, with a TTL of 0). Its frames are
// consumed and acknowledged but dropped. Re-quarantining an already
// quarantined device refreshes the expiry but is not re-counted.
func (s *Server) Quarantine(dev DeviceID, cause string) {
	var until time.Time
	if s.opts.quarantineTTL > 0 {
		until = time.Now().Add(s.opts.quarantineTTL)
	}
	s.mu.Lock()
	_, again := s.quarantine[dev]
	s.quarantine[dev] = quarantineEntry{until: until, cause: cause}
	s.mu.Unlock()
	if !again {
		s.quarantines.Inc()
		if log := s.sys.Logger(); log != nil {
			log.Printf("flash: serve: device %d quarantined: %s", dev, cause)
		}
	}
}

// isQuarantined checks (and lazily expires) a device's quarantine.
func (s *Server) isQuarantined(dev DeviceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.quarantine[dev]
	if !ok {
		return false
	}
	if !q.until.IsZero() && time.Now().After(q.until) {
		delete(s.quarantine, dev)
		return false
	}
	return true
}

// QuarantinedDevices returns the currently quarantined devices, sorted.
func (s *Server) QuarantinedDevices() []DeviceID {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceID, 0, len(s.quarantine))
	for dev, q := range s.quarantine {
		if !q.until.IsZero() && now.After(q.until) {
			delete(s.quarantine, dev)
			continue
		}
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Health reports ingestion-side degradation (quarantined devices),
// merged with the underlying System's worker state by callers that
// mount both on AdminHandler.
func (s *Server) Health() Health {
	var h Health
	now := time.Now()
	s.mu.Lock()
	for dev, q := range s.quarantine {
		if !q.until.IsZero() && now.After(q.until) {
			continue
		}
		h.Degraded = true
		h.Reasons = append(h.Reasons, fmt.Sprintf("device %d quarantined: %s", dev, q.cause))
	}
	s.mu.Unlock()
	sort.Strings(h.Reasons)
	return h
}

// Streams reports the number of agent streams with server-side state.
func (s *Server) Streams() int { return s.srv.Streams() }

// Checkpoint captures the system state AND the wire sequence cut
// atomically (no frame can be consumed between the two), writes the
// checkpoint crash-consistently into dir, and — once the file is
// durable — advances the session layer's durable ack floors so agents
// may prune everything the checkpoint covers. Ingest is blocked only
// for the in-memory copy; encode and fsync run concurrently with live
// feeds.
func (s *Server) Checkpoint(dir string) (CheckpointInfo, error) {
	var c *ckpt.Checkpoint
	s.srv.SnapshotStreams(func(streams map[string]uint64) {
		c = s.sys.capture(streams)
	})
	info, err := s.sys.writeCheckpoint(dir, c)
	if err != nil {
		return info, err
	}
	s.srv.CommitDurable(c.Streams)
	return info, nil
}

// RestoreProgress reports session-resume progress after a warm restart:
// preloaded is the number of streams restored from the checkpoint,
// pending how many of them have not yet re-established a connection.
// A fresh (non-restored) server reports 0, 0; the admin health endpoint
// surfaces pending > 0 as a "restoring" state.
func (s *Server) RestoreProgress() (pending, preloaded int) {
	return s.srv.ResumePending()
}

// Serve accepts agent connections until Close. It is ServeContext with a
// background context.
func (s *Server) Serve() error { return s.srv.Serve() }

// ServeContext accepts agent connections until the context is canceled
// or Close is called. On cancellation the server shuts down gracefully —
// the listener closes, live connections are torn down, and in-flight
// handlers drain — and ctx.Err() is returned.
func (s *Server) ServeContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	s.baseCtx = ctx
	s.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- s.srv.Serve() }()
	select {
	case <-ctx.Done():
		s.srv.Close()
		<-done
		return ctx.Err()
	case err := <-done:
		return err
	}
}

// Close shuts the server down and drains in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// AgentOptions configures a fault-tolerant device agent (see
// DialAgentOptions). It aliases the wire client options.
type AgentOptions = wire.ClientOptions

// DialAgent connects a device agent to a Flash server address with
// fail-fast defaults (no reconnection).
func DialAgent(addr string) (*wire.Agent, error) { return wire.Dial(addr) }

// DialAgentOptions connects a device agent with explicit fault-tolerance
// options — reconnection with exponential backoff, heartbeats, resend
// timeouts (see wire.ClientOptions).
func DialAgentOptions(addr string, o AgentOptions) (*wire.Agent, error) {
	return wire.NewClient(addr, o)
}

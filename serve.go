package flash

import (
	"context"
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Server runs a System behind the wire protocol: device agents connect
// over TCP and stream epoch-tagged update frames; deterministic detection
// results are delivered to the OnResult callback.
type Server struct {
	sys      *System
	srv      *wire.Server
	OnResult func(Result)

	results    *obs.Counter
	feedErrors *obs.Counter
	handleNs   *obs.Histogram
}

// NewServer wraps a System behind a listener. Call Serve (or
// ServeContext) to start. If the System was built WithMetrics, frame,
// byte and connection counters are published under the registry's
// "wire" sub-registry and handler latency under "serve".
func NewServer(l net.Listener, sys *System, onResult func(Result)) *Server {
	s := &Server{sys: sys, OnResult: onResult}
	if reg := sys.Metrics(); reg != nil {
		sreg := reg.Sub("serve")
		s.results = sreg.Counter("results")
		s.feedErrors = sreg.Counter("feed_errors")
		s.handleNs = sreg.Histogram("handle_ns")
	}
	s.srv = wire.NewServer(l, func(m wire.Msg) error {
		var start time.Time
		if s.handleNs != nil {
			start = time.Now()
		}
		results, err := sys.Feed(m)
		if err != nil {
			s.feedErrors.Inc()
			if log := sys.Logger(); log != nil {
				log.Printf("flash: serve: device %d epoch %s: %v", m.Device, m.Epoch, err)
			}
			return err
		}
		if s.handleNs != nil {
			s.handleNs.Observe(time.Since(start))
		}
		s.results.Add(int64(len(results)))
		if s.OnResult != nil {
			for _, r := range results {
				s.OnResult(r)
			}
		}
		return nil
	})
	s.srv.Instrument(sys.Metrics().Sub("wire"))
	return s
}

// Serve accepts agent connections until Close. It is ServeContext with a
// background context.
func (s *Server) Serve() error { return s.srv.Serve() }

// ServeContext accepts agent connections until the context is canceled
// or Close is called. On cancellation the server shuts down gracefully —
// the listener closes, live connections are torn down, and in-flight
// handlers drain — and ctx.Err() is returned.
func (s *Server) ServeContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- s.srv.Serve() }()
	select {
	case <-ctx.Done():
		s.srv.Close()
		<-done
		return ctx.Err()
	case err := <-done:
		return err
	}
}

// Close shuts the server down and drains in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// DialAgent connects a device agent to a Flash server address.
func DialAgent(addr string) (*wire.Agent, error) { return wire.Dial(addr) }

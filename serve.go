package flash

import (
	"net"

	"repro/internal/wire"
)

// Server runs a System behind the wire protocol: device agents connect
// over TCP and stream epoch-tagged update frames; deterministic detection
// results are delivered to the OnResult callback.
type Server struct {
	sys      *System
	srv      *wire.Server
	OnResult func(Result)
}

// NewServer wraps a System behind a listener. Call Serve to start.
func NewServer(l net.Listener, sys *System, onResult func(Result)) *Server {
	s := &Server{sys: sys, OnResult: onResult}
	s.srv = wire.NewServer(l, func(m wire.Msg) error {
		results, err := sys.Feed(m)
		if err != nil {
			return err
		}
		if s.OnResult != nil {
			for _, r := range results {
				s.OnResult(r)
			}
		}
		return nil
	})
	return s
}

// Serve accepts agent connections until Close.
func (s *Server) Serve() error { return s.srv.Serve() }

// Close shuts the server down and drains in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// DialAgent connects a device agent to a Flash server address.
func DialAgent(addr string) (*wire.Agent, error) { return wire.Dial(addr) }

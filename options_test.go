package flash

import (
	"context"
	"errors"
	"log"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestBuildConfigOptions checks that functional options fold into the
// same Config the struct-based API takes.
func TestBuildConfigOptions(t *testing.T) {
	g := lineTopo()
	reg := obs.NewRegistry("t")
	logger := log.New(os.Stderr, "", 0)
	succ := func(DeviceID) []DeviceID { return nil }
	cfg := buildConfig([]Option{
		WithTopo(g),
		WithLayout(dst8),
		WithSubspaces(4, "dst"),
		WithChecks(CheckSpec{Name: "a", Kind: CheckLoopFree}),
		WithChecks(CheckSpec{Name: "b", Kind: CheckLoopFree}),
		WithPerUpdate(true),
		WithSuccessors(succ),
		WithMetrics(reg),
		WithLogger(logger),
	})
	if cfg.Topo != g || cfg.Layout != dst8 {
		t.Error("topo/layout not set")
	}
	if cfg.Subspaces != 4 || cfg.SubspaceField != "dst" {
		t.Errorf("subspaces = %d/%q", cfg.Subspaces, cfg.SubspaceField)
	}
	// WithChecks appends across calls.
	if len(cfg.Checks) != 2 || cfg.Checks[0].Name != "a" || cfg.Checks[1].Name != "b" {
		t.Errorf("checks = %+v", cfg.Checks)
	}
	if !cfg.PerUpdate || cfg.Succ == nil {
		t.Error("per-update/succ not set")
	}
	if cfg.Metrics != reg || cfg.Logger != logger {
		t.Error("metrics/logger not set")
	}
}

// TestConfigIsAnOption checks the compatibility bridge: a bare Config
// (or WithConfig) replaces the whole configuration, and later options
// override it.
func TestConfigIsAnOption(t *testing.T) {
	base := Config{Topo: lineTopo(), Layout: dst8, Subspaces: 2}
	got := buildConfig([]Option{base})
	if got.Topo != base.Topo || got.Subspaces != 2 {
		t.Errorf("bare Config option: got %+v", got)
	}
	got = buildConfig([]Option{WithConfig(base), WithSubspaces(8, "")})
	if got.Subspaces != 8 || got.Topo != base.Topo {
		t.Errorf("WithConfig + override: got %+v", got)
	}
	// A later Config replaces everything set before it.
	got = buildConfig([]Option{WithSubspaces(8, ""), WithConfig(base)})
	if got.Subspaces != 2 {
		t.Errorf("Config should replace wholesale, got subspaces=%d", got.Subspaces)
	}
}

// TestOptionsEquivalentToConfig runs the same verification through a
// struct-configured and an options-configured System and expects
// identical results.
func TestOptionsEquivalentToConfig(t *testing.T) {
	check := CheckSpec{Name: "loops", Kind: CheckLoopFree, ExitNodes: []string{"d"}}
	old, err := NewSystem(Config{Topo: lineTopo(), Layout: dst8, Subspaces: 2, Checks: []CheckSpec{check}})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithSubspaces(2, ""),
		WithChecks(check),
	)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Msg{
		{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Forward(2))}},
		{Device: 2, Epoch: "e1", Updates: []Update{wildcard(2, Forward(1))}},
	}
	for _, sys := range []*System{old, opt} {
		var all []Result
		for _, m := range msgs {
			rs, err := sys.FeedContext(context.Background(), m)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rs...)
		}
		found := false
		for _, r := range all {
			if r.Loop == LoopFound {
				found = true
			}
		}
		if !found {
			t.Errorf("system %p: no loop found in %+v", sys, all)
		}
	}
}

func TestFeedContextCanceled(t *testing.T) {
	sys, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.FeedContext(ctx, Msg{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Drop)}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FeedContext on canceled ctx: %v", err)
	}
	// The canceled feed must not have been applied: the same message is
	// still accepted afterwards (no double-send epoch violation).
	if _, err := sys.FeedContext(context.Background(), Msg{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Drop)}}); err != nil {
		t.Fatalf("feed after canceled feed: %v", err)
	}
}

func TestPipelineSentinels(t *testing.T) {
	sys, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(sys, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.FeedContext(ctx, Msg{Device: 1, Epoch: "e1"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FeedContext on canceled ctx: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	err = p.FeedContext(context.Background(), Msg{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Drop)}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Feed after Close: %v, want ErrClosed", err)
	}
}

func TestUnknownDeviceSentinel(t *testing.T) {
	cases := []CheckSpec{
		{Name: "src", Kind: CheckReach, Expr: ".*", Sources: []string{"nope"}, Dest: "d"},
		{Name: "dst", Kind: CheckReach, Expr: ".*", Sources: []string{"a"}, Dest: "nope"},
		{Name: "exit", Kind: CheckLoopFree, ExitNodes: []string{"nope"}},
	}
	for _, cs := range cases {
		_, err := NewSystem(WithTopo(lineTopo()), WithLayout(dst8), WithChecks(cs))
		if !errors.Is(err, ErrUnknownDevice) {
			t.Errorf("check %q: err = %v, want ErrUnknownDevice", cs.Name, err)
		}
	}
}

// TestBadEpochSentinel: a device that keeps sending updates for an epoch
// after synchronizing with it violates the CE2D ordering contract
// (§4.1); the violation surfaces as ErrBadEpoch.
func TestBadEpochSentinel(t *testing.T) {
	sys, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree, ExitNodes: []string{"d"}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := Msg{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Forward(2))}}
	if _, err := sys.FeedContext(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	_, err = sys.FeedContext(context.Background(), m)
	if !errors.Is(err, ErrBadEpoch) {
		t.Fatalf("double send after sync: %v, want ErrBadEpoch", err)
	}
}

func TestServeContextCancel(t *testing.T) {
	sys, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, sys, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeContext(ctx) }()
	// A connected agent must not keep shutdown from completing.
	agent, err := DialAgent(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ServeContext: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeContext did not return after cancel")
	}
	// Pre-canceled context returns immediately without serving.
	if err := srv.ServeContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ServeContext on canceled ctx: %v", err)
	}
}

package flash

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// VerdictEvent is one verdict-change notification: a check's
// deterministic result for one subspace settled for the first time or
// flipped relative to the last published state. Events are produced at
// the FeedBatch merge point, so their order matches the result stream.
type VerdictEvent struct {
	// Seq is a bus-global sequence number; gaps visible to one
	// subscriber mean events were dropped under backpressure.
	Seq      uint64
	Spec     string
	Subspace int
	Epoch    string
	Verdict  Verdict
	Loop     LoopResult
	// PrevVerdict/PrevLoop carry the previously published state (zero
	// values when First).
	PrevVerdict Verdict
	PrevLoop    LoopResult
	// First marks the initial deterministic result for this
	// (spec, subspace) rather than a flip.
	First   bool
	Witness []uint64
}

// VerdictStatus is the last published verdict for one (spec, subspace).
type VerdictStatus struct {
	Spec     string     `json:"spec"`
	Subspace int        `json:"subspace"`
	Epoch    string     `json:"epoch"`
	Verdict  Verdict    `json:"verdict"`
	Loop     LoopResult `json:"loop"`
}

// verdictKey identifies one tracked verdict cell.
type verdictKey struct {
	spec     string
	subspace int
}

// verdictState is the last published state of one cell.
type verdictState struct {
	epoch   string
	verdict Verdict
	loop    LoopResult
	witness []uint64
}

// verdictBus tracks the last published verdict per (spec, subspace) and
// fans flips out to subscribers. Delivery is non-blocking per
// subscriber (full buffers drop, counted), so a dead or slow consumer
// can never stall the ingest path that publishes.
type verdictBus struct {
	mu   sync.Mutex //flashvet:lockrank 30
	seq  uint64
	last map[verdictKey]verdictState
	subs map[*VerdictSub]struct{}

	published *obs.Counter
	dropped   *obs.Counter
}

func newVerdictBus(reg *obs.Registry) *verdictBus {
	b := &verdictBus{
		last: make(map[verdictKey]verdictState),
		subs: make(map[*VerdictSub]struct{}),
	}
	if sreg := reg.Sub("verdicts"); sreg != nil {
		b.published = sreg.Counter("published")
		b.dropped = sreg.Counter("dropped")
		sreg.Func("subscribers", func() int64 { return int64(b.subscribers()) })
	}
	return b
}

// publish runs flip detection over one batch of live results and
// delivers change events. Results that repeat the already-published
// state (a later epoch re-settling the same verdict) update the stored
// epoch silently. Callers serialize publishes (FeedBatch holds
// dispatchMu), so per-cell event order matches the result stream.
func (b *verdictBus) publish(results []Result) {
	if len(results) == 0 {
		return
	}
	b.mu.Lock()
	var events []VerdictEvent
	for _, r := range results {
		key := verdictKey{spec: r.Check, subspace: r.Subspace}
		prev, seen := b.last[key]
		next := verdictState{epoch: r.Epoch, verdict: r.Verdict, loop: r.Loop, witness: r.Witness}
		if seen && prev.verdict == next.verdict && prev.loop == next.loop {
			b.last[key] = next // same verdict, fresher epoch: no event
			continue
		}
		b.last[key] = next
		b.seq++
		events = append(events, VerdictEvent{
			Seq:         b.seq,
			Spec:        r.Check,
			Subspace:    r.Subspace,
			Epoch:       r.Epoch,
			Verdict:     r.Verdict,
			Loop:        r.Loop,
			PrevVerdict: prev.verdict,
			PrevLoop:    prev.loop,
			First:       !seen,
			Witness:     r.Witness,
		})
	}
	if len(events) == 0 {
		b.mu.Unlock()
		return
	}
	subs := make([]*VerdictSub, 0, len(b.subs))
	for sub := range b.subs {
		subs = append(subs, sub)
	}
	b.mu.Unlock()
	b.published.Add(int64(len(events)))
	for _, ev := range events {
		for _, sub := range subs {
			if !sub.deliver(ev) {
				b.dropped.Inc()
			}
		}
	}
}

// statuses returns the last published verdict per cell, sorted by
// (spec, subspace).
func (b *verdictBus) statuses() []VerdictStatus {
	b.mu.Lock()
	out := make([]VerdictStatus, 0, len(b.last))
	for key, st := range b.last {
		out = append(out, VerdictStatus{
			Spec: key.spec, Subspace: key.subspace,
			Epoch: st.epoch, Verdict: st.verdict, Loop: st.loop,
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Spec != out[j].Spec {
			return out[i].Spec < out[j].Spec
		}
		return out[i].Subspace < out[j].Subspace
	})
	return out
}

func (b *verdictBus) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

func (b *verdictBus) add(sub *VerdictSub) {
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
}

func (b *verdictBus) remove(sub *VerdictSub) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

// VerdictSub is one verdict-change subscription. Events matching the
// subscribed spec arrive on Events; delivery never blocks the
// publisher — events that find the buffer full are dropped and counted
// by Dropped. Cancel is idempotent and closes Events.
type VerdictSub struct {
	bus  *verdictBus
	spec string // "" subscribes to every spec

	mu     sync.Mutex
	ch     chan VerdictEvent
	closed bool
	drops  uint64
}

// SubscribeVerdicts registers for verdict-change events for one check
// spec (empty spec: every check). buffer bounds the delivery channel
// (<= 0 selects 64). The caller must Cancel the subscription when done.
func (s *System) SubscribeVerdicts(spec string, buffer int) *VerdictSub {
	if buffer <= 0 {
		buffer = 64
	}
	sub := &VerdictSub{bus: s.bus, spec: spec, ch: make(chan VerdictEvent, buffer)}
	s.bus.add(sub)
	return sub
}

// Verdicts returns the last published deterministic verdict for every
// (spec, subspace) pair, sorted — the snapshot a new subscriber should
// read before relying on change events alone.
func (s *System) Verdicts() []VerdictStatus { return s.bus.statuses() }

// Spec returns the check spec this subscription filters on ("" = all).
func (sub *VerdictSub) Spec() string { return sub.spec }

// Events returns the delivery channel. It closes after Cancel.
func (sub *VerdictSub) Events() <-chan VerdictEvent { return sub.ch }

// Dropped reports how many events were discarded because the buffer was
// full.
func (sub *VerdictSub) Dropped() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.drops
}

// Cancel detaches the subscription from the bus and closes Events. It
// is idempotent and safe to call concurrently with delivery.
func (sub *VerdictSub) Cancel() {
	sub.bus.remove(sub)
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}

// deliver offers one event to the subscription without blocking. It
// returns false only when the event was lost to a full buffer; events
// filtered out by spec or arriving after Cancel are not drops.
func (sub *VerdictSub) deliver(ev VerdictEvent) bool {
	if sub.spec != "" && sub.spec != ev.Spec {
		return true // filtered, not dropped
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return true // canceled concurrently; nothing to count
	}
	select {
	case sub.ch <- ev:
		return true
	default:
		sub.drops++
		return false
	}
}

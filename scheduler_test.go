package flash

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
	"repro/internal/wire"
)

// schedTestSystem builds a System over Internet2 with a loop-freedom
// check and 4 subspaces on a 16-bit dst field.
func schedTestSystem(t *testing.T, extra ...Option) *System {
	t.Helper()
	opts := []Option{
		WithTopo(topo.Internet2()),
		WithLayout(hs.NewLayout(hs.Field{Name: "dst", Bits: 16})),
		WithSubspaces(4, ""),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	}
	sys, err := NewSystem(append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// schedTestStream builds a deterministic multi-epoch message stream:
// per epoch, one message per device, each installing rules spread
// across all 4 subspaces (the dst's top 2 bits select the subspace).
func schedTestStream(devices, epochs int, seed int64) []wire.Msg {
	rng := rand.New(rand.NewSource(seed))
	var msgs []wire.Msg
	id := int64(1)
	for e := 1; e <= epochs; e++ {
		epoch := fmt.Sprintf("e%d", e)
		for d := 0; d < devices; d++ {
			m := wire.Msg{Device: DeviceID(d), Epoch: epoch}
			for k := 0; k < 1+rng.Intn(3); k++ {
				dst := uint64(rng.Intn(1 << 16))
				m.Updates = append(m.Updates, wire.Update{
					Op: fib.Insert,
					Rule: wire.Rule{ID: id, Pri: 1, Action: Forward(DeviceID((d + 1) % devices)),
						Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: dst, Len: 16}}},
				})
				id++
			}
			msgs = append(msgs, m)
		}
	}
	return msgs
}

// TestFeedBatchMatchesSequentialFeed: one FeedBatch dispatch must be
// observationally identical to the equivalent sequence of Feed calls —
// same results in the same order, same final model fingerprint.
func TestFeedBatchMatchesSequentialFeed(t *testing.T) {
	msgs := schedTestStream(6, 3, 0x5eed)

	seqSys := schedTestSystem(t, WithWorkers(1))
	var seqResults []string
	for _, m := range msgs {
		rs, err := seqSys.FeedContext(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			seqResults = append(seqResults, r.String())
		}
	}

	for _, workers := range []int{1, 2, 4} {
		batSys := schedTestSystem(t, WithWorkers(workers))
		var batResults []string
		// Feed in gulps of varying size, never crossing an epoch (the
		// pipeline's flush-on-epoch rule).
		i := 0
		gulp := 1
		for i < len(msgs) {
			j := i + gulp
			if j > len(msgs) {
				j = len(msgs)
			}
			for k := i + 1; k < j; k++ {
				if msgs[k].Epoch != msgs[i].Epoch {
					j = k
					break
				}
			}
			rs, err := batSys.FeedBatch(context.Background(), msgs[i:j])
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				batResults = append(batResults, r.String())
			}
			i = j
			gulp = gulp%5 + 1
		}

		if len(batResults) != len(seqResults) {
			t.Fatalf("workers=%d: %d results via FeedBatch, %d via Feed", workers, len(batResults), len(seqResults))
		}
		for k := range seqResults {
			if batResults[k] != seqResults[k] {
				t.Fatalf("workers=%d result %d:\n  batch: %s\n  seq:   %s", workers, k, batResults[k], seqResults[k])
			}
		}
		want, err := seqSys.ModelFingerprint("e3")
		if err != nil {
			t.Fatal(err)
		}
		got, err := batSys.ModelFingerprint("e3")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: fingerprint mismatch", workers)
		}
		if st := batSys.StatsSnapshot().Scheduler; st.Tasks == 0 {
			t.Fatalf("workers=%d: scheduler ran no tasks", workers)
		}
	}
}

// TestSchedulerSequenceWitness is the per-device sequence witness: for
// every worker count, every subspace worker must observe the exact
// global message sequence — nothing dropped, duplicated, or reordered —
// even though subspaces migrate between workers by stealing.
func TestSchedulerSequenceWitness(t *testing.T) {
	msgs := schedTestStream(5, 4, 0x717)
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		sys := schedTestSystem(t, WithWorkers(workers))
		var mu sync.Mutex
		seen := make(map[int][]string) // subspace -> ordered (dev, epoch) witness
		sys.SetFeedHook(func(subspace int, m Msg) {
			mu.Lock()
			seen[subspace] = append(seen[subspace], fmt.Sprintf("%d/%s", m.Device, m.Epoch))
			mu.Unlock()
		})
		// Feed in gulps of rotating size, cut at epoch boundaries.
		i, gulp := 0, 1
		for i < len(msgs) {
			j := i + gulp
			if j > len(msgs) {
				j = len(msgs)
			}
			for k := i + 1; k < j; k++ {
				if msgs[k].Epoch != msgs[i].Epoch {
					j = k
					break
				}
			}
			if _, err := sys.FeedBatch(context.Background(), msgs[i:j]); err != nil {
				t.Fatal(err)
			}
			i = j
			gulp = gulp%4 + 1
		}
		var want []string
		for _, m := range msgs {
			want = append(want, fmt.Sprintf("%d/%s", m.Device, m.Epoch))
		}
		for sub := 0; sub < 4; sub++ {
			got := seen[sub]
			if len(got) != len(want) {
				t.Fatalf("workers=%d subspace %d: observed %d messages, want %d", workers, sub, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("workers=%d subspace %d: message %d = %s, want %s (reordered)", workers, sub, k, got[k], want[k])
				}
			}
		}
	}
}

// TestSchedulerWitnessUnderPoisoning: quarantining one subspace
// mid-stream must not disturb the sequence the healthy subspaces
// observe, and their results must equal a run that never had the
// poisoned subspace's panics.
func TestSchedulerWitnessUnderPoisoning(t *testing.T) {
	msgs := schedTestStream(5, 3, 0xdead)

	// Reference run: no poisoning; drop subspace-2 results afterwards.
	ref := schedTestSystem(t, WithWorkers(2))
	var refResults []string
	for _, m := range msgs {
		rs, err := ref.FeedContext(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.Subspace != 2 {
				refResults = append(refResults, r.String())
			}
		}
	}

	sys := schedTestSystem(t, WithWorkers(2))
	var mu sync.Mutex
	seen := make(map[int][]string)
	const poisonAfter = 3
	count := 0
	sys.SetFeedHook(func(subspace int, m Msg) {
		mu.Lock()
		defer mu.Unlock()
		if subspace == 2 {
			count++
			if count > poisonAfter {
				panic("injected: poison subspace 2")
			}
		}
		seen[subspace] = append(seen[subspace], fmt.Sprintf("%d/%s", m.Device, m.Epoch))
	})
	var gotResults []string
	for _, m := range msgs {
		rs, err := sys.FeedContext(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.Subspace == 2 {
				t.Fatalf("result from quarantined subspace: %+v", r)
			}
			gotResults = append(gotResults, r.String())
		}
	}

	if got := sys.PoisonedSubspaces(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("poisoned = %v, want [2]", got)
	}
	var want []string
	for _, m := range msgs {
		want = append(want, fmt.Sprintf("%d/%s", m.Device, m.Epoch))
	}
	for _, sub := range []int{0, 1, 3} {
		got := seen[sub]
		if len(got) != len(want) {
			t.Fatalf("subspace %d: observed %d messages, want %d (poisoning disturbed a healthy subspace)", sub, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("subspace %d: message %d = %s, want %s", sub, k, got[k], want[k])
			}
		}
	}
	if len(gotResults) != len(refResults) {
		t.Fatalf("got %d results, reference (minus subspace 2) has %d", len(gotResults), len(refResults))
	}
	for k := range refResults {
		if gotResults[k] != refResults[k] {
			t.Fatalf("result %d:\n  got: %s\n  ref: %s", k, gotResults[k], refResults[k])
		}
	}
}

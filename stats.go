package flash

import (
	"time"

	"repro/internal/ce2d"
	"repro/internal/imt"
)

// This file is the consolidated statistics surface: StatsSnapshot is the
// one structure operators read (the /v1/stats endpoint serves it as
// JSON), and the historical per-facet getters survive as thin deprecated
// wrappers over it.

// SchedulerStats reports work-stealing scheduler activity (tasks run,
// home tokens stolen, Wait barriers) plus the effective worker count.
type SchedulerStats struct {
	Tasks      uint64 `json:"tasks"`
	Steals     uint64 `json:"steals"`
	Dispatches uint64 `json:"dispatches"`
	Workers    int    `json:"workers"`
}

// CacheStats aggregates the per-engine ITE computed-cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (c CacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// GCStats aggregates in-engine garbage-collection activity across
// subspace engines.
type GCStats struct {
	Runs           uint64 `json:"runs"`            // completed mark-and-sweep passes
	ReclaimedNodes uint64 `json:"reclaimed_nodes"` // nodes swept across all passes
}

// TransformStats is the Fast IMT cost breakdown summed across subspace
// workers (and, for a System, across live per-epoch verifiers).
type TransformStats struct {
	MapTime    time.Duration `json:"map_ns"`
	ReduceTime time.Duration `json:"reduce_ns"`
	ApplyTime  time.Duration `json:"apply_ns"`
	Blocks     int           `json:"blocks"`
	Updates    int           `json:"updates"`
	Atomic     int           `json:"atomic"`
	Aggregated int           `json:"aggregated"`
}

// Total returns the summed pipeline time (Map + Reduce + Apply).
func (t TransformStats) Total() time.Duration {
	return t.MapTime + t.ReduceTime + t.ApplyTime
}

// add folds one transformer's cost breakdown into the total.
func (t *TransformStats) add(s imt.Stats) {
	t.MapTime += s.MapTime
	t.ReduceTime += s.ReduceTime
	t.ApplyTime += s.ApplyTime
	t.Blocks += s.Blocks
	t.Updates += s.Updates
	t.Atomic += s.Atomic
	t.Aggregated += s.Aggregated
}

// StatsSnapshot is a coherent point-in-time view of a ModelBuilder's or
// System's internals: one call, one pass over the workers, every facet
// the old getter sprawl (SchedulerStats, CacheStats, GCStats, Stats,
// PredicateOps, MemoryProxy, ECs) exposed piecemeal — plus the serving
// plane's own gauges (live snapshots, verdict subscribers).
type StatsSnapshot struct {
	// Subspaces is the number of parallel subspace workers.
	Subspaces int `json:"subspaces"`
	// Scheduler counts work-stealing scheduler activity.
	Scheduler SchedulerStats `json:"scheduler"`
	// Cache sums the ITE computed-cache counters across engines,
	// including engines rotated away by Compact.
	Cache CacheStats `json:"cache"`
	// GC sums in-engine mark-and-sweep activity.
	GC GCStats `json:"gc"`
	// Transform is the Fast IMT cost breakdown (Table 3's time columns).
	Transform TransformStats `json:"transform"`
	// PredicateOps counts BDD operations (Table 3's "# Predicate
	// Operations").
	PredicateOps uint64 `json:"predicate_ops"`
	// ECs is the total equivalence-class count. For a System it sums
	// every live per-epoch verifier's model.
	ECs int `json:"ecs"`
	// MemoryNodes is live BDD nodes plus PAT nodes — the structural
	// memory footprint proxy of §5.5.
	MemoryNodes int `json:"memory_nodes"`
	// Poisoned lists quarantined subspace indices (System only; nil for
	// a ModelBuilder).
	Poisoned []int `json:"poisoned,omitempty"`
	// Snapshots is the number of live (unreleased) model snapshots
	// (System only).
	Snapshots int `json:"snapshots"`
	// Subscribers is the number of active verdict subscriptions (System
	// only).
	Subscribers int `json:"subscribers"`
}

// StatsSnapshot takes a coherent snapshot of the builder's counters in a
// single pass, flushing pending batched updates first so every facet
// reflects the same applied-block history.
func (b *ModelBuilder) StatsSnapshot() StatsSnapshot {
	b.Flush() //nolint:errcheck // flush errors resurface on the next ApplyBlock/Flush
	var out StatsSnapshot
	out.Subspaces = len(b.workers)
	st := b.pool.Stats()
	out.Scheduler = SchedulerStats{Tasks: st.Tasks, Steals: st.Steals, Dispatches: st.Dispatches, Workers: b.pool.Workers()}
	for _, w := range b.workers {
		w.mu.Lock()
		e := w.eng // Compact and hybrid cutover rotate the engine under w.mu
		base := w.base
		out.Transform.add(w.transform.Stats())
		out.ECs += w.transform.Model().Len()
		out.MemoryNodes += e.NumNodes() + w.transform.Store.NumNodes()
		w.mu.Unlock()
		// The engine counters are atomics; reading them outside w.mu keeps
		// running workers unblocked.
		h, m := e.CacheStats()
		out.Cache.Hits += base.cacheHits + h
		out.Cache.Misses += base.cacheMisses + m
		out.Cache.Evictions += base.cacheEvictions + e.CacheEvictions()
		out.GC.Runs += base.gcRuns + e.GCRuns()
		out.GC.ReclaimedNodes += base.gcReclaimed + e.ReclaimedNodes()
		out.PredicateOps += base.ops + e.Ops()
	}
	return out
}

// StatsSnapshot takes a coherent snapshot of the system's counters in a
// single pass. Model-derived facets (Transform, ECs, PAT nodes) sum over
// every live per-epoch verifier in every subspace.
func (s *System) StatsSnapshot() StatsSnapshot {
	var out StatsSnapshot
	out.Subspaces = len(s.workers)
	st := s.pool.Stats()
	out.Scheduler = SchedulerStats{Tasks: st.Tasks, Steals: st.Steals, Dispatches: st.Dispatches, Workers: s.pool.Workers()}
	for _, w := range s.workers {
		w.mu.Lock()
		e := w.eng
		w.disp.EachVerifier(func(_ ce2d.Epoch, v *ce2d.Verifier) {
			tr := v.Transformer()
			out.Transform.add(tr.Stats())
			out.ECs += tr.Model().Len()
			out.MemoryNodes += tr.Store.NumNodes()
		})
		out.MemoryNodes += e.NumNodes()
		w.mu.Unlock()
		h, m := e.CacheStats()
		out.Cache.Hits += h
		out.Cache.Misses += m
		out.Cache.Evictions += e.CacheEvictions()
		out.GC.Runs += e.GCRuns()
		out.GC.ReclaimedNodes += e.ReclaimedNodes()
		out.PredicateOps += e.Ops()
	}
	out.Poisoned = s.PoisonedSubspaces()
	out.Snapshots = int(s.snapCount.Load())
	out.Subscribers = s.bus.subscribers()
	return out
}

// ---- Deprecated per-facet getters (thin wrappers over StatsSnapshot) ----

// SchedulerStats returns the builder's scheduler counters.
//
// Deprecated: use StatsSnapshot().Scheduler.
func (b *ModelBuilder) SchedulerStats() SchedulerStats { return b.StatsSnapshot().Scheduler }

// CacheStats sums the ITE computed-cache counters across subspace
// engines.
//
// Deprecated: use StatsSnapshot().Cache.
func (b *ModelBuilder) CacheStats() CacheStats { return b.StatsSnapshot().Cache }

// GCStats sums GC activity across the builder's workers, including
// engines since rotated away by Compact.
//
// Deprecated: use StatsSnapshot().GC.
func (b *ModelBuilder) GCStats() GCStats { return b.StatsSnapshot().GC }

// ECs reports the total number of equivalence classes across subspaces.
//
// Deprecated: use StatsSnapshot().ECs.
func (b *ModelBuilder) ECs() int { return b.StatsSnapshot().ECs }

// Stats merges the Fast IMT cost breakdown across subspace workers,
// flushing pending batches first.
//
// Deprecated: use StatsSnapshot().Transform.
func (b *ModelBuilder) Stats() imt.Stats {
	t := b.StatsSnapshot().Transform
	return imt.Stats{
		MapTime: t.MapTime, ReduceTime: t.ReduceTime, ApplyTime: t.ApplyTime,
		Blocks: t.Blocks, Updates: t.Updates, Atomic: t.Atomic, Aggregated: t.Aggregated,
	}
}

// PredicateOps sums the BDD predicate-operation counters across workers
// (the "# Predicate Operations" of Table 3).
//
// Deprecated: use StatsSnapshot().PredicateOps.
func (b *ModelBuilder) PredicateOps() uint64 { return b.StatsSnapshot().PredicateOps }

// MemoryProxy reports live BDD nodes plus PAT nodes across workers, the
// structural memory footprint of the model.
//
// Deprecated: use StatsSnapshot().MemoryNodes.
func (b *ModelBuilder) MemoryProxy() int { return b.StatsSnapshot().MemoryNodes }

// SchedulerStats returns the system's work-stealing scheduler counters.
//
// Deprecated: use StatsSnapshot().Scheduler.
func (s *System) SchedulerStats() SchedulerStats { return s.StatsSnapshot().Scheduler }

// CacheStats sums the ITE computed-cache counters across the subspace
// engines (shared by all of a subspace's per-epoch verifiers).
//
// Deprecated: use StatsSnapshot().Cache.
func (s *System) CacheStats() CacheStats { return s.StatsSnapshot().Cache }

// GCStats sums in-engine garbage-collection activity across the
// subspace engines.
//
// Deprecated: use StatsSnapshot().GC.
func (s *System) GCStats() GCStats { return s.StatsSnapshot().GC }

# Flash reproduction build/verify targets. `make check` is the
# pre-commit gate: vet, the flashvet analyzer suite, and the race
# detector (with and without the flashcheck invariant layer).

GO ?= go
FLASHVET ?= bin/flashvet

.PHONY: build test vet lint lint-json flashvet race race-hot pred-race checkstrict bench bench-record check fuzz chaos chaos-random ckpt-chaos shard-chaos soak apicheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Build the project-specific analyzer suite (bddref, gcroot, obshook,
# ctxfeed, lockbdd, lockorder, snapleak, nodeprecated, atomicmix,
# errwrapped, stealsafe) as a `go vet` vettool.
flashvet:
	$(GO) build -o $(FLASHVET) ./cmd/flashvet

# Run the flashvet analyzers over every compilation unit in the module.
# Fails fast with a clear message if the vettool has not been built.
lint: flashvet
	@test -x $(FLASHVET) || { echo "error: flashvet not built; run 'make flashvet' first (expected at $(FLASHVET))" >&2; exit 1; }
	$(GO) vet -vettool=$(FLASHVET) ./...

# Machine-readable diagnostics: the standalone driver over every module
# package, as a JSON array (suppressed findings included, marked).
lint-json: flashvet
	$(FLASHVET) -json

# Full suite under the race detector. The explicit -timeout headroom is
# for slow single-core hosts: the root package's differential matrix
# (predicate modes × budgets × generators) runs close to the default
# 10m there.
race:
	$(GO) test -race -timeout 30m ./...

# Full suite with the runtime invariant layer armed: every applied
# update block re-proves the EC partition, PAT/FIB agreement, and
# per-device epoch monotonicity — under the race detector.
checkstrict:
	$(GO) test -tags flashcheck -race -timeout 30m ./...

# The concurrency-heavy paths only (System fan-out, pipeline, dispatcher,
# wire server, metrics): quick race pass during development.
race-hot:
	$(GO) test -race . ./internal/ce2d ./internal/wire ./internal/obs

# The hybrid predicate engine's trust anchors under the race detector:
# parallel ITE canonicity on the sharded unique table, the
# SetCacheLimit-vs-ITE race, the atom engine's algebra and concurrent
# ops, and the differential oracle across predicate modes — including
# the mid-stream atom→BDD cutover.
pred-race:
	$(GO) test -race -count=1 -run 'TestParallelITECanonicity|TestSetCacheLimitRacesWithITE|TestCacheLimitEvicts|TestCounterReadsRaceWithMutation' ./internal/bdd
	$(GO) test -race -count=1 ./internal/atoms
	$(GO) test -race -count=1 -run 'TestDifferential' .

# One benchmark per table/figure; BenchmarkIMT* guards the Fast IMT
# hot path against regressions (metrics disabled).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Append a work-stealing scheduler scaling measurement and a BDD GC
# measurement (peak/steady node counts, pause p95, GC-vs-Compact cost)
# to the benchmark trajectory file; each entry records the core count it
# was measured on.
bench-record:
	$(GO) run ./cmd/flashbench -exp scaling -scale small -record BENCH_flash.json
	$(GO) run ./cmd/flashbench -exp gc -scale small -record BENCH_flash.json
	$(GO) run ./cmd/flashbench -exp recovery -scale small -record BENCH_flash.json
	$(GO) run ./cmd/flashbench -exp shards -scale small -record BENCH_flash.json

# Memory-management soak: sustained prefix-mutating churn through a
# small memory budget, under the race detector. Asserts the live node
# sawtooth stays bounded, GC'd models are byte-identical to unbounded
# runs, counters stay monotone across Compact, and GC keeps running
# while a sibling subspace is quarantined.
soak:
	$(GO) test -race -count=1 -run 'TestSoak|TestChaosGCUnderPoisoning' .

# Diff the exported surface of the root flash package against the
# committed golden (api/flash.txt). Regenerate after an intentional API
# change with: go run ./cmd/flashapi -write
apicheck:
	$(GO) run ./cmd/flashapi -dir . -golden api/flash.txt

# Brief fuzz pass over the predicate compiler, the Fast IMT oracle
# differential, the wire decoders, and the flashvet allow-directive
# parser; seeds live under each package's testdata/fuzz/.
fuzz:
	$(GO) test -fuzz=FuzzPrefixParse -fuzztime=30s ./internal/hs
	$(GO) test -fuzz=FuzzIMTOverwrite -fuzztime=30s ./internal/imt
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzShardFrameDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzAllowDirective -fuzztime=30s ./internal/analysis
	$(GO) test -fuzz=FuzzCheckpointDecode -fuzztime=30s ./internal/ckpt

# Fault-injection suite under the race detector with the pinned seed
# (the CI mode): chaos model equality, quarantine paths, worker
# poisoning, pipeline close-while-feeding, and the injector's own tests.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestCorruptFrameQuarantinesDevice|TestFeedErrorQuarantinesDevice|TestWorkerPanicQuarantinesSubspace|TestPipelineCloseWhileFeeding' .
	$(GO) test -race -count=1 ./internal/faulty ./internal/wire

# Same suite with a fresh random fault schedule; the seed is logged so a
# failure reproduces with FLASH_CHAOS_SEED=<seed> make chaos.
chaos-random:
	FLASH_CHAOS_SEED=random $(GO) test -race -count=1 -v -run 'TestChaosModelEquality' .

# Crash-consistency suite under the race detector: kill-mid-epoch warm
# restart through the serving plane (torn checkpoint + leftover temp
# file), checkpoint/restore round trip, corrupt-skip fallback, and the
# snapshot-release-vs-checkpoint race.
ckpt-chaos:
	$(GO) test -race -count=1 -run 'TestCheckpointCrashRecovery|TestCheckpointRestoreRoundTrip|TestRestoreSkipsCorruptCheckpoint|TestRestoreExhaustedFallsBackToFullReingest|TestSnapshotReleaseRacesCheckpoint' .
	$(GO) test -race -count=1 ./internal/ckpt

# Distributed-sharding fault-injection suite under the race detector:
# kill a whole shard replica and partition another mid-epoch, prove the
# recovered coordinator's fingerprint and verdict multiset equal a
# single-process run, plus the differential oracle across shard counts
# and the rebalance no-loss/no-dup regression fences.
shard-chaos:
	$(GO) test -race -count=1 -run 'TestShardChaosModelEquality|TestShardDifferentialOracle' .
	$(GO) test -race -count=1 ./internal/shard

check: vet lint apicheck race checkstrict pred-race chaos ckpt-chaos shard-chaos soak

# Flash reproduction build/verify targets. `make check` is the
# pre-commit gate: vet plus the race detector over the full module.

GO ?= go

.PHONY: build test vet race race-hot bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# The concurrency-heavy paths only (System fan-out, pipeline, dispatcher,
# wire server, metrics): quick race pass during development.
race-hot:
	$(GO) test -race . ./internal/ce2d ./internal/wire ./internal/obs

# One benchmark per table/figure; BenchmarkIMT* guards the Fast IMT
# hot path against regressions (metrics disabled).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

check: vet race

package flash_test

import (
	"context"
	"fmt"
	"log"

	flash "repro"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

// Example builds a two-switch network, loads its FIBs, and queries the
// inverse model.
func Example() {
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 8})

	builder := flash.NewModelBuilder(flash.Config{Topo: g, Layout: layout})
	all := flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}
	err := builder.ApplyBlock([]flash.DeviceBlock{
		{Device: a, Updates: []flash.Update{
			{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Forward(b), Desc: all}},
		}},
		{Device: b, Updates: []flash.Update{
			{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Drop, Desc: all}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	act, _ := builder.ActionAt(a, []uint64{0x10})
	fmt.Println("a forwards 0x10 via", act)
	// Output: a forwards 0x10 via fwd(1)
}

// ExampleSystem_FeedContext shows online early detection: a drop at a cut
// vertex settles the reachability check from a single device's updates.
func ExampleSystem_FeedContext() {
	g := topo.New()
	g.AddNode("a", topo.RoleSwitch, -1)
	bID := g.AddNode("b", topo.RoleSwitch, -1)
	g.AddNode("c", topo.RoleSwitch, -1)
	g.AddLink(g.MustByName("a"), bID)
	g.AddLink(bID, g.MustByName("c"))

	sys, err := flash.NewSystem(flash.Config{
		Topo:   g,
		Layout: hs.NewLayout(hs.Field{Name: "dst", Bits: 8}),
		Checks: []flash.CheckSpec{{
			Name: "a-to-c", Kind: flash.CheckReach,
			Expr: "a .* c", Sources: []string{"a"}, Dest: "c",
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sys.FeedContext(context.Background(), flash.Msg{
		Device: bID, Epoch: "e1",
		Updates: []flash.Update{{Op: fib.Insert, Rule: flash.Rule{
			ID: 1, Pri: 0, Action: flash.Drop,
			Desc: flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}},
		}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(results[0].Verdict)
	// Output: unsatisfied
}

// ExampleNewModelBuilder_subspaces demonstrates input-space partitioning:
// the same queries answer identically with any power-of-two partition.
func ExampleNewModelBuilder_subspaces() {
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 8})
	builder := flash.NewModelBuilder(flash.Config{Topo: g, Layout: layout, Subspaces: 4})
	err := builder.ApplyBlock([]flash.DeviceBlock{{Device: a, Updates: []flash.Update{
		{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Drop,
			Desc: flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}},
	}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(builder.NumSubspaces(), "subspaces,", builder.StatsSnapshot().ECs, "classes")
	// Output: 4 subspaces, 4 classes
}

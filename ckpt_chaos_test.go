package flash

import (
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ckptWaitFor polls a condition with a generous deadline.
func ckptWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkpointUntilAcked emulates the background checkpoint ticker: it
// keeps committing checkpoints until the agent's ack floor reaches want
// (under durable sessions, acks only advance when a checkpoint commits).
func checkpointUntilAcked(t *testing.T, srv *Server, dir string, ag *wire.Agent, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for ag.Acked() < want {
		if time.Now().After(deadline) {
			t.Fatalf("acks stuck at %d, want %d (unacked %d)", ag.Acked(), want, ag.Unacked())
		}
		if _, err := srv.Checkpoint(dir); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointCrashRecovery is the acceptance row for the warm-restart
// tentpole: a serving-plane run is killed abruptly mid-epoch — with a
// torn checkpoint and a leftover temp file emulating a crash mid-
// checkpoint-write — restored from the latest intact checkpoint, and the
// surviving agent replays the suffix. The final model fingerprint and
// verdict table must equal an uninterrupted run's, the torn checkpoint
// must be skipped with a visible counter, and nothing may panic.
func TestCheckpointCrashRecovery(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	finalEpoch := msgs[len(msgs)-1].Epoch
	newAgent := func(addr func() string, seed int64) *wire.Agent {
		ag, err := DialAgentOptions(addr(), AgentOptions{
			Stream:        "ckpt-agent",
			Reconnect:     true,
			BackoffMin:    time.Millisecond,
			BackoffMax:    10 * time.Millisecond,
			ResendTimeout: 200 * time.Millisecond,
			Rand:          rand.New(rand.NewSource(seed)),
			Dial:          func(string) (net.Conn, error) { return net.Dial("tcp", addr()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return ag
	}

	// ---- uninterrupted run (same serving plane, no crash) ----
	cleanSys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cleanL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cleanSrv := NewServer(cleanL, cleanSys, nil, WithDurableSessions(nil))
	cleanDone := make(chan error, 1)
	go func() { cleanDone <- cleanSrv.Serve() }()
	cleanAddr := cleanL.Addr().String()
	cleanAg := newAgent(func() string { return cleanAddr }, 1)
	for _, m := range msgs {
		if err := cleanAg.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	checkpointUntilAcked(t, cleanSrv, t.TempDir(), cleanAg, uint64(len(msgs)))
	cleanFP, err := cleanSys.ModelFingerprint(finalEpoch)
	if err != nil {
		t.Fatal(err)
	}
	cleanVerdicts := cleanSys.Verdicts()
	cleanAg.Close()
	cleanSrv.Close()
	<-cleanDone

	// ---- crash run ----
	dir := t.TempDir()
	sys1, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(l1, sys1, nil, WithDurableSessions(nil))
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve() }()

	var (
		addrMu sync.Mutex
		addr   = l1.Addr().String()
	)
	currentAddr := func() string {
		addrMu.Lock()
		defer addrMu.Unlock()
		return addr
	}
	ag := newAgent(currentAddr, 2)
	defer ag.Close()

	// Prefix up to the checkpointed cut, then extra traffic the crash
	// will destroy server-side (consumed but never durable).
	cut := len(msgs) * 3 / 5
	extra := cut + len(msgs)/10
	for _, m := range msgs[:cut] {
		if err := ag.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	checkpointUntilAcked(t, srv1, dir, ag, uint64(cut))
	for _, m := range msgs[cut:extra] {
		if err := ag.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond) // let some post-checkpoint frames be consumed

	// kill -9: tear down the process state with no farewell. The frames
	// past the checkpoint cut are gone server-side but still unacked in
	// the agent's replay buffer.
	srv1.Close()
	<-done1
	if got := ag.Acked(); got < uint64(cut) {
		t.Fatalf("acked %d below checkpoint cut %d", got, cut)
	}

	// Emulate dying mid-checkpoint-write on top: a leftover temp file and
	// a torn, newest-named checkpoint (a truncated copy of the good one).
	cands := ckpt.Candidates(dir)
	if len(cands) == 0 {
		t.Fatal("no checkpoints written before crash")
	}
	raw, err := os.ReadFile(cands[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-ffffffffffffffff.fckpt"), raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-123abc.tmp"), raw[:16], 0o644); err != nil {
		t.Fatal(err)
	}

	// ---- warm restart ----
	reg := obs.NewRegistry("flash")
	sys2, rep, err := Restore(dir, ckptSysOpts(WithMetrics(reg))...)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rep.SkippedCorrupt != 1 {
		t.Fatalf("SkippedCorrupt = %d, want 1 (the torn newest checkpoint)", rep.SkippedCorrupt)
	}
	if n := reg.Sub("ckpt").Snapshot().Counters["bdd_ckpt_skipped_corrupt_total"]; n != 1 {
		t.Fatalf("bdd_ckpt_skipped_corrupt_total = %d, want 1", n)
	}
	if next := rep.Streams["ckpt-agent"]; next != uint64(cut)+1 {
		t.Fatalf("restored stream cursor %d, want %d", next, cut+1)
	}

	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(l2, sys2, nil, WithDurableSessions(rep.Streams))
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve() }()
	t.Cleanup(func() { srv2.Close(); <-done2 })

	if pending, preloaded := srv2.RestoreProgress(); pending != 1 || preloaded != 1 {
		t.Fatalf("RestoreProgress = (%d, %d) before reconnect, want (1, 1)", pending, preloaded)
	}
	addrMu.Lock()
	addr = l2.Addr().String()
	addrMu.Unlock()

	// The agent reconnects and replays its unacked suffix; the restored
	// server consumes exactly the frames past the checkpoint cut.
	ckptWaitFor(t, "agent reconnect", func() bool {
		pending, _ := srv2.RestoreProgress()
		return pending == 0
	})
	if ag.Reconnects() == 0 {
		t.Fatal("agent never reconnected; replay path untested")
	}

	// Rest of the workload, then drain through a final checkpoint.
	for _, m := range msgs[extra:] {
		if err := ag.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	checkpointUntilAcked(t, srv2, dir, ag, uint64(len(msgs)))
	if q := srv2.QuarantinedDevices(); len(q) != 0 {
		t.Fatalf("devices quarantined after restore: %v", q)
	}

	fp, err := sys2.ModelFingerprint(finalEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if fp != cleanFP {
		t.Fatalf("model fingerprint diverged after crash recovery:\n  clean     %s\n  recovered %s", cleanFP, fp)
	}
	if got := sys2.Verdicts(); !reflect.DeepEqual(got, cleanVerdicts) {
		t.Fatalf("verdicts diverged after crash recovery:\n  clean     %v\n  recovered %v", cleanVerdicts, got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ag.WaitAcked(ctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
}

package main

// The shards experiment measures sharded verification throughput and
// epoch verify latency as the subspace set is partitioned across N
// in-process verifier replicas behind a shard coordinator. It is the
// single-machine proxy for the paper's scale-out deployment: the same
// coordinator drives flashd replicas over the wire in production, so
// the routing/aggregation overhead measured here rides on top of
// whatever the network adds. Results are printed as a table and, with
// -record, appended to the JSON benchmark trajectory file.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	flash "repro"
	"repro/internal/exps"
	"repro/internal/fib"
	"repro/internal/shard"
	"repro/internal/wire"
	"repro/internal/workload"
)

// shardsEntry is one row of the benchmark trajectory: one shard count
// over the fixed skewed-churn epoch stream.
type shardsEntry struct {
	Bench         string  `json:"bench"`
	Scale         string  `json:"scale"`
	Shards        int     `json:"shards"`
	Subspaces     int     `json:"subspaces"`
	Updates       int     `json:"updates"`
	Epochs        int     `json:"epochs"`
	VerifyP50Ns   int64   `json:"verify_p50_ns"`
	VerifyP95Ns   int64   `json:"verify_p95_ns"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
	Cores         int     `json:"cores"`
	RecordedAt    string  `json:"recorded_at,omitempty"`
}

const (
	shardsSubspaces = 8
	shardsPerEpoch  = 24
	shardsChurn     = 3
	shardsHotFrac   = 0.9
	shardsSeed      = 0x5a4d
)

// shardsStream groups the churn sequence into CE2D epochs: at most one
// message per device per epoch, shardsPerEpoch updates each.
func shardsStream(seq []workload.DevUpdate) [][]flash.Msg {
	var epochs [][]flash.Msg
	for start, e := 0, 1; start < len(seq); e++ {
		end := start + shardsPerEpoch
		if end > len(seq) {
			end = len(seq)
		}
		byDev := make(map[fib.DeviceID][]fib.Update)
		var order []fib.DeviceID
		for _, du := range seq[start:end] {
			if _, ok := byDev[du.Dev]; !ok {
				order = append(order, du.Dev)
			}
			byDev[du.Dev] = append(byDev[du.Dev], du.Update)
		}
		var msgs []flash.Msg
		for _, dev := range order {
			m, err := wire.FromFib(dev, fmt.Sprintf("e%d", e), byDev[dev])
			if err != nil {
				fmt.Fprintf(os.Stderr, "flashbench: shards: %v\n", err)
				os.Exit(1)
			}
			msgs = append(msgs, m)
		}
		epochs = append(epochs, msgs)
		start = end
	}
	return epochs
}

// shardsRun replays the epoch stream through a coordinator with n
// shards and returns the measured row. Verify latency is the time from
// an epoch's first feed to the coordinator being fully drained — what
// an operator waits for an epoch-consistent answer.
func shardsRun(scaleName string, scale exps.Scale, n int) shardsEntry {
	// Fresh workload (and BDD engines) per run, as in the scaling
	// experiment: cache warmth must not leak between rows.
	w := exps.Build(exps.LNetAPSP, scale)
	seq := w.SkewedChurn(shardsChurn, shardsSubspaces, shardsHotFrac, shardsSeed)
	epochs := shardsStream(seq)

	coord, err := shard.New(shard.Config{
		Subspaces: shardsSubspaces,
		Field:     "dst",
		FieldBits: w.Layout.FieldBits("dst"),
		Sets:      shard.Partition(shardsSubspaces, n),
		Factory: shard.LocalFactory(
			flash.WithTopo(w.Topo),
			flash.WithLayout(w.Layout),
			flash.WithSubspaces(shardsSubspaces, ""),
			flash.WithChecks(flash.CheckSpec{Name: "loops", Kind: flash.CheckLoopFree}),
		),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: shards: %v\n", err)
		os.Exit(1)
	}
	defer coord.Close()

	ctx := context.Background()
	var samples []int64 // verify latency per epoch
	start := time.Now()
	for _, msgs := range epochs {
		t0 := time.Now()
		for _, m := range msgs {
			if _, err := coord.FeedContext(ctx, m); err != nil {
				fmt.Fprintf(os.Stderr, "flashbench: shards: %v\n", err)
				os.Exit(1)
			}
		}
		if err := coord.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: shards: %v\n", err)
			os.Exit(1)
		}
		samples = append(samples, time.Since(t0).Nanoseconds())
	}
	elapsed := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	quant := func(q float64) int64 {
		if len(samples) == 0 {
			return 0
		}
		return samples[int(q*float64(len(samples)-1))]
	}
	return shardsEntry{
		Bench:         "sharded-verify",
		Scale:         scaleName,
		Shards:        n,
		Subspaces:     shardsSubspaces,
		Updates:       len(seq),
		Epochs:        len(epochs),
		VerifyP50Ns:   quant(0.50),
		VerifyP95Ns:   quant(0.95),
		UpdatesPerSec: float64(len(seq)) / elapsed.Seconds(),
		Cores:         runtime.NumCPU(),
	}
}

func runShards(scaleName string, scale exps.Scale, record string) {
	header("Shards — coordinator throughput vs shard count")
	cores := runtime.NumCPU()
	fmt.Printf("cores=%d subspaces=%d epoch-size=%d hot-fraction=%.1f\n",
		cores, shardsSubspaces, shardsPerEpoch, shardsHotFrac)

	// Discarded warm-up run (allocator growth; see the scaling
	// experiment for the rationale).
	shardsRun(scaleName, scale, 1)

	var entries []shardsEntry
	var base float64
	for _, n := range []int{1, 2, 4} {
		e := shardsRun(scaleName, scale, n)
		if n == 1 {
			base = e.UpdatesPerSec
		}
		if base > 0 {
			e.SpeedupVs1 = e.UpdatesPerSec / base
		}
		entries = append(entries, e)
		fmt.Printf("shards=%-3d verify-p50=%-10s verify-p95=%-10s upd/s=%-10.0f speedup=%.2fx\n",
			e.Shards,
			time.Duration(e.VerifyP50Ns),
			time.Duration(e.VerifyP95Ns),
			e.UpdatesPerSec, e.SpeedupVs1)
	}

	if record != "" {
		now := time.Now().UTC().Format(time.RFC3339)
		rows := make([]any, len(entries))
		for i := range entries {
			entries[i].RecordedAt = now
			rows[i] = entries[i]
		}
		if err := appendEntries(record, rows); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: shards: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d entries to %s\n", len(entries), record)
	}
}

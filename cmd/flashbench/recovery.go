package main

// The recovery experiment measures the warm-restart tentpole: how long
// a crashed verifier takes to return to the live model via checkpoint
// restore + suffix replay, as a function of checkpoint age (how much of
// the update stream arrived after the checkpoint), against the full
// re-ingest a cold boot pays. Rows land in the shared benchmark
// trajectory file with -record.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	flash "repro"
	"repro/internal/hs"
	"repro/internal/openr"
	"repro/internal/topo"
	"repro/internal/wire"
)

// recoveryEntry is one row of the trajectory: one checkpoint age.
type recoveryEntry struct {
	Bench          string  `json:"bench"`
	Scale          string  `json:"scale"`
	Messages       int     `json:"messages"`
	AgeFrac        float64 `json:"checkpoint_age_frac"` // stream fraction after the checkpoint
	CkptBytes      int     `json:"ckpt_bytes"`
	RestoreNs      int64   `json:"restore_ns"`       // load + rebuild from the checkpoint
	ReplayNs       int64   `json:"replay_ns"`        // suffix re-feed
	RecoveryNs     int64   `json:"recovery_ns"`      // restore + replay
	FullReingestNs int64   `json:"full_reingest_ns"` // cold-boot baseline
	Speedup        float64 `json:"speedup_vs_reingest"`
	Cores          int     `json:"cores"`
	RecordedAt     string  `json:"recorded_at,omitempty"`
}

// recoveryWorkload mirrors the chaos suite's stream: an OpenR simulation
// on Internet2 with a mid-run link failure. The scale knob stretches the
// simulated duration.
func recoveryWorkload(scaleFactor int) (*topo.Graph, *hs.Layout, []flash.Msg) {
	g := topo.Internet2()
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})
	space := hs.NewSpace(layout)
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	sim := openr.New(g, space, owners, openr.DefaultOptions())
	// The scale knob adds fail/restore churn cycles; each cycle forces a
	// reconvergence epoch, stretching the stream the recovery replays.
	chic, kans := g.MustByName("chic"), g.MustByName("kans")
	for i := 0; i < scaleFactor; i++ {
		base := openr.Time(i) * 60_000_000
		sim.FailLink(base+10_000, chic, kans)
		if i+1 < scaleFactor {
			sim.RestoreLink(base+30_000_000, chic, kans)
		}
	}
	sim.Run(openr.Time(scaleFactor) * 60_000_000)
	var msgs []flash.Msg
	for _, m := range sim.Messages() {
		wm, err := wire.FromFib(m.Msg.Device, string(m.Msg.Epoch), m.Msg.Updates)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: recovery workload: %v\n", err)
			os.Exit(1)
		}
		msgs = append(msgs, wm)
	}
	return g, layout, msgs
}

func recoveryOpts(g *topo.Graph, layout *hs.Layout) []flash.Option {
	return []flash.Option{
		flash.WithTopo(g),
		flash.WithLayout(layout),
		flash.WithSubspaces(2, ""),
		flash.WithChecks(flash.CheckSpec{Name: "loops", Kind: flash.CheckLoopFree}),
	}
}

func recoveryFeed(sys *flash.System, msgs []flash.Msg) {
	for _, m := range msgs {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: recovery: %v\n", err)
			os.Exit(1)
		}
	}
}

// recoveryRun measures one checkpoint age: the checkpoint is cut with
// ageFrac of the stream still to come, the system "crashes", and
// recovery restores + replays the suffix.
func recoveryRun(scaleName string, g *topo.Graph, layout *hs.Layout, msgs []flash.Msg, ageFrac float64) recoveryEntry {
	cut := int(float64(len(msgs)) * (1 - ageFrac))
	if cut < 1 {
		cut = 1
	}
	dir, err := os.MkdirTemp("", "flash-recovery-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: recovery: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	crashed, err := flash.NewSystem(recoveryOpts(g, layout)...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: recovery: %v\n", err)
		os.Exit(1)
	}
	recoveryFeed(crashed, msgs[:cut])
	info, err := crashed.Checkpoint(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: recovery: checkpoint: %v\n", err)
		os.Exit(1)
	}
	recoveryFeed(crashed, msgs[cut:]) // post-checkpoint traffic the crash destroys

	// ---- warm restart: restore + replay the suffix ----
	t0 := time.Now()
	restored, _, err := flash.Restore(dir, recoveryOpts(g, layout)...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: recovery: restore: %v\n", err)
		os.Exit(1)
	}
	restoreNs := time.Since(t0).Nanoseconds()
	t1 := time.Now()
	recoveryFeed(restored, msgs[cut:])
	replayNs := time.Since(t1).Nanoseconds()

	// ---- cold boot: full re-ingest ----
	cold, err := flash.NewSystem(recoveryOpts(g, layout)...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: recovery: %v\n", err)
		os.Exit(1)
	}
	t2 := time.Now()
	recoveryFeed(cold, msgs)
	reingestNs := time.Since(t2).Nanoseconds()

	e := recoveryEntry{
		Bench:          "ckpt-recovery",
		Scale:          scaleName,
		Messages:       len(msgs),
		AgeFrac:        ageFrac,
		CkptBytes:      info.Bytes,
		RestoreNs:      restoreNs,
		ReplayNs:       replayNs,
		RecoveryNs:     restoreNs + replayNs,
		FullReingestNs: reingestNs,
		Cores:          runtime.NumCPU(),
	}
	if e.RecoveryNs > 0 {
		e.Speedup = float64(e.FullReingestNs) / float64(e.RecoveryNs)
	}
	return e
}

func runRecovery(scaleName string, record string) {
	header("Recovery — warm restart vs checkpoint age")
	factor := map[string]int{"tiny": 1, "small": 4, "medium": 8, "large": 16}[scaleName]
	if factor == 0 {
		factor = 1
	}
	g, layout, msgs := recoveryWorkload(factor)
	fmt.Printf("workload: %d messages (openr/Internet2, link-failure churn)\n", len(msgs))

	// Discarded warm-up: first run pays allocator growth.
	recoveryRun(scaleName, g, layout, msgs, 0.25)

	var entries []recoveryEntry
	for _, age := range []float64{0.05, 0.25, 0.5, 0.75} {
		// Best of three: single-run timings at this scale are dominated
		// by allocator and scheduler noise.
		e := recoveryRun(scaleName, g, layout, msgs, age)
		for i := 0; i < 2; i++ {
			if r := recoveryRun(scaleName, g, layout, msgs, age); r.RecoveryNs < e.RecoveryNs {
				e = r
			}
		}
		entries = append(entries, e)
		fmt.Printf("age=%-5.2f ckpt=%-8s restore=%-10s replay=%-10s recovery=%-10s reingest=%-10s speedup=%.2fx\n",
			e.AgeFrac, fmtBytes(uint64(e.CkptBytes)),
			time.Duration(e.RestoreNs).Round(time.Microsecond),
			time.Duration(e.ReplayNs).Round(time.Microsecond),
			time.Duration(e.RecoveryNs).Round(time.Microsecond),
			time.Duration(e.FullReingestNs).Round(time.Microsecond),
			e.Speedup)
	}

	if record != "" {
		now := time.Now().UTC().Format(time.RFC3339)
		rows := make([]any, len(entries))
		for i := range entries {
			entries[i].RecordedAt = now
			rows[i] = entries[i]
		}
		if err := appendEntries(record, rows); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: recovery: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d entries to %s\n", len(entries), record)
	}
}

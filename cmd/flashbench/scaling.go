package main

// The scaling experiment measures the work-stealing scheduler on a
// deliberately skewed churn workload: most churn lands in one hot
// subspace, so a static subspace→worker assignment serializes on that
// worker while stealing lets idle workers drain it. A second section
// compares the predicate representations (sharded BDD vs Delta-net
// interval atoms) on the same prefix-only churn. Results are printed
// as a table and, with -record, appended to a JSON benchmark
// trajectory file (BENCH_flash.json) so successive commits can be
// compared.
//
// Honesty rules for the recorded rows: every row carries the physical
// core count (Cores) and the scheduler's view of it (GOMAXPROCS) at
// measurement time, speedups are computed only against a baseline row
// measured with the same core count, and worker counts that
// oversubscribe the physical cores are flagged — a "speedup" at
// workers=8 on a 1-core host is scheduler overhead shuffling, not
// parallelism, and recording it unqualified is how a serialized unique
// table hides for months.

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	flash "repro"
	"repro/internal/exps"
	"repro/internal/topo"
	"repro/internal/workload"
)

// scalingEntry is one row of the benchmark trajectory. Cores records
// the physical parallelism available when the row was measured and
// GOMAXPROCS what the Go scheduler was allowed to use — speedups at
// worker counts beyond either are bounded by 1.0 no matter how good
// the scheduler is, so trajectories are only comparable between rows
// with equal core metadata. Oversubscribed marks rows where the worker
// count exceeded the usable cores.
type scalingEntry struct {
	Bench          string  `json:"bench"`
	Scale          string  `json:"scale"`
	Mode           string  `json:"predicate_mode"`
	Workers        int     `json:"workers"`
	Subspaces      int     `json:"subspaces"`
	Batch          int     `json:"batch"`
	Updates        int     `json:"updates"`
	NsPerUpdateP50 int64   `json:"ns_per_update_p50"`
	NsPerUpdateP95 int64   `json:"ns_per_update_p95"`
	Steals         uint64  `json:"steals"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	SpeedupVs1     float64 `json:"speedup_vs_1,omitempty"`
	Cores          int     `json:"cores"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Oversubscribed bool    `json:"oversubscribed,omitempty"`
	Cutovers       int     `json:"cutovers,omitempty"`
	RecordedAt     string  `json:"recorded_at,omitempty"`
}

const (
	scalingSubspaces = 8
	scalingBatch     = 16
	scalingChurn     = 3
	scalingHotFrac   = 0.9
	scalingSeed      = 0x5ca1e
)

// usableCores is the parallelism a measurement can actually exploit:
// the Go scheduler never runs more threads than GOMAXPROCS, and the
// machine never runs more than NumCPU of them simultaneously.
// wideRulesPerDevice sizes the 32-bit representation workload per scale.
func wideRulesPerDevice(scale exps.Scale) int {
	switch scale {
	case exps.Tiny:
		return 50
	case exps.Small:
		return 150
	default:
		return 300
	}
}

func usableCores() int {
	c := runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < c {
		c = p
	}
	return c
}

// scalingRun applies the skewed sequence through a ModelBuilder with
// the given worker count and predicate mode and returns the measured
// row.
func scalingRun(scaleName string, scale exps.Scale, workers int, mode flash.PredicateMode) scalingEntry {
	// Fresh workload (and predicate engine) per run: engines are
	// stateful and sharing one across runs would let cache warmth leak
	// between rows.
	w := exps.Build(exps.LNetAPSP, scale)
	seq := w.SkewedChurn(scalingChurn, scalingSubspaces, scalingHotFrac, scalingSeed)
	return measureSeq(w, seq, scaleName, workers, mode)
}

// measureSeq replays one update sequence through a fresh ModelBuilder
// and returns the measured row.
func measureSeq(w *workload.Workload, seq []workload.DevUpdate, scaleName string, workers int, mode flash.PredicateMode) scalingEntry {
	opts := []flash.Option{
		flash.WithTopo(w.Topo),
		flash.WithLayout(w.Layout),
		flash.WithSubspaces(scalingSubspaces, ""),
		flash.WithWorkers(workers),
		flash.WithBatch(scalingBatch),
		flash.WithPredicateMode(mode),
	}
	if exps.Metrics != nil {
		// With -metrics, the scheduler/batch/cache counters of each row
		// land in the dumped snapshot under workersN/...
		opts = append(opts, flash.WithMetrics(exps.Metrics.Sub(fmt.Sprintf("%s-workers%d", mode, workers))))
	}
	b := flash.NewModelBuilder(opts...)

	var samples []int64 // ns per update, one sample per applied chunk
	start := time.Now()
	for _, batch := range workload.Chunk(seq, 128) {
		blocks := make([]flash.DeviceBlock, 0, len(batch))
		n := 0
		for _, fb := range batch {
			db := flash.DeviceBlock{Device: fb.Device}
			for _, u := range fb.Updates {
				db.Updates = append(db.Updates, flash.Update{Op: u.Op,
					Rule: flash.Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
				n++
			}
			blocks = append(blocks, db)
		}
		t0 := time.Now()
		if err := b.ApplyBlock(blocks); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: scaling: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			samples = append(samples, time.Since(t0).Nanoseconds()/int64(n))
		}
	}
	if err := b.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: scaling: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	quant := func(q float64) int64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	sched := b.StatsSnapshot().Scheduler
	cache := b.StatsSnapshot().Cache
	return scalingEntry{
		Bench:          "skewed-churn",
		Scale:          scaleName,
		Mode:           mode.String(),
		Workers:        sched.Workers,
		Subspaces:      scalingSubspaces,
		Batch:          scalingBatch,
		Updates:        len(seq),
		NsPerUpdateP50: quant(0.50),
		NsPerUpdateP95: quant(0.95),
		Steals:         sched.Steals,
		CacheHitRate:   cache.HitRate(),
		UpdatesPerSec:  float64(len(seq)) / elapsed.Seconds(),
		Cores:          runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Oversubscribed: sched.Workers > usableCores(),
		Cutovers:       b.PredicateCutovers(),
	}
}

func runScaling(scaleName string, scale exps.Scale, record string) {
	header("Scaling — work-stealing scheduler on skewed churn")
	cores := usableCores()
	fmt.Printf("cores=%d gomaxprocs=%d subspaces=%d batch=%d hot-fraction=%.1f\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), scalingSubspaces, scalingBatch, scalingHotFrac)
	if cores == 1 {
		fmt.Println("note: single-core host — parallel workers cannot add CPU here; a")
		fmt.Println("measured speedup is dispatch/batching structure, not parallelism,")
		fmt.Println("and the rows are flagged oversubscribed. Steals still show the")
		fmt.Println("scheduler engaging.")
	}

	// Discarded warm-up run: the first run in a process pays allocator
	// growth that later runs reuse, which would flatter every row after
	// the workers=1 baseline.
	scalingRun(scaleName, scale, 1, flash.PredicateBDD)

	var entries []scalingEntry
	base := scalingEntry{}
	for _, workers := range []int{1, 2, 4, 8} {
		e := scalingRun(scaleName, scale, workers, flash.PredicateBDD)
		if workers == 1 {
			base = e
		}
		// Speedup is only meaningful against a baseline measured under
		// identical core metadata; within one process run that always
		// holds, but the guard keeps the invariant explicit (and keeps a
		// future cross-run baseline from silently comparing a 16-core row
		// to a 1-core one).
		if base.UpdatesPerSec > 0 && e.Cores == base.Cores && e.GOMAXPROCS == base.GOMAXPROCS {
			e.SpeedupVs1 = e.UpdatesPerSec / base.UpdatesPerSec
		}
		entries = append(entries, e)
		warn := ""
		if e.Oversubscribed {
			warn = fmt.Sprintf("  [oversubscribed: %d workers > %d usable cores — not parallel speedup; any gain is dispatch/batching structure]", e.Workers, cores)
		}
		fmt.Printf("workers=%-3d p50=%-8s p95=%-8s steals=%-6d cache-hit=%4.1f%% upd/s=%-10.0f speedup=%.2fx%s\n",
			e.Workers,
			time.Duration(e.NsPerUpdateP50),
			time.Duration(e.NsPerUpdateP95),
			e.Steals, 100*e.CacheHitRate, e.UpdatesPerSec, e.SpeedupVs1, warn)
	}

	// Predicate representation comparison, measured at workers=1 so the
	// ratio is representation cost alone, not scheduling. Two prefix-only
	// workloads: the 16-bit fabric churn above (where shallow BDDs keep
	// the gap modest) and a 32-bit random-prefix FIB — the paper's §5.1
	// regime, where a BDD Boolean op walks up to 32 node levels while the
	// same rule stays one interval for the atoms.
	header("Predicate representation — atoms vs BDD on prefix-only workloads")
	reprRuns := []struct {
		bench string
		note  string
		seq   func() (*workload.Workload, []workload.DevUpdate)
	}{
		{"prefix-churn-representation", "16-bit fabric churn", func() (*workload.Workload, []workload.DevUpdate) {
			w := exps.Build(exps.LNetAPSP, scale)
			return w, w.SkewedChurn(scalingChurn, scalingSubspaces, scalingHotFrac, scalingSeed)
		}},
		{"prefix-fib32-representation", "32-bit random-prefix FIB churn", func() (*workload.Workload, []workload.DevUpdate) {
			w := workload.WidePrefixFIB(topo.Internet2(), wideRulesPerDevice(scale), scalingSeed)
			return w, w.ChurnSequence(scalingChurn, scalingSeed)
		}},
	}
	for _, r := range reprRuns {
		var bddRow, atomRow scalingEntry
		for _, mode := range []flash.PredicateMode{flash.PredicateBDD, flash.PredicateHybrid} {
			w, seq := r.seq()
			e := measureSeq(w, seq, scaleName, 1, mode)
			e.Bench = r.bench
			if mode == flash.PredicateBDD {
				bddRow = e
			} else {
				atomRow = e
				if e.Cutovers != 0 {
					fmt.Printf("warning: hybrid run cut over to BDD %d times on a prefix-only workload\n", e.Cutovers)
				}
			}
			entries = append(entries, e)
			fmt.Printf("%-32s mode=%-7s p50=%-8s p95=%-8s upd/s=%-10.0f cutovers=%d\n",
				r.note, e.Mode, time.Duration(e.NsPerUpdateP50), time.Duration(e.NsPerUpdateP95), e.UpdatesPerSec, e.Cutovers)
		}
		if bddRow.UpdatesPerSec > 0 {
			fmt.Printf("%-32s atoms vs BDD: %.2fx updates/sec (same host, %d core(s) — representation, not parallelism)\n",
				r.note, atomRow.UpdatesPerSec/bddRow.UpdatesPerSec, cores)
		}
	}

	if record != "" {
		if err := appendScaling(record, entries); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d entries to %s\n", len(entries), record)
	}
}

// appendScaling appends the run's rows to the JSON trajectory file
// (shared with the gc experiment's rows; see appendEntries).
func appendScaling(path string, entries []scalingEntry) error {
	now := time.Now().UTC().Format(time.RFC3339)
	rows := make([]any, len(entries))
	for i := range entries {
		entries[i].RecordedAt = now
		rows[i] = entries[i]
	}
	return appendEntries(path, rows)
}

package main

// The scaling experiment measures the work-stealing scheduler on a
// deliberately skewed churn workload: most churn lands in one hot
// subspace, so a static subspace→worker assignment serializes on that
// worker while stealing lets idle workers drain it. Results are
// printed as a table and, with -record, appended to a JSON benchmark
// trajectory file (BENCH_flash.json) so successive commits can be
// compared.

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	flash "repro"
	"repro/internal/exps"
	"repro/internal/workload"
)

// scalingEntry is one row of the benchmark trajectory. Cores records
// the physical parallelism available when the row was measured —
// speedups at worker counts beyond Cores are bounded by 1.0 no matter
// how good the scheduler is, so trajectories are only comparable
// between rows with equal Cores.
type scalingEntry struct {
	Bench          string  `json:"bench"`
	Scale          string  `json:"scale"`
	Workers        int     `json:"workers"`
	Subspaces      int     `json:"subspaces"`
	Batch          int     `json:"batch"`
	Updates        int     `json:"updates"`
	NsPerUpdateP50 int64   `json:"ns_per_update_p50"`
	NsPerUpdateP95 int64   `json:"ns_per_update_p95"`
	Steals         uint64  `json:"steals"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	SpeedupVs1     float64 `json:"speedup_vs_1"`
	Cores          int     `json:"cores"`
	RecordedAt     string  `json:"recorded_at,omitempty"`
}

const (
	scalingSubspaces = 8
	scalingBatch     = 16
	scalingChurn     = 3
	scalingHotFrac   = 0.9
	scalingSeed      = 0x5ca1e
)

// scalingRun applies the skewed sequence through a ModelBuilder with
// the given worker count and returns the measured row.
func scalingRun(scaleName string, scale exps.Scale, workers int) scalingEntry {
	// Fresh workload (and BDD engine) per run: engines are stateful and
	// sharing one across runs would let cache warmth leak between rows.
	w := exps.Build(exps.LNetAPSP, scale)
	seq := w.SkewedChurn(scalingChurn, scalingSubspaces, scalingHotFrac, scalingSeed)

	opts := []flash.Option{
		flash.WithTopo(w.Topo),
		flash.WithLayout(w.Layout),
		flash.WithSubspaces(scalingSubspaces, ""),
		flash.WithWorkers(workers),
		flash.WithBatch(scalingBatch),
	}
	if exps.Metrics != nil {
		// With -metrics, the scheduler/batch/cache counters of each row
		// land in the dumped snapshot under workersN/...
		opts = append(opts, flash.WithMetrics(exps.Metrics.Sub(fmt.Sprintf("workers%d", workers))))
	}
	b := flash.NewModelBuilder(opts...)

	var samples []int64 // ns per update, one sample per applied chunk
	start := time.Now()
	for _, batch := range workload.Chunk(seq, 128) {
		blocks := make([]flash.DeviceBlock, 0, len(batch))
		n := 0
		for _, fb := range batch {
			db := flash.DeviceBlock{Device: fb.Device}
			for _, u := range fb.Updates {
				db.Updates = append(db.Updates, flash.Update{Op: u.Op,
					Rule: flash.Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
				n++
			}
			blocks = append(blocks, db)
		}
		t0 := time.Now()
		if err := b.ApplyBlock(blocks); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: scaling: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			samples = append(samples, time.Since(t0).Nanoseconds()/int64(n))
		}
	}
	if err := b.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: scaling: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	quant := func(q float64) int64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	sched := b.StatsSnapshot().Scheduler
	cache := b.StatsSnapshot().Cache
	return scalingEntry{
		Bench:          "skewed-churn",
		Scale:          scaleName,
		Workers:        sched.Workers,
		Subspaces:      scalingSubspaces,
		Batch:          scalingBatch,
		Updates:        len(seq),
		NsPerUpdateP50: quant(0.50),
		NsPerUpdateP95: quant(0.95),
		Steals:         sched.Steals,
		CacheHitRate:   cache.HitRate(),
		UpdatesPerSec:  float64(len(seq)) / elapsed.Seconds(),
		Cores:          runtime.NumCPU(),
	}
}

func runScaling(scaleName string, scale exps.Scale, record string) {
	header("Scaling — work-stealing scheduler on skewed churn")
	cores := runtime.NumCPU()
	fmt.Printf("cores=%d subspaces=%d batch=%d hot-fraction=%.1f\n",
		cores, scalingSubspaces, scalingBatch, scalingHotFrac)
	if cores == 1 {
		fmt.Println("note: single-core host — wall-clock speedup from parallel workers")
		fmt.Println("is bounded by 1.0x here; steals still show the scheduler engaging.")
	}

	// Discarded warm-up run: the first run in a process pays allocator
	// growth that later runs reuse, which would flatter every row after
	// the workers=1 baseline.
	scalingRun(scaleName, scale, 1)

	var entries []scalingEntry
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		e := scalingRun(scaleName, scale, workers)
		if workers == 1 {
			base = e.UpdatesPerSec
		}
		if base > 0 {
			e.SpeedupVs1 = e.UpdatesPerSec / base
		}
		entries = append(entries, e)
		fmt.Printf("workers=%-3d p50=%-8s p95=%-8s steals=%-6d cache-hit=%4.1f%% upd/s=%-10.0f speedup=%.2fx\n",
			e.Workers,
			time.Duration(e.NsPerUpdateP50),
			time.Duration(e.NsPerUpdateP95),
			e.Steals, 100*e.CacheHitRate, e.UpdatesPerSec, e.SpeedupVs1)
	}

	if record != "" {
		if err := appendScaling(record, entries); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d entries to %s\n", len(entries), record)
	}
}

// appendScaling appends the run's rows to the JSON trajectory file
// (shared with the gc experiment's rows; see appendEntries).
func appendScaling(path string, entries []scalingEntry) error {
	now := time.Now().UTC().Format(time.RFC3339)
	rows := make([]any, len(entries))
	for i := range entries {
		entries[i].RecordedAt = now
		rows[i] = entries[i]
	}
	return appendEntries(path, rows)
}

// Command flashbench regenerates the tables and figures of the Flash
// paper's evaluation (§5 and appendices) on scaled-down workloads and
// prints them in the paper's shape. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	flashbench -exp table3            # Table 3 (all settings)
//	flashbench -exp fig6              # storm baselines, no partitioning
//	flashbench -exp fig7              # block size threshold sweep
//	flashbench -exp fig8              # PUV/BUV/CE2D consistency timeline
//	flashbench -exp fig9              # CE2D long-tail detection CDF
//	flashbench -exp fig10             # multiple dampened switches
//	flashbench -exp fig11             # model-construction phase breakdown
//	flashbench -exp fig12             # DGQ vs MT reachability check
//	flashbench -exp fig14             # update storm bursts (Appendix A)
//	flashbench -exp fig15             # fat-tree pod-add counts
//	flashbench -exp fig18             # verification time vs progress
//	flashbench -exp overhead          # §5.5 resource accounting
//	flashbench -exp scaling           # work-stealing scheduler on skewed churn
//	flashbench -exp gc                # in-engine BDD GC vs Compact rotation
//	flashbench -exp recovery          # warm restart vs checkpoint age
//	flashbench -exp shards            # sharded verification vs shard count
//	flashbench -exp all
//
// -exp scaling sweeps worker counts {1,2,4,8} over a hot-subspace
// churn workload; -exp gc measures peak/steady-state node counts and
// GC pauses under a memory budget; -exp recovery measures checkpoint
// restore + suffix replay against full re-ingest across checkpoint
// ages; -exp shards replays a skewed-churn epoch stream through the
// shard coordinator with N ∈ {1,2,4} in-process replicas and reports
// throughput and per-epoch verify latency. With -record FILE the
// measured rows of these experiments are
// appended to a JSON benchmark-trajectory file (conventionally
// BENCH_flash.json).
//
// -scale selects workload sizing (tiny|small|medium|large).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exps"
	"repro/internal/obs"
	"repro/internal/openr"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiment to run (table3|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig14|fig15|fig18|overhead|all)")
		scaleFlag = flag.String("scale", "small", "workload scale (tiny|small|medium|large)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-baseline timeout for storm experiments")
		trials    = flag.Int("trials", 50, "trials for the CDF experiments")
		subspaces = flag.Int("subspaces", 4, "subspace partition count")
		metrics   = flag.Bool("metrics", false, "dump a per-experiment metrics snapshot (latency histograms) after each phase")
		record    = flag.String("record", "", "append scaling results to this JSON trajectory file (scaling experiment only)")
	)
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runners := map[string]func(){
		"table3":   func() { runTable3(scale, *subspaces, *timeout) },
		"fig6":     func() { runFig6(scale, *timeout) },
		"fig7":     func() { runFig7(scale) },
		"fig8":     runFig8,
		"fig9":     func() { runFig9(*trials) },
		"fig10":    func() { runFig10(*trials) },
		"fig11":    func() { runFig11(scale) },
		"fig12":    func() { runFig12(scale) },
		"fig14":    runFig14,
		"fig15":    runFig15,
		"fig18":    func() { runFig18(scale) },
		"overhead": func() { runOverhead(scale, *subspaces) },
		"scaling":  func() { runScaling(*scaleFlag, scale, *record) },
		"gc":       func() { runGCBench(*scaleFlag, scale, *record) },
		"recovery": func() { runRecovery(*scaleFlag, *record) },
		"shards":   func() { runShards(*scaleFlag, scale, *record) },
	}
	order := []string{"table3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig14", "fig15", "fig18", "overhead"}

	// With -metrics, each experiment gets a fresh registry and its
	// latency distributions (not just totals) are dumped after the phase.
	instrumented := func(name string, run func()) {
		if *metrics {
			exps.Metrics = obs.NewRegistry(name)
		}
		run()
		if *metrics {
			dumpMetrics(name, exps.Metrics)
			exps.Metrics = nil
		}
	}

	if *expFlag == "all" {
		for _, name := range order {
			instrumented(name, runners[name])
			fmt.Println()
		}
		return
	}
	run, ok := runners[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "flashbench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	instrumented(*expFlag, run)
}

// dumpMetrics prints the per-phase observability snapshot: one block per
// workload sub-registry, with the Fast IMT phase latency histograms
// (p50/p95/p99) that the plain tables reduce to totals.
func dumpMetrics(name string, reg *obs.Registry) {
	s := reg.Snapshot()
	if len(s.Subs) == 0 {
		return
	}
	fmt.Printf("-- metrics (%s) --\n", name)
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: metrics encoding: %v\n", err)
		return
	}
	fmt.Println(string(out))
}

func parseScale(s string) (exps.Scale, error) {
	switch s {
	case "tiny":
		return exps.Tiny, nil
	case "small":
		return exps.Small, nil
	case "medium":
		return exps.Medium, nil
	case "large":
		return exps.Large, nil
	default:
		return 0, fmt.Errorf("flashbench: unknown scale %q", s)
	}
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func fmtResult(r exps.SystemResult) string {
	t := r.Time.Round(time.Millisecond).String()
	if r.TimedOut {
		t = ">" + t
	}
	return fmt.Sprintf("%-12s time=%-10s ops=%-12d units=%-10d heapΔ=%s",
		r.System, t, r.Ops, r.Units, fmtBytes(r.MemBytes))
}

func fmtBytes(b uint64) string {
	switch {
	case b > 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b > 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func runTable3(scale exps.Scale, subspaces int, timeout time.Duration) {
	header("Table 3 — overall performance (subspace-partitioned)")
	for _, s := range exps.AllSettings {
		nsub := subspaces
		if s == exps.AirtelTrace || s == exps.StanfordTrace || s == exps.I2Trace {
			nsub = 1 // the paper partitions only the LNet settings
		}
		row := exps.RunTable3(s, scale, nsub, timeout)
		fmt.Printf("%-16s rules=%-8d updates=%-8d subspaces=%d\n",
			row.Setting, row.Rules, row.Updates, row.Subspaces)
		fmt.Printf("  %s  (speedup %.1fx)\n", fmtResult(row.DeltaNet), row.Speedup(row.DeltaNet))
		fmt.Printf("  %s  (speedup %.1fx)\n", fmtResult(row.APKeep), row.Speedup(row.APKeep))
		fmt.Printf("  %s\n", fmtResult(row.Flash))
	}
}

func runFig6(scale exps.Scale, timeout time.Duration) {
	header("Figure 6 — update storms without partitioning")
	for _, s := range []exps.Setting{exps.LNetECMP, exps.LNetSMR} {
		r := exps.RunFig6(s, scale, timeout)
		fmt.Printf("%s:\n  %s\n  %s\n  %s\n", s,
			fmtResult(r.DeltaNet), fmtResult(r.APKeep), fmtResult(r.Flash))
	}
}

func runFig7(scale exps.Scale) {
	header("Figure 7 — block size threshold vs model update speed")
	fractions := []float64{0.005, 0.01, 0.02, 0.04, 0.1, 0.2, 0.5, 1.0}
	for _, s := range []exps.Setting{exps.LNetAPSP, exps.I2Trace, exps.StanfordTrace} {
		pts := exps.RunFig7(s, scale, fractions)
		fmt.Printf("%s:\n", s)
		for _, p := range pts {
			bar := strings.Repeat("#", int(40*clamp01(p.Normalized)))
			fmt.Printf("  BST/FIB=%-6.3f speed=%5.2f %s\n", p.BSTFraction, p.Normalized, bar)
		}
	}
}

func clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}

func runFig8() {
	header("Figure 8 — FIB update timeline and verification reports")
	r := exps.RunFig8()
	for _, p := range r.Points {
		at := time.Duration(p.At) * time.Microsecond
		switch p.Kind {
		case "update":
			fmt.Printf("  %8s  update  %-6s epoch=%.8s\n", at, p.Device, p.Epoch)
		default:
			verdict := "no-loop"
			if p.Loop {
				verdict = "LOOP"
			}
			fmt.Printf("  %8s  %-6s  %s\n", at, p.Kind, verdict)
		}
	}
	fmt.Printf("transient loops: PUV=%d BUV=%d CE2D=%d (CE2D must be 0)\n",
		r.PUVTransient, r.BUVTransient, r.CE2DLoops)
}

func printCDF(c exps.CDF) {
	marks := []openr.Time{50_000, 100_000, 200_000, 400_000, 800_000, exps.Second, 60 * exps.Second}
	for _, m := range marks {
		fmt.Printf("  ≤%-8s %5.1f%%\n", time.Duration(m)*time.Microsecond, 100*c.Fraction(m))
	}
}

func runFig9(trials int) {
	header("Figure 9 — CE2D report time under long-tail arrivals")
	fmt.Println("I2-OpenR/1buggy-loop-lt:")
	printCDF(exps.RunFig9OpenR(trials, 1))
	fmt.Println("I2-trace-loop-lt (D=1):")
	printCDF(exps.RunFig10Trace(trials, 1, 2))
}

func runFig10(trials int) {
	header("Figure 10 — early loop detection vs dampened switches")
	for _, d := range []int{1, 3, 5, 7} {
		c := exps.RunFig10Trace(trials, d, int64(100+d))
		fmt.Printf("D=%d: ≤800ms %.1f%%\n", d, 100*c.Fraction(800_000))
	}
}

func runFig11(scale exps.Scale) {
	header("Figure 11 — model construction time breakdown (I2-trace)")
	r := exps.RunFig11(scale)
	fmt.Printf("%-24s %-14s %-14s %s\n", "phase", "APKeep*", "Flash(per-upd)", "Flash")
	fmt.Printf("%-24s %-14s %-14s %s\n", "computing atomic ow.", r.APKeepMap.Round(time.Microsecond),
		r.PerUpdMap.Round(time.Microsecond), r.FlashMap.Round(time.Microsecond))
	fmt.Printf("%-24s %-14s %-14s %s\n", "overwrite aggregation", "-",
		r.PerUpdReduce.Round(time.Microsecond), r.FlashReduce.Round(time.Microsecond))
	fmt.Printf("%-24s %-14s %-14s %s\n", "applying overwrites", r.APKeepApply.Round(time.Microsecond),
		r.PerUpdApply.Round(time.Microsecond), r.FlashApply.Round(time.Microsecond))
	fmt.Printf("atomic overwrites %d → aggregated %d\n", r.FlashAtomic, r.FlashAggregate)
}

func runFig12(scale exps.Scale) {
	header("Figure 12 — all-pair ToR-to-ToR reachability: DGQ vs MT")
	r := exps.RunFig12(scale)
	fmt.Printf("verification graphs: %d, batches: %d\n", r.Graphs, len(r.DGQ))
	fmt.Printf("%-6s median=%-10s mean=%-10s p99=%-10s max=%s\n", "DGQ",
		exps.Quantile(r.DGQ, 0.5), exps.Mean(r.DGQ), exps.Quantile(r.DGQ, 0.99), exps.Quantile(r.DGQ, 1))
	fmt.Printf("%-6s median=%-10s mean=%-10s p99=%-10s max=%s\n", "MT",
		exps.Quantile(r.MT, 0.5), exps.Mean(r.MT), exps.Quantile(r.MT, 0.99), exps.Quantile(r.MT, 1))
	if m := exps.Quantile(r.DGQ, 0.99); m > 0 {
		fmt.Printf("p99 improvement: %.0fx\n", float64(exps.Quantile(r.MT, 0.99))/float64(m))
	}
}

func runFig14() {
	header("Figure 14 — accumulative update distribution after link events")
	r := exps.RunFig14(1024)
	fmt.Printf("burst after inter-domain failure: %d updates within 1s\n", r.Burst1)
	fmt.Printf("burst after intra-domain recovery: %d updates within 1s\n", r.Burst2)
	step := len(r.Times) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Times); i += step {
		fmt.Printf("  t=%-10s cumulative=%d\n",
			time.Duration(r.Times[i])*time.Microsecond, r.Counts[i])
	}
}

func runFig15() {
	header("Figure 15 — update storm in network planning (pod add)")
	fmt.Printf("%-4s %-4s %-10s %s\n", "K", "P", "|R|", "|ΔR|")
	for _, row := range exps.RunFig15() {
		fmt.Printf("%-4d %-4d %-10d %d\n", row.K, row.P, row.Rules, row.Deltas)
	}
}

func runFig18(scale exps.Scale) {
	header("Figure 18 — verification time vs processed batches")
	r := exps.RunFig12(scale)
	step := len(r.SeriesDGQ) / 24
	if step == 0 {
		step = 1
	}
	fmt.Printf("%-8s %-12s %s\n", "batch", "DGQ", "MT")
	for i := 0; i < len(r.SeriesDGQ); i += step {
		fmt.Printf("%-8d %-12s %s\n", i, r.SeriesDGQ[i], r.SeriesMT[i])
	}
}

func runOverhead(scale exps.Scale, subspaces int) {
	header("§5.5 — computational overhead")
	r := exps.RunOverhead(scale, subspaces)
	fmt.Printf("nodes=%d rules=%d subspaces=%d\n", r.Nodes, r.Rules, r.Subspaces)
	fmt.Printf("total equivalence classes: %d\n", r.ECsTotal)
	fmt.Printf("model memory units (BDD+PAT nodes): %d\n", r.MemoryUnits)
	fmt.Printf("one-shot model construction: %s\n", r.BuildTime.Round(time.Millisecond))
	fmt.Printf("per-subspace verifier: 1 vCPU; with k machines, ⌈%d/k⌉ vCPUs each\n", r.Subspaces)
}

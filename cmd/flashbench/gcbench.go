package main

// The gc experiment measures the in-engine BDD garbage collector: a
// prefix-mutating churn workload (every re-insert carries a fresh
// random prefix, so an engine that never reclaims accumulates every
// churned-out predicate) is applied both unbounded and under a memory
// budget. Recorded per row: peak and steady-state live node counts,
// collection counts and reclaimed totals, the GC pause distribution
// (p50/p95), and a direct GC-vs-Compact cost comparison on identical
// final states — the number that justifies preferring in-engine
// collection over the full rotation rebuild.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"time"

	flash "repro"
	"repro/internal/exps"
	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/workload"
)

// gcEntry is one row of the benchmark trajectory (it shares
// BENCH_flash.json with the scaling rows; the bench field tells them
// apart).
type gcEntry struct {
	Bench          string `json:"bench"`
	Scale          string `json:"scale"`
	Budget         int    `json:"budget"`
	Updates        int    `json:"updates"`
	UnboundedPeak  int    `json:"unbounded_peak_nodes"`
	BudgetedPeak   int    `json:"budgeted_peak_nodes"`
	BudgetedSteady int    `json:"budgeted_steady_nodes"`
	GCRuns         uint64 `json:"gc_runs"`
	Reclaimed      uint64 `json:"gc_reclaimed_nodes"`
	GCPauseP50Ns   int64  `json:"gc_pause_p50_ns"`
	GCPauseP95Ns   int64  `json:"gc_pause_p95_ns"`
	GCNs           int64  `json:"gc_ns"`
	CompactNs      int64  `json:"compact_ns"`
	Cores          int    `json:"cores"`
	RecordedAt     string `json:"recorded_at,omitempty"`
}

const (
	gcSubspaces   = 4
	gcSeed        = 0x6c0de
	gcChurnFactor = 3 // churn operations per initially-inserted rule
)

// gcWorkload builds the garbage-heavy sequence: the APSP insert storm
// followed by churn whose re-inserts replace the deleted rule's prefix
// with a fresh random one. Identical-predicate churn (SkewedChurn) is
// free under hash-consing; mutating the prefix is what makes an
// unbounded engine accumulate dead predicates for the GC to reclaim.
func gcWorkload(scale exps.Scale) (*workload.Workload, []workload.DevUpdate) {
	w := exps.Build(exps.LNetAPSP, scale)
	seq := w.InsertSequence()
	width := w.Layout.FieldBits("dst")
	type live struct {
		dev  fib.DeviceID
		rule fib.Rule
	}
	var pool []live
	for _, du := range seq {
		pool = append(pool, live{du.Dev, du.Update.Rule})
	}
	rng := rand.New(rand.NewSource(gcSeed))
	nextID := int64(1 << 40)
	for n := 0; n < gcChurnFactor*len(pool); n++ {
		i := rng.Intn(len(pool))
		l := pool[i]
		seq = append(seq, workload.DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Delete, Rule: l.rule}})
		nr := l.rule
		nr.ID = nextID
		nextID++
		plen := 6 + rng.Intn(width-5)
		nr.Desc = fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix,
			Value: uint64(rng.Intn(1<<uint(plen))) << uint(width-plen), Len: plen}}
		seq = append(seq, workload.DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Insert, Rule: nr}})
		pool[i].rule = nr
	}
	return w, seq
}

// gcApply drives the sequence through a budgeted builder, sampling
// per-subspace live node counts after every chunk. It returns the
// builder, its registry, and the peak and final node counts (max over
// subspaces).
func gcApply(w *workload.Workload, seq []workload.DevUpdate, budget int) (*flash.ModelBuilder, *obs.Registry, int, int) {
	reg := obs.NewRegistry("gc")
	b := flash.NewModelBuilder(
		flash.WithTopo(w.Topo),
		flash.WithLayout(w.Layout),
		flash.WithSubspaces(gcSubspaces, ""),
		flash.WithBatch(16),
		flash.WithMemoryBudget(budget),
		flash.WithMetrics(reg),
	)
	peak := 0
	for _, batch := range workload.Chunk(seq, 128) {
		blocks := make([]flash.DeviceBlock, 0, len(batch))
		for _, fb := range batch {
			db := flash.DeviceBlock{Device: fb.Device}
			for _, u := range fb.Updates {
				db.Updates = append(db.Updates, flash.Update{Op: u.Op,
					Rule: flash.Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
			}
			blocks = append(blocks, db)
		}
		if err := b.ApplyBlock(blocks); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: gc: %v\n", err)
			os.Exit(1)
		}
		if n := maxNodeCount(reg); n > peak {
			peak = n
		}
	}
	if err := b.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: gc: %v\n", err)
		os.Exit(1)
	}
	return b, reg, peak, maxNodeCount(reg)
}

// maxNodeCount reads the bdd_nodes gauge of every subspace worker and
// returns the maximum.
func maxNodeCount(reg *obs.Registry) int {
	s := reg.Snapshot()
	m := 0
	for i := 0; i < gcSubspaces; i++ {
		if v, ok := s.Get("imt", "subspace"+strconv.Itoa(i), "bdd_nodes"); ok && int(v) > m {
			m = int(v)
		}
	}
	return m
}

// busiestPause returns the pause p50/p95 of the subspace that collected
// the most (the hot subspace's pauses dominate end-to-end latency).
func busiestPause(reg *obs.Registry) (p50, p95 int64) {
	s := reg.Snapshot()
	var best obs.HistSnapshot
	for i := 0; i < gcSubspaces; i++ {
		if h, ok := s.Hist("imt", "subspace"+strconv.Itoa(i), "bdd_gc_pause_ns"); ok && h.Count > best.Count {
			best = h
		}
	}
	return int64(best.P50Ns), int64(best.P95Ns)
}

func runGCBench(scaleName string, scale exps.Scale, record string) {
	header("GC — in-engine mark-and-sweep vs Compact rotation")
	w, seq := gcWorkload(scale)
	fmt.Printf("subspaces=%d updates=%d churn-factor=%d\n", gcSubspaces, len(seq), gcChurnFactor)

	// Unbounded control #1: final state feeds the explicit-GC timing.
	ctrl, _, unboundedPeak, _ := gcApply(w, seq, 0)
	t0 := time.Now()
	reclaimed, err := ctrl.GC()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: gc: %v\n", err)
		os.Exit(1)
	}
	gcNs := time.Since(t0).Nanoseconds()

	// Unbounded control #2 (identical final state): Compact timing.
	ctrl2, _, _, _ := gcApply(w, seq, 0)
	t0 = time.Now()
	if err := ctrl2.Compact(); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: gc: %v\n", err)
		os.Exit(1)
	}
	compactNs := time.Since(t0).Nanoseconds()

	// Budgeted run: the watermark must force collections well before the
	// unbounded peak. An eighth of the peak (floored) keeps the budget
	// scale-relative; the floor keeps tiny scales from thrashing.
	budget := unboundedPeak / 8
	if budget < 512 {
		budget = 512
	}
	b, reg, peak, steady := gcApply(w, seq, budget)
	st := b.StatsSnapshot().GC
	p50, p95 := busiestPause(reg)

	e := gcEntry{
		Bench:          "bdd-gc",
		Scale:          scaleName,
		Budget:         budget,
		Updates:        len(seq),
		UnboundedPeak:  unboundedPeak,
		BudgetedPeak:   peak,
		BudgetedSteady: steady,
		GCRuns:         st.Runs,
		Reclaimed:      st.ReclaimedNodes,
		GCPauseP50Ns:   p50,
		GCPauseP95Ns:   p95,
		GCNs:           gcNs,
		CompactNs:      compactNs,
		Cores:          runtime.NumCPU(),
	}
	fmt.Printf("unbounded peak=%d nodes; budget=%d: peak=%d steady=%d (%d collections, %d nodes reclaimed)\n",
		e.UnboundedPeak, e.Budget, e.BudgetedPeak, e.BudgetedSteady, e.GCRuns, e.Reclaimed)
	fmt.Printf("gc pause p50=%s p95=%s\n", time.Duration(e.GCPauseP50Ns), time.Duration(e.GCPauseP95Ns))
	fmt.Printf("full-state reclamation: gc=%s compact=%s (%.1fx) — reclaimed %d nodes\n",
		time.Duration(e.GCNs), time.Duration(e.CompactNs), float64(e.CompactNs)/float64(max(e.GCNs, 1)), reclaimed)

	if record != "" {
		e.RecordedAt = time.Now().UTC().Format(time.RFC3339)
		if err := appendEntries(record, []any{e}); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: gc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded 1 entry to %s\n", record)
	}
}

// appendEntries appends rows to the JSON trajectory file. Existing rows
// are kept as raw messages so entry shapes from different experiments
// (scaling, gc) coexist in one file without losing fields.
func appendEntries(path string, rows []any) error {
	var all []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, r := range rows {
		raw, err := json.Marshal(r)
		if err != nil {
			return err
		}
		all = append(all, raw)
	}
	out, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

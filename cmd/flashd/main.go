// Command flashd runs a Flash verification server: device agents connect
// over TCP (the wire protocol) and stream epoch-tagged FIB updates;
// deterministic early-detection results are printed as they fire.
//
// Example — verify loop freedom and a waypoint requirement on Internet2:
//
//	flashd -listen :7001 -topo internet2 -layout dst:16 \
//	    -loops \
//	    -reach "wp:seat .* [chic|kans] .* newy:seat:newy"
//
// The -reach flag's format is name:expr:sources:dest with sources
// comma-separated; it may repeat.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	flash "repro"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/wire"
)

type reachFlags []flash.CheckSpec

func (r *reachFlags) String() string { return fmt.Sprintf("%d checks", len(*r)) }

func (r *reachFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 4 {
		return fmt.Errorf("want name:expr:src1,src2:dest, got %q", v)
	}
	*r = append(*r, flash.CheckSpec{
		Name:    parts[0],
		Kind:    flash.CheckReach,
		Expr:    parts[1],
		Sources: strings.Split(parts[2], ","),
		Dest:    parts[3],
	})
	return nil
}

func main() {
	var (
		listen     = flag.String("listen", ":7001", "address to accept agent connections on")
		admin      = flag.String("admin", ":7071", "admin HTTP address for /metrics, /healthz and /debug/pprof ('' disables)")
		topoSpec   = flag.String("topo", "internet2", "topology (internet2|stanford|airtel|fabric:p,t,a,s)")
		layoutSpec = flag.String("layout", "dst:16", "header layout (name:bits,...)")
		loops      = flag.Bool("loops", true, "verify loop freedom")
		subspaces  = flag.Int("subspaces", 1, "subspace partition count (power of two)")
		subsetSpec = flag.String("subspace-set", "", "comma-separated global subspace indices this replica owns ('' = all; shard replicas under flashcoord set this)")
		workers    = flag.Int("workers", 0, "work-stealing scheduler workers (0 = GOMAXPROCS, clamped to subspaces)")
		batchN     = flag.Int("batch", 1, "max native updates coalesced into one Fast IMT pass (1 disables batching)")
		memBudget  = flag.Int("memory-budget", 0, "max live BDD nodes per subspace worker before automatic GC (0 = unbounded)")
		predMode   = flag.String("predicate-mode", "bdd", "predicate representation (bdd|hybrid); hybrid starts each subspace on interval atoms and converts to BDD on the first non-prefix rule")
		replay     = flag.String("replay", "", "one-shot mode: verify a snapshot file and exit")

		quarantine    = flag.Duration("quarantine", time.Minute, "how long a faulty device stays quarantined (0 = until restart)")
		agentTimeout  = flag.Duration("agent-timeout", 0, "close agent connections silent for this long (0 = never; agents heartbeat to stay alive)")
		ackWindow     = flag.Int("ack-window", 1024, "per-agent out-of-order frame window for replay reassembly")
		acceptBackoff = flag.Duration("accept-backoff", time.Second, "max retry backoff after temporary accept errors")

		ckptDir      = flag.String("checkpoint-dir", "", "directory for crash-consistent checkpoints; restores from the newest usable one on boot ('' disables)")
		ckptInterval = flag.Duration("checkpoint-interval", time.Minute, "period of the background checkpoint writer (0 = manual only, via POST /v1/checkpoint)")
		ckptKeep     = flag.Int("checkpoint-keep", 3, "checkpoints retained per prune; older files and leftover temp files are removed")
	)
	var reaches reachFlags
	flag.Var(&reaches, "reach", "reachability check name:expr:sources:dest (repeatable)")
	flag.Parse()

	g, err := cli.ParseTopo(*topoSpec)
	if err != nil {
		fatal(err)
	}
	layout, err := cli.ParseLayout(*layoutSpec)
	if err != nil {
		fatal(err)
	}
	checks := []flash.CheckSpec(reaches)
	if *loops {
		checks = append(checks, flash.CheckSpec{Name: "loop-freedom", Kind: flash.CheckLoopFree})
	}
	if len(checks) == 0 {
		fatal(fmt.Errorf("flashd: no checks configured"))
	}
	mode, err := flash.ParsePredicateMode(*predMode)
	if err != nil {
		fatal(fmt.Errorf("flashd: %v", err))
	}
	reg := obs.NewRegistry("flashd")
	logger := log.New(os.Stderr, "", log.LstdFlags)
	sysOpts := []flash.Option{
		flash.WithTopo(g),
		flash.WithLayout(layout),
		flash.WithSubspaces(*subspaces, ""),
		flash.WithWorkers(*workers),
		flash.WithBatch(*batchN),
		flash.WithMemoryBudget(*memBudget),
		flash.WithPredicateMode(mode),
		flash.WithChecks(checks...),
		flash.WithMetrics(reg),
		flash.WithLogger(logger),
	}
	if *subsetSpec != "" {
		var set []int
		for _, part := range strings.Split(*subsetSpec, ",") {
			var i int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &i); err != nil {
				fatal(fmt.Errorf("flashd: -subspace-set %q: %v", *subsetSpec, err))
			}
			set = append(set, i)
		}
		sysOpts = append(sysOpts, flash.WithSubspaceSet(set...))
	}
	// Warm restart: restore from the newest usable checkpoint; a missing,
	// corrupt, or config-mismatched set of candidates degrades to a fresh
	// system plus full re-ingest from the agents' replay buffers.
	var (
		sys      *flash.System
		restored *flash.RestoreReport
	)
	if *ckptDir != "" && *replay == "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
		s, rep, rerr := flash.Restore(*ckptDir, sysOpts...)
		if rerr == nil {
			sys, restored = s, rep
			fmt.Printf("flashd: warm restart from %s (%d subspaces, %d streams, %d corrupt candidates skipped) in %s\n",
				rep.Path, rep.Subspaces, len(rep.Streams), rep.SkippedCorrupt, rep.Took.Round(time.Millisecond))
		} else if errors.Is(rerr, flash.ErrNoCheckpoint) {
			if rep != nil && rep.SkippedCorrupt > 0 {
				logger.Printf("flashd: no usable checkpoint in %s (%d corrupt candidates skipped); full re-ingest", *ckptDir, rep.SkippedCorrupt)
			}
		} else {
			fatal(rerr)
		}
	}
	if sys == nil {
		var err error
		sys, err = flash.NewSystem(sysOpts...)
		if err != nil {
			fatal(err)
		}
	}
	// The interrupt context governs both the replay loop and the live
	// server below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *replay != "" {
		msgs, err := wire.LoadSnapshot(*replay)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		n := 0
		for _, m := range msgs {
			results, err := sys.FeedContext(ctx, m)
			if err != nil {
				fatal(err)
			}
			for _, r := range results {
				fmt.Println(r)
				n++
			}
		}
		fmt.Printf("flashd: one-shot verification of %d device FIBs: %d results in %s\n",
			len(msgs), n, time.Since(start).Round(time.Millisecond))
		return
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srvOpts := []flash.ServeOption{
		flash.WithQuarantineTTL(*quarantine),
		flash.WithAgentReadTimeout(*agentTimeout),
		flash.WithAckWindow(*ackWindow),
		flash.WithAcceptBackoff(*acceptBackoff),
	}
	if *ckptDir != "" {
		// Durable acks tie the agents' replay buffers to the checkpoint
		// floor; restored stream floors resume reconnecting agents from
		// the checkpointed sequence numbers.
		var streams map[string]uint64
		if restored != nil {
			streams = restored.Streams
		}
		srvOpts = append(srvOpts, flash.WithDurableSessions(streams))
	}
	srv := flash.NewServer(l, sys, func(r flash.Result) {
		fmt.Println(r)
	}, srvOpts...)
	// Quarantined devices appear on /metrics (serve/quarantined and
	// serve/quarantines_total) and reconnects under wire/reconnects;
	// /healthz reports "degraded" while any device or subspace is
	// quarantined.
	fmt.Printf("flashd: verifying %d checks on %q (%d nodes, %d subspaces) at %s\n",
		len(checks), *topoSpec, g.N(), max(1, *subspaces), l.Addr())

	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal(err)
		}
		adminOpts := []flash.AdminOption{
			flash.WithAdminMetrics(reg),
			flash.WithAdminSystem(sys),
			flash.WithAdminHealth(sys.Health, srv.Health),
		}
		if *ckptDir != "" {
			dir := *ckptDir
			adminOpts = append(adminOpts,
				flash.WithAdminCheckpoint(func() (flash.CheckpointInfo, error) { return srv.Checkpoint(dir) }),
				flash.WithAdminRestoring(srv.RestoreProgress),
			)
		}
		adminSrv = &http.Server{Handler: flash.NewAdminHandler(adminOpts...)}
		fmt.Printf("flashd: admin endpoint (/v1 management API, /metrics, /healthz, /debug/pprof/) at %s\n", al.Addr())
		go func() {
			if err := adminSrv.Serve(al); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("flashd: admin: %v", err)
			}
		}()
	}

	// Background checkpoint writer: periodic capture-and-commit, with
	// pruning so the directory holds a bounded history plus no leftover
	// temp files. POST /v1/checkpoint triggers the same path on demand.
	if *ckptDir != "" && *ckptInterval > 0 {
		go func() {
			t := time.NewTicker(*ckptInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					info, cerr := srv.Checkpoint(*ckptDir)
					if cerr != nil {
						logger.Printf("flashd: checkpoint: %v", cerr)
						continue
					}
					logger.Printf("flashd: checkpoint %s (%d bytes, %d subspaces) in %s",
						info.Path, info.Bytes, info.Subspaces, info.Took.Round(time.Millisecond))
					if perr := flash.PruneCheckpoints(*ckptDir, *ckptKeep); perr != nil {
						logger.Printf("flashd: checkpoint prune: %v", perr)
					}
				}
			}
		}()
	}

	// Serve until interrupted; the context tears the server down
	// gracefully (listener closed, connections drained).
	err = srv.ServeContext(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("flashd: shutting down")
		err = nil
	}
	if adminSrv != nil {
		adminSrv.Shutdown(context.Background())
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

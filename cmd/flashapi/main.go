// Command flashapi extracts the exported API surface of the root flash
// package and diffs it against a committed golden file, so accidental
// breaking changes (a removed method, a changed signature, a renamed
// field) fail `make apicheck` instead of reaching a release.
//
// Usage:
//
//	flashapi -dir . -golden api/flash.txt          # verify
//	flashapi -dir . -golden api/flash.txt -write   # regenerate
//
// The surface format is one declaration per line, sorted, with bodies
// stripped — stable under reformatting and reordering of the source.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "package directory to extract the surface from")
		golden = flag.String("golden", "api/flash.txt", "committed golden surface file")
		write  = flag.Bool("write", false, "rewrite the golden file instead of diffing")
	)
	flag.Parse()

	got, err := Surface(*dir)
	if err != nil {
		fatal(err)
	}
	if *write {
		if err := os.WriteFile(*golden, []byte(got), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("flashapi: wrote %s\n", *golden)
		return
	}
	wantB, err := os.ReadFile(*golden)
	if err != nil {
		fatal(fmt.Errorf("flashapi: read golden (run with -write to create it): %w", err))
	}
	if d := Diff(string(wantB), got); d != "" {
		fmt.Fprintf(os.Stderr, "flashapi: exported API surface changed relative to %s:\n%s", *golden, d)
		fmt.Fprintf(os.Stderr, "\nIf the change is intentional, regenerate with:\n\tgo run ./cmd/flashapi -dir %s -golden %s -write\n", *dir, *golden)
		os.Exit(1)
	}
	fmt.Printf("flashapi: surface matches %s\n", *golden)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Surface renders the exported API of the package in dir as one sorted
// declaration per line. Bodies, comments, unexported declarations,
// unexported struct fields, and test files are all excluded, so the
// output is stable under any change that cannot break an external
// caller.
func Surface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var lines []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					out = append(out, typeLine(fset, s))
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					line := d.Tok.String() + " " + name.Name
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					} else if d.Tok == token.CONST && len(s.Values) > i {
						// Untyped constant: the value is the contract.
						line += " = " + render(fset, s.Values[i])
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// typeLine renders one exported type. Struct fields and interface
// methods that are unexported are elided but counted, so removing one
// still changes the surface line (it can break embedding and
// implementability).
func typeLine(fset *token.FileSet, s *ast.TypeSpec) string {
	eq := " "
	if s.Assign.IsValid() {
		eq = " = "
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		var fields []string
		hidden := 0
		for _, f := range t.Fields.List {
			if len(f.Names) == 0 { // embedded
				fields = append(fields, render(fset, f.Type))
				continue
			}
			var names []string
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n.Name)
				} else {
					hidden++
				}
			}
			if len(names) > 0 {
				fields = append(fields, strings.Join(names, ", ")+" "+render(fset, f.Type))
			}
		}
		body := strings.Join(fields, "; ")
		if hidden > 0 {
			body += fmt.Sprintf("; +%d unexported", hidden)
		}
		return "type " + s.Name.Name + eq + "struct { " + strings.TrimPrefix(body, "; ") + " }"
	case *ast.InterfaceType:
		var methods []string
		hidden := 0
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				methods = append(methods, render(fset, m.Type))
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					methods = append(methods, n.Name+render(fset, m.Type))
				} else {
					hidden++
				}
			}
		}
		body := strings.Join(methods, "; ")
		if hidden > 0 {
			body += fmt.Sprintf("; +%d unexported", hidden)
		}
		return "type " + s.Name.Name + eq + "interface { " + strings.TrimPrefix(body, "; ") + " }"
	default:
		return "type " + s.Name.Name + eq + render(fset, s.Type)
	}
}

// render prints a node with all whitespace collapsed to single spaces.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// Diff reports the line-level difference between the golden surface and
// the extracted one: "-" lines were removed or changed (breaking), "+"
// lines are new. Empty means identical.
func Diff(want, got string) string {
	wantSet := lineSet(want)
	gotSet := lineSet(got)
	var b strings.Builder
	for _, l := range sortedLines(want) {
		if !gotSet[l] {
			fmt.Fprintf(&b, "  - %s\n", l)
		}
	}
	for _, l := range sortedLines(got) {
		if !wantSet[l] {
			fmt.Fprintf(&b, "  + %s\n", l)
		}
	}
	return b.String()
}

func lineSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimSpace(l); l != "" {
			set[l] = true
		}
	}
	return set
}

func sortedLines(s string) []string {
	var out []string
	for l := range lineSet(s) {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

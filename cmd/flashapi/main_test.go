package main

import (
	"os"
	"strings"
	"testing"
)

// TestSurfaceMatchesGolden is the tier-1 enforcement of the committed
// API surface: any change to the root package's exported declarations
// must be accompanied by a regenerated api/flash.txt.
func TestSurfaceMatchesGolden(t *testing.T) {
	got, err := Surface("../..")
	if err != nil {
		t.Fatalf("extract surface: %v", err)
	}
	wantB, err := os.ReadFile("../../api/flash.txt")
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/flashapi -write)", err)
	}
	if d := Diff(string(wantB), got); d != "" {
		t.Errorf("exported API surface drifted from api/flash.txt:\n%s\nregenerate with: go run ./cmd/flashapi -write", d)
	}
}

// TestSurfaceStable checks the extraction is deterministic and includes
// the redesigned API's anchors.
func TestSurfaceStable(t *testing.T) {
	a, err := Surface("../..")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Surface("../..")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("surface extraction is not deterministic")
	}
	for _, want := range []string{
		"func (s *System) StatsSnapshot() StatsSnapshot",
		"func (s *System) Snapshot() (*Snapshot, error)",
		"func (s *System) SubscribeVerdicts(spec string, buffer int) *VerdictSub",
		"func NewAdminHandler(opts ...AdminOption) http.Handler",
		"type ServeOption interface {",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("surface is missing %q", want)
		}
	}
}

func TestDiff(t *testing.T) {
	want := "func A()\nfunc B()\n"
	got := "func A()\nfunc C()\n"
	d := Diff(want, got)
	if !strings.Contains(d, "- func B()") || !strings.Contains(d, "+ func C()") {
		t.Fatalf("diff missed a change:\n%s", d)
	}
	if Diff(want, want) != "" {
		t.Fatal("identical surfaces reported a diff")
	}
}

// Command flashcoord runs a sharded Flash verification deployment: a
// coordinator that partitions the subspace set across N verifier
// replicas, routes the agents' epoch-tagged update stream to the
// owning shards, aggregates per-shard verdicts and fingerprints into
// one epoch-consistent answer, and rebalances a shard when its replica
// dies. Device agents connect to -listen exactly as they would to a
// single flashd.
//
// Two placement modes:
//
//	-shards N            N in-process shard replicas (one subset System
//	                     each) — sharded verification in one process.
//	-shard set=addr      one shard per flag, owning the comma-separated
//	                     global subspace indices, served by the flashd
//	                     replica at addr (started with the matching
//	                     -subspaces and -subspace-set). Repeatable.
//
// Example — two in-process shards over four subspaces on Internet2:
//
//	flashcoord -listen :7001 -topo internet2 -layout dst:16 \
//	    -subspaces 4 -shards 2 -loops
//
// The same split across two flashd replicas:
//
//	flashd -listen :7101 -subspaces 4 -subspace-set 0,1 -loops
//	flashd -listen :7102 -subspaces 4 -subspace-set 2,3 -loops
//	flashcoord -listen :7001 -subspaces 4 -loops \
//	    -shard 0,1=127.0.0.1:7101 -shard 2,3=127.0.0.1:7102
//
// GET /v1/shards on the admin endpoint reports placement, health, log
// lag and rebalance counts per shard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	flash "repro"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/wire"
)

type reachFlags []flash.CheckSpec

func (r *reachFlags) String() string { return fmt.Sprintf("%d checks", len(*r)) }

func (r *reachFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 4 {
		return fmt.Errorf("want name:expr:src1,src2:dest, got %q", v)
	}
	*r = append(*r, flash.CheckSpec{
		Name:    parts[0],
		Kind:    flash.CheckReach,
		Expr:    parts[1],
		Sources: strings.Split(parts[2], ","),
		Dest:    parts[3],
	})
	return nil
}

// shardFlag is one -shard set=addr placement.
type shardFlag struct {
	set  []int
	addr string
}

type shardFlags []shardFlag

func (s *shardFlags) String() string { return fmt.Sprintf("%d shards", len(*s)) }

func (s *shardFlags) Set(v string) error {
	eq := strings.IndexByte(v, '=')
	if eq < 0 {
		return fmt.Errorf("want subspaces=addr (e.g. 0,1=host:7001), got %q", v)
	}
	set, err := parseIntSet(v[:eq])
	if err != nil {
		return fmt.Errorf("-shard %q: %v", v, err)
	}
	addr := v[eq+1:]
	if addr == "" {
		return fmt.Errorf("-shard %q: empty replica address", v)
	}
	*s = append(*s, shardFlag{set: set, addr: addr})
	return nil
}

func parseIntSet(spec string) ([]int, error) {
	var set []int
	for _, part := range strings.Split(spec, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		set = append(set, i)
	}
	return set, nil
}

func main() {
	var (
		listen     = flag.String("listen", ":7001", "address to accept agent connections on")
		admin      = flag.String("admin", ":7072", "admin HTTP address for /v1/shards, /metrics, /healthz ('' disables)")
		topoSpec   = flag.String("topo", "internet2", "topology (internet2|stanford|airtel|fabric:p,t,a,s)")
		layoutSpec = flag.String("layout", "dst:16", "header layout (name:bits,...)")
		loops      = flag.Bool("loops", true, "verify loop freedom")
		subspaces  = flag.Int("subspaces", 4, "global subspace partition count (power of two)")
		nshards    = flag.Int("shards", 0, "in-process shard replica count (ignored when -shard flags are given)")
		workers    = flag.Int("workers", 0, "scheduler workers per in-process replica (0 = GOMAXPROCS)")
		batchN     = flag.Int("batch", 1, "max native updates coalesced into one Fast IMT pass")
		memBudget  = flag.Int("memory-budget", 0, "max live BDD nodes per subspace worker before automatic GC")
		replay     = flag.String("replay", "", "one-shot mode: verify a snapshot file through the shards and exit")
		ckptDir    = flag.String("checkpoint-dir", "", "per-shard checkpoint directory for in-process shards ('' disables)")
		healthSec  = flag.Duration("health-interval", 5*time.Second, "period of the proactive shard health probe (0 = reactive only)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "per-shard drain deadline before a replica is declared dead")
	)
	var reaches reachFlags
	flag.Var(&reaches, "reach", "reachability check name:expr:sources:dest (repeatable)")
	var remotes shardFlags
	flag.Var(&remotes, "shard", "remote shard placement subspaces=addr (repeatable; e.g. 0,1=host:7001)")
	flag.Parse()

	g, err := cli.ParseTopo(*topoSpec)
	if err != nil {
		fatal(err)
	}
	layout, err := cli.ParseLayout(*layoutSpec)
	if err != nil {
		fatal(err)
	}
	checks := []flash.CheckSpec(reaches)
	if *loops {
		checks = append(checks, flash.CheckSpec{Name: "loop-freedom", Kind: flash.CheckLoopFree})
	}
	if len(checks) == 0 {
		fatal(fmt.Errorf("flashcoord: no checks configured"))
	}

	reg := obs.NewRegistry("flashcoord")
	logger := log.New(os.Stderr, "", log.LstdFlags)

	cfg := shard.Config{
		Subspaces:    *subspaces,
		Field:        "dst",
		FieldBits:    layout.FieldBits("dst"),
		OnResult:     func(r flash.Result) { fmt.Println(r) },
		DrainTimeout: *drainTO,
		Metrics:      reg,
		Logger:       logger,
	}
	mode := ""
	switch {
	case len(remotes) > 0:
		mode = fmt.Sprintf("%d flashd replicas", len(remotes))
		for _, r := range remotes {
			cfg.Sets = append(cfg.Sets, r.set)
		}
		addrs := remotes
		cfg.Factory = shard.RemoteFactory(func(a shard.Assignment) (shard.RemoteTarget, error) {
			// Initial and replacement placements both dial the shard's
			// configured replica: operators restart a dead flashd in
			// place, and the coordinator's replay rebuilds its state.
			return shard.RemoteTarget{Addr: addrs[a.Shard].addr}, nil
		}, wire.ClientOptions{
			Stream:     "flashcoord",
			Reconnect:  true,
			BackoffMin: 50 * time.Millisecond,
			BackoffMax: 2 * time.Second,
			Heartbeat:  5 * time.Second,
			Logf:       logger.Printf,
		})
	default:
		n := *nshards
		if n < 1 {
			n = 1
		}
		mode = fmt.Sprintf("%d in-process replicas", n)
		cfg.Sets = shard.Partition(*subspaces, n)
		cfg.Factory = shard.LocalFactory(
			flash.WithTopo(g),
			flash.WithLayout(layout),
			flash.WithSubspaces(*subspaces, ""),
			flash.WithWorkers(*workers),
			flash.WithBatch(*batchN),
			flash.WithMemoryBudget(*memBudget),
			flash.WithChecks(checks...),
			flash.WithLogger(logger),
		)
	}

	coord, err := shard.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *replay != "" {
		msgs, err := wire.LoadSnapshot(*replay)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for _, m := range msgs {
			if _, err := coord.FeedContext(ctx, m); err != nil {
				fatal(err)
			}
		}
		if err := coord.Drain(ctx); err != nil {
			fatal(err)
		}
		fmt.Printf("flashcoord: one-shot verification of %d device FIBs across %s in %s\n",
			len(msgs), mode, time.Since(start).Round(time.Millisecond))
		return
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := wire.NewServer(l, func(m wire.Msg) error {
		_, err := coord.FeedContext(ctx, m)
		return err
	}, wire.WithServerLog(logger.Printf))
	srv.Instrument(reg.Sub("wire"))
	fmt.Printf("flashcoord: verifying %d checks on %q (%d nodes, %d subspaces, %s) at %s\n",
		len(checks), *topoSpec, g.N(), *subspaces, mode, l.Addr())

	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal(err)
		}
		adminOpts := []flash.AdminOption{
			flash.WithAdminMetrics(reg),
			flash.WithAdminShards(func() any { return coord.Status() }),
			flash.WithAdminHealth(func() flash.Health {
				var h flash.Health
				for _, s := range coord.Status().Shards {
					if !s.Healthy {
						h.Degraded = true
						h.Reasons = append(h.Reasons, fmt.Sprintf("shard %d replica unhealthy (lag %d)", s.ID, s.Lag))
					}
				}
				return h
			}),
		}
		if *ckptDir != "" {
			dir := *ckptDir
			adminOpts = append(adminOpts, flash.WithAdminCheckpoint(func() (flash.CheckpointInfo, error) {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return flash.CheckpointInfo{}, err
				}
				start := time.Now()
				if err := coord.Checkpoint(dir); err != nil {
					return flash.CheckpointInfo{}, err
				}
				return flash.CheckpointInfo{Path: dir, Subspaces: *subspaces, Took: time.Since(start)}, nil
			}))
		}
		adminSrv = &http.Server{Handler: flash.NewAdminHandler(adminOpts...)}
		fmt.Printf("flashcoord: admin endpoint (/v1/shards, /metrics, /healthz) at %s\n", al.Addr())
		go func() {
			if err := adminSrv.Serve(al); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("flashcoord: admin: %v", err)
			}
		}()
	}

	// Proactive health probe: a replica that died silently (no inbound
	// traffic to trip on) is detected and rebalanced on this timer.
	if *healthSec > 0 {
		go func() {
			t := time.NewTicker(*healthSec)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := coord.CheckHealth(ctx); err != nil {
						logger.Printf("flashcoord: health: %v", err)
					}
				}
			}
		}()
	}

	go func() {
		<-ctx.Done()
		l.Close()
		srv.Close()
	}()
	err = srv.Serve()
	if ctx.Err() != nil {
		fmt.Println("flashcoord: shutting down")
		err = nil
	}
	if adminSrv != nil {
		adminSrv.Shutdown(context.Background())
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command flashgen generates the paper's evaluation workloads and either
// summarizes them or streams them to a flashd server as a fleet of device
// agents (one TCP connection per device, one epoch-tagged message each).
//
// Examples:
//
//	flashgen -setting LNet-apsp -scale small            # print a summary
//	flashgen -setting I2-trace -addr localhost:7001     # stream to flashd
//	flashgen -setting I2-trace -addr localhost:7001 -dampen 2
//
// -dampen D delays the last D devices' messages to the end of the stream,
// reproducing the long-tail arrivals of §5.3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	flash "repro"
	"repro/internal/exps"
	"repro/internal/fib"
	"repro/internal/wire"
)

func main() {
	var (
		setting = flag.String("setting", "LNet-apsp", "workload setting (Table 2 name)")
		scale   = flag.String("scale", "small", "workload scale (tiny|small|medium|large)")
		addr    = flag.String("addr", "", "flashd address to stream to (empty = summarize only)")
		out     = flag.String("out", "", "write the FIBs as a snapshot file (for flashd -replay)")
		epoch   = flag.String("epoch", "epoch-0", "epoch tag for the streamed FIBs")
		dampen  = flag.Int("dampen", 0, "number of long-tail (last-arriving) devices")

		reconnect  = flag.Bool("reconnect", false, "agents reconnect with backoff and replay unacked messages")
		heartbeat  = flag.Duration("heartbeat", 0, "agent heartbeat interval (0 = off)")
		backoffMin = flag.Duration("backoff-min", 50*time.Millisecond, "min reconnect backoff")
		backoffMax = flag.Duration("backoff-max", 5*time.Second, "max reconnect backoff")
		drain      = flag.Duration("drain", 30*time.Second, "how long to wait for server acks before giving up")

		subscribe = flag.String("subscribe", "", "subscribe to verdict changes for this check spec ('*' = every spec)")
		watch     = flag.Duration("watch", 5*time.Second, "with -subscribe: how long to keep printing verdict events after streaming")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	w := exps.Build(exps.Setting(*setting), sc)
	fmt.Printf("%s: %d nodes, %d links, %d rules, %d prefixes\n",
		w.Name, w.Topo.N(), w.Topo.NumLinks(), w.NumRules(), len(w.Prefixes))

	if *out != "" {
		msgs := make([]wire.Msg, 0, len(w.Blocks))
		for _, b := range w.Blocks {
			m, err := wire.FromFib(b.Device, *epoch, b.Updates)
			if err != nil {
				fatal(err)
			}
			msgs = append(msgs, m)
		}
		if err := wire.SaveSnapshot(*out, msgs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d device FIBs to %s\n", len(msgs), *out)
		return
	}

	if *addr == "" {
		perDev := make(map[fib.DeviceID]int)
		for _, b := range w.Blocks {
			perDev[b.Device] = len(b.Updates)
		}
		min, max := 1<<30, 0
		for _, n := range perDev {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		fmt.Printf("per-device rules: min=%d max=%d\n", min, max)
		return
	}

	// With -subscribe, a dedicated watcher connection is established
	// before any FIB streams, so verdict changes caused by our own
	// stream are pushed to it as they settle.
	var watcher *wire.Agent
	if *subscribe != "" {
		spec := *subscribe
		if spec == "*" {
			spec = "" // empty spec subscribes to every check
		}
		var err error
		watcher, err = flash.DialAgent(*addr)
		if err != nil {
			fatal(err)
		}
		defer watcher.Close()
		if err := watcher.Subscribe(spec); err != nil {
			fatal(err)
		}
		go func() {
			for wev := range watcher.Verdicts() {
				ev := flash.VerdictFromWire(wev)
				state := ev.Verdict.String()
				if ev.Loop != flash.LoopUnknown {
					state = ev.Loop.String()
				}
				change := "flip"
				if ev.First {
					change = "first"
				}
				fmt.Printf("verdict #%d [%s] check %q subspace %d: %s (%s)\n",
					ev.Seq, ev.Epoch, ev.Spec, ev.Subspace, state, change)
			}
		}()
	}

	// Stream: one agent per device; dampened devices send last.
	blocks := w.Blocks
	n := len(blocks)
	if *dampen < 0 || *dampen >= n {
		fatal(fmt.Errorf("flashgen: dampen must be in [0,%d)", n))
	}
	send := func(b fib.Block) error {
		ag, err := flash.DialAgentOptions(*addr, flash.AgentOptions{
			Reconnect:  *reconnect,
			Heartbeat:  *heartbeat,
			BackoffMin: *backoffMin,
			BackoffMax: *backoffMax,
		})
		if err != nil {
			return err
		}
		defer ag.Close()
		m, err := wire.FromFib(b.Device, *epoch, b.Updates)
		if err != nil {
			return err
		}
		if err := ag.Send(m); err != nil {
			return err
		}
		// Wait for the server's ack so a close cannot race delivery (and,
		// with -reconnect, so replay after a fault completes).
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		return ag.WaitAcked(ctx)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	early := blocks[:n-*dampen]
	for _, b := range early {
		wg.Add(1)
		go func(b fib.Block) {
			defer wg.Done()
			errs <- send(b)
		}(b)
	}
	wg.Wait()
	for _, b := range blocks[n-*dampen:] {
		errs <- send(b)
	}
	close(errs)
	sent := 0
	for err := range errs {
		if err != nil {
			fatal(err)
		}
		sent++
	}
	fmt.Printf("streamed %d device FIBs to %s (epoch %s, %d dampened)\n",
		sent, *addr, *epoch, *dampen)
	if watcher != nil && *watch > 0 {
		fmt.Printf("watching verdict changes for %s (drops so far: %d)\n", *watch, watcher.VerdictDrops())
		time.Sleep(*watch)
	}
}

func parseScale(s string) (exps.Scale, error) {
	switch s {
	case "tiny":
		return exps.Tiny, nil
	case "small":
		return exps.Small, nil
	case "medium":
		return exps.Medium, nil
	case "large":
		return exps.Large, nil
	default:
		return 0, fmt.Errorf("flashgen: unknown scale %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command flashtrace answers "what happens to this packet?" against a
// FIB snapshot: it loads the snapshot into a Flash model, looks up the
// header's equivalence class, and walks the forwarding actions hop by
// hop from a chosen entry device.
//
// Example:
//
//	flashgen -setting I2-trace -out /tmp/i2.snap
//	flashtrace -snapshot /tmp/i2.snap -topo internet2 -layout dst:16 \
//	    -from seat -dst 0x2000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	flash "repro"
	"repro/internal/cli"
	"repro/internal/wire"
)

func main() {
	var (
		snapshot   = flag.String("snapshot", "", "snapshot file (from flashgen -out)")
		topoSpec   = flag.String("topo", "internet2", "topology (internet2|stanford|airtel|fabric:p,t,a,s)")
		layoutSpec = flag.String("layout", "dst:16", "header layout (name:bits,...)")
		from       = flag.String("from", "", "entry device name")
		dstFlag    = flag.String("dst", "", "destination field value (decimal or 0x hex)")
	)
	flag.Parse()
	if *snapshot == "" || *from == "" || *dstFlag == "" {
		fmt.Fprintln(os.Stderr, "flashtrace: -snapshot, -from and -dst are required")
		os.Exit(2)
	}
	g, err := cli.ParseTopo(*topoSpec)
	if err != nil {
		fatal(err)
	}
	layout, err := cli.ParseLayout(*layoutSpec)
	if err != nil {
		fatal(err)
	}
	start, ok := g.ByName(*from)
	if !ok {
		fatal(fmt.Errorf("flashtrace: unknown device %q", *from))
	}
	dst, err := strconv.ParseUint(strings.TrimPrefix(*dstFlag, "0x"), base(*dstFlag), 64)
	if err != nil {
		fatal(fmt.Errorf("flashtrace: bad -dst: %w", err))
	}

	msgs, err := wire.LoadSnapshot(*snapshot)
	if err != nil {
		fatal(err)
	}
	b := flash.NewModelBuilder(flash.Config{Topo: g, Layout: layout})
	for _, m := range msgs {
		if err := b.ApplyBlock([]flash.DeviceBlock{{Device: m.Device, Updates: m.Updates}}); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("model: %d equivalence classes from %d device FIBs\n", b.StatsSnapshot().ECs, len(msgs))

	header := []uint64{dst}
	if len(layout.Fields()) > 1 {
		// Zero the remaining fields; tracing is destination-driven.
		header = append(header, make([]uint64, len(layout.Fields())-1)...)
	}
	cur := start
	fmt.Printf("trace dst=%#x from %s:\n", dst, *from)
	for hop := 0; ; hop++ {
		if hop > g.N() {
			fmt.Println("  LOOP detected")
			os.Exit(1)
		}
		act, err := b.ActionAt(cur, header)
		if err != nil {
			fatal(err)
		}
		nh, fwd := act.NextHop()
		switch {
		case !fwd:
			fmt.Printf("  %s: %v\n", g.Node(cur).Name, act)
			return
		case int(nh) >= g.N():
			fmt.Printf("  %s: delivered (host port %d)\n", g.Node(cur).Name, nh)
			return
		default:
			fmt.Printf("  %s → %s\n", g.Node(cur).Name, g.Node(nh).Name)
			cur = nh
		}
	}
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command flashvet runs the flashvet analyzer suite (see
// repro/internal/analysis) over the module.
//
// It speaks two protocols:
//
//   - Standalone: `flashvet [flags] [importpath...]` loads packages from
//     source (offline, stdlib-only loader) and reports findings. With no
//     package arguments it checks every package in the module. `-std`
//     additionally shells out to the toolchain's `go vet` first, so one
//     command gates on both the standard passes and the custom suite.
//
//   - Vet tool: when invoked by `go vet -vettool=flashvet`, the
//     toolchain drives it per compilation unit. This follows the
//     cmd/vet action protocol: `-V=full` prints a content-addressed
//     version line for the build cache, `-flags` lists supported flags
//     as JSON, and a single `<unit>.cfg` argument requests a check of
//     one unit described by the JSON config (sources plus compiled
//     export data for every import). Diagnostics go to stderr as
//     `file:line:col: message` and the exit status is 2 when any are
//     reported, matching x/tools' unitchecker.
//
// The vet-tool path analyzes test compilation units too (the standalone
// loader does not), so `make lint` uses the vet-tool form.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flashvet: ")

	// go vet action protocol: a single *.cfg argument names a unit.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		unitcheck(os.Args[1])
		return
	}
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No analyzer flags are exposed through `go vet -<flag>`.
			fmt.Println("[]")
			return
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// printVersion emits the content-addressed version line `go vet` uses
// to key its build cache (the same shape x/tools' unitchecker prints).
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)))
}

// vetConfig is the JSON unit description `go vet` hands the tool
// (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit under the go vet protocol.
//
//flashvet:allow nodeprecated — importer.ForCompiler's deprecation concerns a nil lookup; ours is always non-nil (the PackageFile map)
func unitcheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgPath, err)
	}

	// go vet requires the facts file to exist for caching even when the
	// unit fails to typecheck; seed it empty, overwrite after analysis.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}

	bail := func(err error) {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			bail(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the toolchain's compiled export data:
	// source import path -> canonical path (ImportMap) -> .a/.x file
	// (PackageFile), decoded by the gc importer.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		bail(err)
	}

	pkg := &load.Package{
		Path:  cfg.ImportPath,
		Name:  tpkg.Name(),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}

	// Facts flow through the driver: each dependency's vetx file (written
	// by an earlier invocation of this same tool) is decoded into one
	// FactSet, the unit's own analysis adds to it, and the result is
	// re-encoded for this unit's dependents.
	facts := framework.NewFactSet(analysis.All())
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for _, file := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, file)
	}
	sort.Strings(vetxPaths)
	for _, file := range vetxPaths {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue // missing or fact-free dependency
		}
		if err := facts.Decode(data); err != nil {
			log.Fatalf("decoding facts %s: %v", file, err)
		}
	}

	all, err := analysis.CheckFacts(pkg, analysis.All(), facts)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.VetxOutput != "" {
		data, err := facts.Encode()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, no diagnostics wanted
	}
	exit := 0
	for _, f := range all {
		if f.Suppressed {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
		exit = 2
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// jsonFinding is one diagnostic in `flashvet -json` output.
type jsonFinding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// jsonAllow is one //flashvet:allow directive in `flashvet -allows -json`
// output.
type jsonAllow struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Analyzers     []string `json:"analyzers"`
	Justification string   `json:"justification"`
}

// standalone checks packages loaded from source; returns the exit code.
func standalone(args []string) int {
	var (
		checks     string
		listAllows bool
		tags       string
		std        bool
		jsonOut    bool
	)
	fs := newFlagSet()
	fs.StringVar(&checks, "checks", "", "comma-separated analyzer names to run (default: all)")
	fs.BoolVar(&listAllows, "allows", false, "list //flashvet:allow directives instead of checking")
	fs.StringVar(&tags, "tags", "", "comma-separated extra build tags (e.g. flashcheck)")
	fs.BoolVar(&std, "std", false, "also run the toolchain's `go vet` over the module first")
	fs.BoolVar(&jsonOut, "json", false, "emit machine-readable JSON (diagnostics, or directives with -allows)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	moduleDir, err := findModuleDir()
	if err != nil {
		log.Print(err)
		return 1
	}

	exit := 0
	if std {
		cmd := exec.Command("go", "vet", "./...")
		cmd.Dir = moduleDir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			exit = 2
		}
	}

	analyzers := analysis.All()
	if checks != "" {
		var unknown []string
		analyzers, unknown = analysis.ByName(strings.Split(checks, ","))
		if len(unknown) > 0 {
			log.Printf("unknown analyzers: %s (have %s)", strings.Join(unknown, ", "), names(analysis.All()))
			return 1
		}
	}

	var buildTags []string
	if tags != "" {
		buildTags = strings.Split(tags, ",")
	}
	loader, err := load.New(load.Config{ModuleDir: moduleDir, BuildTags: buildTags})
	if err != nil {
		log.Print(err)
		return 1
	}

	paths := fs.Args()
	if len(paths) == 0 || (len(paths) == 1 && (paths[0] == "./..." || paths[0] == "all")) {
		paths, err = loader.ModulePackages()
		if err != nil {
			log.Print(err)
			return 1
		}
	}

	if listAllows {
		var allAllows []jsonAllow
		for _, path := range paths {
			pkg, err := loader.Load(path)
			if err != nil {
				log.Print(err)
				return 1
			}
			for _, a := range analysis.Allows(pkg) {
				if jsonOut {
					allAllows = append(allAllows, jsonAllow{
						File:          a.Pos.Filename,
						Line:          a.Pos.Line,
						Analyzers:     a.Analyzers,
						Justification: a.Comment,
					})
					continue
				}
				comment := a.Comment
				if comment == "" {
					comment = "(no justification)"
				}
				fmt.Printf("%s: allow %s: %s\n", a.Pos, strings.Join(a.Analyzers, ","), comment)
			}
		}
		if jsonOut {
			printJSON(allAllows)
		}
		return exit
	}

	// Cross-package facts need dependencies analyzed first: expand the
	// requested set with module-local imports, topologically sorted, and
	// thread one FactSet through every package. Findings are reported
	// only for the packages the user asked about.
	order, err := dependencyOrder(loader, paths)
	if err != nil {
		log.Print(err)
		return 1
	}
	requested := make(map[string]bool, len(paths))
	for _, p := range paths {
		requested[p] = true
	}
	facts := framework.NewFactSet(analyzers)
	var out []jsonFinding
	for _, path := range order {
		pkg, err := loader.Load(path)
		if err != nil {
			log.Print(err)
			return 1
		}
		findings, err := analysis.CheckFacts(pkg, analyzers, facts)
		if err != nil {
			log.Print(err)
			return 1
		}
		if !requested[path] {
			continue // dependency analyzed for its facts only
		}
		for _, f := range findings {
			if jsonOut {
				out = append(out, jsonFinding{
					File:          f.Pos.Filename,
					Line:          f.Pos.Line,
					Col:           f.Pos.Column,
					Analyzer:      f.Analyzer,
					Message:       f.Message,
					Suppressed:    f.Suppressed,
					Justification: f.Justification,
				})
			} else if !f.Suppressed {
				fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
			}
			if !f.Suppressed {
				exit = 2
			}
		}
	}
	if jsonOut {
		printJSON(out)
	}
	return exit
}

// printJSON writes v as indented JSON, normalizing nil slices to [].
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if rv := reflect.ValueOf(v); rv.Kind() == reflect.Slice && rv.IsNil() {
		fmt.Println("[]")
		return
	}
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// dependencyOrder returns roots plus their module-local transitive
// imports in dependencies-first order.
func dependencyOrder(loader *load.Loader, roots []string) ([]string, error) {
	modPath := loader.ModulePath()
	isLocal := func(p string) bool {
		return modPath != "" && (p == modPath || strings.HasPrefix(p, modPath+"/"))
	}
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int)
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		if state[path] != 0 {
			return nil // done, or a cycle the typechecker will report
		}
		state[path] = visiting
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		for _, imp := range pkg.Imports {
			if isLocal(imp) {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, root := range roots {
		if err := visit(root); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("flashvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: flashvet [flags] [importpath...]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "\nanalyzers:")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	return fs
}

func names(as []*framework.Analyzer) string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return strings.Join(out, ", ")
}

// findModuleDir ascends from the working directory to the enclosing
// go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command flashvet runs the flashvet analyzer suite (see
// repro/internal/analysis) over the module.
//
// It speaks two protocols:
//
//   - Standalone: `flashvet [flags] [importpath...]` loads packages from
//     source (offline, stdlib-only loader) and reports findings. With no
//     package arguments it checks every package in the module. `-std`
//     additionally shells out to the toolchain's `go vet` first, so one
//     command gates on both the standard passes and the custom suite.
//
//   - Vet tool: when invoked by `go vet -vettool=flashvet`, the
//     toolchain drives it per compilation unit. This follows the
//     cmd/vet action protocol: `-V=full` prints a content-addressed
//     version line for the build cache, `-flags` lists supported flags
//     as JSON, and a single `<unit>.cfg` argument requests a check of
//     one unit described by the JSON config (sources plus compiled
//     export data for every import). Diagnostics go to stderr as
//     `file:line:col: message` and the exit status is 2 when any are
//     reported, matching x/tools' unitchecker.
//
// The vet-tool path analyzes test compilation units too (the standalone
// loader does not), so `make lint` uses the vet-tool form.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flashvet: ")

	// go vet action protocol: a single *.cfg argument names a unit.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		unitcheck(os.Args[1])
		return
	}
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No analyzer flags are exposed through `go vet -<flag>`.
			fmt.Println("[]")
			return
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// printVersion emits the content-addressed version line `go vet` uses
// to key its build cache (the same shape x/tools' unitchecker prints).
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)))
}

// vetConfig is the JSON unit description `go vet` hands the tool
// (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit under the go vet protocol.
func unitcheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgPath, err)
	}

	// The suite is fact-free, but the driver requires the facts file to
	// exist for caching; write it before any early exit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, no diagnostics wanted
	}

	bail := func(err error) {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			bail(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the toolchain's compiled export data:
	// source import path -> canonical path (ImportMap) -> .a/.x file
	// (PackageFile), decoded by the gc importer.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		bail(err)
	}

	pkg := &load.Package{
		Path:  cfg.ImportPath,
		Name:  tpkg.Name(),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	findings, err := analysis.Check(pkg, analysis.All())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// standalone checks packages loaded from source; returns the exit code.
func standalone(args []string) int {
	var (
		checks     string
		listAllows bool
		tags       string
		std        bool
	)
	fs := newFlagSet()
	fs.StringVar(&checks, "checks", "", "comma-separated analyzer names to run (default: all)")
	fs.BoolVar(&listAllows, "allows", false, "list //flashvet:allow directives instead of checking")
	fs.StringVar(&tags, "tags", "", "comma-separated extra build tags (e.g. flashcheck)")
	fs.BoolVar(&std, "std", false, "also run the toolchain's `go vet` over the module first")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	moduleDir, err := findModuleDir()
	if err != nil {
		log.Print(err)
		return 1
	}

	exit := 0
	if std {
		cmd := exec.Command("go", "vet", "./...")
		cmd.Dir = moduleDir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			exit = 2
		}
	}

	analyzers := analysis.All()
	if checks != "" {
		var unknown []string
		analyzers, unknown = analysis.ByName(strings.Split(checks, ","))
		if len(unknown) > 0 {
			log.Printf("unknown analyzers: %s (have %s)", strings.Join(unknown, ", "), names(analysis.All()))
			return 1
		}
	}

	var buildTags []string
	if tags != "" {
		buildTags = strings.Split(tags, ",")
	}
	loader, err := load.New(load.Config{ModuleDir: moduleDir, BuildTags: buildTags})
	if err != nil {
		log.Print(err)
		return 1
	}

	paths := fs.Args()
	if len(paths) == 0 || (len(paths) == 1 && (paths[0] == "./..." || paths[0] == "all")) {
		paths, err = loader.ModulePackages()
		if err != nil {
			log.Print(err)
			return 1
		}
	}

	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			log.Print(err)
			return 1
		}
		if listAllows {
			for _, a := range analysis.Allows(pkg) {
				comment := a.Comment
				if comment == "" {
					comment = "(no justification)"
				}
				fmt.Printf("%s: allow %s: %s\n", a.Pos, strings.Join(a.Analyzers, ","), comment)
			}
			continue
		}
		findings, err := analysis.Check(pkg, analyzers)
		if err != nil {
			log.Print(err)
			return 1
		}
		for _, f := range findings {
			fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
			exit = 2
		}
	}
	return exit
}

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("flashvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: flashvet [flags] [importpath...]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "\nanalyzers:")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	return fs
}

func names(as []*framework.Analyzer) string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return strings.Join(out, ", ")
}

// findModuleDir ascends from the working directory to the enclosing
// go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

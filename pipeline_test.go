package flash

import (
	"context"
	"testing"
	"time"
)

func newLoopSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Topo:   lineTopo(),
		Layout: dst8,
		Checks: []CheckSpec{{Name: "loops", Kind: CheckLoopFree, ExitNodes: []string{"d"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPipelineDeliversResults(t *testing.T) {
	p := NewPipeline(newLoopSystem(t), 16)
	// b→c then c→b: a loop for the whole space.
	msgs := []Msg{
		{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Forward(2))}},
		{Device: 2, Epoch: "e1", Updates: []Update{wildcard(2, Forward(1))}},
	}
	for _, m := range msgs {
		if err := p.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case r := <-p.Results():
		if r.Loop != LoopFound {
			t.Fatalf("result %+v, want loop", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result from pipeline")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Channel closed after drain.
	if _, ok := <-p.Results(); ok {
		t.Fatal("results channel should be closed")
	}
	// Feeding after Close errors.
	if err := p.FeedContext(context.Background(), msgs[0]); err == nil {
		t.Fatal("Feed after Close accepted")
	}
}

func TestPipelinePropagatesErrors(t *testing.T) {
	p := NewPipeline(newLoopSystem(t), 4)
	// Duplicate rule insert on one device → verification error.
	bad := []Msg{
		{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Drop)}},
		{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Drop)}},
	}
	for _, m := range bad {
		_ = p.FeedContext(context.Background(), m)
	}
	if err := p.Close(); err == nil {
		t.Fatal("expected error from duplicate insert")
	}
}

func TestPipelineDrainsQueueOnClose(t *testing.T) {
	sys := newLoopSystem(t)
	p := NewPipeline(sys, 64)
	// Queue a full converged epoch quickly, then Close: all results must
	// still arrive before the channel closes.
	acts := []Action{Forward(1), Forward(2), Forward(3), Forward(DeviceID(4))}
	for d, a := range acts {
		if err := p.FeedContext(context.Background(), Msg{Device: DeviceID(d), Epoch: "e1",
			Updates: []Update{wildcard(int64(d+1), a)}}); err != nil {
			t.Fatal(err)
		}
	}
	go p.Close()
	var got []Result
	for r := range p.Results() {
		got = append(got, r)
	}
	if len(got) == 0 {
		t.Fatal("queued work lost on Close")
	}
	for _, r := range got {
		if r.Loop != LoopFree {
			t.Fatalf("unexpected result %+v", r)
		}
	}
}

package bdd

import (
	"math/rand"
	"strings"
	"testing"
)

// legacyPackedKey is the unique-table key computation this package
// shipped with: level<<48 | lo<<24 | hi. It is kept here only to pin
// down the collision the struct key fixed.
func legacyPackedKey(level int32, lo, hi Ref) uint64 {
	return uint64(level)<<48 | uint64(uint32(lo))<<24 | uint64(uint32(hi))
}

// TestUniqueKeyNoCollisionBeyond24Bits exercises the unique-table key
// function directly at child Refs ≥ 2^24. Under the legacy packing each
// pair below collapsed to one key (lo bled into the level bits, hi into
// the lo bits), so mk would have returned an unrelated node; the struct
// key must keep every pair distinct. The test fails if nodeKey is ever
// reverted to the packed form.
func TestUniqueKeyNoCollisionBeyond24Bits(t *testing.T) {
	const big = Ref(1 << 24)
	pairs := []struct {
		name           string
		aLevel, bLevel int32
		aLo, aHi       Ref
		bLo, bHi       Ref
	}{
		{"lo bleeds into level", 0, 1, big, 0, 0, 0},
		{"hi bleeds into lo", 0, 0, 0, big, 1, 0},
		{"both children bleed", 5, 5, big + 3, big + 7, 3, 7},
	}
	for _, p := range pairs {
		a := nodeKey(p.aLevel, p.aLo, p.aHi)
		b := nodeKey(p.bLevel, p.bLo, p.bHi)
		if a == b {
			t.Errorf("%s: nodeKey(%d,%d,%d) == nodeKey(%d,%d,%d); distinct nodes share a unique-table key",
				p.name, p.aLevel, p.aLo, p.aHi, p.bLevel, p.bLo, p.bHi)
		}
		if legacyPackedKey(p.aLevel, p.aLo, p.aHi) != legacyPackedKey(p.bLevel, p.bLo, p.bHi) {
			t.Errorf("%s: fixture stale — pair no longer collides under the legacy packing", p.name)
		}
	}
}

// gcFixture builds an engine with a set of kept predicates and a pile
// of garbage ones, returning the kept refs.
func gcFixture(t *testing.T, nvars int) (*Engine, []Ref) {
	t.Helper()
	e := New(nvars)
	rng := rand.New(rand.NewSource(0x9c))
	randPred := func() Ref {
		r := True
		for j := 0; j < 6; j++ {
			v := e.Var(rng.Intn(nvars))
			if rng.Intn(2) == 0 {
				v = e.Not(v)
			}
			if rng.Intn(2) == 0 {
				r = e.And(r, v)
			} else {
				r = e.Or(r, v)
			}
		}
		return r
	}
	var kept []Ref
	for i := 0; i < 8; i++ {
		kept = append(kept, randPred())
	}
	for i := 0; i < 200; i++ {
		randPred() // garbage: never referenced again
	}
	return e, kept
}

func sliceRoots(refs []Ref) func(yield func(Ref)) {
	return func(yield func(Ref)) {
		for _, r := range refs {
			yield(r)
		}
	}
}

func TestGCPreservesSemanticsAndCanonicity(t *testing.T) {
	const nvars = 12
	e, kept := gcFixture(t, nvars)

	// Record ground truth before collection: full truth tables are
	// cheap at 12 variables.
	truth := make([][]bool, len(kept))
	counts := make([]float64, len(kept))
	for i, r := range kept {
		counts[i] = e.SatCount(r)
		for a := 0; a < 1<<nvars; a++ {
			truth[i] = append(truth[i], e.Eval(r, bitsToAssignment(a, nvars)))
		}
	}

	before := e.NumNodes()
	remap, st := e.GC(sliceRoots(kept))
	if st.Before != before || st.After != e.NumNodes() || st.Reclaimed != before-e.NumNodes() {
		t.Fatalf("stats %+v inconsistent with node counts before=%d after=%d", st, before, e.NumNodes())
	}
	if st.Reclaimed <= 0 {
		t.Fatalf("no garbage reclaimed (before=%d after=%d); fixture broken", st.Before, st.After)
	}
	if e.GCRuns() != 1 || e.ReclaimedNodes() != uint64(st.Reclaimed) {
		t.Fatalf("counters runs=%d reclaimed=%d, want 1, %d", e.GCRuns(), e.ReclaimedNodes(), st.Reclaimed)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("post-GC invariants: %v", err)
	}

	for i := range kept {
		kept[i] = remap.Apply(kept[i])
	}
	for i, r := range kept {
		if got := e.SatCount(r); got != counts[i] {
			t.Fatalf("kept[%d]: SatCount %v after GC, want %v", i, got, counts[i])
		}
		for a := 0; a < 1<<nvars; a++ {
			if e.Eval(r, bitsToAssignment(a, nvars)) != truth[i][a] {
				t.Fatalf("kept[%d]: Eval diverges at assignment %#x after GC", i, a)
			}
		}
	}

	// Hash-consing canonicity must survive the collection: recomputing
	// a kept predicate from scratch must land on the identical Ref.
	if r := e.And(kept[0], kept[1]); r != e.And(kept[0], kept[1]) {
		t.Fatal("post-GC hash consing broken: identical conjunction minted two Refs")
	}

	// A second collection over the surviving roots reclaims at most the
	// nodes minted by the checks above and is the identity on kept refs.
	remap2, st2 := e.GC(sliceRoots(kept))
	if st2.Reclaimed < 0 {
		t.Fatalf("second GC stats %+v", st2)
	}
	for i, r := range kept {
		if nr := remap2.Apply(r); nr < 0 || int(nr) >= e.NumNodes() {
			t.Fatalf("kept[%d] remapped out of range: %d", i, nr)
		}
	}
}

func bitsToAssignment(bits, nvars int) []bool {
	a := make([]bool, nvars)
	for i := 0; i < nvars; i++ {
		a[i] = bits&(1<<i) != 0
	}
	return a
}

func TestGCRemapApplyPanicsOnSweptRef(t *testing.T) {
	e := New(8)
	garbage := e.And(e.Var(0), e.Var(1))
	kept := e.Or(e.Var(2), e.Var(3))
	remap, _ := e.GC(sliceRoots([]Ref{kept}))
	if remap.Live(garbage) {
		t.Fatalf("garbage ref %d still live after GC", garbage)
	}
	if !remap.Live(kept) {
		t.Fatalf("kept root %d swept", kept)
	}
	mustPanic(t, "swept node", func() { remap.Apply(garbage) })
	mustPanic(t, "outside the pre-GC node range", func() { remap.Apply(Ref(len(remap) + 5)) })
}

func TestGCRootOutOfRangePanics(t *testing.T) {
	e := New(4)
	mustPanic(t, "outside the node range", func() {
		e.GC(sliceRoots([]Ref{Ref(9999)}))
	})
}

func TestGCKeepsTerminalsWithEmptyRoots(t *testing.T) {
	e := New(4)
	e.And(e.Var(0), e.Var(1))
	remap, st := e.GC(func(func(Ref)) {})
	if st.After != 2 || e.NumNodes() != 2 {
		t.Fatalf("After=%d NumNodes=%d, want 2 (terminals only)", st.After, e.NumNodes())
	}
	if remap.Apply(False) != False || remap.Apply(True) != True {
		t.Fatal("terminals must map to themselves")
	}
	// The engine is still usable after a full sweep.
	if r := e.And(e.Var(0), e.Var(1)); r == False || r == True {
		t.Fatalf("post-sweep And returned terminal %d", r)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCubeTooManyVarsPanics(t *testing.T) {
	e := New(100)
	vars := make([]int, 65)
	for i := range vars {
		vars[i] = i
	}
	mustPanic(t, "exceeds the 64-bit polarity mask", func() { e.Cube(vars, 0) })
	// 64 variables is the documented maximum and must keep working.
	if r := e.Cube(vars[:64], 0xdeadbeef); r == False {
		t.Fatal("64-var cube must be satisfiable")
	}
}

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v, want message containing %q", r, substr)
		}
	}()
	f()
}

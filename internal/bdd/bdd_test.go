package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	e := New(4)
	if e.And(True, True) != True {
		t.Error("True ∧ True != True")
	}
	if e.And(True, False) != False {
		t.Error("True ∧ False != False")
	}
	if e.Or(False, False) != False {
		t.Error("False ∨ False != False")
	}
	if e.Or(False, True) != True {
		t.Error("False ∨ True != True")
	}
	if e.Not(True) != False || e.Not(False) != True {
		t.Error("negation of terminals wrong")
	}
}

func TestVarBasics(t *testing.T) {
	e := New(3)
	x := e.Var(0)
	if e.And(x, e.Not(x)) != False {
		t.Error("x ∧ ¬x != False")
	}
	if e.Or(x, e.Not(x)) != True {
		t.Error("x ∨ ¬x != True")
	}
	if e.NVar(0) != e.Not(x) {
		t.Error("NVar(0) != Not(Var(0))")
	}
	// Canonicity: same expression built two ways yields same Ref.
	y := e.Var(1)
	a := e.And(x, y)
	b := e.And(y, x)
	if a != b {
		t.Error("And is not canonical/commutative at the Ref level")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	e := New(2)
	for _, f := range []func(){
		func() { e.Var(-1) },
		func() { e.Var(2) },
		func() { e.NVar(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range variable")
				}
			}()
			f()
		}()
	}
}

func TestNewPanicsOnBadVarCount(t *testing.T) {
	for _, n := range []int{0, -1, 1 << 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
}

// buildRandom constructs a random predicate over e's variables and a
// reference truth table evaluator function.
func buildRandom(e *Engine, rng *rand.Rand, depth int) Ref {
	if depth == 0 || rng.Intn(4) == 0 {
		v := rng.Intn(e.NumVars())
		if rng.Intn(2) == 0 {
			return e.Var(v)
		}
		return e.NVar(v)
	}
	a := buildRandom(e, rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return e.Not(a)
	case 1:
		return e.And(a, buildRandom(e, rng, depth-1))
	default:
		return e.Or(a, buildRandom(e, rng, depth-1))
	}
}

func allAssignments(nvars int) [][]bool {
	out := make([][]bool, 0, 1<<uint(nvars))
	for m := 0; m < 1<<uint(nvars); m++ {
		a := make([]bool, nvars)
		for i := 0; i < nvars; i++ {
			a[i] = m&(1<<uint(i)) != 0
		}
		out = append(out, a)
	}
	return out
}

func TestAlgebraPropertiesQuick(t *testing.T) {
	const nvars = 5
	e := New(nvars)
	asg := allAssignments(nvars)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := buildRandom(e, rng, 4)
		b := buildRandom(e, rng, 4)
		c := buildRandom(e, rng, 4)
		// De Morgan
		if e.Not(e.And(a, b)) != e.Or(e.Not(a), e.Not(b)) {
			return false
		}
		// Involution
		if e.Not(e.Not(a)) != a {
			return false
		}
		// Absorption
		if e.Or(a, e.And(a, b)) != a {
			return false
		}
		// Distribution
		if e.And(a, e.Or(b, c)) != e.Or(e.And(a, b), e.And(a, c)) {
			return false
		}
		// Diff definition
		if e.Diff(a, b) != e.And(a, e.Not(b)) {
			return false
		}
		// Xor via truth table on a few assignments
		x := e.Xor(a, b)
		for _, as := range asg {
			if e.Eval(x, as) != (e.Eval(a, as) != e.Eval(b, as)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvalMatchesSemantics(t *testing.T) {
	const nvars = 6
	e := New(nvars)
	rng := rand.New(rand.NewSource(42))
	asg := allAssignments(nvars)
	for trial := 0; trial < 40; trial++ {
		// Build the predicate and an equivalent closure in lockstep.
		var build func(depth int) (Ref, func([]bool) bool)
		build = func(depth int) (Ref, func([]bool) bool) {
			if depth == 0 || rng.Intn(4) == 0 {
				v := rng.Intn(nvars)
				if rng.Intn(2) == 0 {
					return e.Var(v), func(a []bool) bool { return a[v] }
				}
				return e.NVar(v), func(a []bool) bool { return !a[v] }
			}
			ra, fa := build(depth - 1)
			switch rng.Intn(3) {
			case 0:
				return e.Not(ra), func(a []bool) bool { return !fa(a) }
			case 1:
				rb, fb := build(depth - 1)
				return e.And(ra, rb), func(a []bool) bool { return fa(a) && fb(a) }
			default:
				rb, fb := build(depth - 1)
				return e.Or(ra, rb), func(a []bool) bool { return fa(a) || fb(a) }
			}
		}
		r, f := build(4)
		for _, a := range asg {
			if e.Eval(r, a) != f(a) {
				t.Fatalf("trial %d: Eval disagrees with semantics on %v", trial, a)
			}
		}
	}
}

func TestSatCount(t *testing.T) {
	e := New(4)
	if n := e.SatCount(True); n != 16 {
		t.Errorf("SatCount(True) = %v, want 16", n)
	}
	if n := e.SatCount(False); n != 0 {
		t.Errorf("SatCount(False) = %v, want 0", n)
	}
	x := e.Var(0)
	if n := e.SatCount(x); n != 8 {
		t.Errorf("SatCount(x0) = %v, want 8", n)
	}
	xy := e.And(x, e.Var(3))
	if n := e.SatCount(xy); n != 4 {
		t.Errorf("SatCount(x0∧x3) = %v, want 4", n)
	}
}

func TestSatCountMatchesEnumeration(t *testing.T) {
	const nvars = 6
	e := New(nvars)
	rng := rand.New(rand.NewSource(7))
	asg := allAssignments(nvars)
	for trial := 0; trial < 30; trial++ {
		r := buildRandom(e, rng, 5)
		want := 0
		for _, a := range asg {
			if e.Eval(r, a) {
				want++
			}
		}
		if got := e.SatCount(r); got != float64(want) {
			t.Fatalf("trial %d: SatCount = %v, want %d", trial, got, want)
		}
	}
}

func TestAnySat(t *testing.T) {
	e := New(5)
	if e.AnySat(False) != nil {
		t.Error("AnySat(False) should be nil")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		r := buildRandom(e, rng, 5)
		a := e.AnySat(r)
		if r == False {
			if a != nil {
				t.Fatal("AnySat of empty predicate returned assignment")
			}
			continue
		}
		if a == nil || !e.Eval(r, a) {
			t.Fatalf("AnySat returned non-satisfying assignment %v", a)
		}
	}
}

func TestCube(t *testing.T) {
	e := New(8)
	// x1=1, x3=0, x5=1
	c := e.Cube([]int{1, 3, 5}, 0b101)
	want := e.AndN(e.Var(1), e.NVar(3), e.Var(5))
	if c != want {
		t.Errorf("Cube mismatch: got %d want %d", c, want)
	}
	if e.Cube(nil, 0) != True {
		t.Error("empty cube should be True")
	}
}

func TestCubePanicsOnUnsortedVars(t *testing.T) {
	e := New(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unsorted cube vars")
		}
	}()
	e.Cube([]int{2, 1}, 0)
}

func TestImpliesAndOverlaps(t *testing.T) {
	e := New(4)
	x, y := e.Var(0), e.Var(1)
	xy := e.And(x, y)
	if !e.Implies(xy, x) {
		t.Error("x∧y should imply x")
	}
	if e.Implies(x, xy) {
		t.Error("x should not imply x∧y")
	}
	if !e.Overlaps(x, y) {
		t.Error("x and y overlap")
	}
	if e.Overlaps(x, e.Not(x)) {
		t.Error("x and ¬x must not overlap")
	}
}

func TestOpsCounter(t *testing.T) {
	e := New(4)
	e.ResetOps()
	x, y := e.Var(0), e.Var(1)
	e.And(x, y) // 1
	e.Or(x, y)  // 1
	e.Not(x)    // 1
	e.Diff(x, y)
	// Diff counts 2 per doc comment.
	if got := e.Ops(); got != 5 {
		t.Errorf("Ops = %d, want 5", got)
	}
	e.ResetOps()
	if e.Ops() != 0 {
		t.Error("ResetOps did not zero the counter")
	}
}

func TestClearCacheKeepsRefsValid(t *testing.T) {
	e := New(6)
	rng := rand.New(rand.NewSource(3))
	r := buildRandom(e, rng, 6)
	before := e.SatCount(r)
	e.ClearCache()
	if e.SatCount(r) != before {
		t.Error("ClearCache invalidated an outstanding Ref")
	}
	// And the engine still computes correctly.
	if e.And(r, e.Not(r)) != False {
		t.Error("engine broken after ClearCache")
	}
}

func TestCanonicityUnderRandomEquivalences(t *testing.T) {
	// If two predicates are semantically equal, their Refs must be equal.
	const nvars = 5
	e := New(nvars)
	rng := rand.New(rand.NewSource(11))
	asg := allAssignments(nvars)
	refs := make(map[string]Ref)
	for trial := 0; trial < 120; trial++ {
		r := buildRandom(e, rng, 5)
		key := make([]byte, len(asg))
		for i, a := range asg {
			if e.Eval(r, a) {
				key[i] = 1
			}
		}
		k := string(key)
		if prev, ok := refs[k]; ok && prev != r {
			t.Fatalf("two semantically equal predicates have different Refs: %d vs %d", prev, r)
		}
		refs[k] = r
	}
}

func BenchmarkAnd(b *testing.B) {
	e := New(32)
	rng := rand.New(rand.NewSource(1))
	preds := make([]Ref, 64)
	for i := range preds {
		preds[i] = buildRandom(e, rng, 6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.And(preds[i%64], preds[(i+17)%64])
	}
}

func TestExists(t *testing.T) {
	e := New(4)
	x0, x1, x2 := e.Var(0), e.Var(1), e.Var(2)
	// ∃x1. (x0 ∧ x1) = x0
	if got := e.Exists(e.And(x0, x1), []int{1}); got != x0 {
		t.Errorf("∃x1.(x0∧x1) = %d, want x0", got)
	}
	// ∃x0. (x0 ∧ ¬x0) = False
	if got := e.Exists(e.And(x0, e.Not(x0)), []int{0}); got != False {
		t.Error("∃ of contradiction should be False")
	}
	// ∃x0,x1. (x0 ∧ x1 ∧ x2) = x2
	if got := e.Exists(e.AndN(x0, x1, x2), []int{0, 1}); got != x2 {
		t.Error("multi-var Exists wrong")
	}
	// No vars: identity.
	if e.Exists(x0, nil) != x0 {
		t.Error("Exists with no vars should be identity")
	}
	// Terminal inputs.
	if e.Exists(True, []int{0}) != True || e.Exists(False, []int{0}) != False {
		t.Error("Exists on terminals wrong")
	}
}

func TestExistsMatchesEnumeration(t *testing.T) {
	const nvars = 6
	e := New(nvars)
	rng := rand.New(rand.NewSource(13))
	asg := allAssignments(nvars)
	for trial := 0; trial < 60; trial++ {
		r := buildRandom(e, rng, 5)
		// Random strictly increasing var subset.
		var vars []int
		for v := 0; v < nvars; v++ {
			if rng.Intn(3) == 0 {
				vars = append(vars, v)
			}
		}
		q := e.Exists(r, vars)
		for _, a := range asg {
			// Reference semantics: any setting of vars satisfies r.
			want := false
			n := len(vars)
			for m := 0; m < 1<<uint(n) && !want; m++ {
				b := append([]bool(nil), a...)
				for i, v := range vars {
					b[v] = m&(1<<uint(i)) != 0
				}
				want = want || e.Eval(r, b)
			}
			if got := e.Eval(q, a); got != want {
				t.Fatalf("trial %d: Exists disagrees at %v (vars %v)", trial, a, vars)
			}
		}
	}
}

func TestExistsPanics(t *testing.T) {
	e := New(4)
	for name, f := range map[string]func(){
		"out of range": func() { e.Exists(True, []int{9}) },
		"unsorted":     func() { e.Exists(True, []int{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

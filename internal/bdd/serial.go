package bdd

import "fmt"

// ExportNodes dumps the decision nodes (everything past the two
// terminals) as flat (level, lo, hi) triples in store order. Because mk
// only ever allocates nodes whose children already exist, store order is
// children-before-parents, so the dump restores with one linear pass.
// The returned slice is a copy — a later GC compaction cannot mutate it.
// Exclusive-access only, like all structural methods.
func (e *Engine) ExportNodes() []int32 {
	n := int(e.nnodes.Load())
	out := make([]int32, 0, 3*(n-2))
	for i := 2; i < n; i++ {
		nd := e.node(Ref(i))
		out = append(out, nd.level, int32(nd.lo), int32(nd.hi))
	}
	return out
}

// NewFromNodes rebuilds an Engine from an ExportNodes dump. The dump is
// fully validated — this is the restore path for checkpoint files, which
// may be torn or hostile, so every structural invariant the engine
// relies on is checked rather than assumed:
//
//   - the dump length is a whole number of triples,
//   - levels lie in [0, nvars),
//   - children precede their parent (lo/hi < the node's own Ref),
//   - no redundant nodes (lo != hi),
//   - node levels strictly decrease toward the root (child level >
//     parent level, terminals sit at the sentinel level nvars),
//   - no duplicate (level, lo, hi) entries (hash consing would be
//     silently broken, violating "equal Refs ⇔ equivalent predicates").
//
// Because restore replays the exact node sequence the donor engine
// built, every Ref recorded elsewhere in a checkpoint stays valid
// against the rebuilt engine.
func NewFromNodes(nvars int, dump []int32) (*Engine, error) {
	if nvars <= 0 || nvars > 1<<15-1 {
		return nil, fmt.Errorf("bdd: restore: invalid variable count %d", nvars)
	}
	if len(dump)%3 != 0 {
		return nil, fmt.Errorf("bdd: restore: dump length %d is not a whole number of node triples", len(dump))
	}
	e := New(nvars)
	n := len(dump) / 3
	for i := 0; i < n; i++ {
		level, lo, hi := dump[3*i], Ref(dump[3*i+1]), Ref(dump[3*i+2])
		r := Ref(i + 2)
		if level < 0 || level >= int32(nvars) {
			return nil, fmt.Errorf("bdd: restore: node %d has level %d outside [0,%d)", r, level, nvars)
		}
		if lo < 0 || lo >= r || hi < 0 || hi >= r {
			return nil, fmt.Errorf("bdd: restore: node %d children (%d,%d) do not precede it", r, lo, hi)
		}
		if lo == hi {
			return nil, fmt.Errorf("bdd: restore: node %d is redundant (lo == hi == %d)", r, lo)
		}
		if e.node(lo).level <= level || e.node(hi).level <= level {
			return nil, fmt.Errorf("bdd: restore: node %d at level %d has a child at an equal or smaller level", r, level)
		}
		key := nodeKey(level, lo, hi)
		if _, dup := e.uniqueLookup(key); dup {
			return nil, fmt.Errorf("bdd: restore: duplicate node (%d,%d,%d) at ref %d breaks hash consing", level, lo, hi, r)
		}
		if got := e.alloc(node{level: level, lo: lo, hi: hi}); got != r {
			return nil, fmt.Errorf("bdd: restore: allocation drift (got ref %d, want %d)", got, r)
		}
		e.uniqueInsert(key, r)
	}
	return e, nil
}

// CheckRef reports whether r is a valid Ref in this engine (a terminal
// or an existing decision node). Restore paths use it to validate refs
// recorded in checkpoint sections against the rebuilt node store.
func (e *Engine) CheckRef(r Ref) bool {
	return r >= 0 && int64(r) < e.nnodes.Load()
}

package bdd

import "fmt"

// CheckInvariants verifies the engine's structural invariants: every
// nonterminal node is non-redundant (lo ≠ hi), respects the fixed
// variable order (children are terminals or test later variables), has
// in-range children, and the unique table hash-conses exactly the
// nonterminal nodes. A violation means canonicity is lost — predicate
// equality by Ref comparison (which the whole verifier relies on) is no
// longer sound.
//
// The walk is O(nodes); the flashcheck layer calls it after each applied
// update block. Exclusive-access only, like all structural methods.
func (e *Engine) CheckInvariants() error {
	n := int(e.nnodes.Load())
	for i := 2; i < n; i++ {
		nd := e.node(Ref(i))
		if nd.level < 0 || int(nd.level) >= e.nvars {
			return fmt.Errorf("bdd: node %d tests out-of-range variable %d (nvars=%d)", i, nd.level, e.nvars)
		}
		if nd.lo == nd.hi {
			return fmt.Errorf("bdd: node %d is redundant (lo == hi == %d); reduction broken", i, nd.lo)
		}
		for _, c := range [2]Ref{nd.lo, nd.hi} {
			if c < 0 || int(c) >= n {
				return fmt.Errorf("bdd: node %d has out-of-range child %d", i, c)
			}
			if c >= 2 && e.node(c).level <= nd.level {
				return fmt.Errorf("bdd: node %d (level %d) has child %d at level %d; variable order violated", i, nd.level, c, e.node(c).level)
			}
		}
	}
	if got := e.uniqueLen(); got != n-2 {
		return fmt.Errorf("bdd: unique table holds %d entries for %d nonterminal nodes; hash consing broken", got, n-2)
	}
	return nil
}

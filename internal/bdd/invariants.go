package bdd

import "fmt"

// CheckInvariants verifies the engine's structural invariants: every
// nonterminal node is non-redundant (lo ≠ hi), respects the fixed
// variable order (children are terminals or test later variables), has
// in-range children, and the unique table hash-conses exactly the
// nonterminal nodes. A violation means canonicity is lost — predicate
// equality by Ref comparison (which the whole verifier relies on) is no
// longer sound.
//
// The walk is O(nodes) and allocation-free; the flashcheck layer calls
// it after each applied update block.
func (e *Engine) CheckInvariants() error {
	for i := 2; i < len(e.nodes); i++ {
		n := e.nodes[i]
		if n.level < 0 || int(n.level) >= e.nvars {
			return fmt.Errorf("bdd: node %d tests out-of-range variable %d (nvars=%d)", i, n.level, e.nvars)
		}
		if n.lo == n.hi {
			return fmt.Errorf("bdd: node %d is redundant (lo == hi == %d); reduction broken", i, n.lo)
		}
		for _, c := range [2]Ref{n.lo, n.hi} {
			if c < 0 || int(c) >= len(e.nodes) {
				return fmt.Errorf("bdd: node %d has out-of-range child %d", i, c)
			}
			if c >= 2 && e.nodes[c].level <= n.level {
				return fmt.Errorf("bdd: node %d (level %d) has child %d at level %d; variable order violated", i, n.level, c, e.nodes[c].level)
			}
		}
	}
	if len(e.unique) != len(e.nodes)-2 {
		return fmt.Errorf("bdd: unique table holds %d entries for %d nonterminal nodes; hash consing broken", len(e.unique), len(e.nodes)-2)
	}
	return nil
}

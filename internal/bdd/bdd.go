// Package bdd implements a reduced ordered binary decision diagram (ROBDD)
// engine used as the predicate representation for header spaces.
//
// The paper's reference implementation uses the JDD library; Go has no
// mature BDD library, so this package provides one from scratch. It is a
// chunked-arena ROBDD with a sharded unique table (hash consing) and an
// ITE-based apply with a sharded computed cache. Because nodes are
// hash-consed, two predicates are logically equivalent if and only if
// their Refs are equal, which the inverse-model code relies on for O(1)
// predicate comparison (Reduce II in the paper aggregates overwrites by
// predicate).
//
// The engine counts "predicate operations" exactly as §3.3 of the paper
// defines them: one conjunction (∧), disjunction (∨) or negation (¬)
// invocation counts as one operation regardless of internal node visits.
// This makes the "# Predicate Operations" column of Table 3 reproducible.
//
// # Concurrency
//
// Node-creating operations (And, Or, Not, Diff, Xor, Implies, Overlaps,
// Cube, Var, Exists, ...) and read-only walks (Eval, AnySat, SatCount,
// NumNodes, CheckRef) are safe for concurrent use by multiple
// goroutines: the unique table and the ITE computed cache are sharded
// behind per-shard mutexes, node storage is a copy-on-grow chunk
// directory whose published chunks are immutable in location (reads are
// lock-free), and SetCacheLimit/eviction operate per shard so a
// concurrent resize can never tear the cache out from under a running
// ITE. This is what lets the work-stealing scheduler run parallel ITE
// against one subspace engine without convoying on a single lock.
//
// Structural operations — GC, ExportNodes, ClearCache applied at a
// quiescent point, and restore — still require exclusive access: they
// rewrite Refs or assume no mutation is in flight. Flash serializes them
// behind the owning worker's mutex, exactly where the old
// single-owner contract was enforced.
package bdd

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Ref is a reference to a BDD node. The terminals are the constants False
// and True; all other Refs index into the owning Engine's node store.
// The zero value is False, so zero-valued predicates are valid ("empty
// header space").
type Ref int32

// Terminal nodes. They are identical for every Engine.
const (
	False Ref = 0
	True  Ref = 1
)

// node is an internal decision node: if variable level is 0 take lo, else hi.
type node struct {
	level int32 // variable index; smaller level = closer to the root
	lo    Ref
	hi    Ref
}

// cacheKey identifies a memoized ITE computation.
type cacheKey struct {
	f, g, h Ref
}

// uniqueKey identifies a decision node (level, lo, hi) in the unique
// table. A struct key is collision-proof for the full Ref range; the
// earlier packed form (level<<48 | lo<<24 | hi) silently collided once
// any child Ref reached 2^24, letting lo bleed into the level bits and
// hi into the lo bits — mk would then return a Ref for an unrelated
// node, breaking the "equal Refs ⇔ equivalent predicates" invariant.
type uniqueKey struct {
	level int32
	lo    Ref
	hi    Ref
}

// nodeKey builds the unique-table key for the node (level, lo, hi).
// All unique-table lookups and insertions must go through this single
// function so the regression tests can exercise it directly.
func nodeKey(level int32, lo, hi Ref) uniqueKey {
	return uniqueKey{level: level, lo: lo, hi: hi}
}

// Sharding and arena geometry. 64 shards keeps lock contention off the
// profile at any worker count this project runs (the scheduler caps
// workers at GOMAXPROCS), and 8192-node chunks (96 KB) amortize the
// directory indirection while keeping growth increments small.
const (
	shardBits = 6
	nShards   = 1 << shardBits

	chunkBits = 13
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// chunk is one fixed-size block of the node arena. Once a chunk is
// published in the directory it is never moved or freed until a
// structural operation (GC, restore) replaces the whole directory, so a
// lock-free reader holding any Ref published to it can dereference
// without synchronization beyond the publication that handed it the Ref.
type chunk [chunkSize]node

// uniqueShard is one bucket of the hash-sharded unique table. mk
// serializes same-shard node creation through the shard mutex; creation
// in distinct shards proceeds in parallel.
type uniqueShard struct {
	mu sync.Mutex
	m  map[uniqueKey]Ref
	_  [24]byte // pad to its own cache line neighborhood
}

// cacheShard is one bucket of the sharded ITE computed cache. Eviction
// is per shard, so a cap resize never stalls (or races) every in-flight
// ITE at once.
type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]Ref
	_  [24]byte
}

func shardOfUnique(k uniqueKey) uint32 {
	h := uint64(uint32(k.level))*0x9E3779B97F4A7C15 ^
		uint64(uint32(k.lo))*0xBF58476D1CE4E5B9 ^
		uint64(uint32(k.hi))*0x94D049BB133111EB
	return uint32(h>>32) & (nShards - 1)
}

func shardOfCache(k cacheKey) uint32 {
	h := uint64(uint32(k.f))*0x9E3779B97F4A7C15 ^
		uint64(uint32(k.g))*0xBF58476D1CE4E5B9 ^
		uint64(uint32(k.h))*0x94D049BB133111EB
	return uint32(h>>32) & (nShards - 1)
}

// DefaultCacheLimit bounds the ITE computed cache of a new Engine, in
// entries. One entry is ~28 bytes of map payload, so the default caps a
// single engine's cache around 30 MB; engines are per subspace worker,
// so total cache memory scales with the subspace count, not the
// workload. SetCacheLimit overrides it per engine.
const DefaultCacheLimit = 1 << 20

// Engine owns a universe of BDD nodes over a fixed number of Boolean
// variables. Variable i is tested before variable j whenever i < j.
type Engine struct {
	nvars      int
	nnodes     atomic.Int64             // allocated node count (next free arena slot)
	chunks     atomic.Pointer[[]*chunk] // copy-on-grow chunk directory
	growMu     sync.Mutex               // serializes directory growth
	unique     [nShards]uniqueShard     // hash-sharded unique table
	cache      [nShards]cacheShard      // hash-sharded ITE computed cache
	cacheLimit atomic.Int64             // max computed-cache entries; <= 0 means unbounded

	ops atomic.Uint64 // user-level predicate operations (∧, ∨, ¬)

	cacheHits      atomic.Uint64 // ITE computed-cache hits
	cacheMisses    atomic.Uint64 // ITE computed-cache misses (recursive computations)
	cacheEvictions atomic.Uint64 // computed-cache shard resets forced by the size cap
	gcRuns         atomic.Uint64 // completed GC passes
	gcReclaimed    atomic.Uint64 // nodes swept across all GC passes
}

// New returns an Engine over nvars Boolean variables. nvars must be
// positive and at most 32767 so that levels fit the node encoding.
func New(nvars int) *Engine {
	if nvars <= 0 || nvars > 1<<15-1 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", nvars))
	}
	e := &Engine{nvars: nvars}
	e.cacheLimit.Store(DefaultCacheLimit)
	dir := []*chunk{new(chunk)}
	e.chunks.Store(&dir)
	// Terminals occupy slots 0 and 1 with a sentinel level below all
	// variables so cofactor logic never descends into them.
	dir[0][False] = node{level: int32(nvars), lo: False, hi: False}
	dir[0][True] = node{level: int32(nvars), lo: True, hi: True}
	e.nnodes.Store(2)
	for i := range e.unique {
		e.unique[i].m = make(map[uniqueKey]Ref, 16)
	}
	for i := range e.cache {
		e.cache[i].m = make(map[cacheKey]Ref, 16)
	}
	return e
}

// node returns the arena entry for r. Lock-free: any code path that can
// legitimately hold r observed it through a synchronization point that
// happens-after the node (and its whole subgraph) was written.
func (e *Engine) node(r Ref) node {
	dir := *e.chunks.Load()
	return dir[r>>chunkBits][r&chunkMask]
}

// setNode overwrites arena slot i. Structural-only (GC compaction,
// restore); callers hold exclusive access.
func (e *Engine) setNode(i Ref, nd node) {
	dir := *e.chunks.Load()
	dir[i>>chunkBits][i&chunkMask] = nd
}

// ensure grows the chunk directory to cover arena index idx. The
// directory is copy-on-grow: readers loaded an older (shorter) directory
// only ever dereference chunks that directory already contains, because
// a Ref into a newer chunk can only reach them through a synchronization
// point that happens-after the grow.
func (e *Engine) ensure(idx int64) {
	ci := int(idx >> chunkBits)
	if ci < len(*e.chunks.Load()) {
		return
	}
	e.growMu.Lock()
	defer e.growMu.Unlock()
	dir := *e.chunks.Load()
	for ci >= len(dir) {
		nd := make([]*chunk, len(dir)+1)
		copy(nd, dir)
		nd[len(dir)] = new(chunk)
		e.chunks.Store(&nd)
		dir = nd
	}
}

// alloc claims the next arena slot and writes nd into it. The write is
// published to other goroutines by the caller's shard-mutex release.
func (e *Engine) alloc(nd node) Ref {
	idx := e.nnodes.Add(1) - 1
	e.ensure(idx)
	dir := *e.chunks.Load()
	dir[idx>>chunkBits][idx&chunkMask] = nd
	return Ref(idx)
}

// NumVars reports the number of Boolean variables in the engine's universe.
func (e *Engine) NumVars() int { return e.nvars }

// NumNodes reports the number of live decision nodes, including terminals.
// It is the engine's memory-footprint proxy used by the benchmarks. Safe
// for concurrent use.
func (e *Engine) NumNodes() int { return int(e.nnodes.Load()) }

// Ops reports the cumulative number of user-level predicate operations
// (conjunction, disjunction, negation) performed so far, as counted in
// §3.3 of the paper. It is safe to call concurrently with engine
// mutation (the counter is atomic).
func (e *Engine) Ops() uint64 { return e.ops.Load() }

// ResetOps zeroes the predicate-operation counter.
func (e *Engine) ResetOps() { e.ops.Store(0) }

// CacheStats reports the ITE computed-cache hit and miss totals since
// the engine was created. Safe for concurrent use.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

// CacheEvictions reports how many times a computed-cache shard was
// dropped because it reached its share of the size cap. Safe for
// concurrent use.
func (e *Engine) CacheEvictions() uint64 { return e.cacheEvictions.Load() }

// CacheLimit reports the computed-cache entry cap (<= 0 = unbounded).
// Safe for concurrent use.
func (e *Engine) CacheLimit() int { return int(e.cacheLimit.Load()) }

// perShardLimit splits the global cache cap across shards. Every shard
// keeps at least one entry, so a tiny cap still caches something; the
// consequence is that the total may exceed caps smaller than the shard
// count (bounded by max(limit, nShards)).
func perShardLimit(limit int64) int {
	per := int(limit) / nShards
	if per < 1 {
		per = 1
	}
	return per
}

// SetCacheLimit caps the ITE computed cache at n entries, enforced as
// n/nShards per shard (minimum one): when an insertion would exceed a
// shard's share that shard is dropped (the cheapest possible eviction —
// correctness is unaffected because the cache is a pure memo table, and
// hash-consed nodes stay alive). n <= 0 removes the bound.
//
// Safe to call concurrently with running ITE operations: the limit is an
// atomic and each shard evicts under its own mutex, so a concurrent
// resize can never tear the map an in-flight ITE is reading.
func (e *Engine) SetCacheLimit(n int) {
	e.cacheLimit.Store(int64(n))
	if n <= 0 {
		return
	}
	per := perShardLimit(int64(n))
	for i := range e.cache {
		cs := &e.cache[i]
		cs.mu.Lock()
		if len(cs.m) >= per {
			cs.m = make(map[cacheKey]Ref, 16)
			e.cacheEvictions.Add(1)
		}
		cs.mu.Unlock()
	}
}

// cacheLen sums the live computed-cache entries across shards (tests and
// introspection only).
func (e *Engine) cacheLen() int {
	total := 0
	for i := range e.cache {
		cs := &e.cache[i]
		cs.mu.Lock()
		total += len(cs.m)
		cs.mu.Unlock()
	}
	return total
}

// mk returns the canonical node (level, lo, hi), creating it if needed.
// Safe for concurrent use: creation serializes per unique-table shard,
// and the arena write is published by the shard-mutex release before any
// other goroutine can observe the Ref.
func (e *Engine) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := nodeKey(level, lo, hi)
	s := &e.unique[shardOfUnique(key)]
	s.mu.Lock()
	if r, ok := s.m[key]; ok {
		s.mu.Unlock()
		return r
	}
	r := e.alloc(node{level: level, lo: lo, hi: hi})
	s.m[key] = r
	s.mu.Unlock()
	return r
}

// Var returns the predicate that is true exactly when variable i is 1.
func (e *Engine) Var(i int) Ref {
	if i < 0 || i >= e.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, e.nvars))
	}
	return e.mk(int32(i), False, True)
}

// NVar returns the predicate that is true exactly when variable i is 0.
func (e *Engine) NVar(i int) Ref {
	if i < 0 || i >= e.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, e.nvars))
	}
	return e.mk(int32(i), True, False)
}

// ite computes if-then-else(f, g, h) = (f ∧ g) ∨ (¬f ∧ h).
func (e *Engine) ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := cacheKey{f, g, h}
	cs := &e.cache[shardOfCache(key)]
	cs.mu.Lock()
	r, ok := cs.m[key]
	cs.mu.Unlock()
	if ok {
		e.cacheHits.Add(1)
		return r
	}
	e.cacheMisses.Add(1)
	nf, ng, nh := e.node(f), e.node(g), e.node(h)
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	if nh.level < top {
		top = nh.level
	}
	f0, f1 := cofactor(nf, f, top)
	g0, g1 := cofactor(ng, g, top)
	h0, h1 := cofactor(nh, h, top)
	lo := e.ite(f0, g0, h0)
	hi := e.ite(f1, g1, h1)
	r = e.mk(top, lo, hi)
	limit := e.cacheLimit.Load()
	cs.mu.Lock()
	if limit > 0 && len(cs.m) >= perShardLimit(limit) {
		// Dropping one shard mid-computation is safe: outer recursion
		// levels recompute their subresults at worst, and node identity
		// is preserved by the unique table.
		cs.m = make(map[cacheKey]Ref, 16)
		e.cacheEvictions.Add(1)
	}
	cs.m[key] = r
	cs.mu.Unlock()
	return r
}

// cofactor returns the (lo, hi) cofactors of node n (with Ref r) with
// respect to the variable at level top.
func cofactor(n node, r Ref, top int32) (lo, hi Ref) {
	if n.level == top {
		return n.lo, n.hi
	}
	return r, r
}

// And returns a ∧ b and counts one predicate operation.
func (e *Engine) And(a, b Ref) Ref {
	e.ops.Add(1)
	return e.ite(a, b, False)
}

// Or returns a ∨ b and counts one predicate operation.
func (e *Engine) Or(a, b Ref) Ref {
	e.ops.Add(1)
	return e.ite(a, True, b)
}

// Not returns ¬a and counts one predicate operation.
func (e *Engine) Not(a Ref) Ref {
	e.ops.Add(1)
	return e.ite(a, False, True)
}

// Diff returns a ∧ ¬b. It counts as two predicate operations (a negation
// and a conjunction), matching how the paper's pseudocode composes it.
func (e *Engine) Diff(a, b Ref) Ref {
	e.ops.Add(2)
	return e.ite(b, False, a)
}

// Xor returns a ⊕ b, counted as one operation.
func (e *Engine) Xor(a, b Ref) Ref {
	e.ops.Add(1)
	return e.ite(a, e.ite(b, False, True), b)
}

// Implies reports whether a ⇒ b holds for all assignments, i.e. a ∧ ¬b = ∅.
// It performs one (counted) predicate operation.
func (e *Engine) Implies(a, b Ref) bool {
	e.ops.Add(1)
	return e.ite(a, b, True) == True
}

// Overlaps reports whether a ∧ b is non-empty. One counted operation.
func (e *Engine) Overlaps(a, b Ref) bool {
	e.ops.Add(1)
	return e.ite(a, b, False) != False
}

// AndN folds And over all arguments; AndN() = True.
func (e *Engine) AndN(refs ...Ref) Ref {
	r := True
	for _, x := range refs {
		r = e.And(r, x)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over all arguments; OrN() = False.
func (e *Engine) OrN(refs ...Ref) Ref {
	r := False
	for _, x := range refs {
		r = e.Or(r, x)
		if r == True {
			return True
		}
	}
	return r
}

// Cube returns the conjunction of literals for the variables in vars,
// where bits selects the polarity of each (bit i of bits corresponds to
// vars[i]). vars must be strictly increasing so the cube can be built
// bottom-up in canonical order. Cube does not count predicate operations:
// it is the primitive used to construct match predicates, not a
// model-update operation.
func (e *Engine) Cube(vars []int, bits uint64) Ref {
	if len(vars) > 64 {
		panic(fmt.Sprintf("bdd: Cube with %d variables exceeds the 64-bit polarity mask", len(vars)))
	}
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if v < 0 || v >= e.nvars {
			panic(fmt.Sprintf("bdd: variable %d out of range", v))
		}
		if i+1 < len(vars) && vars[i+1] <= v {
			panic("bdd: Cube variables must be strictly increasing")
		}
		if bits&(1<<uint(i)) != 0 {
			r = e.mk(int32(v), False, r)
		} else {
			r = e.mk(int32(v), r, False)
		}
	}
	return r
}

// Eval evaluates predicate r under the given assignment (assignment[i] is
// the value of variable i). Used by tests to cross-check algebra.
func (e *Engine) Eval(r Ref, assignment []bool) bool {
	for r != True && r != False {
		n := e.node(r)
		if assignment[n.level] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// SatCount returns the number of satisfying assignments of r over the full
// variable universe, as a float64 (exact for < 2^53).
func (e *Engine) SatCount(r Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(r Ref, level int32) float64
	count = func(r Ref, level int32) float64 {
		if r == False {
			return 0
		}
		n := e.node(r)
		var sub float64
		if r == True {
			sub = 1
			n.level = int32(e.nvars)
		} else if c, ok := memo[r]; ok {
			sub = c
		} else {
			sub = count(n.lo, n.level+1) + count(n.hi, n.level+1)
			memo[r] = sub
		}
		return sub * pow2(int(n.level)-int(level))
	}
	return count(r, 0)
}

func pow2(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 2
	}
	return r
}

// AnySat returns one satisfying assignment of r, or nil if r is False.
func (e *Engine) AnySat(r Ref) []bool {
	if r == False {
		return nil
	}
	a := make([]bool, e.nvars)
	for r != True {
		n := e.node(r)
		if n.lo != False {
			r = n.lo
		} else {
			a[n.level] = true
			r = n.hi
		}
	}
	return a
}

// Exists existentially quantifies the given variables out of r: the
// result is true for an assignment iff some setting of the quantified
// variables satisfies r. vars must be strictly increasing. Counts one
// predicate operation per quantified variable (each is a disjunction of
// cofactors). Used by the header-rewrite extension (a rewrite "field :=
// v" maps predicate p to Exists(p, fieldBits) ∧ (field = v)).
func (e *Engine) Exists(r Ref, vars []int) Ref {
	if len(vars) == 0 {
		return r
	}
	for i, v := range vars {
		if v < 0 || v >= e.nvars {
			panic(fmt.Sprintf("bdd: variable %d out of range", v))
		}
		if i > 0 && vars[i-1] >= v {
			panic("bdd: Exists variables must be strictly increasing")
		}
	}
	e.ops.Add(uint64(len(vars)))
	memo := make(map[Ref]Ref)
	var rec func(r Ref, vi int) Ref
	rec = func(r Ref, vi int) Ref {
		if vi >= len(vars) || r == True || r == False {
			return r
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := e.node(r)
		// Skip quantifier variables above this node's level.
		for vi < len(vars) && int32(vars[vi]) < n.level {
			vi++
		}
		var out Ref
		switch {
		case vi >= len(vars):
			out = r
		case int32(vars[vi]) == n.level:
			lo := rec(n.lo, vi+1)
			hi := rec(n.hi, vi+1)
			out = e.ite(lo, True, hi) // lo ∨ hi
		default:
			out = e.mk(n.level, rec(n.lo, vi), rec(n.hi, vi))
		}
		memo[r] = out
		return out
	}
	return rec(r, 0)
}

// ClearCache drops the computed-table cache (but keeps all nodes alive).
// Long-running verifiers call this between large update blocks to bound
// memory without invalidating outstanding Refs. Safe for concurrent use
// (each shard is dropped under its own mutex), though callers usually
// invoke it at quiescent points.
func (e *Engine) ClearCache() {
	for i := range e.cache {
		cs := &e.cache[i]
		cs.mu.Lock()
		cs.m = make(map[cacheKey]Ref, 16)
		cs.mu.Unlock()
	}
}

// dropCacheLocked resets every cache shard without counting evictions.
// Structural-only (GC, restore); callers hold exclusive access.
func (e *Engine) dropCacheLocked() {
	for i := range e.cache {
		e.cache[i].m = make(map[cacheKey]Ref, 16)
	}
}

// resetUnique replaces the unique table with empty shards sized for n
// survivors. Structural-only; callers hold exclusive access.
func (e *Engine) resetUnique(n int) {
	per := n/nShards + 1
	for i := range e.unique {
		e.unique[i].m = make(map[uniqueKey]Ref, per)
	}
}

// uniqueInsert interns (key → r) without locking. Structural-only.
func (e *Engine) uniqueInsert(key uniqueKey, r Ref) {
	e.unique[shardOfUnique(key)].m[key] = r
}

// uniqueLookup reads the unique table without locking. Structural-only.
func (e *Engine) uniqueLookup(key uniqueKey) (Ref, bool) {
	r, ok := e.unique[shardOfUnique(key)].m[key]
	return r, ok
}

// uniqueLen counts interned nonterminal nodes. Structural-only.
func (e *Engine) uniqueLen() int {
	total := 0
	for i := range e.unique {
		total += len(e.unique[i].m)
	}
	return total
}

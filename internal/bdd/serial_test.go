package bdd

import "testing"

// buildSample mints a small but nontrivial predicate set and returns the
// engine plus some live refs.
func buildSample(t *testing.T) (*Engine, []Ref) {
	t.Helper()
	e := New(8)
	a := e.Var(0)
	b := e.Var(3)
	c := e.NVar(5)
	refs := []Ref{
		a,
		e.And(a, b),
		e.Or(e.And(a, c), e.Not(b)),
		e.Xor(a, e.And(b, c)),
	}
	return e, refs
}

func TestExportNodesRoundTrip(t *testing.T) {
	e, refs := buildSample(t)
	dump := e.ExportNodes()
	r, err := NewFromNodes(e.NumVars(), dump)
	if err != nil {
		t.Fatalf("NewFromNodes: %v", err)
	}
	if r.NumNodes() != e.NumNodes() {
		t.Fatalf("restored %d nodes, want %d", r.NumNodes(), e.NumNodes())
	}
	// Canonicity: re-deriving the same predicates in the restored engine
	// must hit the hash-consed nodes and return the identical refs.
	a, b, c := r.Var(0), r.Var(3), r.NVar(5)
	again := []Ref{a, r.And(a, b), r.Or(r.And(a, c), r.Not(b)), r.Xor(a, r.And(b, c))}
	for i := range refs {
		if refs[i] != again[i] {
			t.Fatalf("ref %d: original %d, restored %d — canonicity broken", i, refs[i], again[i])
		}
		if !r.CheckRef(refs[i]) {
			t.Fatalf("ref %d invalid in restored engine", refs[i])
		}
	}
	// Restoring must not grow the node store (no new mints).
	if r.NumNodes() != e.NumNodes() {
		t.Fatalf("re-derivation minted nodes: %d vs %d", r.NumNodes(), e.NumNodes())
	}
}

func TestExportNodesIsACopy(t *testing.T) {
	e, _ := buildSample(t)
	dump := e.ExportNodes()
	before := append([]int32(nil), dump...)
	e.And(e.Var(1), e.Var(2)) // grow the engine
	for i := range dump {
		if dump[i] != before[i] {
			t.Fatalf("dump aliases engine storage (index %d changed)", i)
		}
	}
}

func TestNewFromNodesEmpty(t *testing.T) {
	r, err := NewFromNodes(4, nil)
	if err != nil {
		t.Fatalf("empty dump: %v", err)
	}
	if r.NumNodes() != 2 {
		t.Fatalf("empty restore has %d nodes, want 2 terminals", r.NumNodes())
	}
}

func TestNewFromNodesRejectsHostileDumps(t *testing.T) {
	cases := []struct {
		name  string
		nvars int
		dump  []int32
	}{
		{"ragged length", 4, []int32{0, 0}},
		{"bad nvars", 0, nil},
		{"level out of range", 4, []int32{4, 0, 1}},
		{"negative level", 4, []int32{-1, 0, 1}},
		{"forward child", 4, []int32{0, 0, 3}},
		{"negative child", 4, []int32{0, -2, 1}},
		{"redundant node", 4, []int32{0, 1, 1}},
		// node 2 = (level 1), node 3 = (level 2) pointing at node 2 is
		// fine; node at level 2 with child at level 1 inverts the order.
		{"child above parent", 4, []int32{1, 0, 1, 2, 0, 2}},
		{"duplicate node", 4, []int32{3, 0, 1, 3, 0, 1}},
	}
	for _, tc := range cases {
		if _, err := NewFromNodes(tc.nvars, tc.dump); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCheckRef(t *testing.T) {
	e, _ := buildSample(t)
	if !e.CheckRef(False) || !e.CheckRef(True) {
		t.Fatal("terminals must be valid")
	}
	if e.CheckRef(-1) {
		t.Fatal("negative ref accepted")
	}
	if e.CheckRef(Ref(e.NumNodes())) {
		t.Fatal("out-of-range ref accepted")
	}
}

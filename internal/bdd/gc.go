package bdd

// In-engine mark-and-sweep garbage collection.
//
// The paper's reference implementation leans on JDD, which garbage-
// collects its node table (§5.4 fn10); without reclamation a long-lived
// per-subspace verifier grows monotonically under churn. GC restores
// that property for this engine: the caller enumerates the Refs it
// still holds (the root set), the engine marks everything reachable
// from them, sweeps the rest, compacts the node slice in place, and
// returns a dense old→new remap the caller applies to every held Ref.
//
// Marking exploits the construction invariant that mk appends a node
// only after both children exist, so children always sit at smaller
// slice indices than their parents: setting the root bits and making
// one descending pass over the node slice closes the live set, and one
// ascending pass compacts it with children relocated before any parent
// needs their new positions. Both passes are O(nodes) with no stack.

import "fmt"

// Remap is the dense old→new Ref translation produced by a GC pass.
// Entries for swept (dead) nodes are negative; Apply panics on them,
// because a held Ref that was not in the root set is a leak the caller
// must fix, not a condition to paper over.
type Remap []Ref

// deadRef marks a swept node in a Remap.
const deadRef = Ref(-1)

// Apply translates a pre-GC Ref to its post-GC position.
func (m Remap) Apply(r Ref) Ref {
	if r < 0 || int(r) >= len(m) {
		panic(fmt.Sprintf("bdd: Remap.Apply(%d) outside the pre-GC node range [0,%d)", r, len(m)))
	}
	nr := m[r]
	if nr < 0 {
		panic(fmt.Sprintf("bdd: Remap.Apply(%d) on a swept node — the Ref was held but not enumerated as a GC root", r))
	}
	return nr
}

// Live reports whether r survived the collection.
func (m Remap) Live(r Ref) bool {
	return r >= 0 && int(r) < len(m) && m[r] >= 0
}

// GCStats summarizes one collection pass. Counts include the two
// terminal nodes, matching NumNodes.
type GCStats struct {
	Before    int // nodes before the pass
	After     int // live nodes after the pass
	Reclaimed int // Before - After
}

// GC runs a mark-and-sweep collection. roots must yield every Ref the
// caller still holds; anything not reachable from a yielded Ref (or a
// terminal) is swept. The node slice is compacted in place, the unique
// table is rebuilt over the survivors, and the computed cache is
// dropped (it memoizes pre-GC Refs). All outstanding Refs are
// invalidated: the caller must rewrite each one through the returned
// Remap before touching the engine again. Owner-only, like all
// structural methods.
func (e *Engine) GC(roots func(yield func(Ref))) (Remap, GCStats) {
	n := len(e.nodes)
	live := make([]bool, n)
	live[False], live[True] = true, true
	roots(func(r Ref) {
		if r < 0 || int(r) >= n {
			panic(fmt.Sprintf("bdd: GC root %d outside the node range [0,%d)", r, n))
		}
		live[r] = true
	})
	// Children precede parents in the slice, so one descending pass
	// propagates liveness to the full reachable set.
	for i := n - 1; i >= 2; i-- {
		if live[i] {
			nd := e.nodes[i]
			live[nd.lo] = true
			live[nd.hi] = true
		}
	}
	// Ascending sweep: a survivor's children were already relocated, so
	// remap[lo] and remap[hi] are final by the time the parent moves.
	remap := make(Remap, n)
	next := Ref(2)
	remap[False], remap[True] = False, True
	for i := 2; i < n; i++ {
		if !live[i] {
			remap[i] = deadRef
			continue
		}
		nd := e.nodes[i]
		nd.lo = remap[nd.lo]
		nd.hi = remap[nd.hi]
		e.nodes[next] = nd
		remap[i] = next
		next++
	}
	e.nodes = e.nodes[:next]
	e.unique = make(map[uniqueKey]Ref, next)
	for i := Ref(2); i < next; i++ {
		nd := e.nodes[i]
		e.unique[nodeKey(nd.level, nd.lo, nd.hi)] = i
	}
	e.cache = make(map[cacheKey]Ref, 1024)
	st := GCStats{Before: n, After: int(next), Reclaimed: n - int(next)}
	e.gcRuns.Add(1)
	e.gcReclaimed.Add(uint64(st.Reclaimed))
	return remap, st
}

// GCRuns reports how many GC passes have completed. Safe for concurrent
// use, like the other activity counters.
func (e *Engine) GCRuns() uint64 { return e.gcRuns.Load() }

// ReclaimedNodes reports the total node count swept across all GC
// passes. Safe for concurrent use.
func (e *Engine) ReclaimedNodes() uint64 { return e.gcReclaimed.Load() }

package bdd

// In-engine mark-and-sweep garbage collection.
//
// The paper's reference implementation leans on JDD, which garbage-
// collects its node table (§5.4 fn10); without reclamation a long-lived
// per-subspace verifier grows monotonically under churn. GC restores
// that property for this engine: the caller enumerates the Refs it
// still holds (the root set), the engine marks everything reachable
// from them, sweeps the rest, compacts the survivors into a fresh
// level-ordered arena, and returns a dense old→new remap the caller
// applies to every held Ref.
//
// Marking exploits the construction invariant that mk allocates a node
// only after both children exist, so children always sit at smaller
// arena indices than their parents (this holds under concurrent
// allocation too: a parent's children are visible to its creator before
// the parent's slot is claimed, and slot indices are monotonic): setting
// the root bits and making one descending pass over the arena closes
// the live set.
//
// Compaction lays survivors out in descending level order (deepest
// variables first, terminals at their sentinel level in slots 0 and 1).
// Because a child always tests a strictly deeper variable than its
// parent, descending-level order preserves children-before-parents —
// ExportNodes dumps restore with the same one-pass validation — while
// giving post-GC traversals level locality: every ITE cofactor step
// walks toward higher levels, i.e. strictly earlier (already touched)
// arena chunks.

import "fmt"

// Remap is the dense old→new Ref translation produced by a GC pass.
// Entries for swept (dead) nodes are negative; Apply panics on them,
// because a held Ref that was not in the root set is a leak the caller
// must fix, not a condition to paper over.
type Remap []Ref

// deadRef marks a swept node in a Remap.
const deadRef = Ref(-1)

// Apply translates a pre-GC Ref to its post-GC position.
func (m Remap) Apply(r Ref) Ref {
	if r < 0 || int(r) >= len(m) {
		panic(fmt.Sprintf("bdd: Remap.Apply(%d) outside the pre-GC node range [0,%d)", r, len(m)))
	}
	nr := m[r]
	if nr < 0 {
		panic(fmt.Sprintf("bdd: Remap.Apply(%d) on a swept node — the Ref was held but not enumerated as a GC root", r))
	}
	return nr
}

// Live reports whether r survived the collection.
func (m Remap) Live(r Ref) bool {
	return r >= 0 && int(r) < len(m) && m[r] >= 0
}

// GCStats summarizes one collection pass. Counts include the two
// terminal nodes, matching NumNodes.
type GCStats struct {
	Before    int // nodes before the pass
	After     int // live nodes after the pass
	Reclaimed int // Before - After
}

// GC runs a mark-and-sweep collection. roots must yield every Ref the
// caller still holds; anything not reachable from a yielded Ref (or a
// terminal) is swept. Survivors are compacted into a fresh arena in
// descending level order, the unique table is rebuilt over them, and
// the computed cache is dropped (it memoizes pre-GC Refs). All
// outstanding Refs are invalidated: the caller must rewrite each one
// through the returned Remap before touching the engine again.
// Exclusive-access only: no concurrent engine use of any kind may be in
// flight (Flash serializes GC behind the owning worker's mutex).
func (e *Engine) GC(roots func(yield func(Ref))) (Remap, GCStats) {
	n := int(e.nnodes.Load())
	live := make([]bool, n)
	live[False], live[True] = true, true
	roots(func(r Ref) {
		if r < 0 || int(r) >= n {
			panic(fmt.Sprintf("bdd: GC root %d outside the node range [0,%d)", r, n))
		}
		live[r] = true
	})
	// Children precede parents in the arena, so one descending pass
	// propagates liveness to the full reachable set.
	for i := n - 1; i >= 2; i-- {
		if live[i] {
			nd := e.node(Ref(i))
			live[nd.lo] = true
			live[nd.hi] = true
		}
	}
	// Assign post-GC positions: bucket survivors by level and hand out
	// contiguous index ranges in descending level order (deepest level
	// right after the terminals). Within a level, survivors keep their
	// relative arena order, so the pass is deterministic for a given
	// (state, roots) pair.
	counts := make([]int, e.nvars)
	for i := 2; i < n; i++ {
		if live[i] {
			counts[e.node(Ref(i)).level]++
		}
	}
	cursor := make([]Ref, e.nvars)
	next := Ref(2)
	for lvl := e.nvars - 1; lvl >= 0; lvl-- {
		cursor[lvl] = next
		next += Ref(counts[lvl])
	}
	remap := make(Remap, n)
	remap[False], remap[True] = False, True
	for i := 2; i < n; i++ {
		if !live[i] {
			remap[i] = deadRef
			continue
		}
		lvl := e.node(Ref(i)).level
		remap[i] = cursor[lvl]
		cursor[lvl]++
	}
	// Materialize the compacted arena. A fresh chunk directory (rather
	// than in-place moves) is required because level-ordering can move a
	// node in either direction.
	nchunks := (int(next) + chunkSize - 1) / chunkSize
	dir := make([]*chunk, nchunks)
	for i := range dir {
		dir[i] = new(chunk)
	}
	dir[0][False] = node{level: int32(e.nvars), lo: False, hi: False}
	dir[0][True] = node{level: int32(e.nvars), lo: True, hi: True}
	for i := 2; i < n; i++ {
		if !live[i] {
			continue
		}
		nd := e.node(Ref(i))
		nd.lo = remap[nd.lo]
		nd.hi = remap[nd.hi]
		ni := remap[i]
		dir[ni>>chunkBits][ni&chunkMask] = nd
	}
	e.chunks.Store(&dir)
	e.nnodes.Store(int64(next))
	e.resetUnique(int(next))
	for i := Ref(2); i < next; i++ {
		nd := e.node(i)
		e.uniqueInsert(nodeKey(nd.level, nd.lo, nd.hi), i)
	}
	e.dropCacheLocked()
	st := GCStats{Before: n, After: int(next), Reclaimed: n - int(next)}
	e.gcRuns.Add(1)
	e.gcReclaimed.Add(uint64(st.Reclaimed))
	return remap, st
}

// GCRuns reports how many GC passes have completed. Safe for concurrent
// use, like the other activity counters.
func (e *Engine) GCRuns() uint64 { return e.gcRuns.Load() }

// ReclaimedNodes reports the total node count swept across all GC
// passes. Safe for concurrent use.
func (e *Engine) ReclaimedNodes() uint64 { return e.gcReclaimed.Load() }

package bdd

import (
	"testing"
	"time"
)

// TestCounterReadsRaceWithMutation pins the concurrency contract of the
// activity counters: Ops, CacheStats and CacheEvictions may be read by
// the admin handler / observability samplers while the owning worker is
// mutating the engine. Before the counters became atomics this test
// failed under -race (the sampler read the plain uint64 fields the ITE
// recursion was incrementing); it must keep passing under -race.
func TestCounterReadsRaceWithMutation(t *testing.T) {
	e := New(32)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink uint64
		for {
			select {
			case <-stop:
				_ = sink
				return
			default:
			}
			h, m := e.CacheStats()
			sink += h + m + e.Ops() + e.CacheEvictions()
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	r := True
	for i := 0; time.Now().Before(deadline); i++ {
		v := e.Var(i % 32)
		if i%2 == 0 {
			r = e.And(r, e.Or(v, e.Not(r)))
		} else {
			r = e.Or(r, e.And(v, e.Not(r)))
		}
	}
	close(stop)
	<-done
}

// TestCacheLimitEvicts proves the computed cache stays bounded and that
// eviction does not change results: the same expression DAG is built
// with an unbounded cache and with a tiny cap, and both engines must
// agree on every predicate (hash consing makes Ref equality semantic
// equality, so comparing evaluation under probes is sufficient across
// engines).
func TestCacheLimitEvicts(t *testing.T) {
	build := func(e *Engine) Ref {
		r := False
		for i := 0; i < 16; i++ {
			cube := True
			for j := 0; j < 16; j++ {
				if (i>>uint(j%4))&1 == 1 {
					cube = e.And(cube, e.Var(j))
				} else {
					cube = e.And(cube, e.Not(e.Var(j)))
				}
			}
			r = e.Or(r, cube)
		}
		return r
	}
	unbounded := New(16)
	unbounded.SetCacheLimit(0)
	capped := New(16)
	capped.SetCacheLimit(8)

	ru := build(unbounded)
	rc := build(capped)

	if unbounded.CacheEvictions() != 0 {
		t.Fatalf("unbounded engine evicted %d times", unbounded.CacheEvictions())
	}
	if capped.CacheEvictions() == 0 {
		t.Fatal("capped engine never evicted; cap not enforced")
	}
	if len(capped.cache) > 8 {
		t.Fatalf("cache holds %d entries, cap is 8", len(capped.cache))
	}
	// Exhaustive agreement over all 2^16 assignments.
	asg := make([]bool, 16)
	for x := 0; x < 1<<16; x++ {
		for b := 0; b < 16; b++ {
			asg[b] = x>>uint(b)&1 == 1
		}
		if unbounded.Eval(ru, asg) != capped.Eval(rc, asg) {
			t.Fatalf("eviction changed semantics at assignment %v", asg)
		}
	}
}

func TestSetCacheLimitTrimsExisting(t *testing.T) {
	e := New(16)
	r := False
	for i := 0; i < 8; i++ {
		r = e.Or(r, e.And(e.Var(i), e.Not(e.Var((i+3)%16))))
	}
	if len(e.cache) == 0 {
		t.Fatal("test needs a warm cache")
	}
	e.SetCacheLimit(1)
	if e.CacheEvictions() == 0 {
		t.Fatal("SetCacheLimit below current size must evict immediately")
	}
	if got := e.CacheLimit(); got != 1 {
		t.Fatalf("CacheLimit = %d, want 1", got)
	}
}

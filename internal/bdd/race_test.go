package bdd

import (
	"sync"
	"testing"
	"time"
)

// TestCounterReadsRaceWithMutation pins the concurrency contract of the
// activity counters: Ops, CacheStats and CacheEvictions may be read by
// the admin handler / observability samplers while the owning worker is
// mutating the engine. Before the counters became atomics this test
// failed under -race (the sampler read the plain uint64 fields the ITE
// recursion was incrementing); it must keep passing under -race.
func TestCounterReadsRaceWithMutation(t *testing.T) {
	e := New(32)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sink uint64
		for {
			select {
			case <-stop:
				_ = sink
				return
			default:
			}
			h, m := e.CacheStats()
			sink += h + m + e.Ops() + e.CacheEvictions()
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	r := True
	for i := 0; time.Now().Before(deadline); i++ {
		v := e.Var(i % 32)
		if i%2 == 0 {
			r = e.And(r, e.Or(v, e.Not(r)))
		} else {
			r = e.Or(r, e.And(v, e.Not(r)))
		}
	}
	close(stop)
	<-done
}

// TestCacheLimitEvicts proves the computed cache stays bounded and that
// eviction does not change results: the same expression DAG is built
// with an unbounded cache and with a tiny cap, and both engines must
// agree on every predicate (hash consing makes Ref equality semantic
// equality, so comparing evaluation under probes is sufficient across
// engines).
func TestCacheLimitEvicts(t *testing.T) {
	build := func(e *Engine) Ref {
		r := False
		for i := 0; i < 16; i++ {
			cube := True
			for j := 0; j < 16; j++ {
				if (i>>uint(j%4))&1 == 1 {
					cube = e.And(cube, e.Var(j))
				} else {
					cube = e.And(cube, e.Not(e.Var(j)))
				}
			}
			r = e.Or(r, cube)
		}
		return r
	}
	unbounded := New(16)
	unbounded.SetCacheLimit(0)
	capped := New(16)
	capped.SetCacheLimit(8)

	ru := build(unbounded)
	rc := build(capped)

	if unbounded.CacheEvictions() != 0 {
		t.Fatalf("unbounded engine evicted %d times", unbounded.CacheEvictions())
	}
	if capped.CacheEvictions() == 0 {
		t.Fatal("capped engine never evicted; cap not enforced")
	}
	// The cap is enforced per shard (minimum one entry each), so the
	// total is bounded by max(limit, nShards).
	if got, bound := capped.cacheLen(), nShards; got > bound {
		t.Fatalf("cache holds %d entries, per-shard cap bounds it at %d", got, bound)
	}
	// Exhaustive agreement over all 2^16 assignments.
	asg := make([]bool, 16)
	for x := 0; x < 1<<16; x++ {
		for b := 0; b < 16; b++ {
			asg[b] = x>>uint(b)&1 == 1
		}
		if unbounded.Eval(ru, asg) != capped.Eval(rc, asg) {
			t.Fatalf("eviction changed semantics at assignment %v", asg)
		}
	}
}

func TestSetCacheLimitTrimsExisting(t *testing.T) {
	e := New(16)
	r := False
	for i := 0; i < 8; i++ {
		r = e.Or(r, e.And(e.Var(i), e.Not(e.Var((i+3)%16))))
	}
	if e.cacheLen() == 0 {
		t.Fatal("test needs a warm cache")
	}
	e.SetCacheLimit(1)
	if e.CacheEvictions() == 0 {
		t.Fatal("SetCacheLimit below current size must evict immediately")
	}
	if got := e.CacheLimit(); got != 1 {
		t.Fatalf("CacheLimit = %d, want 1", got)
	}
}

// TestParallelITECanonicity pins the sharded engine's core promise:
// node-creating operations from many goroutines against ONE engine
// preserve hash-consing canonicity. Each goroutine builds the same
// family of predicates; because "equal Refs ⇔ equivalent predicates",
// every goroutine must get bit-identical Refs for the same formula, and
// the engine's invariants must hold afterwards. Run under -race this is
// also the memory-safety proof for the lock-free arena reads.
func TestParallelITECanonicity(t *testing.T) {
	const (
		goroutines = 8
		formulas   = 64
	)
	e := New(32)
	results := make([][]Ref, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]Ref, formulas)
			for i := 0; i < formulas; i++ {
				// A mildly nontrivial DAG per formula: prefix-style cubes
				// OR'd together, then XOR'd with a shifted variant.
				a := False
				for j := 0; j < 8; j++ {
					cube := True
					for b := 0; b < 8; b++ {
						v := e.Var((i + b) % 32)
						if (j>>uint(b%3))&1 == 1 {
							cube = e.And(cube, v)
						} else {
							cube = e.And(cube, e.Not(v))
						}
					}
					a = e.Or(a, cube)
				}
				out[i] = e.Xor(a, e.Var((i*7)%32))
			}
			results[g] = out
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d formula %d got ref %d, goroutine 0 got %d; canonicity broken under parallel ITE",
					g, i, results[g][i], results[0][i])
			}
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after parallel construction: %v", err)
	}
}

// TestSetCacheLimitRacesWithITE pins the satellite fix for the
// SetCacheLimit/evictCache vs concurrent ite interaction: resizing (and
// thereby evicting) the computed cache while other goroutines run ITE
// must be memory-safe and must not corrupt results. Before the cache
// was sharded with per-shard eviction this was a plain map data race.
func TestSetCacheLimitRacesWithITE(t *testing.T) {
	e := New(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := True
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := e.Var((i + g*5) % 32)
				r = e.Or(e.And(r, v), e.Not(r))
			}
		}()
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		switch i % 3 {
		case 0:
			e.SetCacheLimit(64)
		case 1:
			e.SetCacheLimit(0)
		default:
			e.SetCacheLimit(DefaultCacheLimit)
		}
	}
	close(stop)
	wg.Wait()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after concurrent cache resizing: %v", err)
	}
}

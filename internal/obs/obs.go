// Package obs is the observability layer of the Flash reproduction: a
// small, dependency-free metrics library with atomic counters, gauges,
// bounded latency histograms (p50/p95/p99) and named per-subsystem
// registries.
//
// The design goal is zero cost on hot paths when no sink is attached:
// every metric method is nil-safe, so instrumented code holds plain
// (possibly nil) *Counter / *Gauge / *Histogram handles and calls them
// unconditionally. A nil handle is a single predictable branch — no
// allocation, no map lookup, no lock. Handles are resolved from a
// Registry once, at instrumentation time, never per operation.
//
// Registries form a tree (Sub) so each subsystem owns its namespace:
//
//	reg := obs.NewRegistry("flashd")
//	imt := reg.Sub("imt").Sub("subspace0")
//	imt.Counter("updates").Add(17)
//	imt.Histogram("map_ns").Observe(elapsed)
//
// Snapshot() walks the tree into a JSON-serializable value; Func
// registers a sampled gauge evaluated only at snapshot time, which is how
// callers export state that is unsafe or too costly to track eagerly
// (e.g. BDD node counts read under the owning worker's lock).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics plus child registries. The
// zero registry is not usable; create one with NewRegistry. All methods
// are safe for concurrent use, and — like the metric types — safe on a
// nil receiver: a nil Registry hands out nil metric handles, so an
// uninstrumented subsystem pays only nil checks.
type Registry struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
	subs       map[string]*Registry
}

// NewRegistry creates an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
		subs:       make(map[string]*Registry),
	}
}

// Name returns the registry's name ("" for nil).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Sub returns the child registry with the given name, creating it on
// first use. Sub on a nil registry returns nil, so instrumentation can
// unconditionally build its namespace.
func (r *Registry) Sub(name string) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[name]
	if !ok {
		s = NewRegistry(name)
		r.subs[name] = s
	}
	return s
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Func registers a sampled gauge: fn is evaluated at Snapshot time only.
// Use it for state that is unsafe to read concurrently — the callback can
// take the owning subsystem's lock. Re-registering a name replaces the
// callback. No-op on a nil registry.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot captures the full registry tree. Sampled gauges (Func) are
// evaluated outside the registry lock, in sorted name order.
type Snapshot struct {
	Name       string                  `json:"name,omitempty"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Subs       map[string]Snapshot     `json:"subs,omitempty"`
}

// Snapshot walks the registry tree into a serializable value. A nil
// registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	s := Snapshot{Name: r.name}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	funcNames := make([]string, 0, len(r.funcs))
	for name := range r.funcs {
		funcNames = append(funcNames, name)
	}
	fns := make([]func() int64, 0, len(funcNames))
	sort.Strings(funcNames)
	for _, name := range funcNames {
		fns = append(fns, r.funcs[name])
	}
	subNames := make([]string, 0, len(r.subs))
	for name := range r.subs {
		subNames = append(subNames, name)
	}
	sort.Strings(subNames)
	subs := make([]*Registry, 0, len(subNames))
	for _, name := range subNames {
		subs = append(subs, r.subs[name])
	}
	r.mu.Unlock()

	// Evaluate sampled gauges and recurse without holding our lock, so
	// callbacks may take subsystem locks without ordering constraints.
	if len(fns) > 0 {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64, len(fns))
		}
		for i, fn := range fns {
			s.Gauges[funcNames[i]] = fn()
		}
	}
	if len(subs) > 0 {
		s.Subs = make(map[string]Snapshot, len(subs))
		for i, sub := range subs {
			s.Subs[subNames[i]] = sub.Snapshot()
		}
	}
	return s
}

// Get resolves a slash-separated path ("ce2d/subspace0/messages") to a
// counter or gauge value in the snapshot. The last path element is the
// metric name; everything before it names nested sub-registries.
func (s Snapshot) Get(path ...string) (int64, bool) {
	if len(path) == 0 {
		return 0, false
	}
	cur := s
	for _, p := range path[:len(path)-1] {
		sub, ok := cur.Subs[p]
		if !ok {
			return 0, false
		}
		cur = sub
	}
	name := path[len(path)-1]
	if v, ok := cur.Counters[name]; ok {
		return v, true
	}
	if v, ok := cur.Gauges[name]; ok {
		return v, true
	}
	return 0, false
}

// Hist resolves a slash-separated path to a histogram snapshot.
func (s Snapshot) Hist(path ...string) (HistSnapshot, bool) {
	if len(path) == 0 {
		return HistSnapshot{}, false
	}
	cur := s
	for _, p := range path[:len(path)-1] {
		sub, ok := cur.Subs[p]
		if !ok {
			return HistSnapshot{}, false
		}
		cur = sub
	}
	h, ok := cur.Histograms[path[len(path)-1]]
	return h, ok
}

package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a bounded, lock-free latency histogram over int64
// nanosecond values. Values are bucketed log-linearly with two mantissa
// bits per octave (HDR-style), so any recorded value lands in a bucket
// whose width is at most 25% of its lower bound; quantiles interpolate
// within the bucket and are typically far more accurate. The bucket
// array is fixed (histBuckets entries), so a histogram's memory is
// constant regardless of how many values it absorbs.
//
// All methods are safe for concurrent use and are no-ops on a nil
// receiver; Observe performs no allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Bucket layout: values 0..7 get exact unit buckets 0..7; beyond that,
// each octave e (floor log2) is split into 4 sub-buckets keyed by the two
// bits after the leading one. Index = 4*(e-1) + sub for e >= 3.
const histBuckets = 4*63 + 4 // indices for e up to 63

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketIndex(v int64) int {
	if v < 8 {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= 3
	sub := int(v>>(uint(e)-2)) & 3
	return 4*(e-1) + sub
}

// bucketBounds returns the inclusive value range covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < 8 {
		return int64(i), int64(i)
	}
	e := uint(i/4 + 1)
	sub := int64(i % 4)
	lo = (4 + sub) << (e - 2)
	return lo, lo + int64(1)<<(e-2) - 1
}

// Observe records one duration (clamped at zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.ObserveNs(int64(d))
}

// ObserveNs records one nanosecond value (clamped at zero).
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is a point-in-time summary of a histogram, in nanoseconds.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	SumNs  int64   `json:"sum_ns"`
	MinNs  int64   `json:"min_ns"`
	MaxNs  int64   `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// Snapshot summarizes the histogram. Quantiles are linear interpolations
// within log-linear buckets, clamped to the observed min/max. A nil or
// empty histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]int64
	// Load count first: concurrent Observes may land between loads, so
	// quantile ranks are computed against a floor of the bucket totals.
	n := h.count.Load()
	if n == 0 {
		return HistSnapshot{}
	}
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total < n {
		n = total
	}
	s := HistSnapshot{
		Count: n,
		SumNs: h.sum.Load(),
		MinNs: h.min.Load(),
		MaxNs: h.max.Load(),
	}
	s.MeanNs = float64(s.SumNs) / float64(n)
	s.P50Ns = quantile(&counts, n, 0.50, s.MinNs, s.MaxNs)
	s.P95Ns = quantile(&counts, n, 0.95, s.MinNs, s.MaxNs)
	s.P99Ns = quantile(&counts, n, 0.99, s.MinNs, s.MaxNs)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded values.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	var counts [histBuckets]int64
	n := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		n += counts[i]
	}
	return quantile(&counts, n, q, s.MinNs, s.MaxNs)
}

func quantile(counts *[histBuckets]int64, n int64, q float64, minNs, maxNs int64) float64 {
	if n == 0 {
		return 0
	}
	rank := q * float64(n-1) // 0-based fractional rank
	seen := int64(0)
	for i := range counts {
		c := counts[i]
		if c == 0 {
			continue
		}
		if float64(seen+c) > rank {
			lo, hi := bucketBounds(i)
			// Position of the target rank within this bucket.
			frac := (rank - float64(seen)) / float64(c)
			v := float64(lo) + frac*float64(hi-lo)
			if v < float64(minNs) {
				v = float64(minNs)
			}
			if v > float64(maxNs) {
				v = float64(maxNs)
			}
			return v
		}
		seen += c
	}
	return float64(maxNs)
}

package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	if s := r.Sub("x"); s != nil {
		t.Fatalf("nil.Sub = %v, want nil", s)
	}
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(time.Millisecond)
	r.Func("f", func() int64 { return 1 })
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Fatalf("nil gauge value = %d", v)
	}
	if s := r.Histogram("h").Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
	if s := r.Snapshot(); s.Name != "" || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry("root")
	if r.Counter("c") != r.Counter("c") {
		t.Fatal("Counter not stable across lookups")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not stable across lookups")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram not stable across lookups")
	}
	if r.Sub("a") != r.Sub("a") {
		t.Fatal("Sub not stable across lookups")
	}
}

func TestSnapshotTreeAndGet(t *testing.T) {
	r := NewRegistry("root")
	r.Counter("top").Add(5)
	sub := r.Sub("imt").Sub("subspace0")
	sub.Counter("updates").Add(42)
	sub.Gauge("ecs").Set(9)
	sub.Func("nodes", func() int64 { return 123 })
	sub.Histogram("map_ns").Observe(2 * time.Microsecond)

	s := r.Snapshot()
	if v, ok := s.Get("top"); !ok || v != 5 {
		t.Fatalf("Get(top) = %d, %v", v, ok)
	}
	if v, ok := s.Get("imt", "subspace0", "updates"); !ok || v != 42 {
		t.Fatalf("Get(updates) = %d, %v", v, ok)
	}
	if v, ok := s.Get("imt", "subspace0", "ecs"); !ok || v != 9 {
		t.Fatalf("Get(ecs) = %d, %v", v, ok)
	}
	if v, ok := s.Get("imt", "subspace0", "nodes"); !ok || v != 123 {
		t.Fatalf("Get(func gauge) = %d, %v", v, ok)
	}
	if h, ok := s.Hist("imt", "subspace0", "map_ns"); !ok || h.Count != 1 {
		t.Fatalf("Hist(map_ns) = %+v, %v", h, ok)
	}
	if _, ok := s.Get("imt", "missing", "x"); ok {
		t.Fatal("Get on missing path succeeded")
	}

	// The snapshot must round-trip through JSON (the /metrics format).
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Get("imt", "subspace0", "updates"); !ok || v != 42 {
		t.Fatalf("after JSON round-trip Get(updates) = %d, %v", v, ok)
	}
}

func TestHistogramBucketsCoverInt64(t *testing.T) {
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 100, 1 << 20, 1<<62 + 12345, math.MaxInt64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, i, lo, hi)
		}
		if lo >= 8 && float64(hi-lo) > 0.25*float64(lo) {
			t.Fatalf("bucket %d relative width %f too wide", i, float64(hi-lo)/float64(lo))
		}
	}
}

// TestHistogramQuantileAccuracy records known distributions and requires
// the interpolated quantiles to be within the bucket scheme's relative
// error bound.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	distributions := map[string]func() int64{
		// Uniform microsecond-to-millisecond latencies.
		"uniform": func() int64 { return 1_000 + rng.Int63n(999_000) },
		// Log-normal-ish long tail.
		"longtail": func() int64 { return int64(math.Exp(10 + 2*rng.NormFloat64())) },
	}
	for name, gen := range distributions {
		h := newHistogram()
		vals := make([]int64, 20_000)
		for i := range vals {
			v := gen()
			vals[i] = v
			h.ObserveNs(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count != int64(len(vals)) {
			t.Fatalf("%s: count = %d, want %d", name, s.Count, len(vals))
		}
		if s.MinNs != vals[0] || s.MaxNs != vals[len(vals)-1] {
			t.Fatalf("%s: min/max = %d/%d, want %d/%d", name, s.MinNs, s.MaxNs, vals[0], vals[len(vals)-1])
		}
		for _, q := range []struct {
			q    float64
			got  float64
			name string
		}{
			{0.50, s.P50Ns, "p50"},
			{0.95, s.P95Ns, "p95"},
			{0.99, s.P99Ns, "p99"},
		} {
			want := float64(vals[int(q.q*float64(len(vals)-1))])
			if rel := math.Abs(q.got-want) / want; rel > 0.25 {
				t.Errorf("%s: %s = %.0f, want ≈%.0f (rel err %.3f)", name, q.name, q.got, want, rel)
			}
		}
		wantMean := 0.0
		for _, v := range vals {
			wantMean += float64(v)
		}
		wantMean /= float64(len(vals))
		if rel := math.Abs(s.MeanNs-wantMean) / wantMean; rel > 1e-9 {
			t.Errorf("%s: mean = %f, want %f", name, s.MeanNs, wantMean)
		}
	}
}

func TestHistogramQuantileExactSmall(t *testing.T) {
	h := newHistogram()
	// Values small enough to land in exact unit buckets.
	for _, v := range []int64{1, 2, 3, 4, 5, 6, 7} {
		h.ObserveNs(v)
	}
	s := h.Snapshot()
	if s.P50Ns != 4 {
		t.Fatalf("p50 = %f, want 4", s.P50Ns)
	}
	if s.MinNs != 1 || s.MaxNs != 7 {
		t.Fatalf("min/max = %d/%d", s.MinNs, s.MaxNs)
	}
}

// TestConcurrentMetrics hammers all metric types from many goroutines;
// run under -race this proves the layer is data-race free and the totals
// prove no lost updates on counters and histograms.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry("race")
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hits")
			gauge := r.Gauge("depth")
			h := r.Histogram("lat")
			sub := r.Sub("worker")
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				gauge.Add(-1)
				h.ObserveNs(int64(i%1000 + 1))
				if i%1000 == 0 {
					sub.Counter("spill").Inc()
					_ = r.Snapshot() // concurrent reads must be safe too
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if v, _ := s.Get("hits"); v != goroutines*perG {
		t.Fatalf("hits = %d, want %d", v, goroutines*perG)
	}
	if v, _ := s.Get("depth"); v != 0 {
		t.Fatalf("depth = %d, want 0", v)
	}
	if h, _ := s.Hist("lat"); h.Count != goroutines*perG {
		t.Fatalf("lat count = %d, want %d", h.Count, goroutines*perG)
	}
	if v, _ := s.Get("worker", "spill"); v != goroutines*(perG/1000) {
		t.Fatalf("spill = %d", v)
	}
}

// BenchmarkNoopObserve measures the disabled-path cost: a nil histogram
// observe must be a branch, not an allocation.
func BenchmarkNoopObserve(b *testing.B) {
	var h *Histogram
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.ObserveNs(int64(i))
	}
}

func BenchmarkObserve(b *testing.B) {
	h := newHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i))
	}
}

// Package topo provides network topology graphs and the named topologies
// of the paper's evaluation (Table 2): the Internet2 backbone, a
// parameterized Fabric/Clos (the LNet stand-in), k-ary fat trees
// (Appendix A's pod-add analysis), and synthetic stand-ins for the
// Stanford and Airtel datasets.
package topo

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fib"
)

// NodeID identifies a node; it doubles as the fib.DeviceID of the node's
// forwarding table.
type NodeID = fib.DeviceID

// Role classifies a node's function in a structured topology.
type Role uint8

// Node roles.
const (
	RoleSwitch Role = iota // generic switch/router
	RoleTor                // rack switch that owns prefixes
	RoleAgg                // pod aggregation/fabric switch
	RoleSpine              // spine/core switch
)

func (r Role) String() string {
	switch r {
	case RoleTor:
		return "tor"
	case RoleAgg:
		return "agg"
	case RoleSpine:
		return "spine"
	default:
		return "switch"
	}
}

// Node is one network device.
type Node struct {
	ID   NodeID
	Name string
	Role Role
	Pod  int // pod index for fabric/fat-tree nodes, -1 otherwise
}

// Graph is an undirected multigraph of network devices. The zero value is
// not usable; call New.
type Graph struct {
	nodes  []Node
	byName map[string]NodeID
	adj    map[NodeID][]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID), adj: make(map[NodeID][]NodeID)}
}

// AddNode adds a node and returns its ID. Names must be unique.
func (g *Graph) AddNode(name string, role Role, pod int) NodeID {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node %q", name))
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Role: role, Pod: pod})
	g.byName[name] = id
	return id
}

// AddLink adds an undirected link between a and b (idempotent).
func (g *Graph) AddLink(a, b NodeID) {
	if a == b {
		panic("topo: self link")
	}
	if g.HasLink(a, b) {
		return
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// RemoveLink removes the undirected link between a and b if present.
func (g *Graph) RemoveLink(a, b NodeID) {
	g.adj[a] = without(g.adj[a], b)
	g.adj[b] = without(g.adj[b], a)
}

func without(s []NodeID, x NodeID) []NodeID {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// HasLink reports whether a—b exists.
func (g *Graph) HasLink(a, b NodeID) bool {
	for _, v := range g.adj[a] {
		if v == b {
			return true
		}
	}
	return false
}

// N reports the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// NumLinks reports the number of undirected links.
func (g *Graph) NumLinks() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns all nodes in ID order. Callers must not mutate it.
func (g *Graph) Nodes() []Node { return g.nodes }

// ByName resolves a node name.
func (g *Graph) ByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// MustByName resolves a node name or panics.
func (g *Graph) MustByName(name string) NodeID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return id
}

// Neighbors returns a's neighbor list (sorted, stable). Callers must not
// mutate it.
func (g *Graph) Neighbors(a NodeID) []NodeID { return g.adj[a] }

// NodesByRole returns the IDs of nodes with the given role, sorted.
func (g *Graph) NodesByRole(role Role) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Role == role {
			out = append(out, n.ID)
		}
	}
	return out
}

// Links enumerates each undirected link once as an (a, b) pair with a < b.
func (g *Graph) Links() [][2]NodeID {
	var out [][2]NodeID
	for a, nbrs := range g.adj {
		for _, b := range nbrs {
			if a < b {
				out = append(out, [2]NodeID{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nodes = append([]Node(nil), g.nodes...)
	for name, id := range g.byName {
		c.byName[name] = id
	}
	for id, nbrs := range g.adj {
		c.adj[id] = append([]NodeID(nil), nbrs...)
	}
	return c
}

// DistancesFrom computes hop distances from src via BFS; unreachable
// nodes get -1.
func (g *Graph) DistancesFrom(src NodeID) []int {
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// NextHopsToward returns, for every node u, the neighbors of u on a
// shortest path toward dst (the ECMP next-hop set); empty for dst itself
// and for nodes that cannot reach dst. Next hops are sorted for
// determinism.
func (g *Graph) NextHopsToward(dst NodeID) [][]NodeID {
	dist := g.DistancesFrom(dst)
	out := make([][]NodeID, len(g.nodes))
	for _, n := range g.nodes {
		u := n.ID
		if u == dst || dist[u] < 0 {
			continue
		}
		for _, v := range g.adj[u] {
			if dist[v] >= 0 && dist[v] == dist[u]-1 {
				out[u] = append(out[u], v)
			}
		}
		sort.Slice(out[u], func(i, j int) bool { return out[u][i] < out[u][j] })
	}
	return out
}

// Internet2 returns the 9-node Internet2/Abilene backbone used by the
// I2-* settings. Node names match Figure 8 of the paper; the link set
// includes the chic—atla and chic—kans links whose failures drive the
// CE2D experiments.
func Internet2() *Graph {
	g := New()
	names := []string{"seat", "salt", "losa", "hous", "kans", "chic", "atla", "wash", "newy"}
	for _, n := range names {
		g.AddNode(n, RoleSwitch, -1)
	}
	links := [][2]string{
		{"seat", "salt"}, {"seat", "losa"}, {"losa", "salt"}, {"losa", "hous"},
		{"salt", "kans"}, {"hous", "kans"}, {"hous", "atla"}, {"kans", "chic"},
		{"chic", "newy"}, {"chic", "atla"}, {"chic", "wash"}, {"atla", "wash"},
		{"newy", "wash"}, {"kans", "atla"},
	}
	for _, l := range links {
		g.AddLink(g.MustByName(l[0]), g.MustByName(l[1]))
	}
	return g
}

// FabricParams sizes a 3-tier Fabric/Clos topology (the LNet stand-in,
// following the data-center fabric architecture the paper's LNet uses).
type FabricParams struct {
	Pods        int // number of pods
	TorsPerPod  int // rack switches per pod
	AggsPerPod  int // fabric (aggregation) switches per pod
	SpinePlanes int // spine planes; must equal AggsPerPod
	SpinePer    int // spine switches per plane
}

// DefaultFabric is a laptop-scale LNet: 8 pods × (6 ToR + 4 agg) + 4×4
// spines = 96 switches.
var DefaultFabric = FabricParams{Pods: 8, TorsPerPod: 6, AggsPerPod: 4, SpinePlanes: 4, SpinePer: 4}

// Fabric builds a 3-tier Clos: every ToR connects to every aggregation
// switch in its pod; aggregation switch j of every pod connects to all
// spine switches of plane j.
func Fabric(p FabricParams) *Graph {
	if p.SpinePlanes != p.AggsPerPod {
		panic("topo: SpinePlanes must equal AggsPerPod")
	}
	g := New()
	spines := make([][]NodeID, p.SpinePlanes)
	for pl := 0; pl < p.SpinePlanes; pl++ {
		for s := 0; s < p.SpinePer; s++ {
			spines[pl] = append(spines[pl], g.AddNode(fmt.Sprintf("spine-%d-%d", pl, s), RoleSpine, -1))
		}
	}
	for pod := 0; pod < p.Pods; pod++ {
		aggs := make([]NodeID, p.AggsPerPod)
		for a := 0; a < p.AggsPerPod; a++ {
			aggs[a] = g.AddNode(fmt.Sprintf("agg-%d-%d", pod, a), RoleAgg, pod)
			for _, s := range spines[a] {
				g.AddLink(aggs[a], s)
			}
		}
		for t := 0; t < p.TorsPerPod; t++ {
			tor := g.AddNode(fmt.Sprintf("tor-%d-%d", pod, t), RoleTor, pod)
			for _, a := range aggs {
				g.AddLink(tor, a)
			}
		}
	}
	return g
}

// FatTree builds the canonical k-ary fat tree: (k/2)² core switches, k
// pods of k/2 aggregation and k/2 edge switches. k must be even.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic("topo: fat-tree k must be even and ≥ 2")
	}
	g := New()
	h := k / 2
	core := make([][]NodeID, h) // core group j connects to agg j of each pod
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			core[j] = append(core[j], g.AddNode(fmt.Sprintf("core-%d-%d", j, i), RoleSpine, -1))
		}
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]NodeID, h)
		for j := 0; j < h; j++ {
			aggs[j] = g.AddNode(fmt.Sprintf("agg-%d-%d", pod, j), RoleAgg, pod)
			for _, c := range core[j] {
				g.AddLink(aggs[j], c)
			}
		}
		for e := 0; e < h; e++ {
			edge := g.AddNode(fmt.Sprintf("edge-%d-%d", pod, e), RoleTor, pod)
			for _, a := range aggs {
				g.AddLink(edge, a)
			}
		}
	}
	return g
}

// randomConnected builds a deterministic "ring plus random chords" graph,
// the stand-in shape for datasets we cannot redistribute.
func randomConnected(prefix string, n, links int, seed int64) *Graph {
	if links < n {
		panic("topo: need at least n links for ring construction")
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("%s%02d", prefix, i), RoleSwitch, -1)
	}
	for i := 0; i < n; i++ {
		g.AddLink(NodeID(i), NodeID((i+1)%n))
	}
	rng := rand.New(rand.NewSource(seed))
	for g.NumLinks() < links {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a != b && !g.HasLink(a, b) {
			g.AddLink(a, b)
		}
	}
	return g
}

// Stanford returns a synthetic 16-node stand-in for the Stanford backbone
// dataset (16 nodes / 37 adjacencies in Table 2).
func Stanford() *Graph { return randomConnected("sw", 16, 19, 160) }

// Airtel returns a synthetic 68-node stand-in for the Airtel dataset
// (68 nodes / 260 adjacencies in Table 2).
func Airtel() *Graph { return randomConnected("rt", 68, 130, 680) }

package topo

import (
	"testing"
)

func TestGraphBasics(t *testing.T) {
	g := New()
	a := g.AddNode("a", RoleSwitch, -1)
	b := g.AddNode("b", RoleTor, 0)
	c := g.AddNode("c", RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c)
	g.AddLink(a, b) // idempotent
	if g.N() != 3 || g.NumLinks() != 2 {
		t.Fatalf("N=%d links=%d, want 3/2", g.N(), g.NumLinks())
	}
	if !g.HasLink(a, b) || !g.HasLink(b, a) {
		t.Error("link not symmetric")
	}
	if g.HasLink(a, c) {
		t.Error("phantom link")
	}
	if id, ok := g.ByName("b"); !ok || id != b {
		t.Error("ByName failed")
	}
	if g.Node(b).Role != RoleTor || g.Node(b).Pod != 0 {
		t.Error("node metadata lost")
	}
	g.RemoveLink(a, b)
	if g.HasLink(a, b) || g.NumLinks() != 1 {
		t.Error("RemoveLink failed")
	}
	g.RemoveLink(a, c) // absent: no-op
	if len(g.NodesByRole(RoleTor)) != 1 {
		t.Error("NodesByRole wrong")
	}
}

func TestGraphPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dup node":  func() { g := New(); g.AddNode("x", RoleSwitch, -1); g.AddNode("x", RoleSwitch, -1) },
		"self link": func() { g := New(); a := g.AddNode("x", RoleSwitch, -1); g.AddLink(a, a) },
		"unknown":   func() { New().MustByName("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDistancesAndNextHops(t *testing.T) {
	// a—b—c—d plus a—c chord: toward d, a should use c (dist 2 vs 3 via b).
	g := New()
	a := g.AddNode("a", RoleSwitch, -1)
	b := g.AddNode("b", RoleSwitch, -1)
	c := g.AddNode("c", RoleSwitch, -1)
	d := g.AddNode("d", RoleSwitch, -1)
	iso := g.AddNode("iso", RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c)
	g.AddLink(c, d)
	g.AddLink(a, c)
	dist := g.DistancesFrom(d)
	if dist[a] != 2 || dist[b] != 2 || dist[c] != 1 || dist[d] != 0 {
		t.Fatalf("distances = %v", dist)
	}
	if dist[iso] != -1 {
		t.Error("isolated node should be unreachable")
	}
	nh := g.NextHopsToward(d)
	if len(nh[a]) != 1 || nh[a][0] != c {
		t.Errorf("nexthops(a→d) = %v, want [c]", nh[a])
	}
	if len(nh[d]) != 0 {
		t.Error("dst must have no next hops")
	}
	if len(nh[iso]) != 0 {
		t.Error("unreachable node must have no next hops")
	}
}

func TestNextHopsECMP(t *testing.T) {
	// Diamond: s—{m1,m2}—t gives s two equal-cost next hops.
	g := New()
	s := g.AddNode("s", RoleSwitch, -1)
	m1 := g.AddNode("m1", RoleSwitch, -1)
	m2 := g.AddNode("m2", RoleSwitch, -1)
	tt := g.AddNode("t", RoleSwitch, -1)
	g.AddLink(s, m1)
	g.AddLink(s, m2)
	g.AddLink(m1, tt)
	g.AddLink(m2, tt)
	nh := g.NextHopsToward(tt)
	if len(nh[s]) != 2 {
		t.Fatalf("ECMP set = %v, want 2 next hops", nh[s])
	}
}

func TestInternet2(t *testing.T) {
	g := Internet2()
	if g.N() != 9 {
		t.Fatalf("Internet2 has %d nodes, want 9", g.N())
	}
	if g.NumLinks() != 14 {
		t.Fatalf("Internet2 has %d links, want 14 (28 directed)", g.NumLinks())
	}
	// The two links the CE2D experiments fail must exist.
	if !g.HasLink(g.MustByName("chic"), g.MustByName("atla")) {
		t.Error("missing chic—atla")
	}
	if !g.HasLink(g.MustByName("chic"), g.MustByName("kans")) {
		t.Error("missing chic—kans")
	}
	// Connected.
	dist := g.DistancesFrom(0)
	for i, d := range dist {
		if d < 0 {
			t.Errorf("node %d unreachable", i)
		}
	}
}

func TestFabric(t *testing.T) {
	p := FabricParams{Pods: 4, TorsPerPod: 3, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 2}
	g := Fabric(p)
	wantNodes := 2*2 + 4*(3+2)
	if g.N() != wantNodes {
		t.Fatalf("fabric has %d nodes, want %d", g.N(), wantNodes)
	}
	// links: per pod 3*2 tor-agg + 2*2 agg-spine = 10; total 40.
	if g.NumLinks() != 40 {
		t.Fatalf("fabric has %d links, want 40", g.NumLinks())
	}
	tors := g.NodesByRole(RoleTor)
	if len(tors) != 12 {
		t.Fatalf("fabric has %d ToRs, want 12", len(tors))
	}
	// Any ToR can reach any other ToR in ≤ 4 hops (tor-agg-spine-agg-tor).
	dist := g.DistancesFrom(tors[0])
	for _, tor := range tors {
		if dist[tor] < 0 || dist[tor] > 4 {
			t.Errorf("ToR %d at distance %d", tor, dist[tor])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched planes should panic")
		}
	}()
	Fabric(FabricParams{Pods: 1, TorsPerPod: 1, AggsPerPod: 2, SpinePlanes: 1, SpinePer: 1})
}

func TestFatTree(t *testing.T) {
	g := FatTree(4)
	// k=4: 4 core, 4 pods × (2 agg + 2 edge) = 20 nodes.
	if g.N() != 20 {
		t.Fatalf("fat-tree(4) has %d nodes, want 20", g.N())
	}
	// links: core-agg 4 pods × 2 agg × 2 core = 16; edge-agg 4 pods × 4 = 16.
	if g.NumLinks() != 32 {
		t.Fatalf("fat-tree(4) has %d links, want 32", g.NumLinks())
	}
	defer func() {
		if recover() == nil {
			t.Error("odd k should panic")
		}
	}()
	FatTree(3)
}

func TestSyntheticStandIns(t *testing.T) {
	s := Stanford()
	if s.N() != 16 {
		t.Errorf("Stanford N=%d", s.N())
	}
	a := Airtel()
	if a.N() != 68 {
		t.Errorf("Airtel N=%d", a.N())
	}
	for name, g := range map[string]*Graph{"stanford": s, "airtel": a} {
		dist := g.DistancesFrom(0)
		for i, d := range dist {
			if d < 0 {
				t.Errorf("%s: node %d unreachable", name, i)
			}
		}
	}
	// Deterministic across calls.
	if Stanford().NumLinks() != s.NumLinks() {
		t.Error("Stanford not deterministic")
	}
}

func TestLinksEnumeration(t *testing.T) {
	g := Internet2()
	links := g.Links()
	if len(links) != g.NumLinks() {
		t.Fatalf("Links() returned %d, want %d", len(links), g.NumLinks())
	}
	for _, l := range links {
		if l[0] >= l[1] {
			t.Fatalf("link %v not normalized", l)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Internet2()
	c := g.Clone()
	c.RemoveLink(c.MustByName("chic"), c.MustByName("kans"))
	if !g.HasLink(g.MustByName("chic"), g.MustByName("kans")) {
		t.Error("Clone shares adjacency state")
	}
}

package spec

import "repro/internal/topo"

// Machine is the automaton abstraction the verification graph consumes:
// a deterministic machine over device symbols. Step returning Dead means
// no extension of the consumed sequence can be accepted.
//
// A plain path regular expression compiles to a *DFA; the set-level
// operators of Appendix B's grammar (P and P, P or P, not P) compile to
// combinator machines over their operands.
type Machine interface {
	// Start is the initial state.
	Start() int
	// Step consumes one device; Dead is absorbing.
	Step(state int, n topo.NodeID) int
	// Accepting reports whether the state accepts.
	Accepting(state int) bool
}

var _ Machine = (*DFA)(nil)

// MatchPathM runs a device sequence through any machine.
func MatchPathM(m Machine, path []topo.NodeID) bool {
	st := m.Start()
	for _, n := range path {
		st = m.Step(st, n)
		if st == Dead {
			return false
		}
	}
	return m.Accepting(st)
}

// notMachine complements its operand. The operand's Dead state (no
// extension matches) becomes an accept-everything sink, encoded as the
// distinguished state deadAccept; a complement machine itself never goes
// Dead (every sequence either matches the complement or may still).
type notMachine struct {
	inner Machine
}

// deadAccept is notMachine's encoding of "the operand died": every
// continuation is accepted.
const deadAccept = -2

// Not returns the complement machine: it accepts exactly the device
// sequences the operand rejects. Double complement flattens to the
// operand — required for correctness, since a notMachine's deadAccept
// sentinel must never double as an operand state.
func Not(m Machine) Machine {
	if nm, ok := m.(notMachine); ok {
		return nm.inner
	}
	return notMachine{m}
}

func (n notMachine) Start() int { return n.inner.Start() }

func (n notMachine) Step(state int, nd topo.NodeID) int {
	if state == deadAccept {
		return deadAccept
	}
	next := n.inner.Step(state, nd)
	if next == Dead {
		return deadAccept
	}
	return next
}

func (n notMachine) Accepting(state int) bool {
	return state == deadAccept || !n.inner.Accepting(state)
}

// pairMachine is the product of two machines with a boolean combination
// of their acceptance (conjunction for "and", disjunction for "or").
// Pair states are interned to small integers.
type pairMachine struct {
	a, b Machine
	conj bool // true: accept = both; false: accept = either

	pairs  [][2]int
	ids    map[[2]int]int
	starts int
}

// And returns the intersection machine: sequences accepted by both.
func And(a, b Machine) Machine { return newPair(a, b, true) }

// Or returns the union machine: sequences accepted by either.
func Or(a, b Machine) Machine { return newPair(a, b, false) }

func newPair(a, b Machine, conj bool) *pairMachine {
	p := &pairMachine{a: a, b: b, conj: conj, ids: make(map[[2]int]int)}
	p.starts = p.intern(a.Start(), b.Start())
	return p
}

func (p *pairMachine) intern(sa, sb int) int {
	key := [2]int{sa, sb}
	if id, ok := p.ids[key]; ok {
		return id
	}
	id := len(p.pairs)
	p.pairs = append(p.pairs, key)
	p.ids[key] = id
	return id
}

func (p *pairMachine) Start() int { return p.starts }

func (p *pairMachine) Step(state int, n topo.NodeID) int {
	if state == Dead {
		return Dead
	}
	pair := p.pairs[state]
	sa, sb := pair[0], pair[1]
	// Dead sides stay dead; acceptsStuck tracks them explicitly.
	if sa != Dead {
		sa = p.a.Step(sa, n)
	}
	if sb != Dead {
		sb = p.b.Step(sb, n)
	}
	if p.conj {
		if sa == Dead || sb == Dead {
			return Dead
		}
	} else {
		if sa == Dead && sb == Dead {
			return Dead
		}
	}
	return p.intern(sa, sb)
}

func (p *pairMachine) Accepting(state int) bool {
	if state == Dead {
		return false
	}
	pair := p.pairs[state]
	accA := pair[0] != Dead && p.a.Accepting(pair[0])
	accB := pair[1] != Dead && p.b.Accepting(pair[1])
	if p.conj {
		return accA && accB
	}
	return accA || accB
}

// ---- Set-level AST nodes and compilation ----

// Set-level nodes combine whole path sets (Appendix B: P and P, P or P,
// not P). They cannot appear inside a regex; the parser builds them
// above the regex layer.
type setAndNode struct{ l, r node }
type setOrNode struct{ l, r node }
type setNotNode struct{ inner node }

// coverNode marks a coverage requirement (Appendix B: "cover P" — every
// path in P must exist). It is a top-level marker; detection uses
// ce2d.Coverage rather than a machine.
type coverNode struct{ inner node }

// compile on set nodes must never be reached through the NFA builder.
func (setAndNode) compile(*builder) frag { panic("spec: set operator inside regex") }
func (setOrNode) compile(*builder) frag  { panic("spec: set operator inside regex") }
func (setNotNode) compile(*builder) frag { panic("spec: set operator inside regex") }
func (coverNode) compile(*builder) frag  { panic("spec: cover marker inside regex") }

// IsCover reports whether the expression is a coverage requirement and,
// if so, returns the covered path-set expression.
func (e *Expr) IsCover() (*Expr, bool) {
	if c, ok := e.root.(coverNode); ok {
		return &Expr{root: c.inner, src: e.src}, true
	}
	return nil, false
}

func hasCover(n node) bool {
	switch v := n.(type) {
	case coverNode:
		return true
	case setAndNode:
		return hasCover(v.l) || hasCover(v.r)
	case setOrNode:
		return hasCover(v.l) || hasCover(v.r)
	case setNotNode:
		return hasCover(v.inner)
	}
	return false
}

// HasSetOps reports whether the expression uses set-level operators; such
// expressions compile with CompileMachine, not CompileDFA.
func (e *Expr) HasSetOps() bool { return hasSetOps(e.root) }

func hasSetOps(n node) bool {
	switch v := n.(type) {
	case setAndNode, setOrNode, setNotNode, coverNode:
		return true
	case catNode:
		for _, p := range v.parts {
			if hasSetOps(p) {
				return true
			}
		}
	case altNode:
		for _, p := range v.parts {
			if hasSetOps(p) {
				return true
			}
		}
	case starNode:
		return hasSetOps(v.inner)
	case plusNode:
		return hasSetOps(v.inner)
	case optNode:
		return hasSetOps(v.inner)
	}
	return false
}

// CompileMachine compiles the full expression — including set-level
// operators — against a topology. For pure regexes it is equivalent to
// CompileDFA.
func (e *Expr) CompileMachine(g *topo.Graph, isDest func(topo.NodeID) bool) Machine {
	return compileMachine(e.root, e.src, g, isDest)
}

func compileMachine(n node, src string, g *topo.Graph, isDest func(topo.NodeID) bool) Machine {
	switch v := n.(type) {
	case setAndNode:
		return And(compileMachine(v.l, src, g, isDest), compileMachine(v.r, src, g, isDest))
	case setOrNode:
		return Or(compileMachine(v.l, src, g, isDest), compileMachine(v.r, src, g, isDest))
	case setNotNode:
		return Not(compileMachine(v.inner, src, g, isDest))
	case coverNode:
		panic("spec: cover requirements verify via ce2d.Coverage, not a machine")
	default:
		sub := &Expr{root: n, src: src}
		return sub.CompileDFA(g, isDest)
	}
}

package spec

import (
	"math/rand"
	"testing"

	"repro/internal/topo"
)

func TestSetOperatorParsing(t *testing.T) {
	for _, good := range []string{
		"a .* d and a .* b .* d",
		"a .* d or a .* c",
		"not a .* d",
		"not not a",
		"a and b or c",
		"(a b) and not (a c)",
	} {
		e, err := Parse(good)
		if err != nil {
			t.Errorf("Parse(%q): %v", good, err)
			continue
		}
		if !e.HasSetOps() {
			t.Errorf("%q should report set ops", good)
		}
	}
	if MustParse("a .* d").HasSetOps() {
		t.Error("pure regex misreported as set expression")
	}
	for _, bad := range []string{"and a", "a and", "not", "a or"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCompileDFARejectsSetOps(t *testing.T) {
	g := lineGraph()
	defer func() {
		if recover() == nil {
			t.Error("CompileDFA should panic on set operators")
		}
	}()
	MustParse("a and b").CompileDFA(g, nil)
}

func TestSetOperatorSemantics(t *testing.T) {
	g := lineGraph()
	cases := []struct {
		expr string
		path []string
		want bool
	}{
		// and: both must match.
		{"a .* e and .* c .*", []string{"a", "b", "c", "d", "e"}, true},
		{"a .* e and .* w .*", []string{"a", "b", "c", "d", "e"}, false},
		// or: either.
		{"a b or a c", []string{"a", "c"}, true},
		{"a b or a c", []string{"a", "d"}, false},
		// not: complement.
		{"not a .* e", []string{"a", "b"}, true},
		{"not a .* e", []string{"a", "b", "c", "d", "e"}, false},
		{"not a .* e", []string{"b", "c"}, true}, // operand dead ⇒ complement accepts
		// precedence: and binds tighter than or.
		{"a b and a c or a b", []string{"a", "b"}, true},
		// nesting.
		{"not (a .* e or a .* d)", []string{"a", "c"}, true},
		{"not (a .* e or a .* d)", []string{"a", "b", "c", "d"}, false},
		{"not not a b", []string{"a", "b"}, true},
		{"not not a b", []string{"a", "c"}, false},
	}
	for _, c := range cases {
		m := MustParse(c.expr).CompileMachine(g, nil)
		if got := MatchPathM(m, path(g, c.path...)); got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.expr, c.path, got, c.want)
		}
	}
}

// TestSetOperatorAlgebraRandom cross-checks the combinators against the
// boolean combination of the operands' own match results on random paths.
func TestSetOperatorAlgebraRandom(t *testing.T) {
	g := lineGraph()
	nodes := []string{"a", "b", "c", "d", "e", "w"}
	exprs := []string{"a .* e", ".* c .*", "a (b|c)* d", ". . ."}
	rng := rand.New(rand.NewSource(77))
	randPath := func() []topo.NodeID {
		n := 1 + rng.Intn(6)
		p := make([]topo.NodeID, n)
		for i := range p {
			p[i] = g.MustByName(nodes[rng.Intn(len(nodes))])
		}
		return p
	}
	for trial := 0; trial < 200; trial++ {
		ea := exprs[rng.Intn(len(exprs))]
		eb := exprs[rng.Intn(len(exprs))]
		ma := MustParse(ea).CompileMachine(g, nil)
		mb := MustParse(eb).CompileMachine(g, nil)
		and := MustParse(ea+" and "+eb).CompileMachine(g, nil)
		or := MustParse(ea+" or "+eb).CompileMachine(g, nil)
		nota := MustParse("not "+ea).CompileMachine(g, nil)
		p := randPath()
		ra, rb := MatchPathM(ma, p), MatchPathM(mb, p)
		if got := MatchPathM(and, p); got != (ra && rb) {
			t.Fatalf("(%q and %q) on %v = %v, want %v", ea, eb, p, got, ra && rb)
		}
		if got := MatchPathM(or, p); got != (ra || rb) {
			t.Fatalf("(%q or %q) on %v = %v, want %v", ea, eb, p, got, ra || rb)
		}
		if got := MatchPathM(nota, p); got != !ra {
			t.Fatalf("(not %q) on %v = %v, want %v", ea, p, got, !ra)
		}
	}
}

func TestReservedWordsRejectedAsHops(t *testing.T) {
	// A device literally named "and" cannot be referenced bare…
	if _, err := Parse("and"); err == nil {
		t.Error("bare reserved word accepted")
	}
	// …but the class form still works for such devices.
	g := topo.New()
	g.AddNode("and", topo.RoleSwitch, -1)
	m := MustParse("[name=and]").CompileMachine(g, nil)
	if !MatchPathM(m, []topo.NodeID{0}) {
		t.Error("[name=and] should match the device")
	}
}

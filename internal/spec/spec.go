// Package spec implements the declarative requirement specification
// language of the paper (Appendix B): path regular expressions over
// network devices. A requirement (packet_space, sources, path_set) means
// every packet in packet_space entering at a source must be forwarded
// along at least one device sequence matching the path expression.
//
// The expression grammar (a practical core of Figure 16):
//
//	expr  := alt
//	alt   := cat ('|' cat)*
//	cat   := rep+
//	rep   := atom ('*' | '+' | '?')?
//	atom  := IDENT            match the device with that name
//	       | '.'              match any device
//	       | '>'              match a destination-owner device
//	       | '[' class ']'    match any alternative in the class
//	       | '(' alt ')'      grouping
//	class := item ('|' item)*
//	item  := IDENT            device name
//	       | IDENT '=' IDENT  label test (role=tor, pod=3, name=x)
//
// Expressions compile to a Thompson NFA and then to a DFA determinized
// lazily over the node alphabet of a concrete topology; package reach
// builds the product verification graph from the DFA.
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/topo"
)

// Expr is a parsed path expression.
type Expr struct {
	root node
	src  string
}

// String returns the original expression text.
func (e *Expr) String() string { return e.src }

// ---- AST ----

type node interface{ compile(b *builder) frag }

type anyNode struct{}
type identNode struct{ name string }
type destNode struct{}
type classNode struct{ items []classItem }
type catNode struct{ parts []node }
type altNode struct{ parts []node }
type starNode struct{ inner node }
type plusNode struct{ inner node }
type optNode struct{ inner node }

type classItem struct {
	label string // empty = bare device name
	value string
}

// ---- Lexer ----

type token struct {
	kind tokenKind
	text string
}

type tokenKind uint8

const (
	tokIdent tokenKind = iota
	tokDot
	tokStar
	tokPlus
	tokQMark
	tokPipe
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokEquals
	tokDest
	tokEOF
)

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '.':
			toks = append(toks, token{tokDot, "."})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*"})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+"})
			i++
		case c == '?':
			toks = append(toks, token{tokQMark, "?"})
			i++
		case c == '|':
			toks = append(toks, token{tokPipe, "|"})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "["})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]"})
			i++
		case c == '=':
			toks = append(toks, token{tokEquals, "="})
			i++
		case c == '>':
			toks = append(toks, token{tokDest, ">"})
			i++
		case c == '^' || c == '$':
			// Anchors are implicit (paths always match end to end);
			// accepted for compatibility and ignored.
			i++
		case isIdentChar(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("spec: unexpected character %q at offset %d", c, i)
		}
	}
	return append(toks, token{tokEOF, ""}), nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// ---- Parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eat(k tokenKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

// Parse parses a path expression.
func Parse(s string) (*Expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.setExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("spec: trailing input at token %q", p.peek().text)
	}
	if err := validateNesting(root, false); err != nil {
		return nil, err
	}
	return &Expr{root: root, src: s}, nil
}

// validateNesting rejects set-level operators nested inside a regex
// context: path sets can be combined, but a set is not a hop.
func validateNesting(n node, inRegex bool) error {
	switch v := n.(type) {
	case setAndNode:
		if inRegex {
			return fmt.Errorf("spec: 'and' cannot appear inside a path expression")
		}
		if err := validateNesting(v.l, false); err != nil {
			return err
		}
		return validateNesting(v.r, false)
	case setOrNode:
		if inRegex {
			return fmt.Errorf("spec: 'or' cannot appear inside a path expression")
		}
		if err := validateNesting(v.l, false); err != nil {
			return err
		}
		return validateNesting(v.r, false)
	case setNotNode:
		if inRegex {
			return fmt.Errorf("spec: 'not' cannot appear inside a path expression")
		}
		return validateNesting(v.inner, false)
	case coverNode:
		if inRegex {
			return fmt.Errorf("spec: 'cover' cannot appear inside a path expression")
		}
		if hasCover(v.inner) {
			return fmt.Errorf("spec: nested 'cover'")
		}
		return validateNesting(v.inner, false)
	case catNode:
		for _, c := range v.parts {
			if err := validateNesting(c, true); err != nil {
				return err
			}
		}
	case altNode:
		for _, c := range v.parts {
			if err := validateNesting(c, true); err != nil {
				return err
			}
		}
	case starNode:
		return validateNesting(v.inner, true)
	case plusNode:
		return validateNesting(v.inner, true)
	case optNode:
		return validateNesting(v.inner, true)
	}
	return nil
}

// MustParse is Parse that panics on error, for statically known expressions.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// Reserved words introduce the set-level operators of Appendix B's
// grammar; they cannot be used as device names in expressions.
func isReserved(t token) bool {
	return t.kind == tokIdent &&
		(t.text == "and" || t.text == "or" || t.text == "not" || t.text == "cover")
}

// setExpr := setAnd ('or' setAnd)*
func (p *parser) setExpr() (node, error) {
	l, err := p.setAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		r, err := p.setAnd()
		if err != nil {
			return nil, err
		}
		l = setOrNode{l, r}
	}
	return l, nil
}

// setAnd := setUnary ('and' setUnary)*
func (p *parser) setAnd() (node, error) {
	l, err := p.setUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		r, err := p.setUnary()
		if err != nil {
			return nil, err
		}
		l = setAndNode{l, r}
	}
	return l, nil
}

// setUnary := 'not' setUnary | 'cover' setUnary | alt
func (p *parser) setUnary() (node, error) {
	if p.peek().kind == tokIdent && p.peek().text == "not" {
		p.next()
		inner, err := p.setUnary()
		if err != nil {
			return nil, err
		}
		return setNotNode{inner}, nil
	}
	if p.peek().kind == tokIdent && p.peek().text == "cover" {
		p.next()
		inner, err := p.setUnary()
		if err != nil {
			return nil, err
		}
		return coverNode{inner}, nil
	}
	return p.alt()
}

func (p *parser) alt() (node, error) {
	first, err := p.cat()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for p.eat(tokPipe) {
		n, err := p.cat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return altNode{parts}, nil
}

func (p *parser) cat() (node, error) {
	var parts []node
	for {
		if isReserved(p.peek()) {
			if len(parts) == 0 {
				return nil, fmt.Errorf("spec: %q is a reserved word", p.peek().text)
			}
			if len(parts) == 1 {
				return parts[0], nil
			}
			return catNode{parts}, nil
		}
		switch p.peek().kind {
		case tokIdent, tokDot, tokDest, tokLBracket, tokLParen:
			n, err := p.rep()
			if err != nil {
				return nil, err
			}
			parts = append(parts, n)
		default:
			if len(parts) == 0 {
				return nil, fmt.Errorf("spec: expected a hop, found %q", p.peek().text)
			}
			if len(parts) == 1 {
				return parts[0], nil
			}
			return catNode{parts}, nil
		}
	}
}

func (p *parser) rep() (node, error) {
	a, err := p.atom()
	if err != nil {
		return nil, err
	}
	switch {
	case p.eat(tokStar):
		return starNode{a}, nil
	case p.eat(tokPlus):
		return plusNode{a}, nil
	case p.eat(tokQMark):
		return optNode{a}, nil
	}
	return a, nil
}

func (p *parser) atom() (node, error) {
	switch t := p.next(); t.kind {
	case tokIdent:
		return identNode{t.text}, nil
	case tokDot:
		return anyNode{}, nil
	case tokDest:
		return destNode{}, nil
	case tokLParen:
		// A parenthesized group may be a regex group or a nested
		// set-level expression; Parse validates that set operators do
		// not end up inside a regex context.
		inner, err := p.setExpr()
		if err != nil {
			return nil, err
		}
		if !p.eat(tokRParen) {
			return nil, fmt.Errorf("spec: missing ')'")
		}
		return inner, nil
	case tokLBracket:
		var items []classItem
		for {
			id := p.next()
			if id.kind != tokIdent {
				return nil, fmt.Errorf("spec: expected identifier in class, found %q", id.text)
			}
			it := classItem{value: id.text}
			if p.eat(tokEquals) {
				val := p.next()
				if val.kind != tokIdent {
					return nil, fmt.Errorf("spec: expected value after '=', found %q", val.text)
				}
				it = classItem{label: id.text, value: val.text}
			}
			items = append(items, it)
			if p.eat(tokRBracket) {
				return classNode{items}, nil
			}
			if !p.eat(tokPipe) {
				return nil, fmt.Errorf("spec: expected '|' or ']' in class")
			}
		}
	default:
		return nil, fmt.Errorf("spec: unexpected token %q", t.text)
	}
}

// ---- Hop predicates ----

// hopPred decides whether an expression hop matches a concrete node.
type hopPred func(n topo.Node, isDest bool) bool

func predOf(n node) hopPred {
	switch v := n.(type) {
	case anyNode:
		return func(topo.Node, bool) bool { return true }
	case identNode:
		return func(nd topo.Node, _ bool) bool { return nd.Name == v.name }
	case destNode:
		return func(_ topo.Node, isDest bool) bool { return isDest }
	case classNode:
		return func(nd topo.Node, isDest bool) bool {
			for _, it := range v.items {
				if matchItem(it, nd, isDest) {
					return true
				}
			}
			return false
		}
	default:
		panic("spec: predOf on composite node")
	}
}

func matchItem(it classItem, nd topo.Node, isDest bool) bool {
	switch it.label {
	case "":
		return nd.Name == it.value
	case "name":
		return nd.Name == it.value
	case "role":
		return nd.Role.String() == it.value
	case "pod":
		p, err := strconv.Atoi(it.value)
		return err == nil && nd.Pod == p
	case "dest":
		return isDest == (it.value == "true")
	default:
		return false
	}
}

// ---- Thompson NFA ----

type nfaState struct {
	// out transitions guarded by a hop predicate.
	edges []nfaEdge
	eps   []int
}

type nfaEdge struct {
	pred hopPred
	to   int
}

type builder struct {
	states []nfaState
}

// frag is an NFA fragment with one start and one accept state.
type frag struct {
	start, accept int
}

func (b *builder) newState() int {
	b.states = append(b.states, nfaState{})
	return len(b.states) - 1
}

func (b *builder) edge(from, to int, p hopPred) {
	b.states[from].edges = append(b.states[from].edges, nfaEdge{p, to})
}

func (b *builder) eps(from, to int) {
	b.states[from].eps = append(b.states[from].eps, to)
}

func (n anyNode) compile(b *builder) frag   { return b.leaf(predOf(n)) }
func (n identNode) compile(b *builder) frag { return b.leaf(predOf(n)) }
func (n destNode) compile(b *builder) frag  { return b.leaf(predOf(n)) }
func (n classNode) compile(b *builder) frag { return b.leaf(predOf(n)) }

func (b *builder) leaf(p hopPred) frag {
	s, a := b.newState(), b.newState()
	b.edge(s, a, p)
	return frag{s, a}
}

func (n catNode) compile(b *builder) frag {
	f := n.parts[0].compile(b)
	for _, part := range n.parts[1:] {
		g := part.compile(b)
		b.eps(f.accept, g.start)
		f = frag{f.start, g.accept}
	}
	return f
}

func (n altNode) compile(b *builder) frag {
	s, a := b.newState(), b.newState()
	for _, part := range n.parts {
		g := part.compile(b)
		b.eps(s, g.start)
		b.eps(g.accept, a)
	}
	return frag{s, a}
}

func (n starNode) compile(b *builder) frag {
	s, a := b.newState(), b.newState()
	g := n.inner.compile(b)
	b.eps(s, g.start)
	b.eps(s, a)
	b.eps(g.accept, g.start)
	b.eps(g.accept, a)
	return frag{s, a}
}

func (n plusNode) compile(b *builder) frag {
	g := n.inner.compile(b)
	a := b.newState()
	b.eps(g.accept, g.start)
	b.eps(g.accept, a)
	return frag{g.start, a}
}

func (n optNode) compile(b *builder) frag {
	s, a := b.newState(), b.newState()
	g := n.inner.compile(b)
	b.eps(s, g.start)
	b.eps(s, a)
	b.eps(g.accept, a)
	return frag{s, a}
}

// ---- Lazy DFA over a topology's node alphabet ----

// DFA is the expression determinized against a concrete topology. States
// are created lazily as transitions are queried; transitions are memoized.
// The Dead state (-1) means no suffix can match.
type DFA struct {
	g      *topo.Graph
	isDest func(topo.NodeID) bool

	nfa    []nfaState
	start  int // DFA start state id
	sets   []([]int)
	setIDs map[string]int
	accept []bool
	naccpt int // NFA accept state
	trans  map[transKey]int
}

type transKey struct {
	state int
	node  topo.NodeID
}

// Dead is the DFA's reject state.
const Dead = -1

// CompileDFA determinizes the expression against a topology. isDest marks
// the nodes the '>' hop matches (may be nil when the expression does not
// use '>').
func (e *Expr) CompileDFA(g *topo.Graph, isDest func(topo.NodeID) bool) *DFA {
	if e.HasSetOps() {
		panic("spec: expression uses set operators; use CompileMachine")
	}
	if isDest == nil {
		isDest = func(topo.NodeID) bool { return false }
	}
	b := &builder{}
	f := e.root.compile(b)
	d := &DFA{
		g:      g,
		isDest: isDest,
		nfa:    b.states,
		setIDs: make(map[string]int),
		naccpt: f.accept,
		trans:  make(map[transKey]int),
	}
	d.start = d.internSet(d.closure([]int{f.start}))
	return d
}

// Start returns the DFA start state.
func (d *DFA) Start() int { return d.start }

// NumStates reports how many DFA states have been materialized so far.
func (d *DFA) NumStates() int { return len(d.sets) }

// Accepting reports whether the state is accepting.
func (d *DFA) Accepting(state int) bool {
	return state != Dead && d.accept[state]
}

// Step advances the DFA by consuming the given device. It returns Dead if
// no continuation can match.
func (d *DFA) Step(state int, n topo.NodeID) int {
	if state == Dead {
		return Dead
	}
	key := transKey{state, n}
	if next, ok := d.trans[key]; ok {
		return next
	}
	nd := d.g.Node(n)
	isDest := d.isDest(n)
	var next []int
	seen := map[int]bool{}
	for _, s := range d.sets[state] {
		for _, e := range d.nfa[s].edges {
			if !seen[e.to] && e.pred(nd, isDest) {
				seen[e.to] = true
				next = append(next, e.to)
			}
		}
	}
	res := Dead
	if len(next) > 0 {
		res = d.internSet(d.closure(next))
	}
	d.trans[key] = res
	return res
}

// closure returns the ε-closure of the NFA state set, sorted.
func (d *DFA) closure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack, d.nfa[s].eps...)
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortInts(out)
	return out
}

func (d *DFA) internSet(set []int) int {
	var sb strings.Builder
	for _, s := range set {
		fmt.Fprintf(&sb, "%d,", s)
	}
	key := sb.String()
	if id, ok := d.setIDs[key]; ok {
		return id
	}
	id := len(d.sets)
	d.sets = append(d.sets, set)
	acc := false
	for _, s := range set {
		if s == d.naccpt {
			acc = true
			break
		}
	}
	d.accept = append(d.accept, acc)
	d.setIDs[key] = id
	return id
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MatchPath reports whether the device sequence satisfies the expression,
// for tests and offline checks.
func (d *DFA) MatchPath(path []topo.NodeID) bool {
	st := d.start
	for _, n := range path {
		st = d.Step(st, n)
		if st == Dead {
			return false
		}
	}
	return d.Accepting(st)
}

// Requirement couples a path expression with its sources and a
// human-readable name; the packet space is bound separately (per EC).
type Requirement struct {
	Name    string
	Sources []topo.NodeID
	Expr    *Expr
}

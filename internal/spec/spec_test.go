package spec

import (
	"strings"
	"testing"

	"repro/internal/topo"
)

// lineGraph builds a—b—c—d—e plus w hanging off c, named as in waypoint
// examples.
func lineGraph() *topo.Graph {
	g := topo.New()
	for _, n := range []string{"a", "b", "c", "d", "e", "w"} {
		g.AddNode(n, topo.RoleSwitch, -1)
	}
	link := func(x, y string) { g.AddLink(g.MustByName(x), g.MustByName(y)) }
	link("a", "b")
	link("b", "c")
	link("c", "d")
	link("d", "e")
	link("c", "w")
	return g
}

func path(g *topo.Graph, names ...string) []topo.NodeID {
	out := make([]topo.NodeID, len(names))
	for i, n := range names {
		out[i] = g.MustByName(n)
	}
	return out
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "a |", "(a", "[a", "[a=", "a)", "[]", "*", "a [x&y]", "a £",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("(")
}

func TestBasicMatching(t *testing.T) {
	g := lineGraph()
	cases := []struct {
		expr string
		path []string
		want bool
	}{
		{"a b c", []string{"a", "b", "c"}, true},
		{"a b c", []string{"a", "b"}, false},
		{"a b c", []string{"a", "b", "c", "d"}, false},
		{"a .* e", []string{"a", "b", "c", "d", "e"}, true},
		{"a .* e", []string{"a", "e"}, true},
		{"a .* e", []string{"b", "c", "e"}, false},
		{"a .* [w|d] .* e", []string{"a", "b", "c", "d", "e"}, true},
		{"a .* [w|d] .* e", []string{"a", "b", "c", "e"}, false},
		{"a b? c", []string{"a", "c"}, true},
		{"a b? c", []string{"a", "b", "c"}, true},
		{"a b+ c", []string{"a", "c"}, false},
		{"a b+ c", []string{"a", "b", "b", "c"}, true},
		{"a (b|c) d", []string{"a", "c", "d"}, true},
		{"a (b|c) d", []string{"a", "d", "d"}, false},
		{"^ a .* e $", []string{"a", "e"}, true}, // anchors ignored
	}
	for _, c := range cases {
		e, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.expr, err)
		}
		d := e.CompileDFA(g, nil)
		if got := d.MatchPath(path(g, c.path...)); got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.expr, c.path, got, c.want)
		}
	}
}

func TestLabelClasses(t *testing.T) {
	g := topo.New()
	g.AddNode("t0", topo.RoleTor, 0)
	g.AddNode("t1", topo.RoleTor, 1)
	g.AddNode("s0", topo.RoleSpine, -1)
	e := MustParse("[role=tor] [role=spine] [pod=1]")
	d := e.CompileDFA(g, nil)
	if !d.MatchPath(path(g, "t0", "s0", "t1")) {
		t.Error("label path should match")
	}
	if d.MatchPath(path(g, "s0", "s0", "t1")) {
		t.Error("first hop must be a ToR")
	}
	if d.MatchPath(path(g, "t0", "s0", "t0")) {
		t.Error("last hop must be pod 1")
	}
	// name= is an alias for a bare ident.
	if !MustParse("[name=t0]").CompileDFA(g, nil).MatchPath(path(g, "t0")) {
		t.Error("name= class failed")
	}
	// Unknown label never matches.
	if MustParse("[color=red]").CompileDFA(g, nil).MatchPath(path(g, "t0")) {
		t.Error("unknown label matched")
	}
}

func TestDestinationHop(t *testing.T) {
	g := lineGraph()
	dest := g.MustByName("e")
	isDest := func(n topo.NodeID) bool { return n == dest }
	d := MustParse("a .* >").CompileDFA(g, isDest)
	if !d.MatchPath(path(g, "a", "b", "c", "d", "e")) {
		t.Error("path to destination owner should match")
	}
	if d.MatchPath(path(g, "a", "b", "c")) {
		t.Error("path not ending at destination matched")
	}
	// '>' with nil isDest never matches.
	d2 := MustParse("a >").CompileDFA(g, nil)
	if d2.MatchPath(path(g, "a", "e")) {
		t.Error("nil isDest should make '>' unmatched")
	}
	// [dest=true] class form.
	d3 := MustParse("a .* [dest=true]").CompileDFA(g, isDest)
	if !d3.MatchPath(path(g, "a", "e")) {
		t.Error("[dest=true] should match the owner")
	}
}

func TestStepAndDeadState(t *testing.T) {
	g := lineGraph()
	d := MustParse("a b").CompileDFA(g, nil)
	st := d.Start()
	if d.Accepting(st) {
		t.Error("start should not accept")
	}
	st = d.Step(st, g.MustByName("a"))
	if st == Dead {
		t.Fatal("step on 'a' died")
	}
	bad := d.Step(st, g.MustByName("w"))
	if bad != Dead {
		t.Error("mismatching hop should go Dead")
	}
	if d.Step(Dead, g.MustByName("a")) != Dead {
		t.Error("Dead must be absorbing")
	}
	st = d.Step(st, g.MustByName("b"))
	if !d.Accepting(st) {
		t.Error("full match should accept")
	}
	// Memoized transitions must be stable.
	if d.Step(d.Start(), g.MustByName("a")) != d.Step(d.Start(), g.MustByName("a")) {
		t.Error("transition memoization unstable")
	}
}

func TestPaperWaypointExpression(t *testing.T) {
	// Figure 3: S .* [W|Y] .* D over the paper's example network.
	g := topo.New()
	for _, n := range []string{"S", "A", "B", "E", "C", "D", "Y", "W"} {
		g.AddNode(n, topo.RoleSwitch, -1)
	}
	link := func(x, y string) { g.AddLink(g.MustByName(x), g.MustByName(y)) }
	link("S", "A")
	link("S", "W")
	link("A", "B")
	link("W", "A")
	link("B", "E")
	link("B", "Y")
	link("E", "C")
	link("Y", "C")
	link("C", "D")
	d := MustParse("S .* [W|Y] .* D").CompileDFA(g, nil)
	if !d.MatchPath(path(g, "S", "W", "A", "B", "Y", "C", "D")) {
		t.Error("compliant waypoint path rejected")
	}
	if !d.MatchPath(path(g, "S", "A", "B", "Y", "C", "D")) {
		t.Error("path via Y rejected")
	}
	if d.MatchPath(path(g, "S", "A", "B", "E", "C", "D")) {
		t.Error("path avoiding both waypoints accepted")
	}
}

func TestExprString(t *testing.T) {
	src := "a .* b"
	if got := MustParse(src).String(); got != src {
		t.Errorf("String() = %q, want %q", got, src)
	}
}

func TestDFAStateGrowthBounded(t *testing.T) {
	g := lineGraph()
	d := MustParse("a .* [w|d] .* e").CompileDFA(g, nil)
	// Drive many paths; the DFA must stay small (subset construction of a
	// tiny NFA) regardless of path count.
	nodes := []string{"a", "b", "c", "d", "e", "w"}
	for i := 0; i < 200; i++ {
		st := d.Start()
		for j := 0; j < 12 && st != Dead; j++ {
			st = d.Step(st, g.MustByName(nodes[(i+j)%len(nodes)]))
		}
	}
	if d.NumStates() > 32 {
		t.Errorf("DFA exploded to %d states", d.NumStates())
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	_, err := Parse("a & b")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("lexer error missing: %v", err)
	}
}

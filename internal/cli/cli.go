// Package cli holds the topology/layout parsing shared by the command
// line tools (flashd, flashgen).
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hs"
	"repro/internal/topo"
)

// ParseTopo resolves a topology specification:
//
//	internet2 | stanford | airtel | fabric:<pods>,<tors>,<aggs>,<spinePer>
func ParseTopo(spec string) (*topo.Graph, error) {
	switch {
	case spec == "internet2":
		return topo.Internet2(), nil
	case spec == "stanford":
		return topo.Stanford(), nil
	case spec == "airtel":
		return topo.Airtel(), nil
	case strings.HasPrefix(spec, "fabric:"):
		parts := strings.Split(strings.TrimPrefix(spec, "fabric:"), ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("cli: fabric spec needs pods,tors,aggs,spinePer")
		}
		vals := make([]int, 4)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("cli: bad fabric parameter %q", p)
			}
			vals[i] = v
		}
		return topo.Fabric(topo.FabricParams{
			Pods: vals[0], TorsPerPod: vals[1], AggsPerPod: vals[2],
			SpinePlanes: vals[2], SpinePer: vals[3],
		}), nil
	default:
		return nil, fmt.Errorf("cli: unknown topology %q", spec)
	}
}

// ParseLayout resolves a layout specification: a comma-separated list of
// name:bits fields, e.g. "dst:16" or "dst:12,src:8".
func ParseLayout(spec string) (*hs.Layout, error) {
	var fields []hs.Field
	for _, part := range strings.Split(spec, ",") {
		nv := strings.Split(strings.TrimSpace(part), ":")
		if len(nv) != 2 {
			return nil, fmt.Errorf("cli: layout field %q must be name:bits", part)
		}
		if nv[0] == "" {
			return nil, fmt.Errorf("cli: empty field name in %q", part)
		}
		bits, err := strconv.Atoi(nv[1])
		if err != nil || bits <= 0 || bits > 64 {
			return nil, fmt.Errorf("cli: bad field width %q", nv[1])
		}
		fields = append(fields, hs.Field{Name: nv[0], Bits: bits})
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("cli: empty layout")
	}
	return hs.NewLayout(fields...), nil
}

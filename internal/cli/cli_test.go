package cli

import "testing"

func TestParseTopo(t *testing.T) {
	cases := []struct {
		spec  string
		nodes int
	}{
		{"internet2", 9},
		{"stanford", 16},
		{"airtel", 68},
		{"fabric:2,2,2,1", 2*1 + 2*(2+2)},
	}
	for _, c := range cases {
		g, err := ParseTopo(c.spec)
		if err != nil {
			t.Errorf("ParseTopo(%q): %v", c.spec, err)
			continue
		}
		if g.N() != c.nodes {
			t.Errorf("ParseTopo(%q) has %d nodes, want %d", c.spec, g.N(), c.nodes)
		}
	}
	for _, bad := range []string{"", "mars", "fabric:1,2", "fabric:a,b,c,d", "fabric:0,1,1,1"} {
		if _, err := ParseTopo(bad); err == nil {
			t.Errorf("ParseTopo(%q) should fail", bad)
		}
	}
}

func TestParseLayout(t *testing.T) {
	l, err := ParseLayout("dst:16,src:8")
	if err != nil {
		t.Fatal(err)
	}
	if l.TotalBits() != 24 || l.FieldBits("src") != 8 {
		t.Errorf("layout wrong: %d bits", l.TotalBits())
	}
	for _, bad := range []string{"", "dst", "dst:0", "dst:65", "dst:x", ":8"} {
		if _, err := ParseLayout(bad); err == nil {
			t.Errorf("ParseLayout(%q) should fail", bad)
		}
	}
}

package atoms

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/deltanet"
	"repro/internal/fib"
	"repro/internal/hs"
)

var laySD = hs.NewLayout(hs.Field{Name: "src", Bits: 4}, hs.Field{Name: "dst", Bits: 4})

// TestCanonicityRefEquality pins the hash-consing contract the inverse
// model relies on: building the same set two different ways must return
// the same Ref, and distinct sets distinct Refs.
func TestCanonicityRefEquality(t *testing.T) {
	e := New(8)
	a := e.FromIntervals([]deltanet.Interval{{Lo: 0, Hi: 16}, {Lo: 16, Hi: 32}})
	b := e.FromIntervals([]deltanet.Interval{{Lo: 0, Hi: 32}})
	if a != b {
		t.Fatalf("adjacent intervals did not canonicalize: %d vs %d", a, b)
	}
	c := e.Or(e.FromIntervals([]deltanet.Interval{{Lo: 0, Hi: 16}}),
		e.FromIntervals([]deltanet.Interval{{Lo: 16, Hi: 32}}))
	if c != a {
		t.Fatalf("Or of halves = %d, direct build = %d", c, a)
	}
	d := e.FromIntervals([]deltanet.Interval{{Lo: 0, Hi: 33}})
	if d == a {
		t.Fatal("distinct sets share a Ref")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTerminals pins False=empty, True=full under the bdd.Ref aliases.
func TestTerminals(t *testing.T) {
	e := New(8)
	if got := e.FromIntervals(nil); got != bdd.False {
		t.Fatalf("empty set = %d, want False", got)
	}
	if got := e.FromIntervals([]deltanet.Interval{{Lo: 0, Hi: 256}}); got != bdd.True {
		t.Fatalf("full line = %d, want True", got)
	}
	if e.Not(bdd.False) != bdd.True || e.Not(bdd.True) != bdd.False {
		t.Fatal("complement of terminals broken")
	}
	if e.SatCount(bdd.True) != 256 || e.SatCount(bdd.False) != 0 {
		t.Fatal("terminal SatCount broken")
	}
}

// TestAlgebraAgainstBDD cross-checks the whole algebra against the BDD
// engine on random prefix/range sets over an 8-bit line: for every
// operation both representations must agree pointwise on all 256
// headers, and Eval must agree with hs-style assignments.
func TestAlgebraAgainstBDD(t *testing.T) {
	const W = 8
	ae := New(W)
	s := hs.NewSpace(laySD)
	rng := rand.New(rand.NewSource(7))

	randomSet := func() (bdd.Ref, bdd.Ref) { // (atom ref, bdd ref)
		n := rng.Intn(3) + 1
		var ivs []deltanet.Interval
		br := bdd.False
		for i := 0; i < n; i++ {
			lo := uint64(rng.Intn(256))
			hi := lo + uint64(rng.Intn(40)) + 1
			if hi > 256 {
				hi = 256
			}
			ivs = append(ivs, deltanet.Interval{Lo: lo, Hi: hi})
			br = s.E.Or(br, s.LineRange(lo, hi))
		}
		return ae.FromIntervals(ivs), br
	}

	asgFor := func(x uint64) []bool {
		a := make([]bool, W)
		for i := 0; i < W; i++ {
			a[i] = x&(1<<uint(W-1-i)) != 0
		}
		return a
	}

	for trial := 0; trial < 50; trial++ {
		a1, b1 := randomSet()
		a2, b2 := randomSet()
		cases := []struct {
			name   string
			atom   bdd.Ref
			bddRef bdd.Ref
		}{
			{"and", ae.And(a1, a2), s.E.And(b1, b2)},
			{"or", ae.Or(a1, a2), s.E.Or(b1, b2)},
			{"not", ae.Not(a1), s.E.Not(b1)},
			{"diff", ae.Diff(a1, a2), s.E.Diff(b1, b2)},
		}
		for _, c := range cases {
			for x := uint64(0); x < 256; x++ {
				if ae.Eval(c.atom, asgFor(x)) != s.E.Eval(c.bddRef, asgFor(x)) {
					t.Fatalf("trial %d %s: representations disagree at point %d", trial, c.name, x)
				}
			}
		}
		if ae.Implies(a1, a2) != s.E.Implies(b1, b2) {
			t.Fatalf("trial %d: Implies disagrees", trial)
		}
		if ae.Overlaps(a1, a2) != s.E.Overlaps(b1, b2) {
			t.Fatalf("trial %d: Overlaps disagrees", trial)
		}
		if ae.SatCount(ae.And(a1, a2)) != s.E.SatCount(s.E.And(b1, b2)) {
			t.Fatalf("trial %d: SatCount disagrees", trial)
		}
		if asg := ae.AnySat(a1); asg != nil && !ae.Eval(a1, asg) {
			t.Fatalf("trial %d: AnySat returned a non-satisfying assignment", trial)
		}
	}
	if err := ae.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompile pins descriptor compilation: prefix rules become one
// interval; explosive rules surface the typed sentinel unchanged.
func TestCompile(t *testing.T) {
	e := New(8)
	r, err := e.Compile(laySD, fib.MatchDesc{{Field: "src", Kind: fib.MatchPrefix, Value: 0b0100, Len: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := e.FromIntervals([]deltanet.Interval{{Lo: 64, Hi: 128}})
	if r != want {
		t.Fatalf("compiled prefix = ref %d, want %d", r, want)
	}

	layWide := hs.NewLayout(hs.Field{Name: "a", Bits: 24}, hs.Field{Name: "b", Bits: 8})
	ew := New(32)
	_, err = ew.Compile(layWide, fib.MatchDesc{{Field: "b", Kind: fib.MatchPrefix, Value: 0x80, Len: 1}})
	if !errors.Is(err, deltanet.ErrIntervalExplosion) {
		t.Fatalf("explosive compile error = %v, want ErrIntervalExplosion", err)
	}
}

// TestGC pins the remap contract: survivors stay canonical and live
// Refs translate, dead Refs panic on Apply, terminals are pinned.
func TestGC(t *testing.T) {
	e := New(8)
	keep := e.FromIntervals([]deltanet.Interval{{Lo: 10, Hi: 20}})
	drop := e.FromIntervals([]deltanet.Interval{{Lo: 30, Hi: 40}})
	keep2 := e.FromIntervals([]deltanet.Interval{{Lo: 50, Hi: 60}})

	remap, st := e.GC(func(yield func(bdd.Ref)) {
		yield(keep)
		yield(keep2)
	})
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed %d sets, want 1", st.Reclaimed)
	}
	if !remap.Live(keep) || !remap.Live(keep2) || remap.Live(drop) {
		t.Fatal("liveness wrong after GC")
	}
	nk := remap.Apply(keep)
	if got := e.Intervals(nk); len(got) != 1 || got[0] != (deltanet.Interval{Lo: 10, Hi: 20}) {
		t.Fatalf("survivor intervals = %v", got)
	}
	if remap.Apply(bdd.True) != bdd.True || remap.Apply(bdd.False) != bdd.False {
		t.Fatal("terminals moved")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-interning the dropped set must mint a fresh, working Ref.
	re := e.FromIntervals([]deltanet.Interval{{Lo: 30, Hi: 40}})
	if e.SatCount(re) != 10 {
		t.Fatal("re-interned set broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Remap.Apply on a swept atom ref must panic")
		}
	}()
	remap.Apply(drop)
}

// TestConcurrentOps runs the algebra from several goroutines under
// -race: the intern table is mutex-guarded and interned slices
// immutable, so parallel use must stay canonical.
func TestConcurrentOps(t *testing.T) {
	e := New(16)
	done := make(chan bdd.Ref, 8)
	for g := 0; g < 8; g++ {
		go func() {
			r := bdd.False
			for i := 0; i < 200; i++ {
				lo := uint64(i * 13 % 60000)
				r = e.Or(r, e.FromIntervals([]deltanet.Interval{{Lo: lo, Hi: lo + 100}}))
			}
			done <- r
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("identical concurrent builds diverged: %d vs %d", got, first)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Package atoms implements the Delta-net interval-atom predicate engine
// (Horn, Kheradmand, Prasad — NSDI'17), promoted from the
// internal/deltanet baseline into a first-class pred.Engine the hybrid
// representation can run a subspace on.
//
// A predicate is a canonical set of disjoint, sorted, half-open
// intervals on the concatenated header line [0, 2^W): the same encoding
// deltanet.IntervalsFor produces for a match descriptor. Sets are
// hash-consed — interned by their canonical encoding — so "equal Refs ⇔
// equivalent predicates" holds exactly as it does for the BDD engine,
// which is what lets the Fast IMT Reduce II step and the CE2D class
// maps key on Refs without knowing the representation.
//
// On pure longest-prefix workloads every rule is one interval and the
// engine's operations are linear merges over tiny sets — the §5.1
// regime where Delta-net beats BDDs. The moment a ternary or
// multi-field rule appears the interval count explodes
// (deltanet.ErrIntervalExplosion); the hybrid layer then cuts the
// subspace over to the BDD engine rather than paying that blowup here.
//
// Operation counting follows §3.3 of the paper exactly as the BDD
// engine does: one ∧/∨/¬ invocation is one predicate operation,
// regardless of internal interval visits (Diff counts two, matching how
// the paper's pseudocode composes it).
package atoms

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bdd"
	"repro/internal/deltanet"
	"repro/internal/fib"
	"repro/internal/hs"
)

// MaxVars is the widest header line the atom representation supports:
// interval endpoints are uint64 and the exclusive upper bound 2^W must
// be representable.
const MaxVars = 63

// Engine is an interval-atom predicate engine over a W-bit header line.
// It satisfies pred.Engine: Refs are dense int32 handles into the
// interned-set table, with bdd.False (0) the empty set and bdd.True (1)
// the full line, so zero-valued predicates mean "empty header space"
// under both representations.
//
// All methods are safe for concurrent use (one mutex guards the intern
// table; interned interval slices are immutable), except GC, which
// requires exclusive access like its BDD counterpart.
type Engine struct {
	nvars int
	full  deltanet.Interval // [0, 2^W)

	mu     sync.Mutex
	sets   [][]deltanet.Interval // Ref → canonical interval set
	intern map[string]bdd.Ref
	nivs   int // total intervals across interned sets (memory proxy)

	// opCache memoizes the ref-valued operations (∧ ∨ ¬ \) keyed by
	// operand refs — sound because hash consing makes Ref equality
	// predicate equality, and the hot Fast IMT loops replay the same
	// operand pairs constantly. Cleared wholesale by GC (refs move) and
	// when it reaches opCacheLimit entries.
	opCache map[opKey]bdd.Ref
	// compileCache memoizes single-field descriptor compilations for one
	// layout (a subspace engine only ever sees one): churn re-installs
	// the same prefixes over and over, and deltanet.IntervalsFor walks
	// the whole layout per call.
	compileCache  map[fib.FieldMatch]bdd.Ref
	compileLayout *hs.Layout

	ops         atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	cacheEvict  atomic.Uint64
	gcRuns      atomic.Uint64
	gcReclaimed atomic.Uint64
}

// opKey identifies one memoized operation application.
type opKey struct {
	op   uint8
	a, b bdd.Ref
}

// Operation discriminants for opKey.
const (
	opAnd = iota
	opOr
	opNot
	opDiff
)

// opCacheLimit bounds the memoized-operation table; reaching it clears
// the table wholesale (the BDD engine's eviction policy, without the
// sharding — one subspace worker owns each atom engine).
const opCacheLimit = 1 << 20

// New returns an atom engine over an nvars-bit header line. nvars must
// be in [1, MaxVars]; wider layouts cannot be represented as uint64
// intervals and must use the BDD engine.
func New(nvars int) *Engine {
	if nvars <= 0 || nvars > MaxVars {
		panic(fmt.Sprintf("atoms: invalid line width %d (must be 1..%d)", nvars, MaxVars))
	}
	e := &Engine{
		nvars:   nvars,
		full:    deltanet.Interval{Lo: 0, Hi: uint64(1) << uint(nvars)},
		intern:  make(map[string]bdd.Ref, 64),
		opCache: make(map[opKey]bdd.Ref, 256),
	}
	e.sets = [][]deltanet.Interval{nil, {e.full}}
	e.intern[encode(nil)] = bdd.False
	e.intern[encode(e.sets[bdd.True])] = bdd.True
	e.nivs = 1
	return e
}

// encode serializes a canonical interval set into the intern key.
func encode(ivs []deltanet.Interval) string {
	buf := make([]byte, 16*len(ivs))
	for i, iv := range ivs {
		binary.LittleEndian.PutUint64(buf[16*i:], iv.Lo)
		binary.LittleEndian.PutUint64(buf[16*i+8:], iv.Hi)
	}
	return string(buf)
}

// get returns the interned set for r. Interned slices are immutable, so
// the result may be used after the lock is released.
func (e *Engine) get(r bdd.Ref) []deltanet.Interval {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.getLocked(r)
}

// getLocked is get for callers already holding e.mu.
func (e *Engine) getLocked(r bdd.Ref) []deltanet.Interval {
	if r < 0 || int(r) >= len(e.sets) {
		panic(fmt.Sprintf("atoms: ref %d outside the interned range [0,%d)", r, len(e.sets)))
	}
	return e.sets[r]
}

// interned hash-conses a canonical set and returns its Ref.
func (e *Engine) interned(ivs []deltanet.Interval) bdd.Ref {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.internLocked(ivs)
}

// internLocked is interned for callers already holding e.mu.
func (e *Engine) internLocked(ivs []deltanet.Interval) bdd.Ref {
	key := encode(ivs)
	if r, ok := e.intern[key]; ok {
		return r
	}
	r := bdd.Ref(len(e.sets))
	e.sets = append(e.sets, ivs)
	e.intern[key] = r
	e.nivs += len(ivs)
	return r
}

// cachedOp runs one memoized ref-valued operation under the engine
// lock: a hit skips the interval merge and the intern-key encoding
// entirely, which is where the atom engine's time goes on churn
// workloads (the same EC × rule operand pairs recur constantly).
func (e *Engine) cachedOp(op uint8, a, b bdd.Ref, compute func() []deltanet.Interval) bdd.Ref {
	e.ops.Add(1)
	k := opKey{op: op, a: a, b: b}
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.opCache[k]; ok {
		e.cacheHits.Add(1)
		return r
	}
	e.cacheMisses.Add(1)
	r := e.internLocked(compute())
	if len(e.opCache) >= opCacheLimit {
		e.cacheEvict.Add(uint64(len(e.opCache)))
		clear(e.opCache)
	}
	e.opCache[k] = r
	return r
}

// normalize sorts and merges a scratch interval list into canonical
// form: empty intervals dropped, overlapping or adjacent runs fused.
func normalize(ivs []deltanet.Interval) []deltanet.Interval {
	out := ivs[:0]
	for _, iv := range ivs {
		if iv.Lo < iv.Hi {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, iv := range out {
		if n := len(merged); n > 0 && merged[n-1].Hi >= iv.Lo {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	if len(merged) == 0 {
		return nil
	}
	return merged
}

// NumVars reports the header-line width in bits.
func (e *Engine) NumVars() int { return e.nvars }

// NumNodes reports the memory-footprint proxy: total intervals held by
// interned sets, plus the two terminals — the atom analogue of the BDD
// engine's node count.
func (e *Engine) NumNodes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nivs + 2
}

// Ops reports cumulative §3.3 predicate operations. Safe concurrently.
func (e *Engine) Ops() uint64 { return e.ops.Load() }

// ResetOps zeroes the predicate-operation counter.
func (e *Engine) ResetOps() { e.ops.Store(0) }

// CacheStats reports the memoized-operation cache counters (the atom
// analogue of the BDD engine's ITE computed cache).
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

// CacheEvictions reports entries dropped by wholesale cache clears.
func (e *Engine) CacheEvictions() uint64 { return e.cacheEvict.Load() }

// GCRuns reports completed GC passes. Safe concurrently.
func (e *Engine) GCRuns() uint64 { return e.gcRuns.Load() }

// ReclaimedNodes reports intervals swept across all GC passes.
func (e *Engine) ReclaimedNodes() uint64 { return e.gcReclaimed.Load() }

// And returns a ∧ b (interval intersection); one counted operation.
// Commutative, so operands are ordered to double the cache hit rate.
func (e *Engine) And(a, b bdd.Ref) bdd.Ref {
	if b < a {
		a, b = b, a
	}
	return e.cachedOp(opAnd, a, b, func() []deltanet.Interval {
		return intersect(e.getLocked(a), e.getLocked(b))
	})
}

// Or returns a ∨ b (interval union); one counted operation.
// Commutative, so operands are ordered to double the cache hit rate.
func (e *Engine) Or(a, b bdd.Ref) bdd.Ref {
	if b < a {
		a, b = b, a
	}
	return e.cachedOp(opOr, a, b, func() []deltanet.Interval {
		as, bs := e.getLocked(a), e.getLocked(b)
		scratch := make([]deltanet.Interval, 0, len(as)+len(bs))
		scratch = append(scratch, as...)
		scratch = append(scratch, bs...)
		return normalize(scratch)
	})
}

// Not returns ¬a (complement within [0, 2^W)); one counted operation.
func (e *Engine) Not(a bdd.Ref) bdd.Ref {
	return e.cachedOp(opNot, a, a, func() []deltanet.Interval {
		return complement(e.getLocked(a), e.full)
	})
}

// Diff returns a ∧ ¬b; two counted operations, matching the BDD engine.
func (e *Engine) Diff(a, b bdd.Ref) bdd.Ref {
	e.ops.Add(1) // cachedOp counts the second
	return e.cachedOp(opDiff, a, b, func() []deltanet.Interval {
		return intersect(e.getLocked(a), complement(e.getLocked(b), e.full))
	})
}

// Implies reports a ⊆ b; one counted operation.
func (e *Engine) Implies(a, b bdd.Ref) bool {
	e.ops.Add(1)
	return len(intersect(e.get(a), complement(e.get(b), e.full))) == 0
}

// Overlaps reports a ∩ b ≠ ∅; one counted operation.
func (e *Engine) Overlaps(a, b bdd.Ref) bool {
	e.ops.Add(1)
	as, bs := e.get(a), e.get(b)
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if as[i].Hi <= bs[j].Lo {
			i++
		} else if bs[j].Hi <= as[i].Lo {
			j++
		} else {
			return true
		}
	}
	return false
}

// intersect computes the canonical intersection of two canonical sets.
func intersect(as, bs []deltanet.Interval) []deltanet.Interval {
	var out []deltanet.Interval
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		lo := as[i].Lo
		if bs[j].Lo > lo {
			lo = bs[j].Lo
		}
		hi := as[i].Hi
		if bs[j].Hi < hi {
			hi = bs[j].Hi
		}
		if lo < hi {
			out = append(out, deltanet.Interval{Lo: lo, Hi: hi})
		}
		if as[i].Hi <= bs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// complement computes [full.Lo, full.Hi) minus a canonical set.
func complement(as []deltanet.Interval, full deltanet.Interval) []deltanet.Interval {
	var out []deltanet.Interval
	cur := full.Lo
	for _, iv := range as {
		if iv.Lo > cur {
			out = append(out, deltanet.Interval{Lo: cur, Hi: iv.Lo})
		}
		cur = iv.Hi
	}
	if cur < full.Hi {
		out = append(out, deltanet.Interval{Lo: cur, Hi: full.Hi})
	}
	return out
}

// point converts an hs.Assignment (line bits, most significant first)
// to its position on the header line.
func (e *Engine) point(assignment []bool) uint64 {
	var x uint64
	for i := 0; i < e.nvars; i++ {
		x <<= 1
		if assignment[i] {
			x |= 1
		}
	}
	return x
}

// Eval reports whether the assignment's header-line point lies in r.
func (e *Engine) Eval(r bdd.Ref, assignment []bool) bool {
	x := e.point(assignment)
	ivs := e.get(r)
	n := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi > x })
	return n < len(ivs) && ivs[n].Lo <= x
}

// AnySat returns one satisfying assignment of r, or nil if r is empty.
func (e *Engine) AnySat(r bdd.Ref) []bool {
	ivs := e.get(r)
	if len(ivs) == 0 {
		return nil
	}
	x := ivs[0].Lo
	a := make([]bool, e.nvars)
	for i := 0; i < e.nvars; i++ {
		a[i] = x&(1<<uint(e.nvars-1-i)) != 0
	}
	return a
}

// SatCount returns the number of header-line points r covers.
func (e *Engine) SatCount(r bdd.Ref) float64 {
	var total float64
	for _, iv := range e.get(r) {
		total += float64(iv.Hi - iv.Lo)
	}
	return total
}

// Intervals returns r's canonical interval set. The slice is immutable;
// the hybrid cutover uses it to recompile each live atom predicate into
// BDD form (hs.Space.LineRange per interval).
func (e *Engine) Intervals(r bdd.Ref) []deltanet.Interval { return e.get(r) }

// FromIntervals interns a (possibly unnormalized) interval list.
// Intervals must lie within [0, 2^W).
func (e *Engine) FromIntervals(ivs []deltanet.Interval) bdd.Ref {
	scratch := make([]deltanet.Interval, len(ivs))
	copy(scratch, ivs)
	norm := normalize(scratch)
	for _, iv := range norm {
		if iv.Hi > e.full.Hi {
			panic(fmt.Sprintf("atoms: interval [%d,%d) outside the %d-bit line", iv.Lo, iv.Hi, e.nvars))
		}
	}
	return e.interned(norm)
}

// NumRefs reports how many distinct predicates the engine has interned,
// terminals included. Refs are dense in [0, NumRefs), which is what
// lets the hybrid cutover size a bdd.Remap over the whole atom-era Ref
// range.
func (e *Engine) NumRefs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sets)
}

// Compile converts a match descriptor into an atom predicate via
// deltanet.IntervalsFor. A descriptor that is valid but explodes past
// the interval budget returns deltanet.ErrIntervalExplosion (test with
// errors.Is) — the hybrid layer's signal to cut the subspace over to
// BDDs; any other error is a malformed match.
func (e *Engine) Compile(layout *hs.Layout, d fib.MatchDesc) (bdd.Ref, error) {
	// Single-field descriptors — the only kind the hybrid layer keeps on
	// atoms — are memoized per layout: churn reinstalls the same
	// prefixes constantly and IntervalsFor walks the whole layout each
	// time. The cache is sound only while refs are stable; GC clears it.
	if len(d) == 1 {
		e.mu.Lock()
		if e.compileLayout == layout {
			if r, ok := e.compileCache[d[0]]; ok {
				e.mu.Unlock()
				return r, nil
			}
		}
		e.mu.Unlock()
	}
	ivs, err := deltanet.IntervalsFor(layout, d)
	if err != nil {
		return bdd.False, err
	}
	r := e.FromIntervals(ivs)
	if len(d) == 1 {
		e.mu.Lock()
		if e.compileLayout == nil {
			e.compileLayout = layout
			e.compileCache = make(map[fib.FieldMatch]bdd.Ref, 64)
		}
		if e.compileLayout == layout {
			e.compileCache[d[0]] = r
		}
		e.mu.Unlock()
	}
	return r, nil
}

// CheckInvariants verifies canonicity: terminals in their fixed slots,
// every interned set sorted, disjoint, non-adjacent, in-range, and the
// intern table bijective with the set table. A violation means Ref
// equality no longer implies predicate equality.
func (e *Engine) CheckInvariants() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.sets) < 2 {
		return fmt.Errorf("atoms: terminal sets missing (%d interned)", len(e.sets))
	}
	if len(e.sets[bdd.False]) != 0 {
		return fmt.Errorf("atoms: ref 0 is not the empty set")
	}
	if len(e.sets[bdd.True]) != 1 || e.sets[bdd.True][0] != e.full {
		return fmt.Errorf("atoms: ref 1 is not the full line")
	}
	if len(e.intern) != len(e.sets) {
		return fmt.Errorf("atoms: intern table holds %d keys for %d sets; hash consing broken", len(e.intern), len(e.sets))
	}
	total := 0
	for r, ivs := range e.sets {
		total += len(ivs)
		for i, iv := range ivs {
			if iv.Lo >= iv.Hi {
				return fmt.Errorf("atoms: ref %d interval %d is empty [%d,%d)", r, i, iv.Lo, iv.Hi)
			}
			if iv.Hi > e.full.Hi {
				return fmt.Errorf("atoms: ref %d interval %d exceeds the line [%d,%d)", r, i, iv.Lo, iv.Hi)
			}
			if i > 0 && ivs[i-1].Hi >= iv.Lo {
				return fmt.Errorf("atoms: ref %d intervals %d,%d not disjoint-sorted-merged", r, i-1, i)
			}
		}
		if got, ok := e.intern[encode(ivs)]; !ok || got != bdd.Ref(r) {
			return fmt.Errorf("atoms: ref %d not canonically interned", r)
		}
	}
	if total != e.nivs {
		return fmt.Errorf("atoms: interval count proxy %d, actual %d", e.nivs, total)
	}
	return nil
}

// GC sweeps interned sets not in the caller's root set. Atom sets have
// no children, so reachability is the root set plus the terminals. The
// surviving sets are compacted preserving relative order and the intern
// table is rebuilt; the returned remap follows the bdd.Remap contract
// (dead entries panic on Apply). Exclusive-access only.
func (e *Engine) GC(roots func(yield func(bdd.Ref))) (bdd.Remap, bdd.GCStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.sets)
	live := make([]bool, n)
	live[bdd.False], live[bdd.True] = true, true
	roots(func(r bdd.Ref) {
		if r < 0 || int(r) >= n {
			panic(fmt.Sprintf("atoms: GC root %d outside the interned range [0,%d)", r, n))
		}
		live[r] = true
	})
	remap := make(bdd.Remap, n)
	sets := make([][]deltanet.Interval, 0, n)
	intern := make(map[string]bdd.Ref, n)
	nivs := 0
	for i := 0; i < n; i++ {
		if !live[i] {
			remap[i] = bdd.Ref(-1)
			continue
		}
		r := bdd.Ref(len(sets))
		remap[i] = r
		sets = append(sets, e.sets[i])
		intern[encode(e.sets[i])] = r
		nivs += len(e.sets[i])
	}
	st := bdd.GCStats{Before: n, After: len(sets), Reclaimed: n - len(sets)}
	e.sets, e.intern, e.nivs = sets, intern, nivs
	// Both memo tables hold pre-compaction refs; drop them wholesale.
	clear(e.opCache)
	if e.compileCache != nil {
		clear(e.compileCache)
	}
	e.gcRuns.Add(1)
	e.gcReclaimed.Add(uint64(st.Reclaimed))
	return remap, st
}

package reach

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/topo"
)

// figure3 builds the paper's Figure 3 network: S-A-B-E-C-D with waypoints
// W (off S/A) and Y (off B/C).
func figure3() (*topo.Graph, map[string]topo.NodeID) {
	g := topo.New()
	ids := map[string]topo.NodeID{}
	for _, n := range []string{"S", "A", "B", "E", "C", "D", "Y", "W"} {
		ids[n] = g.AddNode(n, topo.RoleSwitch, -1)
	}
	link := func(x, y string) { g.AddLink(ids[x], ids[y]) }
	link("S", "A")
	link("S", "W")
	link("W", "A")
	link("A", "B")
	link("B", "E")
	link("B", "Y")
	link("E", "C")
	link("Y", "C")
	link("C", "D")
	return g, ids
}

func figure3VGraph(t *testing.T) (*VGraph, map[string]topo.NodeID) {
	t.Helper()
	g, ids := figure3()
	expr := spec.MustParse("S .* [W|Y] .* D")
	isDest := func(n topo.NodeID) bool { return n == ids["D"] }
	// Directed potential-path set, exactly as drawn in Figure 3 of the
	// paper (links are used toward the 10.0.0.0/24 destination at D).
	directed := map[topo.NodeID][]topo.NodeID{
		ids["S"]: {ids["A"], ids["W"]},
		ids["W"]: {ids["A"]},
		ids["A"]: {ids["B"]},
		ids["B"]: {ids["E"], ids["Y"]},
		ids["E"]: {ids["C"]},
		ids["Y"]: {ids["C"]},
		ids["C"]: {ids["D"]},
	}
	vg := NewVGraphEdges(g, expr, []topo.NodeID{ids["S"]}, isDest,
		func(n topo.NodeID) []topo.NodeID { return directed[n] })
	return vg, ids
}

func TestInitialVerdictUnknown(t *testing.T) {
	vg, _ := figure3VGraph(t)
	if v := vg.Verdict(); v != Unknown {
		t.Fatalf("initial verdict = %v, want unknown", v)
	}
	if v := vg.VerdictByTraversal(); v != Unknown {
		t.Fatalf("initial MT verdict = %v, want unknown", v)
	}
	if vg.NumNodes() == 0 {
		t.Fatal("product graph empty")
	}
}

// TestPaperEarlyUnsatisfied reproduces Figure 4(b): after S forwards to A
// (Update 1) and A forwards to B, B forwards to E (Update 2), the
// requirement is unsatisfiable regardless of the other devices.
func TestPaperEarlyUnsatisfied(t *testing.T) {
	vg, ids := figure3VGraph(t)
	sync := func(dev string, nh ...string) {
		t.Helper()
		hops := make([]topo.NodeID, len(nh))
		for i, n := range nh {
			hops[i] = ids[n]
		}
		if err := vg.Synchronize(ids[dev], SyncState{NextHops: hops}); err != nil {
			t.Fatal(err)
		}
	}
	// Update 1: S → A (bypassing W).
	sync("S", "A")
	if v := vg.Verdict(); v != Unknown {
		t.Fatalf("after update 1: %v, want unknown (Y still possible)", v)
	}
	// Update 2: A → B and B → E (bypassing Y).
	sync("A", "B")
	sync("B", "E")
	if v := vg.Verdict(); v != Unsatisfied {
		t.Fatalf("after update 2: %v, want unsatisfied (early, W/Y/C not synced)", v)
	}
	// MT agrees.
	if v := vg.VerdictByTraversal(); v != Unsatisfied {
		t.Fatalf("MT after update 2: %v", v)
	}
}

func TestEarlySatisfied(t *testing.T) {
	vg, ids := figure3VGraph(t)
	sync := func(dev string, st SyncState) {
		t.Helper()
		if err := vg.Synchronize(ids[dev], st); err != nil {
			t.Fatal(err)
		}
	}
	// Path S→W→A→B→Y→C→D entirely synchronized satisfies the waypoint.
	sync("S", SyncState{NextHops: []topo.NodeID{ids["W"]}})
	sync("W", SyncState{NextHops: []topo.NodeID{ids["A"]}})
	sync("A", SyncState{NextHops: []topo.NodeID{ids["B"]}})
	sync("B", SyncState{NextHops: []topo.NodeID{ids["Y"]}})
	if v := vg.Verdict(); v != Unknown {
		t.Fatalf("partial path: %v, want unknown", v)
	}
	sync("Y", SyncState{NextHops: []topo.NodeID{ids["C"]}})
	sync("C", SyncState{NextHops: []topo.NodeID{ids["D"]}})
	sync("D", SyncState{Delivers: true})
	if v := vg.Verdict(); v != Satisfied {
		t.Fatalf("full path: %v, want satisfied", v)
	}
	if v := vg.VerdictByTraversal(); v != Satisfied {
		t.Fatalf("MT: %v, want satisfied", v)
	}
}

func TestDeliveryRequired(t *testing.T) {
	// If the destination device synchronizes without delivering, accept
	// states die and the verdict flips to unsatisfied once no
	// alternative remains.
	vg, ids := figure3VGraph(t)
	if err := vg.Synchronize(ids["D"], SyncState{NextHops: []topo.NodeID{ids["C"]}, Delivers: false}); err != nil {
		t.Fatal(err)
	}
	if v := vg.Verdict(); v != Unsatisfied {
		t.Fatalf("dest not delivering: %v, want unsatisfied", v)
	}
}

func TestResyncConflictRejected(t *testing.T) {
	vg, ids := figure3VGraph(t)
	st := SyncState{NextHops: []topo.NodeID{ids["A"]}}
	if err := vg.Synchronize(ids["S"], st); err != nil {
		t.Fatal(err)
	}
	// Identical re-sync is a no-op.
	if err := vg.Synchronize(ids["S"], SyncState{NextHops: []topo.NodeID{ids["A"]}}); err != nil {
		t.Fatal(err)
	}
	// Conflicting re-sync is an error (new epoch = new verifier).
	if err := vg.Synchronize(ids["S"], SyncState{NextHops: []topo.NodeID{ids["W"]}}); err == nil {
		t.Fatal("conflicting re-synchronization accepted")
	}
}

func TestECMPNextHops(t *testing.T) {
	// Diamond with ECMP: s={m1,m2}, both reach t; requirement s .* t.
	g := topo.New()
	s := g.AddNode("s", topo.RoleSwitch, -1)
	m1 := g.AddNode("m1", topo.RoleSwitch, -1)
	m2 := g.AddNode("m2", topo.RoleSwitch, -1)
	d := g.AddNode("t", topo.RoleSwitch, -1)
	g.AddLink(s, m1)
	g.AddLink(s, m2)
	g.AddLink(m1, d)
	g.AddLink(m2, d)
	vg := NewVGraph(g, spec.MustParse("s .* t"), []topo.NodeID{s},
		func(n topo.NodeID) bool { return n == d })
	if err := vg.Synchronize(s, SyncState{NextHops: []topo.NodeID{m1, m2}}); err != nil {
		t.Fatal(err)
	}
	if err := vg.Synchronize(m1, SyncState{NextHops: []topo.NodeID{d}}); err != nil {
		t.Fatal(err)
	}
	if err := vg.Synchronize(d, SyncState{Delivers: true}); err != nil {
		t.Fatal(err)
	}
	if v := vg.Verdict(); v != Satisfied {
		t.Fatalf("ECMP path: %v, want satisfied", v)
	}
}

// TestDGQAgreesWithMTRandom drives random synchronization orders over
// random graphs and requires DGQ and MT to agree after every step, and
// verdicts to be monotone (never revert to unknown or flip).
func TestDGQAgreesWithMTRandom(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		n := 5 + rng.Intn(6)
		g := topo.New()
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), topo.RoleSwitch, -1)
		}
		for i := 1; i < n; i++ {
			g.AddLink(topo.NodeID(i), topo.NodeID(rng.Intn(i)))
		}
		extra := rng.Intn(n)
		for i := 0; i < extra; i++ {
			a, b := topo.NodeID(rng.Intn(n)), topo.NodeID(rng.Intn(n))
			if a != b {
				g.AddLink(a, b)
			}
		}
		src := topo.NodeID(rng.Intn(n))
		dst := topo.NodeID(rng.Intn(n))
		expr := spec.MustParse(g.Node(src).Name + " .* >")
		vg := NewVGraph(g, expr, []topo.NodeID{src}, func(x topo.NodeID) bool { return x == dst })

		prev := Unknown
		order := rng.Perm(n)
		for _, di := range order {
			dev := topo.NodeID(di)
			var st SyncState
			if dev == dst && rng.Intn(2) == 0 {
				st.Delivers = true
			}
			nbrs := g.Neighbors(dev)
			if len(nbrs) > 0 && rng.Intn(4) > 0 {
				st.NextHops = []topo.NodeID{nbrs[rng.Intn(len(nbrs))]}
			}
			if err := vg.Synchronize(dev, st); err != nil {
				t.Fatal(err)
			}
			dgq, mt := vg.Verdict(), vg.VerdictByTraversal()
			if dgq != mt {
				t.Fatalf("trial %d: DGQ=%v MT=%v after syncing %d", trial, dgq, mt, dev)
			}
			if prev != Unknown && dgq != prev {
				t.Fatalf("trial %d: verdict flipped %v → %v (not consistent)", trial, prev, dgq)
			}
			prev = dgq
		}
		// Fully synchronized network must yield a deterministic verdict.
		if prev == Unknown {
			// Legal only if some state is both non-delivering and
			// forwarding in circles; verify MT agrees it is unknown...
			// in a fully synchronized network the only unknown source is
			// a forwarding loop among synchronized nodes, which the
			// reachability question cannot distinguish from delivery —
			// the loop checker (package ce2d) covers that. Accept.
			continue
		}
	}
}

func TestSubtreeRehook(t *testing.T) {
	// Chain with a shortcut: pruning the chain edge must re-hook the tail
	// through the shortcut, keeping the verdict unknown, then satisfied.
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	c := g.AddNode("c", topo.RoleSwitch, -1)
	d := g.AddNode("d", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c)
	g.AddLink(c, d)
	g.AddLink(a, c) // shortcut
	vg := NewVGraph(g, spec.MustParse("a .* d"), []topo.NodeID{a},
		func(n topo.NodeID) bool { return n == d })
	// a syncs to use the shortcut only: edge a→b removed; c,d must remain
	// reachable via a→c.
	if err := vg.Synchronize(a, SyncState{NextHops: []topo.NodeID{c}}); err != nil {
		t.Fatal(err)
	}
	if v := vg.Verdict(); v != Unknown {
		t.Fatalf("after shortcut sync: %v, want unknown", v)
	}
	if err := vg.Synchronize(c, SyncState{NextHops: []topo.NodeID{d}}); err != nil {
		t.Fatal(err)
	}
	if err := vg.Synchronize(d, SyncState{Delivers: true}); err != nil {
		t.Fatal(err)
	}
	if v := vg.Verdict(); v != Satisfied {
		t.Fatalf("final: %v, want satisfied", v)
	}
}

func TestDropBreaksReachability(t *testing.T) {
	// Line a-b-c: b syncs with no next hops (drop) → unsatisfied early.
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	c := g.AddNode("c", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c)
	vg := NewVGraph(g, spec.MustParse("a .* c"), []topo.NodeID{a},
		func(n topo.NodeID) bool { return n == c })
	if err := vg.Synchronize(b, SyncState{}); err != nil { // drops
		t.Fatal(err)
	}
	if v := vg.Verdict(); v != Unsatisfied {
		t.Fatalf("drop at cut vertex: %v, want unsatisfied", v)
	}
}

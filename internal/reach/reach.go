// Package reach implements the CE2D verification graph for regular
// expression requirements (§4.2 of the paper): the cross product of the
// network graph and the requirement DFA, with two verdict procedures:
//
//   - DGQ — the decremental graph query: an Even–Shiloach-style
//     decremental single-source reachability structure over the product
//     graph. Edges are only ever removed (a device synchronizing prunes
//     the edges incompatible with its forwarding action), so "no accept
//     state reachable" is a consistent early UNSATISFIED verdict, and a
//     source→accept path of synchronized devices is a consistent early
//     SATISFIED verdict.
//   - MT — model traversal, the baseline of Figure 12: a fresh DFS per
//     query.
//
// One VGraph is built per (requirement, packet-space/EC) pair; package
// ce2d owns the per-EC bookkeeping.
package reach

import (
	"fmt"

	"repro/internal/spec"
	"repro/internal/topo"
)

// Verdict is the three-valued result of consistent partial verification.
type Verdict uint8

// Verdicts.
const (
	Unknown Verdict = iota
	Satisfied
	Unsatisfied
)

func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "satisfied"
	case Unsatisfied:
		return "unsatisfied"
	default:
		return "unknown"
	}
}

// pnode is a product-graph node (device, DFA state).
type pnode struct {
	dev topo.NodeID
	q   int
}

// SyncState is a device's synchronized forwarding behavior for one EC.
type SyncState struct {
	// NextHops is where the device forwards the EC (ECMP sets allowed;
	// empty means the device does not forward it further).
	NextHops []topo.NodeID
	// Delivers reports whether the device delivers the EC locally (owns
	// the destination / forwards out an external port).
	Delivers bool
}

// VGraph is the verification graph G_P for one requirement and one EC.
type VGraph struct {
	topo *topo.Graph
	dfa  spec.Machine

	nodes []pnode
	index map[pnode]int
	out   [][]int32 // product adjacency (node ids), mutated by pruning
	in    [][]int32

	// accept[i]: node i's DFA state accepts and its device can still
	// deliver (unsynchronized, or synchronized with Delivers).
	accept      []bool
	acceptCount int

	// Decremental reachability from a virtual root (-1 parent marks it).
	reached      []bool
	parent       []int32
	children     [][]int32
	initial      []int32
	reachableAcc int

	sync map[topo.NodeID]SyncState
}

// NewVGraph builds the product of the topology and the requirement
// expression for the given sources, using the topology's (undirected)
// adjacency. isDest marks destination-owner devices (consumed by the '>'
// hop and by delivery acceptance).
func NewVGraph(g *topo.Graph, expr *spec.Expr, sources []topo.NodeID, isDest func(topo.NodeID) bool) *VGraph {
	return NewVGraphEdges(g, expr, sources, isDest, g.Neighbors)
}

// NewVGraphEdges is NewVGraph with an explicit successor function, so
// callers can restrict the potential-path set — e.g. to the directed
// links of Figure 3, or to valley-free Clos paths. A tighter successor
// set yields earlier detection; any superset of the real forwarding
// behavior keeps detection consistent.
func NewVGraphEdges(g *topo.Graph, expr *spec.Expr, sources []topo.NodeID, isDest func(topo.NodeID) bool, succ func(topo.NodeID) []topo.NodeID) *VGraph {
	if isDest == nil {
		isDest = func(topo.NodeID) bool { return false }
	}
	dfa := expr.CompileMachine(g, isDest)
	vg := &VGraph{
		topo:  g,
		dfa:   dfa,
		index: make(map[pnode]int),
		sync:  make(map[topo.NodeID]SyncState),
	}
	// BFS the reachable product space from the initial states.
	var queue []int
	for _, src := range sources {
		q := dfa.Step(dfa.Start(), src)
		if q == spec.Dead {
			continue
		}
		id := vg.intern(pnode{src, q}, isDest)
		vg.initial = append(vg.initial, int32(id))
		queue = append(queue, id)
	}
	for qi := 0; qi < len(queue); qi++ {
		id := queue[qi]
		n := vg.nodes[id]
		for _, v := range succ(n.dev) {
			nq := dfa.Step(n.q, v)
			if nq == spec.Dead {
				continue
			}
			to := pnode{v, nq}
			tid, existed := vg.index[to], true
			if _, ok := vg.index[to]; !ok {
				tid = vg.intern(to, isDest)
				existed = false
			}
			vg.out[id] = append(vg.out[id], int32(tid))
			vg.in[tid] = append(vg.in[tid], int32(id))
			if !existed {
				queue = append(queue, tid)
			}
		}
	}
	vg.initReachability()
	return vg
}

func (vg *VGraph) intern(n pnode, isDest func(topo.NodeID) bool) int {
	id := len(vg.nodes)
	vg.nodes = append(vg.nodes, n)
	vg.index[n] = id
	vg.out = append(vg.out, nil)
	vg.in = append(vg.in, nil)
	acc := vg.dfa.Accepting(n.q) && isDest(n.dev)
	vg.accept = append(vg.accept, acc)
	if acc {
		vg.acceptCount++
	}
	return id
}

// initReachability seeds the decremental structure: BFS from the initial
// states, recording a parent forest.
func (vg *VGraph) initReachability() {
	n := len(vg.nodes)
	vg.reached = make([]bool, n)
	vg.parent = make([]int32, n)
	vg.children = make([][]int32, n)
	for i := range vg.parent {
		vg.parent[i] = -2 // unreached
	}
	var queue []int32
	for _, id := range vg.initial {
		if !vg.reached[id] {
			vg.reached[id] = true
			vg.parent[id] = -1 // virtual root
			queue = append(queue, id)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range vg.out[u] {
			if !vg.reached[v] {
				vg.reached[v] = true
				vg.parent[v] = u
				vg.children[u] = append(vg.children[u], v)
				queue = append(queue, v)
			}
		}
	}
	vg.reachableAcc = 0
	for i, acc := range vg.accept {
		if acc && vg.reached[i] {
			vg.reachableAcc++
		}
	}
}

// NumNodes reports the product-graph size.
func (vg *VGraph) NumNodes() int { return len(vg.nodes) }

// Clone deep-copies the verification graph's mutable state. CE2D clones a
// class's graph when the equivalence class splits (Algorithm 2, L9-10);
// immutable structure (node table, DFA) is shared.
func (vg *VGraph) Clone() *VGraph {
	c := *vg
	c.out = cloneAdj(vg.out)
	c.in = cloneAdj(vg.in)
	c.children = cloneAdj(vg.children)
	c.accept = append([]bool(nil), vg.accept...)
	c.reached = append([]bool(nil), vg.reached...)
	c.parent = append([]int32(nil), vg.parent...)
	c.sync = make(map[topo.NodeID]SyncState, len(vg.sync))
	for k, v := range vg.sync {
		c.sync[k] = v
	}
	return &c
}

func cloneAdj(a [][]int32) [][]int32 {
	out := make([][]int32, len(a))
	for i, s := range a {
		out[i] = append([]int32(nil), s...)
	}
	return out
}

// Synchronize records that a device has converged on the given behavior
// for this EC, pruning the product edges that contradict it (the
// decremental update of §4.2). Re-synchronizing a device with a different
// behavior is not supported — that would add edges back; CE2D instead
// spawns a fresh verifier for the new epoch.
func (vg *VGraph) Synchronize(dev topo.NodeID, st SyncState) error {
	if old, ok := vg.sync[dev]; ok {
		if !sameSync(old, st) {
			return fmt.Errorf("reach: device %d re-synchronized with different behavior", dev)
		}
		return nil
	}
	vg.sync[dev] = st
	allowed := make(map[topo.NodeID]bool, len(st.NextHops))
	for _, nh := range st.NextHops {
		allowed[nh] = true
	}
	// Prune outgoing edges of every product node of this device that go
	// to a non-next-hop device, and drop acceptance where the device no
	// longer delivers.
	for id, n := range vg.nodes {
		if n.dev != dev {
			continue
		}
		if vg.accept[id] && !st.Delivers {
			vg.accept[id] = false
			vg.acceptCount--
			if vg.reached[id] {
				vg.reachableAcc--
			}
		}
		kept := vg.out[id][:0]
		var removed []int32
		for _, to := range vg.out[id] {
			if allowed[vg.nodes[to].dev] {
				kept = append(kept, to)
			} else {
				removed = append(removed, to)
			}
		}
		vg.out[id] = kept
		for _, to := range removed {
			vg.removeInEdge(int32(id), to)
		}
	}
	return nil
}

func sameSync(a, b SyncState) bool {
	if a.Delivers != b.Delivers || len(a.NextHops) != len(b.NextHops) {
		return false
	}
	m := make(map[topo.NodeID]bool, len(a.NextHops))
	for _, x := range a.NextHops {
		m[x] = true
	}
	for _, x := range b.NextHops {
		if !m[x] {
			return false
		}
	}
	return true
}

// removeInEdge deletes u from v's in-list and repairs reachability if the
// deleted edge was v's tree edge.
func (vg *VGraph) removeInEdge(u, v int32) {
	in := vg.in[v]
	for i, x := range in {
		if x == u {
			in[i] = in[len(in)-1]
			vg.in[v] = in[:len(in)-1]
			break
		}
	}
	if vg.parent[v] != u {
		return
	}
	vg.detachChild(u, v)
	vg.rehook(v)
}

func (vg *VGraph) detachChild(p, c int32) {
	ch := vg.children[p]
	for i, x := range ch {
		if x == c {
			ch[i] = ch[len(ch)-1]
			vg.children[p] = ch[:len(ch)-1]
			return
		}
	}
}

// rehook repairs the reachability forest after v lost its tree parent:
// the whole subtree of v tries to find replacement parents; nodes that
// cannot become unreachable (permanently — the graph is decremental).
func (vg *VGraph) rehook(v int32) {
	// Collect v's subtree.
	sub := []int32{v}
	inSub := map[int32]bool{v: true}
	for qi := 0; qi < len(sub); qi++ {
		for _, c := range vg.children[sub[qi]] {
			sub = append(sub, c)
			inSub[c] = true
		}
	}
	// Tentatively unreach the subtree.
	for _, s := range sub {
		vg.reached[s] = false
		vg.parent[s] = -2
		vg.children[s] = vg.children[s][:0]
	}
	// Re-hook from outside-reachable in-neighbors, then BFS within.
	var frontier []int32
	for _, s := range sub {
		for _, p := range vg.in[s] {
			if vg.reached[p] {
				vg.reached[s] = true
				vg.parent[s] = p
				vg.children[p] = append(vg.children[p], s)
				frontier = append(frontier, s)
				break
			}
		}
	}
	for qi := 0; qi < len(frontier); qi++ {
		u := frontier[qi]
		for _, w := range vg.out[u] {
			if inSub[w] && !vg.reached[w] {
				vg.reached[w] = true
				vg.parent[w] = u
				vg.children[u] = append(vg.children[u], w)
				frontier = append(frontier, w)
			}
		}
	}
	// Account accept nodes that fell off.
	for _, s := range sub {
		if !vg.reached[s] && vg.accept[s] {
			vg.reachableAcc--
		}
	}
}

// AcceptReachable answers the decremental reachability query of
// Algorithm 2 in O(1) from maintained state: can any accept state still
// be reached? false is a consistent early UNSATISFIED verdict.
func (vg *VGraph) AcceptReachable() bool { return vg.reachableAcc > 0 }

// AcceptReachableByTraversal answers the same question by a full DFS (the
// MT baseline of Figure 12).
func (vg *VGraph) AcceptReachableByTraversal() bool {
	seen := make([]bool, len(vg.nodes))
	var stack []int32
	for _, id := range vg.initial {
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if vg.accept[u] {
			return true
		}
		for _, w := range vg.out[u] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// Verdict returns the consistent early-detection result using the
// decremental reachability structure (DGQ):
//
//   - Unsatisfied when no accept state remains reachable — no future
//     update can restore it (the graph only loses edges).
//   - Satisfied when a path of synchronized devices from a synchronized
//     source reaches a delivering accept state — no future update can
//     remove it (synchronized devices do not change within an epoch).
//   - Unknown otherwise.
func (vg *VGraph) Verdict() Verdict {
	if vg.reachableAcc == 0 {
		return Unsatisfied
	}
	if vg.satisfiedBySync() {
		return Satisfied
	}
	return Unknown
}

// satisfiedBySync looks for a requirement-compliant path consisting of
// synchronized devices only.
func (vg *VGraph) satisfiedBySync() bool {
	seen := make(map[int32]bool)
	var stack []int32
	for _, id := range vg.initial {
		if _, ok := vg.sync[vg.nodes[id].dev]; ok {
			stack = append(stack, id)
			seen[id] = true
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := vg.nodes[u]
		st := vg.sync[n.dev] // u's device is synchronized by construction
		if vg.accept[u] && st.Delivers {
			return true
		}
		for _, w := range vg.out[u] {
			if seen[w] {
				continue
			}
			if _, ok := vg.sync[vg.nodes[w].dev]; !ok {
				continue
			}
			seen[w] = true
			stack = append(stack, w)
		}
	}
	return false
}

// VerdictByTraversal is the MT baseline of Figure 12: it answers the same
// three-way question by a full DFS over the current product graph,
// without any incremental state.
func (vg *VGraph) VerdictByTraversal() Verdict {
	// Reachability of any accept node, full graph.
	seen := make([]bool, len(vg.nodes))
	var stack []int32
	for _, id := range vg.initial {
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	anyAccept := false
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if vg.accept[u] {
			anyAccept = true
			break
		}
		for _, w := range vg.out[u] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if !anyAccept {
		return Unsatisfied
	}
	if vg.satisfiedBySync() {
		return Satisfied
	}
	return Unknown
}

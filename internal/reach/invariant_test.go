package reach

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/topo"
)

// bfsReached recomputes reachability from the initial states over the
// current (pruned) adjacency — the ground truth the Even–Shiloach-style
// structure must always match.
func bfsReached(vg *VGraph) []bool {
	out := make([]bool, len(vg.nodes))
	var queue []int32
	for _, id := range vg.initial {
		if !out[id] {
			out[id] = true
			queue = append(queue, id)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range vg.out[u] {
			if !out[v] {
				out[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// TestDecrementalReachabilityInvariant drives random synchronization
// sequences and, after every single pruning step, compares the maintained
// reached set and accept counter against a fresh BFS.
func TestDecrementalReachabilityInvariant(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(71000 + trial)))
		n := 5 + rng.Intn(8)
		g := topo.New()
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), topo.RoleSwitch, -1)
		}
		for i := 1; i < n; i++ {
			g.AddLink(topo.NodeID(i), topo.NodeID(rng.Intn(i)))
		}
		for e := 0; e < n; e++ {
			a, b := topo.NodeID(rng.Intn(n)), topo.NodeID(rng.Intn(n))
			if a != b {
				g.AddLink(a, b)
			}
		}
		src := topo.NodeID(rng.Intn(n))
		dst := topo.NodeID(rng.Intn(n))
		vg := NewVGraph(g, spec.MustParse(g.Node(src).Name+" .* >"),
			[]topo.NodeID{src}, func(x topo.NodeID) bool { return x == dst })

		checkInvariant := func(step string) {
			t.Helper()
			want := bfsReached(vg)
			acc := 0
			for i := range want {
				if vg.reached[i] != want[i] {
					t.Fatalf("trial %d %s: node %d reached=%v, BFS says %v",
						trial, step, i, vg.reached[i], want[i])
				}
				if want[i] && vg.accept[i] {
					acc++
				}
			}
			if vg.reachableAcc != acc {
				t.Fatalf("trial %d %s: reachableAcc=%d, BFS says %d",
					trial, step, vg.reachableAcc, acc)
			}
			// Parent forest consistency: every reached non-initial node's
			// parent is reached and has an edge to it.
			for i := range want {
				if !vg.reached[i] || vg.parent[i] == -1 {
					continue
				}
				p := vg.parent[i]
				if p == -2 {
					t.Fatalf("trial %d %s: reached node %d has no parent", trial, step, i)
				}
				if !vg.reached[p] {
					t.Fatalf("trial %d %s: node %d's parent %d unreached", trial, step, i, p)
				}
				found := false
				for _, w := range vg.out[p] {
					if w == int32(i) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d %s: tree edge %d→%d not in graph", trial, step, p, i)
				}
			}
		}
		checkInvariant("initial")
		for _, di := range rng.Perm(n) {
			dev := topo.NodeID(di)
			st := SyncState{Delivers: dev == dst && rng.Intn(2) == 0}
			nbrs := g.Neighbors(dev)
			if len(nbrs) > 0 && rng.Intn(5) > 0 {
				st.NextHops = []topo.NodeID{nbrs[rng.Intn(len(nbrs))]}
			}
			if err := vg.Synchronize(dev, st); err != nil {
				t.Fatal(err)
			}
			checkInvariant("after sync " + g.Node(dev).Name)
		}
	}
}

// TestCloneInvariantIndependence: mutations on a clone must not disturb
// the original's decremental structure, and both must stay consistent.
func TestCloneInvariantIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	g := topo.New()
	const n = 7
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a'+i)), topo.RoleSwitch, -1)
	}
	for i := 1; i < n; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID(rng.Intn(i)))
	}
	g.AddLink(0, 6)
	vg := NewVGraph(g, spec.MustParse("a .* >"), []topo.NodeID{0},
		func(x topo.NodeID) bool { return x == 6 })
	if err := vg.Synchronize(0, SyncState{NextHops: []topo.NodeID{g.Neighbors(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	c := vg.Clone()
	// Diverge the clone.
	if err := c.Synchronize(3, SyncState{}); err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]*VGraph{"original": vg, "clone": c} {
		want := bfsReached(v)
		for i := range want {
			if v.reached[i] != want[i] {
				t.Fatalf("%s: node %d inconsistent after clone divergence", name, i)
			}
		}
	}
}

package imt

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/pat"
	"repro/internal/pred"
)

// Stats accumulates the Transformer's cost breakdown, matching the three
// phases of Figure 11: computing atomic overwrites (Map), overwrite
// aggregation (Reduce I/II), and applying overwrites (cross product).
type Stats struct {
	MapTime    time.Duration // merge + atomic-overwrite computation
	ReduceTime time.Duration // Reduce I and Reduce II
	ApplyTime  time.Duration // cross product with the model
	Blocks     int           // update blocks processed
	Updates    int           // native rule updates processed
	Atomic     int           // atomic overwrites produced by Map
	Aggregated int           // conflict-free overwrites after Reduce II
}

// Total is the total model-update time.
func (s Stats) Total() time.Duration { return s.MapTime + s.ReduceTime + s.ApplyTime }

// Transformer maintains a forward model (per-device rule tables), its
// equivalent inverse model, and applies native update blocks using Fast
// IMT. It is the paper's "model manager". A Transformer is not safe for
// concurrent use; Flash runs one per subspace verifier.
//
// As in the paper (footnote 4), every device table is expected to carry a
// permanent lowest-priority default (wildcard) rule before other rules
// are deleted: Algorithm 1 attributes space freed by a deletion to the
// lower-priority rules that now match it, so a deletion with no
// lower-priority coverage would leave the freed space's action stale.
type Transformer struct {
	E     pred.Engine
	Store *pat.Store

	tables map[fib.DeviceID]*fib.Table
	model  *Model
	stats  Stats
	m      metrics

	// PerUpdate forces block size 1 internally (the "Flash (per-update
	// mode)" variant of Figure 11): every native update becomes its own
	// block, so aggregation never kicks in.
	PerUpdate bool

	// Tag names the subspace this transformer covers in diagnostics
	// (flashcheck assertions in particular). Optional.
	Tag string
}

// metrics holds resolved observability handles. The zero value (all nil)
// is the uninstrumented state: every call on it is a nil-receiver no-op,
// so the hot path pays only predictable branches and no allocation.
type metrics struct {
	blocks     *obs.Counter   // update blocks processed
	updates    *obs.Counter   // native rule updates processed
	atomicOWs  *obs.Counter   // atomic overwrites produced by Map
	aggregated *obs.Counter   // conflict-free overwrites after Reduce II
	mapNs      *obs.Histogram // per-block Map phase latency
	reduceNs   *obs.Histogram // per-block Reduce I+II latency
	applyNs    *obs.Histogram // per-block cross-product latency
	ecs        *obs.Gauge     // equivalence classes in the inverse model
	rules      *obs.Gauge     // rules installed across device tables
	fcNs       *obs.Histogram // flashcheck invariant-pass latency (tagged builds)
	fcOps      *obs.Counter   // BDD ops spent by flashcheck passes (tagged builds)
}

// Instrument attaches the transformer to an observability registry,
// resolving metric handles once. The metric names mirror the Stats
// fields (and so Table 3 / Figure 11 of the paper): blocks, updates,
// atomic_overwrites, aggregated_overwrites; map_ns, reduce_ns, apply_ns;
// ecs, rules. Instrument(nil) leaves the transformer uninstrumented.
func (t *Transformer) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	t.m = metrics{
		blocks:     r.Counter("blocks"),
		updates:    r.Counter("updates"),
		atomicOWs:  r.Counter("atomic_overwrites"),
		aggregated: r.Counter("aggregated_overwrites"),
		mapNs:      r.Histogram("map_ns"),
		reduceNs:   r.Histogram("reduce_ns"),
		applyNs:    r.Histogram("apply_ns"),
		ecs:        r.Gauge("ecs"),
		rules:      r.Gauge("rules"),
		fcNs:       r.Histogram("flashcheck_ns"),
		fcOps:      r.Counter("flashcheck_ops"),
	}
}

// NewTransformer creates a Transformer over the given engine with an
// inverse model covering universe (bdd.True for unpartitioned operation).
func NewTransformer(e pred.Engine, store *pat.Store, universe bdd.Ref) *Transformer {
	return &Transformer{
		E:      e,
		Store:  store,
		tables: make(map[fib.DeviceID]*fib.Table),
		model:  NewModel(universe),
	}
}

// Model returns the current inverse model. Callers must treat it as
// read-only between ApplyBlock calls.
func (t *Transformer) Model() *Model { return t.model }

// Stats returns the accumulated cost breakdown.
func (t *Transformer) Stats() Stats { return t.stats }

// ResetStats zeroes the cost breakdown.
func (t *Transformer) ResetStats() { t.stats = Stats{} }

// Table returns the device's forwarding table, creating an empty one on
// first use.
func (t *Transformer) Table(dev fib.DeviceID) *fib.Table {
	tb, ok := t.tables[dev]
	if !ok {
		tb = fib.NewTable()
		t.tables[dev] = tb
	}
	return tb
}

// NumRules reports the total number of rules across all device tables.
func (t *Transformer) NumRules() int {
	n := 0
	for _, tb := range t.tables {
		n += tb.Len()
	}
	return n
}

// atomic is one atomic overwrite (eff, {y_dev = action}) before reduction.
//
//flashvet:allow bddref — eff is minted and consumed inside one ApplyBlock call on t.E
//flashvet:allow gcroot — atomics are dead before ApplyBlock returns; no collection can interleave
type atomic struct {
	eff    bdd.Ref
	action fib.Action
}

// ApplyBlock runs the full Fast IMT pipeline (MR2) on a set of per-device
// update blocks: Map each block to atomic overwrites, Reduce I within each
// device by action, Reduce II across devices by predicate, then apply the
// conflict-free overwrites to the inverse model.
func (t *Transformer) ApplyBlock(blocks []fib.Block) error {
	if t.PerUpdate {
		return t.applyPerUpdate(blocks)
	}
	t.stats.Blocks++
	t.m.blocks.Inc()

	// ---- Map: Algorithm 1 per device. ----
	// A call may carry several blocks for the same device (the batcher
	// only coalesces adjacent same-device blocks, so a buffer like
	// [d, d', d] arrives with d split in two). Decomposing each split
	// separately would hand Reduce I overlapping atom sets whose
	// temporal order the by-action merge then scrambles — a clear from
	// the first split could erase headers the second split re-covers.
	// Fold every device's updates into one stream first: Algorithm 1
	// computes the old→final transition of the whole stream atomically.
	blocks = mergeSameDevice(blocks)
	start := time.Now()
	updatesBefore, atomicBefore := t.stats.Updates, t.stats.Atomic
	type devAtoms struct {
		dev   fib.DeviceID
		atoms []atomic
	}
	perDev := make([]devAtoms, 0, len(blocks))
	for _, b := range blocks {
		t.stats.Updates += len(b.Updates)
		atoms, err := t.decompose(b.Device, b.Updates)
		if err != nil {
			return fmt.Errorf("imt: device %d: %w", b.Device, err)
		}
		t.stats.Atomic += len(atoms)
		if len(atoms) > 0 {
			perDev = append(perDev, devAtoms{b.Device, atoms})
		}
	}
	mapElapsed := time.Since(start)
	t.stats.MapTime += mapElapsed
	t.m.mapNs.Observe(mapElapsed)
	t.m.updates.Add(int64(t.stats.Updates - updatesBefore))
	t.m.atomicOWs.Add(int64(t.stats.Atomic - atomicBefore))

	// ---- Reduce I: per device, aggregate by action. ----
	start = time.Now()
	type keyed struct {
		dev    fib.DeviceID
		action fib.Action
	}
	byAction := make(map[keyed]bdd.Ref)
	var order []keyed // deterministic iteration
	for _, da := range perDev {
		for _, a := range da.atoms {
			k := keyed{da.dev, a.action}
			if p, ok := byAction[k]; ok {
				byAction[k] = t.E.Or(p, a.eff)
			} else {
				byAction[k] = a.eff
				order = append(order, k)
			}
		}
	}

	// ---- Reduce II: across devices, aggregate by predicate. ----
	type merged struct {
		delta pat.Ref
		clear []fib.DeviceID
	}
	byPred := make(map[bdd.Ref]*merged)
	var predOrder []bdd.Ref
	for _, k := range order {
		p := byAction[k]
		m, ok := byPred[p]
		if !ok {
			m = &merged{}
			byPred[p] = m
			predOrder = append(predOrder, p)
		}
		if k.action == fib.None {
			m.clear = append(m.clear, k.dev)
		} else {
			m.delta = t.Store.Set(m.delta, k.dev, k.action)
		}
	}
	ows := make([]Overwrite, 0, len(predOrder))
	for _, p := range predOrder {
		ows = append(ows, Overwrite{Pred: p, Delta: byPred[p].delta, Clear: byPred[p].clear})
	}
	t.stats.Aggregated += len(ows)
	reduceElapsed := time.Since(start)
	t.stats.ReduceTime += reduceElapsed
	t.m.reduceNs.Observe(reduceElapsed)
	t.m.aggregated.Add(int64(len(ows)))

	// ---- Apply: cross product with the model. ----
	start = time.Now()
	t.model.Apply(t.E, t.Store, ows)
	applyElapsed := time.Since(start)
	t.stats.ApplyTime += applyElapsed
	t.m.applyNs.Observe(applyElapsed)
	t.observeModel()
	t.checkModelInvariants("ApplyBlock")
	return nil
}

// mergeSameDevice folds duplicate-device blocks into one update stream
// per device, keeping first-appearance device order and per-device
// update order. The common case (all devices distinct) returns the
// input untouched; when a merge is needed the merged block gets fresh
// storage, so callers' update slices are never mutated.
func mergeSameDevice(blocks []fib.Block) []fib.Block {
	seen := make(map[fib.DeviceID]int, len(blocks))
	dup := false
	for _, b := range blocks {
		if _, ok := seen[b.Device]; ok {
			dup = true
			break
		}
		seen[b.Device] = 0
	}
	if !dup {
		return blocks
	}
	merged := make([]fib.Block, 0, len(blocks))
	idx := make(map[fib.DeviceID]int, len(blocks))
	for _, b := range blocks {
		if j, ok := idx[b.Device]; ok {
			m := &merged[j]
			ups := make([]fib.Update, 0, len(m.Updates)+len(b.Updates))
			ups = append(append(ups, m.Updates...), b.Updates...)
			m.Updates = ups
		} else {
			idx[b.Device] = len(merged)
			merged = append(merged, b)
		}
	}
	return merged
}

// observeModel refreshes the instantaneous model gauges. The size walks
// are gated on instrumentation so the uninstrumented path never pays for
// them.
func (t *Transformer) observeModel() {
	if t.m.ecs == nil {
		return
	}
	t.m.ecs.Set(int64(t.model.Len()))
	t.m.rules.Set(int64(t.NumRules()))
}

// applyPerUpdate processes every native update as its own single-rule
// block, bypassing aggregation (Figure 11's per-update mode).
func (t *Transformer) applyPerUpdate(blocks []fib.Block) error {
	t.stats.Blocks++
	t.m.blocks.Inc()
	for _, b := range blocks {
		for _, u := range b.Updates {
			t.stats.Updates++
			t.m.updates.Inc()
			start := time.Now()
			atoms, err := t.decompose(b.Device, []fib.Update{u})
			if err != nil {
				return fmt.Errorf("imt: device %d: %w", b.Device, err)
			}
			t.stats.Atomic += len(atoms)
			t.m.atomicOWs.Add(int64(len(atoms)))
			mapElapsed := time.Since(start)
			t.stats.MapTime += mapElapsed
			t.m.mapNs.Observe(mapElapsed)

			start = time.Now()
			ows := make([]Overwrite, 0, len(atoms))
			for _, a := range atoms {
				if a.action == fib.None {
					ows = append(ows, Overwrite{Pred: a.eff, Clear: []fib.DeviceID{b.Device}})
				} else {
					ows = append(ows, Overwrite{Pred: a.eff, Delta: t.Store.Set(pat.Empty, b.Device, a.action)})
				}
			}
			t.stats.Aggregated += len(ows)
			t.m.aggregated.Add(int64(len(ows)))
			t.model.Apply(t.E, t.Store, ows)
			applyElapsed := time.Since(start)
			t.stats.ApplyTime += applyElapsed
			t.m.applyNs.Observe(applyElapsed)
		}
	}
	t.observeModel()
	t.checkModelInvariants("applyPerUpdate")
	return nil
}

// decompose implements Algorithm 1: it merges the device's native update
// block into its sorted table (mutating the stored table to the final
// state R') and returns the atomic overwrites equivalent to the block.
func (t *Transformer) decompose(dev fib.DeviceID, updates []fib.Update) ([]atomic, error) {
	if len(updates) == 0 {
		return nil, nil
	}
	table := t.Table(dev)

	// L1-2: remove canceling updates, sort by priority (descending).
	ups := fib.RemoveCanceling(updates)
	fib.SortByPriority(ups)

	// L3: merge block and collect potentially-expanding rules.
	diff, hadDeletes, err := mergeBlockAndDiff(table, ups)
	if err != nil {
		return nil, err
	}

	// L5: compute atomic overwrites for the expanding rules.
	atoms := t.calculateAtomicOverwrites(table, diff)

	// Deletions can free header space no remaining rule covers (the
	// workloads that drain tables completely, e.g. insert-then-delete
	// storms, exercise this). Emit a clear overwrite for it; with the
	// paper's permanent default rule this disjunction short-circuits to
	// True immediately and the clear is empty.
	if hadDeletes {
		cover := bdd.False
		for _, r := range table.Rules() {
			cover = t.E.Or(cover, r.Match)
			if cover == bdd.True {
				break
			}
		}
		if uncovered := t.E.Not(cover); uncovered != bdd.False {
			atoms = append(atoms, atomic{eff: uncovered, action: fib.None})
		}
	}
	return atoms, nil
}

// mergeBlockAndDiff is Algorithm 1's MergeBlockAndDiff: a single merge of
// the sorted update block into the sorted table. It returns Rdiff, the
// expanding rules (new rules, plus any rule over which a higher-priority
// rule was deleted), sorted by descending priority. O(K lg K + T) simple
// operations.
func mergeBlockAndDiff(table *fib.Table, ups []fib.Update) ([]fib.Rule, bool, error) {
	old := table.Rules()
	merged := make([]fib.Rule, 0, len(old)+len(ups))
	var diff []fib.Rule
	higherDeleted := false

	i, j := 0, 0
	for j < len(ups) {
		u := ups[j]
		// Does the update's position come after the current rule?
		if i < len(old) && old[i].Less(u.Rule) {
			if higherDeleted {
				diff = append(diff, old[i]) // r may expand
			}
			merged = append(merged, old[i])
			i++
			continue
		}
		switch u.Op {
		case fib.Insert:
			if i < len(old) && old[i].ID == u.Rule.ID && old[i].Pri == u.Rule.Pri {
				return nil, false, fmt.Errorf("insert of existing rule %d (pri %d)", u.Rule.ID, u.Rule.Pri)
			}
			merged = append(merged, u.Rule)
			diff = append(diff, u.Rule) // new rules expand
		case fib.Delete:
			if i >= len(old) || old[i].ID != u.Rule.ID || old[i].Pri != u.Rule.Pri {
				return nil, false, fmt.Errorf("delete of missing rule %d (pri %d)", u.Rule.ID, u.Rule.Pri)
			}
			i++ // drop old[i]
			higherDeleted = true
		}
		j++
	}
	for ; i < len(old); i++ {
		if higherDeleted {
			diff = append(diff, old[i])
		}
		merged = append(merged, old[i])
	}
	table.ReplaceAll(merged)
	return diff, higherDeleted, nil
}

// calculateAtomicOverwrites is Algorithm 1's CalculateAtomicOverwrite:
// one joint sweep of the sorted final table R' and the sorted diff list,
// computing each expanding rule's effective predicate with an accumulated
// higher-priority union. O(T + K) predicate operations.
func (t *Transformer) calculateAtomicOverwrites(table *fib.Table, diff []fib.Rule) []atomic {
	if len(diff) == 0 {
		return nil
	}
	rules := table.Rules()
	out := make([]atomic, 0, len(diff))
	p := bdd.False // union of matches with strictly higher table order
	i := 0
	for _, rd := range diff {
		for i < len(rules) && rules[i].Less(rd) {
			p = t.E.Or(p, rules[i].Match)
			i++
		}
		// rules[i] is rd itself (every diff rule is in R').
		eff := t.E.Diff(rd.Match, p)
		if eff != bdd.False {
			out = append(out, atomic{eff: eff, action: rd.Action})
		}
	}
	return out
}

// BehaviorAt returns the action vector the forward model assigns to the
// header encoded by the BDD assignment: the paper's b_R(h). It is the
// reference oracle the tests compare the inverse model against.
func (t *Transformer) BehaviorAt(assignment []bool) map[fib.DeviceID]fib.Action {
	out := make(map[fib.DeviceID]fib.Action, len(t.tables))
	for dev, tb := range t.tables {
		if a := tb.Lookup(t.E, assignment); a != fib.None {
			out[dev] = a
		}
	}
	return out
}

// Devices returns the device IDs with a (possibly empty) table, sorted.
func (t *Transformer) Devices() []fib.DeviceID {
	out := make([]fib.DeviceID, 0, len(t.tables))
	for d := range t.tables {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roots yields every BDD ref the transformer's state holds — the EC
// model (universe + class predicates) and each device table's rule
// matches — for the engine's mark-and-sweep GC root set.
func (t *Transformer) Roots(yield func(bdd.Ref)) {
	t.model.Roots(yield)
	for _, tb := range t.tables {
		tb.Roots(yield)
	}
}

// RemapRefs rewrites all held refs through a GC remap. Must be called
// exactly once after each collection on t.E.
func (t *Transformer) RemapRefs(m bdd.Remap) {
	t.model.RemapRefs(m)
	for _, tb := range t.tables {
		tb.RemapRefs(m)
	}
}

package imt

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/pat"
)

func newTestRig() (*hs.Space, *pat.Store, *Transformer) {
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	ps := pat.NewStore()
	tr := NewTransformer(s.E, ps, bdd.True)
	return s, ps, tr
}

func ins(dev fib.DeviceID, r fib.Rule) fib.Block {
	return fib.Block{Device: dev, Updates: []fib.Update{{Op: fib.Insert, Rule: r}}}
}

func TestModelInitial(t *testing.T) {
	_, _, tr := newTestRig()
	m := tr.Model()
	if m.Len() != 1 {
		t.Fatalf("initial model has %d classes, want 1", m.Len())
	}
	if err := m.Validate(tr.E); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExample reproduces the Figure 2 walk-through: a 3-switch
// network, base FIBs, then a 6-rule HTTP-policy block.
func TestPaperExample(t *testing.T) {
	// Layout: 8-bit dst (subnets A=0x10/4, B=0x20/4), 1-bit "http" flag.
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}, hs.Field{Name: "http", Bits: 1}))
	ps := pat.NewStore()
	tr := NewTransformer(s.E, ps, bdd.True)

	const (
		s1 fib.DeviceID = 0
		s2 fib.DeviceID = 1
		s3 fib.DeviceID = 2
	)
	A := fib.Forward(10) // host A
	GW := fib.Forward(11)
	toS1, toS2, toS3 := fib.Forward(s1), fib.Forward(s2), fib.Forward(s3)

	subnetA := s.Prefix("dst", 0x10, 4)
	subnetB := s.Prefix("dst", 0x20, 4)
	initial := []fib.Block{
		{Device: s1, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: subnetA, Pri: 2, Action: A}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: subnetB, Pri: 1, Action: A}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: toS3}},
		}},
		{Device: s2, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: subnetA, Pri: 2, Action: toS1}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: subnetB, Pri: 1, Action: toS1}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: toS3}},
		}},
		{Device: s3, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: subnetA, Pri: 2, Action: toS1}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: subnetB, Pri: 1, Action: toS1}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: GW}},
		}},
	}
	if err := tr.ApplyBlock(initial); err != nil {
		t.Fatal(err)
	}
	m := tr.Model()
	if err := m.Validate(tr.E); err != nil {
		t.Fatal(err)
	}
	// Figure 2's initial inverse model: 2 behaviors
	// (A,S1,S1) for subnet A∨B, (S3,S3,GW) for the rest.
	if m.Len() != 2 {
		t.Fatalf("initial model has %d classes, want 2", m.Len())
	}
	vecAB := ps.FromMap(map[fib.DeviceID]fib.Action{s1: A, s2: toS1, s3: toS1})
	if p, ok := m.ECs[vecAB]; !ok {
		t.Fatal("missing (A,S1,S1) class")
	} else if p != tr.E.Or(subnetA, subnetB) {
		t.Error("(A,S1,S1) class predicate is not subnetA ∨ subnetB")
	}

	// The event of Figure 2: HTTP to the two subnets uses path S3→S2→S1.
	http := s.Exact("http", 1)
	p4 := tr.E.And(subnetA, http)
	p5 := tr.E.And(subnetB, http)
	policy := []fib.Block{
		{Device: s1, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 4, Match: p4, Pri: 3, Action: A}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 5, Match: p5, Pri: 3, Action: A}},
		}},
		{Device: s2, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 4, Match: p4, Pri: 3, Action: toS1}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 5, Match: p5, Pri: 3, Action: toS1}},
		}},
		{Device: s3, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 4, Match: p4, Pri: 3, Action: toS2}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 5, Match: p5, Pri: 3, Action: toS2}},
		}},
	}
	before := tr.Stats()
	if err := tr.ApplyBlock(policy); err != nil {
		t.Fatal(err)
	}
	after := tr.Stats()
	if err := m.Validate(tr.E); err != nil {
		t.Fatal(err)
	}
	// Final model (Figure 2 lower right): 3 classes; the new one is
	// p3 = p4 ∨ p5 with vector (A, S1, S2).
	if m.Len() != 3 {
		t.Fatalf("final model has %d classes, want 3", m.Len())
	}
	vecHTTP := ps.FromMap(map[fib.DeviceID]fib.Action{s1: A, s2: toS1, s3: toS2})
	if p, ok := m.ECs[vecHTTP]; !ok {
		t.Fatal("missing HTTP-path class")
	} else if p != tr.E.Or(p4, p5) {
		t.Error("HTTP class predicate is not p4 ∨ p5")
	}
	// MR2 aggregation: the 6 policy updates collapse to few conflict-free
	// overwrites. Reduce I merges p4/p5 per device; Reduce II merges
	// devices S1+S2? No — their actions differ per device, but predicates
	// coincide, so Reduce II merges the three devices' aggregated
	// predicates into a single overwrite (all three share p4∨p5).
	if got := after.Aggregated - before.Aggregated; got != 1 {
		t.Errorf("aggregated overwrites for policy block = %d, want 1", got)
	}
	if got := after.Atomic - before.Atomic; got != 6 {
		t.Errorf("atomic overwrites for policy block = %d, want 6", got)
	}
}

func TestDeleteExpandsLowerRules(t *testing.T) {
	s, ps, tr := newTestRig()
	d := fib.DeviceID(0)
	hi := fib.Rule{ID: 1, Match: s.Prefix("dst", 0x10, 4), Pri: 5, Action: fib.Forward(1)}
	lo := fib.Rule{ID: 2, Match: s.Prefix("dst", 0x10, 5), Pri: 3, Action: fib.Forward(2)}
	def := fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: fib.Drop}
	for _, r := range []fib.Rule{hi, lo, def} {
		if err := tr.ApplyBlock([]fib.Block{ins(d, r)}); err != nil {
			t.Fatal(err)
		}
	}
	// dst=0x10 currently hits rule 1.
	asg := s.Assignment(hs.Header{0x10})
	vec, ok := tr.Model().Lookup(tr.E, asg)
	if !ok || ps.Get(vec, d) != fib.Forward(1) {
		t.Fatalf("before delete: action = %v", ps.Get(vec, d))
	}
	// Delete rule 1: 0x10 falls to rule 2, 0x18 falls to default.
	err := tr.ApplyBlock([]fib.Block{{Device: d, Updates: []fib.Update{{Op: fib.Delete, Rule: hi}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Model().Validate(tr.E); err != nil {
		t.Fatal(err)
	}
	vec, _ = tr.Model().Lookup(tr.E, asg)
	if ps.Get(vec, d) != fib.Forward(2) {
		t.Errorf("after delete, 0x10 action = %v, want fwd(2)", ps.Get(vec, d))
	}
	vec, _ = tr.Model().Lookup(tr.E, s.Assignment(hs.Header{0x18}))
	if ps.Get(vec, d) != fib.Drop {
		t.Errorf("after delete, 0x18 action = %v, want drop", ps.Get(vec, d))
	}
}

func TestErrors(t *testing.T) {
	s, _, tr := newTestRig()
	d := fib.DeviceID(0)
	r := fib.Rule{ID: 1, Match: s.Exact("dst", 1), Pri: 1, Action: fib.Drop}
	if err := tr.ApplyBlock([]fib.Block{ins(d, r)}); err != nil {
		t.Fatal(err)
	}
	// Duplicate insert fails.
	if err := tr.ApplyBlock([]fib.Block{ins(d, r)}); err == nil {
		t.Error("duplicate insert accepted")
	}
	// Delete of missing rule fails.
	miss := fib.Rule{ID: 99, Pri: 7}
	err := tr.ApplyBlock([]fib.Block{{Device: d, Updates: []fib.Update{{Op: fib.Delete, Rule: miss}}}})
	if err == nil {
		t.Error("delete of missing rule accepted")
	}
}

// randomWorkload builds a random initial table state and a random update
// block for nDev devices, returning blocks for initial state and updates.
func randomWorkload(s *hs.Space, rng *rand.Rand, nDev, nInit, nUpd int) (init, upd []fib.Block) {
	nextID := int64(1)
	type devRules struct{ rules []fib.Rule }
	state := make([]devRules, nDev)
	randMatch := func() bdd.Ref {
		switch rng.Intn(3) {
		case 0:
			return s.Prefix("dst", uint64(rng.Intn(256)), rng.Intn(9))
		case 1:
			return s.Exact("dst", uint64(rng.Intn(256)))
		default:
			return s.Suffix("dst", uint64(rng.Intn(256)), 1+rng.Intn(4))
		}
	}
	for d := 0; d < nDev; d++ {
		b := fib.Block{Device: fib.DeviceID(d)}
		// Default rule so tables are total.
		def := fib.Rule{ID: nextID, Match: bdd.True, Pri: 0, Action: fib.Drop}
		nextID++
		b.Updates = append(b.Updates, fib.Update{Op: fib.Insert, Rule: def})
		state[d].rules = append(state[d].rules, def)
		for k := 0; k < nInit; k++ {
			r := fib.Rule{
				ID: nextID, Match: randMatch(),
				Pri:    int32(1 + rng.Intn(8)),
				Action: fib.Forward(fib.DeviceID(rng.Intn(nDev + 2))),
			}
			nextID++
			b.Updates = append(b.Updates, fib.Update{Op: fib.Insert, Rule: r})
			state[d].rules = append(state[d].rules, r)
		}
		init = append(init, b)
	}
	for d := 0; d < nDev; d++ {
		b := fib.Block{Device: fib.DeviceID(d)}
		for k := 0; k < nUpd; k++ {
			if rng.Intn(2) == 0 && len(state[d].rules) > 1 {
				// Delete a random non-default live rule.
				i := 1 + rng.Intn(len(state[d].rules)-1)
				r := state[d].rules[i]
				state[d].rules = append(state[d].rules[:i], state[d].rules[i+1:]...)
				b.Updates = append(b.Updates, fib.Update{Op: fib.Delete, Rule: r})
			} else {
				r := fib.Rule{
					ID: nextID, Match: randMatch(),
					Pri:    int32(1 + rng.Intn(8)),
					Action: fib.Forward(fib.DeviceID(rng.Intn(nDev + 2))),
				}
				nextID++
				state[d].rules = append(state[d].rules, r)
				b.Updates = append(b.Updates, fib.Update{Op: fib.Insert, Rule: r})
			}
		}
		upd = append(upd, b)
	}
	return init, upd
}

// TestEquivalenceRandom is the central correctness property (R ∼ M,
// Theorem 2): after random blocks of mixed inserts/deletes, the inverse
// model must agree with the forward model on every sampled header, and
// must equal the independently computed natural transformation and the
// per-update variant.
func TestEquivalenceRandom(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		blockTr := NewTransformer(s.E, ps, bdd.True)
		perUpdTr := NewTransformer(s.E, ps, bdd.True)
		perUpdTr.PerUpdate = true

		init, upd := randomWorkload(s, rng, 4, 10, 12)
		for _, tr := range []*Transformer{blockTr, perUpdTr} {
			if err := tr.ApplyBlock(init); err != nil {
				t.Fatal(err)
			}
			if err := tr.ApplyBlock(upd); err != nil {
				t.Fatal(err)
			}
			if err := tr.Model().Validate(tr.E); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}

		// Oracle 1: forward-model lookup on every header value.
		for h := uint64(0); h < 256; h++ {
			asg := s.Assignment(hs.Header{h})
			want := blockTr.BehaviorAt(asg)
			for name, tr := range map[string]*Transformer{"block": blockTr, "per-update": perUpdTr} {
				vec, ok := tr.Model().Lookup(tr.E, asg)
				if !ok {
					t.Fatalf("trial %d: header %#x not covered by %s model", trial, h, name)
				}
				got := ps.ToMap(vec)
				if len(got) != len(want) {
					t.Fatalf("trial %d %s: header %#x vector %v, want %v", trial, name, h, got, want)
				}
				for d, a := range want {
					if got[d] != a {
						t.Fatalf("trial %d %s: header %#x dev %d = %v, want %v", trial, name, h, d, got[d], a)
					}
				}
			}
		}

		// Oracle 2: natural transformation of the final tables yields the
		// same classes (same vector→predicate map).
		nat := NaturalTransform(s.E, ps, bdd.True, map[fib.DeviceID]*fib.Table{
			0: blockTr.Table(0), 1: blockTr.Table(1), 2: blockTr.Table(2), 3: blockTr.Table(3),
		})
		if nat.Len() != blockTr.Model().Len() {
			t.Fatalf("trial %d: natural transform has %d classes, Fast IMT has %d",
				trial, nat.Len(), blockTr.Model().Len())
		}
		for vec, p := range nat.ECs {
			if blockTr.Model().ECs[vec] != p {
				t.Fatalf("trial %d: class mismatch vs natural transform", trial)
			}
		}
	}
}

func TestSubspaceUniverseRestriction(t *testing.T) {
	s, _, _ := newTestRig()
	sub := s.Prefix("dst", 0x00, 1) // lower half of the space
	ps := pat.NewStore()
	tr := NewTransformer(s.E, ps, sub)
	d := fib.DeviceID(0)
	blocks := []fib.Block{{Device: d, Updates: []fib.Update{
		{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: s.E.And(sub, s.Prefix("dst", 0x10, 4)), Pri: 1, Action: fib.Forward(1)}},
		{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: sub, Pri: 0, Action: fib.Drop}},
	}}}
	if err := tr.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	if err := tr.Model().Validate(tr.E); err != nil {
		t.Fatal(err)
	}
	if tr.Model().Len() != 2 {
		t.Fatalf("subspace model has %d classes, want 2", tr.Model().Len())
	}
}

func TestStatsAccumulate(t *testing.T) {
	s, _, tr := newTestRig()
	d := fib.DeviceID(0)
	err := tr.ApplyBlock([]fib.Block{{Device: d, Updates: []fib.Update{
		{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
		{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: s.Exact("dst", 5), Pri: 2, Action: fib.Forward(1)}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Blocks != 1 || st.Updates != 2 {
		t.Errorf("Blocks/Updates = %d/%d, want 1/2", st.Blocks, st.Updates)
	}
	if st.Atomic == 0 || st.Aggregated == 0 {
		t.Error("atomic/aggregated counts not recorded")
	}
	if st.Total() <= 0 {
		t.Error("Total() duration not positive")
	}
	tr.ResetStats()
	if tr.Stats().Blocks != 0 {
		t.Error("ResetStats did not clear")
	}
	if tr.NumRules() != 2 {
		t.Errorf("NumRules = %d, want 2", tr.NumRules())
	}
	if len(tr.Devices()) != 1 || tr.Devices()[0] != d {
		t.Errorf("Devices = %v", tr.Devices())
	}
}

func TestCancelingBlockIsNoOp(t *testing.T) {
	s, _, tr := newTestRig()
	d := fib.DeviceID(0)
	if err := tr.ApplyBlock([]fib.Block{ins(d, fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop})}); err != nil {
		t.Fatal(err)
	}
	before := tr.Model().ECs[tr.Store.Set(pat.Empty, d, fib.Drop)]
	r := fib.Rule{ID: 2, Match: s.Exact("dst", 7), Pri: 5, Action: fib.Forward(3)}
	err := tr.ApplyBlock([]fib.Block{{Device: d, Updates: []fib.Update{
		{Op: fib.Insert, Rule: r}, {Op: fib.Delete, Rule: r},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model().Len() != 1 {
		t.Fatalf("canceling block changed the model: %d classes", tr.Model().Len())
	}
	after := tr.Model().ECs[tr.Store.Set(pat.Empty, d, fib.Drop)]
	if before != after {
		t.Error("canceling block changed the class predicate")
	}
	if tr.NumRules() != 1 {
		t.Errorf("canceling block changed the table: %d rules", tr.NumRules())
	}
}

func TestAggregationReducesOverwrites(t *testing.T) {
	// A block installing the same flow across many devices must collapse
	// to a single conflict-free overwrite (Reduce II), and per-device
	// multi-rule same-action inserts must collapse by action (Reduce I).
	s, _, tr := newTestRig()
	for d := fib.DeviceID(0); d < 8; d++ {
		if err := tr.ApplyBlock([]fib.Block{ins(d, fib.Rule{ID: int64(d) + 1, Match: bdd.True, Pri: 0, Action: fib.Drop})}); err != nil {
			t.Fatal(err)
		}
	}
	tr.ResetStats()
	flow := s.Prefix("dst", 0x40, 4)
	var blocks []fib.Block
	for d := fib.DeviceID(0); d < 8; d++ {
		blocks = append(blocks, fib.Block{Device: d, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 100 + int64(d), Match: flow, Pri: 5, Action: fib.Forward(d + 1)}},
		}})
	}
	if err := tr.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Atomic != 8 {
		t.Errorf("Atomic = %d, want 8", st.Atomic)
	}
	if st.Aggregated != 1 {
		t.Errorf("Aggregated = %d, want 1 (Reduce II should merge all devices)", st.Aggregated)
	}
	if err := tr.Model().Validate(tr.E); err != nil {
		t.Fatal(err)
	}
	if tr.Model().Len() != 2 {
		t.Errorf("model has %d classes, want 2", tr.Model().Len())
	}
}

// TestApplyBlockRepeatedDevice: one ApplyBlock call may legally carry
// several blocks for the same device (the batcher only coalesces
// *adjacent* same-device blocks, so a pending buffer like [d, d', d]
// reaches the transformer with d split in two). Aggregation must not
// scramble their temporal order: here the first d-block's delete frees
// the 0/1 half of the space (a clear overwrite) and the second d-block
// re-covers it with fwd(6). Merging both blocks' fwd(6) atoms into one
// overwrite ahead of the clear would wrongly erase the re-covered half.
func TestApplyBlockRepeatedDevice(t *testing.T) {
	s, ps, tr := newTestRig()
	hi := s.Prefix("dst", 0xC0, 2)  // 192..255
	top := s.Prefix("dst", 0x80, 1) // 128..255
	low := s.Prefix("dst", 0x00, 1) // 0..127
	r1 := fib.Rule{ID: 1, Pri: 30, Match: hi, Action: fib.Forward(1)}
	r2 := fib.Rule{ID: 2, Pri: 20, Match: top, Action: fib.Forward(6)}
	r3 := fib.Rule{ID: 3, Pri: 20, Match: low, Action: fib.Forward(6)}
	if err := tr.ApplyBlock([]fib.Block{ins(0, r1), ins(0, r2)}); err != nil {
		t.Fatal(err)
	}
	// Same device twice in one call: delete r1, then (second block)
	// insert r3. Sequential semantics: every header now forwards via 6.
	err := tr.ApplyBlock([]fib.Block{
		{Device: 0, Updates: []fib.Update{{Op: fib.Delete, Rule: r1}}},
		{Device: 0, Updates: []fib.Update{{Op: fib.Insert, Rule: r3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Model().Validate(tr.E); err != nil {
		t.Fatal(err)
	}
	for _, h := range []uint64{0, 5, 127, 128, 200, 255} {
		asg := s.Assignment([]uint64{h})
		vec, ok := tr.Model().Lookup(tr.E, asg)
		if !ok {
			t.Fatalf("header %d: not covered by any class", h)
		}
		if got := ps.Get(vec, 0); got != fib.Forward(6) {
			t.Errorf("header %d: model says dev0 %v, want fwd(6)", h, got)
		}
		want := tr.BehaviorAt(asg)
		if got := ps.Get(vec, 0); got != want[0] {
			t.Errorf("header %d: model %v disagrees with forward lookup %v", h, got, want[0])
		}
	}
}

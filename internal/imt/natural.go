package imt

import (
	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/pat"
	"repro/internal/pred"
)

// NaturalTransform computes the inverse model of a set of forwarding
// tables by direct transformation (Definition 12, the approach of the
// atomic-predicates work [21]): per device, compute each action's
// pre-image from effective predicates (Equations 1–2), then fold the
// per-device models together with the model overwrite operator.
//
// It is O(N·T) predicate operations and exists as the independently-coded
// correctness oracle for Fast IMT (Theorem 1 says the two must agree), and
// as the "global AP" special case the paper generalizes.
func NaturalTransform(e pred.Engine, store *pat.Store, universe bdd.Ref, tables map[fib.DeviceID]*fib.Table) *Model {
	m := NewModel(universe)
	for dev, tb := range tables {
		rules := tb.Rules()
		eff := tb.EffectivePredicates(e)
		// Φ_i: pre-image of each action value on this device.
		pre := make(map[fib.Action]bdd.Ref)
		for k, r := range rules {
			if r.Action == fib.None {
				continue
			}
			if p, ok := pre[r.Action]; ok {
				pre[r.Action] = e.Or(p, eff[k])
			} else {
				pre[r.Action] = eff[k]
			}
		}
		ows := make([]Overwrite, 0, len(pre))
		for a, p := range pre {
			ows = append(ows, Overwrite{Pred: p, Delta: store.Set(pat.Empty, dev, a)})
		}
		m.Apply(e, store, ows)
	}
	return m
}

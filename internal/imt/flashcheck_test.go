//go:build flashcheck

package imt_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/imt"
	"repro/internal/pat"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestInvariantsFatTreeWorkload drives Fast IMT through a fat-tree
// StdFIB workload with the invariant layer armed: after every applied
// block the flashcheck pass proves the EC family is a partition, the
// engine is canonical, and the inverse model agrees with the FIB
// tables. Any violation panics through the default Failf.
func TestInvariantsFatTreeWorkload(t *testing.T) {
	w := workload.LNetAPSP(topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1})
	tr := imt.NewTransformer(w.Space.E, pat.NewStore(), bdd.True)
	tr.Tag = "fattree-test"
	for _, blocks := range workload.Chunk(w.InsertSequence(), 16) {
		if err := tr.ApplyBlock(blocks); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Model().Len() < 2 {
		t.Fatalf("degenerate model after fat-tree workload: %d classes", tr.Model().Len())
	}

	// Same workload through the per-update path.
	w2 := workload.LNetAPSP(topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1})
	tr2 := imt.NewTransformer(w2.Space.E, pat.NewStore(), bdd.True)
	tr2.Tag = "fattree-perupdate"
	tr2.PerUpdate = true
	for _, blocks := range workload.Chunk(w2.InsertSequence(), 64) {
		if err := tr2.ApplyBlock(blocks); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptedECFamilyDetected deliberately drops one equivalence
// class from the model and asserts the flashcheck assertion fires with
// a diagnostic naming the corrupted subspace and the update block.
func TestCorruptedECFamilyDetected(t *testing.T) {
	var msgs []string
	orig := imt.Failf
	imt.Failf = func(format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	}
	defer func() { imt.Failf = orig }()

	w := workload.LNetAPSP(topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1})
	tr := imt.NewTransformer(w.Space.E, pat.NewStore(), bdd.True)
	tr.Tag = "corrupt-test"
	for _, blocks := range workload.Chunk(w.InsertSequence(), 32) {
		if err := tr.ApplyBlock(blocks); err != nil {
			t.Fatal(err)
		}
	}
	if len(msgs) != 0 {
		t.Fatalf("invariant failures on an uncorrupted run: %v", msgs)
	}

	// Drop one class: the family still consists of disjoint classes but
	// no longer covers the universe (Definition 6 broken).
	m := tr.Model()
	if m.Len() < 2 {
		t.Fatalf("need at least 2 classes to corrupt, have %d", m.Len())
	}
	for vec, pred := range m.ECs {
		if pred != m.Universe {
			delete(m.ECs, vec)
			break
		}
	}

	// The next applied block runs the invariant pass over the corrupted
	// family.
	if err := tr.ApplyBlock(nil); err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 {
		t.Fatal("flashcheck did not detect the dropped equivalence class")
	}
	diag := msgs[0]
	if !strings.Contains(diag, "does not cover") {
		t.Errorf("diagnostic does not name the violated invariant: %q", diag)
	}
	if !strings.Contains(diag, `subspace "corrupt-test"`) {
		t.Errorf("diagnostic does not name the corrupted subspace: %q", diag)
	}
	if !strings.Contains(diag, "block") {
		t.Errorf("diagnostic does not name the update block: %q", diag)
	}
}

package imt

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/obs"
	"repro/internal/pat"
)

func TestCoalesceMergesConsecutiveSameDevice(t *testing.T) {
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	r := func(id int) fib.Rule {
		return fib.Rule{ID: int64(id), Match: s.Prefix("dst", uint64(id), 8), Pri: 1, Action: fib.Forward(9)}
	}
	blocks := []fib.Block{
		ins(0, r(1)), ins(0, r(2)), ins(1, r(3)), ins(0, r(4)), ins(0, r(5)),
	}
	out := Coalesce(blocks)
	if len(out) != 3 {
		t.Fatalf("coalesced to %d blocks, want 3 (dev0 x2, dev1, dev0 x2)", len(out))
	}
	if out[0].Device != 0 || len(out[0].Updates) != 2 {
		t.Fatalf("block 0 = dev %d with %d updates, want dev 0 with 2", out[0].Device, len(out[0].Updates))
	}
	if out[1].Device != 1 || len(out[1].Updates) != 1 {
		t.Fatalf("block 1 = dev %d with %d updates, want dev 1 with 1", out[1].Device, len(out[1].Updates))
	}
	if out[2].Device != 0 || len(out[2].Updates) != 2 {
		t.Fatalf("block 2 = dev %d with %d updates, want dev 0 with 2 (no reorder across dev 1)", out[2].Device, len(out[2].Updates))
	}
	// Order within the merged block is submission order.
	if out[0].Updates[0].Rule.ID != 1 || out[0].Updates[1].Rule.ID != 2 {
		t.Fatalf("merged updates out of order: %+v", out[0].Updates)
	}
	// Input blocks are untouched.
	if len(blocks[0].Updates) != 1 {
		t.Fatalf("Coalesce mutated its input")
	}
}

// TestBatcherEquivalence proves batching is semantics-free: the same
// update stream applied through batchers of different sizes (including
// the degenerate Max=1 pass-through) yields byte-identical models.
func TestBatcherEquivalence(t *testing.T) {
	stream := func() []fib.Block {
		var out []fib.Block
		for i := 0; i < 40; i++ {
			dev := fib.DeviceID(i % 3)
			out = append(out, fib.Block{Device: dev, Updates: []fib.Update{{
				Op: fib.Insert,
				Rule: fib.Rule{
					ID:     int64(i + 1),
					Pri:    int32(i % 7),
					Action: fib.Forward(fib.DeviceID(5 + i%2)),
				},
			}}})
		}
		return out
	}

	type run struct {
		tr *Transformer
		s  *hs.Space
	}
	apply := func(max int) run {
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		tr := NewTransformer(s.E, pat.NewStore(), bdd.True)
		b := NewBatcher(tr, max)
		for _, blk := range stream() {
			// Compile the match on this engine.
			blk.Updates[0].Rule.Match = s.Prefix("dst", uint64(blk.Updates[0].Rule.ID%16)*16, 4)
			if err := b.Add([]fib.Block{blk}); err != nil {
				t.Fatalf("max=%d: %v", max, err)
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatalf("max=%d flush: %v", max, err)
		}
		if b.Pending() != 0 {
			t.Fatalf("max=%d: %d updates still pending after Flush", max, b.Pending())
		}
		return run{tr, s}
	}

	base := apply(1)
	for _, max := range []int{4, 16, 1 << 20} {
		got := apply(max)
		if got.tr.Model().Len() != base.tr.Model().Len() {
			t.Fatalf("max=%d: %d ECs, want %d", max, got.tr.Model().Len(), base.tr.Model().Len())
		}
		// Probe every header: per-device behavior must match.
		for x := 0; x < 256; x++ {
			asgB := base.s.Assignment([]uint64{uint64(x)})
			asgG := got.s.Assignment([]uint64{uint64(x)})
			for _, dev := range base.tr.Devices() {
				vb, okb := base.tr.Model().Lookup(base.tr.E, asgB)
				vg, okg := got.tr.Model().Lookup(got.tr.E, asgG)
				if okb != okg {
					t.Fatalf("max=%d header %d: coverage mismatch", max, x)
				}
				if base.tr.Store.Get(vb, dev) != got.tr.Store.Get(vg, dev) {
					t.Fatalf("max=%d header %d dev %d: behavior diverged", max, x, dev)
				}
			}
		}
	}
}

func TestBatcherBoundsAndCounters(t *testing.T) {
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	tr := NewTransformer(s.E, pat.NewStore(), bdd.True)
	b := NewBatcher(tr, 4)
	reg := obs.NewRegistry("batch-test")
	b.Instrument(reg)
	b.Instrument(nil) // no-op

	blk := func(dev int, id int) fib.Block {
		return fib.Block{Device: fib.DeviceID(dev), Updates: []fib.Update{{
			Op:   fib.Insert,
			Rule: fib.Rule{ID: int64(id), Match: s.Prefix("dst", uint64(id), 8), Pri: 1, Action: fib.Forward(9)},
		}}}
	}
	// Three same-device single-update blocks: buffered (3 < 4), two
	// coalesced into the first.
	for i := 1; i <= 3; i++ {
		if err := b.Add([]fib.Block{blk(0, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", b.Pending())
	}
	if st := b.Stats(); st.Coalesced != 2 || st.Flushes != 0 {
		t.Fatalf("stats = %+v, want 2 coalesced, 0 flushes", st)
	}
	// Fourth update reaches Max: flush fires.
	if err := b.Add([]fib.Block{blk(1, 4)}); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after reaching Max, want 0", b.Pending())
	}
	st := b.Stats()
	if st.Flushes != 1 || st.Blocks != 4 || st.Updates != 4 {
		t.Fatalf("stats = %+v, want 1 flush / 4 blocks / 4 updates", st)
	}
	// The whole batch went through one MR2 pass carrying all 4 updates —
	// that single shared pipeline invocation is the amortization win.
	if tr.Stats().Blocks != 1 || tr.Stats().Updates != 4 {
		t.Fatalf("transformer stats = %+v, want 1 MR2 pass with 4 updates", tr.Stats())
	}
	snap := reg.Snapshot()
	if v, ok := snap.Get("batch_flushes"); !ok || v != 1 {
		t.Fatalf("batch_flushes = %d (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Get("batch_coalesced"); !ok || v != 2 {
		t.Fatalf("batch_coalesced = %d (ok=%v), want 2", v, ok)
	}
}

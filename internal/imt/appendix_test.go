package imt

// Property tests for the formal theory of Appendix C: the algebraic facts
// the MR2 aggregation relies on. These operate on the package internals
// (Model.Apply and the overwrite representation) directly.

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/pat"
)

// cloneModel deep-copies a model for independent application orders.
func cloneModel(m *Model) *Model {
	c := NewModel(m.Universe)
	c.ECs = make(map[pat.Ref]bdd.Ref, len(m.ECs))
	for k, v := range m.ECs {
		c.ECs[k] = v
	}
	return c
}

// modelsEqual compares two models structurally (hash-consing makes this
// exact).
func modelsEqual(a, b *Model) bool {
	if len(a.ECs) != len(b.ECs) {
		return false
	}
	for k, v := range a.ECs {
		if b.ECs[k] != v {
			return false
		}
	}
	return true
}

// randomModel builds a random valid inverse model over nDev devices by
// applying random atomic overwrites to the initial model.
func randomModel(e *bdd.Engine, s *hs.Space, ps *pat.Store, rng *rand.Rand, nDev int) *Model {
	m := NewModel(bdd.True)
	for i := 0; i < 3+rng.Intn(5); i++ {
		dev := fib.DeviceID(rng.Intn(nDev))
		pred := s.Prefix("dst", uint64(rng.Intn(256)), rng.Intn(6))
		m.Apply(e, ps, []Overwrite{{
			Pred:  pred,
			Delta: ps.Set(pat.Empty, dev, fib.Forward(fib.DeviceID(rng.Intn(nDev+2)))),
		}})
	}
	return m
}

// randomAtomicSet builds a conflict-free atomic overwrite set: per
// device, the predicates are mutually disjoint (like effective
// predicates), and each overwrite writes one device.
func randomAtomicSet(e *bdd.Engine, s *hs.Space, ps *pat.Store, rng *rand.Rand, nDev int) []Overwrite {
	var out []Overwrite
	for d := 0; d < nDev; d++ {
		if rng.Intn(3) == 0 {
			continue
		}
		remaining := bdd.Ref(bdd.True)
		for k := 0; k < 1+rng.Intn(3); k++ {
			raw := s.Prefix("dst", uint64(rng.Intn(256)), 1+rng.Intn(6))
			pred := e.And(raw, remaining)
			if pred == bdd.False {
				continue
			}
			remaining = e.Diff(remaining, pred)
			out = append(out, Overwrite{
				Pred:  pred,
				Delta: ps.Set(pat.Empty, fib.DeviceID(d), fib.Forward(fib.DeviceID(rng.Intn(nDev+2)))),
			})
		}
	}
	return out
}

// TestTheorem3AtomicOverwritesCommute: applying a conflict-free set of
// atomic overwrites in any order yields the same model.
func TestTheorem3AtomicOverwritesCommute(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		base := randomModel(s.E, s, ps, rng, 4)
		ows := randomAtomicSet(s.E, s, ps, rng, 4)
		if len(ows) < 2 {
			continue
		}
		m1 := cloneModel(base)
		m1.Apply(s.E, ps, ows)

		perm := rng.Perm(len(ows))
		shuffled := make([]Overwrite, len(ows))
		for i, p := range perm {
			shuffled[i] = ows[p]
		}
		m2 := cloneModel(base)
		m2.Apply(s.E, ps, shuffled)

		if !modelsEqual(m1, m2) {
			t.Fatalf("trial %d: atomic overwrites did not commute", trial)
		}
		if err := m1.Validate(s.E); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestLemma1OverwriteAssociative: ((M ⊗ w1) ⊗ w2) equals M ⊗ (w1; w2)
// applied as one call (Model.Apply folds sequentially, so this also
// checks the fold's equivalence to stepwise application).
func TestLemma1OverwriteAssociative(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(7700 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		base := randomModel(s.E, s, ps, rng, 3)
		ows := randomAtomicSet(s.E, s, ps, rng, 3)

		joint := cloneModel(base)
		joint.Apply(s.E, ps, ows)

		step := cloneModel(base)
		for _, w := range ows {
			step.Apply(s.E, ps, []Overwrite{w})
		}
		if !modelsEqual(joint, step) {
			t.Fatalf("trial %d: fold != stepwise application", trial)
		}
	}
}

// TestTheorem4ReduceICorrect: merging same-device same-action overwrites
// by disjoining their predicates leaves the resulting model unchanged.
func TestTheorem4ReduceICorrect(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(8400 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		base := randomModel(s.E, s, ps, rng, 3)
		ows := randomAtomicSet(s.E, s, ps, rng, 3)

		plain := cloneModel(base)
		plain.Apply(s.E, ps, ows)

		// Reduce I: group by (delta) — each delta is a single-device
		// single-action write, so grouping by delta Ref is exactly
		// "aggregate by action".
		group := make(map[pat.Ref]bdd.Ref)
		var order []pat.Ref
		for _, w := range ows {
			if p, ok := group[w.Delta]; ok {
				group[w.Delta] = s.E.Or(p, w.Pred)
			} else {
				group[w.Delta] = w.Pred
				order = append(order, w.Delta)
			}
		}
		var reduced []Overwrite
		for _, d := range order {
			reduced = append(reduced, Overwrite{Pred: group[d], Delta: d})
		}
		agg := cloneModel(base)
		agg.Apply(s.E, ps, reduced)

		if !modelsEqual(plain, agg) {
			t.Fatalf("trial %d: Reduce I changed the model", trial)
		}
	}
}

// TestTheorem5ReduceIICorrect: merging same-predicate overwrites across
// devices into one multi-device delta leaves the model unchanged.
func TestTheorem5ReduceIICorrect(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(9100 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		base := randomModel(s.E, s, ps, rng, 4)

		// Construct same-predicate writes on several devices (the
		// network-wide flow-setup pattern of Intuition III).
		pred := s.Prefix("dst", uint64(rng.Intn(256)), 1+rng.Intn(4))
		var singles []Overwrite
		delta := pat.Empty
		for d := 0; d < 4; d++ {
			a := fib.Forward(fib.DeviceID(rng.Intn(6)))
			singles = append(singles, Overwrite{Pred: pred, Delta: ps.Set(pat.Empty, fib.DeviceID(d), a)})
			delta = ps.Set(delta, fib.DeviceID(d), a)
		}
		plain := cloneModel(base)
		plain.Apply(s.E, ps, singles)

		agg := cloneModel(base)
		agg.Apply(s.E, ps, []Overwrite{{Pred: pred, Delta: delta}})

		if !modelsEqual(plain, agg) {
			t.Fatalf("trial %d: Reduce II changed the model", trial)
		}
	}
}

// TestTheorem1NaturalEquivalence: the natural transformation of random
// well-behaved tables is behaviorally equivalent to the tables (spot
// check of Theorem 1 independent of Fast IMT).
func TestTheorem1NaturalEquivalence(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(9900 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		tables := make(map[fib.DeviceID]*fib.Table)
		for d := fib.DeviceID(0); d < 3; d++ {
			tb := fib.NewTable(fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop})
			for k := int64(2); k < 8; k++ {
				tb.Insert(fib.Rule{
					ID:     k,
					Match:  s.Prefix("dst", uint64(rng.Intn(256)), 1+rng.Intn(7)),
					Pri:    int32(k),
					Action: fib.Forward(fib.DeviceID(rng.Intn(5))),
				})
			}
			tables[d] = tb
		}
		m := NaturalTransform(s.E, ps, bdd.True, tables)
		if err := m.Validate(s.E); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for h := uint64(0); h < 256; h += 3 {
			asg := s.Assignment(hs.Header{h})
			vec, ok := m.Lookup(s.E, asg)
			if !ok {
				t.Fatalf("trial %d: header %#x uncovered", trial, h)
			}
			for d, tb := range tables {
				if got, want := ps.Get(vec, d), tb.Lookup(s.E, asg); got != want {
					t.Fatalf("trial %d: dev %d header %#x: model %v, table %v",
						trial, d, h, got, want)
				}
			}
		}
	}
}

package imt_test

import (
	"sort"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/pat"
)

// FuzzIMTOverwrite drives Fast IMT with a byte-decoded stream of rule
// inserts and deletes on a 6-bit header space, and cross-checks the
// resulting inverse model against a naive per-rule oracle by exhaustive
// enumeration of all 64 headers: every header must fall in exactly one
// equivalence class (Definition 6), and that class's action vector must
// equal the longest-prefix behavior computed rule-by-rule. This is the
// model-overwrite algebra of Appendix C exercised on adversarial
// priority/overlap patterns the structured workloads never produce.
func FuzzIMTOverwrite(f *testing.F) {
	f.Add([]byte{0x00, 0x15, 0x03, 0x02, 0x01, 0x2A, 0x06, 0x05})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x3F, 0x06, 0x07, 0x01, 0x3F, 0x06, 0x07, 0x02, 0x00, 0x00, 0x00, 0x03, 0x01, 0x00, 0x00})
	f.Add([]byte{0x01, 0x10, 0x02, 0x04, 0x03, 0x20, 0x01, 0x06, 0x00, 0x30, 0x03, 0x01, 0x02, 0x10, 0x02, 0x04})

	f.Fuzz(func(t *testing.T, data []byte) {
		const bits = 6
		if len(data) > 4*24 {
			data = data[:4*24] // bound BDD work per exec
		}
		space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "h", Bits: bits}))
		tr := imt.NewTransformer(space.E, pat.NewStore(), bdd.True)
		tr.Tag = "fuzz"

		// oracle is the naive forward state: the live rules per device.
		oracle := make(map[fib.DeviceID][]fib.Rule)
		nextID := int64(1)

		for len(data) >= 4 {
			b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
			data = data[4:]
			dev := fib.DeviceID(b0 % 3)
			var u fib.Update
			if b0&0x80 != 0 && len(oracle[dev]) > 0 {
				// Delete an existing rule, chosen by index.
				victim := oracle[dev][int(b1)%len(oracle[dev])]
				u = fib.Update{Op: fib.Delete, Rule: victim}
				rest := oracle[dev][:0]
				for _, r := range oracle[dev] {
					if r.ID != victim.ID {
						rest = append(rest, r)
					}
				}
				oracle[dev] = rest
			} else {
				value := uint64(b1 % (1 << bits))
				plen := int(b2) % (bits + 1)
				rule := fib.Rule{
					ID:     nextID,
					Match:  space.Prefix("h", value, plen),
					Pri:    int32(b3 % 8),
					Action: fib.Forward(fib.DeviceID(b3 % 4)),
				}
				nextID++
				u = fib.Update{Op: fib.Insert, Rule: rule}
				oracle[dev] = append(oracle[dev], rule)
			}
			if err := tr.ApplyBlock([]fib.Block{{Device: dev, Updates: []fib.Update{u}}}); err != nil {
				t.Fatal(err)
			}
		}

		// Exhaustive cross-check over the whole header space.
		m := tr.Model()
		for h := uint64(0); h < 1<<bits; h++ {
			a := space.Assignment(hs.Header{h})

			var vecs []pat.Ref
			for vec, pred := range m.ECs {
				if space.E.Eval(pred, a) {
					vecs = append(vecs, vec)
				}
			}
			if len(vecs) != 1 {
				t.Fatalf("header %#x falls in %d equivalence classes, want exactly 1 (Definition 6)", h, len(vecs))
			}
			got := tr.Store.ToMap(vecs[0])
			want := oracleBehavior(space, oracle, a)
			if !mapsEqual(got, want) {
				t.Fatalf("header %#x: inverse model says %v, naive oracle says %v", h, got, want)
			}
		}
	})
}

// oracleBehavior computes the per-device behavior of a header by direct
// highest-priority scan of the live rules — the definition Fast IMT
// must agree with.
func oracleBehavior(space *hs.Space, oracle map[fib.DeviceID][]fib.Rule, a []bool) map[fib.DeviceID]fib.Action {
	out := make(map[fib.DeviceID]fib.Action)
	for dev, rules := range oracle {
		sorted := append([]fib.Rule(nil), rules...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		for _, r := range sorted {
			if space.E.Eval(r.Match, a) {
				out[dev] = r.Action
				break
			}
		}
	}
	return out
}

func mapsEqual(a, b map[fib.DeviceID]fib.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Package imt implements the paper's primary contribution: the inverse
// model (equivalence-class representation of a data plane) and Fast
// Inverse Model Transformation (Fast IMT), the MR2 block-update algorithm
// of §3.
//
// A Model maps action vectors (interned persistent action trees, package
// pat) to BDD predicates; the Transformer maintains both the forward model
// (per-device fib.Tables) and the Model, and turns blocks of native rule
// updates into conflict-free model overwrites via:
//
//	Map      — Algorithm 1: merge each device's update block into its
//	           sorted table and compute one atomic overwrite per
//	           expanding rule in O(T+K) predicate operations;
//	Reduce I — aggregate atomic overwrites by action (disjoin their
//	           predicates);
//	Reduce II — aggregate across devices by predicate (merge their
//	           Δy action deltas);
//	Apply    — one cross product of the aggregated overwrites with the
//	           equivalence classes.
//
// The Transformer also keeps the per-phase timing breakdown that Figure 11
// of the paper reports.
package imt

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/pat"
	"repro/internal/pred"
)

// Model is the inverse model M = {(p_j, ®y_j)}: a partition of the header
// space into equivalence classes keyed by their (interned) action vector.
// Invariants (Definition 6): vectors unique (map keys), predicates
// mutually exclusive and jointly complementary over the subspace the
// model covers.
//
//flashvet:allow bddref — all predicates (ECs values and Universe) live in the owning Transformer's engine (Transformer.E)
type Model struct {
	// ECs maps an action vector to the predicate of the headers that
	// experience it.
	ECs map[pat.Ref]bdd.Ref
	// Universe is the subspace this model covers (bdd.True for the whole
	// header space; a subspace predicate under input-space partitioning).
	Universe bdd.Ref
}

// NewModel returns the inverse model of the empty data plane over the
// given universe: a single class with the all-zero action vector.
func NewModel(universe bdd.Ref) *Model {
	return &Model{ECs: map[pat.Ref]bdd.Ref{pat.Empty: universe}, Universe: universe}
}

// Len reports the number of equivalence classes.
func (m *Model) Len() int { return len(m.ECs) }

// Lookup returns the action vector of the class containing the header
// described by the BDD assignment. It is the behavior function b_M(h)
// restricted to the model's universe; ok is false if the header lies
// outside the universe.
func (m *Model) Lookup(e pred.Engine, assignment []bool) (pat.Ref, bool) {
	for vec, p := range m.ECs {
		if e.Eval(p, assignment) {
			return vec, true
		}
	}
	return pat.Empty, false
}

// Validate checks the inverse-model invariants of Definition 6:
// predicates pairwise disjoint, their union equal to the universe, and no
// class empty. Vector uniqueness is structural (map keys).
func (m *Model) Validate(e pred.Engine) error {
	union := bdd.False
	preds := make([]bdd.Ref, 0, len(m.ECs))
	for vec, p := range m.ECs {
		if p == bdd.False {
			return fmt.Errorf("imt: empty equivalence class for vector %d", vec)
		}
		preds = append(preds, p)
	}
	for i, p := range preds {
		for _, q := range preds[i+1:] {
			if e.And(p, q) != bdd.False {
				return fmt.Errorf("imt: equivalence classes overlap")
			}
		}
		union = e.Or(union, p)
	}
	if union != m.Universe {
		return fmt.Errorf("imt: classes do not cover the universe")
	}
	return nil
}

// Overwrite is a conflict-free model overwrite (Δp, Δy): headers in Δp
// have the non-zero coordinates of Δy written into their action vector,
// and the devices in Clear have their coordinate erased (action reset to
// fib.None). Clears arise when a deletion leaves header space with no
// covering rule at all — a case outside the paper's footnote-4
// assumption (a permanent default rule) that this implementation handles
// for robustness.
//
//flashvet:allow bddref — Pred is minted by the Transformer's engine during decompose and consumed by the same engine in Apply
//flashvet:allow gcroot — overwrites are transient within one ApplyBlock; batched updates awaiting application are enumerated by Batcher.Roots
type Overwrite struct {
	Pred  bdd.Ref
	Delta pat.Ref
	Clear []fib.DeviceID
}

// Apply applies a set of conflict-free overwrites to the model (the cross
// product of §3.2 / Definition 9). Overwrites must be conflict-free: any
// two with intersecting predicates must not write different actions at the
// same device. Fast IMT's pipeline guarantees this by construction.
func (m *Model) Apply(e pred.Engine, ps *pat.Store, ows []Overwrite) {
	for _, w := range ows {
		if w.Pred == bdd.False || (w.Delta == pat.Empty && len(w.Clear) == 0) {
			continue
		}
		m.applyOne(e, ps, w)
	}
}

func (m *Model) applyOne(e pred.Engine, ps *pat.Store, w Overwrite) {
	//flashvet:allow gcroot — transient intermediates within one applyOne call; dead before any collection can run
	type move struct {
		vec   pat.Ref
		inter bdd.Ref
		rem   bdd.Ref
	}
	var moves []move
	for vec, p := range m.ECs {
		inter := e.And(p, w.Pred)
		if inter == bdd.False {
			continue
		}
		moves = append(moves, move{vec: vec, inter: inter, rem: e.Diff(p, w.Pred)})
	}
	// Shrink every source class first, then add the moved space, so that
	// a class that is both a source and a target is not clobbered.
	for _, mv := range moves {
		if mv.rem == bdd.False {
			delete(m.ECs, mv.vec)
		} else {
			m.ECs[mv.vec] = mv.rem
		}
	}
	for _, mv := range moves {
		nv := ps.Overwrite(mv.vec, w.Delta)
		for _, dev := range w.Clear {
			nv = ps.Set(nv, dev, fib.None)
		}
		if old, ok := m.ECs[nv]; ok {
			m.ECs[nv] = e.Or(old, mv.inter)
		} else {
			m.ECs[nv] = mv.inter
		}
	}
}

// Roots yields the model's universe and every EC predicate, for the
// engine's mark-and-sweep GC root set.
func (m *Model) Roots(yield func(bdd.Ref)) {
	yield(m.Universe)
	for _, p := range m.ECs {
		yield(p)
	}
}

// RemapRefs rewrites the model's refs through a GC remap. The ECs map
// is keyed by PAT action vectors, which a BDD collection never moves,
// so only the predicate values change.
func (m *Model) RemapRefs(rm bdd.Remap) {
	m.Universe = rm.Apply(m.Universe)
	for vec, p := range m.ECs {
		m.ECs[vec] = rm.Apply(p)
	}
}

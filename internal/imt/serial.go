package imt

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/pat"
)

// RestoreTransformer rebuilds a Transformer from checkpointed state: an
// engine and PAT store already restored from their node dumps, the
// deserialized inverse model, and the per-device forward tables. The
// caller owns consistency between the pieces (all refs must be valid in
// e and store — checkpoint restore validates them section by section
// before calling here); Validate-level semantic checks are the caller's
// choice via Model.Validate.
//
// The restored transformer starts with a zero cost breakdown and no
// metric handles, like a Clone; the caller re-instruments it.
func RestoreTransformer(e *bdd.Engine, store *pat.Store, model *Model, tables map[fib.DeviceID]*fib.Table, tag string) (*Transformer, error) {
	if e == nil || store == nil || model == nil {
		return nil, fmt.Errorf("imt: restore: nil engine, store, or model")
	}
	if !e.CheckRef(model.Universe) {
		return nil, fmt.Errorf("imt: restore: model universe ref %d outside restored engine", model.Universe)
	}
	for vec, p := range model.ECs {
		if !store.CheckRef(vec) {
			return nil, fmt.Errorf("imt: restore: EC vector ref %d outside restored store", vec)
		}
		if !e.CheckRef(p) {
			return nil, fmt.Errorf("imt: restore: EC predicate ref %d outside restored engine", p)
		}
	}
	if tables == nil {
		tables = make(map[fib.DeviceID]*fib.Table)
	}
	for dev, tb := range tables {
		for _, r := range tb.Rules() {
			if !e.CheckRef(r.Match) {
				return nil, fmt.Errorf("imt: restore: device %d rule %d match ref %d outside restored engine", dev, r.ID, r.Match)
			}
		}
	}
	return &Transformer{
		E:      e,
		Store:  store,
		tables: tables,
		model:  model,
		Tag:    tag,
	}, nil
}

// ExportTables returns the live per-device forward tables, sorted by
// device. Checkpoint capture deep-copies them (via Clone) under the
// owning worker's lock; this accessor itself copies nothing.
func (t *Transformer) ExportTables() map[fib.DeviceID]*fib.Table { return t.tables }

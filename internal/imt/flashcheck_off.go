//go:build !flashcheck

package imt

// Without the flashcheck build tag the invariant layer compiles to
// nothing: this empty method is inlined away, so the hot path carries
// no branch, no closure and no extra state. The checking twin lives in
// flashcheck_on.go.
func (t *Transformer) checkModelInvariants(where string) {}

package imt

import (
	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/obs"
)

// Coalesce merges consecutive blocks for the same device into one block,
// preserving update order. Fast IMT's Map stage (§3.2) already merges
// the updates *within* one block into atomic overwrites; coalescing
// ahead of it means a burst of small same-device blocks pays the
// decompose + MR2 pipeline once instead of once per block. Blocks for
// different devices are never merged and never reordered, so the
// per-device update sequence — the invariant CE2D and the differential
// oracles rely on — is untouched. The input is not modified.
func Coalesce(blocks []fib.Block) []fib.Block {
	out := make([]fib.Block, 0, len(blocks))
	for _, b := range blocks {
		if n := len(out); n > 0 && out[n-1].Device == b.Device {
			out[n-1].Updates = append(out[n-1].Updates, b.Updates...)
			continue
		}
		// Copy the update slice so appending to a coalesced block never
		// scribbles over a caller-owned array.
		nb := fib.Block{Device: b.Device, Updates: append([]fib.Update(nil), b.Updates...)}
		out = append(out, nb)
	}
	return out
}

// BatchStats counts Batcher activity.
type BatchStats struct {
	Blocks    int // blocks accepted by Add
	Coalesced int // blocks merged into a same-device predecessor
	Updates   int // native updates accepted by Add
	Flushes   int // ApplyBlock invocations issued
}

// Batcher buffers update blocks ahead of a Transformer and flushes them
// through ApplyBlock as one batch, coalescing consecutive same-device
// blocks on the way in. Max bounds the buffered native-update count; a
// batch also flushes explicitly at epoch boundaries (the flash package
// calls Flush before any model query and at every epoch barrier, so a
// bounded batch can never delay a result indefinitely).
//
// A Batcher has the same ownership rules as its Transformer: one
// goroutine at a time, or the owner's lock held.
type Batcher struct {
	T *Transformer
	// Max is the flush threshold in buffered native updates. Values <= 1
	// disable buffering (every Add flushes immediately), so batch=1
	// reproduces unbatched behavior exactly.
	Max int

	pending  []fib.Block
	buffered int
	stats    BatchStats

	m batchMetrics
}

// batchMetrics holds resolved observability handles; zero value = off.
type batchMetrics struct {
	coalesced *obs.Counter
	flushes   *obs.Counter
	updates   *obs.Counter
}

// NewBatcher wraps a transformer with a bounded batch buffer.
func NewBatcher(t *Transformer, max int) *Batcher {
	return &Batcher{T: t, Max: max}
}

// Instrument publishes batch counters under r. Instrument(nil) is a
// no-op; handles resolve once, keeping the hot path allocation-free.
func (b *Batcher) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	b.m = batchMetrics{
		coalesced: r.Counter("batch_coalesced"),
		flushes:   r.Counter("batch_flushes"),
		updates:   r.Counter("batch_updates"),
	}
}

// Stats returns the activity counters.
func (b *Batcher) Stats() BatchStats { return b.stats }

// Pending reports the number of native updates currently buffered.
func (b *Batcher) Pending() int { return b.buffered }

// Add buffers one batch of blocks, coalescing each into the previous
// pending block when the device matches, and flushes once the buffered
// update count reaches Max. With Max <= 1 it degenerates to a direct
// ApplyBlock call.
func (b *Batcher) Add(blocks []fib.Block) error {
	for _, blk := range blocks {
		n := len(blk.Updates)
		b.stats.Blocks++
		b.stats.Updates += n
		b.m.updates.Add(int64(n))
		if k := len(b.pending); k > 0 && b.pending[k-1].Device == blk.Device {
			b.pending[k-1].Updates = append(b.pending[k-1].Updates, blk.Updates...)
			b.stats.Coalesced++
			b.m.coalesced.Inc()
		} else {
			nb := fib.Block{Device: blk.Device, Updates: append([]fib.Update(nil), blk.Updates...)}
			b.pending = append(b.pending, nb)
		}
		b.buffered += n
		if b.Max <= 1 || b.buffered >= b.Max {
			if err := b.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush applies all pending blocks through the transformer in one
// ApplyBlock and clears the buffer. Pending state is dropped even on
// error (the transformer treats block errors as caller bugs; retrying
// the same batch would fail the same way).
func (b *Batcher) Flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	blocks := b.pending
	b.pending = nil
	b.buffered = 0
	b.stats.Flushes++
	b.m.flushes.Inc()
	return b.T.ApplyBlock(blocks)
}

// Roots yields the Match refs of all buffered (not yet flushed)
// updates, for the engine's mark-and-sweep GC root set. The batcher
// owns its pending storage (Add copies update slices), so remapping
// here cannot alias the transformer's tables.
func (b *Batcher) Roots(yield func(bdd.Ref)) {
	for _, blk := range b.pending {
		for i := range blk.Updates {
			yield(blk.Updates[i].Rule.Match)
		}
	}
}

// RemapRefs rewrites the buffered Match refs through a GC remap.
func (b *Batcher) RemapRefs(m bdd.Remap) {
	for _, blk := range b.pending {
		for i := range blk.Updates {
			blk.Updates[i].Rule.Match = m.Apply(blk.Updates[i].Rule.Match)
		}
	}
}

//go:build flashcheck

// The flashcheck layer: runtime assertions of the invariants the
// paper's correctness argument rests on, compiled in only with
// `-tags flashcheck` (see DESIGN.md, "Static & runtime invariants").
// The no-op twin lives in flashcheck_off.go.

package imt

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/pat"
)

// Failf is the invariant-violation sink. It panics by default so a
// violation stops the run at the first inconsistent state; tests
// override it to capture the diagnostic.
var Failf = func(format string, args ...any) {
	panic("flashcheck: " + fmt.Sprintf(format, args...))
}

// disjointPairLimit bounds the O(n²) pairwise-AND disjointness proof;
// larger EC families fall back to the SatCount accounting argument
// (non-negative counts summing to |universe| with a verified union
// leave no room for overlap).
const disjointPairLimit = 128

// checkModelInvariants asserts, after an applied update block, that the
// inverse model is still a partition (Definition 6: class predicates
// pairwise disjoint and jointly covering the subspace universe), that
// the BDD engine is still canonical, and that the model agrees with the
// forward FIB tables (App. C model overwrite ⊗: a witness header of
// each class must experience exactly the class's action vector). The
// BDD operations and wall time it spends are visible in obs as
// flashcheck_ops and flashcheck_ns.
func (t *Transformer) checkModelInvariants(where string) {
	start := time.Now()
	ops0 := t.E.Ops()
	ctx := fmt.Sprintf("subspace %q, block %d, after %s", t.tagOrDefault(), t.stats.Blocks, where)

	type ec struct {
		vec  pat.Ref
		pred bdd.Ref
	}
	ecs := make([]ec, 0, len(t.model.ECs))
	union := bdd.False
	for vec, p := range t.model.ECs {
		if p == bdd.False {
			Failf("imt: %s: EC {%s} has an empty predicate (Definition 6: classes must be non-empty)", ctx, t.Store.String(vec))
		}
		ecs = append(ecs, ec{vec, p})
		union = t.E.Or(union, p)
	}
	if union != t.model.Universe {
		Failf("imt: %s: EC family does not cover the subspace: OR of %d class predicates != universe (Definition 6: jointly complementary)", ctx, len(ecs))
	}
	if len(ecs) <= disjointPairLimit {
		for i := range ecs {
			for j := i + 1; j < len(ecs); j++ {
				if t.E.And(ecs[i].pred, ecs[j].pred) != bdd.False {
					Failf("imt: %s: EC {%s} overlaps EC {%s} (Definition 6: mutually exclusive)", ctx, t.Store.String(ecs[i].vec), t.Store.String(ecs[j].vec))
				}
			}
		}
	} else {
		total := 0.0
		for _, c := range ecs {
			total += t.E.SatCount(c.pred)
		}
		if want := t.E.SatCount(t.model.Universe); total != want {
			Failf("imt: %s: EC SatCounts sum to %g but the universe holds %g headers (Definition 6: mutually exclusive)", ctx, total, want)
		}
	}
	if err := t.E.CheckInvariants(); err != nil {
		Failf("imt: %s: BDD engine lost canonicity: %v", ctx, err)
	}

	// PAT/FIB agreement: a witness header of each class must see the
	// class's action vector in the forward tables (b_R(h), App. C).
	for _, c := range ecs {
		w := t.E.AnySat(c.pred)
		if w == nil {
			continue
		}
		got := t.BehaviorAt(w)
		want := t.Store.ToMap(c.vec)
		if !behaviorEqual(got, want) {
			Failf("imt: %s: inverse model disagrees with FIB tables: class {%s} but forward lookup of a witness gives %v", ctx, t.Store.String(c.vec), got)
		}
	}

	t.m.fcOps.Add(int64(t.E.Ops() - ops0))
	t.m.fcNs.Observe(time.Since(start))
}

func (t *Transformer) tagOrDefault() string {
	if t.Tag == "" {
		return "unpartitioned"
	}
	return t.Tag
}

func behaviorEqual(a, b map[fib.DeviceID]fib.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for d, act := range a {
		if b[d] != act {
			return false
		}
	}
	return true
}

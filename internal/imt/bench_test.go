package imt

import (
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/obs"
	"repro/internal/pat"
)

// benchWorkload builds a deterministic block of prefix-rule inserts for
// nDev devices with rulesPer rules each.
func benchWorkload(s *hs.Space, nDev, rulesPer int) []fib.Block {
	blocks := make([]fib.Block, nDev)
	id := int64(1)
	for d := 0; d < nDev; d++ {
		blocks[d].Device = fib.DeviceID(d)
		blocks[d].Updates = append(blocks[d].Updates, fib.Update{
			Op: fib.Insert, Rule: fib.Rule{ID: id, Match: bdd.True, Pri: 0, Action: fib.Drop}})
		id++
		for k := 0; k < rulesPer; k++ {
			plen := 4 + (k % 5)
			val := uint64(k*37%256) << 8
			blocks[d].Updates = append(blocks[d].Updates, fib.Update{
				Op: fib.Insert, Rule: fib.Rule{
					ID: id, Match: s.Prefix("dst", val, plen), Pri: int32(plen),
					Action: fib.Forward(fib.DeviceID((d + k) % (nDev + 2))),
				}})
			id++
		}
	}
	return blocks
}

// BenchmarkIMT guards the Fast IMT hot path against observability
// overhead: metrics-off is the uninstrumented transformer (every hook a
// nil-receiver no-op — must match the pre-observability baseline),
// metrics-on attaches a registry and pays for the histogram writes.
func BenchmarkIMT(b *testing.B) {
	for _, mode := range []string{"metrics-off", "metrics-on"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
				tr := NewTransformer(s.E, pat.NewStore(), bdd.True)
				if mode == "metrics-on" {
					tr.Instrument(obs.NewRegistry("bench").Sub("imt"))
				}
				if err := tr.ApplyBlock(benchWorkload(s, 16, 24)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApplyBlockVsPerUpdate is the core Fast IMT micro-ablation.
func BenchmarkApplyBlockVsPerUpdate(b *testing.B) {
	for _, mode := range []string{"block", "per-update"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
				tr := NewTransformer(s.E, pat.NewStore(), bdd.True)
				tr.PerUpdate = mode == "per-update"
				if err := tr.ApplyBlock(benchWorkload(s, 16, 24)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNaturalTransform measures the direct-transformation oracle.
func BenchmarkNaturalTransform(b *testing.B) {
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	tr := NewTransformer(s.E, pat.NewStore(), bdd.True)
	if err := tr.ApplyBlock(benchWorkload(s, 16, 24)); err != nil {
		b.Fatal(err)
	}
	tables := make(map[fib.DeviceID]*fib.Table)
	for _, d := range tr.Devices() {
		tables[d] = tr.Table(d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaturalTransform(s.E, pat.NewStore(), bdd.True, tables)
	}
}

// BenchmarkBlockSizes sweeps update-block granularity (the BST knob).
func BenchmarkBlockSizes(b *testing.B) {
	for _, chunk := range []int{1, 8, 64, 0} {
		name := fmt.Sprintf("chunk-%d", chunk)
		if chunk == 0 {
			name = "chunk-all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
				tr := NewTransformer(s.E, pat.NewStore(), bdd.True)
				blocks := benchWorkload(s, 16, 24)
				if chunk == 0 {
					if err := tr.ApplyBlock(blocks); err != nil {
						b.Fatal(err)
					}
					continue
				}
				for _, blk := range blocks {
					for start := 0; start < len(blk.Updates); start += chunk {
						end := start + chunk
						if end > len(blk.Updates) {
							end = len(blk.Updates)
						}
						if err := tr.ApplyBlock([]fib.Block{{Device: blk.Device, Updates: blk.Updates[start:end]}}); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

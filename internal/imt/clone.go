package imt

import (
	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/pat"
)

// Clone returns a copy of the model sharing no mutable state with the
// original: the ECs map is copied entry by entry. The predicates
// themselves are immutable hash-consed BDD nodes, so the copy is O(ECs)
// regardless of predicate size — the copy-on-write foundation of the
// serving plane's snapshots.
func (m *Model) Clone() *Model {
	ecs := make(map[pat.Ref]bdd.Ref, len(m.ECs))
	for vec, p := range m.ECs {
		ecs[vec] = p
	}
	return &Model{ECs: ecs, Universe: m.Universe}
}

// Clone returns a copy-on-write duplicate of the transformer: device
// tables and the EC model are deep-copied, while the BDD engine and the
// append-only PAT store are shared (both only ever intern new immutable
// nodes, so sharing is safe as long as callers serialize access the way
// they already must for the live transformer). The clone starts with a
// zero cost breakdown and no metric handles — it is a model fork, not a
// second instrumented pipeline.
func (t *Transformer) Clone() *Transformer {
	nt := &Transformer{
		E:         t.E,
		Store:     t.Store,
		tables:    make(map[fib.DeviceID]*fib.Table, len(t.tables)),
		model:     t.model.Clone(),
		PerUpdate: t.PerUpdate,
		Tag:       t.Tag,
	}
	for dev, tb := range t.tables {
		nt.tables[dev] = tb.Clone()
	}
	return nt
}

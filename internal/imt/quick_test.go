package imt

import (
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/pat"
)

// TestQuickModelInvariants drives quick-generated update blocks through
// the transformer and asserts the Definition 6 invariants plus forward/
// inverse agreement on sampled headers after every block.
func TestQuickModelInvariants(t *testing.T) {
	type qRule struct {
		Dev  uint8
		Val  uint8
		PLen uint8
		Pri  uint8
		Act  uint8
	}
	check := func(batches [][]qRule) bool {
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		tr := NewTransformer(s.E, ps, bdd.True)
		// Defaults.
		for d := fib.DeviceID(0); d < 4; d++ {
			blk := []fib.Block{{Device: d, Updates: []fib.Update{
				{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: -1, Action: fib.Drop}},
			}}}
			if err := tr.ApplyBlock(blk); err != nil {
				return false
			}
		}
		nextID := int64(10)
		for _, batch := range batches {
			if len(batch) > 12 {
				batch = batch[:12]
			}
			byDev := map[fib.DeviceID][]fib.Update{}
			for _, q := range batch {
				dev := fib.DeviceID(q.Dev % 4)
				r := fib.Rule{
					ID:     nextID,
					Match:  s.Prefix("dst", uint64(q.Val), int(q.PLen%9)),
					Pri:    int32(q.Pri%7) + 1,
					Action: fib.Forward(fib.DeviceID(q.Act % 6)),
				}
				nextID++
				byDev[dev] = append(byDev[dev], fib.Update{Op: fib.Insert, Rule: r})
			}
			var blocks []fib.Block
			for d, ups := range byDev {
				blocks = append(blocks, fib.Block{Device: d, Updates: ups})
			}
			if err := tr.ApplyBlock(blocks); err != nil {
				return false
			}
			if err := tr.Model().Validate(s.E); err != nil {
				return false
			}
			// Spot-check forward/inverse agreement.
			for h := uint64(0); h < 256; h += 37 {
				asg := s.Assignment(hs.Header{h})
				vec, ok := tr.Model().Lookup(s.E, asg)
				if !ok {
					return false
				}
				for d := fib.DeviceID(0); d < 4; d++ {
					if ps.Get(vec, d) != tr.Table(d).Lookup(s.E, asg) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickOverwriteIdempotence: applying the same conflict-free
// overwrite twice equals applying it once (the cross product is
// idempotent on fixed Δ).
func TestQuickOverwriteIdempotence(t *testing.T) {
	check := func(val, plenRaw, dev, act uint8) bool {
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		m := NewModel(bdd.True)
		w := Overwrite{
			Pred:  s.Prefix("dst", uint64(val), int(plenRaw%9)),
			Delta: ps.Set(pat.Empty, fib.DeviceID(dev%4), fib.Forward(fib.DeviceID(act%4))),
		}
		m.Apply(s.E, ps, []Overwrite{w})
		once := cloneModel(m)
		m.Apply(s.E, ps, []Overwrite{w})
		return modelsEqual(once, m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

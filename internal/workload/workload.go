// Package workload generates the data planes and update sequences of the
// paper's evaluation settings (Table 2): StdFIB (all-pair shortest path
// to rack prefixes), StdFIB* with source-match ECMP, StdFIB* with suffix
// match routing, and trace-style settings on the small topologies. It
// also provides the update arrival patterns (insert each rule in sequence
// then delete in the same order; storms; per-device blocks) and subspace
// partitions.
//
// Field widths are scaled relative to the paper (16-bit destinations
// instead of 32) so that all three verification engines — including
// Delta-net*'s interval explosion on non-prefix rules — run on one
// machine while preserving each engine's asymptotic behavior.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

// Workload is a generated data plane: a topology, header layout, compiled
// rule blocks per device, and bookkeeping to map prefixes to ToRs.
type Workload struct {
	Name   string
	Topo   *topo.Graph
	Layout *hs.Layout
	Space  *hs.Space
	// Blocks holds each device's initial FIB as one insert block,
	// indexed by device.
	Blocks []fib.Block
	// Prefixes maps each ToR to its destination prefix constraint.
	Prefixes map[topo.NodeID]fib.FieldMatch
}

// NumRules reports the total initial rule count (the |R| of Table 2).
func (w *Workload) NumRules() int {
	n := 0
	for _, b := range w.Blocks {
		n += len(b.Updates)
	}
	return n
}

// HostAction is the delivery action of a ToR for its own prefix: a
// forward to a virtual host node beyond the fabric (DefaultActionMap
// treats it as local delivery).
func HostAction(g *topo.Graph, tor topo.NodeID) fib.Action {
	return fib.Forward(topo.NodeID(g.N()) + tor)
}

// IsDestFunc returns the '>'-hop predicate for a destination ToR.
func IsDestFunc(dst topo.NodeID) func(topo.NodeID) bool {
	return func(n topo.NodeID) bool { return n == dst }
}

// prefixFor assigns ToR index i (of n) a prefix on a width-bit dst field.
func prefixFor(i, n, width int) (value uint64, plen int) {
	plen = 1
	for 1<<uint(plen) < n {
		plen++
	}
	if plen > width {
		panic("workload: too many ToRs for field width")
	}
	return uint64(i) << uint(width-plen), plen
}

// LNetAPSP generates the LNet-apsp setting: a fabric topology whose FIBs
// are all-pair shortest paths from every switch to the prefixes owned by
// the rack (ToR) switches, using plain destination-prefix rules.
func LNetAPSP(p topo.FabricParams) *Workload {
	g := topo.Fabric(p)
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})
	return stdFIB("LNet-apsp", g, layout, buildAPSPRules)
}

// TraceAPSP generates the same StdFIB pattern on an arbitrary topology
// where every node owns a prefix — the shape of the Stanford-trace and
// I2-trace settings.
func TraceAPSP(name string, g *topo.Graph) *Workload {
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})
	w := &Workload{
		Name: name, Topo: g, Layout: layout, Space: hs.NewSpace(layout),
		Prefixes: make(map[topo.NodeID]fib.FieldMatch),
	}
	// Every node owns a prefix (trace networks are routers, not fabrics).
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	buildAPSPRules(w, owners)
	return w
}

// stdFIB builds a workload whose prefix owners are the fabric's ToRs.
func stdFIB(name string, g *topo.Graph, layout *hs.Layout, build func(*Workload, []topo.NodeID)) *Workload {
	w := &Workload{
		Name: name, Topo: g, Layout: layout, Space: hs.NewSpace(layout),
		Prefixes: make(map[topo.NodeID]fib.FieldMatch),
	}
	build(w, g.NodesByRole(topo.RoleTor))
	return w
}

// buildAPSPRules fills Blocks with shortest-path destination-prefix rules
// for each owner's prefix.
func buildAPSPRules(w *Workload, owners []topo.NodeID) {
	g := w.Topo
	width := w.Layout.FieldBits("dst")
	w.Blocks = make([]fib.Block, g.N())
	for d := range w.Blocks {
		w.Blocks[d].Device = fib.DeviceID(d)
	}
	nextID := make([]int64, g.N())
	add := func(dev topo.NodeID, r fib.Rule) {
		nextID[dev]++
		r.ID = nextID[dev]
		w.Blocks[dev].Updates = append(w.Blocks[dev].Updates, fib.Update{Op: fib.Insert, Rule: r})
	}
	// Default drop rule on every device.
	for _, n := range g.Nodes() {
		add(n.ID, fib.Rule{Match: bdd.True, Pri: 0, Action: fib.Drop,
			Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}})
	}
	for i, tor := range owners {
		val, plen := prefixFor(i, len(owners), width)
		desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: val, Len: plen}}
		w.Prefixes[tor] = desc[0]
		match := w.Space.Compile(desc)
		nh := g.NextHopsToward(tor)
		for _, n := range g.Nodes() {
			dev := n.ID
			var action fib.Action
			if dev == tor {
				action = HostAction(g, tor)
			} else if len(nh[dev]) > 0 {
				action = fib.Forward(nh[dev][0]) // deterministic ECMP pick
			} else {
				continue // unreachable: keep the default drop
			}
			add(dev, fib.Rule{Match: match, Pri: int32(plen), Action: action, Desc: desc})
		}
	}
}

// LNetECMP generates the LNet-ecmp setting: StdFIB* with source-match
// ECMP. Devices with multiple equal-cost next hops toward a prefix
// install one rule per next hop, differentiated by a source prefix — the
// two-field, non-prefix-friendly pattern that degrades interval-based
// representations (Table 3).
func LNetECMP(p topo.FabricParams) *Workload {
	g := topo.Fabric(p)
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 12}, hs.Field{Name: "src", Bits: 8})
	w := &Workload{
		Name: "LNet-ecmp", Topo: g, Layout: layout, Space: hs.NewSpace(layout),
		Prefixes: make(map[topo.NodeID]fib.FieldMatch),
	}
	owners := g.NodesByRole(topo.RoleTor)
	width := layout.FieldBits("dst")
	w.Blocks = make([]fib.Block, g.N())
	for d := range w.Blocks {
		w.Blocks[d].Device = fib.DeviceID(d)
	}
	nextID := make([]int64, g.N())
	add := func(dev topo.NodeID, r fib.Rule) {
		nextID[dev]++
		r.ID = nextID[dev]
		w.Blocks[dev].Updates = append(w.Blocks[dev].Updates, fib.Update{Op: fib.Insert, Rule: r})
	}
	for _, n := range g.Nodes() {
		add(n.ID, fib.Rule{Match: bdd.True, Pri: 0, Action: fib.Drop,
			Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}})
	}
	for i, tor := range owners {
		val, plen := prefixFor(i, len(owners), width)
		dstDesc := fib.FieldMatch{Field: "dst", Kind: fib.MatchPrefix, Value: val, Len: plen}
		w.Prefixes[tor] = dstDesc
		nh := g.NextHopsToward(tor)
		for _, n := range g.Nodes() {
			dev := n.ID
			if dev == tor {
				desc := fib.MatchDesc{dstDesc}
				add(dev, fib.Rule{Match: w.Space.Compile(desc), Pri: int32(plen),
					Action: HostAction(g, tor), Desc: desc})
				continue
			}
			hops := nh[dev]
			if len(hops) == 0 {
				continue
			}
			// Split the source space over the ECMP group: srcBits bits
			// select among up to 2^srcBits next hops.
			srcBits := 0
			for 1<<uint(srcBits) < len(hops) {
				srcBits++
			}
			n := 1 << uint(srcBits)
			for s := 0; s < n; s++ {
				desc := fib.MatchDesc{dstDesc}
				if srcBits > 0 {
					desc = append(desc, fib.FieldMatch{Field: "src", Kind: fib.MatchPrefix,
						Value: uint64(s) << uint(8-srcBits), Len: srcBits})
				}
				add(dev, fib.Rule{Match: w.Space.Compile(desc), Pri: int32(plen),
					Action: fib.Forward(hops[s%len(hops)]), Desc: desc})
			}
		}
	}
	return w
}

// LNetSMR generates the LNet-smr setting: StdFIB* with suffix match
// routing — every prefix owner is selected by the low bits of the
// destination, a generic-ternary pattern that each interval engine must
// explode (Table 3's worst case for Delta-net*).
func LNetSMR(p topo.FabricParams) *Workload {
	g := topo.Fabric(p)
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})
	w := &Workload{
		Name: "LNet-smr", Topo: g, Layout: layout, Space: hs.NewSpace(layout),
		Prefixes: make(map[topo.NodeID]fib.FieldMatch),
	}
	owners := g.NodesByRole(topo.RoleTor)
	w.Blocks = make([]fib.Block, g.N())
	for d := range w.Blocks {
		w.Blocks[d].Device = fib.DeviceID(d)
	}
	nextID := make([]int64, g.N())
	add := func(dev topo.NodeID, r fib.Rule) {
		nextID[dev]++
		r.ID = nextID[dev]
		w.Blocks[dev].Updates = append(w.Blocks[dev].Updates, fib.Update{Op: fib.Insert, Rule: r})
	}
	for _, n := range g.Nodes() {
		add(n.ID, fib.Rule{Match: bdd.True, Pri: 0, Action: fib.Drop,
			Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}})
	}
	slen := 1
	for 1<<uint(slen) < len(owners) {
		slen++
	}
	var mask uint64 = 1<<uint(slen) - 1
	for i, tor := range owners {
		desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary, Value: uint64(i), Mask: mask}}
		w.Prefixes[tor] = desc[0]
		match := w.Space.Compile(desc)
		nh := g.NextHopsToward(tor)
		for _, n := range g.Nodes() {
			dev := n.ID
			var action fib.Action
			if dev == tor {
				action = HostAction(g, tor)
			} else if len(nh[dev]) > 0 {
				action = fib.Forward(nh[dev][0])
			} else {
				continue
			}
			add(dev, fib.Rule{Match: match, Pri: int32(slen), Action: action, Desc: desc})
		}
	}
	return w
}

// WidePrefixFIB generates a prefix-only workload at full IPv4 header
// width: each device's FIB holds rulesPerDevice random destination
// prefixes between /8 and /28 on a 32-bit dst field, forwarding to a
// random neighbor, under a default drop. This is the regime of the
// paper's representation comparison (§5.1): every rule is a pure prefix
// interval — one atom operation — while a BDD Boolean operation on the
// same predicate walks up to 32 node levels. The 16-bit settings above
// understate that gap; this workload restores it. Deterministic in seed.
func WidePrefixFIB(g *topo.Graph, rulesPerDevice int, seed int64) *Workload {
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 32})
	w := &Workload{
		Name: "wide-prefix-fib", Topo: g, Layout: layout, Space: hs.NewSpace(layout),
		Prefixes: make(map[topo.NodeID]fib.FieldMatch),
	}
	rng := rand.New(rand.NewSource(seed))
	const width = 32
	w.Blocks = make([]fib.Block, g.N())
	for d := range w.Blocks {
		dev := topo.NodeID(d)
		w.Blocks[d].Device = fib.DeviceID(d)
		id := int64(0)
		add := func(r fib.Rule) {
			id++
			r.ID = id
			w.Blocks[d].Updates = append(w.Blocks[d].Updates, fib.Update{Op: fib.Insert, Rule: r})
		}
		add(fib.Rule{Match: bdd.True, Pri: 0, Action: fib.Drop,
			Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}})
		nbrs := g.Neighbors(dev)
		if len(nbrs) == 0 {
			continue
		}
		for i := 0; i < rulesPerDevice; i++ {
			plen := 8 + rng.Intn(21) // /8 .. /28
			val := rng.Uint64() & (1<<width - 1) >> uint(width-plen) << uint(width-plen)
			desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: val, Len: plen}}
			add(fib.Rule{Match: w.Space.Compile(desc), Pri: int32(plen),
				Action: fib.Forward(nbrs[rng.Intn(len(nbrs))]), Desc: desc})
		}
	}
	return w
}

// DevUpdate is one element of a flattened update sequence.
type DevUpdate struct {
	Dev    fib.DeviceID
	Update fib.Update
}

// InsertSequence flattens the workload's blocks into the storm arrival
// pattern of the baseline evaluation: "putting the rule insertions of all
// the switches in a sequence" (§5.2), interleaved round-robin across
// devices so the verifier sees a network-wide burst.
func (w *Workload) InsertSequence() []DevUpdate {
	var out []DevUpdate
	idx := make([]int, len(w.Blocks))
	for {
		progressed := false
		for d, b := range w.Blocks {
			if idx[d] < len(b.Updates) {
				out = append(out, DevUpdate{Dev: b.Device, Update: b.Updates[idx[d]]})
				idx[d]++
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// InsertThenDelete is the update generation of Table 2: "Insert each rule
// in a sequence and then delete it in the same order from the sequence",
// doubling the update scale.
func (w *Workload) InsertThenDelete() []DevUpdate {
	ins := w.InsertSequence()
	out := make([]DevUpdate, 0, 2*len(ins))
	out = append(out, ins...)
	for _, du := range ins {
		del := du
		del.Update.Op = fib.Delete
		out = append(out, del)
	}
	return out
}

// ChurnSequence generates a trace-style churn sequence: after the full
// insert storm, random live rules are repeatedly deleted and re-inserted
// (with fresh IDs) until the sequence reaches roughly factor × the rule
// count — the shape of the Airtel-trace setting, whose update scale is
// two orders of magnitude above its FIB scale. The sequence leaves every
// device's final table equal in size to its initial one.
func (w *Workload) ChurnSequence(factor int, seed int64) []DevUpdate {
	out := w.InsertSequence()
	if factor <= 1 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	type live struct {
		dev  fib.DeviceID
		rule fib.Rule
	}
	var pool []live
	nextID := int64(1 << 32) // fresh ID space for re-inserts
	for _, du := range out {
		pool = append(pool, live{du.Dev, du.Update.Rule})
	}
	target := factor * len(pool)
	for len(out) < target {
		i := rng.Intn(len(pool))
		l := pool[i]
		out = append(out, DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Delete, Rule: l.rule}})
		nr := l.rule
		nr.ID = nextID
		nextID++
		out = append(out, DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Insert, Rule: nr}})
		pool[i].rule = nr
	}
	return out
}

// SkewedChurn is ChurnSequence with a deliberately unbalanced churn
// distribution: after the full insert storm, re-churned rules are drawn
// from the "hot" subspace (the first of nsub prefix subspaces of the
// dst field, as carved by Subspaces/flash.WithSubspaces) with
// probability hotFrac, and uniformly from all live rules otherwise.
// Under a static subspace→worker assignment the hot subspace's worker
// serializes most of the epoch; the work-stealing scheduler benchmarks
// use this sequence to measure how much of that serialization stealing
// recovers. A rule belongs to the hot subspace when its dst prefix lies
// entirely inside it (prefix length >= log2(nsub) and top bits zero);
// rules that span subspaces count as cold. The sequence is
// deterministic in seed, and every device's final table size equals its
// initial one, like ChurnSequence.
func (w *Workload) SkewedChurn(factor, nsub int, hotFrac float64, seed int64) []DevUpdate {
	out := w.InsertSequence()
	if factor <= 1 {
		return out
	}
	bits := 0
	for 1<<uint(bits) < nsub {
		bits++
	}
	if 1<<uint(bits) != nsub {
		panic(fmt.Sprintf("workload: subspace count %d is not a power of two", nsub))
	}
	width := w.Layout.FieldBits("dst")
	isHot := func(r fib.Rule) bool {
		for _, f := range r.Desc {
			if f.Field != "dst" || f.Kind != fib.MatchPrefix {
				continue
			}
			return f.Len >= bits && f.Value>>uint(width-bits) == 0
		}
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	type live struct {
		dev  fib.DeviceID
		rule fib.Rule
	}
	var hot, cold []live
	for _, du := range out {
		l := live{du.Dev, du.Update.Rule}
		if isHot(l.rule) {
			hot = append(hot, l)
		} else {
			cold = append(cold, l)
		}
	}
	nextID := int64(1 << 32)
	target := factor * (len(hot) + len(cold))
	churn := func(pool []live) []live {
		i := rng.Intn(len(pool))
		l := pool[i]
		out = append(out, DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Delete, Rule: l.rule}})
		nr := l.rule
		nr.ID = nextID
		nextID++
		out = append(out, DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Insert, Rule: nr}})
		pool[i].rule = nr
		return pool
	}
	for len(out) < target {
		if len(hot) > 0 && (len(cold) == 0 || rng.Float64() < hotFrac) {
			hot = churn(hot)
		} else if len(cold) > 0 {
			cold = churn(cold)
		} else {
			break
		}
	}
	return out
}

// Chunk groups a flattened sequence into per-device blocks of at most
// blockSize updates in arrival order — the block size threshold (BST)
// mechanism of §5.2. blockSize <= 0 means one single block batch.
func Chunk(seq []DevUpdate, blockSize int) [][]fib.Block {
	if blockSize <= 0 {
		blockSize = len(seq)
	}
	var out [][]fib.Block
	for start := 0; start < len(seq); start += blockSize {
		end := start + blockSize
		if end > len(seq) {
			end = len(seq)
		}
		byDev := make(map[fib.DeviceID]*fib.Block)
		var blocks []fib.Block
		var order []fib.DeviceID
		for _, du := range seq[start:end] {
			b, ok := byDev[du.Dev]
			if !ok {
				blocks = append(blocks, fib.Block{Device: du.Dev})
				b = &blocks[len(blocks)-1]
				byDev[du.Dev] = b
				order = append(order, du.Dev)
			}
			b.Updates = append(b.Updates, du.Update)
		}
		// blocks may have been reallocated by append; rebuild in order.
		final := make([]fib.Block, 0, len(order))
		for _, dev := range order {
			final = append(final, *byDev[dev])
		}
		out = append(out, final)
	}
	return out
}

// Subspaces partitions the destination space into n contiguous prefix
// subspaces (the input-space partition of §3.4; the paper partitions
// LNet by pod). n must be a power of two not exceeding the dst width.
func (w *Workload) Subspaces(n int) []bdd.Ref {
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	if 1<<uint(bits) != n {
		panic(fmt.Sprintf("workload: subspace count %d is not a power of two", n))
	}
	width := w.Layout.FieldBits("dst")
	out := make([]bdd.Ref, n)
	for i := 0; i < n; i++ {
		out[i] = w.Space.Prefix("dst", uint64(i)<<uint(width-bits), bits)
	}
	return out
}

// PodAddCounts reproduces the table of Figure 15 (Appendix A): the total
// rule count |R| and modified rule count |ΔR| when a new pod with P
// prefixes is connected to a K-ary fat-tree data center network.
//
// The counts follow the figure exactly. With (K/2)² core switches and K
// switches per pod, the fat tree has (5/4)K² switches, each holding one
// rule per prefix (K pods × P prefixes), so |R| = (5/4)K³P. The change
// set is the new pod's K switches installing full tables (K²P rules)
// plus P new-prefix rules on the existing switches outside the 2K
// switches whose FIBs the simulation reports unchanged:
// |ΔR| = K²P + ((5/4)K² − 2K)P = (9K²/4 − 2K)P. These closed forms match
// all five rows of the paper's table (e.g. K=4,P=2 → 160/56;
// K=32,P=32 → 1,310,720/71,680).
func PodAddCounts(k, p int) (totalRules, deltaRules int) {
	totalRules = 5 * k * k * k * p / 4
	deltaRules = (9*k*k/4 - 2*k) * p
	return totalRules, deltaRules
}

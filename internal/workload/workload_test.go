package workload

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/imt"
	"repro/internal/pat"
	"repro/internal/topo"
)

var smallFabric = topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1}

func TestLNetAPSPShape(t *testing.T) {
	w := LNetAPSP(smallFabric)
	g := w.Topo
	tors := g.NodesByRole(topo.RoleTor)
	if len(tors) != 4 {
		t.Fatalf("tors = %d", len(tors))
	}
	// Every device: 1 default + one rule per reachable ToR prefix.
	want := g.N() * (1 + len(tors))
	if got := w.NumRules(); got != want {
		t.Fatalf("NumRules = %d, want %d", got, want)
	}
	if len(w.Prefixes) != len(tors) {
		t.Fatalf("prefixes = %d", len(w.Prefixes))
	}
	// All tables valid and total.
	for _, b := range w.Blocks {
		tb := fib.NewTable()
		for _, u := range b.Updates {
			tb.Insert(u.Rule)
		}
		if err := tb.Validate(w.Space.E); err != nil {
			t.Fatalf("device %d: %v", b.Device, err)
		}
	}
}

// TestAPSPForwardingDeliversEverywhere loads the workload into a Fast IMT
// transformer and checks, for a sample of destination headers, that
// following the forwarding actions hop by hop from any ToR reaches the
// owner ToR's host action without looping.
func TestAPSPForwardingDeliversEverywhere(t *testing.T) {
	w := LNetAPSP(smallFabric)
	g := w.Topo
	tr := imt.NewTransformer(w.Space.E, pat.NewStore(), bdd.True)
	if err := tr.ApplyBlock(w.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := tr.Model().Validate(w.Space.E); err != nil {
		t.Fatal(err)
	}
	tors := g.NodesByRole(topo.RoleTor)
	for dstTor, pfx := range w.Prefixes {
		// A header inside the prefix.
		h := pfx.Value
		asg := w.Space.Assignment([]uint64{h})
		behavior := tr.BehaviorAt(asg)
		for _, src := range tors {
			cur := src
			for hops := 0; ; hops++ {
				if hops > g.N() {
					t.Fatalf("loop forwarding %#x from %d", h, src)
				}
				act := behavior[cur]
				nh, ok := act.NextHop()
				if !ok {
					t.Fatalf("dropped %#x at %d (dst tor %d)", h, cur, dstTor)
				}
				if nh >= topo.NodeID(g.N()) {
					if cur != dstTor {
						t.Fatalf("header %#x delivered at %d, want %d", h, cur, dstTor)
					}
					break
				}
				cur = nh
			}
		}
	}
}

func TestLNetECMPUsesSourceMatch(t *testing.T) {
	w := LNetECMP(smallFabric)
	twoField := 0
	for _, b := range w.Blocks {
		for _, u := range b.Updates {
			if len(u.Rule.Desc) == 2 {
				twoField++
			}
		}
	}
	if twoField == 0 {
		t.Fatal("ECMP workload has no source-match rules")
	}
	// ECMP rules at a ToR toward a remote prefix must cover all sources:
	// per-device per-priority groups of two-field rules share dst.
	if w.NumRules() <= LNetAPSP(smallFabric).NumRules() {
		t.Error("ECMP workload should be larger than apsp")
	}
}

func TestLNetSMRUsesTernary(t *testing.T) {
	w := LNetSMR(smallFabric)
	ternary := 0
	for _, b := range w.Blocks {
		for _, u := range b.Updates {
			if len(u.Rule.Desc) == 1 && u.Rule.Desc[0].Kind == fib.MatchTernary && u.Rule.Desc[0].Mask != 0 {
				ternary++
			}
		}
	}
	if ternary == 0 {
		t.Fatal("SMR workload has no suffix-match rules")
	}
	// Suffix classes partition the space: union of owner predicates = all.
	union := bdd.False
	for _, pfx := range w.Prefixes {
		union = w.Space.E.Or(union, w.Space.Compile(fib.MatchDesc{pfx}))
	}
	if union != bdd.True {
		t.Error("suffix classes do not cover the space")
	}
}

func TestTraceAPSP(t *testing.T) {
	w := TraceAPSP("I2-trace", topo.Internet2())
	if w.NumRules() != 9*(1+9) {
		t.Fatalf("NumRules = %d", w.NumRules())
	}
}

func TestInsertSequenceInterleaves(t *testing.T) {
	w := TraceAPSP("x", topo.Internet2())
	seq := w.InsertSequence()
	if len(seq) != w.NumRules() {
		t.Fatalf("sequence length %d != %d rules", len(seq), w.NumRules())
	}
	// Round-robin: the first 9 entries come from 9 distinct devices.
	seen := map[fib.DeviceID]bool{}
	for _, du := range seq[:9] {
		seen[du.Dev] = true
	}
	if len(seen) != 9 {
		t.Errorf("first 9 updates from %d devices, want 9 (storm interleave)", len(seen))
	}
}

func TestInsertThenDelete(t *testing.T) {
	w := TraceAPSP("x", topo.Internet2())
	seq := w.InsertThenDelete()
	if len(seq) != 2*w.NumRules() {
		t.Fatalf("length %d, want %d", len(seq), 2*w.NumRules())
	}
	n := len(seq) / 2
	for i := 0; i < n; i++ {
		if seq[i].Update.Op != fib.Insert || seq[n+i].Update.Op != fib.Delete {
			t.Fatal("ordering wrong")
		}
		if seq[i].Dev != seq[n+i].Dev || seq[i].Update.Rule.ID != seq[n+i].Update.Rule.ID {
			t.Fatal("delete does not mirror insert order")
		}
	}
	// Applying the whole sequence leaves an empty data plane model.
	tr := imt.NewTransformer(w.Space.E, pat.NewStore(), bdd.True)
	for _, batch := range Chunk(seq, 64) {
		if err := tr.ApplyBlock(batch); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumRules() != 0 {
		t.Fatalf("%d rules left after insert-then-delete", tr.NumRules())
	}
	if tr.Model().Len() != 1 {
		t.Fatalf("%d classes left, want 1", tr.Model().Len())
	}
}

func TestChunkRespectsOrderAndSize(t *testing.T) {
	w := TraceAPSP("x", topo.Internet2())
	seq := w.InsertSequence()
	batches := Chunk(seq, 7)
	total := 0
	for _, bs := range batches {
		n := 0
		for _, b := range bs {
			n += len(b.Updates)
		}
		if n > 7 {
			t.Fatalf("batch has %d updates, cap 7", n)
		}
		total += n
	}
	if total != len(seq) {
		t.Fatalf("chunks lost updates: %d vs %d", total, len(seq))
	}
	// blockSize <= 0: single batch.
	if got := Chunk(seq, 0); len(got) != 1 {
		t.Fatalf("Chunk(0) gave %d batches", len(got))
	}
}

func TestSubspacesPartition(t *testing.T) {
	w := LNetAPSP(smallFabric)
	subs := w.Subspaces(4)
	union := bdd.False
	for i, s := range subs {
		if s == bdd.False {
			t.Fatalf("subspace %d empty", i)
		}
		if w.Space.E.And(union, s) != bdd.False {
			t.Fatal("subspaces overlap")
		}
		union = w.Space.E.Or(union, s)
	}
	if union != bdd.True {
		t.Fatal("subspaces do not cover")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two should panic")
		}
	}()
	w.Subspaces(3)
}

// TestPodAddCountsMatchPaper checks all five rows of Figure 15's table.
func TestPodAddCountsMatchPaper(t *testing.T) {
	rows := []struct{ k, p, rules, delta int }{
		{4, 2, 160, 56},
		{8, 4, 2560, 512},
		{16, 8, 40960, 4352},
		{32, 16, 655360, 35840},
		{32, 32, 1310720, 71680},
	}
	for _, r := range rows {
		rules, delta := PodAddCounts(r.k, r.p)
		if rules != r.rules || delta != r.delta {
			t.Errorf("PodAddCounts(%d,%d) = %d,%d; paper says %d,%d",
				r.k, r.p, rules, delta, r.rules, r.delta)
		}
	}
}

func TestChurnSequence(t *testing.T) {
	w := TraceAPSP("x", topo.Internet2())
	seq := w.ChurnSequence(5, 42)
	if len(seq) < 5*w.NumRules() {
		t.Fatalf("churn length %d, want ≥ %d", len(seq), 5*w.NumRules())
	}
	// Applying the sequence must be valid and end with the same table
	// sizes as the pure insert storm.
	tr := imt.NewTransformer(w.Space.E, pat.NewStore(), bdd.True)
	for _, batch := range Chunk(seq, 128) {
		if err := tr.ApplyBlock(batch); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumRules() != w.NumRules() {
		t.Fatalf("churn left %d rules, want %d", tr.NumRules(), w.NumRules())
	}
	if err := tr.Model().Validate(w.Space.E); err != nil {
		t.Fatal(err)
	}
	// factor ≤ 1 degenerates to the plain insert storm.
	if got := w.ChurnSequence(1, 1); len(got) != w.NumRules() {
		t.Fatalf("factor 1 gave %d updates", len(got))
	}
	// Deterministic per seed.
	a, b := w.ChurnSequence(3, 7), w.ChurnSequence(3, 7)
	if len(a) != len(b) {
		t.Fatal("churn not deterministic")
	}
	for i := range a {
		if a[i].Dev != b[i].Dev || a[i].Update.Rule.ID != b[i].Update.Rule.ID {
			t.Fatal("churn not deterministic")
		}
	}
}

func TestSkewedChurn(t *testing.T) {
	w := TraceAPSP("x", topo.Internet2())
	const nsub = 4
	seq := w.SkewedChurn(5, nsub, 0.9, 42)
	if len(seq) < 5*w.NumRules() {
		t.Fatalf("skewed churn length %d, want ≥ %d", len(seq), 5*w.NumRules())
	}

	// The churned portion (everything after the insert storm) must
	// actually be skewed: far more than 1/nsub of the churn deletes hit
	// the hot subspace.
	bits := 2 // log2(nsub)
	width := w.Layout.FieldBits("dst")
	hot, churned := 0, 0
	for _, du := range seq[w.NumRules():] {
		if du.Update.Op != fib.Delete {
			continue
		}
		churned++
		for _, f := range du.Update.Rule.Desc {
			if f.Field == "dst" && f.Kind == fib.MatchPrefix &&
				f.Len >= bits && f.Value>>uint(width-bits) == 0 {
				hot++
			}
		}
	}
	if churned == 0 {
		t.Fatal("no churn updates generated")
	}
	if frac := float64(hot) / float64(churned); frac < 0.7 {
		t.Fatalf("hot-subspace churn fraction = %.2f, want ≥ 0.7 (skew lost)", frac)
	}

	// Applying the sequence stays valid and preserves final table sizes.
	tr := imt.NewTransformer(w.Space.E, pat.NewStore(), bdd.True)
	for _, batch := range Chunk(seq, 128) {
		if err := tr.ApplyBlock(batch); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumRules() != w.NumRules() {
		t.Fatalf("skewed churn left %d rules, want %d", tr.NumRules(), w.NumRules())
	}

	// Deterministic per seed; different seeds diverge.
	a, b := w.SkewedChurn(3, nsub, 0.8, 7), w.SkewedChurn(3, nsub, 0.8, 7)
	if len(a) != len(b) {
		t.Fatal("skewed churn not deterministic")
	}
	for i := range a {
		if a[i].Dev != b[i].Dev || a[i].Update.Rule.ID != b[i].Update.Rule.ID {
			t.Fatal("skewed churn not deterministic")
		}
	}

	// factor ≤ 1 degenerates to the insert storm.
	if got := w.SkewedChurn(1, nsub, 0.9, 1); len(got) != w.NumRules() {
		t.Fatalf("factor 1 gave %d updates", len(got))
	}
}

package fib

import "fmt"

// MatchKind discriminates the symbolic forms a field constraint can take.
type MatchKind uint8

// Match kinds.
const (
	// MatchPrefix constrains the top Len bits of the field.
	MatchPrefix MatchKind = iota
	// MatchTernary constrains the bits selected by Mask to equal the
	// corresponding bits of Value.
	MatchTernary
)

// FieldMatch is one symbolic per-field constraint.
type FieldMatch struct {
	Field string
	Kind  MatchKind
	Value uint64
	Len   int    // prefix length (MatchPrefix)
	Mask  uint64 // bit mask (MatchTernary)
}

func (f FieldMatch) String() string {
	if f.Kind == MatchPrefix {
		return fmt.Sprintf("%s=%#x/%d", f.Field, f.Value, f.Len)
	}
	return fmt.Sprintf("%s=%#x&%#x", f.Field, f.Value, f.Mask)
}

// MatchDesc is the symbolic description of a rule's match: a conjunction
// of per-field constraints. The compiled BDD predicate in Rule.Match is
// authoritative for verification; the descriptor exists so that
// representation-specific engines can index the rule natively — Delta-net*
// converts it to intervals, and the prefix trie indexes its primary
// prefix. A nil descriptor means "opaque match": engines fall back to
// conservative handling (wildcard indexing).
type MatchDesc []FieldMatch

// PrimaryPrefix returns the descriptor's constraint on the named field as
// a (value, length) prefix if it has one, for trie indexing. Rules without
// a prefix constraint on the field report ok=false and are indexed at the
// trie root.
func (d MatchDesc) PrimaryPrefix(field string) (value uint64, plen int, ok bool) {
	for _, f := range d {
		if f.Field == field && f.Kind == MatchPrefix {
			return f.Value, f.Len, true
		}
	}
	return 0, 0, false
}

package fib_test

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
)

func testSpace() *hs.Space {
	return hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
}

func TestActionEncoding(t *testing.T) {
	if fib.None != 0 {
		t.Fatal("None must be the zero value")
	}
	f := fib.Forward(7)
	d, ok := f.NextHop()
	if !ok || d != 7 {
		t.Errorf("NextHop(fib.Forward(7)) = %d,%v", d, ok)
	}
	if _, ok := fib.Drop.NextHop(); ok {
		t.Error("Drop should not be a forwarding action")
	}
	if _, ok := fib.None.NextHop(); ok {
		t.Error("None should not be a forwarding action")
	}
	if fib.Forward(0) == fib.Drop || fib.Forward(0) == fib.None {
		t.Error("Forward(0) collides with a distinguished action")
	}
	for _, c := range []struct {
		a    fib.Action
		want string
	}{{fib.None, "none"}, {fib.Drop, "drop"}, {fib.Forward(3), "fwd(3)"}} {
		if c.a.String() != c.want {
			t.Errorf("String(%d) = %q want %q", c.a, c.a.String(), c.want)
		}
	}
	if fib.Insert.String() != "insert" || fib.Delete.String() != "delete" {
		t.Error("Op.String wrong")
	}
}

func TestTableSortedInsertDelete(t *testing.T) {
	s := testSpace()
	tb := fib.NewTable(
		fib.Rule{ID: 1, Match: s.Prefix("dst", 0x10, 4), Pri: 1, Action: fib.Forward(1)},
		fib.Rule{ID: 2, Match: bdd.True, Pri: 0, Action: fib.Drop},
		fib.Rule{ID: 3, Match: s.Exact("dst", 0x11), Pri: 5, Action: fib.Forward(2)},
	)
	rules := tb.Rules()
	if rules[0].ID != 3 || rules[1].ID != 1 || rules[2].ID != 2 {
		t.Fatalf("table not sorted by descending priority: %+v", rules)
	}
	tb.Insert(fib.Rule{ID: 4, Match: bdd.True, Pri: 3, Action: fib.Forward(9)})
	if tb.Len() != 4 || tb.Rules()[1].ID != 4 {
		t.Fatalf("Insert misplaced: %+v", tb.Rules())
	}
	if !tb.Delete(3, 4) {
		t.Fatal("Delete failed to find rule")
	}
	if tb.Delete(3, 4) {
		t.Fatal("Delete found already-removed rule")
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d after delete, want 3", tb.Len())
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := testSpace()
	tb := fib.NewTable(fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop})
	c := tb.Clone()
	c.Insert(fib.Rule{ID: 2, Match: s.Exact("dst", 3), Pri: 9, Action: fib.Forward(1)})
	if tb.Len() != 1 || c.Len() != 2 {
		t.Error("Clone shares storage with original")
	}
}

func TestLookupHighestPriorityWins(t *testing.T) {
	s := testSpace()
	tb := fib.NewTable(
		fib.Rule{ID: 1, Match: s.Prefix("dst", 0x10, 4), Pri: 2, Action: fib.Forward(1)},
		fib.Rule{ID: 2, Match: s.Exact("dst", 0x12), Pri: 5, Action: fib.Forward(2)},
		fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: fib.Drop},
	)
	cases := []struct {
		h    uint64
		want fib.Action
	}{
		{0x12, fib.Forward(2)}, // exact beats prefix
		{0x13, fib.Forward(1)}, // prefix
		{0x99, fib.Drop},       // default
	}
	for _, c := range cases {
		got := tb.Lookup(s.E, s.Assignment(hs.Header{c.h}))
		if got != c.want {
			t.Errorf("Lookup(%#x) = %v, want %v", c.h, got, c.want)
		}
	}
}

func TestEffectivePredicates(t *testing.T) {
	s := testSpace()
	p1 := s.Prefix("dst", 0x10, 4) // 16 headers
	p2 := s.Exact("dst", 0x12)     // 1 header, inside p1
	tb := fib.NewTable(
		fib.Rule{ID: 1, Match: p1, Pri: 2, Action: fib.Forward(1)},
		fib.Rule{ID: 2, Match: p2, Pri: 5, Action: fib.Forward(2)},
		fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: fib.Drop},
	)
	eff := tb.EffectivePredicates(s.E)
	// Sorted order: rule2 (pri 5), rule1 (pri 2), rule3 (pri 0).
	if got := s.E.SatCount(eff[0]); got != 1 {
		t.Errorf("eff(rule2) covers %v headers, want 1", got)
	}
	if got := s.E.SatCount(eff[1]); got != 15 {
		t.Errorf("eff(rule1) covers %v headers, want 15", got)
	}
	if got := s.E.SatCount(eff[2]); got != 256-16 {
		t.Errorf("eff(default) covers %v headers, want 240", got)
	}
	// Effective predicates partition the space.
	union := bdd.False
	for _, p := range eff {
		if s.E.And(union, p) != bdd.False {
			t.Fatal("effective predicates overlap")
		}
		union = s.E.Or(union, p)
	}
	if union != bdd.True {
		t.Error("effective predicates do not cover the space")
	}
}

func TestValidate(t *testing.T) {
	s := testSpace()
	good := fib.NewTable(
		fib.Rule{ID: 1, Match: s.Prefix("dst", 0x10, 4), Pri: 1, Action: fib.Forward(1)},
		fib.Rule{ID: 2, Match: s.Prefix("dst", 0x20, 4), Pri: 1, Action: fib.Forward(2)},
		fib.Rule{ID: 3, Match: bdd.True, Pri: 0, Action: fib.Drop},
	)
	if err := good.Validate(s.E); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	conflict := fib.NewTable(
		fib.Rule{ID: 1, Match: s.Prefix("dst", 0x10, 4), Pri: 1, Action: fib.Forward(1)},
		fib.Rule{ID: 2, Match: s.Prefix("dst", 0x10, 6), Pri: 1, Action: fib.Forward(2)},
	)
	if err := conflict.Validate(s.E); err == nil {
		t.Error("conflicting same-priority overlapping rules accepted")
	}
	dup := fib.NewTable(
		fib.Rule{ID: 1, Match: bdd.True, Pri: 1},
		fib.Rule{ID: 1, Match: bdd.True, Pri: 1},
	)
	if err := dup.Validate(s.E); err == nil {
		t.Error("duplicate (pri,id) accepted")
	}
}

func TestRemoveCanceling(t *testing.T) {
	s := testSpace()
	r := fib.Rule{ID: 7, Match: s.Exact("dst", 1), Pri: 3, Action: fib.Forward(1)}
	rOther := fib.Rule{ID: 8, Match: s.Exact("dst", 2), Pri: 3, Action: fib.Forward(2)}

	// insert-then-delete cancels
	got := fib.RemoveCanceling([]fib.Update{{fib.Insert, r}, {fib.Delete, r}})
	if len(got) != 0 {
		t.Errorf("insert+delete should cancel, got %d updates", len(got))
	}
	// delete-then-insert of identical rule cancels
	got = fib.RemoveCanceling([]fib.Update{{fib.Delete, r}, {fib.Insert, r}})
	if len(got) != 0 {
		t.Errorf("delete+insert(identical) should cancel, got %d", len(got))
	}
	// delete-then-insert of a changed rule does NOT cancel
	r2 := r
	r2.Action = fib.Forward(9)
	got = fib.RemoveCanceling([]fib.Update{{fib.Delete, r}, {fib.Insert, r2}})
	if len(got) != 2 {
		t.Errorf("delete+insert(modified) must survive, got %d", len(got))
	}
	// unrelated updates survive in order
	got = fib.RemoveCanceling([]fib.Update{{fib.Insert, rOther}, {fib.Insert, r}, {fib.Delete, r}})
	if len(got) != 1 || got[0].Rule.ID != 8 {
		t.Errorf("unrelated update lost: %+v", got)
	}
	// triple: insert, delete, insert -> single insert survives
	got = fib.RemoveCanceling([]fib.Update{{fib.Insert, r}, {fib.Delete, r}, {fib.Insert, r2}})
	if len(got) != 1 || got[0].Op != fib.Insert || got[0].Rule.Action != fib.Forward(9) {
		t.Errorf("triple sequence wrong: %+v", got)
	}
}

func TestSortByPriority(t *testing.T) {
	s := testSpace()
	mk := func(id int64, pri int32, op fib.Op) fib.Update {
		return fib.Update{op, fib.Rule{ID: id, Match: s.Exact("dst", uint64(id)), Pri: pri}}
	}
	ups := []fib.Update{mk(1, 1, fib.Insert), mk(2, 9, fib.Insert), mk(3, 5, fib.Delete), mk(4, 9, fib.Delete)}
	fib.SortByPriority(ups)
	if ups[0].Rule.Pri != 9 || ups[1].Rule.Pri != 9 || ups[2].Rule.Pri != 5 || ups[3].Rule.Pri != 1 {
		t.Fatalf("not sorted by descending priority: %+v", ups)
	}
	if ups[0].Rule.ID != 2 || ups[1].Rule.ID != 4 {
		t.Fatalf("priority ties not broken by ID: %+v", ups)
	}
	// fib.Delete before insert for identical (pri, id).
	ups2 := []fib.Update{mk(1, 3, fib.Insert), mk(1, 3, fib.Delete)}
	fib.SortByPriority(ups2)
	if ups2[0].Op != fib.Delete {
		t.Error("delete should sort before insert at equal (pri,id)")
	}
}

func TestTableRandomizedInsertDeleteKeepsOrder(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(21))
	tb := fib.NewTable()
	live := map[int64]int32{}
	for i := 0; i < 500; i++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			id := int64(i)
			pri := int32(rng.Intn(16))
			tb.Insert(fib.Rule{ID: id, Match: s.Exact("dst", uint64(id%256)), Pri: pri, Action: fib.Drop})
			live[id] = pri
		} else {
			for id, pri := range live {
				if !tb.Delete(pri, id) {
					t.Fatalf("failed to delete live rule %d", id)
				}
				delete(live, id)
				break
			}
		}
		rs := tb.Rules()
		for j := 1; j < len(rs); j++ {
			if !rs[j-1].Less(rs[j]) {
				t.Fatalf("order violated after step %d", i)
			}
		}
	}
	if tb.Len() != len(live) {
		t.Fatalf("Len=%d want %d", tb.Len(), len(live))
	}
}

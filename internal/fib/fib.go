// Package fib implements the rule-based representation of a data plane
// (the paper's "forward model", §3.1): per-device forwarding tables of
// ⟨match, priority, action⟩ rules, and blocks of native rule updates.
//
// Matches are precompiled BDD predicates (see package hs); a Table keeps
// its rules sorted by descending priority so the Fast IMT merge
// (Algorithm 1) can run in a single pass. Every well-formed table ends
// with a default rule (the lowest-priority wildcard) so that iteration in
// the merge never runs off the end, as footnote 4 of the paper assumes.
package fib

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/pred"
)

// DeviceID identifies a device (router or switch) in the network, indexing
// the action vectors of the inverse model.
type DeviceID int32

// Action is the forwarding action of a rule. The zero value None is the
// paper's "no-overwrite" output (0); all real actions are non-zero.
type Action int32

// Distinguished actions.
const (
	// None is the absence of an action ("no overwrite", the paper's 0).
	None Action = 0
	// Drop discards the packet.
	Drop Action = 1
	// actionBase offsets forwarding actions so they never collide with
	// None or Drop.
	actionBase Action = 2
)

// Forward returns the action "forward to device d".
func Forward(d DeviceID) Action { return actionBase + Action(d) }

// NextHop returns the device a Forward action points at, and whether the
// action is a forwarding action at all.
func (a Action) NextHop() (DeviceID, bool) {
	if a < actionBase {
		return 0, false
	}
	return DeviceID(a - actionBase), true
}

// String renders an action for diagnostics.
func (a Action) String() string {
	switch {
	case a == None:
		return "none"
	case a == Drop:
		return "drop"
	default:
		return fmt.Sprintf("fwd(%d)", int32(a-actionBase))
	}
}

// Rule is one forwarding rule. ID is the rule's identity within its
// device's table and is what deletions refer to. Desc, when non-nil, is
// the symbolic form of Match for engines that index rules natively
// (intervals, prefix tries); Match remains authoritative.
//
//flashvet:allow bddref — Match is owned by the engine of the Table/Transformer the rule is installed into
//flashvet:allow gcroot — installed rules' Match refs are enumerated by the owning Table's Roots
type Rule struct {
	ID     int64
	Match  bdd.Ref
	Pri    int32
	Action Action
	Desc   MatchDesc
}

// Less orders rules for table storage: higher priority first, then lower
// ID, giving tables a deterministic total order.
func (r Rule) Less(o Rule) bool {
	if r.Pri != o.Pri {
		return r.Pri > o.Pri
	}
	return r.ID < o.ID
}

// Op is a native update operation.
type Op uint8

// Update operations.
const (
	Insert Op = iota
	Delete
)

func (o Op) String() string {
	if o == Insert {
		return "insert"
	}
	return "delete"
}

// Update is one native rule update on some device's table.
type Update struct {
	Op   Op
	Rule Rule
}

// Table is one device's forwarding table, kept sorted by descending
// priority (ties broken by rule ID). The zero value is an empty table.
type Table struct {
	rules []Rule
}

// NewTable builds a table from rules in any order.
func NewTable(rules ...Rule) *Table {
	t := &Table{rules: append([]Rule(nil), rules...)}
	sort.Slice(t.rules, func(i, j int) bool { return t.rules[i].Less(t.rules[j]) })
	return t
}

// Len reports the number of rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the sorted backing slice. Callers must not mutate it.
func (t *Table) Rules() []Rule { return t.rules }

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	return &Table{rules: append([]Rule(nil), t.rules...)}
}

// ReplaceAll swaps in a new rule slice, which must already be sorted in
// table order. It is the output path of the Fast IMT merge.
func (t *Table) ReplaceAll(rules []Rule) {
	t.rules = rules
}

// Insert adds a rule, keeping sorted order. It is O(n); bulk changes
// should go through the Fast IMT merge instead.
func (t *Table) Insert(r Rule) {
	i := sort.Search(len(t.rules), func(i int) bool { return !t.rules[i].Less(r) })
	t.rules = append(t.rules, Rule{})
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = r
}

// Delete removes the rule with the given ID and priority, reporting
// whether it was present.
func (t *Table) Delete(pri int32, id int64) bool {
	probe := Rule{ID: id, Pri: pri}
	i := sort.Search(len(t.rules), func(i int) bool { return !t.rules[i].Less(probe) })
	if i < len(t.rules) && t.rules[i].ID == id && t.rules[i].Pri == pri {
		t.rules = append(t.rules[:i], t.rules[i+1:]...)
		return true
	}
	return false
}

// Lookup returns the action of the highest-priority rule whose match
// contains the header predicate point given as a satisfying assignment.
// It is the forward model's behavior function b_i(h) and is used by tests
// to cross-check the inverse model.
func (t *Table) Lookup(e pred.Engine, assignment []bool) Action {
	for _, r := range t.rules {
		if e.Eval(r.Match, assignment) {
			return r.Action
		}
	}
	return None
}

// EffectivePredicates computes, in one pass over the sorted table, the
// effective predicate e_ik of every rule: match ∧ ¬(∨ of higher-priority
// matches) (Equation 1 of the paper). Used by the natural transformation
// and by tests; Fast IMT computes these incrementally instead.
func (t *Table) EffectivePredicates(e pred.Engine) []bdd.Ref {
	out := make([]bdd.Ref, len(t.rules))
	higher := bdd.False
	for i, r := range t.rules {
		out[i] = e.Diff(r.Match, higher)
		higher = e.Or(higher, r.Match)
	}
	return out
}

// Validate checks the well-behaved-table invariants (Definition 4): the
// table is sorted, rule (Pri, ID) pairs are unique, and no two rules of
// equal priority with overlapping matches disagree on the action.
func (t *Table) Validate(e pred.Engine) error {
	for i := 1; i < len(t.rules); i++ {
		if !t.rules[i-1].Less(t.rules[i]) {
			return fmt.Errorf("fib: table not strictly sorted at index %d", i)
		}
	}
	for i := 0; i < len(t.rules); i++ {
		for j := i + 1; j < len(t.rules) && t.rules[j].Pri == t.rules[i].Pri; j++ {
			if t.rules[i].Action != t.rules[j].Action && e.Overlaps(t.rules[i].Match, t.rules[j].Match) {
				return fmt.Errorf("fib: conflicting same-priority rules %d and %d", t.rules[i].ID, t.rules[j].ID)
			}
		}
	}
	return nil
}

// Block is a block of native updates for one device.
type Block struct {
	Device  DeviceID
	Updates []Update
}

// RemoveCanceling drops insert/delete pairs that cancel out (the paper's
// Algorithm 1, line 1): a Delete that follows an Insert of the same rule
// ID removes both, and an Insert that follows a Delete of the same rule ID
// collapses to a no-op pair as well when the rule is unchanged. The
// returned slice preserves the relative order of surviving updates.
func RemoveCanceling(updates []Update) []Update {
	alive := make([]bool, len(updates))
	for i := range alive {
		alive[i] = true
	}
	// last pending op index per rule ID
	pending := make(map[int64]int, len(updates))
	for i, u := range updates {
		j, ok := pending[u.Rule.ID]
		if ok && alive[j] && updates[j].Op != u.Op && updates[j].Rule.Pri == u.Rule.Pri {
			// Insert-then-delete always cancels (the delete names the
			// just-inserted rule); delete-then-insert cancels only if
			// the reinserted rule is byte-identical to the deleted one.
			cancels := u.Op == Delete ||
				(updates[j].Rule.Match == u.Rule.Match && updates[j].Rule.Action == u.Rule.Action)
			if cancels {
				alive[i], alive[j] = false, false
				delete(pending, u.Rule.ID)
				continue
			}
		}
		pending[u.Rule.ID] = i
	}
	out := updates[:0:0]
	for i, u := range updates {
		if alive[i] {
			out = append(out, u)
		}
	}
	return out
}

// SortByPriority sorts updates by descending rule priority (Algorithm 1,
// line 2), stable so same-priority updates keep arrival order. For equal
// priorities, deletes sort before inserts so that the merge visits the
// departing rule first.
func SortByPriority(updates []Update) {
	sort.SliceStable(updates, func(i, j int) bool {
		a, b := updates[i], updates[j]
		if a.Rule.Pri != b.Rule.Pri {
			return a.Rule.Pri > b.Rule.Pri
		}
		if a.Rule.ID != b.Rule.ID {
			return a.Rule.ID < b.Rule.ID
		}
		return a.Op == Delete && b.Op == Insert
	})
}

// Roots yields every BDD predicate the table holds (each rule's Match),
// for the engine's mark-and-sweep GC root set.
func (t *Table) Roots(yield func(bdd.Ref)) {
	for i := range t.rules {
		yield(t.rules[i].Match)
	}
}

// RemapRefs rewrites every Match through a GC remap. Must be called
// exactly once per collection, with the Remap returned by the owning
// engine's GC.
func (t *Table) RemapRefs(m bdd.Remap) {
	for i := range t.rules {
		t.rules[i].Match = m.Apply(t.rules[i].Match)
	}
}

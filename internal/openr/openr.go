// Package openr is a deterministic discrete-event simulator of an
// OpenR-style state-synchronization control plane, the substrate of the
// paper's CE2D experiments (§5.3). Each node keeps a key-value store of
// link states; link events bump versions and flood through the network;
// nodes recompute shortest-path FIBs (optionally after a backoff) and
// their agents send epoch-tagged FIB diffs to a collector — exactly the
// role of the paper's patched OpenR agent, with the epoch tag computed as
// a hash of the key/version store.
//
// The simulator substitutes for the paper's Mininet + real OpenR testbed:
// a virtual clock makes the long-tail experiments (60 s dampening)
// reproducible in milliseconds, and a "buggy" SPF variant reproduces the
// I2-OpenR/1buggy-loop setting by deliberately installing a next hop that
// closes a forwarding loop.
package openr

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

// Time is virtual simulation time in microseconds.
type Time int64

// Msg is an epoch-tagged FIB diff delivered to the collector at a
// virtual time.
type Msg struct {
	At  Time
	Msg ce2d.Msg
}

// Options configures a simulation.
type Options struct {
	// FloodDelay is the per-hop key-value propagation delay.
	FloodDelay Time
	// SpfDelay is the time a node takes to recompute its FIB after its
	// store changes.
	SpfDelay Time
	// SpfBackoff optionally overrides SpfDelay per node — the "init/max
	// 60s FIB computation backoff" of the long-tail settings dampens a
	// node's recomputation itself, not just its report.
	SpfBackoff func(topo.NodeID) Time
	// SendDelay returns the extra agent→collector delay for a node; the
	// long-tail experiments dampen selected nodes here (e.g. 60 s).
	SendDelay func(topo.NodeID) Time
	// Buggy marks nodes whose SPF installs loop-inducing next hops (the
	// 1buggy setting).
	Buggy map[topo.NodeID]bool
	// BuggyAfter delays the buggy behavior until the given virtual time,
	// so the bootstrap state stays correct and the bug manifests in the
	// re-converged state (as in the paper's buggy-software runs).
	BuggyAfter Time
}

// DefaultOptions mirror a LAN-scale control plane: 1 ms flooding per hop
// and 5 ms SPF.
func DefaultOptions() Options {
	return Options{FloodDelay: 1000, SpfDelay: 5000}
}

// Sim is one simulation instance.
type Sim struct {
	g     *topo.Graph
	space *hs.Space
	opts  Options

	// owners lists the prefix owners; owner i gets prefix i of len(owners).
	owners []topo.NodeID

	now    Time
	queue  eventQueue
	seq    int64 // tie-break for deterministic event ordering
	nodes  []*simNode
	out    []Msg
	nextID int64
	// truth is the authoritative link-state version counter, advanced at
	// event-scheduling time so repeated events on one link are ordered.
	truth map[string]uint64
}

type simNode struct {
	id topo.NodeID
	// kv is the link-state store: "link:a-b" → version (even = up,
	// odd = down, halved = event count).
	kv map[string]uint64
	// installed maps owner index → currently installed rule.
	installed map[int]fib.Rule
	// spfAt is the scheduled SPF completion time (0 = none pending).
	spfAt Time
}

type event struct {
	at   Time
	seq  int64
	kind eventKind
	// flood
	from, to topo.NodeID
	key      string
	val      uint64
	// spf
	node topo.NodeID
}

type eventKind uint8

const (
	evFlood eventKind = iota
	evSpf
)

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// New creates a simulation over the topology. owners are the
// prefix-owning nodes (one prefix each, partitioning the dst field of
// space's layout); every node starts with a converged FIB for the
// initial all-links-up state.
func New(g *topo.Graph, space *hs.Space, owners []topo.NodeID, opts Options) *Sim {
	if opts.SendDelay == nil {
		opts.SendDelay = func(topo.NodeID) Time { return 0 }
	}
	s := &Sim{g: g, space: space, opts: opts, owners: owners, nextID: 1, truth: make(map[string]uint64)}
	for _, n := range g.Nodes() {
		sn := &simNode{id: n.ID, kv: make(map[string]uint64), installed: make(map[int]fib.Rule)}
		for _, l := range g.Links() {
			sn.kv[linkKey(l[0], l[1])] = 0 // version 0, up
		}
		s.nodes = append(s.nodes, sn)
	}
	// Bootstrap: every node computes and sends its initial FIB at t=0.
	for _, sn := range s.nodes {
		s.runSPF(sn)
	}
	return s
}

func linkKey(a, b topo.NodeID) string {
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("link:%d-%d", a, b)
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Messages drains the collected agent messages, ordered by delivery time.
func (s *Sim) Messages() []Msg {
	out := s.out
	s.out = nil
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FailLink schedules a link failure at the given virtual time; both
// endpoints observe it and start flooding.
func (s *Sim) FailLink(at Time, a, b topo.NodeID) { s.linkEvent(at, a, b, false) }

// RestoreLink schedules a link recovery.
func (s *Sim) RestoreLink(at Time, a, b topo.NodeID) { s.linkEvent(at, a, b, true) }

func (s *Sim) linkEvent(at Time, a, b topo.NodeID, up bool) {
	key := linkKey(a, b)
	val := s.bumpTarget(key, up)
	for _, end := range []topo.NodeID{a, b} {
		s.push(&event{at: at, kind: evFlood, from: end, to: end, key: key, val: val})
	}
}

// bumpTarget computes the next version value for a link transition from
// the authoritative counter (not any node's possibly-stale view). The
// value encodes up/down in the low bit (even = up).
func (s *Sim) bumpTarget(key string, up bool) uint64 {
	next := s.truth[key] + 1
	if (next%2 == 0) != up {
		next++
	}
	s.truth[key] = next
	return next
}

// Run processes events until the queue is empty or the horizon is
// reached, collecting agent messages.
func (s *Sim) Run(horizon Time) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.at
		switch e.kind {
		case evFlood:
			s.handleFlood(e)
		case evSpf:
			s.handleSpf(e)
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

func (s *Sim) handleFlood(e *event) {
	sn := s.nodes[e.to]
	if sn.kv[e.key] >= e.val {
		return // stale
	}
	sn.kv[e.key] = e.val
	// Re-flood to neighbors over links this node believes are up (a
	// failed link cannot carry sync messages).
	for _, nb := range s.g.Neighbors(sn.id) {
		if nb == e.from {
			continue
		}
		if sn.kv[linkKey(sn.id, nb)]%2 == 1 {
			continue
		}
		s.push(&event{at: s.now + s.opts.FloodDelay, kind: evFlood, from: sn.id, to: nb, key: e.key, val: e.val})
	}
	// Schedule (or keep) an SPF run.
	if sn.spfAt == 0 || sn.spfAt <= s.now {
		delay := s.opts.SpfDelay
		if s.opts.SpfBackoff != nil {
			if d := s.opts.SpfBackoff(sn.id); d > 0 {
				delay = d
			}
		}
		sn.spfAt = s.now + delay
		s.push(&event{at: sn.spfAt, kind: evSpf, node: sn.id})
	}
}

func (s *Sim) handleSpf(e *event) {
	sn := s.nodes[e.node]
	if sn.spfAt != s.now {
		return // superseded by a later schedule
	}
	sn.spfAt = 0
	s.runSPF(sn)
}

// upGraph builds the topology as node view sees it.
func (s *Sim) upGraph(sn *simNode) *topo.Graph {
	g := s.g.Clone()
	for key, val := range sn.kv {
		if val%2 == 1 { // down
			var a, b int
			fmt.Sscanf(key, "link:%d-%d", &a, &b)
			g.RemoveLink(topo.NodeID(a), topo.NodeID(b))
		}
	}
	return g
}

// runSPF recomputes the node's FIB from its current store, emits the diff
// as an epoch-tagged message, and schedules delivery.
func (s *Sim) runSPF(sn *simNode) {
	view := s.upGraph(sn)
	epoch := ce2d.EpochOf(sn.kv)
	width := s.space.Layout.FieldBits("dst")

	var updates []fib.Update
	for i, owner := range s.owners {
		var want fib.Action
		switch {
		case owner == sn.id:
			want = fib.Forward(topo.NodeID(s.g.N()) + owner) // deliver
		default:
			nh := s.nextHop(view, sn.id, owner)
			if nh < 0 {
				want = fib.Drop
			} else {
				want = fib.Forward(nh)
			}
		}
		old, ok := sn.installed[i]
		if ok && old.Action == want {
			continue
		}
		if ok {
			updates = append(updates, fib.Update{Op: fib.Delete, Rule: old})
		}
		val, plen := prefixFor(i, len(s.owners), width)
		desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: val, Len: plen}}
		r := fib.Rule{
			ID:     s.nextID,
			Match:  s.space.Compile(desc),
			Pri:    int32(plen),
			Action: want,
			Desc:   desc,
		}
		s.nextID++
		sn.installed[i] = r
		updates = append(updates, fib.Update{Op: fib.Insert, Rule: r})
	}
	// The agent reports even when the FIB did not change: the new epoch
	// tag itself is the signal that this node is synchronized with the
	// new network state.
	s.out = append(s.out, Msg{
		At:  s.now + s.opts.SendDelay(sn.id),
		Msg: ce2d.Msg{Device: sn.id, Epoch: epoch, Updates: updates},
	})
}

// nextHop picks the node's next hop toward dst in its view, or -1 when
// unreachable. Buggy nodes deliberately pick a neighbor that routes back
// through them, closing a loop (the 1buggy setting).
func (s *Sim) nextHop(view *topo.Graph, from, dst topo.NodeID) topo.NodeID {
	nh := view.NextHopsToward(dst)
	if s.opts.Buggy[from] && from != dst && s.now >= s.opts.BuggyAfter {
		// Find a neighbor whose own shortest path to dst goes through
		// this node: forwarding to it creates a 2-cycle.
		for _, nb := range view.Neighbors(from) {
			hops := nh[nb]
			for _, h := range hops {
				if h == from {
					return nb
				}
			}
		}
	}
	if len(nh[from]) == 0 {
		return -1
	}
	return nh[from][0]
}

// prefixFor mirrors workload.prefixFor: owner i of n gets a fixed-width
// prefix partition of the dst field.
func prefixFor(i, n, width int) (value uint64, plen int) {
	plen = 1
	for 1<<uint(plen) < n {
		plen++
	}
	if plen > width {
		panic("openr: too many owners for field width")
	}
	return uint64(i) << uint(width-plen), plen
}

// Universe returns the full header space predicate (convenience for
// building verifiers over the sim's space).
func (s *Sim) Universe() bdd.Ref { return bdd.True }

package openr

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/ce2d"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

// VectorSim simulates a vector-based control plane (BGP-style, Appendix
// D.1): there is no flooded global state, so there are no epoch tags.
// Instead, a route withdrawal propagates hop by hop as announcements;
// each device that processes an announcement recomputes its FIB and
// reports the diff together with causal information — what it consumed
// and how many announcements it emitted — which the ce2d.VectorTracker
// turns into convergence detection.
//
// The model is deliberately small: one prefix, initially reachable via a
// shortest-path tree toward its origin; withdrawing the origin's
// adjacency tears routes down along the tree (the classic withdraw
// wave), each device forwarding the withdraw to its routing children.
type VectorSim struct {
	g     *topo.Graph
	space *hs.Space
	// origin owns the prefix.
	origin topo.NodeID
	// parent is each node's next hop toward the origin (tree edges).
	parent []topo.NodeID
	// children inverts parent.
	children [][]topo.NodeID

	now    Time
	seq    int64
	queue  vecQueue
	out    []VectorMsg
	nextID int64
	rules  []fib.Rule // installed route per device
}

// VectorMsg is one causal FIB report plus its virtual delivery time.
type VectorMsg struct {
	At  Time
	Msg ce2d.CausalMsg
}

type vecEvent struct {
	at   Time
	seq  int64
	node topo.NodeID
}

type vecQueue []*vecEvent

func (q vecQueue) Len() int { return len(q) }
func (q vecQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q vecQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *vecQueue) Push(x interface{}) { *q = append(*q, x.(*vecEvent)) }
func (q *vecQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewVectorSim builds the converged initial state: every node routes the
// origin's prefix along a shortest-path tree. The initial FIB reports are
// emitted immediately (with no causal event — they model steady state and
// carry event "" which callers feed straight to their model).
func NewVectorSim(g *topo.Graph, space *hs.Space, origin topo.NodeID) *VectorSim {
	s := &VectorSim{g: g, space: space, origin: origin, nextID: 1}
	nh := g.NextHopsToward(origin)
	s.parent = make([]topo.NodeID, g.N())
	s.children = make([][]topo.NodeID, g.N())
	s.rules = make([]fib.Rule, g.N())
	for _, n := range g.Nodes() {
		d := n.ID
		if d == origin {
			s.parent[d] = -1
			continue
		}
		if len(nh[d]) == 0 {
			s.parent[d] = -1
			continue
		}
		s.parent[d] = nh[d][0]
		s.children[nh[d][0]] = append(s.children[nh[d][0]], d)
	}
	// Install initial routes.
	match := space.Prefix("dst", 0, 0) // whole space = the one prefix
	for _, n := range g.Nodes() {
		d := n.ID
		var act fib.Action
		switch {
		case d == origin:
			act = fib.Forward(topo.NodeID(g.N())) // delivers
		case s.parent[d] >= 0:
			act = fib.Forward(s.parent[d])
		default:
			act = fib.Drop
		}
		r := fib.Rule{ID: s.nextID, Match: match, Pri: 0, Action: act,
			Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}
		s.nextID++
		s.rules[d] = r
	}
	return s
}

// InitialReports returns every device's steady-state FIB as causal-free
// messages (Event "").
func (s *VectorSim) InitialReports() []VectorMsg {
	out := make([]VectorMsg, 0, s.g.N())
	for _, n := range s.g.Nodes() {
		out = append(out, VectorMsg{At: 0, Msg: ce2d.CausalMsg{
			Device:  n.ID,
			Updates: []fib.Update{{Op: fib.Insert, Rule: s.rules[n.ID]}},
		}})
	}
	return out
}

// Withdraw starts the withdraw wave at the origin at the given time and
// runs it to completion with the given per-hop delay. It returns the
// event name and the initial announcement count (always 1: the withdraw
// event itself, delivered to the origin) — the ce2d.VectorTracker's
// Start arguments. The per-report accounting telescopes: the balance
// starts at 1 and each report adds (#children − 1), reaching zero
// exactly when the last leaf of the routing tree reports.
func (s *VectorSim) Withdraw(at Time, perHop Time) (event string, initial int) {
	event = fmt.Sprintf("withdraw@%d", at)
	roots := s.children[s.origin]
	s.now = at
	// The origin consumes the withdraw itself and announces to its
	// routing children.
	s.emit(event, s.origin, at, 1, len(roots))
	for _, c := range roots {
		s.push(&vecEvent{at: at + perHop, node: c})
	}
	// Drain the wave.
	for len(s.queue) > 0 {
		e := s.queue[0]
		heap.Pop(&s.queue)
		s.now = e.at
		kids := s.children[e.node]
		s.emit(event, e.node, e.at, 1, len(kids))
		for _, c := range kids {
			s.push(&vecEvent{at: e.at + perHop, node: c})
		}
	}
	return event, 1
}

// emit records a device's FIB diff for the withdraw: its route flips to
// drop.
func (s *VectorSim) emit(event string, dev topo.NodeID, at Time, consumed, emitted int) {
	old := s.rules[dev]
	nr := old
	nr.ID = s.nextID
	s.nextID++
	nr.Action = fib.Drop
	s.rules[dev] = nr
	s.out = append(s.out, VectorMsg{At: at, Msg: ce2d.CausalMsg{
		Device:   dev,
		Event:    event,
		Consumed: consumed,
		Emitted:  emitted,
		Updates: []fib.Update{
			{Op: fib.Delete, Rule: old},
			{Op: fib.Insert, Rule: nr},
		},
	}})
}

func (s *VectorSim) push(e *vecEvent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Messages drains the causal reports in delivery order.
func (s *VectorSim) Messages() []VectorMsg {
	out := s.out
	s.out = nil
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

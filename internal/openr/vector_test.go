package openr

import (
	"testing"

	"repro/internal/ce2d"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

func TestVectorSimInitialState(t *testing.T) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	origin := g.MustByName("newy")
	s := NewVectorSim(g, space, origin)
	reports := s.InitialReports()
	if len(reports) != g.N() {
		t.Fatalf("initial reports = %d, want %d", len(reports), g.N())
	}
	// Walking any node's route chain reaches the origin's delivery.
	next := make(map[fib.DeviceID]fib.Action)
	for _, r := range reports {
		next[r.Msg.Device] = r.Msg.Updates[0].Rule.Action
	}
	for _, n := range g.Nodes() {
		cur := n.ID
		for hops := 0; ; hops++ {
			if hops > g.N() {
				t.Fatalf("route loop from %d", n.ID)
			}
			nh, ok := next[cur].NextHop()
			if !ok {
				t.Fatalf("node %d dropped in steady state", cur)
			}
			if nh >= topo.NodeID(g.N()) {
				if cur != origin {
					t.Fatalf("delivery at %d, want origin %d", cur, origin)
				}
				break
			}
			cur = nh
		}
	}
}

// TestVectorWithdrawConvergence runs the Appendix D.1 pipeline: the
// withdraw wave's causal reports drive the VectorTracker, which must
// declare convergence exactly at the final report, never earlier.
func TestVectorWithdrawConvergence(t *testing.T) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	origin := g.MustByName("newy")
	s := NewVectorSim(g, space, origin)
	s.InitialReports()

	event, initial := s.Withdraw(1000, 500)
	msgs := s.Messages()
	if len(msgs) != g.N() {
		t.Fatalf("withdraw produced %d reports, want %d (tree spans all)", len(msgs), g.N())
	}

	vt := ce2d.NewVectorTracker()
	vt.Start(event, initial)
	for i, m := range msgs {
		conv, err := vt.Observe(m.Msg)
		if err != nil {
			t.Fatal(err)
		}
		last := i == len(msgs)-1
		if conv != last {
			t.Fatalf("report %d/%d: converged=%v", i+1, len(msgs), conv)
		}
	}
	if vt.Participants(event) != g.N() {
		t.Fatalf("participants = %d", vt.Participants(event))
	}
	// After the withdraw, every device's route is a drop.
	for _, m := range msgs {
		ins := m.Msg.Updates[1]
		if ins.Op != fib.Insert || ins.Rule.Action != fib.Drop {
			t.Fatalf("device %d post-withdraw rule %v", m.Msg.Device, ins.Rule.Action)
		}
	}
}

func TestVectorWithdrawTiming(t *testing.T) {
	// Reports arrive in tree-depth order: the origin first, leaves last.
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	origin := g.MustByName("seat")
	s := NewVectorSim(g, space, origin)
	s.InitialReports()
	s.Withdraw(0, 1000)
	msgs := s.Messages()
	if msgs[0].Msg.Device != origin || msgs[0].At != 0 {
		t.Fatalf("first report %+v, want origin at t=0", msgs[0])
	}
	dist := g.DistancesFrom(origin)
	for _, m := range msgs {
		want := Time(dist[m.Msg.Device]) * 1000
		if m.At < want {
			t.Fatalf("device %d reported at %d, before its hop distance %d",
				m.Msg.Device, m.At, want)
		}
	}
}

package openr

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/reach"
	"repro/internal/topo"
)

func i2Sim(opts Options) (*Sim, *topo.Graph, *hs.Space) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	return New(g, space, owners, opts), g, space
}

func TestBootstrapConverged(t *testing.T) {
	s, g, _ := i2Sim(DefaultOptions())
	s.Run(0)
	msgs := s.Messages()
	if len(msgs) != g.N() {
		t.Fatalf("bootstrap produced %d messages, want %d", len(msgs), g.N())
	}
	epoch := msgs[0].Msg.Epoch
	for _, m := range msgs {
		if m.Msg.Epoch != epoch {
			t.Fatal("bootstrap epochs differ across nodes")
		}
		if len(m.Msg.Updates) != g.N() {
			t.Fatalf("node %d installed %d rules, want %d", m.Msg.Device, len(m.Msg.Updates), g.N())
		}
		for _, u := range m.Msg.Updates {
			if u.Op != fib.Insert {
				t.Fatal("bootstrap must be inserts only")
			}
		}
	}
}

func TestLinkFailureConvergesToNewEpoch(t *testing.T) {
	s, g, _ := i2Sim(DefaultOptions())
	s.Run(0)
	s.Messages() // drain bootstrap
	chic := g.MustByName("chic")
	kans := g.MustByName("kans")
	s.FailLink(1000, chic, kans)
	s.Run(10_000_000)
	msgs := s.Messages()
	if len(msgs) == 0 {
		t.Fatal("no messages after failure")
	}
	// All nodes must end on the same (new) epoch.
	last := map[fib.DeviceID]ce2d.Epoch{}
	for _, m := range msgs {
		last[m.Msg.Device] = m.Msg.Epoch
	}
	if len(last) != g.N() {
		t.Fatalf("only %d nodes recomputed", len(last))
	}
	final := last[0]
	for dev, e := range last {
		if e != final {
			t.Fatalf("node %d final epoch %s != %s", dev, e, final)
		}
	}
}

// TestConsistentNoFalseLoops feeds a healthy two-failure run through the
// full dispatcher (as in Figure 8) and asserts CE2D reports no loops —
// only loop-free results — despite transient states.
func TestConsistentNoFalseLoops(t *testing.T) {
	s, g, space := i2Sim(DefaultOptions())
	s.Run(0)
	mk := func(ce2d.Epoch) *ce2d.Verifier {
		return ce2d.NewVerifier(ce2d.Config{
			Topo:   g,
			Engine: space.E,
			Checks: []ce2d.Check{{
				Name: "loops", Kind: ce2d.CheckLoopFree, Space: bdd.True,
				// Every node owns a prefix, so any node can deliver.
				CanExit: func(topo.NodeID) bool { return true },
			}},
		})
	}
	disp := ce2d.NewDispatcher(mk)
	// Two consecutive failures as in the paper's Figure 8 run.
	s.FailLink(1000, g.MustByName("chic"), g.MustByName("atla"))
	s.FailLink(200_000, g.MustByName("chic"), g.MustByName("kans"))
	s.Run(60_000_000)
	for _, m := range s.Messages() {
		evs, err := disp.Receive(m.Msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.Event.Loop == ce2d.LoopFound {
				t.Fatalf("false loop reported at epoch %s", ev.Epoch)
			}
		}
	}
	if disp.Stats().VerifiersCreated == 0 {
		t.Fatal("no verifiers created")
	}
}

// TestBuggyNodeCreatesDetectedLoop runs the I2-OpenR/1buggy-loop setting:
// a buggy switch installs a looping next hop and CE2D must detect it —
// early, before dampened nodes report.
func TestBuggyNodeCreatesDetectedLoop(t *testing.T) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	opts := DefaultOptions()
	buggy := g.MustByName("kans")
	dampened := g.MustByName("seat")
	opts.Buggy = map[topo.NodeID]bool{buggy: true}
	opts.SendDelay = func(n topo.NodeID) Time {
		if n == dampened {
			return 60_000_000 // 60 s dampening: the long-tail node
		}
		return 0
	}
	s := New(g, space, owners, opts)

	var loopAt Time = -1
	mk := func(ce2d.Epoch) *ce2d.Verifier {
		return ce2d.NewVerifier(ce2d.Config{
			Topo:   g,
			Engine: space.E,
			Checks: []ce2d.Check{{
				Name: "loops", Kind: ce2d.CheckLoopFree, Space: bdd.True,
				CanExit: func(topo.NodeID) bool { return true },
			}},
			ActionMap: ce2d.DefaultActionMap(g),
		})
	}
	disp := ce2d.NewDispatcher(mk)
	s.FailLink(1000, g.MustByName("chic"), g.MustByName("atla"))
	s.Run(120_000_000)
	for _, m := range s.Messages() {
		evs, err := disp.Receive(m.Msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.Event.Loop == ce2d.LoopFound && loopAt < 0 {
				loopAt = m.At
			}
		}
	}
	if loopAt < 0 {
		t.Fatal("buggy loop never detected")
	}
	if loopAt >= 60_000_000 {
		t.Fatalf("loop detected at %dµs — not early (after the dampened node reported)", loopAt)
	}
}

func TestFloodingBlockedByFailedLink(t *testing.T) {
	// Line a—b: failing the only link partitions the two nodes; b must
	// still learn of the failure (it is an endpoint) but a 3rd node
	// behind the cut cannot.
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	c := g.AddNode("c", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c)
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	s := New(g, space, []topo.NodeID{a, b, c}, DefaultOptions())
	s.Run(0)
	s.Messages()
	s.FailLink(1000, a, b)
	s.Run(1_000_000)
	msgs := s.Messages()
	epochs := map[fib.DeviceID]ce2d.Epoch{}
	for _, m := range msgs {
		epochs[m.Msg.Device] = m.Msg.Epoch
	}
	if _, ok := epochs[a]; !ok {
		t.Fatal("endpoint a did not recompute")
	}
	// c hears via b (b—c is up): must also recompute.
	if _, ok := epochs[c]; !ok {
		t.Fatal("c did not hear the failure via b")
	}
	if epochs[b] != epochs[c] {
		t.Fatal("b and c should agree on the epoch")
	}
	// a is cut off from b: its epoch reflects only its own observation —
	// but both observe the same link event, so tags still match here.
	if epochs[a] != epochs[b] {
		t.Fatal("both endpoints saw the same single event; tags must match")
	}
}

func TestBuggyNextHopClosesTwoCycle(t *testing.T) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	buggy := g.MustByName("kans")
	opts := DefaultOptions()
	opts.Buggy = map[topo.NodeID]bool{buggy: true}
	s := New(g, space, owners, opts)
	s.Run(0)
	// Inspect the buggy node's bootstrap FIB: for at least one remote
	// destination, its next hop's next hop must point back.
	msgs := s.Messages()
	nhOf := map[fib.DeviceID]map[int]topo.NodeID{} // device → owner idx → nh
	for _, m := range msgs {
		nhOf[m.Msg.Device] = map[int]topo.NodeID{}
		for _, u := range m.Msg.Updates {
			if nh, ok := u.Rule.Action.NextHop(); ok && nh < topo.NodeID(g.N()) {
				idx := int(u.Rule.Desc[0].Value >> 12) // plen=4 on 16 bits
				nhOf[m.Msg.Device][idx] = nh
			}
		}
	}
	cycles := 0
	for idx, nh := range nhOf[buggy] {
		if back, ok := nhOf[nh][idx]; ok && back == buggy {
			cycles++
		}
	}
	if cycles == 0 {
		t.Fatal("buggy node created no 2-cycles")
	}
	// Sanity: a correct node's forwarding must reach the owner.
	var _ = reach.Unknown
}

func TestSpfBackoffDelaysRecomputation(t *testing.T) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	slow := g.MustByName("losa")
	opts := DefaultOptions()
	opts.SpfBackoff = func(n topo.NodeID) Time {
		if n == slow {
			return 60_000_000 // 60 s computation backoff
		}
		return 0
	}
	s := New(g, space, owners, opts)
	s.Run(0)
	s.Messages()
	s.FailLink(1000, g.MustByName("chic"), g.MustByName("kans"))
	s.Run(120_000_000)
	var slowAt, fastMax Time = -1, 0
	for _, m := range s.Messages() {
		if m.Msg.Device == slow {
			slowAt = m.At
		} else if m.At > fastMax {
			fastMax = m.At
		}
	}
	if slowAt < 60_000_000 {
		t.Fatalf("dampened node reported at %d, before its backoff", slowAt)
	}
	if fastMax >= 1_000_000 {
		t.Fatalf("undampened nodes took %dµs, expected fast convergence", fastMax)
	}
}

package shard

import (
	"math/bits"

	flash "repro"
)

// routeFor narrows a message for one shard: the envelope (device +
// epoch) always goes through — CE2D epoch tracking needs every worker
// to observe every message — but updates whose primary prefix on the
// partitioned field cannot intersect any of the shard's subspaces are
// pruned. Pruning is an optimization, never a correctness requirement:
// a subspace worker intersects each update with its universe and drops
// the empty ones itself, so over-delivery is always safe.
func (c *Coordinator) routeFor(sh *shard, m flash.Msg) flash.Msg {
	if len(c.cfg.Sets) == 1 || c.cfg.Subspaces <= 1 {
		return m // single shard or single subspace: nothing to prune
	}
	var kept []flash.Update
	pruned := false
	for ui, u := range m.Updates {
		lo, hi, ok := c.subspaceRange(u)
		if !ok || rangeHits(sh.owned, lo, hi) {
			c.m.routed.Inc()
			if pruned {
				kept = append(kept, u)
			}
			continue
		}
		c.m.filtered.Inc()
		// First pruned update: materialize the kept prefix lazily so
		// the common all-kept case stays allocation-free.
		if !pruned {
			kept = append(kept, m.Updates[:ui]...)
			pruned = true
		}
	}
	if !pruned {
		return m
	}
	return flash.Msg{Device: m.Device, Epoch: m.Epoch, Updates: kept}
}

// subspaceRange maps an update's primary prefix on the partitioned
// field to the inclusive global subspace range it can touch. ok=false
// means "unknown — deliver everywhere" (ternary match, missing field,
// or non-power-of-two partitioning).
func (c *Coordinator) subspaceRange(u flash.Update) (lo, hi int, ok bool) {
	n := c.cfg.Subspaces
	b := bits.TrailingZeros(uint(n))
	if c.cfg.FieldBits <= 0 || c.cfg.Field == "" || n != 1<<b || b > c.cfg.FieldBits {
		return 0, 0, false
	}
	value, plen, has := u.Rule.Desc.PrimaryPrefix(c.cfg.Field)
	if !has {
		return 0, 0, false
	}
	w := c.cfg.FieldBits
	if plen >= b {
		s := int(value >> uint(w-b))
		return s, s, true
	}
	// Short prefix: it spans a 2^(b-plen)-wide aligned block of
	// subspaces.
	lo = int((value &^ ((1 << uint(w-plen)) - 1)) >> uint(w-b))
	hi = lo + (1 << uint(b-plen)) - 1
	return lo, hi, true
}

// rangeHits reports whether any owned subspace falls in [lo, hi].
func rangeHits(owned map[int]bool, lo, hi int) bool {
	if hi-lo >= len(owned) {
		// The range is wider than the owned set: scan the set instead.
		for i := range owned {
			if i >= lo && i <= hi {
				return true
			}
		}
		return false
	}
	for i := lo; i <= hi; i++ {
		if owned[i] {
			return true
		}
	}
	return false
}

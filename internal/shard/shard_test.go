package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	flash "repro"
	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/workload"
)

const testSubspaces = 4

// tinyFabric is a test-sized 3-tier Clos.
var tinyFabric = topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1}

// testWorkload builds the seeded workload and its CE2D epoch stream:
// consecutive updates grouped into epochs, at most one message per
// device per epoch.
func testWorkload(seed int64) (*workload.Workload, [][]flash.Msg, string) {
	w := workload.TraceAPSP("shard", topo.Internet2())
	seq := w.SkewedChurn(3, testSubspaces, 0.9, seed)
	epochs := epochStream(seq, 24)
	return w, epochs, fmt.Sprintf("e%d", len(epochs))
}

func epochStream(seq []workload.DevUpdate, perEpoch int) [][]flash.Msg {
	var epochs [][]flash.Msg
	for start, e := 0, 1; start < len(seq); e++ {
		end := start + perEpoch
		if end > len(seq) {
			end = len(seq)
		}
		byDev := make(map[fib.DeviceID][]fib.Update)
		var order []fib.DeviceID
		for _, du := range seq[start:end] {
			if _, ok := byDev[du.Dev]; !ok {
				order = append(order, du.Dev)
			}
			byDev[du.Dev] = append(byDev[du.Dev], du.Update)
		}
		var msgs []flash.Msg
		for _, dev := range order {
			m, err := wire.FromFib(dev, fmt.Sprintf("e%d", e), byDev[dev])
			if err != nil {
				panic(err)
			}
			msgs = append(msgs, m)
		}
		epochs = append(epochs, msgs)
		start = end
	}
	return epochs
}

func sysOpts(w *workload.Workload) []flash.Option {
	return []flash.Option{
		flash.WithTopo(w.Topo),
		flash.WithLayout(w.Layout),
		flash.WithSubspaces(testSubspaces, ""),
		flash.WithChecks(flash.CheckSpec{Name: "loops", Kind: flash.CheckLoopFree}),
	}
}

// singleRun replays the stream through one full-set System: the oracle
// every sharded configuration must match.
func singleRun(t *testing.T, w *workload.Workload, epochs [][]flash.Msg, last string) ([]string, string) {
	t.Helper()
	sys, err := flash.NewSystem(sysOpts(w)...)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []string
	for _, msgs := range epochs {
		for _, m := range msgs {
			rs, err := sys.FeedContext(context.Background(), m)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				verdicts = append(verdicts, r.String())
			}
		}
	}
	sort.Strings(verdicts)
	fp, err := sys.ModelFingerprint(last)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts, fp
}

// collector accumulates coordinator results concurrently.
type collector struct {
	mu sync.Mutex
	vs []string
}

func (c *collector) add(r flash.Result) {
	c.mu.Lock()
	c.vs = append(c.vs, r.String())
	c.mu.Unlock()
}

func (c *collector) sorted() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.vs...)
	sort.Strings(out)
	return out
}

func coordConfig(w *workload.Workload, sets [][]int, col *collector) Config {
	return Config{
		Subspaces: testSubspaces,
		Field:     "dst",
		FieldBits: w.Layout.FieldBits("dst"),
		Sets:      sets,
		Factory:   LocalFactory(sysOpts(w)...),
		OnResult:  col.add,
	}
}

func feedAll(t *testing.T, c *Coordinator, epochs [][]flash.Msg) {
	t.Helper()
	for _, msgs := range epochs {
		for _, m := range msgs {
			if _, err := c.FeedContext(context.Background(), m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func diffVerdicts(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d verdicts, oracle has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: verdict multiset diverges at %d:\n  got:  %s\n  want: %s",
				label, i, got[i], want[i])
		}
	}
}

// TestCoordinatorEquality: for every shard count, the coordinator's
// aggregated verdict multiset and composed fingerprint equal the
// single-process run.
func TestCoordinatorEquality(t *testing.T) {
	const seed = 0x5a4d1
	w, epochs, last := testWorkload(seed)
	wantV, wantFP := singleRun(t, w, epochs, last)
	if len(wantV) == 0 {
		t.Fatal("oracle run produced no verdicts")
	}
	for _, k := range []int{1, 2, 4} {
		col := &collector{}
		c, err := New(coordConfig(w, Partition(testSubspaces, k), col))
		if err != nil {
			t.Fatal(err)
		}
		feedAll(t, c, epochs)
		if err := c.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		fp, err := c.ModelFingerprint(context.Background(), last)
		if err != nil {
			t.Fatal(err)
		}
		if fp != wantFP {
			t.Fatalf("k=%d: composed fingerprint diverges from single-process run", k)
		}
		diffVerdicts(t, fmt.Sprintf("k=%d", k), col.sorted(), wantV)
		c.Close()
	}
}

// TestPartitionPropertyEquality is the quick-check satellite: ANY
// disjoint cover of the subspace set — random assignment, random shard
// count — must give verdict-multiset and fingerprint equality with the
// unsharded run, across every workload generator family.
func TestPartitionPropertyEquality(t *testing.T) {
	gens := []struct {
		name string
		w    *workload.Workload
	}{
		{"trace-apsp", workload.TraceAPSP("shard-prop", topo.Internet2())},
		{"lnet-apsp", workload.LNetAPSP(tinyFabric)},
		{"lnet-ecmp", workload.LNetECMP(tinyFabric)},
		{"lnet-smr", workload.LNetSMR(tinyFabric)},
	}
	rng := rand.New(rand.NewSource(0x9a57))
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			seq := g.w.SkewedChurn(2, testSubspaces, 0.8, rng.Int63())
			epochs := epochStream(seq, 24)
			last := fmt.Sprintf("e%d", len(epochs))
			wantV, wantFP := singleRun(t, g.w, epochs, last)
			for trial := 0; trial < 3; trial++ {
				k := 1 + rng.Intn(testSubspaces)
				// Random disjoint cover: assign each subspace to a
				// uniform shard, dropping empty shards.
				buckets := make([][]int, k)
				for i := 0; i < testSubspaces; i++ {
					s := rng.Intn(k)
					buckets[s] = append(buckets[s], i)
				}
				var sets [][]int
				for _, b := range buckets {
					if len(b) > 0 {
						sets = append(sets, b)
					}
				}
				label := fmt.Sprintf("trial %d sets %v", trial, sets)
				col := &collector{}
				c, err := New(coordConfig(g.w, sets, col))
				if err != nil {
					t.Fatal(err)
				}
				feedAll(t, c, epochs)
				fp, err := c.ModelFingerprint(context.Background(), last)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if fp != wantFP {
					t.Fatalf("%s: composed fingerprint diverges", label)
				}
				diffVerdicts(t, label, col.sorted(), wantV)
				c.Close()
			}
		})
	}
}

// witnessFactory wraps a factory and records, per placement, the
// envelope sequence ("device/epoch") each backend was fed — the
// sequence witness for loss/duplication analysis across handoffs.
type witnessFactory struct {
	inner Factory

	mu     sync.Mutex
	feeds  map[string][]string // placement key → envelope sequence
	placed []string            // placement keys in creation order
}

func newWitnessFactory(inner Factory) *witnessFactory {
	return &witnessFactory{inner: inner, feeds: make(map[string][]string)}
}

func (wf *witnessFactory) factory() Factory {
	return func(a Assignment) (Backend, error) {
		b, err := wf.inner(a)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("s%d-r%d", a.Shard, a.Rebalance)
		wf.mu.Lock()
		wf.placed = append(wf.placed, key)
		wf.mu.Unlock()
		return &witnessBackend{Backend: b, wf: wf, key: key}, nil
	}
}

func (wf *witnessFactory) sequence(key string) []string {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	return append([]string(nil), wf.feeds[key]...)
}

type witnessBackend struct {
	Backend
	wf  *witnessFactory
	key string
}

// Checkpoint forwards so the wrapper doesn't hide the inner backend's
// Checkpointer capability from the coordinator.
func (wb *witnessBackend) Checkpoint(dir string) (flash.CheckpointInfo, error) {
	ck, ok := wb.Backend.(Checkpointer)
	if !ok {
		return flash.CheckpointInfo{}, fmt.Errorf("backend does not checkpoint")
	}
	return ck.Checkpoint(dir)
}

func (wb *witnessBackend) Feed(ctx context.Context, msgs []flash.Msg) ([]flash.Result, error) {
	wb.wf.mu.Lock()
	for _, m := range msgs {
		wb.wf.feeds[wb.key] = append(wb.wf.feeds[wb.key], fmt.Sprintf("%d/%s", m.Device, m.Epoch))
	}
	wb.wf.mu.Unlock()
	return wb.Backend.Feed(ctx, msgs)
}

// TestRebalanceNoLossNoDup: a forced handoff mid-stream loses no
// updates and applies none twice. The witness proves the replacement
// placement was fed exactly the log prefix in order; the verdict
// multiset and fingerprint prove exactly-once upstream delivery.
func TestRebalanceNoLossNoDup(t *testing.T) {
	const seed = 0x4eba1
	w, epochs, last := testWorkload(seed)
	wantV, wantFP := singleRun(t, w, epochs, last)

	col := &collector{}
	cfg := coordConfig(w, Partition(testSubspaces, 2), col)
	wf := newWitnessFactory(cfg.Factory)
	cfg.Factory = wf.factory()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	half := len(epochs) / 2
	feedAll(t, c, epochs[:half])
	// Handoff: shard 1's replica "dies" and is replaced mid-stream.
	if err := c.Rebalance(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	feedAll(t, c, epochs[half:])

	fp, err := c.ModelFingerprint(context.Background(), last)
	if err != nil {
		t.Fatal(err)
	}
	if fp != wantFP {
		t.Fatal("fingerprint diverges after mid-stream handoff")
	}
	diffVerdicts(t, "handoff", col.sorted(), wantV)

	// Sequence witness: the replacement placement saw every logged
	// envelope exactly once, in log order (replay prefix + live tail).
	want := wf.sequence("s1-r0") // original placement saw the full prefix
	wantLen := len(want)
	got := wf.sequence("s1-r1")
	if len(got) <= wantLen {
		t.Fatalf("replacement placement saw %d envelopes, want > %d (replay + tail)", len(got), wantLen)
	}
	for i, env := range want {
		if got[i] != env {
			t.Fatalf("replay sequence diverges at %d: got %s want %s", i, got[i], env)
		}
	}
	// No duplicates: CE2D allows at most one message per device per
	// epoch, so every envelope must appear exactly once.
	seen := map[string]int{}
	for _, env := range got {
		if seen[env]++; seen[env] > 1 {
			t.Fatalf("envelope %s fed twice to the replacement placement", env)
		}
	}
	st := c.Status()
	if st.Shards[1].Rebalances != 1 {
		t.Fatalf("shard 1 rebalances = %d, want 1", st.Shards[1].Rebalances)
	}
}

// TestRebalanceRacingCheckpoint: a handoff immediately after a
// checkpoint commit restores from the checkpoint and replays exactly
// the post-checkpoint suffix — no update is lost to the gap between
// the capture and the log cut, and none is applied twice.
func TestRebalanceRacingCheckpoint(t *testing.T) {
	const seed = 0xc4b7
	w, epochs, last := testWorkload(seed)
	wantV, wantFP := singleRun(t, w, epochs, last)

	dir, err := os.MkdirTemp("", "shardckpt")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	col := &collector{}
	cfg := coordConfig(w, Partition(testSubspaces, 2), col)
	wf := newWitnessFactory(cfg.Factory)
	cfg.Factory = wf.factory()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	third := len(epochs) / 3
	feedAll(t, c, epochs[:third])
	preCkpt := c.LogLen()
	if err := c.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	feedAll(t, c, epochs[third:2*third])
	// The race: kill shard 0 right after more traffic followed the
	// checkpoint commit. The replacement must boot from the checkpoint
	// and replay only log[preCkpt:].
	if err := c.Rebalance(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	feedAll(t, c, epochs[2*third:])

	fp, err := c.ModelFingerprint(context.Background(), last)
	if err != nil {
		t.Fatal(err)
	}
	if fp != wantFP {
		t.Fatal("fingerprint diverges after checkpoint-racing handoff")
	}
	diffVerdicts(t, "ckpt-handoff", col.sorted(), wantV)

	st := c.Status()
	if !st.Shards[0].Restored {
		t.Fatal("replacement placement did not restore from the shard checkpoint")
	}
	// Witness: replay started at the checkpoint floor, not at zero.
	replayed := wf.sequence("s0-r1")
	full := wf.sequence("s0-r0")
	wantReplay := len(full) - preCkpt
	if wantReplay < 0 {
		t.Fatalf("bad harness: placement saw %d < checkpoint floor %d", len(full), preCkpt)
	}
	liveTail := c.LogLen() - len(full)
	if len(replayed) != wantReplay+liveTail {
		t.Fatalf("replacement fed %d envelopes, want %d (suffix replay %d + live tail %d)",
			len(replayed), wantReplay+liveTail, wantReplay, liveTail)
	}
}

// TestValidateSets rejects overlapping, empty, and non-covering shard
// sets.
func TestValidateSets(t *testing.T) {
	cases := []struct {
		sets [][]int
		ok   bool
	}{
		{[][]int{{0, 1}, {2, 3}}, true},
		{[][]int{{0, 1, 2, 3}}, true},
		{[][]int{{0}, {1}, {2}, {3}}, true},
		{[][]int{{0, 1}, {1, 2, 3}}, false}, // overlap
		{[][]int{{0, 1}, {2}}, false},       // gap
		{[][]int{{0, 1, 2, 3}, {}}, false},  // empty shard
		{[][]int{{0, 1, 2}, {3, 4}}, false}, // out of range
	}
	for i, tc := range cases {
		err := validateSets(4, tc.sets)
		if (err == nil) != tc.ok {
			t.Errorf("case %d %v: err=%v, want ok=%v", i, tc.sets, err, tc.ok)
		}
	}
}

// TestSubspaceRange pins the prefix→subspace-range arithmetic.
func TestSubspaceRange(t *testing.T) {
	c := &Coordinator{cfg: Config{Subspaces: 4, Field: "dst", FieldBits: 8}}
	mk := func(value uint64, plen int) flash.Update {
		return flash.Update{Rule: flash.Rule{Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: value, Len: plen}}}}
	}
	cases := []struct {
		u      flash.Update
		lo, hi int
		ok     bool
	}{
		{mk(0x00, 2), 0, 0, true}, // 00xxxxxx → subspace 0
		{mk(0xC0, 2), 3, 3, true}, // 11xxxxxx → subspace 3
		{mk(0xFF, 8), 3, 3, true}, // full-length prefix
		{mk(0x80, 1), 2, 3, true}, // 1xxxxxxx spans upper half
		{mk(0x00, 0), 0, 3, true}, // default route spans all
		{flash.Update{Rule: flash.Rule{Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary, Value: 1, Mask: 1}}}}, 0, 0, false},
		{flash.Update{Rule: flash.Rule{Desc: fib.MatchDesc{{Field: "src", Kind: fib.MatchPrefix, Value: 0, Len: 2}}}}, 0, 0, false},
	}
	for i, tc := range cases {
		lo, hi, ok := c.subspaceRange(tc.u)
		if ok != tc.ok || (ok && (lo != tc.lo || hi != tc.hi)) {
			t.Errorf("case %d: got [%d,%d] ok=%v, want [%d,%d] ok=%v", i, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}

// TestMetrics: the shard registry exposes rebalance and routing
// counters.
func TestMetrics(t *testing.T) {
	const seed = 0x0b5
	w, epochs, _ := testWorkload(seed)
	reg := obs.NewRegistry("coord")
	col := &collector{}
	cfg := coordConfig(w, Partition(testSubspaces, 2), col)
	cfg.Metrics = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feedAll(t, c, epochs[:2])
	if err := c.Rebalance(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rebalances_total", "routed_updates_total"} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("metrics snapshot missing %q: %s", want, js)
		}
	}
}

package shard

import (
	"context"
	"errors"
	"sync"

	flash "repro"
)

// errClosed reports a Feed on a backend whose placement was torn down.
var errClosed = errors.New("shard: backend closed")

// LocalFactory realizes shard placements as in-process subset Systems:
// each assignment gets a System built from the caller's full
// single-process options narrowed with WithSubspaceSet(a.Set). When the
// assignment carries a checkpoint directory the factory boots from it
// (flash.Restore) and reports Restored, so the coordinator replays only
// the post-checkpoint log suffix.
func LocalFactory(opts ...flash.Option) Factory {
	return func(a Assignment) (Backend, error) {
		sysOpts := make([]flash.Option, 0, len(opts)+1)
		sysOpts = append(sysOpts, opts...)
		sysOpts = append(sysOpts, flash.WithSubspaceSet(a.Set...))
		if a.CheckpointDir != "" {
			if sys, _, err := flash.Restore(a.CheckpointDir, sysOpts...); err == nil {
				return &localBackend{sys: sys, restored: true}, nil
			}
			// An unreadable or incompatible checkpoint falls back to a
			// cold boot + full replay — slower, never wrong.
		}
		sys, err := flash.NewSystem(sysOpts...)
		if err != nil {
			return nil, err
		}
		return &localBackend{sys: sys}, nil
	}
}

// localBackend drives one in-process subset System. Verification is
// synchronous, so Feed returns the results and Drain is a no-op.
type localBackend struct {
	sys      *flash.System
	restored bool

	mu     sync.Mutex
	closed bool
}

func (b *localBackend) Feed(ctx context.Context, msgs []flash.Msg) ([]flash.Result, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, errClosed
	}
	return b.sys.FeedBatch(ctx, msgs)
}

func (b *localBackend) Drain(ctx context.Context) error { return ctx.Err() }

func (b *localBackend) Fingerprints(ctx context.Context, epoch string) (map[int]string, error) {
	return b.sys.SubspaceFingerprints(epoch)
}

func (b *localBackend) Healthy() bool {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	return !closed && !b.sys.Health().Degraded
}

func (b *localBackend) Restored() bool { return b.restored }

func (b *localBackend) Checkpoint(dir string) (flash.CheckpointInfo, error) {
	return b.sys.Checkpoint(dir)
}

// System exposes the wrapped System (flashcoord's in-process mode
// surfaces per-shard stats through it).
func (b *localBackend) System() *flash.System { return b.sys }

func (b *localBackend) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return nil
}

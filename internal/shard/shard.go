// Package shard scales Flash verification past one process: a
// Coordinator partitions the tagged subspace set across N verifier
// replicas (in-process Systems or flashd replicas behind the wire
// session protocol), routes the epoch-tagged update stream to the
// owning shards, and aggregates per-shard verdicts and EC-model
// fingerprints into the one epoch-consistent answer a single-process
// run would give.
//
// The correctness argument is compositional. A replica is a System
// built WithSubspaceSet: it instantiates only its owned subspaces but
// keeps the global subspace numbering, and a subspace worker applies
// an update only after intersecting it with the subspace universe — so
// delivering every message envelope to every shard, with updates
// filtered to those that can intersect the shard's universes, yields
// per-subspace models and verdict streams identical to a full-set run.
// Verdict multisets aggregate by union (subspace sets are disjoint and
// covering), and per-subspace model digests merge into the exact
// fingerprint flash.ComposeFingerprints gives a single process.
//
// Fault tolerance reuses the session layer's at-least-once contract:
// the coordinator retains the ordered log of accepted messages, and
// when a replica's health degrades (drain deadline exceeded, failed
// client, degraded health report) its subspace set is reassigned to a
// replacement backend — restored from the shard's latest checkpoint
// plus a replay of the post-checkpoint log suffix when one exists,
// else by a full log replay. Replayed results are deterministic, so
// the coordinator suppresses the prefix it already delivered and the
// upstream result stream stays exactly-once.
package shard

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	flash "repro"
	"repro/internal/obs"
)

// Backend is one shard replica: the subset-System surface the
// coordinator drives. Implementations: Local (an in-process System)
// and Remote (a wire client to a flashd-style replica).
type Backend interface {
	// Feed delivers a batch of epoch-tagged messages in log order. A
	// local backend verifies synchronously and returns the results; a
	// remote backend buffers them with at-least-once delivery and
	// returns nil results (they arrive via the assignment's OnResult).
	Feed(ctx context.Context, msgs []flash.Msg) ([]flash.Result, error)
	// Drain blocks until every accepted message has been verified and
	// its results delivered (WaitAcked for remote backends).
	Drain(ctx context.Context) error
	// Fingerprints returns the shard's per-subspace EC-model digests
	// for the epoch (global subspace index → digest).
	Fingerprints(ctx context.Context, epoch string) (map[int]string, error)
	// Healthy reports whether the replica is fit to keep its shard.
	Healthy() bool
	// Restored reports whether this backend booted from the shard's
	// checkpoint directory (the coordinator then replays only the
	// post-checkpoint suffix).
	Restored() bool
	Close() error
}

// Checkpointer is implemented by backends that can capture their
// shard's state crash-consistently (Local does; a Remote replica
// checkpoints on its own schedule).
type Checkpointer interface {
	Checkpoint(dir string) (flash.CheckpointInfo, error)
}

// Assignment names one shard placement the Factory must realize.
type Assignment struct {
	// Shard is the shard's stable identity (index into Config.Sets).
	Shard int
	// Set is the owned global subspace set, sorted ascending.
	Set []int
	// Rebalance counts prior placements of this shard (0 = initial).
	Rebalance int
	// CheckpointDir is the shard's checkpoint directory ("" when the
	// coordinator has never checkpointed this shard); a factory may
	// restore from it and report Restored() accordingly.
	CheckpointDir string
	// OnResult must receive every result the replica produces (remote
	// backends wire it into their client's result subscription; local
	// backends may ignore it — the coordinator forwards returned
	// results itself).
	OnResult func(flash.Result)
}

// Factory realizes a shard placement. It is called once per shard at
// startup and again on every rebalance.
type Factory func(a Assignment) (Backend, error)

// Config configures a Coordinator.
type Config struct {
	// Subspaces is the global partition count (must match the replicas'
	// WithSubspaces; ≥ 1).
	Subspaces int
	// Field and FieldBits describe the partitioned header field (the
	// WithSubspaces field and its layout width) for update routing.
	// FieldBits 0 disables prefix routing: every update goes to every
	// shard (still correct, never minimal).
	Field     string
	FieldBits int
	// Sets are the per-shard owned subspace sets; they must be
	// disjoint and cover [0, Subspaces). Use Partition for an even
	// contiguous split.
	Sets [][]int
	// Factory realizes shard placements (see Local/Remote helpers).
	Factory Factory
	// OnResult receives every aggregated result exactly once. It may be
	// called from backend goroutines concurrently with Feed; it must be
	// safe for that.
	OnResult func(flash.Result)
	// DrainTimeout bounds how long Drain waits per shard before the
	// replica is declared dead and its shard rebalanced (default 30s).
	DrainTimeout time.Duration
	// MaxRebalances bounds per-shard replacement attempts within one
	// coordinator operation (default 3).
	MaxRebalances int
	// Metrics optionally publishes shard/rebalance counters and
	// per-shard lag gauges under the registry's "shard" sub-registry.
	Metrics *obs.Registry
	// Logger receives operational messages (rebalances). Nil silences.
	Logger *log.Logger
}

// Partition splits n subspaces into k contiguous, near-even shard
// sets: the canonical placement for Config.Sets.
func Partition(n, k int) [][]int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	sets := make([][]int, k)
	for i := 0; i < n; i++ {
		s := i * k / n
		sets[s] = append(sets[s], i)
	}
	return sets
}

// shard is one shard's live placement state. Fields under c.mu except
// the result-path fields under resMu (remote results arrive on client
// read loops concurrently with Feed).
type shard struct {
	id      int
	set     []int
	owned   map[int]bool
	backend Backend

	fed        int // prefix of the coordinator log delivered
	rebalances int
	ckptDir    string
	ckptLog    int // log index covered by the latest checkpoint
	ckptRes    int // results delivered when that checkpoint was taken

	resMu     sync.Mutex
	placement int // current placement generation; stale sinks are dropped
	results   int // results delivered upstream
	suppress  int // replayed results still to swallow after a rebalance

	lag *obs.Gauge
}

type metrics struct {
	rebalances *obs.Counter
	routed     *obs.Counter // updates delivered to shards
	filtered   *obs.Counter // updates pruned by prefix routing
	results    *obs.Counter // results aggregated upstream
}

// Coordinator partitions verification across shard replicas behind a
// System-shaped API: FeedContext routes, Drain barriers, and
// ModelFingerprint aggregates the per-shard digests.
type Coordinator struct {
	cfg Config

	mu     sync.Mutex
	shards []*shard
	log    []flash.Msg // every accepted message, in order (replay source)
	closed bool

	m metrics
}

// New builds a Coordinator and realizes every shard's initial
// placement through the factory.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Subspaces < 1 {
		cfg.Subspaces = 1
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("shard: config needs a Factory")
	}
	if len(cfg.Sets) == 0 {
		cfg.Sets = Partition(cfg.Subspaces, 1)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.MaxRebalances <= 0 {
		cfg.MaxRebalances = 3
	}
	if err := validateSets(cfg.Subspaces, cfg.Sets); err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		sreg := reg.Sub("shard")
		c.m = metrics{
			rebalances: sreg.Counter("rebalances_total"),
			routed:     sreg.Counter("routed_updates_total"),
			filtered:   sreg.Counter("filtered_updates_total"),
			results:    sreg.Counter("results_total"),
		}
	}
	for id, set := range cfg.Sets {
		sh := &shard{id: id, set: append([]int(nil), set...)}
		sort.Ints(sh.set)
		sh.owned = make(map[int]bool, len(sh.set))
		for _, i := range sh.set {
			sh.owned[i] = true
		}
		if reg := cfg.Metrics; reg != nil {
			sreg := reg.Sub("shard").Sub("shard" + strconv.Itoa(id))
			sh.lag = sreg.Gauge("lag")
			shp := sh
			sreg.Func("rebalances", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(shp.rebalances)
			})
		}
		b, err := cfg.Factory(Assignment{
			Shard: id, Set: sh.set, OnResult: c.resultSink(sh, 0),
		})
		if err != nil {
			for _, prev := range c.shards {
				prev.backend.Close()
			}
			return nil, fmt.Errorf("shard: placing shard %d: %w", id, err)
		}
		sh.backend = b
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// validateSets checks that the shard sets are a disjoint cover of the
// global subspace range.
func validateSets(n int, sets [][]int) error {
	seen := make(map[int]int, n)
	for id, set := range sets {
		if len(set) == 0 {
			return fmt.Errorf("shard: shard %d owns no subspaces", id)
		}
		for _, i := range set {
			if i < 0 || i >= n {
				return fmt.Errorf("shard: shard %d: subspace %d out of range [0,%d)", id, i, n)
			}
			if prev, dup := seen[i]; dup {
				return fmt.Errorf("shard: subspace %d owned by both shard %d and shard %d", i, prev, id)
			}
			seen[i] = id
		}
	}
	if len(seen) != n {
		return fmt.Errorf("shard: sets cover %d of %d subspaces", len(seen), n)
	}
	return nil
}

// deliver is the exactly-once upstream delivery path for one shard:
// replayed results regenerate deterministically after a rebalance, so
// the first suppress of them are swallowed, and a result racing in
// from a placement that has already been replaced (a read loop
// dispatching its last frame as the coordinator rebalances) is dropped
// by generation. placement < 0 means "the current placement" — the
// synchronous Feed path, which runs under c.mu and cannot be stale.
// Reports whether the result was genuinely new (delivered upstream).
func (c *Coordinator) deliver(sh *shard, placement int, r flash.Result) bool {
	sh.resMu.Lock()
	if placement >= 0 && placement != sh.placement {
		sh.resMu.Unlock()
		return false
	}
	if sh.suppress > 0 {
		sh.suppress--
		sh.resMu.Unlock()
		return false
	}
	sh.results++
	sh.resMu.Unlock()
	c.m.results.Inc()
	if c.cfg.OnResult != nil {
		c.cfg.OnResult(r)
	}
	return true
}

// resultSink adapts deliver into the Assignment.OnResult shape a
// backend pushes asynchronous results through, bound to the placement
// generation it was created for.
func (c *Coordinator) resultSink(sh *shard, placement int) func(flash.Result) {
	return func(r flash.Result) { c.deliver(sh, placement, r) }
}

// FeedContext accepts one epoch-tagged message, appends it to the
// durable log, and routes it to every shard — the full update list to
// shards owning a touched subspace, the bare envelope (which still
// drives CE2D epoch tracking) elsewhere. Results produced synchronously
// (local backends) are returned; every result, synchronous or pushed,
// reaches Config.OnResult exactly once. A shard whose backend fails is
// rebalanced and caught up before FeedContext returns.
func (c *Coordinator) FeedContext(ctx context.Context, m flash.Msg) ([]flash.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("shard: coordinator closed")
	}
	c.log = append(c.log, m)

	type delivery struct {
		res []flash.Result
		err error
	}
	out := make([]delivery, len(c.shards))
	var wg sync.WaitGroup
	for si, sh := range c.shards {
		si, sh := si, sh
		routed := c.routeFor(sh, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sh.backend.Feed(ctx, []flash.Msg{routed})
			out[si] = delivery{res, err}
		}()
	}
	wg.Wait()

	var merged []flash.Result
	for si, sh := range c.shards {
		if err := out[si].err; err != nil {
			if rerr := c.rebalanceLocked(ctx, sh, err); rerr != nil {
				return merged, rerr
			}
			continue // the replay caught the shard up through this message
		}
		sh.fed = len(c.log)
		sh.setLag(0)
		for _, r := range out[si].res {
			if c.deliver(sh, -1, r) {
				merged = append(merged, r)
			}
		}
	}
	// Shard order above is ascending-lowest-subspace by construction,
	// matching the (message, subspace) merge order of a full-set System
	// for contiguous partitions; sort to make it so for any partition.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Subspace < merged[j].Subspace })
	return merged, nil
}

// Drain blocks until every shard has verified everything it was fed
// and delivered the results. A shard that cannot drain within
// DrainTimeout is declared dead, rebalanced, and drained again.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainLocked(ctx)
}

func (c *Coordinator) drainLocked(ctx context.Context) error {
	for _, sh := range c.shards {
		if err := c.drainShardLocked(ctx, sh); err != nil {
			return err
		}
	}
	return nil
}

func (c *Coordinator) drainShardLocked(ctx context.Context, sh *shard) error {
	for attempt := 0; ; attempt++ {
		dctx, cancel := context.WithTimeout(ctx, c.cfg.DrainTimeout)
		err := sh.backend.Drain(dctx)
		cancel()
		if err == nil && sh.backend.Healthy() {
			return nil
		}
		if err == nil {
			err = fmt.Errorf("shard: shard %d replica reports unhealthy", sh.id)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= c.cfg.MaxRebalances {
			return fmt.Errorf("shard: shard %d: giving up after %d rebalances: %w", sh.id, attempt, err)
		}
		if rerr := c.rebalanceLocked(ctx, sh, err); rerr != nil {
			return rerr
		}
	}
}

// ModelFingerprint aggregates the shards' per-subspace digests for the
// epoch into the fingerprint a single-process run would report. It
// drains first, so the digest reflects every accepted message — the
// epoch-consistent cut.
func (c *Coordinator) ModelFingerprint(ctx context.Context, epoch string) (string, error) {
	parts, err := c.SubspaceFingerprints(ctx, epoch)
	if err != nil {
		return "", err
	}
	return flash.ComposeFingerprints(parts), nil
}

// SubspaceFingerprints drains every shard and merges their per-subspace
// digest maps (disjoint by construction).
func (c *Coordinator) SubspaceFingerprints(ctx context.Context, epoch string) (map[int]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	merged := make(map[int]string)
	for _, sh := range c.shards {
		if err := c.drainShardLocked(ctx, sh); err != nil {
			return nil, err
		}
		parts, err := sh.backend.Fingerprints(ctx, epoch)
		if err != nil {
			// One retry through a rebalance: the replica may have died
			// after draining.
			if rerr := c.rebalanceLocked(ctx, sh, err); rerr != nil {
				return nil, rerr
			}
			if parts, err = sh.backend.Fingerprints(ctx, epoch); err != nil {
				return nil, fmt.Errorf("shard: shard %d fingerprints: %w", sh.id, err)
			}
		}
		for i, d := range parts {
			if !sh.owned[i] {
				return nil, fmt.Errorf("shard: shard %d reported digest for foreign subspace %d", sh.id, i)
			}
			merged[i] = d
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("shard: no verifier for epoch %q in any shard", epoch)
	}
	return merged, nil
}

// CheckHealth probes every shard and rebalances the unhealthy ones —
// the coordinator's proactive reassignment path (flashcoord runs it on
// a timer; Feed/Drain failures trigger the same reassignment
// reactively).
func (c *Coordinator) CheckHealth(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		if sh.backend.Healthy() {
			continue
		}
		err := fmt.Errorf("shard: shard %d replica reports unhealthy", sh.id)
		if rerr := c.rebalanceLocked(ctx, sh, err); rerr != nil {
			return rerr
		}
	}
	return nil
}

// Checkpoint captures every checkpoint-capable shard's state into
// dir/shard<i>, atomically with the log cut: no message can interleave
// between a shard's capture and the recorded replay floor, so a later
// rebalance restores the checkpoint and replays exactly the
// post-checkpoint suffix.
func (c *Coordinator) Checkpoint(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		ck, ok := sh.backend.(Checkpointer)
		if !ok {
			continue
		}
		shardDir := shardDir(dir, sh.id)
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			return fmt.Errorf("shard: checkpointing shard %d: %w", sh.id, err)
		}
		if _, err := ck.Checkpoint(shardDir); err != nil {
			return fmt.Errorf("shard: checkpointing shard %d: %w", sh.id, err)
		}
		sh.ckptDir = shardDir
		sh.ckptLog = sh.fed
		sh.resMu.Lock()
		sh.ckptRes = sh.results
		sh.resMu.Unlock()
	}
	return nil
}

func shardDir(dir string, id int) string {
	return dir + "/shard" + strconv.Itoa(id)
}

// Rebalance forcibly reassigns one shard to a fresh replica (the
// manual/operational entry point; tests use it to model kill -9).
func (c *Coordinator) Rebalance(ctx context.Context, id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.shards) {
		return fmt.Errorf("shard: no shard %d", id)
	}
	return c.rebalanceLocked(ctx, c.shards[id], fmt.Errorf("operator-requested rebalance"))
}

// Status is the /v1/shards view of the coordinator.
type Status struct {
	Subspaces int           `json:"subspaces"`
	LogLen    int           `json:"log_len"`
	Shards    []ShardStatus `json:"shards"`
}

// ShardStatus describes one shard placement.
type ShardStatus struct {
	ID         int   `json:"id"`
	Subspaces  []int `json:"subspaces"`
	Healthy    bool  `json:"healthy"`
	Fed        int   `json:"fed"`
	Lag        int   `json:"lag"`
	Results    int   `json:"results"`
	Rebalances int   `json:"rebalances"`
	Restored   bool  `json:"restored"`
}

// Status reports the coordinator's placement and progress state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Subspaces: c.cfg.Subspaces, LogLen: len(c.log)}
	for _, sh := range c.shards {
		sh.resMu.Lock()
		res := sh.results
		sh.resMu.Unlock()
		st.Shards = append(st.Shards, ShardStatus{
			ID:         sh.id,
			Subspaces:  append([]int(nil), sh.set...),
			Healthy:    sh.backend.Healthy(),
			Fed:        sh.fed,
			Lag:        len(c.log) - sh.fed,
			Results:    res,
			Rebalances: sh.rebalances,
			Restored:   sh.backend.Restored(),
		})
	}
	return st
}

// LogLen reports how many messages the coordinator has accepted.
func (c *Coordinator) LogLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

// Close tears every shard backend down.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	for _, sh := range c.shards {
		if err := sh.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf(format, args...)
	}
}

func (sh *shard) setLag(n int) {
	if sh.lag != nil {
		sh.lag.Set(int64(n))
	}
}

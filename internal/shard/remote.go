package shard

import (
	"context"
	"fmt"
	"net"
	"strconv"

	flash "repro"
	"repro/internal/wire"
)

// RemoteTarget names one replica endpoint for a shard placement.
type RemoteTarget struct {
	Addr string
	// Dial overrides the transport for this placement (tests inject
	// faulty or partitioned connections here). Nil keeps the factory's
	// base dialer.
	Dial func(addr string) (net.Conn, error)
}

// RemoteFactory realizes shard placements as wire sessions to flashd
// replicas. pick chooses the replica endpoint for each assignment —
// typically round-robining a replica pool and steering rebalanced
// shards away from the replica that just died. base supplies client
// knobs (reconnect/backoff/heartbeat); the factory overrides the
// per-placement fields: Stream gets a placement-unique suffix (a fresh
// replica must not collide with the dead placement's dedup state),
// OnResult/ResultSubspaces carry the assignment's result subscription.
//
// Drain maps to WaitAcked: the server pushes each result before the
// ack of the data frame that produced it, so an acked log prefix
// implies every one of its results has reached the coordinator.
func RemoteFactory(pick func(a Assignment) (RemoteTarget, error), base wire.ClientOptions) Factory {
	return func(a Assignment) (Backend, error) {
		t, err := pick(a)
		if err != nil {
			return nil, fmt.Errorf("shard: no replica for shard %d: %w", a.Shard, err)
		}
		opts := base
		if opts.Stream == "" {
			opts.Stream = "shard"
		}
		opts.Stream += "-s" + strconv.Itoa(a.Shard) + "-r" + strconv.Itoa(a.Rebalance)
		if t.Dial != nil {
			opts.Dial = t.Dial
		}
		opts.ResultSubspaces = append([]int(nil), a.Set...)
		if a.OnResult != nil {
			onResult := a.OnResult
			opts.OnResult = func(ev wire.ResultEvent) { onResult(flash.ResultFromWire(ev)) }
		}
		c, err := wire.NewClient(t.Addr, opts)
		if err != nil {
			return nil, fmt.Errorf("shard: dialing replica %s for shard %d: %w", t.Addr, a.Shard, err)
		}
		return &remoteBackend{c: c}, nil
	}
}

// remoteBackend drives one flashd-style replica over a wire session.
// Verification is remote and asynchronous: Feed buffers with
// at-least-once delivery, results arrive through the client's result
// subscription, and Drain barriers on WaitAcked.
type remoteBackend struct {
	c *wire.Client
}

func (b *remoteBackend) Feed(ctx context.Context, msgs []flash.Msg) ([]flash.Result, error) {
	for _, m := range msgs {
		if err := b.c.Send(m); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func (b *remoteBackend) Drain(ctx context.Context) error { return b.c.WaitAcked(ctx) }

func (b *remoteBackend) Fingerprints(ctx context.Context, epoch string) (map[int]string, error) {
	return b.c.Fingerprint(ctx, epoch)
}

func (b *remoteBackend) Healthy() bool { return b.c.Err() == nil }

// Restored is always false for remote placements: a replacement
// replica starts cold and the coordinator replays the full log (the
// replica may checkpoint on its own schedule, but the coordinator
// cannot verify that state matches its log, so it assumes nothing).
func (b *remoteBackend) Restored() bool { return false }

func (b *remoteBackend) Close() error { return b.c.Close() }

package shard

import (
	"context"
	"fmt"

	flash "repro"
)

// replayChunk bounds how many logged messages one replay Feed carries:
// large enough to amortize per-call overhead, small enough to keep a
// remote backend's session window happy.
const replayChunk = 64

// rebalanceLocked replaces sh's backend with a fresh placement and
// catches it up to the coordinator log. State machine:
//
//	DEAD → PLACED:    Factory(assignment with CheckpointDir)
//	PLACED → REPLAY:  floor = ckptLog when the new replica restored
//	                  from the shard checkpoint, else 0; suppression is
//	                  armed with the count of already-delivered results
//	                  the replay will regenerate (delivered − ckptRes,
//	                  or all delivered for a from-scratch replay)
//	REPLAY → OWNED:   log[floor:] re-fed in chunks; sh.fed advances
//
// Replayed results are deterministic, so suppression keeps upstream
// delivery exactly-once; un-delivered results (lost with the dead
// replica) surface during replay and pass through. Caller holds c.mu.
func (c *Coordinator) rebalanceLocked(ctx context.Context, sh *shard, cause error) error {
	sh.backend.Close() // best-effort; the replica may already be gone
	sh.rebalances++
	c.m.rebalances.Inc()
	c.logf("shard: rebalancing shard %d (placement %d): %v", sh.id, sh.rebalances, cause)

	// Bump the placement generation first: any result still racing in
	// from the dead placement's read loop is now dropped, so the
	// delivered count is frozen before suppression is computed.
	sh.resMu.Lock()
	sh.placement = sh.rebalances
	sh.resMu.Unlock()

	b, err := c.cfg.Factory(Assignment{
		Shard:         sh.id,
		Set:           sh.set,
		Rebalance:     sh.rebalances,
		CheckpointDir: sh.ckptDir,
		OnResult:      c.resultSink(sh, sh.rebalances),
	})
	if err != nil {
		return fmt.Errorf("shard: replacing shard %d: %w", sh.id, err)
	}
	sh.backend = b

	// Arm suppression before the first replay Feed: the replay will
	// deterministically regenerate every result the shard has already
	// delivered upstream (all of them for a cold boot, the
	// post-checkpoint ones when the placement restored).
	floor := 0
	sh.resMu.Lock()
	if b.Restored() && sh.ckptDir != "" {
		floor = sh.ckptLog
		sh.suppress = sh.results - sh.ckptRes
	} else {
		sh.suppress = sh.results
	}
	if sh.suppress < 0 {
		sh.suppress = 0
	}
	sh.resMu.Unlock()

	target := len(c.log)
	sh.fed = floor
	for lo := floor; lo < target; lo += replayChunk {
		hi := lo + replayChunk
		if hi > target {
			hi = target
		}
		batch := make([]flash.Msg, 0, hi-lo)
		for _, m := range c.log[lo:hi] {
			batch = append(batch, c.routeFor(sh, m))
		}
		res, err := b.Feed(ctx, batch)
		if err != nil {
			return fmt.Errorf("shard: shard %d replay [%d,%d): %w", sh.id, lo, hi, err)
		}
		for _, r := range res {
			c.deliver(sh, -1, r)
		}
		sh.fed = hi
		sh.setLag(target - hi)
	}
	sh.setLag(0)
	c.logf("shard: shard %d caught up (replayed %d of %d messages, restored=%v)",
		sh.id, target-floor, target, b.Restored())
	return nil
}

// Package pat implements the persistent action tree (PAT) of §3.4.
//
// An inverse-model equivalence class carries an N-dimension action vector
// ®y; overwriting a few elements of a large vector must not copy the whole
// vector. A PAT is a persistent balanced search tree from device ID to
// action: Set copies only the O(lg n) path from root to the changed node,
// so a single overwrite costs O(‖Δy‖≠0 · lg ‖y‖≠0) as the paper states.
//
// Two further properties matter to Fast IMT and are provided here beyond
// the paper's description of a plain persistent tree:
//
//   - Canonical shape: the tree is a treap whose heap priorities are a
//     deterministic hash of the key, so the shape depends only on the key
//     set, never on insertion order.
//   - Hash consing: nodes are interned in the owning Store, so two action
//     vectors are equal if and only if their Refs are equal. The inverse
//     model keys its equivalence classes by PAT Ref, making the
//     "uniqueness of output vectors" check (Definition 6) an O(1) map
//     lookup.
//
// Absent keys mean "no action" (fib.None); Set with fib.None removes the
// key, keeping vectors canonical.
package pat

import (
	"fmt"

	"repro/internal/fib"
)

// Ref references an interned tree in a Store. The zero value Empty is the
// empty vector ®0.
type Ref int32

// Empty is the all-zero action vector.
const Empty Ref = 0

type node struct {
	key         fib.DeviceID
	val         fib.Action
	left, right Ref
}

type nodeKey struct {
	key         fib.DeviceID
	val         fib.Action
	left, right Ref
}

// Store owns a universe of interned PAT nodes. Stores are not safe for
// concurrent use; each subspace verifier owns one.
type Store struct {
	nodes  []node
	unique map[nodeKey]Ref
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{
		nodes:  make([]node, 1, 256), // slot 0 = Empty sentinel
		unique: make(map[nodeKey]Ref, 256),
	}
	return s
}

// NumNodes reports the number of interned nodes (a memory proxy).
func (s *Store) NumNodes() int { return len(s.nodes) - 1 }

// prio is the deterministic heap priority of a key (splitmix-style mix).
func prio(k fib.DeviceID) uint64 {
	x := uint64(uint32(k)) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (s *Store) mk(k fib.DeviceID, v fib.Action, l, r Ref) Ref {
	key := nodeKey{k, v, l, r}
	if ref, ok := s.unique[key]; ok {
		return ref
	}
	ref := Ref(len(s.nodes))
	s.nodes = append(s.nodes, node{key: k, val: v, left: l, right: r})
	s.unique[key] = ref
	return ref
}

// Get returns the action for device k, or fib.None if unset.
func (s *Store) Get(t Ref, k fib.DeviceID) fib.Action {
	for t != Empty {
		n := s.nodes[t]
		switch {
		case k == n.key:
			return n.val
		case k < n.key:
			t = n.left
		default:
			t = n.right
		}
	}
	return fib.None
}

// split partitions t into (keys < k, keys > k); a node with key == k is
// dropped.
func (s *Store) split(t Ref, k fib.DeviceID) (lo, hi Ref) {
	if t == Empty {
		return Empty, Empty
	}
	n := s.nodes[t]
	switch {
	case n.key == k:
		return n.left, n.right
	case n.key < k:
		rl, rh := s.split(n.right, k)
		return s.mk(n.key, n.val, n.left, rl), rh
	default:
		ll, lh := s.split(n.left, k)
		return ll, s.mk(n.key, n.val, lh, n.right)
	}
}

// join merges two treaps where every key of l is smaller than every key
// of r.
func (s *Store) join(l, r Ref) Ref {
	if l == Empty {
		return r
	}
	if r == Empty {
		return l
	}
	nl, nr := s.nodes[l], s.nodes[r]
	if prio(nl.key) > prio(nr.key) {
		return s.mk(nl.key, nl.val, nl.left, s.join(nl.right, r))
	}
	return s.mk(nr.key, nr.val, s.join(l, nr.left), nr.right)
}

// Set returns the vector equal to t except that device k now carries
// action v (the overwrite operator ←ᵢ of Definition 2). Setting fib.None
// removes the entry. t is unchanged (persistence).
func (s *Store) Set(t Ref, k fib.DeviceID, v fib.Action) Ref {
	if v == fib.None {
		return s.remove(t, k)
	}
	if t == Empty {
		return s.mk(k, v, Empty, Empty)
	}
	n := s.nodes[t]
	switch {
	case k == n.key:
		if n.val == v {
			return t
		}
		return s.mk(k, v, n.left, n.right)
	case prio(k) > prio(n.key):
		lo, hi := s.split(t, k)
		return s.mk(k, v, lo, hi)
	case k < n.key:
		return s.mk(n.key, n.val, s.Set(n.left, k, v), n.right)
	default:
		return s.mk(n.key, n.val, n.left, s.Set(n.right, k, v))
	}
}

func (s *Store) remove(t Ref, k fib.DeviceID) Ref {
	if t == Empty {
		return Empty
	}
	n := s.nodes[t]
	switch {
	case k == n.key:
		return s.join(n.left, n.right)
	case k < n.key:
		nl := s.remove(n.left, k)
		if nl == n.left {
			return t
		}
		return s.mk(n.key, n.val, nl, n.right)
	default:
		nr := s.remove(n.right, k)
		if nr == n.right {
			return t
		}
		return s.mk(n.key, n.val, n.left, nr)
	}
}

// Overwrite applies vector delta on top of t: t ← delta (Definition 2's
// ←, where delta's entries win). Cost O(‖delta‖ · lg ‖t‖).
func (s *Store) Overwrite(t, delta Ref) Ref {
	out := t
	s.Walk(delta, func(k fib.DeviceID, v fib.Action) {
		out = s.Set(out, k, v)
	})
	return out
}

// Walk visits entries in ascending key order.
func (s *Store) Walk(t Ref, fn func(fib.DeviceID, fib.Action)) {
	if t == Empty {
		return
	}
	n := s.nodes[t]
	s.Walk(n.left, fn)
	fn(n.key, n.val)
	s.Walk(n.right, fn)
}

// Len returns the number of non-zero entries ‖y‖≠0.
func (s *Store) Len(t Ref) int {
	if t == Empty {
		return 0
	}
	n := s.nodes[t]
	return 1 + s.Len(n.left) + s.Len(n.right)
}

// FromMap builds a vector from a map (test/workload convenience).
func (s *Store) FromMap(m map[fib.DeviceID]fib.Action) Ref {
	t := Empty
	for k, v := range m {
		t = s.Set(t, k, v)
	}
	return t
}

// ToMap materializes a vector into a map.
func (s *Store) ToMap(t Ref) map[fib.DeviceID]fib.Action {
	m := make(map[fib.DeviceID]fib.Action)
	s.Walk(t, func(k fib.DeviceID, v fib.Action) { m[k] = v })
	return m
}

// String renders a vector for diagnostics.
func (s *Store) String(t Ref) string {
	out := "{"
	first := true
	s.Walk(t, func(k fib.DeviceID, v fib.Action) {
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%d:%s", k, v)
	})
	return out + "}"
}

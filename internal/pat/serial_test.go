package pat

import (
	"testing"

	"repro/internal/fib"
)

func buildSampleStore(t *testing.T) (*Store, []Ref) {
	t.Helper()
	s := NewStore()
	v1 := s.FromMap(map[fib.DeviceID]fib.Action{1: fib.Forward(2), 3: fib.Drop})
	v2 := s.Set(v1, 7, fib.Forward(9))
	v3 := s.Set(v2, 1, fib.Drop)
	v4 := s.Overwrite(v1, v3)
	return s, []Ref{v1, v2, v3, v4}
}

func TestStoreExportRoundTrip(t *testing.T) {
	s, refs := buildSampleStore(t)
	dump := s.ExportNodes()
	r, err := NewStoreFromNodes(dump)
	if err != nil {
		t.Fatalf("NewStoreFromNodes: %v", err)
	}
	if r.NumNodes() != s.NumNodes() {
		t.Fatalf("restored %d nodes, want %d", r.NumNodes(), s.NumNodes())
	}
	for _, ref := range refs {
		if !r.CheckRef(ref) {
			t.Fatalf("ref %d invalid after restore", ref)
		}
		want := s.ToMap(ref)
		got := r.ToMap(ref)
		if len(want) != len(got) {
			t.Fatalf("ref %d: restored map %v, want %v", ref, got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("ref %d key %d: restored %v, want %v", ref, k, got[k], v)
			}
		}
	}
	// Canonicity: re-deriving a vector in the restored store returns the
	// identical ref (insertion order may mint different transient
	// intermediates, but the canonical final tree is hash-consed).
	for _, ref := range refs {
		if again := r.FromMap(s.ToMap(ref)); again != ref {
			t.Fatalf("re-derived ref %d, want %d", again, ref)
		}
	}
}

func TestStoreExportIsACopy(t *testing.T) {
	s, _ := buildSampleStore(t)
	dump := s.ExportNodes()
	before := append([]int32(nil), dump...)
	s.FromMap(map[fib.DeviceID]fib.Action{11: fib.Forward(1), 12: fib.Forward(2)})
	for i := range dump {
		if dump[i] != before[i] {
			t.Fatalf("dump aliases store memory (index %d changed)", i)
		}
	}
}

func TestNewStoreFromNodesRejectsHostileDumps(t *testing.T) {
	s, _ := buildSampleStore(t)
	good := s.ExportNodes()

	cases := []struct {
		name string
		dump []int32
	}{
		{"ragged length", good[:len(good)-1]},
		{"forward child", []int32{1, 1, 2, 0}},
		{"negative child", []int32{1, 1, -1, 0}},
		{"none value", []int32{1, int32(fib.None), 0, 0}},
	}
	for _, tc := range cases {
		if _, err := NewStoreFromNodes(tc.dump); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Duplicate node: replay a valid quad twice.
	if len(good) >= 4 {
		dup := append(append([]int32(nil), good[:4]...), good[:4]...)
		if _, err := NewStoreFromNodes(dup); err == nil {
			t.Error("duplicate node accepted")
		}
	}
}

func TestNewStoreFromNodesEmpty(t *testing.T) {
	r, err := NewStoreFromNodes(nil)
	if err != nil {
		t.Fatalf("empty dump: %v", err)
	}
	if r.NumNodes() != 0 {
		t.Fatalf("empty restore has %d nodes", r.NumNodes())
	}
	if !r.CheckRef(Empty) {
		t.Fatal("Empty sentinel must be valid")
	}
}

package pat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fib"
)

func TestEmpty(t *testing.T) {
	s := NewStore()
	if s.Get(Empty, 3) != fib.None {
		t.Error("Get on Empty should be None")
	}
	if s.Len(Empty) != 0 {
		t.Error("Len(Empty) != 0")
	}
	if s.Set(Empty, 1, fib.None) != Empty {
		t.Error("setting None on Empty should stay Empty")
	}
	if s.String(Empty) != "{}" {
		t.Errorf("String(Empty) = %q", s.String(Empty))
	}
}

func TestSetGet(t *testing.T) {
	s := NewStore()
	v := s.Set(Empty, 5, fib.Forward(1))
	v = s.Set(v, 2, fib.Drop)
	v = s.Set(v, 9, fib.Forward(3))
	if s.Get(v, 5) != fib.Forward(1) || s.Get(v, 2) != fib.Drop || s.Get(v, 9) != fib.Forward(3) {
		t.Error("Get returns wrong values")
	}
	if s.Get(v, 7) != fib.None {
		t.Error("absent key should be None")
	}
	if s.Len(v) != 3 {
		t.Errorf("Len = %d, want 3", s.Len(v))
	}
}

func TestPersistence(t *testing.T) {
	s := NewStore()
	v1 := s.Set(Empty, 1, fib.Forward(1))
	v2 := s.Set(v1, 1, fib.Forward(2))
	v3 := s.Set(v1, 2, fib.Forward(3))
	if s.Get(v1, 1) != fib.Forward(1) {
		t.Error("older version mutated by Set")
	}
	if s.Get(v2, 1) != fib.Forward(2) {
		t.Error("new version lacks update")
	}
	if s.Get(v3, 2) != fib.Forward(3) || s.Get(v3, 1) != fib.Forward(1) {
		t.Error("fork lost data")
	}
}

func TestCanonicalAcrossInsertionOrders(t *testing.T) {
	s := NewStore()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		entries := make(map[fib.DeviceID]fib.Action, n)
		for len(entries) < n {
			entries[fib.DeviceID(rng.Intn(64))] = fib.Forward(fib.DeviceID(rng.Intn(8)))
		}
		keys := make([]fib.DeviceID, 0, n)
		for k := range entries {
			keys = append(keys, k)
		}
		build := func(order []fib.DeviceID) Ref {
			v := Empty
			for _, k := range order {
				v = s.Set(v, k, entries[k])
			}
			return v
		}
		a := build(keys)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		b := build(keys)
		if a != b {
			t.Fatalf("trial %d: same map, different Refs (%d vs %d)", trial, a, b)
		}
	}
}

func TestSetNoneRemoves(t *testing.T) {
	s := NewStore()
	v := s.FromMap(map[fib.DeviceID]fib.Action{1: fib.Drop, 2: fib.Forward(5), 3: fib.Drop})
	v2 := s.Set(v, 2, fib.None)
	if s.Get(v2, 2) != fib.None || s.Len(v2) != 2 {
		t.Error("Set(None) did not remove entry")
	}
	// Removing everything returns Empty exactly (canonical).
	v3 := s.Set(s.Set(v2, 1, fib.None), 3, fib.None)
	if v3 != Empty {
		t.Errorf("fully-cleared vector is %d, not Empty", v3)
	}
	// Removing an absent key is a no-op returning the same Ref.
	if s.Set(v, 99, fib.None) != v {
		t.Error("removing absent key changed Ref")
	}
}

func TestSetSameValueIsNoOp(t *testing.T) {
	s := NewStore()
	v := s.Set(Empty, 4, fib.Drop)
	if s.Set(v, 4, fib.Drop) != v {
		t.Error("idempotent Set should return identical Ref")
	}
}

func TestOverwrite(t *testing.T) {
	s := NewStore()
	base := s.FromMap(map[fib.DeviceID]fib.Action{1: fib.Forward(1), 2: fib.Forward(2), 3: fib.Forward(3)})
	delta := s.FromMap(map[fib.DeviceID]fib.Action{2: fib.Forward(9), 4: fib.Drop})
	out := s.Overwrite(base, delta)
	want := map[fib.DeviceID]fib.Action{1: fib.Forward(1), 2: fib.Forward(9), 3: fib.Forward(3), 4: fib.Drop}
	got := s.ToMap(out)
	if len(got) != len(want) {
		t.Fatalf("Overwrite => %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Overwrite[%d] = %v, want %v", k, got[k], v)
		}
	}
	// ®y ← ®0 = ®y
	if s.Overwrite(base, Empty) != base {
		t.Error("overwrite with Empty changed vector")
	}
	// ®0 ← delta = delta
	if s.Overwrite(Empty, delta) != delta {
		t.Error("overwrite of Empty is not delta")
	}
}

func TestWalkOrder(t *testing.T) {
	s := NewStore()
	v := Empty
	for _, k := range []fib.DeviceID{9, 1, 5, 3, 7} {
		v = s.Set(v, k, fib.Drop)
	}
	var keys []fib.DeviceID
	s.Walk(v, func(k fib.DeviceID, _ fib.Action) { keys = append(keys, k) })
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Walk not in ascending order: %v", keys)
		}
	}
	if len(keys) != 5 {
		t.Fatalf("Walk visited %d keys, want 5", len(keys))
	}
}

// TestQuickMapEquivalence drives random Set sequences and cross-checks
// against a plain map, including the canonical-equality property.
func TestQuickMapEquivalence(t *testing.T) {
	s := NewStore()
	type op struct {
		K uint8
		V uint8
	}
	check := func(ops []op) bool {
		v := Empty
		m := map[fib.DeviceID]fib.Action{}
		for _, o := range ops {
			k := fib.DeviceID(o.K % 32)
			val := fib.Action(o.V % 5) // includes None (0)
			v = s.Set(v, k, val)
			if val == fib.None {
				delete(m, k)
			} else {
				m[k] = val
			}
		}
		if s.Len(v) != len(m) {
			return false
		}
		for k, want := range m {
			if s.Get(v, k) != want {
				return false
			}
		}
		// Rebuild from the map in Go's random iteration order: must be
		// the identical Ref.
		return s.FromMap(m) == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStructuralSharing(t *testing.T) {
	s := NewStore()
	v := Empty
	for i := 0; i < 1000; i++ {
		v = s.Set(v, fib.DeviceID(i), fib.Drop)
	}
	before := s.NumNodes()
	// One overwrite on a 1000-entry vector should add O(lg n) nodes,
	// not O(n).
	s.Set(v, 500, fib.Forward(1))
	added := s.NumNodes() - before
	if added > 64 {
		t.Errorf("single Set added %d nodes; persistence is broken", added)
	}
}

func BenchmarkSetLargeVector(b *testing.B) {
	s := NewStore()
	v := Empty
	for i := 0; i < 4096; i++ {
		v = s.Set(v, fib.DeviceID(i), fib.Drop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(v, fib.DeviceID(i%4096), fib.Forward(fib.DeviceID(i%7)))
	}
}

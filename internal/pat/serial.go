package pat

import (
	"fmt"

	"repro/internal/fib"
)

// ExportNodes dumps the interned nodes (everything past the Empty
// sentinel) as flat (key, val, left, right) quads in store order. mk
// only ever appends nodes whose children already exist, so store order
// is children-before-parents and the dump restores with one linear
// pass. The returned slice is a copy.
func (s *Store) ExportNodes() []int32 {
	out := make([]int32, 0, 4*(len(s.nodes)-1))
	for _, nd := range s.nodes[1:] {
		out = append(out, int32(nd.key), int32(nd.val), int32(nd.left), int32(nd.right))
	}
	return out
}

// NewStoreFromNodes rebuilds a Store from an ExportNodes dump. Like the
// BDD restore path it validates every structural invariant — checkpoint
// files may be torn or hostile — rather than assuming them:
//
//   - the dump length is a whole number of quads,
//   - children precede their parent (left/right < the node's own Ref),
//   - treap order: left subtree keys < node key < right subtree keys,
//   - treap heap property: children have strictly smaller prio,
//   - no fib.None values (Set removes those keys; their presence would
//     de-canonicalize vectors),
//   - no duplicate (key, val, left, right) entries (hash consing would
//     be silently broken).
//
// Replaying the donor store's exact node sequence keeps every pat.Ref
// recorded elsewhere in a checkpoint valid against the rebuilt store.
func NewStoreFromNodes(dump []int32) (*Store, error) {
	if len(dump)%4 != 0 {
		return nil, fmt.Errorf("pat: restore: dump length %d is not a whole number of node quads", len(dump))
	}
	n := len(dump) / 4
	s := &Store{
		nodes:  make([]node, 1, n+1),
		unique: make(map[nodeKey]Ref, n),
	}
	for i := 0; i < n; i++ {
		k := fib.DeviceID(dump[4*i])
		v := fib.Action(dump[4*i+1])
		l, r := Ref(dump[4*i+2]), Ref(dump[4*i+3])
		ref := Ref(len(s.nodes))
		if l < 0 || l >= ref || r < 0 || r >= ref {
			return nil, fmt.Errorf("pat: restore: node %d children (%d,%d) do not precede it", ref, l, r)
		}
		if v == fib.None {
			return nil, fmt.Errorf("pat: restore: node %d carries fib.None (canonical vectors omit it)", ref)
		}
		if l != Empty {
			ln := s.nodes[l]
			if ln.key >= k {
				return nil, fmt.Errorf("pat: restore: node %d violates search order (left key %d >= %d)", ref, ln.key, k)
			}
			if prio(ln.key) >= prio(k) {
				return nil, fmt.Errorf("pat: restore: node %d violates heap order on the left child", ref)
			}
		}
		if r != Empty {
			rn := s.nodes[r]
			if rn.key <= k {
				return nil, fmt.Errorf("pat: restore: node %d violates search order (right key %d <= %d)", ref, rn.key, k)
			}
			if prio(rn.key) >= prio(k) {
				return nil, fmt.Errorf("pat: restore: node %d violates heap order on the right child", ref)
			}
		}
		key := nodeKey{k, v, l, r}
		if _, dup := s.unique[key]; dup {
			return nil, fmt.Errorf("pat: restore: duplicate node at ref %d breaks hash consing", ref)
		}
		s.nodes = append(s.nodes, node{key: k, val: v, left: l, right: r})
		s.unique[key] = ref
	}
	return s, nil
}

// CheckRef reports whether r references an interned tree in this store
// (Empty or an existing node). Restore paths use it to validate refs
// recorded in checkpoint sections.
func (s *Store) CheckRef(r Ref) bool {
	return r >= 0 && int(r) < len(s.nodes)
}

package pat

import (
	"testing"

	"repro/internal/fib"
)

// The §5.4 PAT ablation: the paper argues a persistent action tree makes
// a single overwrite O(‖Δy‖·lg‖y‖) instead of the O(‖y‖) a copied array
// pays. BenchmarkSetLargeVector (pat_test.go) measures the PAT path;
// this baseline measures the naive copy-the-whole-vector alternative the
// paper's §3.4 rules out. Compare ns/op between the two.

// copyVector is the naive dense representation: every overwrite copies
// the full vector.
type copyVector []fib.Action

func (v copyVector) set(k fib.DeviceID, a fib.Action) copyVector {
	out := make(copyVector, len(v))
	copy(out, v)
	out[k] = a
	return out
}

func BenchmarkCopyVectorBaseline(b *testing.B) {
	v := make(copyVector, 4096)
	for i := range v {
		v[i] = fib.Drop
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.set(fib.DeviceID(i%4096), fib.Forward(fib.DeviceID(i%7)))
	}
}

// TestCopyVectorSemantics keeps the baseline honest: both stores agree.
func TestCopyVectorSemantics(t *testing.T) {
	s := NewStore()
	pv := Empty
	cv := make(copyVector, 64)
	for i := 0; i < 200; i++ {
		k := fib.DeviceID(i * 7 % 64)
		a := fib.Forward(fib.DeviceID(i % 5))
		pv = s.Set(pv, k, a)
		cv = cv.set(k, a)
	}
	for k := fib.DeviceID(0); k < 64; k++ {
		want := cv[k]
		got := s.Get(pv, k)
		if want == 0 && got == fib.None {
			continue
		}
		if got != want {
			t.Fatalf("key %d: pat %v, copy %v", k, got, want)
		}
	}
}

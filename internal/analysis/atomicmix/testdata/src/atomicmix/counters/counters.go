// Package counters exports a field it accesses atomically; the
// AtomicUseFact travels to importers.
package counters

import "sync/atomic"

// Hits carries an exported counter field updated lock-free.
type Hits struct {
	N int64
}

// Bump increments atomically.
func (h *Hits) Bump() { atomic.AddInt64(&h.N, 1) }

// Get loads atomically.
func (h *Hits) Get() int64 { return atomic.LoadInt64(&h.N) }

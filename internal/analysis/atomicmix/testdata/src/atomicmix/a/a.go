// Single-package atomicmix cases.
package a

import "sync/atomic"

type stats struct {
	ops   int64
	other int64
}

// bump is the sanctioned accessor.
func (s *stats) bump() { atomic.AddInt64(&s.ops, 1) }

// load is sanctioned too.
func (s *stats) load() int64 { return atomic.LoadInt64(&s.ops) }

// mixedRead reads the atomic field plainly.
func (s *stats) mixedRead() int64 {
	return s.ops // want `plain read of ops, which is also accessed via sync/atomic`
}

// mixedWrite stores plainly.
func (s *stats) mixedWrite() {
	s.ops = 0 // want `plain write of ops, which is also accessed via sync/atomic`
}

// mixedIncrement is a plain read-modify-write.
func (s *stats) mixedIncrement() {
	s.ops++ // want `plain write of ops, which is also accessed via sync/atomic`
}

// untouchedField is plain-only and fine.
func (s *stats) untouchedField() int64 {
	s.other = 1
	return s.other
}

// addressForAtomic passes the address on; the eventual access may be
// atomic, so this is not flagged.
func (s *stats) addressForAtomic() *int64 { return &s.ops }

// construct initializes via composite literal before sharing; not an
// access.
func construct() *stats { return &stats{ops: 0} }

// pkgCounter is a package-level variable accessed both ways.
var pkgCounter uint32

func bumpPkg() { atomic.AddUint32(&pkgCounter, 1) }

func readPkg() uint32 {
	return pkgCounter // want `plain read of pkgCounter, which is also accessed via sync/atomic`
}

// allowedMix documents a single-threaded init-time write.
//
//flashvet:allow atomicmix reset runs before any goroutine starts
func allowedMix(s *stats) {
	s.ops = 0
}

// Cross-package atomicmix cases: counters' AtomicUseFact on Hits.N
// arrives here through the shared fact set.
package user

import (
	"sync/atomic"

	"atomicmix/counters"
)

// plainCrossRead reads the atomically-updated field directly.
func plainCrossRead(h *counters.Hits) int64 {
	return h.N // want `plain read of N, which is also accessed via sync/atomic`
}

// plainCrossWrite resets it directly.
func plainCrossWrite(h *counters.Hits) {
	h.N = 0 // want `plain write of N, which is also accessed via sync/atomic`
}

// atomicCross keeps the protocol.
func atomicCross(h *counters.Hits) int64 {
	return atomic.LoadInt64(&h.N)
}

// viaAccessor keeps the protocol through the declared API.
func viaAccessor(h *counters.Hits) int64 {
	h.Bump()
	return h.Get()
}

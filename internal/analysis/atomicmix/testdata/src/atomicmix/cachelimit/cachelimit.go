// Package cachelimit replays the half-migrated form of the BDD cache
// limit race: SetCacheLimit once stored the limit with a plain write
// while the hot ite path was moved to an atomic load, so the setter
// could race every concurrent operation. The engine now uses a typed
// atomic.Int64, which makes the mix impossible; this fixture pins the
// analyzer's ability to catch any regression to the mixed form.
package cachelimit

import "sync/atomic"

type engine struct {
	cacheLimit int64
	nvars      int
}

// ite models the hot path: the limit is consulted on every cache
// insert, concurrently with setters.
func (e *engine) ite() bool {
	return atomic.LoadInt64(&e.cacheLimit) > 0
}

// SetCacheLimit is the buggy half: a plain store racing the atomic
// loads above.
func (e *engine) SetCacheLimit(n int) {
	e.cacheLimit = int64(n) // want `plain write of cacheLimit, which is also accessed via sync/atomic`
}

// SetCacheLimitFixed keeps the protocol.
func (e *engine) SetCacheLimitFixed(n int) {
	atomic.StoreInt64(&e.cacheLimit, int64(n))
}

// evict reads the limit plainly while trimming — the same race from
// the consumer side.
func (e *engine) evict(size int) bool {
	return int64(size) >= e.cacheLimit // want `plain read of cacheLimit, which is also accessed via sync/atomic`
}

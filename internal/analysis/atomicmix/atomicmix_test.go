package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer,
		"atomicmix/a", "atomicmix/counters", "atomicmix/user",
		"atomicmix/cachelimit")
}

// Package atomicmix flags mixed atomic and plain access to the same
// memory.
//
// A field updated through sync/atomic is part of a lock-free protocol:
// a plain load can read a torn or stale value and a plain store can
// lose a concurrent atomic update — and unlike a mutex bug, the race
// detector only sees it when the interleaving actually happens under
// -race. The analyzer exports an AtomicUseFact for every struct field
// or package-level variable whose address is passed to a sync/atomic
// operation, then flags every plain (non-atomic) read or write of a
// marked object — in the declaring package or, through the fact, in any
// importing package.
//
// Taking the address of a marked object is not flagged: the pointer may
// feed another atomic call. The fix for a finding is either an atomic
// accessor or migrating the field to the typed sync/atomic values,
// which make mixing impossible.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// AtomicUseFact marks a variable or field as accessed through
// sync/atomic.
type AtomicUseFact struct{}

// AFact marks AtomicUseFact as a framework fact.
func (*AtomicUseFact) AFact() {}

// Analyzer is the atomicmix pass.
var Analyzer = &framework.Analyzer{
	Name:      "atomicmix",
	Doc:       "flag plain reads/writes of fields also accessed through sync/atomic",
	FactTypes: []framework.Fact{(*AtomicUseFact)(nil)},
}

func init() { Analyzer.Run = run }

// isAtomicFn matches the address-taking sync/atomic functions (matched
// by package name so the analysistest corpus and the real import path
// both hit).
func isAtomicFn(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Name() != "atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

// addressedObj resolves the object behind &expr's operand: a struct
// field or a package-level variable.
func addressedObj(pass *framework.Pass, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	obj := framework.MutexFieldObj(pass.TypesInfo, un.X)
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}

func run(pass *framework.Pass) (any, error) {
	if pass.Facts == nil {
		// Keep the same-package half functional under fact-free drivers.
		pass.Facts = framework.NewFactSet([]*framework.Analyzer{Analyzer})
	}
	// Phase 1: mark every object whose address reaches sync/atomic, and
	// remember those argument spans (they are the sanctioned accesses).
	type span struct{ start, end token.Pos }
	var atomicSpans []span
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFn(framework.CalleeFunc(pass.TypesInfo, call)) {
				return true
			}
			for _, arg := range call.Args {
				if obj := addressedObj(pass, arg); obj != nil {
					pass.ExportObjectFact(obj, &AtomicUseFact{})
					atomicSpans = append(atomicSpans, span{start: arg.Pos(), end: arg.End()})
				}
			}
			return true
		})
	}
	sanctioned := func(pos token.Pos) bool {
		for _, s := range atomicSpans {
			if pos >= s.start && pos <= s.end {
				return true
			}
		}
		return false
	}

	// Phase 2: flag plain accesses of marked objects.
	marked := func(e ast.Expr) (types.Object, bool) {
		obj := framework.MutexFieldObj(pass.TypesInfo, e)
		if obj == nil {
			return nil, false
		}
		var fact AtomicUseFact
		return obj, pass.ImportObjectFact(obj, &fact)
	}
	for _, f := range pass.Files {
		writes := make(map[ast.Node]bool)    // access exprs used as store targets
		addressed := make(map[ast.Node]bool) // operands of & (may feed atomics elsewhere)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					writes[ast.Unparen(lhs)] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(n.X)] = true
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					addressed[ast.Unparen(n.X)] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			// Only the outermost access expression counts: the Ident
			// inside a SelectorExpr is the receiver, not the field.
			obj, isMarked := marked(e)
			if !isMarked || sanctioned(e.Pos()) || addressed[e] {
				return true
			}
			if id, isIdent := e.(*ast.Ident); isIdent {
				if _, isDef := pass.TypesInfo.Defs[id]; isDef {
					return true // the declaration itself, not an access
				}
				if v, isVar := pass.TypesInfo.ObjectOf(id).(*types.Var); isVar && v.IsField() {
					return true // composite-literal key, not an access
				}
			}
			kind := "read"
			if writes[e] {
				kind = "write"
			}
			pass.Reportf(e.Pos(), "plain %s of %s, which is also accessed via sync/atomic; use atomic accessors (or a typed atomic value) for every access", kind, obj.Name())
			return false // don't descend into the selector's receiver
		})
	}
	return nil, nil
}

// Package errwrapped enforces %w-wrapping of the module's sentinel
// errors on internal paths.
//
// The public API contract (flash.go, DESIGN.md "Errors") is that
// callers test failures with errors.Is(err, flash.ErrClosed) etc., and
// that the error text carries enough context to locate the failure
// (which device, which epoch). Exported entry points may return the
// bare sentinel — that IS the contract. A non-exported helper returning
// the bare sentinel, however, discards the context only it knows
// (`fmt.Errorf("device %s: %w", dev, ErrUnknownDevice)` costs one line
// and keeps errors.Is working); by the time the sentinel reaches the
// API boundary nobody can say which device was unknown.
//
// Flagged: a return statement inside a non-exported function or method
// whose result is one of the sentinels ErrClosed, ErrUnknownDevice or
// ErrBadEpoch, unwrapped (directly, or via the pkg.ErrX selector form).
package errwrapped

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the errwrapped pass.
var Analyzer = &framework.Analyzer{
	Name: "errwrapped",
	Doc:  "flag non-exported functions returning sentinel errors (ErrClosed, ErrUnknownDevice, ErrBadEpoch) without %w wrapping",
	Run:  run,
}

// sentinels are the module's errors.Is-able failure classes.
var sentinels = map[string]bool{
	"ErrClosed":        true,
	"ErrUnknownDevice": true,
	"ErrBadEpoch":      true,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if name, ok := bareSentinel(pass, res); ok {
				pass.Reportf(res.Pos(), "%s returns bare sentinel %s; wrap it with context: fmt.Errorf(\"...: %%w\", %s)", fd.Name.Name, name, name)
			}
		}
		return true
	})
}

// bareSentinel reports whether e is a direct reference to one of the
// sentinel error variables (ident or pkg-qualified selector).
func bareSentinel(pass *framework.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	if !sentinels[id.Name] {
		return "", false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	// Package-level var only (not a local shadow), of type error.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return id.Name, true
}

package errwrapped_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errwrapped"
)

func TestErrWrapped(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errwrapped.Analyzer, "errwrapped/a")
}

// Package sent exports a sentinel for cross-package errwrapped tests.
package sent

import "errors"

// ErrBadEpoch mirrors ce2d.ErrBadEpoch.
var ErrBadEpoch = errors.New("bad epoch")

package a

import (
	"errors"
	"fmt"

	"sent"
)

// ErrClosed and ErrUnknownDevice mirror the module's sentinels.
var (
	ErrClosed        = errors.New("closed")
	ErrUnknownDevice = errors.New("unknown device")
	errNotSentinel   = errors.New("other")
)

func lookupDevice(name string) error {
	if name == "" {
		return ErrUnknownDevice // want `lookupDevice returns bare sentinel ErrUnknownDevice`
	}
	return fmt.Errorf("device %s: %w", name, ErrUnknownDevice) // wrapped: ok
}

func closed() error {
	return ErrClosed // want `closed returns bare sentinel ErrClosed`
}

// Close is exported: returning the bare sentinel IS the API contract.
func Close() error {
	return ErrClosed
}

func badEpoch() error {
	return sent.ErrBadEpoch // want `badEpoch returns bare sentinel ErrBadEpoch`
}

//flashvet:allow errwrapped — hot path, context added by the only caller
func fastPath() error {
	return ErrClosed
}

func otherErr() error {
	return errNotSentinel // not a sentinel: ok
}

func shadowed() error {
	ErrClosed := errors.New("local")
	return ErrClosed // local shadow, not the package sentinel: ok
}

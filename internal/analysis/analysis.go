// Package analysis assembles the flashvet analyzer suite: the custom
// static checks that guard the invariants Flash's correctness argument
// rests on but Go's type system cannot see (see DESIGN.md, "Static &
// runtime invariants").
//
// The suite runs through cmd/flashvet, either standalone or as a
// `go vet -vettool` plugin, and `make lint` gates the tree on it.
//
// # Suppression directives
//
// A finding can be acknowledged in source with a directive comment:
//
//	//flashvet:allow bddref — match predicates are owned by the table's engine
//
// The directive names one analyzer or a comma-separated list
// (`//flashvet:allow bddref,ctxfeed`); anything after whitespace is
// commentary. It suppresses findings of the named analyzers within the
// enclosing top-level declaration (the declaration whose source span —
// doc comment included — contains the directive), or within the whole
// file when it appears outside every declaration. Directives are the
// documented escape hatch for patterns the analyzers over-approximate;
// each one should carry a justification, which `flashvet -allows` lists
// for review.
package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/bddref"
	"repro/internal/analysis/ctxfeed"
	"repro/internal/analysis/errwrapped"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/gcroot"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockbdd"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nodeprecated"
	"repro/internal/analysis/obshook"
	"repro/internal/analysis/snapleak"
	"repro/internal/analysis/stealsafe"
)

// All returns the flashvet analyzer suite.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		bddref.Analyzer,
		gcroot.Analyzer,
		obshook.Analyzer,
		ctxfeed.Analyzer,
		lockbdd.Analyzer,
		lockorder.Analyzer,
		snapleak.Analyzer,
		nodeprecated.Analyzer,
		atomicmix.Analyzer,
		errwrapped.Analyzer,
		stealsafe.Analyzer,
	}
}

// ByName resolves analyzer names (comma-separated lists allowed) against
// the suite; unknown names are returned in the second value.
func ByName(names []string) (out []*framework.Analyzer, unknown []string) {
	byName := make(map[string]*framework.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		for _, part := range strings.Split(n, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if a, ok := byName[part]; ok {
				out = append(out, a)
			} else {
				unknown = append(unknown, part)
			}
		}
	}
	return out, unknown
}

// Finding is one diagnostic. Suppressed findings (acknowledged by a
// //flashvet:allow directive) are carried too, marked and paired with
// the directive's justification, so machine consumers (flashvet -json)
// can audit what the directives are hiding.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// Justification is the allow directive's commentary when Suppressed.
	Justification string
}

// Allow records one //flashvet:allow directive.
type Allow struct {
	Analyzers []string
	Pos       token.Position
	Comment   string // justification text following the analyzer list
}

// Check runs the analyzers over one loaded package without cross-package
// facts, returning only the non-suppressed findings sorted by position.
// It is the compatibility form of CheckFacts for fact-free callers.
func Check(pkg *load.Package, analyzers []*framework.Analyzer) ([]Finding, error) {
	all, err := CheckFacts(pkg, analyzers, nil)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out, nil
}

// CheckFacts runs the analyzers over one loaded package with the given
// cross-package fact set (nil disables facts): imported facts of the
// package's dependencies are visible through the Pass, and facts the
// analyzers export land in facts for downstream packages. It returns
// every finding — suppressed ones included, marked — sorted by
// position.
func CheckFacts(pkg *load.Package, analyzers []*framework.Analyzer, facts *framework.FactSet) ([]Finding, error) {
	sup := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		name := a.Name
		pass.Report = func(d framework.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			f := Finding{Analyzer: name, Pos: pos, Message: d.Message}
			if just, ok := sup.allows(name, pos); ok {
				f.Suppressed = true
				f.Justification = just
			}
			out = append(out, f)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Allows lists every //flashvet:allow directive in the package, for
// `flashvet -allows` audits.
func Allows(pkg *load.Package) []Allow {
	return collectAllows(pkg).list
}

// suppression maps analyzer name -> suppressed line ranges per file.
type suppression struct {
	ranges map[string][]lineRange
	list   []Allow
}

type lineRange struct {
	file       string
	start, end int
	comment    string
}

// allows reports whether a directive suppresses analyzer findings at
// pos, returning the directive's justification text.
func (s *suppression) allows(analyzer string, pos token.Position) (string, bool) {
	for _, r := range s.ranges[analyzer] {
		if r.file == pos.Filename && pos.Line >= r.start && pos.Line <= r.end {
			return r.comment, true
		}
	}
	return "", false
}

const directive = "//flashvet:allow"

// ParseAllowDirective parses one comment's text as a //flashvet:allow
// directive, returning the named analyzers (the comma-separated first
// field, empty names dropped) and the justification commentary that
// follows. ok is false when the comment is not an allow directive or
// names no analyzer. It is the single parser behind suppression,
// flashvet -allows, and the FuzzAllowDirective target.
func ParseAllowDirective(text string) (names []string, comment string, ok bool) {
	rest, isDir := strings.CutPrefix(text, directive)
	if !isDir || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", false
	}
	comment = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	return names, comment, true
}

func collectAllows(pkg *load.Package) *suppression {
	s := &suppression{ranges: make(map[string][]lineRange)}
	for _, f := range pkg.Files {
		fileStart := pkg.Fset.Position(f.FileStart).Line
		fileEnd := pkg.Fset.Position(f.FileEnd).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, comment, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s.list = append(s.list, Allow{
					Analyzers: names,
					Pos:       pos,
					Comment:   comment,
				})
				start, end := enclosingDeclLines(pkg.Fset, f, c.Pos())
				if start == 0 {
					start, end = fileStart, fileEnd
				}
				for _, n := range names {
					s.ranges[n] = append(s.ranges[n], lineRange{file: pos.Filename, start: start, end: end, comment: comment})
				}
			}
		}
	}
	return s
}

// enclosingDeclLines finds the top-level declaration whose span (doc
// comment included) contains pos, returning its line range, or (0, 0).
func enclosingDeclLines(fset *token.FileSet, f *ast.File, pos token.Pos) (int, int) {
	for _, decl := range f.Decls {
		start := decl.Pos()
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				start = d.Doc.Pos()
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				start = d.Doc.Pos()
			}
		}
		if pos >= start && pos <= decl.End() {
			return fset.Position(start).Line, fset.Position(decl.End()).Line
		}
	}
	return 0, 0
}

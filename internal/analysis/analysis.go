// Package analysis assembles the flashvet analyzer suite: the custom
// static checks that guard the invariants Flash's correctness argument
// rests on but Go's type system cannot see (see DESIGN.md, "Static &
// runtime invariants").
//
// The suite runs through cmd/flashvet, either standalone or as a
// `go vet -vettool` plugin, and `make lint` gates the tree on it.
//
// # Suppression directives
//
// A finding can be acknowledged in source with a directive comment:
//
//	//flashvet:allow bddref — match predicates are owned by the table's engine
//
// The directive names one analyzer or a comma-separated list
// (`//flashvet:allow bddref,ctxfeed`); anything after whitespace is
// commentary. It suppresses findings of the named analyzers within the
// enclosing top-level declaration (the declaration whose source span —
// doc comment included — contains the directive), or within the whole
// file when it appears outside every declaration. Directives are the
// documented escape hatch for patterns the analyzers over-approximate;
// each one should carry a justification, which `flashvet -allows` lists
// for review.
package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis/bddref"
	"repro/internal/analysis/ctxfeed"
	"repro/internal/analysis/errwrapped"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/gcroot"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockbdd"
	"repro/internal/analysis/obshook"
	"repro/internal/analysis/stealsafe"
)

// All returns the flashvet analyzer suite.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		bddref.Analyzer,
		gcroot.Analyzer,
		obshook.Analyzer,
		ctxfeed.Analyzer,
		lockbdd.Analyzer,
		errwrapped.Analyzer,
		stealsafe.Analyzer,
	}
}

// ByName resolves analyzer names (comma-separated lists allowed) against
// the suite; unknown names are returned in the second value.
func ByName(names []string) (out []*framework.Analyzer, unknown []string) {
	byName := make(map[string]*framework.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		for _, part := range strings.Split(n, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if a, ok := byName[part]; ok {
				out = append(out, a)
			} else {
				unknown = append(unknown, part)
			}
		}
	}
	return out, unknown
}

// Finding is one reported, non-suppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Allow records one //flashvet:allow directive.
type Allow struct {
	Analyzers []string
	Pos       token.Position
	Comment   string // justification text following the analyzer list
}

// Check runs the analyzers over one loaded package, applying suppression
// directives. It returns the surviving findings sorted by position.
func Check(pkg *load.Package, analyzers []*framework.Analyzer) ([]Finding, error) {
	sup := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d framework.Diagnostic) {
			if sup.allows(name, pkg.Fset.Position(d.Pos)) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Allows lists every //flashvet:allow directive in the package, for
// `flashvet -allows` audits.
func Allows(pkg *load.Package) []Allow {
	return collectAllows(pkg).list
}

// suppression maps analyzer name -> suppressed line ranges per file.
type suppression struct {
	ranges map[string][]lineRange
	list   []Allow
}

type lineRange struct {
	file       string
	start, end int
}

func (s *suppression) allows(analyzer string, pos token.Position) bool {
	for _, r := range s.ranges[analyzer] {
		if r.file == pos.Filename && pos.Line >= r.start && pos.Line <= r.end {
			return true
		}
	}
	return false
}

const directive = "//flashvet:allow"

func collectAllows(pkg *load.Package) *suppression {
	s := &suppression{ranges: make(map[string][]lineRange)}
	for _, f := range pkg.Files {
		fileStart := pkg.Fset.Position(f.FileStart).Line
		fileEnd := pkg.Fset.Position(f.FileEnd).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directive)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				s.list = append(s.list, Allow{
					Analyzers: names,
					Pos:       pos,
					Comment:   strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
				})
				start, end := enclosingDeclLines(pkg.Fset, f, c.Pos())
				if start == 0 {
					start, end = fileStart, fileEnd
				}
				for _, n := range names {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					s.ranges[n] = append(s.ranges[n], lineRange{file: pos.Filename, start: start, end: end})
				}
			}
		}
	}
	return s
}

// enclosingDeclLines finds the top-level declaration whose span (doc
// comment included) contains pos, returning its line range, or (0, 0).
func enclosingDeclLines(fset *token.FileSet, f *ast.File, pos token.Pos) (int, int) {
	for _, decl := range f.Decls {
		start := decl.Pos()
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				start = d.Doc.Pos()
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				start = d.Doc.Pos()
			}
		}
		if pos >= start && pos <= decl.End() {
			return fset.Position(start).Line, fset.Position(decl.End()).Line
		}
	}
	return 0, 0
}

// Package snapleak verifies that every *flash.Snapshot obtained from a
// call reaches Release on every control-flow path.
//
// A Snapshot (PR 6's consistent what-if capture) pins BDD nodes and one
// subscription slot per subspace worker until released; a leaked
// snapshot is not a dangling pointer but a live GC root, so the
// mark-and-sweep collector can never reclaim the pinned predicates and
// the engine's memory watermark ratchets upward. The leak is invisible
// to the race detector and to the type system — exactly the class of
// bug lostcancel catches for context.CancelFunc, rebuilt here on the
// framework's CFG.
//
// An obligation is created wherever a call's result of type
// *flash.Snapshot is bound to a local variable. It is discharged on a
// path when the variable (or an alias-creating use of it):
//
//   - has Release called on it, directly or via defer (a queued defer
//     runs at every later exit);
//   - is returned (ownership moves to the caller);
//   - is assigned onward, sent on a channel, or captured by a function
//     literal (conservatively treated as an ownership transfer);
//   - is passed to a function that releases that parameter — known
//     either from this package or, through a cross-package ReleasesFact,
//     from a dependency — or to a callee the analyzer cannot resolve.
//
// Passing the snapshot to a *resolvable* callee that is not known to
// release it does NOT discharge the obligation: that is how a leak in
// one package is caught even when the snapshot last touches a helper in
// another.
//
// The `sn, err := f()` convention is honored: on the `err != nil`
// branch the snapshot is nil by convention and the obligation is void,
// so the idiomatic early error return is never flagged.
package snapleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

// ReleasesFact marks a function as releasing the *flash.Snapshot passed
// at the listed parameter positions (0-based), making call sites in
// downstream packages discharge the caller's obligation.
type ReleasesFact struct {
	Params []int `json:"params"`
}

// AFact marks ReleasesFact as a framework fact.
func (*ReleasesFact) AFact() {}

// Analyzer is the snapleak pass.
var Analyzer = &framework.Analyzer{
	Name:      "snapleak",
	Doc:       "flag *flash.Snapshot values that may not reach Release on some control-flow path",
	FactTypes: []framework.Fact{(*ReleasesFact)(nil)},
	Run:       run,
}

func isSnapshotPtr(t types.Type) bool {
	return framework.PointerToNamed(t, "flash", "Snapshot")
}

func run(pass *framework.Pass) (any, error) {
	exportReleaseFacts(pass)
	for _, f := range pass.Files {
		framework.EachFuncBody(f, func(fb framework.FuncBody) {
			checkBody(pass, fb.Body)
		})
	}
	return nil, nil
}

// exportReleaseFacts computes, to a fixpoint, which functions of this
// package release which snapshot-typed parameters, and exports a
// ReleasesFact for each. The fixpoint makes intra-package transitive
// wrappers (A passes to B, B releases) carry the fact too.
func exportReleaseFacts(pass *framework.Pass) {
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
		// params: snapshot-typed parameter index -> object.
		params map[int]types.Object
	}
	var fns []fn
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)
			params := make(map[int]types.Object)
			for i := 0; i < sig.Params().Len(); i++ {
				if isSnapshotPtr(sig.Params().At(i).Type()) {
					params[i] = sig.Params().At(i)
				}
			}
			if len(params) > 0 {
				fns = append(fns, fn{obj: obj, body: fd.Body, params: params})
			}
		}
	}
	exported := make(map[*types.Func][]int)
	for round := 0; round <= len(fns); round++ {
		changed := false
		for _, f := range fns {
			var released []int
			for i, p := range f.params {
				if bodyReleases(pass, f.body, p) {
					released = append(released, i)
				}
			}
			sort.Ints(released)
			if len(released) > 0 && !equalInts(exported[f.obj], released) {
				exported[f.obj] = released
				pass.ExportObjectFact(f.obj, &ReleasesFact{Params: released})
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bodyReleases reports whether body (closures included: a capture that
// releases still releases) calls Release on obj or hands obj to a
// releasing callee.
func bodyReleases(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isReleaseOf(pass, call, obj) {
			found = true
			return false
		}
		if i := argIndexOf(pass, call, obj); i >= 0 {
			if callee := framework.CalleeFunc(pass.TypesInfo, call); callee != nil {
				var fact ReleasesFact
				if pass.ImportObjectFact(callee, &fact) && containsInt(fact.Params, i) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// isReleaseOf matches obj.Release().
func isReleaseOf(pass *framework.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// argIndexOf returns the argument position where obj is passed bare, or
// -1.
func argIndexOf(pass *framework.Pass, call *ast.CallExpr, obj types.Object) int {
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			return i
		}
	}
	return -1
}

// obligation is one snapshot-producing call bound to a local.
type obligation struct {
	obj    types.Object // the snapshot variable
	errObj types.Object // the paired error variable, if `sn, err := f()`
	call   *ast.CallExpr
	block  *framework.Block
	idx    int // node index of the creating statement within block
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	g := pass.CFG(body)
	var obls []obligation
	for _, b := range g.ReachableBlocks() {
		for i, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && resultHasSnapshot(pass, call) {
					pass.Reportf(call.Pos(), "snapshot returned by %s is discarded without Release; it pins BDD nodes and a subscription slot until released", calleeName(call))
				}
			case *ast.AssignStmt:
				obls = append(obls, obligationsOf(pass, n, b, i)...)
			}
		}
	}
	for _, o := range obls {
		checkObligation(pass, g, o)
	}
}

// resultHasSnapshot reports whether any result of the call is a
// *flash.Snapshot.
func resultHasSnapshot(pass *framework.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isSnapshotPtr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isSnapshotPtr(tv.Type)
}

func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// obligationsOf extracts snapshot obligations from one assignment whose
// RHS is a single call.
func obligationsOf(pass *framework.Pass, as *ast.AssignStmt, b *framework.Block, idx int) []obligation {
	if len(as.Rhs) != 1 || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	// Result types, positionally (the blank identifier has no recorded
	// object type, so the call's own type decides).
	tv, okT := pass.TypesInfo.Types[call]
	if !okT {
		return nil
	}
	resType := func(i int) types.Type {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			if i < tup.Len() {
				return tup.At(i).Type()
			}
			return nil
		}
		if i == 0 {
			return tv.Type
		}
		return nil
	}
	var out []obligation
	var errObj types.Object
	// Identify the paired error variable first (conventionally last).
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isErrorType(obj.Type()) {
				errObj = obj
			}
		}
	}
	for i, lhs := range as.Lhs {
		t := resType(i)
		if t == nil || !isSnapshotPtr(t) {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // assigned into a field/index: escapes immediately
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "snapshot returned by %s is discarded without Release; it pins BDD nodes and a subscription slot until released", calleeName(call))
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		out = append(out, obligation{obj: obj, errObj: errObj, call: call, block: b, idx: idx})
	}
	return out
}

func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// checkObligation searches for a path from the creating statement to the
// function exit on which the obligation is never discharged, reporting
// one diagnostic if such a path exists.
func checkObligation(pass *framework.Pass, g *framework.CFG, o obligation) {
	// visited is a bitmask per block over the errValid flag, so the two
	// path states explore a block independently but at most once each.
	visited := make(map[*framework.Block]int)
	var leaks func(b *framework.Block, from int, errValid bool) bool
	leaks = func(b *framework.Block, from int, errValid bool) bool {
		bit := 1
		if errValid {
			bit = 2
		}
		if visited[b]&bit != 0 {
			return false
		}
		visited[b] |= bit
		for i := from; i < len(b.Nodes); i++ {
			switch discharges(pass, b.Nodes[i], o.obj) {
			case dischargeYes:
				return false
			case dischargeOverwrite:
				return false
			}
			// Once err is reassigned, a later `err != nil` says nothing
			// about the snapshot.
			if errValid && o.errObj != nil && assignsTo(pass, b.Nodes[i], o.errObj) {
				errValid = false
			}
		}
		if b == g.Exit {
			return true
		}
		// Nil-check conditions void the obligation on one side: after
		// `sn, err := f()`, err != nil implies sn == nil by convention
		// (valid only while err still holds the creating call's error).
		if t, f, ok := b.CondBlock(); ok {
			if voidT, voidF, matched := nilCheckVoids(pass, b.Cond(), o, errValid); matched {
				leak := false
				if !voidT {
					leak = leaks(t, 0, errValid) || leak
				}
				if !voidF {
					leak = leaks(f, 0, errValid) || leak
				}
				return leak
			}
		}
		for _, s := range b.Succs {
			if leaks(s, 0, errValid) {
				return true
			}
		}
		return false
	}
	if leaks(o.block, o.idx+1, o.errObj != nil) {
		pass.Reportf(o.call.Pos(), "snapshot returned by %s may not be released on all paths; call %s.Release (or defer it) before every return", calleeName(o.call), o.obj.Name())
	}
}

// assignsTo reports whether node n assigns to obj.
func assignsTo(pass *framework.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if as, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// nilCheckVoids interprets a condition over the obligation's variables:
// branches on which the snapshot is necessarily nil carry no obligation.
func nilCheckVoids(pass *framework.Pass, cond ast.Expr, o obligation, errValid bool) (voidTrue, voidFalse, matched bool) {
	check := func(op token.Token) types.Object {
		e, ok := framework.IsNilComparison(cond, op)
		if !ok {
			return nil
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return pass.TypesInfo.ObjectOf(id)
	}
	if obj := check(token.NEQ); obj != nil {
		if errValid && obj == o.errObj {
			return true, false, true // err != nil: true branch has no snapshot
		}
		if obj == o.obj {
			return false, true, true // sn != nil: false branch has none
		}
	}
	if obj := check(token.EQL); obj != nil {
		if errValid && obj == o.errObj {
			return false, true, true // err == nil: false branch has no snapshot
		}
		if obj == o.obj {
			return true, false, true // sn == nil: true branch has none
		}
	}
	return false, false, false
}

type dischargeKind int

const (
	dischargeNo dischargeKind = iota
	dischargeYes
	// dischargeOverwrite: the variable is reassigned; the old obligation's
	// tracking ends here (the new value carries its own obligation).
	dischargeOverwrite
)

// discharges classifies one CFG node's effect on the obligation for obj.
func discharges(pass *framework.Pass, n ast.Node, obj types.Object) dischargeKind {
	kind := dischargeNo
	ast.Inspect(n, func(m ast.Node) bool {
		if kind != dischargeNo {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			if mentions(pass, m, obj) {
				kind = dischargeYes // captured by a closure: ownership may move
			}
			return false
		case *ast.ReturnStmt:
			if mentions(pass, m, obj) {
				kind = dischargeYes
			}
			return false
		case *ast.SendStmt:
			if mentions(pass, m.Value, obj) {
				kind = dischargeYes
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND && mentions(pass, m.X, obj) {
				kind = dischargeYes // address taken: may be released through the pointer
			}
		case *ast.AssignStmt:
			for _, rhs := range m.Rhs {
				// The RHS may itself be a call receiving obj; let the
				// CallExpr case below decide that. A bare aliasing/storing
				// assignment discharges.
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					kind = dischargeYes
					return false
				}
			}
			for _, lhs := range m.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					kind = dischargeOverwrite
					return false
				}
			}
		case *ast.CallExpr:
			if isReleaseOf(pass, m, obj) {
				kind = dischargeYes
				return false
			}
			if i := argIndexOf(pass, m, obj); i >= 0 {
				callee := framework.CalleeFunc(pass.TypesInfo, m)
				if callee == nil {
					kind = dischargeYes // function value / unresolvable: assume ownership moves
					return false
				}
				var fact ReleasesFact
				if pass.ImportObjectFact(callee, &fact) && containsInt(fact.Params, i) {
					kind = dischargeYes
					return false
				}
				// Resolvable callee not known to release: a read-only use.
			}
		}
		return true
	})
	return kind
}

// mentions reports whether any identifier inside n resolves to obj.
func mentions(pass *framework.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

package snapleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapleak"
)

func TestSnapLeak(t *testing.T) {
	// helper before b: the shared fact set carries helper's ReleasesFacts
	// into b's analysis, as the real drivers' dependency order does.
	analysistest.Run(t, analysistest.TestData(), snapleak.Analyzer,
		"snapleak/a", "snapleak/helper", "snapleak/b")
}

// Cross-package snapleak cases: the ReleasesFact established while
// analyzing snapleak/helper decides whether a hand-off discharges the
// obligation here.
package b

import (
	"flash"

	"snapleak/helper"
)

// handedToReleaser is clean: helper.Consume carries a ReleasesFact for
// parameter 0.
func handedToReleaser(s *flash.System) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	helper.Consume(sn)
	return nil
}

// handedToIndirectReleaser is clean through the transitive fact.
func handedToIndirectReleaser(s *flash.System) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	helper.ConsumeIndirect("audit", sn)
	return nil
}

// handedToPeeker leaks: helper.Peek is resolvable and known not to
// release, so the hand-off does not discharge.
func handedToPeeker(s *flash.System) error {
	sn, err := s.Snapshot() // want `snapshot returned by s\.Snapshot may not be released on all paths`
	if err != nil {
		return err
	}
	if helper.Peek(sn) {
		return nil
	}
	sn.Release()
	return nil
}

// handedToUnknown is clean: a call through a function value cannot be
// resolved, so ownership is assumed to move.
func handedToUnknown(s *flash.System, sink func(*flash.Snapshot)) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	sink(sn)
	return nil
}

// Package helper exercises the cross-package ReleasesFact: Consume and
// ConsumeIndirect release their snapshot parameter (the fact is
// exported here and imported when package snapleak/b is analyzed);
// Peek does not.
package helper

import "flash"

// Consume takes ownership of sn and releases it.
func Consume(sn *flash.Snapshot) {
	if sn == nil {
		return
	}
	sn.Release()
}

// ConsumeIndirect releases through Consume; the intra-package fixpoint
// gives it a ReleasesFact too.
func ConsumeIndirect(tag string, sn *flash.Snapshot) {
	_ = tag
	Consume(sn)
}

// Peek inspects the snapshot without releasing it.
func Peek(sn *flash.Snapshot) bool {
	return sn != nil && !sn.Released()
}

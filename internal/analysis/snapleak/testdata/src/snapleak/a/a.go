// Single-package snapleak cases: flagged leaks and allowed shapes.
package a

import "flash"

// releasedOnEveryPath is clean: early error return is void (sn is nil
// by convention), the defer covers everything after.
func releasedOnEveryPath(s *flash.System, blocks []flash.DeviceBlock) ([]flash.Result, error) {
	sn, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	defer sn.Release()
	return sn.Apply(blocks)
}

// leakOnError forgets the snapshot on the Apply error path; the err of
// the creating call has been overwritten, so the second err check must
// not void the obligation.
func leakOnError(s *flash.System, blocks []flash.DeviceBlock) ([]flash.Result, error) {
	sn, err := s.Snapshot() // want `snapshot returned by s\.Snapshot may not be released on all paths`
	if err != nil {
		return nil, err
	}
	res, err := sn.Apply(blocks)
	if err != nil {
		return nil, err // leaks sn
	}
	sn.Release()
	return res, nil
}

// discarded drops the snapshot on the floor.
func discarded(s *flash.System) {
	s.Snapshot() // want `snapshot returned by s\.Snapshot is discarded without Release`
}

// discardedBlank binds the snapshot to the blank identifier.
func discardedBlank(s *flash.System) error {
	_, err := s.Snapshot() // want `snapshot returned by s\.Snapshot is discarded without Release`
	return err
}

// leakInBranch releases in only one arm of the branch.
func leakInBranch(s *flash.System, verbose bool) {
	sn, err := s.Snapshot() // want `snapshot returned by s\.Snapshot may not be released on all paths`
	if err != nil {
		return
	}
	if verbose {
		sn.Release()
	}
}

// releaseInBothArms is clean: every arm discharges.
func releaseInBothArms(s *flash.System, verbose bool) {
	sn, err := s.Snapshot()
	if err != nil {
		return
	}
	if verbose {
		sn.Release()
	} else {
		sn.Release()
	}
}

// escapesByReturn moves ownership to the caller.
func escapesByReturn(s *flash.System) (*flash.Snapshot, error) {
	return s.Snapshot()
}

// escapesByVarReturn moves ownership to the caller through a local.
func escapesByVarReturn(s *flash.System) (*flash.Snapshot, error) {
	sn, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	return sn, nil
}

// escapesByStore parks the snapshot in a struct; the store discharges.
type holder struct{ sn *flash.Snapshot }

func escapesByStore(s *flash.System, h *holder) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	h.sn = sn
	return nil
}

// escapesByClosure hands the snapshot to a closure, which may release
// it later; conservatively clean.
func escapesByClosure(s *flash.System) (func(), error) {
	sn, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	return func() { sn.Release() }, nil
}

// leakInLoop creates a snapshot per iteration and releases only outside
// the loop body's error path.
func leakInLoop(s *flash.System, blocks []flash.DeviceBlock) error {
	for i := 0; i < len(blocks); i++ {
		sn, err := s.Snapshot() // want `snapshot returned by s\.Snapshot may not be released on all paths`
		if err != nil {
			return err
		}
		if _, err := sn.Apply(blocks[i : i+1]); err != nil {
			return err // leaks sn
		}
		sn.Release()
	}
	return nil
}

// guardedRelease releases under a non-nil guard on the snapshot itself;
// the nil arm carries no obligation.
func guardedRelease(s *flash.System) {
	sn, _ := s.Snapshot()
	if sn != nil {
		sn.Release()
	}
}

// allowedLeak documents an intentional hold: the snapshot is parked for
// the process lifetime.
//
//flashvet:allow snapleak pinned for the lifetime of the process by design
func allowedLeak(s *flash.System) {
	sn, err := s.Snapshot()
	if err != nil {
		return
	}
	_ = sn.Released()
}

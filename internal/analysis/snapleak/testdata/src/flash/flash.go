// Package flash is the analysistest stub of the real root package: the
// analyzers match by package name, so this minimal shadow is enough.
package flash

// DeviceBlock is a stub of the what-if input block.
type DeviceBlock struct{ Device string }

// Result is a stub verdict.
type Result struct{ OK bool }

// Snapshot is the stub consistent capture; Release is what snapleak
// tracks.
type Snapshot struct{ released bool }

// Release frees the capture.
func (sn *Snapshot) Release() { sn.released = true }

// Released reports release state.
func (sn *Snapshot) Released() bool { return sn.released }

// Apply runs a what-if against the capture.
func (sn *Snapshot) Apply(blocks []DeviceBlock) ([]Result, error) { return nil, nil }

// System is the stub verification system.
type System struct{}

// New creates a stub system.
func New() *System { return &System{} }

// Snapshot forks a consistent capture.
func (s *System) Snapshot() (*Snapshot, error) { return &Snapshot{}, nil }

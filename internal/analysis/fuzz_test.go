package analysis

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzAllowDirective hammers the //flashvet:allow parser with arbitrary
// comment text. The parser is the single gate between source comments
// and finding suppression, so its invariants are load-bearing: a
// non-directive comment must never suppress anything, and an accepted
// directive must name at least one analyzer, with every name free of
// separators and the justification a clean suffix of the input.
func FuzzAllowDirective(f *testing.F) {
	seeds := []string{
		"//flashvet:allow snapleak",
		"//flashvet:allow lockorder boot path runs single-threaded before workers start",
		"//flashvet:allow nodeprecated,atomicmix dedicated wrapper coverage",
		"//flashvet:allow lockbdd — init-time only, no concurrent workers yet",
		"//flashvet:allow  ,, ",
		"//flashvet:allow",
		"//flashvet:allowx snapleak",
		"// flashvet:allow snapleak",
		"//flashvet:allow\tsnapleak\tjustification after a tab",
		"//flashvet:allow snapleak,,lockorder",
		"/* block comment */",
		"//go:generate stringer",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, comment, ok := ParseAllowDirective(text)
		if !ok {
			if names != nil || comment != "" {
				t.Fatalf("rejected input returned names=%q comment=%q", names, comment)
			}
			return
		}
		if !strings.HasPrefix(text, "//flashvet:allow") {
			t.Fatalf("accepted text without directive prefix: %q", text)
		}
		if len(names) == 0 {
			t.Fatalf("accepted directive with no analyzer names: %q", text)
		}
		for _, n := range names {
			if n == "" {
				t.Fatalf("empty analyzer name from %q", text)
			}
			if strings.ContainsAny(n, ", \t") || strings.ContainsFunc(n, unicode.IsSpace) {
				t.Fatalf("analyzer name %q contains separators (from %q)", n, text)
			}
		}
		if comment != strings.TrimSpace(comment) {
			t.Fatalf("justification %q not trimmed (from %q)", comment, text)
		}
		// The justification is commentary from the input, never invented.
		if comment != "" && !strings.Contains(text, comment) {
			t.Fatalf("justification %q not a substring of input %q", comment, text)
		}
		// Parsing is deterministic.
		n2, c2, ok2 := ParseAllowDirective(text)
		if !ok2 || c2 != comment || strings.Join(n2, ",") != strings.Join(names, ",") {
			t.Fatalf("non-deterministic parse of %q", text)
		}
	})
}

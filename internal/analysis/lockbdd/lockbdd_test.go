package lockbdd_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockbdd"
)

func TestLockBDD(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockbdd.Analyzer, "ce2d")
}

// Package bdd is a minimal stub of repro/internal/bdd for analyzer
// tests: same package name, same shapes, no logic.
package bdd

// Ref indexes a node in one Engine's store.
type Ref int32

// Engine is a stub BDD engine.
type Engine struct{ nodes int }

// New returns a stub engine.
func New(nvars int) *Engine { return &Engine{} }

// And is conjunction.
func (e *Engine) And(a, b Ref) Ref { return a }

// Not is negation.
func (e *Engine) Not(a Ref) Ref { return a }

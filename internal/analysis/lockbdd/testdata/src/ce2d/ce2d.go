// Package ce2d is a coordination-layer stub for lockbdd tests.
package ce2d

import (
	"sync"

	"bdd"
)

type coord struct {
	mu  sync.Mutex
	seq int
	e   *bdd.Engine
}

func (c *coord) bad(a, b bdd.Ref) bdd.Ref {
	c.mu.Lock()
	r := c.e.And(a, b) // want `\(\*bdd.Engine\)\.And called while holding c\.mu`
	c.mu.Unlock()
	return r
}

func (c *coord) badDeferred(a, b bdd.Ref) bdd.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.And(a, b) // want `\(\*bdd.Engine\)\.And called while holding c\.mu`
}

func (c *coord) good(a, b bdd.Ref) bdd.Ref {
	c.mu.Lock()
	n := c.seq
	c.mu.Unlock()
	_ = n
	return c.e.And(a, b) // after unlock: ok
}

func (c *coord) closure(a, b bdd.Ref) func() bdd.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() bdd.Ref { return c.e.And(a, b) } // closure body runs later: ok
}

func (c *coord) noLock(a bdd.Ref) bdd.Ref {
	return c.e.Not(a) // no lock held: ok
}

// badBranch keeps the lock on one path; may-hold flow flags the call at
// the join (the old source-order simulation saw the unlock and moved on).
func (c *coord) badBranch(a, b bdd.Ref, fast bool) bdd.Ref {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
	}
	r := c.e.And(a, b) // want `\(\*bdd.Engine\)\.And called while holding c\.mu`
	if !fast {
		c.mu.Unlock()
	}
	return r
}

// badLoop carries the lock around the loop back-edge.
func (c *coord) badLoop(refs []bdd.Ref) bdd.Ref {
	acc := refs[0]
	for _, r := range refs[1:] {
		c.mu.Lock()
		acc = c.e.And(acc, r) // want `\(\*bdd.Engine\)\.And called while holding c\.mu`
	}
	c.mu.Unlock()
	return acc
}

// goodBranch releases on every path before the call.
func (c *coord) goodBranch(a, b bdd.Ref, fast bool) bdd.Ref {
	c.mu.Lock()
	if fast {
		c.seq++
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
	return c.e.And(a, b)
}

type rcoord struct {
	mu sync.RWMutex
	e  *bdd.Engine
}

func (c *rcoord) badRead(a bdd.Ref) bdd.Ref {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.e.Not(a) // want `\(\*bdd.Engine\)\.Not called while holding c\.mu`
}

//flashvet:allow lockbdd — init-time only, no concurrent workers yet
func (c *rcoord) allowed(a bdd.Ref) bdd.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.Not(a)
}

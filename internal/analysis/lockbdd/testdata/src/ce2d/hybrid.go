// Interface-dispatch lockbdd cases: since the hybrid predicate engine,
// coordination code holds its engine as pred.Engine, and an unbounded
// predicate operation under a bookkeeping lock is just as much of a
// stall when it goes through the interface.
package ce2d

import (
	"sync"

	"bdd"
	"pred"
)

type hybridCoord struct {
	mu  sync.Mutex
	seq int
	e   pred.Engine
}

func (c *hybridCoord) bad(a, b bdd.Ref) bdd.Ref {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.And(a, b) // want `\(pred\.Engine\)\.And called while holding c\.mu`
}

func (c *hybridCoord) good(a, b bdd.Ref) bdd.Ref {
	c.mu.Lock()
	n := c.seq
	c.mu.Unlock()
	_ = n
	return c.e.And(a, b) // after unlock: ok
}

func (c *hybridCoord) noLock(a bdd.Ref) bdd.Ref {
	return c.e.Not(a) // no lock held: ok
}

// Package pred is a minimal stub of repro/internal/pred for analyzer
// tests: the engine interface both representations satisfy.
package pred

import "bdd"

// Engine is the stub predicate-engine interface.
type Engine interface {
	And(a, b bdd.Ref) bdd.Ref
	Not(a bdd.Ref) bdd.Ref
}

// Package lockbdd flags BDD engine calls made while holding a mutex in
// the CE2D/pipeline layer.
//
// A *bdd.Engine is single-owner by design: each subspace worker owns
// one and serializes access with its own queue, never a shared lock
// (§3.2's subspace partitioning is what makes engines lock-free).
// Coordination code — package ce2d and the pipeline/server glue — holds
// sync.Mutex/sync.RWMutex locks for bookkeeping (epoch tables, queue
// state), and BDD operations are unbounded work (an And can blow up
// exponentially in node count). Running one under a bookkeeping lock
// turns a shared map guard into a system-wide stall, and invites
// lock-order inversions against the workers.
//
// Since the v2 platform upgrade the check is flow-sensitive: a may-hold
// forward dataflow over the framework CFG tracks which locks may be
// held at each point, so an engine call is flagged when any path
// reaches it with a lock held — including paths the old source-order
// simulation could not see (a branch that skips the unlock, a loop
// carrying the lock around). A deferred unlock does not release — the
// lock is held for the rest of the function, which is exactly the
// pattern the check exists to catch. Worker-internal files (flash.go's
// mbWorker/sysWorker own their engines and their mutexes together) are
// out of scope; the rank-based ordering between named locks is
// lockorder's job.
package lockbdd

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis/framework"
)

// Analyzer is the lockbdd pass.
var Analyzer = &framework.Analyzer{
	Name: "lockbdd",
	Doc:  "flag predicate-engine method calls (*bdd.Engine, *atoms.Engine, pred.Engine) made while holding a sync mutex in ce2d/pipeline coordination code",
	Run:  run,
}

// inScope reports whether the file belongs to the coordination layer:
// all of package ce2d, plus the pipeline/server glue in package flash.
func inScope(pass *framework.Pass, f *ast.File) bool {
	if pass.Pkg.Name() == "ce2d" {
		return true
	}
	switch filepath.Base(pass.Filename(f.FileStart)) {
	case "pipeline.go", "serve.go":
		return true
	}
	return false
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		if !inScope(pass, f) {
			continue
		}
		framework.EachFuncBody(f, func(fb framework.FuncBody) {
			checkBody(pass, fb.Body)
		})
	}
	return nil, nil
}

// engineCall reports whether call is a method call on a predicate
// engine — the concrete *bdd.Engine or *atoms.Engine, or the
// pred.Engine interface the hybrid layer threads through coordination
// code — returning the method name. Interface dispatch must count:
// since the hybrid predicate engine landed, ce2d holds its engine as
// pred.Engine, and an unbounded BDD operation under a bookkeeping lock
// is exactly as bad when it goes through an interface.
func engineCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if !framework.PointerToNamed(recv, "bdd", "Engine") &&
		!framework.PointerToNamed(recv, "atoms", "Engine") &&
		!framework.NamedIn(recv, "pred", "Engine") {
		return "", false
	}
	qual := func(p *types.Package) string { return p.Name() }
	return "(" + types.TypeString(recv, qual) + ")." + fn.Name(), true
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evEngineCall
)

type event struct {
	kind eventKind
	node ast.Node
	key  string // lock expression (lock/unlock) or method name (engine call)
}

// nodeEvents extracts the lock and engine-call events of one CFG node
// in source order. Function literals are separate scopes (surfaced by
// EachFuncBody) and skipped; a deferred unlock releases at return, not
// here, so it produces no event, and a deferred engine call runs after
// the body's own unlocks.
func nodeEvents(pass *framework.Pass, n ast.Node) []event {
	deferred := make(map[*ast.CallExpr]bool)
	var events []event
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred[m.Call] = true
		case *ast.CallExpr:
			if recv, name, ok := framework.MutexOp(pass.TypesInfo, m); ok {
				if deferred[m] {
					return true
				}
				key := types.ExprString(recv)
				switch name {
				case "Lock", "RLock":
					events = append(events, event{kind: evLock, node: m, key: key})
				case "Unlock", "RUnlock":
					events = append(events, event{kind: evUnlock, node: m, key: key})
				}
				return true
			}
			if name, ok := engineCall(pass, m); ok && !deferred[m] {
				events = append(events, event{kind: evEngineCall, node: m, key: name})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].node.Pos() < events[j].node.Pos() })
	return events
}

// held is the dataflow state: lock expression -> line acquired, for
// every lock that may be held.
type held map[string]int

func (h held) clone() held {
	out := make(held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// checkBody runs the may-hold analysis over one function body.
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	g := pass.CFG(body)
	spec := framework.FlowSpec[held]{
		Dir:      framework.Forward,
		Boundary: held{},
		Bottom:   func() held { return nil },
		Join: func(a, b held) held {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := a.clone()
			for k, v := range b {
				if cur, ok := out[k]; !ok || v < cur {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b held) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *framework.Block, in held) held {
			if in == nil {
				return nil // unreached
			}
			out := in.clone()
			for _, n := range b.Nodes {
				for _, ev := range nodeEvents(pass, n) {
					applyEvent(pass, out, ev, false)
				}
			}
			return out
		},
	}
	before, _ := framework.Solve(g, spec)

	reported := make(map[ast.Node]bool)
	for _, b := range g.ReachableBlocks() {
		state := before[b]
		if state == nil {
			state = held{}
		}
		state = state.clone()
		for _, n := range b.Nodes {
			for _, ev := range nodeEvents(pass, n) {
				if ev.kind == evEngineCall && len(state) > 0 && !reported[ev.node] {
					reported[ev.node] = true
					locks := make([]string, 0, len(state))
					for lock := range state {
						locks = append(locks, lock)
					}
					sort.Strings(locks)
					for _, lock := range locks {
						pass.Reportf(ev.node.Pos(), "%s called while holding %s (locked at line %d); predicate operations are unbounded work and engines are single-owner — release the lock or hand off to the owning worker", ev.key, lock, state[lock])
					}
				}
				applyEvent(pass, state, ev, true)
			}
		}
	}
}

// applyEvent threads one event through the state.
func applyEvent(pass *framework.Pass, state held, ev event, reporting bool) {
	switch ev.kind {
	case evLock:
		state[ev.key] = pass.Fset.Position(ev.node.Pos()).Line
	case evUnlock:
		delete(state, ev.key)
	}
	_ = reporting
}

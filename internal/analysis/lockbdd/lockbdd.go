// Package lockbdd flags BDD engine calls made while holding a mutex in
// the CE2D/pipeline layer.
//
// A *bdd.Engine is single-owner by design: each subspace worker owns
// one and serializes access with its own queue, never a shared lock
// (§3.2's subspace partitioning is what makes engines lock-free).
// Coordination code — package ce2d and the pipeline/server glue — holds
// sync.Mutex/sync.RWMutex locks for bookkeeping (epoch tables, queue
// state), and BDD operations are unbounded work (an And can blow up
// exponentially in node count). Running one under a bookkeeping lock
// turns a shared map guard into a system-wide stall, and invites
// lock-order inversions against the workers.
//
// The check is per-function and source-ordered: after `mu.Lock()` (or
// `mu.RLock()`) and before the matching unlock on the same lock
// expression, any method call on a *bdd.Engine value is flagged. A
// deferred unlock does not release — the lock is held for the rest of
// the function, which is exactly the pattern the check exists to catch.
// Worker-internal files (flash.go's mbWorker/sysWorker own their
// engines and their mutexes together) are out of scope.
package lockbdd

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis/framework"
)

// Analyzer is the lockbdd pass.
var Analyzer = &framework.Analyzer{
	Name: "lockbdd",
	Doc:  "flag *bdd.Engine method calls made while holding a sync mutex in ce2d/pipeline coordination code",
	Run:  run,
}

// inScope reports whether the file belongs to the coordination layer:
// all of package ce2d, plus the pipeline/server glue in package flash.
func inScope(pass *framework.Pass, f *ast.File) bool {
	if pass.Pkg.Name() == "ce2d" {
		return true
	}
	switch filepath.Base(pass.Filename(f.FileStart)) {
	case "pipeline.go", "serve.go":
		return true
	}
	return false
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		if !inScope(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evEngineCall
)

type event struct {
	kind eventKind
	pos  int // byte offset for source ordering
	node ast.Node
	key  string // lock expression (lock/unlock) or method name (engine call)
}

// checkBody simulates lock state in source order within one function
// body, without descending into nested function literals (a closure's
// body does not necessarily execute under the enclosing lock).
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	var events []event
	deferred := make(map[*ast.CallExpr]bool)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // handled as its own scope by run
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			if key, name, ok := mutexOp(pass, n); ok {
				switch name {
				case "Lock", "RLock":
					if !deferred[n] {
						events = append(events, event{kind: evLock, pos: int(n.Pos()), node: n, key: key})
					}
				case "Unlock", "RUnlock":
					// A deferred unlock releases at return, not here: the
					// lock stays held for the remainder of the function.
					if !deferred[n] {
						events = append(events, event{kind: evUnlock, pos: int(n.Pos()), node: n, key: key})
					}
				}
				return true
			}
			if name, ok := engineCall(pass, n); ok && !deferred[n] {
				events = append(events, event{kind: evEngineCall, pos: int(n.Pos()), node: n, key: name})
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int) // lock expr -> line acquired
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.key] = pass.Fset.Position(ev.node.Pos()).Line
		case evUnlock:
			delete(held, ev.key)
		case evEngineCall:
			for lock, line := range held {
				pass.Reportf(ev.node.Pos(), "(*bdd.Engine).%s called while holding %s (locked at line %d); BDD operations are unbounded work and engines are single-owner — release the lock or hand off to the owning worker", ev.key, lock, line)
			}
		}
	}
}

// mutexOp matches calls to Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/sync.RWMutex value, returning the lock's receiver
// expression as its identity key.
func mutexOp(pass *framework.Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := pass.TypesInfo.Types[sel.X]
	if !okT || !isSyncMutex(tv.Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return framework.NamedIn(t, "sync", "Mutex") || framework.NamedIn(t, "sync", "RWMutex")
}

// engineCall matches method calls whose receiver is a *bdd.Engine.
func engineCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	recv := framework.MethodReceiverExpr(call)
	if recv == nil {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[recv]
	if !ok || !framework.PointerToNamed(tv.Type, "bdd", "Engine") {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name, true
	}
	return "", false
}

// Package gcroot flags bdd.Ref holders invisible to the garbage
// collector.
//
// The in-engine mark-and-sweep GC (bdd.Engine.GC) frees every node not
// reachable from the enumerated roots, and its Remap invalidates every
// Ref it swept. Correctness therefore depends on a whole-program
// convention the type system cannot see: every live Ref must be
// enumerated by some registered root set. A struct that squirrels away
// a Ref without participating — no Roots method, not covered by a
// container's enumerator — keeps working until the first collection,
// then silently denotes an unrelated predicate (or panics in
// Remap.Apply if the node was swept).
//
// The analyzer flags named struct types with a Ref-bearing field (Ref,
// or a slice/array/map of Ref) that do not define the enumerator
// convention:
//
//	func (x *T) Roots(yield func(bdd.Ref))
//
// (value receiver also accepted; any other shape — results, extra
// parameters, a non-func(bdd.Ref) yield — does not count). Structs whose
// refs are enumerated by a containing type's Roots (fib.Rule inside
// fib.Table, ce2d's per-check state inside Verifier) document that with
// a //flashvet:allow gcroot directive naming the owning enumerator.
//
// The bdd package itself is exempt (it IS the collector), as are _test.go
// files: test fixtures are throwaway holders that never live across a
// collection.
package gcroot

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the gcroot pass.
var Analyzer = &framework.Analyzer{
	Name: "gcroot",
	Doc:  "flag structs that store bdd.Ref without a Roots(func(bdd.Ref)) enumerator, making them invisible to the in-engine GC",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	// bdd and atoms are the engines themselves: they hold raw Refs as
	// internal storage and implement GC, not consume it.
	if pass.Pkg.Name() == "bdd" || pass.Pkg.Name() == "atoms" {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			spec, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := spec.Type.(*ast.StructType)
			if !ok {
				return true
			}
			checkStruct(pass, spec, st)
			return true
		})
	}
	return nil, nil
}

func checkStruct(pass *framework.Pass, spec *ast.TypeSpec, st *ast.StructType) {
	var refFields []*ast.Field
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if bearsRef(tv.Type) {
			refFields = append(refFields, field)
		}
	}
	if len(refFields) == 0 {
		return
	}
	obj, ok := pass.TypesInfo.Defs[spec.Name].(*types.TypeName)
	if !ok || hasRootsEnumerator(pass, obj.Type()) {
		return
	}
	for _, field := range refFields {
		fname := "(embedded)"
		if len(field.Names) > 0 {
			fname = field.Names[0].Name
		}
		pass.Reportf(field.Pos(),
			"struct %s holds bdd.Ref field %s but defines no Roots(func(bdd.Ref)) enumerator, so the in-engine GC cannot see it; add Roots/RemapRefs or name the owning enumerator with //flashvet:allow gcroot",
			spec.Name.Name, fname)
	}
}

// hasRootsEnumerator reports whether *T (and therefore T's method set
// through pointer receivers too) has a method Roots(yield func(bdd.Ref))
// with no results.
func hasRootsEnumerator(pass *framework.Pass, t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pass.Pkg, "Roots")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	yield, ok := types.Unalias(sig.Params().At(0).Type()).(*types.Signature)
	if !ok || yield.Params().Len() != 1 || yield.Results().Len() != 0 {
		return false
	}
	return framework.NamedIn(yield.Params().At(0).Type(), "bdd", "Ref")
}

// bearsRef reports whether t is bdd.Ref or a direct container of it.
// Named struct types are not recursed into: their own declaration is
// checked where it is defined.
func bearsRef(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Slice:
		return bearsRef(t.Elem())
	case *types.Array:
		return bearsRef(t.Elem())
	case *types.Map:
		return bearsRef(t.Key()) || bearsRef(t.Elem())
	default:
		return framework.NamedIn(t, "bdd", "Ref")
	}
}

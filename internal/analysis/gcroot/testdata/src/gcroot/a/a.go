package a

import "bdd"

type leaky struct {
	match bdd.Ref // want `struct leaky holds bdd.Ref field match but defines no Roots`
	name  string
}

type rooted struct {
	refs []bdd.Ref // Roots below enumerates them: ok
}

func (r *rooted) Roots(yield func(bdd.Ref)) {
	for _, p := range r.refs {
		yield(p)
	}
}

type valueRooted struct {
	p bdd.Ref // value-receiver Roots: ok
}

func (v valueRooted) Roots(yield func(bdd.Ref)) { yield(v.p) }

type wrongShape struct {
	p bdd.Ref // want `struct wrongShape holds bdd.Ref field p but defines no Roots`
}

// Roots here is not an enumerator — it returns the refs instead of
// yielding them, so GC driver code cannot call it.
func (w *wrongShape) Roots() []bdd.Ref { return []bdd.Ref{w.p} }

type keyed struct {
	classes map[bdd.Ref]int // want `struct keyed holds bdd.Ref field classes but defines no Roots`
}

//flashvet:allow gcroot — rule refs are enumerated by the owning table's Roots
type element struct {
	match bdd.Ref
	pri   int
}

type clean struct {
	n int // no Ref fields: ok
}

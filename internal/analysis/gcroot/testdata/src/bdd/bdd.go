// Package bdd is a minimal stub of repro/internal/bdd for analyzer
// tests: same package name, same shapes, no logic.
package bdd

// Ref indexes a node in one Engine's store.
type Ref int32

// False and True are the terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// Engine is a stub BDD engine.
type Engine struct{ nodes int }

// New returns a stub engine.
func New(nvars int) *Engine { return &Engine{} }

// Var returns the predicate for bit i.
func (e *Engine) Var(i int) Ref { return Ref(i + 2) }

// And is conjunction.
func (e *Engine) And(a, b Ref) Ref { return a }

// Or is disjunction.
func (e *Engine) Or(a, b Ref) Ref { return a }

// Not is negation.
func (e *Engine) Not(a Ref) Ref { return a }

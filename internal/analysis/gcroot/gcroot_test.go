package gcroot_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/gcroot"
)

func TestGCRoot(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), gcroot.Analyzer, "gcroot/a")
}

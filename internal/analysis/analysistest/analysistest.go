// Package analysistest runs a flashvet analyzer over GOPATH-style
// testdata packages and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A want comment sits on the line it expects a diagnostic for and
// carries one or more quoted regular expressions:
//
//	r := e2.And(a, b) // want `produced by engine`
//
// Every diagnostic must be claimed by a matching want on its line, and
// every want must be claimed by a diagnostic; either leftover fails the
// test. Suppression directives (//flashvet:allow) are honored, so
// allowed cases are written as code with a directive and no want.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// TestData returns the caller's testdata directory (absolute).
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	dir, err := filepath.Abs(filepath.Join(filepath.Dir(file), "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package path from testdata/src and applies the
// analyzer, comparing diagnostics against `// want` expectations.
//
// One fact set is shared across all pkgPaths in the order listed, so a
// fact exported while analyzing an earlier package (a dependency) is
// visible at use sites in a later one — list dependencies first, as the
// real drivers analyze in dependency order.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader, err := load.New(load.Config{SrcDirs: []string{filepath.Join(testdata, "src")}})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	facts := framework.NewFactSet([]*framework.Analyzer{a})
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", path, err)
		}
		all, err := analysis.CheckFacts(pkg, []*framework.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("analysistest: %s on %s: %v", a.Name, path, err)
		}
		findings := all[:0]
		for _, f := range all {
			if !f.Suppressed {
				findings = append(findings, f)
			}
		}
		checkWants(t, pkg, findings)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants matches findings against // want comments line by line.
func checkWants(t *testing.T, pkg *load.Package, findings []analysis.Finding) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '`' && rest[0] != '"') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitPatterns(strings.TrimSpace(rest)) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, raw, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		claimed := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.raw)
			}
		}
	}
}

// splitPatterns parses a sequence of Go string literals (backquoted or
// double-quoted), e.g. "`foo` `bar`".
func splitPatterns(s string) []string {
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				out = append(out, s[1:])
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i >= len(s) {
				out = append(out, s[1:])
				return out
			}
			if unq, err := strconv.Unquote(s[:i+1]); err == nil {
				out = append(out, unq)
			}
			s = s[i+1:]
		default:
			// Bare word: take the rest of the comment as one pattern.
			out = append(out, s)
			return out
		}
	}
	return out
}

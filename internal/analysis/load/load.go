// Package load type-checks Go packages from source using only the
// standard library, for consumption by the flashvet analyzers.
//
// The build environment is offline, so golang.org/x/tools/go/packages is
// unavailable; this is the minimal loader the analysis framework needs:
//
//   - file selection through go/build (build tags, GOOS/GOARCH suffixes),
//     with cgo disabled so every selected file is pure Go and therefore
//     type-checkable from source;
//   - import resolution across four namespaces, in order: the current
//     module (by module path prefix), extra GOPATH-style source roots
//     (analysistest testdata), GOROOT/src, and GOROOT's vendored
//     dependencies (GOROOT/src/vendor);
//   - recursive, memoized type checking in dependency order.
//
// Test files are not part of a loaded package: the standalone flashvet
// driver checks the non-test compilation unit only. Under `go vet
// -vettool` the toolchain drives flashvet per compilation unit (including
// test units) and supplies compiled export data instead, so this loader
// is bypassed there.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Config parameterizes a Loader.
type Config struct {
	// ModuleDir is the directory containing go.mod. Empty disables
	// module-path resolution (pure-testdata loads).
	ModuleDir string
	// ModulePath is the module's import path prefix. Derived from go.mod
	// when empty and ModuleDir is set.
	ModulePath string
	// SrcDirs are extra GOPATH-style roots (each containing <importpath>
	// directories) searched before GOROOT. Used by analysistest.
	SrcDirs []string
	// BuildTags are extra build constraints to satisfy (e.g. "flashcheck").
	BuildTags []string
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports are the package's direct imports (go/build's view, sorted),
	// letting fact-aware drivers analyze dependencies first.
	Imports []string
}

// Loader loads and memoizes packages. Not safe for concurrent use.
type Loader struct {
	cfg  Config
	ctxt build.Context
	fset *token.FileSet
	pkgs map[string]*entry
}

type entry struct {
	pkg     *Package
	err     error
	loading bool // cycle detection
}

// New creates a Loader. It derives ModulePath from ModuleDir's go.mod
// when unset.
func New(cfg Config) (*Loader, error) {
	if cfg.ModuleDir != "" && cfg.ModulePath == "" {
		p, err := modulePath(filepath.Join(cfg.ModuleDir, "go.mod"))
		if err != nil {
			return nil, err
		}
		cfg.ModulePath = p
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // keep every selected file type-checkable from source
	ctxt.BuildTags = append(ctxt.BuildTags, cfg.BuildTags...)
	return &Loader{
		cfg:  cfg,
		ctxt: ctxt,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*entry),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module's import-path prefix ("" when no module
// is configured). Drivers use it to tell module-local imports — whose
// facts they can compute from source — from external ones.
func (l *Loader) ModulePath() string { return l.cfg.ModulePath }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// ModulePackages enumerates the module's package directories (skipping
// testdata, vendor and hidden directories), returning their import
// paths sorted. It does not load them.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.cfg.ModuleDir == "" {
		return nil, fmt.Errorf("load: no module directory configured")
	}
	var out []string
	err := filepath.WalkDir(l.cfg.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.cfg.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.cfg.ModuleDir, path)
				if err != nil {
					return err
				}
				ip := l.cfg.ModulePath
				if rel != "." {
					ip += "/" + filepath.ToSlash(rel)
				}
				out = append(out, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Load loads (and memoizes) the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	e := l.load(path)
	return e.pkg, e.err
}

func (l *Loader) load(path string) *entry {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return &entry{err: fmt.Errorf("load: import cycle through %q", path)}
		}
		return e
	}
	e := &entry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.loadUncached(path)
	e.loading = false
	if e.err != nil {
		e.err = fmt.Errorf("load %s: %w", path, e.err)
	}
	return e
}

// dirFor resolves an import path to the directory holding its sources.
//
//flashvet:allow nodeprecated — runtime.GOROOT is the documented fallback when the build context leaves GOROOT empty; this loader runs in-process, never from a relocated binary
func (l *Loader) dirFor(path string) (string, error) {
	if l.cfg.ModulePath != "" && (path == l.cfg.ModulePath || strings.HasPrefix(path, l.cfg.ModulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.cfg.ModulePath), "/")
		return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rel)), nil
	}
	for _, root := range l.cfg.SrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, nil
		}
	}
	goroot := l.ctxt.GOROOT
	if goroot == "" {
		goroot = runtime.GOROOT()
	}
	dir := filepath.Join(goroot, "src", filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir, nil
	}
	// The standard library's vendored dependencies (e.g. net/http's
	// golang.org/x/net packages) live under GOROOT/src/vendor.
	vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
	if hasGoFiles(vdir) {
		return vdir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q (offline loader: module, testdata and GOROOT only)", path)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Name: "unsafe", Fset: l.fset, Types: types.Unsafe}, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	return l.loadDir(dir, path)
}

// LoadDir loads the package in dir under the given import path without
// consulting the resolution order (used for explicit root packages).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok && !e.loading {
		return e.pkg, e.err
	}
	e := &entry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.loadDir(dir, path)
	e.loading = false
	return e.pkg, e.err
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			e := l.load(p)
			if e.err != nil {
				return nil, e.err
			}
			return e.pkg.Types, nil
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:    path,
		Name:    tpkg.Name(),
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: bp.Imports,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Package hybrid exercises bddref over the pred.Engine interface: the
// hybrid predicate layer threads engines through interface-typed
// fields and parameters, and both halves of the check must keep
// working there — interface engines count for the co-located-field
// rule, and Refs still must not flow between two interface engines.
package hybrid

import (
	"bdd"
	"pred"
)

// transformer mirrors imt.Transformer after the hybrid cutover: the
// Ref fields are owned by the interface-typed engine beside them.
type transformer struct {
	E     pred.Engine
	Match bdd.Ref
	Outs  []bdd.Ref // co-located pred.Engine field: ok
}

type orphaned struct {
	R bdd.Ref // want `struct orphaned stores bdd.Ref field R without a co-located engine field`
}

func interfaceFlow(e1, e2 pred.Engine, a, b bdd.Ref) {
	r := e1.And(a, b)
	_ = e1.Or(r, a)            // same interface engine: ok
	_ = e2.Not(r)              // want `bdd.Ref r was produced by engine e1 but is used with engine e2`
	_ = e2.Or(e1.And(a, b), a) // want `bdd.Ref from engine e1 passed directly to engine e2`
}

// mixedFlow crosses a concrete engine with an interface one — the
// cutover bug class: an atom-era Ref reaching the fresh BDD engine.
func mixedFlow(t *transformer, a, b bdd.Ref) {
	e := bdd.New(8)
	r := t.E.And(a, b)
	_ = e.Not(r) // want `bdd.Ref r was produced by engine t.E but is used with engine e`
}

package a

import "bdd"

func crossFlow() {
	e1 := bdd.New(8)
	e2 := bdd.New(8)
	a := e1.Var(0)
	b := e1.Var(1)
	r := e1.And(a, b)
	_ = e1.Or(r, a)          // same engine: ok
	_ = e2.Or(r, e2.Var(0))  // want `bdd.Ref r was produced by engine e1 but is used with engine e2`
	_ = e2.Not(e1.And(a, b)) // want `bdd.Ref from engine e1 passed directly to engine e2`
}

func fieldEngines(w1, w2 *worker) {
	p := w1.e.Var(3)
	_ = w1.e.Not(p) // same engine expression: ok
	_ = w2.e.Not(p) // want `produced by engine w1.e but is used with engine w2.e`
}

type worker struct {
	e *bdd.Engine
}

//flashvet:allow bddref — fixture deliberately re-interprets r across engines
func allowedFlow() {
	e1 := bdd.New(8)
	e2 := bdd.New(8)
	r := e1.Var(0)
	_ = e2.Not(r)
}

type owned struct {
	E *bdd.Engine
	P bdd.Ref // co-located engine field: ok
}

type orphan struct {
	P bdd.Ref // want `struct orphan stores bdd.Ref field P without a co-located engine field`
}

//flashvet:allow bddref — refs owned by the enclosing table's engine
type documented struct {
	Rs []bdd.Ref
}

type unrelated struct {
	N int // no Ref fields: ok
}

package bddref_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bddref"
)

func TestBDDRef(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), bddref.Analyzer, "bddref/a", "bddref/hybrid")
}

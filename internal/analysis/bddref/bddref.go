// Package bddref flags bdd.Ref values that cross engine boundaries.
//
// A bdd.Ref is an index into one *bdd.Engine's node store; engines are
// per-subspace and hash-cons independently, so a Ref minted by engine A
// silently denotes an unrelated predicate when passed to engine B — the
// verifier keeps running and produces confident wrong answers (the
// failure mode §3.2's per-subspace partitioning makes possible). The
// type system cannot catch it: every Ref has the same Go type.
//
// Two patterns are flagged:
//
//  1. Cross-engine flow inside a function: a Ref produced by a method
//     call on engine expression E1 is passed to a method call on a
//     different engine expression E2. Engine identity is syntactic
//     (the receiver expression and its root object), so aliases of the
//     same engine through differently-spelled expressions may be
//     over-reported — suppress with //flashvet:allow bddref and a
//     justification.
//
//  2. A struct type with a bdd.Ref-bearing field (Ref, or a
//     slice/array/map of Ref) but no co-located *bdd.Engine field.
//     Such structs rely on an ownership convention the code cannot
//     express; the directive documents it where it is intentional
//     (e.g. fib.Rule's Match, owned by the enclosing table's engine).
//
// The bdd and atoms packages are exempt: they are the engines and
// manipulate raw Refs by design. Since the hybrid predicate engine
// landed, "engine" means any of *bdd.Engine, *atoms.Engine, or the
// pred.Engine interface they both satisfy — an interface-typed field
// or receiver counts for both the flow check and the co-located-field
// check.
package bddref

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the bddref pass.
var Analyzer = &framework.Analyzer{
	Name: "bddref",
	Doc:  "flag bdd.Ref values that flow between different bdd.Engine instances, and Ref-bearing structs without a co-located engine field",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Name() == "bdd" || pass.Pkg.Name() == "atoms" {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncFlow(pass, n.Body)
				}
				return false // checkFuncFlow descends (incl. func lits)
			case *ast.TypeSpec:
				if st, ok := n.Type.(*ast.StructType); ok {
					checkStruct(pass, n.Name.Name, st)
				}
			}
			return true
		})
	}
	return nil, nil
}

func isRef(t types.Type) bool { return framework.NamedIn(t, "bdd", "Ref") }

// isEngine recognizes every predicate-engine shape: the concrete BDD
// and atom engines, plus the pred.Engine interface the hybrid layer
// threads through signatures.
func isEngine(t types.Type) bool {
	return framework.PointerToNamed(t, "bdd", "Engine") ||
		framework.PointerToNamed(t, "atoms", "Engine") ||
		framework.NamedIn(t, "pred", "Engine")
}

// engineKey identifies an engine receiver expression syntactically: the
// printed selector path plus the root identifier's object.
type engineKey struct {
	root types.Object
	expr string
}

// engineOf returns the engine identity of a method call's receiver, or
// ok=false when the call is not a method on *bdd.Engine.
func engineOf(pass *framework.Pass, call *ast.CallExpr) (engineKey, bool) {
	recv := framework.MethodReceiverExpr(call)
	if recv == nil {
		return engineKey{}, false
	}
	tv, ok := pass.TypesInfo.Types[recv]
	if !ok || !isEngine(tv.Type) {
		return engineKey{}, false
	}
	return engineKey{root: framework.RootIdentObj(pass.TypesInfo, recv), expr: types.ExprString(recv)}, true
}

// checkFuncFlow tracks, in source order, which engine produced each
// Ref-typed variable, and flags uses of a Ref with a different engine.
func checkFuncFlow(pass *framework.Pass, body *ast.BlockStmt) {
	produced := make(map[types.Object]engineKey)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// r := e.And(a, b) — remember r's producing engine. Multi-value
			// assignments and non-call RHS are ignored (conservative).
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if eng, ok := engineOf(pass, call); ok {
						if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isRef(obj.Type()) {
								produced[obj] = eng
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			eng, ok := engineOf(pass, n)
			if !ok {
				return true
			}
			for _, arg := range n.Args {
				switch a := ast.Unparen(arg).(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.ObjectOf(a)
					if obj == nil || !isRef(obj.Type()) {
						continue
					}
					if src, ok := produced[obj]; ok && !sameEngine(src, eng) {
						pass.Reportf(a.Pos(), "bdd.Ref %s was produced by engine %s but is used with engine %s", a.Name, src.expr, eng.expr)
					}
				case *ast.CallExpr:
					// e2.Or(e1.And(a, b), c) — nested cross-engine call.
					if src, ok := engineOf(pass, a); ok && !sameEngine(src, eng) {
						if tv, ok := pass.TypesInfo.Types[a]; ok && isRef(tv.Type) {
							pass.Reportf(a.Pos(), "bdd.Ref from engine %s passed directly to engine %s", src.expr, eng.expr)
						}
					}
				}
			}
		}
		return true
	})
}

func sameEngine(a, b engineKey) bool {
	if a.root != nil && b.root != nil && a.root != b.root {
		return false
	}
	return a.expr == b.expr
}

// checkStruct flags Ref-bearing structs without a *bdd.Engine field.
func checkStruct(pass *framework.Pass, name string, st *ast.StructType) {
	var refFields []*ast.Field
	hasEngine := false
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isEngine(tv.Type) {
			hasEngine = true
			continue
		}
		if bearsRef(tv.Type) {
			refFields = append(refFields, field)
		}
	}
	if hasEngine || len(refFields) == 0 {
		return
	}
	for _, field := range refFields {
		fname := "(embedded)"
		if len(field.Names) > 0 {
			fname = field.Names[0].Name
		}
		pass.Reportf(field.Pos(), "struct %s stores bdd.Ref field %s without a co-located engine field (*bdd.Engine, *atoms.Engine, or pred.Engine); document the owning engine with //flashvet:allow bddref", name, fname)
	}
}

// bearsRef reports whether t is bdd.Ref or a direct container of it.
// Named struct types are not recursed into: their own declaration is
// checked where it is defined.
func bearsRef(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Slice:
		return bearsRef(t.Elem())
	case *types.Array:
		return bearsRef(t.Elem())
	case *types.Map:
		return bearsRef(t.Key()) || bearsRef(t.Elem())
	default:
		return isRef(t)
	}
}

// Package stealsafe enforces the work-stealing scheduler's deque
// encapsulation: outside the deque's own methods, code may not touch a
// deque's fields.
//
// The scheduler's correctness argument (internal/sched) rests on a
// small protocol — a home token exists in at most one deque, owners pop
// from the front, thieves steal from the back, and every access happens
// under the deque's mutex. That protocol lives entirely inside the
// deque's method set; a stray `d.items` or `d.mu` in Pool code would
// bypass the lock (a data race the race detector only catches when a
// test happens to interleave badly) or break token uniqueness. The
// check is syntactic and total: within packages named "sched", any
// field selection on a value of type deque (or *deque) outside a method
// whose receiver is deque is flagged. Method calls on a deque are, of
// course, fine — they are the sanctioned surface.
package stealsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the stealsafe pass.
var Analyzer = &framework.Analyzer{
	Name: "stealsafe",
	Doc:  "flag deque field access outside the deque's own methods in the work-stealing scheduler",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Name() != "sched" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isDequeMethod(pass, fn) {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// isDequeMethod reports whether fn's receiver is deque or *deque —
// the only scope allowed to touch deque fields. Function literals do
// not get this privilege: a closure inside a deque method is still
// outside code for the purposes of the protocol.
func isDequeMethod(pass *framework.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	return isDeque(tv.Type)
}

func isDeque(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return framework.NamedIn(t, "sched", "deque")
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !isDeque(tv.Type) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"deque field %s accessed outside the deque's methods; all deque access must go through its method set (push/pop/steal hold the lock and preserve token uniqueness)",
			sel.Sel.Name)
		return true
	})
}

package stealsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/stealsafe"
)

func TestStealSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), stealsafe.Analyzer, "sched")
}

// Package sched is a miniature of the real scheduler: a deque whose
// fields are protocol-private to its method set, plus pool code that
// reaches into it both legally (method calls) and illegally (field
// access).
package sched

import "sync"

type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) pushBack(h int) {
	d.mu.Lock() // fine: deque's own method
	d.items = append(d.items, h)
	d.mu.Unlock()
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	h := d.items[0]
	d.items = d.items[1:]
	return h, true
}

func (d deque) size() int { // value receiver is still a deque method
	return len(d.items)
}

type Pool struct {
	deques []deque
}

func (p *Pool) Submit(h int) {
	p.deques[0].pushBack(h) // fine: the sanctioned method surface
}

func (p *Pool) Drain() {
	for {
		if _, ok := p.deques[0].popFront(); !ok {
			return
		}
	}
}

func (p *Pool) badPeek() int {
	return len(p.deques[0].items) // want `deque field items accessed outside the deque's methods`
}

func (p *Pool) badSteal() (int, bool) {
	d := &p.deques[0]
	d.mu.Lock()                   // want `deque field mu accessed outside the deque's methods`
	defer d.mu.Unlock()           // want `deque field mu accessed outside the deque's methods`
	if n := len(d.items); n > 0 { // want `deque field items accessed outside the deque's methods`
		h := d.items[n-1]       // want `deque field items accessed outside the deque's methods`
		d.items = d.items[:n-1] // want `deque field items` `deque field items`
		return h, true
	}
	return 0, false
}

// Acknowledged introspection: the directive is the documented escape
// hatch, e.g. for a white-box test helper.
//
//flashvet:allow stealsafe — read-only invariant probe, lock not needed in tests
func (p *Pool) debugDepth() int {
	return len(p.deques[0].items)
}

// Package nodeprecated keeps the module off its own deprecated API.
//
// The management-API PRs grew compatibility wrappers (System.Feed, the
// legacy stats getters, AdminHandler) that exist for external callers
// mid-migration; internal code calling them re-entrenches the old
// surface and hides the wrappers' eventual removal cost. The analyzer
// exports a DeprecatedFact for every symbol whose doc comment carries a
// standard "Deprecated:" paragraph and flags every use of such a symbol
// — same-package or, through the fact, cross-package.
//
// Uses inside another deprecated declaration are exempt (a deprecated
// wrapper may call its deprecated sibling; both leave together), as are
// the declarations themselves. Dedicated tests of the wrappers carry
// //flashvet:allow nodeprecated directives.
package nodeprecated

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis/framework"
)

// DeprecatedFact marks a symbol as deprecated, carrying the doc
// comment's explanation.
type DeprecatedFact struct {
	Msg string `json:"msg"`
}

// AFact marks DeprecatedFact as a framework fact.
func (*DeprecatedFact) AFact() {}

// Analyzer is the nodeprecated pass.
var Analyzer = &framework.Analyzer{
	Name:      "nodeprecated",
	Doc:       "flag internal uses of symbols documented as Deprecated:",
	FactTypes: []framework.Fact{(*DeprecatedFact)(nil)},
}

func init() { Analyzer.Run = run }

// deprecationOf extracts the message of a "Deprecated:" paragraph from
// a doc comment, per the standard Go convention.
func deprecationOf(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	lines := strings.Split(doc.Text(), "\n")
	for i, line := range lines {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:")
		if !ok {
			continue
		}
		parts := []string{strings.TrimSpace(rest)}
		for _, cont := range lines[i+1:] {
			cont = strings.TrimSpace(cont)
			if cont == "" {
				break
			}
			parts = append(parts, cont)
		}
		return strings.TrimSpace(strings.Join(parts, " ")), true
	}
	return "", false
}

type span struct{ start, end token.Pos }

func run(pass *framework.Pass) (any, error) {
	if pass.Facts == nil {
		// Keep the same-package half functional under fact-free drivers.
		pass.Facts = framework.NewFactSet([]*framework.Analyzer{Analyzer})
	}
	spans := exportDeprecated(pass)
	inDeprecated := func(pos token.Pos) bool {
		for _, s := range spans {
			if pos >= s.start && pos <= s.end {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id]
			if !ok || obj == nil || obj.Pkg() == nil {
				return true
			}
			var fact DeprecatedFact
			if !pass.ImportObjectFact(obj, &fact) {
				return true
			}
			if inDeprecated(id.Pos()) {
				return true
			}
			msg := fact.Msg
			if msg == "" {
				msg = "see its doc comment"
			}
			pass.Reportf(id.Pos(), "use of deprecated %s: %s", id.Name, msg)
			return true
		})
	}
	return nil, nil
}

// exportDeprecated exports a DeprecatedFact for every symbol declared
// with a Deprecated: paragraph and returns the declarations' source
// spans (uses inside them are exempt).
func exportDeprecated(pass *framework.Pass) []span {
	var spans []span
	mark := func(id *ast.Ident, msg string, decl ast.Node) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			pass.ExportObjectFact(obj, &DeprecatedFact{Msg: msg})
		}
		spans = append(spans, span{start: decl.Pos(), end: decl.End()})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if msg, ok := deprecationOf(d.Doc); ok {
					mark(d.Name, msg, d)
				}
			case *ast.GenDecl:
				declMsg, declOK := deprecationOf(d.Doc)
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if msg, ok := deprecationOf(sp.Doc); ok {
							mark(sp.Name, msg, sp)
						} else if declOK {
							mark(sp.Name, declMsg, d)
						}
					case *ast.ValueSpec:
						msg, ok := deprecationOf(sp.Doc)
						if !ok {
							msg, ok = declMsg, declOK
						}
						if ok {
							for _, name := range sp.Names {
								mark(name, msg, d)
							}
						}
					}
				}
			}
		}
	}
	return spans
}

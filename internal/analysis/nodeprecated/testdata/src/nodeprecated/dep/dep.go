// Package dep declares deprecated and current API, exercising
// DeprecatedFact export and the same-package checks.
package dep

// Feed is the legacy entry point.
//
// Deprecated: use FeedContext, which honors cancellation.
func Feed(b []byte) error { return FeedContext(nil, b) }

// FeedContext is the current entry point.
func FeedContext(ctx any, b []byte) error { _, _ = ctx, b; return nil }

// OldStats is the legacy stats bundle.
//
// Deprecated: use StatsSnapshot.
type OldStats struct{ Feeds int }

// Deprecated: tuning has moved to Config.
var LegacyKnob int

// StatsSnapshot is the current stats accessor.
func StatsSnapshot() int { return 0 }

// FeedAll is the deprecated batch form; a deprecated wrapper may call
// its deprecated sibling without a finding.
//
// Deprecated: use FeedContext per item.
func FeedAll(bs [][]byte) error {
	for _, b := range bs {
		if err := Feed(b); err != nil {
			return err
		}
	}
	return nil
}

// samePackageCaller is current code calling the legacy surface.
func samePackageCaller(b []byte) error {
	_ = LegacyKnob // want `use of deprecated LegacyKnob: tuning has moved to Config`
	return Feed(b) // want `use of deprecated Feed: use FeedContext, which honors cancellation`
}

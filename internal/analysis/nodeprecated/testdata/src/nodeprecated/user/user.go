// Cross-package nodeprecated cases: dep's DeprecatedFacts arrive here
// through the shared fact set.
package user

import "nodeprecated/dep"

// usesLegacy calls the deprecated surface from another package.
func usesLegacy(b []byte) error {
	var s dep.OldStats // want `use of deprecated OldStats: use StatsSnapshot`
	_ = s
	return dep.Feed(b) // want `use of deprecated Feed: use FeedContext, which honors cancellation`
}

// usesCurrent is clean.
func usesCurrent(b []byte) error {
	_ = dep.StatsSnapshot()
	return dep.FeedContext(nil, b)
}

// wrapperTest stands in for a dedicated compatibility-wrapper test,
// which documents its reason for touching the legacy surface.
//
//flashvet:allow nodeprecated dedicated coverage of the compatibility wrapper
func wrapperTest(b []byte) error {
	return dep.Feed(b)
}

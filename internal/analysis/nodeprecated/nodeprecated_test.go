package nodeprecated_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodeprecated"
)

func TestNoDeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nodeprecated.Analyzer,
		"nodeprecated/dep", "nodeprecated/user")
}

package obshook_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obshook"
)

func TestObsHook(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obshook.Analyzer, "obs", "imt")
}

// Package imt is a hot-path consumer stub for obshook's redundant
// nil-check rule.
package imt

import "obs"

type metrics struct {
	applied *obs.Counter
	ecs     *obs.Gauge
}

func (m metrics) record(n int64) {
	if m.applied != nil { // want `obs hook methods are nil-safe; drop the .m.applied != nil. guard`
		m.applied.Add(n)
	}
	m.applied.Add(n) // unconditional call: ok

	if m.ecs != nil { // guard gates real work (expensive argument): ok
		v := expensive()
		m.ecs.Set(v)
	}

	if m.ecs == nil { // inverted gating idiom: ok
		return
	}
	m.ecs.Set(expensive())
}

//flashvet:allow obshook — measured branch, see bench notes
func guarded(c *obs.Counter) {
	if c != nil {
		c.Add(1)
	}
}

func expensive() int64 { return 42 }

// Package obs is a stub of repro/internal/obs for analyzer tests,
// containing both correctly-guarded and unguarded hook methods.
package obs

// Counter is a stub hook type.
type Counter struct{ v int64 }

// Add is correctly guarded.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc delegates without its own guard.
func (c *Counter) Inc() { // want `exported obs hook method \(\*Counter\)\.Inc must begin with the nil-receiver guard`
	c.Add(1)
}

// Value is correctly guarded.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a stub hook type.
type Gauge struct{ v int64 }

// Set is missing the guard entirely.
func (g *Gauge) Set(n int64) { // want `exported obs hook method \(\*Gauge\)\.Set must begin with the nil-receiver guard`
	g.v = n
}

// Snapshot has a value receiver, which cannot be nil: ok.
func (g Gauge) Snapshot() int64 { return g.v }

// reset is unexported, outside the hook contract: ok.
func (g *Gauge) reset() { g.v = 0 }

//flashvet:allow obshook — internal constructor helper, never called on nil
func (g *Gauge) Bump() { g.v++ }

// Package obshook enforces the observability layer's nil-safe hook
// contract from both sides.
//
// In package obs (the provider side): every exported method with a
// pointer receiver on a hook type must begin with the nil-receiver
// guard (`if x == nil { return ... }`). The whole instrumentation
// design rests on "a nil handle is a predictable branch": hot paths
// hold possibly-nil *Counter/*Gauge/*Histogram handles and call them
// unconditionally. One missing guard turns the uninstrumented
// configuration into a panic.
//
// In the hot-path packages imt, ce2d, bdd and wire (the consumer side):
// an `if handle != nil { handle.M(...) }` block whose body consists
// solely of hook method calls is flagged — the check re-introduces the
// branch-per-call pattern the nil-safe design exists to remove, and it
// trains readers to believe the guard is load-bearing. Guards that
// gate real work (computing an expensive argument, taking a timestamp)
// are allowed, as is the inverted `if x == nil { return }` gating
// idiom used for expensive gauge refreshes.
package obshook

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the obshook pass.
var Analyzer = &framework.Analyzer{
	Name: "obshook",
	Doc:  "enforce nil-receiver guards on obs hook methods, and flag redundant nil checks around nil-safe obs calls in hot-path packages",
	Run:  run,
}

// hotPathPkgs are the packages where a redundant obs nil check costs
// clarity on the paper's measured paths.
var hotPathPkgs = map[string]bool{"imt": true, "ce2d": true, "bdd": true, "wire": true}

func run(pass *framework.Pass) (any, error) {
	switch {
	case pass.Pkg.Name() == "obs":
		checkProviders(pass)
	case hotPathPkgs[pass.Pkg.Name()]:
		checkConsumers(pass)
	}
	return nil, nil
}

// ---- Provider side: methods of package obs. ----

func checkProviders(pass *framework.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvName, ptr := receiver(pass, fd)
			if !ptr || recvName == "" {
				continue // value receivers cannot be nil
			}
			if len(fd.Body.List) == 0 {
				continue
			}
			if beginsWithNilGuard(pass, fd) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported obs hook method (*%s).%s must begin with the nil-receiver guard (if %s == nil { return ... })", recvName, fd.Name.Name, receiverIdent(fd))
		}
	}
}

// receiver returns the receiver's base type name and whether it is a
// pointer receiver.
func receiver(pass *framework.Pass, fd *ast.FuncDecl) (string, bool) {
	if len(fd.Recv.List) != 1 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	switch e := ast.Unparen(star.X).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.IndexExpr: // generic receiver
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

func receiverIdent(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name
	}
	return "recv"
}

// beginsWithNilGuard reports whether the first statement is
// `if recv == nil { return ... }` for the method's receiver.
func beginsWithNilGuard(pass *framework.Pass, fd *ast.FuncDecl) bool {
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil {
		return false
	}
	operand, ok := framework.IsNilComparison(ifs.Cond, token.EQL)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok || len(fd.Recv.List[0].Names) != 1 {
		return false
	}
	if pass.TypesInfo.ObjectOf(id) != pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0]) {
		return false
	}
	if len(ifs.Body.List) != 1 {
		return false
	}
	_, isReturn := ifs.Body.List[0].(*ast.ReturnStmt)
	return isReturn
}

// ---- Consumer side: hot-path packages. ----

func checkConsumers(pass *framework.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil || ifs.Else != nil {
				return true
			}
			operand, ok := framework.IsNilComparison(ifs.Cond, token.NEQ)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[operand]
			if !ok || !isHookPtr(tv.Type) {
				return true
			}
			if len(ifs.Body.List) == 0 {
				return true
			}
			for _, stmt := range ifs.Body.List {
				es, ok := stmt.(*ast.ExprStmt)
				if !ok {
					return true // body does real work; guard is load-bearing
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok || !isHookCall(pass, call) || !simpleArgs(call) {
					return true
				}
			}
			pass.Reportf(ifs.Pos(), "obs hook methods are nil-safe; drop the `%s != nil` guard and call unconditionally (hot-path nil checks defeat the pattern)", types.ExprString(operand))
			return true
		})
	}
}

// isHookPtr reports whether t is a pointer to one of obs's hook types.
func isHookPtr(t types.Type) bool {
	for _, name := range []string{"Counter", "Gauge", "Histogram", "Registry"} {
		if framework.PointerToNamed(t, "obs", name) {
			return true
		}
	}
	return false
}

// isHookCall reports whether call is a method call on an obs hook value.
func isHookCall(pass *framework.Pass, call *ast.CallExpr) bool {
	recv := framework.MethodReceiverExpr(call)
	if recv == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[recv]
	return ok && isHookPtr(tv.Type)
}

// simpleArgs reports whether every argument is cheap to evaluate
// (identifiers, selectors, literals, conversions and arithmetic over
// those — no function calls). A guard around a call with an expensive
// argument is considered intentional.
func simpleArgs(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if !simpleExpr(arg) {
			return false
		}
	}
	return true
}

func simpleExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.BasicLit, *ast.SelectorExpr:
		return true
	case *ast.UnaryExpr:
		return simpleExpr(e.X)
	case *ast.BinaryExpr:
		return simpleExpr(e.X) && simpleExpr(e.Y)
	case *ast.CallExpr:
		// Allow conversions like int64(x) and the len builtin; reject
		// anything else (function calls may be expensive).
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "int", "int32", "int64", "uint", "uint32", "uint64", "float64", "len", "cap":
				return len(e.Args) == 1 && simpleExpr(e.Args[0])
			}
		}
		return false
	default:
		return false
	}
}

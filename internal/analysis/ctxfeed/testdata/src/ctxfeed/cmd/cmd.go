// Command cmd shows that package main is exempt: binaries are where
// root contexts are born.
package main

import "context"

func main() {
	ctx := context.Background() // package main: ok
	_ = ctx
}

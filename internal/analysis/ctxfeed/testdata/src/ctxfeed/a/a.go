// Package a is library code: contexts must flow in from callers.
package a

import "context"

func process(ctx context.Context) error {
	_ = context.Background() // want `library code must not call context.Background\(\)`
	_ = context.TODO()       // want `library code must not call context.TODO\(\)`
	ctx2, cancel := context.WithTimeout(ctx, 0) // derives from the caller: ok
	defer cancel()
	_ = ctx2
	return ctx.Err()
}

// Feed is the documented compatibility wrapper for context-free callers.
//
//flashvet:allow ctxfeed — wrapper exists to mint the root context
func Feed() context.Context {
	return context.Background()
}

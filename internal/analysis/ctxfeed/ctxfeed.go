// Package ctxfeed keeps context plumbing honest in library code.
//
// The PR-1 API redesign threaded context.Context through the whole feed
// path (FeedContext, ServeContext, ...) so callers can cancel long
// verification runs and attach deadlines. A library function that calls
// context.Background() or context.TODO() silently detaches its subtree
// from that chain: cancellation stops propagating and the caller's
// deadline is ignored, which on a CE2D-scale run means an unkillable
// verifier.
//
// Flagged: any call to context.Background or context.TODO outside
// package main and outside test files. The two documented compatibility
// wrappers (Service.Feed and Pipeline.Feed, which exist precisely to
// give context-free callers a root context) carry //flashvet:allow
// ctxfeed directives.
package ctxfeed

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the ctxfeed pass.
var Analyzer = &framework.Analyzer{
	Name: "ctxfeed",
	Doc:  "flag context.Background()/context.TODO() in library code; contexts must flow from the caller",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // binaries are where root contexts are born
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.FileStart), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			switch fn.Name() {
			case "Background", "TODO":
				pass.Reportf(call.Pos(), "library code must not call context.%s(); accept a context.Context from the caller so cancellation reaches the verification pipeline", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}

package ctxfeed_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxfeed"
)

func TestCtxFeed(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxfeed.Analyzer, "ctxfeed/a", "ctxfeed/cmd")
}

// Package lockorder enforces the serving plane's lock hierarchy.
//
// Flash's serving plane nests its mutexes in one documented order (see
// DESIGN.md §6):
//
//	System.dispatchMu / ModelBuilder.dispatchMu  rank 10
//	sysWorker.mu / mbWorker.mu                   rank 20
//	verdictBus.mu                                rank 30
//	Snapshot.mu                                  rank 40
//
// Acquiring a mutex whose rank is not strictly greater than every rank
// already held can deadlock against a thread locking in the documented
// order; the race detector only catches the interleavings that actually
// happen, while this check catches the ones that could.
//
// Ranks are declared in source with a directive on the mutex's field
// (or package-level variable) declaration:
//
//	dispatchMu sync.Mutex //flashvet:lockrank 10
//
// and exported as LockRankFacts, so a ranked mutex declared in one
// package constrains lockers in every importing package. Each function
// additionally exports an AcquiresFact listing the ranks it may lock
// (directly or transitively), letting the checker flag a call into
// rank-r-acquiring code made while holding rank >= r — across package
// boundaries.
//
// Lock state is tracked path-sensitively over the framework CFG with a
// may-hold forward dataflow. A deferred Unlock never releases: the lock
// is held until function exit, which is the conservative reading a
// hierarchy check wants. Unranked mutexes (leaf locks like Pipeline.mu)
// are ignored.
package lockorder

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis/framework"
)

// LockRankFact gives a mutex field or variable its position in the lock
// hierarchy.
type LockRankFact struct {
	Rank int `json:"rank"`
}

// AFact marks LockRankFact as a framework fact.
func (*LockRankFact) AFact() {}

// AcquiresFact lists the ranked locks a function may acquire, directly
// or transitively (parallel slices, sorted by rank).
type AcquiresFact struct {
	Ranks []int    `json:"ranks"`
	Names []string `json:"names"`
}

// AFact marks AcquiresFact as a framework fact.
func (*AcquiresFact) AFact() {}

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name:      "lockorder",
	Doc:       "flag mutex acquisitions that violate the declared //flashvet:lockrank hierarchy",
	FactTypes: []framework.Fact{(*LockRankFact)(nil), (*AcquiresFact)(nil)},
}

func init() { Analyzer.Run = run }

const rankDirective = "//flashvet:lockrank"

// parseRank parses a `//flashvet:lockrank N` comment.
func parseRank(text string) (int, bool) {
	rest, ok := strings.CutPrefix(text, rankDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return 0, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return n, true
}

func run(pass *framework.Pass) (any, error) {
	if pass.Facts == nil {
		// Keep the intra-package half functional under fact-free drivers.
		pass.Facts = framework.NewFactSet([]*framework.Analyzer{Analyzer})
	}
	exportRanks(pass)
	exportAcquires(pass)
	for _, f := range pass.Files {
		framework.EachFuncBody(f, func(fb framework.FuncBody) {
			checkBody(pass, fb.Body)
		})
	}
	return nil, nil
}

// exportRanks finds //flashvet:lockrank directives on mutex field and
// package-level variable declarations and exports their LockRankFacts.
func exportRanks(pass *framework.Pass) {
	rankOfComments := func(groups ...*ast.CommentGroup) (int, bool) {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if n, ok := parseRank(c.Text); ok {
					return n, ok
				}
			}
		}
		return 0, false
	}
	export := func(names []*ast.Ident, rank int) {
		for _, name := range names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !framework.IsSyncMutex(obj.Type()) {
				pass.Reportf(name.Pos(), "//flashvet:lockrank on %s, which is not a sync.Mutex or sync.RWMutex", name.Name)
				continue
			}
			pass.ExportObjectFact(obj, &LockRankFact{Rank: rank})
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if rank, ok := rankOfComments(n.Doc, n.Comment); ok {
					export(n.Names, rank)
				}
			case *ast.GenDecl:
				// An unparenthesized `var` attaches the doc comment to the
				// GenDecl, not the ValueSpec.
				if rank, ok := rankOfComments(n.Doc); ok {
					for _, spec := range n.Specs {
						if vs, isVar := spec.(*ast.ValueSpec); isVar {
							export(vs.Names, rank)
						}
					}
				}
			case *ast.ValueSpec:
				if rank, ok := rankOfComments(n.Doc, n.Comment); ok {
					export(n.Names, rank)
				}
			}
			return true
		})
	}
}

// rankOf resolves the rank of the mutex behind a Lock/Unlock receiver
// expression, with a diagnostic-friendly name.
func rankOf(pass *framework.Pass, recv ast.Expr) (obj types.Object, rank int, name string, ok bool) {
	obj = framework.MutexFieldObj(pass.TypesInfo, recv)
	if obj == nil {
		return nil, 0, "", false
	}
	var fact LockRankFact
	if !pass.ImportObjectFact(obj, &fact) {
		return nil, 0, "", false
	}
	name = obj.Name()
	if obj.Pkg() != nil {
		if p, okP := framework.ObjectPath(obj.Pkg(), obj); okP {
			name = p
		}
	}
	return obj, fact.Rank, name, true
}

// lockEvent is one ranked-lock acquisition or hand-off inside a node.
type lockEvent struct {
	call *ast.CallExpr
	// op: "lock", "unlock", or "call" (into a function with an
	// AcquiresFact).
	op       string
	obj      types.Object // the mutex (lock/unlock)
	rank     int          // acquired rank (lock) — unused for unlock
	name     string
	acquires *AcquiresFact // for op == "call"
	callee   string
}

// nodeEvents extracts the ranked lock events of one CFG node in source
// order. Function literals are separate scopes and skipped. A deferred
// Unlock releases at exit, not here, so it produces no event; a
// deferred Lock is nonsense and ignored.
func nodeEvents(pass *framework.Pass, n ast.Node) []lockEvent {
	deferred := make(map[*ast.CallExpr]bool)
	var events []lockEvent
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred[m.Call] = true
		case *ast.CallExpr:
			if recv, opName, ok := framework.MutexOp(pass.TypesInfo, m); ok {
				obj, rank, name, ranked := rankOf(pass, recv)
				if !ranked || deferred[m] {
					return true
				}
				switch opName {
				case "Lock", "RLock":
					events = append(events, lockEvent{call: m, op: "lock", obj: obj, rank: rank, name: name})
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{call: m, op: "unlock", obj: obj, name: name})
				}
				return true
			}
			if callee := framework.CalleeFunc(pass.TypesInfo, m); callee != nil {
				var fact AcquiresFact
				if pass.ImportObjectFact(callee, &fact) {
					events = append(events, lockEvent{call: m, op: "call", acquires: &fact, callee: callee.Name()})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].call.Pos() < events[j].call.Pos() })
	return events
}

// held is the dataflow state: mutex object -> (rank, name) for every
// ranked lock that may be held.
type heldInfo struct {
	Rank int
	Name string
}

func cloneHeld(s map[types.Object]heldInfo) map[types.Object]heldInfo {
	out := make(map[types.Object]heldInfo, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// checkBody runs the may-hold analysis over one function body and
// reports hierarchy violations.
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	g := pass.CFG(body)
	spec := framework.FlowSpec[map[types.Object]heldInfo]{
		Dir:      framework.Forward,
		Boundary: map[types.Object]heldInfo{},
		Bottom:   func() map[types.Object]heldInfo { return nil },
		Join: func(a, b map[types.Object]heldInfo) map[types.Object]heldInfo {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := cloneHeld(a)
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b map[types.Object]heldInfo) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *framework.Block, in map[types.Object]heldInfo) map[types.Object]heldInfo {
			if in == nil {
				return nil // unreached
			}
			out := cloneHeld(in)
			for _, n := range b.Nodes {
				for _, ev := range nodeEvents(pass, n) {
					applyEvent(out, ev, nil)
				}
			}
			return out
		},
	}
	before, _ := framework.Solve(g, spec)

	// Reporting sweep: replay each reachable block from its fixpoint
	// in-state, deduplicating by position (a block can sit on many
	// paths).
	reported := make(map[ast.Node]bool)
	for _, b := range g.ReachableBlocks() {
		state := before[b]
		if state == nil {
			state = map[types.Object]heldInfo{}
		}
		state = cloneHeld(state)
		for _, n := range b.Nodes {
			for _, ev := range nodeEvents(pass, n) {
				applyEvent(state, ev, func(format string, args ...any) {
					if !reported[ev.call] {
						reported[ev.call] = true
						pass.Reportf(ev.call.Pos(), format, args...)
					}
				})
			}
		}
	}
}

// applyEvent threads one lock event through the state, reporting
// violations when report is non-nil.
func applyEvent(state map[types.Object]heldInfo, ev lockEvent, report func(string, ...any)) {
	switch ev.op {
	case "lock":
		if report != nil {
			for obj, h := range state {
				if h.Rank >= ev.rank && obj != ev.obj {
					report("acquires %s (rank %d) while holding %s (rank %d); the lock hierarchy requires strictly increasing ranks", ev.name, ev.rank, h.Name, h.Rank)
				} else if obj == ev.obj {
					report("reacquires %s (rank %d) already held; self-deadlock", ev.name, ev.rank)
				}
			}
		}
		state[ev.obj] = heldInfo{Rank: ev.rank, Name: ev.name}
	case "unlock":
		delete(state, ev.obj)
	case "call":
		if report != nil {
			for _, i := range violationsOf(state, ev.acquires) {
				report("call to %s acquires %s (rank %d) while holding a lock of rank >= %d; the lock hierarchy requires strictly increasing ranks", ev.callee, ev.acquires.Names[i], ev.acquires.Ranks[i], ev.acquires.Ranks[i])
			}
		}
	}
}

// violationsOf returns the indexes of the callee's acquisitions that
// conflict with the held set.
func violationsOf(state map[types.Object]heldInfo, f *AcquiresFact) []int {
	var out []int
	for i, r := range f.Ranks {
		for _, h := range state {
			if h.Rank >= r {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// exportAcquires computes, to a fixpoint, the ranked locks each
// function of this package may acquire (directly or via callees) and
// exports AcquiresFacts.
func exportAcquires(pass *framework.Pass) {
	type acq struct {
		rank int
		name string
	}
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var fns []fn
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
					fns = append(fns, fn{obj: obj, body: fd.Body})
				}
			}
		}
	}
	exported := make(map[*types.Func]int) // last exported count, for change detection
	for round := 0; round <= len(fns); round++ {
		changed := false
		for _, f := range fns {
			set := make(map[acq]bool)
			for _, ev := range nodeEvents(pass, f.body) {
				switch ev.op {
				case "lock":
					set[acq{rank: ev.rank, name: ev.name}] = true
				case "call":
					for i, r := range ev.acquires.Ranks {
						set[acq{rank: r, name: ev.acquires.Names[i]}] = true
					}
				}
			}
			if len(set) == 0 || len(set) == exported[f.obj] {
				continue
			}
			list := make([]acq, 0, len(set))
			for a := range set {
				list = append(list, a)
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].rank != list[j].rank {
					return list[i].rank < list[j].rank
				}
				return list[i].name < list[j].name
			})
			fact := &AcquiresFact{}
			for _, a := range list {
				fact.Ranks = append(fact.Ranks, a.rank)
				fact.Names = append(fact.Names, a.name)
			}
			pass.ExportObjectFact(f.obj, fact)
			exported[f.obj] = len(set)
			changed = true
		}
		if !changed {
			break
		}
	}
}

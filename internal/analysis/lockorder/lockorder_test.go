package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// locks before c: c imports locks' LockRankFact and AcquiresFact
	// through the shared fact set, in dependency order.
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer,
		"lockorder/a", "lockorder/locks", "lockorder/c")
}

// Package locks declares a ranked mutex and a function that acquires
// it, exercising LockRankFact and AcquiresFact export for the
// cross-package cases in lockorder/c.
package locks

import "sync"

// Registry owns the cross-package ranked lock.
type Registry struct {
	Mu sync.Mutex //flashvet:lockrank 10
}

// WithRegistry runs fn under the registry lock; callers holding any
// rank >= 10 must not call it.
func (r *Registry) WithRegistry(fn func()) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	fn()
}

// Cross-package lockorder cases: the rank of locks.Registry.Mu and the
// acquisitions of locks.WithRegistry were established while analyzing
// package locks and arrive here as facts.
package c

import (
	"sync"

	"lockorder/locks"
)

type cache struct {
	mu sync.Mutex //flashvet:lockrank 20
}

// directInversion locks the imported ranked mutex while holding a
// higher rank.
func directInversion(r *locks.Registry, c *cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.Mu.Lock() // want `acquires Registry\.Mu \(rank 10\) while holding cache\.mu \(rank 20\)`
	r.Mu.Unlock()
}

// callInversion reaches the imported rank-10 lock through the callee's
// AcquiresFact.
func callInversion(r *locks.Registry, c *cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.WithRegistry(func() {}) // want `call to WithRegistry acquires Registry\.Mu \(rank 10\) while holding a lock of rank >= 10`
}

// goodOrder nests the imported lock first.
func goodOrder(r *locks.Registry, c *cache) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}

// goodCall calls into the registry without holding anything.
func goodCall(r *locks.Registry) {
	r.WithRegistry(func() {})
}

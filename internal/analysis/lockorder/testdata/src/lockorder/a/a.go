// Single-package lockorder cases over an annotated three-level
// hierarchy.
package a

import "sync"

type System struct {
	dispatchMu sync.Mutex //flashvet:lockrank 10
	busMu      sync.Mutex //flashvet:lockrank 30
}

type worker struct {
	mu sync.Mutex //flashvet:lockrank 20
}

//flashvet:lockrank 15
var globalMu sync.RWMutex

//flashvet:lockrank 5
var notALock int // want `lockrank on notALock, which is not a sync\.Mutex`

// goodNesting locks in strictly increasing rank order.
func goodNesting(s *System, w *worker) {
	s.dispatchMu.Lock()
	w.mu.Lock()
	s.busMu.Lock()
	s.busMu.Unlock()
	w.mu.Unlock()
	s.dispatchMu.Unlock()
}

// skipLevels is fine: ranks need not be consecutive.
func skipLevels(s *System) {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	s.busMu.Lock()
	defer s.busMu.Unlock()
}

// inversion acquires the dispatch lock while holding the worker lock.
func inversion(s *System, w *worker) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s.dispatchMu.Lock() // want `acquires System\.dispatchMu \(rank 10\) while holding worker\.mu \(rank 20\)`
	s.dispatchMu.Unlock()
}

// sameRank flags equal ranks too: equal is not strictly increasing.
func sameRank(s *System, w *worker) {
	globalMu.RLock()
	defer globalMu.RUnlock()
	globalMu2().Lock() // nothing: unranked mutexes are ignored
	s.dispatchMu.Lock() // want `acquires System\.dispatchMu \(rank 10\) while holding globalMu \(rank 15\)`
	s.dispatchMu.Unlock()
}

var plainMu sync.Mutex

func globalMu2() *sync.Mutex { return &plainMu }

// reacquire self-deadlocks.
func reacquire(w *worker) {
	w.mu.Lock()
	w.mu.Lock() // want `reacquires worker\.mu \(rank 20\) already held; self-deadlock`
	w.mu.Unlock()
	w.mu.Unlock()
}

// sequentialSameRank is fine: the first hold ends before the second
// begins.
func sequentialSameRank(s *System, w *worker) {
	w.mu.Lock()
	w.mu.Unlock()
	w.mu.Lock()
	w.mu.Unlock()
	_ = s
}

// deferredUnlockHolds: a deferred unlock releases only at exit, so the
// later lower-rank acquisition still violates.
func deferredUnlockHolds(s *System, w *worker) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s.dispatchMu.Lock() // want `acquires System\.dispatchMu \(rank 10\) while holding worker\.mu \(rank 20\)`
	s.dispatchMu.Unlock()
}

// branchMayHold: one path keeps the worker lock held; may-hold analysis
// still flags the join.
func branchMayHold(s *System, w *worker, keep bool) {
	w.mu.Lock()
	if !keep {
		w.mu.Unlock()
	}
	s.dispatchMu.Lock() // want `acquires System\.dispatchMu \(rank 10\) while holding worker\.mu \(rank 20\)`
	s.dispatchMu.Unlock()
	if keep {
		w.mu.Unlock()
	}
}

// closureIsSeparate: a closure's body is its own lock scope.
func closureIsSeparate(s *System, w *worker) func() {
	w.mu.Lock()
	defer w.mu.Unlock()
	return func() {
		s.dispatchMu.Lock() // runs later, not under w.mu
		s.dispatchMu.Unlock()
	}
}

// allowedInversion documents a deliberate exception.
//
//flashvet:allow lockorder boot path runs single-threaded before workers start
func allowedInversion(s *System, w *worker) {
	w.mu.Lock()
	s.dispatchMu.Lock()
	s.dispatchMu.Unlock()
	w.mu.Unlock()
}

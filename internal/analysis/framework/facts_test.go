package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func (*testFact) AFact() {}

func typecheck(t *testing.T, src string) (*types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "facts_test_src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: make(map[*ast.Ident]types.Object), Uses: make(map[*ast.Ident]types.Object)}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, info
}

const factSrc = `package p

type T struct {
	Field int
	mu    int
}

func (t *T) Method() {}

func Fn() {}

var V int
`

func TestObjectPathRoundTrip(t *testing.T) {
	pkg, _ := typecheck(t, factSrc)
	for _, want := range []string{"Fn", "V", "T", "T.Method", "T.Field", "T.mu"} {
		obj := LookupObjectPath(pkg, want)
		if obj == nil {
			t.Fatalf("LookupObjectPath(%q) = nil", want)
		}
		got, ok := ObjectPath(pkg, obj)
		if !ok || got != want {
			t.Errorf("ObjectPath(%v) = %q, %v; want %q", obj, got, ok, want)
		}
	}
}

func TestFactEncodeDecode(t *testing.T) {
	pkg, _ := typecheck(t, factSrc)
	an := &Analyzer{Name: "testan", FactTypes: []Fact{(*testFact)(nil)}}
	fs := NewFactSet([]*Analyzer{an})
	pass := &Pass{Analyzer: an, Pkg: pkg, Facts: fs}

	fn := pkg.Scope().Lookup("Fn")
	method := LookupObjectPath(pkg, "T.Method")
	field := LookupObjectPath(pkg, "T.Field")
	pass.ExportObjectFact(fn, &testFact{N: 1, S: "fn"})
	pass.ExportObjectFact(method, &testFact{N: 2, S: "method"})
	pass.ExportObjectFact(field, &testFact{N: 3, S: "field"})
	pass.ExportPackageFact(&testFact{N: 4, S: "pkg"})

	data, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// A second run (fresh FactSet, fresh load of the same package)
	// decodes and resolves the facts by path.
	pkg2, _ := typecheck(t, factSrc)
	fs2 := NewFactSet([]*Analyzer{an})
	if err := fs2.Decode(data); err != nil {
		t.Fatal(err)
	}
	pass2 := &Pass{Analyzer: an, Pkg: pkg2, Facts: fs2}

	var got testFact
	if !pass2.ImportObjectFact(pkg2.Scope().Lookup("Fn"), &got) || got.N != 1 {
		t.Errorf("Fn fact = %+v after round trip", got)
	}
	if !pass2.ImportObjectFact(LookupObjectPath(pkg2, "T.Method"), &got) || got.S != "method" {
		t.Errorf("T.Method fact = %+v after round trip", got)
	}
	if !pass2.ImportObjectFact(LookupObjectPath(pkg2, "T.Field"), &got) || got.N != 3 {
		t.Errorf("T.Field fact = %+v after round trip", got)
	}
	if !pass2.ImportPackageFact(pkg2, &got) || got.S != "pkg" {
		t.Errorf("package fact = %+v after round trip", got)
	}

	// A fact type the run does not know is skipped, not an error.
	unknown := []byte(`[{"analyzer":"nosuch","package":"example.com/p","type":"mystery","data":{}}]`)
	if err := fs2.Decode(unknown); err != nil {
		t.Errorf("unknown fact type should be skipped: %v", err)
	}

	// Facts of one analyzer are invisible to another.
	other := &Analyzer{Name: "other", FactTypes: []Fact{(*testFact)(nil)}}
	pass3 := &Pass{Analyzer: other, Pkg: pkg2, Facts: fs2}
	if pass3.ImportObjectFact(pkg2.Scope().Lookup("Fn"), &got) {
		t.Errorf("fact leaked across analyzers")
	}

	// Nil-safe without a FactSet.
	passNil := &Pass{Analyzer: an, Pkg: pkg2}
	passNil.ExportPackageFact(&testFact{})
	if passNil.ImportPackageFact(pkg2, &got) {
		t.Errorf("nil FactSet should import nothing")
	}
}

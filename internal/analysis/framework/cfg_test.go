package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a function body (the source of a complete function
// declaration) and builds its CFG.
func buildCFG(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return NewCFG(fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// pathsToExit enumerates all acyclic Entry→Exit paths (bounded).
func pathsToExit(g *CFG) int {
	var count int
	var walk func(b *Block, seen map[*Block]bool)
	walk = func(b *Block, seen map[*Block]bool) {
		if b == g.Exit {
			count++
			return
		}
		if seen[b] || count > 1000 {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s, seen)
		}
		delete(seen, b)
	}
	walk(g.Entry, map[*Block]bool{})
	return count
}

// blockOf finds the reachable block containing a node whose source
// rendering contains want.
func blockOf(t *testing.T, g *CFG, fset *token.FileSet, want string, src string) *Block {
	t.Helper()
	for _, b := range g.ReachableBlocks() {
		for _, n := range b.Nodes {
			start := fset.Position(n.Pos()).Offset
			end := fset.Position(n.End()).Offset
			full := "package p\n" + src
			if start >= 0 && end <= len(full) && strings.Contains(full[start:end], want) {
				return b
			}
		}
	}
	t.Fatalf("no reachable block contains %q\n%s", want, g.String())
	return nil
}

func TestCFGIfElseShortCircuit(t *testing.T) {
	src := `func f(a, b, c bool) int {
	if a && (b || !c) {
		return 1
	}
	return 2
}`
	g, fset := buildCFG(t, src)
	// Conditions are split: a, b, c each get their own condition block.
	for _, name := range []string{"a", "b", "c"} {
		blk := blockOf(t, g, fset, name, src)
		tt, ff, ok := blk.CondBlock()
		if !ok {
			t.Fatalf("condition %s not a two-way block: %s", name, g.String())
		}
		if tt == ff {
			t.Fatalf("condition %s has identical branches", name)
		}
	}
	// !c swaps the edge sense: c's true edge goes where b's false edge
	// would fail the &&, i.e. to the else path (return 2's block).
	cBlk := blockOf(t, g, fset, "c", src)
	ret1 := blockOf(t, g, fset, "return 1", src)
	cTrue, cFalse, _ := cBlk.CondBlock()
	if cFalse != ret1 {
		t.Errorf("!c false edge should reach 'return 1', got block %d (%s)", cFalse.Index, g.String())
	}
	if cTrue == ret1 {
		t.Errorf("!c true edge must not reach 'return 1' directly")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	src := `func f(xs [][]int) int {
outer:
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] < 0 {
				break outer
			}
			if xs[i][j] == 0 {
				break
			}
		}
		println(i)
	}
	return 0
}`
	g, fset := buildCFG(t, src)
	ret := blockOf(t, g, fset, "return 0", src)
	breakOuter := blockOf(t, g, fset, "break outer", src)
	// break outer jumps straight past the println post-body code to the
	// outer loop's done block, from which only return 0 is reachable.
	if len(breakOuter.Succs) != 1 {
		t.Fatalf("break outer should have one successor, got %d", len(breakOuter.Succs))
	}
	outerDone := breakOuter.Succs[0]
	seen := map[*Block]bool{}
	stack := []*Block{outerDone}
	foundPrintln := false
	foundReturn := false
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == ret {
			foundReturn = true
		}
		for _, n := range b.Nodes {
			if call, ok := n.(*ast.ExprStmt); ok {
				if c, ok := call.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "println" {
						foundPrintln = true
					}
				}
			}
		}
		stack = append(stack, b.Succs...)
	}
	if !foundReturn {
		t.Errorf("break outer cannot reach the return:\n%s", g.String())
	}
	if foundPrintln {
		t.Errorf("break outer must not flow through the outer loop body's println:\n%s", g.String())
	}
	// The unlabeled break exits only the inner loop: println stays
	// reachable from it.
	condEq := blockOf(t, g, fset, "== 0", src)
	breakInner, _, ok := condEq.CondBlock()
	if !ok {
		t.Fatalf("xs[i][j] == 0 should be a condition block:\n%s", g.String())
	}
	seen = map[*Block]bool{}
	stack = []*Block{breakInner}
	foundPrintln = false
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, n := range b.Nodes {
			start := fset.Position(n.Pos()).Offset
			end := fset.Position(n.End()).Offset
			if strings.Contains(("package p\n" + src)[start:end], "println") {
				foundPrintln = true
			}
		}
		stack = append(stack, b.Succs...)
	}
	if !foundPrintln {
		t.Errorf("unlabeled break should still reach println:\n%s", g.String())
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	src := `func f(n int) {
	for i := 0; i < n; i++ {
		defer println(i)
	}
}`
	g, fset := buildCFG(t, src)
	deferBlk := blockOf(t, g, fset, "defer", src)
	if deferBlk.Kind != "for.body" {
		t.Errorf("defer should sit in the loop body block, got %q", deferBlk.Kind)
	}
	if _, ok := deferBlk.Nodes[len(deferBlk.Nodes)-1].(*ast.DeferStmt); !ok {
		t.Errorf("defer statement not recorded as a node")
	}
	// The loop head is a condition block: true edge to body, false to done.
	head := blockOf(t, g, fset, "i < n", src)
	tt, ff, ok := head.CondBlock()
	if !ok {
		t.Fatalf("loop head not a condition block:\n%s", g.String())
	}
	if tt != deferBlk {
		t.Errorf("true edge of loop head should be the body")
	}
	// The false edge falls off the end to Exit.
	if ff != g.Exit && (len(ff.Succs) != 1 || ff.Succs[0] != g.Exit) {
		t.Errorf("false edge should reach Exit:\n%s", g.String())
	}
	// Back edge exists: body (via post) reaches head again.
	if pathsToExit(g) == 0 {
		t.Errorf("no path to exit")
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	src := `func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}`
	g, _ := buildCFG(t, src)
	// Entry fans out to exactly the two comm clauses; both return, so
	// exactly two paths reach Exit and the select.done block is dead.
	if got := len(g.Entry.Succs); got != 2 {
		t.Fatalf("select head should have 2 successors (case + default), got %d:\n%s", got, g.String())
	}
	if got := pathsToExit(g); got != 2 {
		t.Errorf("want 2 Entry→Exit paths, got %d:\n%s", got, g.String())
	}

	// Without a default, the head must NOT have an extra bypass edge.
	src2 := `func f(a, b chan int) {
	select {
	case <-a:
	case <-b:
	}
	println()
}`
	g2, _ := buildCFG(t, src2)
	if got := len(g2.Entry.Succs); got != 2 {
		t.Errorf("no-default select head should have exactly its 2 case edges, got %d:\n%s", got, g2.String())
	}
}

func TestCFGGotoForward(t *testing.T) {
	src := `func f(x int) int {
	if x > 0 {
		goto done
	}
	x = -x
done:
	return x
}`
	g, fset := buildCFG(t, src)
	gotoBlk := blockOf(t, g, fset, "goto done", src)
	retBlk := blockOf(t, g, fset, "return x", src)
	found := false
	for _, s := range gotoBlk.Succs {
		if s == retBlk {
			found = true
		}
	}
	if !found {
		t.Errorf("goto done should edge to the labeled block:\n%s", g.String())
	}
	if got := pathsToExit(g); got != 2 {
		t.Errorf("want 2 paths (goto, fallthrough), got %d", got)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	src := `func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x += 2
	default:
		x = 0
	}
	return x
}`
	g, fset := buildCFG(t, src)
	case1 := blockOf(t, g, fset, "x++", src)
	case2 := blockOf(t, g, fset, "x += 2", src)
	found := false
	for _, s := range case1.Succs {
		if s == case2 {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough should edge case 1 into case 2's block:\n%s", g.String())
	}
	// default exists, so the dispatch block has no bypass edge: its
	// successors are exactly the three clause blocks.
	if got := len(g.Entry.Succs); got != 3 {
		t.Errorf("switch head should have 3 clause edges, got %d:\n%s", got, g.String())
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	src := `func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}`
	g, fset := buildCFG(t, src)
	panicBlk := blockOf(t, g, fset, "panic", src)
	if len(panicBlk.Succs) != 0 {
		t.Errorf("panic block must have no successors, got %d", len(panicBlk.Succs))
	}
	if got := pathsToExit(g); got != 1 {
		t.Errorf("only the non-panic path reaches Exit; got %d paths", got)
	}
}

func TestCFGRangeMayNotExecute(t *testing.T) {
	src := `func f(xs []int) {
	for range xs {
		println()
	}
}`
	g, fset := buildCFG(t, src)
	head := blockOf(t, g, fset, "xs", src)
	if len(head.Succs) != 2 {
		t.Fatalf("range head needs body + done successors, got %d", len(head.Succs))
	}
	body, done := head.Succs[0], head.Succs[1]
	backEdge := false
	for _, s := range body.Succs {
		if s == head {
			backEdge = true
		}
	}
	if !backEdge {
		t.Errorf("range body needs a back edge to the head:\n%s", g.String())
	}
	if len(done.Succs) != 1 || done.Succs[0] != g.Exit {
		t.Errorf("range done should fall through to Exit:\n%s", g.String())
	}
	// The zero-iteration path is the only acyclic one.
	if got := pathsToExit(g); got != 1 {
		t.Errorf("want 1 acyclic path (zero iterations), got %d", got)
	}
}

// TestCFGSolveLiveLocks exercises the worklist solver with a may-held
// lock analysis over a diamond: a lock taken on one branch only is
// may-held at the join.
func TestCFGSolveLiveLocks(t *testing.T) {
	src := `func f(cond bool) {
	if cond {
		lock()
	}
	use()
}`
	g, fset := buildCFG(t, src)
	type state = map[string]bool
	calls := func(b *Block) []string {
		var out []string
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok {
						out = append(out, id.Name)
					}
				}
				return true
			})
		}
		return out
	}
	before, _ := Solve(g, FlowSpec[state]{
		Dir:      Forward,
		Boundary: state{},
		Bottom:   func() state { return state{} },
		Join: func(a, b state) state {
			out := state{}
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b state) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in state) state {
			out := state{}
			for k := range in {
				out[k] = true
			}
			for _, c := range calls(b) {
				if c == "lock" {
					out["mu"] = true
				}
			}
			return out
		},
	})
	useBlk := blockOf(t, g, fset, "use()", src)
	if !before[useBlk]["mu"] {
		t.Errorf("lock taken on one branch must be may-held at the join:\n%s", g.String())
	}
	if before[g.Entry]["mu"] {
		t.Errorf("entry state polluted")
	}
}

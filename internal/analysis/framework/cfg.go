// Control-flow graph construction for the flashvet dataflow platform.
//
// NewCFG lowers one function body into basic blocks connected by
// directed edges, purely from syntax (no type information needed):
// if/else with short-circuit && || ! expansion, for and range loops,
// switch/type-switch (including fallthrough), select (including
// default), labeled break/continue, goto, and defer. It mirrors the
// shape of golang.org/x/tools/go/cfg, which the offline build cannot
// vendor.
//
// Conventions analyzers rely on:
//
//   - A block's Nodes are the statements and condition expressions that
//     execute in it, in source order. Compound statements contribute
//     only their own evaluated parts (an *ast.IfStmt contributes its
//     Init and Cond; the branches become separate blocks), so walking a
//     block's Nodes never re-visits another block's code — except that
//     nested *ast.FuncLit bodies are NOT expanded into the graph and
//     appear verbatim inside the node that mentions them (analyzers
//     that care must skip or recurse explicitly).
//
//   - A block whose last node is a condition expression has exactly two
//     successors: Succs[0] is the true edge, Succs[1] the false edge.
//     Short-circuit operators are expanded, so each condition node is
//     an atomic (non-&&/||/!) expression.
//
//   - *ast.DeferStmt appears as an ordinary node at the point the defer
//     is queued. Because a queued defer runs at every subsequent
//     function exit, flow analyses may treat its call as executing on
//     every path downstream of the node (the sound reading for
//     resource-release checks, modulo panics that precede the defer).
//
//   - *ast.ReturnStmt ends its block with a single edge to Exit. A call
//     to the panic builtin ends its block with no successors. Code
//     after a terminating statement lands in a fresh unreachable block
//     (no predecessors) so it is still visible to analyzers that want
//     it, and invisible to ones that walk from Entry.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block of a CFG.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, dense).
	Index int
	// Kind names what created the block ("entry", "if.then",
	// "for.head", "select.case", ...), for tests and debug output.
	Kind string
	// Nodes are the statements/expressions executed in this block, in
	// order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic function-exit block: every return statement
	// and the final fall-off-the-end path edge into it.
	Exit *Block
}

// CondBlock reports whether b ends in a two-way condition, returning
// its (true, false) successors.
func (b *Block) CondBlock() (t, f *Block, ok bool) {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return nil, nil, false
	}
	if _, isExpr := b.Nodes[len(b.Nodes)-1].(ast.Expr); !isExpr {
		return nil, nil, false
	}
	return b.Succs[0], b.Succs[1], true
}

// Cond returns the condition expression of a two-way block, or nil.
func (b *Block) Cond() ast.Expr {
	if _, _, ok := b.CondBlock(); !ok {
		return nil
	}
	e, _ := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	return e
}

// String renders the graph compactly for tests: one line per block,
// "i:kind -> succ,succ".
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d:%s(%d) ->", b.Index, b.Kind, len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*labelInfo)}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmt(body)
	b.edge(b.cur, b.g.Exit)
	// Forward gotos: targets were materialized when their labels were
	// reached; anything still unresolved names a label that never
	// appeared (ill-formed source) and is dropped.
	for _, pg := range b.pendingGotos {
		if li := b.labels[pg.label]; li != nil && li.block != nil {
			b.edge(pg.from, li.block)
		}
	}
	return b.g
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil-safe via edge(); always non-nil (unreachable blocks)

	// loops/switches currently open, innermost last.
	targets []breakTarget
	labels  map[string]*labelInfo

	pendingGotos []pendingGoto
}

type breakTarget struct {
	label string // "" when the construct is unlabeled
	brk   *Block // break destination (nil never)
	cont  *Block // continue destination (nil for switch/select)
}

type labelInfo struct{ block *Block }

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// terminate ends the current path: subsequent statements build into a
// fresh block with no predecessors.
func (b *cfgBuilder) terminate(kind string) { b.cur = b.newBlock(kind) }

func (b *cfgBuilder) stmt(s ast.Stmt) { b.stmtLabeled(s, "") }

func (b *cfgBuilder) stmtLabeled(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		if li.block == nil {
			li.block = b.newBlock("label." + s.Label.Name)
		}
		b.edge(b.cur, li.block)
		b.cur = li.block
		b.stmtLabeled(s.Stmt, s.Label.Name)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate("unreachable")
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.terminate("unreachable")
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.edge(b.cur, t.brk)
				break
			}
		}
		b.terminate("unreachable")
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont == nil {
				continue // switch/select: continue skips past it
			}
			if label == "" || t.label == label {
				b.edge(b.cur, t.cont)
				break
			}
		}
		b.terminate("unreachable")
	case token.GOTO:
		if li := b.labels[label]; li != nil && li.block != nil {
			b.edge(b.cur, li.block)
		} else {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: label})
		}
		b.terminate("unreachable")
	case token.FALLTHROUGH:
		// Handled structurally by switchBody; reaching here means a
		// fallthrough outside a switch clause (ill-formed). Ignore.
	}
}

// cond lowers a boolean expression into condition blocks, wiring the
// true path to t and the false path to f, expanding short-circuit
// operators so every evaluated sub-condition is its own node.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.add(e)
	b.edge(b.cur, t) // Succs[0]: condition true
	b.edge(b.cur, f) // Succs[1]: condition false
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	elseTarget := done
	if s.Else != nil {
		elseTarget = b.newBlock("if.else")
	}
	b.cond(s.Cond, then, elseTarget)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, done)
	if s.Else != nil {
		b.cur = elseTarget
		b.stmt(s.Else)
		b.edge(b.cur, done)
	}
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTo = post
	}
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, done)
	} else {
		b.edge(b.cur, body) // for {}: exits only via break/return
	}
	b.targets = append(b.targets, breakTarget{label: label, brk: done, cont: contTo})
	b.cur = body
	b.stmt(s.Body)
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.add(s.Post)
	}
	b.edge(b.cur, head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(b.cur, head)
	b.cur = head
	b.add(s.X) // the ranged expression re-evaluates the iteration state
	b.edge(head, body) // Succs[0]: another element
	b.edge(head, done) // Succs[1]: exhausted
	b.targets = append(b.targets, breakTarget{label: label, brk: done, cont: head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// switchBody lowers the clause list shared by switch and type switch.
// allowFallthrough distinguishes expression switches.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	head := b.cur
	done := b.newBlock("switch.done")
	b.targets = append(b.targets, breakTarget{label: label, brk: done})
	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
		}
		clauseBlocks = append(clauseBlocks, b.newBlock(kind))
	}
	hasDefault := false
	for i, cc := range clauses {
		b.edge(head, clauseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done) // no clause matched
	}
	for i, cc := range clauses {
		b.cur = clauseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fallsThrough := false
		if allowFallthrough && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:len(stmts)-1]
			}
		}
		for _, st := range stmts {
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
		} else {
			b.edge(b.cur, done)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.newBlock("select.done")
	b.targets = append(b.targets, breakTarget{label: label, brk: done})
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, done)
	}
	// A select without default blocks until some case fires, so head has
	// no direct edge to done; with a default, the default IS a case.
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// isPanicCall matches a direct call to the panic builtin (syntactic:
// the builder has no type information, so a user-defined panic function
// shadowing the builtin is over-matched).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Cross-package facts for the flashvet analyzers.
//
// A Fact is a conclusion one analyzer reaches about a types.Object (or
// a whole package) while analyzing the package that declares it —
// "this function Releases its snapshot argument", "this mutex field
// has lock rank 20", "this symbol is deprecated". Facts outlive the
// compilation unit that produced them: the driver serializes them
// (JSON, one flat record list) beside each analyzed package and seeds
// the FactSet of every downstream unit with its dependencies' facts,
// mirroring golang.org/x/tools/go/analysis facts over the go vet
// vetx-file protocol.
//
// Object identity across compilation units cannot use pointer
// equality, so facts are keyed by a stable object path within the
// declaring package: "Name" for package-level objects, "Type.Name" for
// methods and struct fields of package-level named types. Objects
// without such a path (locals, fields of unnamed types) can carry
// facts only within the unit that created them.
package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is implemented by any analyzer-defined fact type. Facts must be
// pointers to JSON-serializable structs, and each analyzer must list
// its fact types in Analyzer.FactTypes for decoding.
type Fact interface{ AFact() }

// FactSet accumulates the facts of one analysis run: those imported
// from dependencies and those exported while analyzing. It is keyed by
// (analyzer, package path, object path, fact type); one fact of each
// type per key.
type FactSet struct {
	// factTypes: analyzer name -> fact type name -> concrete type.
	factTypes map[string]map[string]reflect.Type
	facts     map[factKey]Fact
}

type factKey struct {
	analyzer string
	pkgPath  string
	objPath  string // "" for package facts
	typeName string
}

// NewFactSet creates a FactSet that can decode the fact types declared
// by the given analyzers.
func NewFactSet(analyzers []*Analyzer) *FactSet {
	s := &FactSet{
		factTypes: make(map[string]map[string]reflect.Type),
		facts:     make(map[factKey]Fact),
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Pointer {
				panic(fmt.Sprintf("framework: analyzer %s fact type %T is not a pointer", a.Name, f))
			}
			m := s.factTypes[a.Name]
			if m == nil {
				m = make(map[string]reflect.Type)
				s.factTypes[a.Name] = m
			}
			m[t.Elem().Name()] = t
		}
	}
	return s
}

func typeNameOf(f Fact) string { return reflect.TypeOf(f).Elem().Name() }

// export records one fact. Unpathable objects are silently scoped to
// this set only (they still resolve within the same run).
func (s *FactSet) export(analyzer string, pkg *types.Package, obj types.Object, f Fact) {
	objPath := ""
	if obj != nil {
		p, ok := ObjectPath(pkg, obj)
		if !ok {
			return
		}
		objPath = p
	}
	s.facts[factKey{analyzer: analyzer, pkgPath: pkg.Path(), objPath: objPath, typeName: typeNameOf(f)}] = f
}

// lookup copies a stored fact into dst (a pointer to the matching fact
// struct), reporting whether one was found.
func (s *FactSet) lookup(analyzer string, pkg *types.Package, obj types.Object, dst Fact) bool {
	objPath := ""
	if obj != nil {
		p, ok := ObjectPath(pkg, obj)
		if !ok {
			return false
		}
		objPath = p
	}
	got, ok := s.facts[factKey{analyzer: analyzer, pkgPath: pkg.Path(), objPath: objPath, typeName: typeNameOf(dst)}]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// factRecord is the serialized form of one fact.
type factRecord struct {
	Analyzer string          `json:"analyzer"`
	Package  string          `json:"package"`
	Object   string          `json:"object,omitempty"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes every fact in the set (imported ones included, so
// a unit's fact file transitively carries its dependencies' facts).
func (s *FactSet) Encode() ([]byte, error) {
	recs := make([]factRecord, 0, len(s.facts))
	for k, f := range s.facts {
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("framework: encode fact %s/%s: %w", k.analyzer, k.typeName, err)
		}
		recs = append(recs, factRecord{
			Analyzer: k.analyzer, Package: k.pkgPath, Object: k.objPath,
			Type: k.typeName, Data: data,
		})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	return json.Marshal(recs)
}

// Decode merges serialized facts into the set. Records whose analyzer
// or fact type is unknown to this run are skipped (a unit built by a
// newer flashvet can carry fact kinds an older one does not know).
func (s *FactSet) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("framework: decode facts: %w", err)
	}
	for _, r := range recs {
		t, ok := s.factTypes[r.Analyzer][r.Type]
		if !ok {
			continue
		}
		fv := reflect.New(t.Elem())
		if err := json.Unmarshal(r.Data, fv.Interface()); err != nil {
			return fmt.Errorf("framework: decode %s fact %s: %w", r.Analyzer, r.Type, err)
		}
		s.facts[factKey{analyzer: r.Analyzer, pkgPath: r.Package, objPath: r.Object, typeName: r.Type}] = fv.Interface().(Fact)
	}
	return nil
}

// Len reports the number of facts held (for tests and -debug output).
func (s *FactSet) Len() int { return len(s.facts) }

// ObjectPath computes the stable intra-package path of obj: "Name" for
// package-level objects, "Type.Name" for methods and for struct fields
// of package-level named types. ok is false for objects with no stable
// path (locals, embedded-anonymous cases).
func ObjectPath(pkg *types.Package, obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	// Method: path through its receiver's named type.
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := types.Unalias(t).(*types.Named); ok && n.Obj().Pkg() == obj.Pkg() {
				return n.Obj().Name() + "." + f.Name(), true
			}
		}
		return "", false
	}
	// Struct field: search the package's named struct types.
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		scope := obj.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return name + "." + obj.Name(), true
				}
			}
		}
	}
	return "", false
}

// LookupObjectPath resolves a path produced by ObjectPath against a
// package (possibly a different load of it, e.g. from export data).
func LookupObjectPath(pkg *types.Package, path string) types.Object {
	dot := strings.IndexByte(path, '.')
	if dot < 0 {
		return pkg.Scope().Lookup(path)
	}
	tn, ok := pkg.Scope().Lookup(path[:dot]).(*types.TypeName)
	if !ok {
		return nil
	}
	name := path[dot+1:]
	if n, ok := types.Unalias(tn.Type()).(*types.Named); ok {
		for i := 0; i < n.NumMethods(); i++ {
			if m := n.Method(i); m.Name() == name {
				return m
			}
		}
	}
	if st, ok := tn.Type().Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == name {
				return f
			}
		}
	}
	return nil
}

// A generic worklist solver over the CFG, for monotone dataflow
// problems. Analyzers describe their lattice (bottom, join, equality)
// and a per-block transfer function; Solve iterates to a fixed point
// and returns the state at every block boundary.
package framework

// Direction selects forward (entry→exit) or backward (exit→entry)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// FlowSpec describes one dataflow problem with state type S. Transfer
// must not mutate its input state; Join may return either argument
// when one subsumes the other.
type FlowSpec[S any] struct {
	Dir Direction
	// Boundary is the state at the flow entry (Entry block's in-state
	// for Forward, Exit block's out-state for Backward).
	Boundary S
	// Bottom produces the identity of Join (the "no paths yet" state).
	Bottom func() S
	Join   func(S, S) S
	Equal  func(S, S) bool
	// Transfer computes the state after executing block b (in the flow
	// direction) from the state before it.
	Transfer func(b *Block, before S) S
}

// Solve runs the worklist algorithm to a fixed point. It returns the
// state before and after each block in the flow direction: for Forward
// problems before = in-state and after = out-state; for Backward
// problems before = out-state and after = in-state.
func Solve[S any](g *CFG, spec FlowSpec[S]) (before, after map[*Block]S) {
	before = make(map[*Block]S, len(g.Blocks))
	after = make(map[*Block]S, len(g.Blocks))
	for _, b := range g.Blocks {
		before[b] = spec.Bottom()
		after[b] = spec.Bottom()
	}
	start := g.Entry
	if spec.Dir == Backward {
		start = g.Exit
	}
	before[start] = spec.Boundary

	preds := func(b *Block) []*Block { return b.Preds }
	succs := func(b *Block) []*Block { return b.Succs }
	if spec.Dir == Backward {
		preds, succs = succs, preds
	}

	// Seed with every block reachable from the boundary, in
	// quasi-topological (BFS) order to keep iteration counts low.
	var work []*Block
	inWork := make(map[*Block]bool, len(g.Blocks))
	push := func(b *Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	push(start)
	for i := 0; i < len(work); i++ {
		for _, s := range succs(work[i]) {
			push(s)
		}
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		in := spec.Bottom()
		if b == start {
			in = spec.Boundary
		}
		for _, p := range preds(b) {
			in = spec.Join(in, after[p])
		}
		before[b] = in
		out := spec.Transfer(b, in)
		if spec.Equal(out, after[b]) {
			continue
		}
		after[b] = out
		for _, s := range succs(b) {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return before, after
}

// ReachableBlocks returns the blocks reachable from Entry in a stable
// (BFS) order — the iteration order report-generating passes should
// use so diagnostics come out deterministically.
func (g *CFG) ReachableBlocks() []*Block {
	var out []*Block
	seen := make(map[*Block]bool, len(g.Blocks))
	out = append(out, g.Entry)
	seen[g.Entry] = true
	for i := 0; i < len(out); i++ {
		for _, s := range out[i].Succs {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

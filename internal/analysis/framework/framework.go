// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check with a Run function; a Pass hands it one type-checked package and
// collects Diagnostics.
//
// The repository cannot vendor x/tools (the build environment is
// offline), so flashvet's analyzers are written against this package
// instead. The shapes mirror go/analysis deliberately: if the module
// ever gains the real dependency, each analyzer ports by swapping the
// import and (mechanically) the Pass field names.
//
// Facts, Requires-chaining and suggested fixes are intentionally absent:
// every flashvet analyzer is package-local, which keeps the vet-tool
// protocol trivial (no fact serialization between compilation units).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //flashvet:allow suppression directives. By convention it is a
	// single lower-case word.
	Name string
	// Doc is the one-paragraph description printed by flashvet -help.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the result value is unused (kept for go/analysis
	// signature compatibility).
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, positioned inside the package under
// analysis.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Filename returns the base-less full filename containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// ---- Type-inspection helpers shared by the analyzers. ----
//
// Matching is by package *name*, not import path: the analyzers must
// recognize both the real packages (repro/internal/bdd, repro/internal/obs)
// and the analysistest stub packages (testdata/src/bdd, testdata/src/obs),
// which share names but not paths. A same-named third-party package would
// be over-matched; the //flashvet:allow directive is the escape hatch.

// NamedIn reports whether t (after unwrapping aliases) is the named type
// pkgName.typeName.
func NamedIn(t types.Type, pkgName, typeName string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// PointerToNamed reports whether t is *pkgName.typeName.
func PointerToNamed(t types.Type, pkgName, typeName string) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	return ok && NamedIn(p.Elem(), pkgName, typeName)
}

// ReceiverNamed returns the receiver's base named type name of a method
// object, or "" if f is not a method.
func ReceiverNamed(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// CalleeFunc resolves the called function/method object of a call
// expression, following method selections (including promoted methods).
// It returns nil for calls through function values, conversions and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// MethodReceiverExpr returns the receiver expression of a method call
// (x in x.M(...)), or nil if the call is not through a selector.
func MethodReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// RootIdentObj returns the object of the leftmost identifier of a
// selector chain (e.g. w in w.space.E), or nil.
func RootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsNilComparison reports whether cond compares expr against nil with the
// given operator (token.NEQ or token.EQL), returning the non-nil operand.
func IsNilComparison(cond ast.Expr, op token.Token) (ast.Expr, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return nil, false
	}
	if isNilIdent(b.X) {
		return b.Y, true
	}
	if isNilIdent(b.Y) {
		return b.X, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check with a Run function; a Pass hands it one type-checked package and
// collects Diagnostics.
//
// The repository cannot vendor x/tools (the build environment is
// offline), so flashvet's analyzers are written against this package
// instead. The shapes mirror go/analysis deliberately: if the module
// ever gains the real dependency, each analyzer ports by swapping the
// import and (mechanically) the Pass field names.
//
// Since the v2 platform upgrade the framework also carries the two
// pieces the original per-file walker lacked: an intraprocedural CFG
// with a worklist dataflow solver (cfg.go, solve.go), and serializable
// cross-package facts (facts.go) threaded by the drivers through the
// go vet vetx-file protocol and the standalone loader's dependency
// order.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //flashvet:allow suppression directives. By convention it is a
	// single lower-case word.
	Name string
	// Doc is the one-paragraph description printed by flashvet -help.
	Doc string
	// FactTypes lists the fact types the analyzer exports or imports
	// (each a nil pointer of the concrete type, e.g.
	// []Fact{(*ReleasesFact)(nil)}). Required for the driver to decode
	// the analyzer's serialized facts.
	FactTypes []Fact
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the result value is unused (kept for go/analysis
	// signature compatibility).
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, positioned inside the package under
// analysis.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Facts is the run's shared fact set (imported dependency facts plus
	// anything exported so far). Drivers that do not thread facts leave
	// it nil; the accessors below are nil-safe.
	Facts *FactSet

	cfgs map[*ast.BlockStmt]*CFG
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ---- Facts API (nil-safe when the driver supplies no FactSet). ----

// ExportObjectFact attaches f to obj for downstream packages. Objects
// without a stable path (see ObjectPath) keep the fact run-local.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	p.Facts.export(p.Analyzer.Name, obj.Pkg(), obj, f)
}

// ImportObjectFact copies the fact of f's type attached to obj into f,
// reporting whether one exists. It sees facts exported earlier in the
// same package as well as imported ones.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, obj.Pkg(), obj, f)
}

// ExportPackageFact attaches f to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.export(p.Analyzer.Name, p.Pkg, nil, f)
}

// ImportPackageFact copies pkg's package-level fact of f's type into f.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, pkg, nil, f)
}

// ---- Function iteration and CFG construction. ----

// FuncBody is one function or function-literal body surfaced by
// EachFuncBody.
type FuncBody struct {
	// Decl is the enclosing declaration (nil for a function literal at
	// file scope — impossible in valid Go, so in practice non-nil).
	Decl *ast.FuncDecl
	// Lit is non-nil when the body belongs to a function literal.
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Name returns a diagnostic-friendly name for the function.
func (fb FuncBody) Name() string {
	if fb.Lit != nil {
		return "func literal"
	}
	if fb.Decl != nil {
		return fb.Decl.Name.Name
	}
	return "func"
}

// EachFuncBody invokes fn for every function declaration body and every
// nested function literal body in the file, outermost first. Function
// literals are surfaced as their own scope (their bodies are not part
// of the enclosing CFG), which is the treatment every flow-sensitive
// analyzer wants: a closure does not necessarily run under the
// conditions holding where it is written.
func EachFuncBody(f *ast.File, fn func(FuncBody)) {
	var visitLits func(decl *ast.FuncDecl, n ast.Node)
	visitLits = func(decl *ast.FuncDecl, n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				fn(FuncBody{Decl: decl, Lit: lit, Body: lit.Body})
				visitLits(decl, lit.Body)
				return false
			}
			return true
		})
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(FuncBody{Decl: fd, Body: fd.Body})
		visitLits(fd, fd.Body)
	}
}

// CFG returns the (memoized) control-flow graph of body.
func (p *Pass) CFG(body *ast.BlockStmt) *CFG {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	g := NewCFG(body)
	p.cfgs[body] = g
	return g
}

// Filename returns the base-less full filename containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// ---- Type-inspection helpers shared by the analyzers. ----
//
// Matching is by package *name*, not import path: the analyzers must
// recognize both the real packages (repro/internal/bdd, repro/internal/obs)
// and the analysistest stub packages (testdata/src/bdd, testdata/src/obs),
// which share names but not paths. A same-named third-party package would
// be over-matched; the //flashvet:allow directive is the escape hatch.

// NamedIn reports whether t (after unwrapping aliases) is the named type
// pkgName.typeName.
func NamedIn(t types.Type, pkgName, typeName string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// PointerToNamed reports whether t is *pkgName.typeName.
func PointerToNamed(t types.Type, pkgName, typeName string) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	return ok && NamedIn(p.Elem(), pkgName, typeName)
}

// ReceiverNamed returns the receiver's base named type name of a method
// object, or "" if f is not a method.
func ReceiverNamed(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// CalleeFunc resolves the called function/method object of a call
// expression, following method selections (including promoted methods).
// It returns nil for calls through function values, conversions and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// MethodReceiverExpr returns the receiver expression of a method call
// (x in x.M(...)), or nil if the call is not through a selector.
func MethodReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// RootIdentObj returns the object of the leftmost identifier of a
// selector chain (e.g. w in w.space.E), or nil.
func RootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsNilComparison reports whether cond compares expr against nil with the
// given operator (token.NEQ or token.EQL), returning the non-nil operand.
func IsNilComparison(cond ast.Expr, op token.Token) (ast.Expr, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return nil, false
	}
	if isNilIdent(b.X) {
		return b.Y, true
	}
	if isNilIdent(b.Y) {
		return b.X, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---- Mutex helpers shared by the lock-discipline analyzers. ----

// IsSyncMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsSyncMutex(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return NamedIn(t, "sync", "Mutex") || NamedIn(t, "sync", "RWMutex")
}

// MutexOp matches a call to Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/sync.RWMutex value, returning the lock's receiver
// expression and the method name.
func MutexOp(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	tv, okT := info.Types[sel.X]
	if !okT || !IsSyncMutex(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// MutexFieldObj resolves a mutex receiver expression to the struct
// field or package-level variable object that identifies the mutex
// (e.g. s.dispatchMu -> the dispatchMu field of System), or nil when
// the expression is not a stable named lock.
func MutexFieldObj(info *types.Info, recv ast.Expr) types.Object {
	switch x := ast.Unparen(recv).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.ObjectOf(x.Sel)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return MutexFieldObj(info, x.X)
		}
	}
	return nil
}

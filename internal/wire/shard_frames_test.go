package wire

import (
	"reflect"
	"testing"
)

func TestResultSubFrameRoundTrip(t *testing.T) {
	for _, subs := range [][]int{nil, {0}, {0, 1, 2, 3}, {7, 11}} {
		buf, err := appendResultSub(nil, subs)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parseSessionFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != frameResultSub {
			t.Fatalf("round trip of result-sub %v: type %#x", subs, f.Type)
		}
		if len(subs) == 0 && len(f.SubSet) != 0 {
			t.Fatalf("round trip of empty result-sub: %v", f.SubSet)
		}
		if len(subs) > 0 && !reflect.DeepEqual(f.SubSet, subs) {
			t.Fatalf("round trip of result-sub %v: %v", subs, f.SubSet)
		}
	}
}

func TestResultFrameRoundTrip(t *testing.T) {
	events := []ResultEvent{
		{Subspace: 0, Epoch: "e1", Check: "loops", Verdict: 1},
		{Subspace: 3, Epoch: "e42", Check: "a-to-d", Loop: 2, Witness: []uint64{0x80, 0xfffe}},
		{Subspace: 1 << 20, Epoch: "", Check: "", Verdict: 2, Loop: 1},
	}
	for _, ev := range events {
		buf, err := appendResult(nil, ev)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parseSessionFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		got := f.Result
		if f.Type != frameResult || got.Subspace != ev.Subspace || got.Epoch != ev.Epoch ||
			got.Check != ev.Check || got.Verdict != ev.Verdict || got.Loop != ev.Loop ||
			!reflect.DeepEqual(got.Witness, ev.Witness) && len(ev.Witness) > 0 {
			t.Fatalf("round trip of result %+v: %+v", ev, got)
		}
	}
}

func TestFingerprintFramesRoundTrip(t *testing.T) {
	buf, err := appendFpReq(nil, 7, "e9")
	if err != nil {
		t.Fatal(err)
	}
	f, err := parseSessionFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frameFpReq || f.Fp.ID != 7 || f.FpEpoch != "e9" {
		t.Fatalf("round trip of fp-req: %+v", f)
	}

	rep := FingerprintReply{ID: 9, Parts: map[int]string{0: "aa", 2: "bb"}}
	buf, err = appendFpResp(nil, rep, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err = parseSessionFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != frameFpResp || f.Fp.ID != 9 || f.Fp.Err != "" ||
		!reflect.DeepEqual(f.Fp.Parts, rep.Parts) {
		t.Fatalf("round trip of fp-resp: %+v", f.Fp)
	}

	rep = FingerprintReply{ID: 1, Err: "no verifier"}
	buf, err = appendFpResp(nil, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err = parseSessionFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Fp.Err != "no verifier" || len(f.Fp.Parts) != 0 {
		t.Fatalf("round trip of fp-resp error: %+v", f.Fp)
	}
}

// FuzzShardFrameDecode feeds arbitrary bytes to the session frame
// parser with emphasis on the shard-routing frames (result-sub, result,
// fp-req, fp-resp). Malformed input must never panic, and every failure
// must surface as a typed error. Parsed values must be bounded by what
// the frame could actually carry (no length-prefix amplification).
func FuzzShardFrameDecode(f *testing.F) {
	// Seed with a valid encoding of each shard frame, truncations, and
	// corrupt variants (see testdata/fuzz/FuzzShardFrameDecode).
	seed := func(buf []byte, err error) {
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 2 {
			f.Add(buf[:len(buf)-2])
			f.Add(buf[:1+len(buf)/2])
		}
	}
	seed(appendResultSub(nil, []int{0, 1, 2, 3}))
	seed(appendResult(nil, ResultEvent{Subspace: 2, Epoch: "e3", Check: "loops",
		Verdict: 1, Loop: 2, Witness: []uint64{0xdead, 0xbeef}}))
	seed(appendFpReq(nil, 42, "e7"))
	seed(appendFpResp(nil, FingerprintReply{ID: 42, Parts: map[int]string{0: "d0", 3: "d3"}}, []int{0, 3}))
	seed(appendFpResp(nil, FingerprintReply{ID: 1, Err: "boom"}, nil))
	// Huge declared counts with a tiny body: preallocation must stay
	// bounded and the parse must fail typed, not OOM.
	f.Add([]byte{frameResultSub, 0xFF, 0xFF})
	f.Add([]byte{frameFpResp, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := parseSessionFrame(data)
		if err != nil {
			checkTyped(t, err)
			return
		}
		// Bound checks: slice lengths can never exceed what the body
		// had room to encode.
		if len(fr.SubSet) > len(data) || len(fr.Result.Witness) > len(data) || len(fr.Fp.Parts) > len(data) {
			t.Fatalf("parsed lengths exceed input size %d: %+v", len(data), fr)
		}
	})
}

package wire

import (
	"reflect"
	"testing"
)

func TestSubscribeFrameRoundTrip(t *testing.T) {
	for _, spec := range []string{"", "a-to-d", "loop-freedom"} {
		buf, err := appendSubscribe(nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parseSessionFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != frameSubscribe || f.Spec != spec {
			t.Fatalf("round trip of subscribe %q: %+v", spec, f)
		}
	}
}

func TestVerdictFrameRoundTrip(t *testing.T) {
	events := []VerdictEvent{
		{Seq: 1, Spec: "a-to-d", Epoch: "e1", Subspace: 0, Verdict: 1, First: true},
		{Seq: 42, Spec: "loops", Epoch: "e7", Subspace: 3, Loop: 2, PrevLoop: 1,
			Witness: []uint64{0x80, 0xfffe}},
		{Seq: 1 << 40, Spec: "x", Epoch: "", Subspace: 15, Verdict: 2, PrevVerdict: 1},
	}
	for _, ev := range events {
		buf, err := appendVerdict(nil, ev)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parseSessionFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != frameVerdict {
			t.Fatalf("frame type %#x", f.Type)
		}
		if !reflect.DeepEqual(f.Event, ev) {
			t.Fatalf("round trip mutated event:\n  in:  %+v\n  out: %+v", ev, f.Event)
		}
	}
}

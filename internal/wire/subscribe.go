package wire

import "fmt"

// Verdict subscription frames extend session protocol v2 with
// server-push: a client sends a subscribe frame naming a check spec, and
// the server pushes a verdict frame every time that spec's deterministic
// result flips in some subspace. Pushes ride the same connection as acks
// and heartbeats (the sessionWriter serializes them), so subscriptions
// survive exactly as long as the connection; on reconnect the client
// re-sends its subscribe frames after the hello, the same way it replays
// unacknowledged data.
//
// Frame bodies (after the u32 length prefix):
//
//	subscribe [0x05][u16-len spec]
//	verdict   [0x06][u64 seq][u16-len spec][u16-len epoch][u32 subspace]
//	          [u8 verdict][u8 loop][u8 prevVerdict][u8 prevLoop]
//	          [u8 flags(bit0=first)][u8 n][n × u64 witness]
//
// Verdict/loop codes are the flash package's Verdict and LoopResult
// values carried as opaque u8; the wire layer does not interpret them.

// VerdictEvent is one verdict-change notification on the wire. Seq is a
// bus-global sequence number (gaps visible to a subscriber mean pushes
// were dropped under backpressure). First marks the initial verdict for
// a (spec, subspace) pair rather than a flip. Witness, when present, is
// a sample header assignment (field values in layout order) exhibiting
// the new verdict.
type VerdictEvent struct {
	Seq         uint64
	Spec        string
	Epoch       string
	Subspace    int
	Verdict     uint8
	Loop        uint8
	PrevVerdict uint8
	PrevLoop    uint8
	First       bool
	Witness     []uint64
}

// appendSubscribe encodes a subscribe frame body.
func appendSubscribe(buf []byte, spec string) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameSubscribe)}
	if err := w.str(spec); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// appendVerdict encodes a verdict frame body.
func appendVerdict(buf []byte, ev VerdictEvent) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameVerdict)}
	w.u64(ev.Seq)
	if err := w.str(ev.Spec); err != nil {
		return nil, err
	}
	if err := w.str(ev.Epoch); err != nil {
		return nil, err
	}
	w.u32(uint32(ev.Subspace))
	w.u8(ev.Verdict)
	w.u8(ev.Loop)
	w.u8(ev.PrevVerdict)
	w.u8(ev.PrevLoop)
	var flags uint8
	if ev.First {
		flags |= 1
	}
	w.u8(flags)
	if len(ev.Witness) > 0xFF {
		return nil, fmt.Errorf("wire: witness with %d fields", len(ev.Witness))
	}
	w.u8(uint8(len(ev.Witness)))
	for _, v := range ev.Witness {
		w.u64(v)
	}
	return w.buf, nil
}

package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fib"
	"repro/internal/obs"
)

// ErrClientClosed is returned by Client operations after Close, and by
// Send once reconnection has been abandoned (attempts exhausted in
// reconnect mode, or the first write failure without it).
var ErrClientClosed = errors.New("wire: client closed")

// ClientOptions tunes a Client. The zero value is a fail-fast,
// non-reconnecting client (the behavior of the original Agent).
type ClientOptions struct {
	// Stream is the client's stable identity; sequence numbers and the
	// server's dedup state are scoped to it and survive reconnects.
	// Empty generates a process-unique identity.
	Stream string

	// Reconnect enables transparent reconnection: Send buffers messages
	// and a background loop re-dials with exponential backoff + jitter,
	// replaying everything unacknowledged. Without it, the first write
	// or connection failure is surfaced from Send and is permanent.
	Reconnect bool

	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (defaults 50ms and 5s). Jitter in [0,1] randomizes each delay by
	// up to that fraction (default 0.2).
	BackoffMin time.Duration
	BackoffMax time.Duration
	Jitter     float64

	// MaxAttempts abandons reconnection after this many consecutive
	// failed dials (0 = keep trying forever).
	MaxAttempts int

	// Heartbeat sends a heartbeat frame when the connection has been
	// idle this long, and arms a read deadline of twice the interval so
	// a dead peer is detected. 0 disables both.
	Heartbeat time.Duration

	// ResendTimeout forces a reconnect (and therefore a replay) when the
	// oldest unacknowledged message has seen no ack progress for this
	// long — the recovery path for frames lost without a connection
	// error. 0 defaults to 10s in reconnect mode.
	ResendTimeout time.Duration

	// WriteTimeout bounds each frame write. 0 disables.
	WriteTimeout time.Duration

	// Dial overrides the transport (tests inject faulty connections
	// here). Default: net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)

	// Rand seeds backoff jitter for deterministic tests. Default: a
	// private source seeded from the clock.
	Rand *rand.Rand

	// OnResult, when set, subscribes the connection to the server's
	// result stream (re-established on every reconnect) and is called
	// synchronously from the read loop for each pushed result, before
	// any later frame — in particular before the ack of the data frame
	// that triggered it, so after WaitAcked returns every result of the
	// acked sends has been delivered. The callback must not call back
	// into the Client.
	OnResult func(ResultEvent)

	// ResultSubspaces filters the OnResult subscription to these global
	// subspace indices (nil = all). Ignored without OnResult.
	ResultSubspaces []int

	// Metrics optionally publishes client counters (sends, acked,
	// reconnects, replays, heartbeats) under the given registry.
	Metrics *obs.Registry

	// Logf receives operational messages (reconnect attempts, give-ups).
	Logf func(string, ...any)
}

// cmetrics holds resolved observability handles (nil-safe).
type cmetrics struct {
	sends      *obs.Counter
	acked      *obs.Counter
	reconnects *obs.Counter
	replays    *obs.Counter
	heartbeats *obs.Counter
}

// outMsg is one buffered, unacknowledged message.
type outMsg struct {
	seq uint64
	dev fib.DeviceID
	msg Msg
}

var clientSerial atomic.Uint64

// Client is a device agent's connection to the dispatcher with
// at-least-once delivery: every Send is assigned the stream's next
// sequence number and buffered until the server acknowledges it;
// reconnection (if enabled) replays the buffer, and the server's dedup
// discards anything that was already consumed.
type Client struct {
	addr string
	opts ClientOptions

	mu       sync.Mutex
	cond     *sync.Cond
	conn     net.Conn
	sw       *sessionWriter
	gen      int // connection generation; stale readers exit
	seq      uint64
	acked    uint64
	unacked  []outMsg
	closed   bool
	failed   error
	attempt  uint32
	dialing  bool
	lastSend time.Time
	lastAck  time.Time // last ack progress (resend-timeout clock)
	// jitterSeed is the stable per-client seed backoff jitter is derived
	// from: each attempt hashes (seed, attempt) so the jitter sequence
	// is distinct per attempt no matter how dial episodes start or how
	// many clients share a Rand source.
	jitterSeed uint64

	subs     []string          // active subscriptions, re-sent on reconnect
	verdicts chan VerdictEvent // lazily created by Verdicts/first push
	vdrops   atomic.Uint64     // pushes dropped because verdicts was full

	fpSeq     uint64                           // fingerprint request IDs
	fpWaiters map[uint64]chan FingerprintReply // in-flight fingerprint requests

	maintDone chan struct{}
	m         cmetrics
}

// Agent is the original fire-and-forget device agent API; it is now a
// Client in non-reconnecting mode (see Dial).
type Agent = Client

// Dial connects an agent to the server address with fail-fast defaults:
// no reconnection, no heartbeats. Use NewClient for the fault-tolerant
// configuration.
func Dial(addr string) (*Agent, error) {
	return NewClient(addr, ClientOptions{})
}

// NewClient dials the server and starts the session. Without
// reconnection the initial dial is eager so configuration errors
// surface immediately; in reconnect mode an initial failure is as
// transient as any later one and is retried in the background (bound
// it with MaxAttempts).
func NewClient(addr string, opts ClientOptions) (*Client, error) {
	if opts.Stream == "" {
		// Scoped by pid so anonymous agents in different processes never
		// collide on a shared server (a collision would reset the other
		// incarnation's stream state).
		opts.Stream = fmt.Sprintf("agent-%d-%d", os.Getpid(), clientSerial.Add(1))
	}
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.2
	}
	if opts.ResendTimeout <= 0 {
		opts.ResendTimeout = 10 * time.Second
	}
	if opts.Dial == nil {
		opts.Dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	c := &Client{addr: addr, opts: opts}
	c.cond = sync.NewCond(&c.mu)
	if opts.Rand != nil {
		c.jitterSeed = opts.Rand.Uint64()
	} else {
		c.jitterSeed = uint64(time.Now().UnixNano()) ^ clientSerial.Add(1)<<32
	}
	if reg := opts.Metrics; reg != nil {
		c.m = cmetrics{
			sends:      reg.Counter("sends"),
			acked:      reg.Counter("acked"),
			reconnects: reg.Counter("reconnects"),
			replays:    reg.Counter("replays"),
			heartbeats: reg.Counter("heartbeats"),
		}
	}
	conn, err := opts.Dial(addr)
	if err != nil && !opts.Reconnect {
		return nil, err
	}
	c.mu.Lock()
	if err != nil {
		c.dialing = true
		go c.redial()
	} else if ierr := c.install(conn); ierr != nil {
		conn.Close()
		if !opts.Reconnect {
			c.mu.Unlock()
			return nil, ierr
		}
		c.dialing = true
		go c.redial()
	}
	c.mu.Unlock()
	if opts.Reconnect && (opts.Heartbeat > 0 || opts.ResendTimeout > 0) {
		c.maintDone = make(chan struct{})
		go c.maintain()
	}
	return c, nil
}

// Stream returns the client's stream identity.
func (c *Client) Stream() string { return c.opts.Stream }

// Err reports the client's terminal failure, if any: non-nil once the
// client has been closed or has abandoned reconnection. A nil result
// means the client is still live (possibly mid-reconnect).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// install binds a fresh connection: sends hello, replays the unacked
// buffer, and starts the ack reader. Caller holds c.mu.
func (c *Client) install(conn net.Conn) error {
	sw := newSessionWriter(conn, c.opts.WriteTimeout)
	first := c.seq + 1
	if len(c.unacked) > 0 {
		first = c.unacked[0].seq
	}
	if err := sw.hello(helloInfo{
		Version: sessionVersion,
		Stream:  c.opts.Stream,
		First:   first,
		Attempt: c.attempt,
	}); err != nil {
		return err
	}
	if n := len(c.unacked); n > 0 {
		c.m.replays.Add(int64(n))
		for _, om := range c.unacked {
			if err := sw.data(om.dev, om.seq, om.msg); err != nil {
				return err
			}
		}
	}
	// Subscriptions are connection-scoped server-side; re-establish them
	// the same way the unacked buffer is replayed.
	for _, spec := range c.subs {
		if err := sw.subscribe(spec); err != nil {
			return err
		}
	}
	if c.opts.OnResult != nil {
		if err := sw.resultSub(c.opts.ResultSubspaces); err != nil {
			return err
		}
	}
	c.conn = conn
	c.sw = sw
	c.gen++
	c.lastSend = time.Now()
	c.lastAck = time.Now()
	go c.readLoop(conn, c.gen)
	return nil
}

// Subscribe registers for server-pushed verdict-change events for one
// check spec (an empty spec subscribes to every check). Events arrive on
// Verdicts; the subscription is re-established automatically after a
// reconnect. Subscribing to the same spec twice is a server-side no-op
// but wastes a frame; callers should dedup.
func (c *Client) Subscribe(spec string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if c.failed != nil {
		return c.failed
	}
	c.subs = append(c.subs, spec)
	if c.conn == nil {
		return nil // reconnect loop will send it with the hello
	}
	if err := c.sw.subscribe(spec); err != nil {
		return c.connFailedLocked(err)
	}
	return nil
}

// Verdicts returns the channel delivering server-pushed verdict events.
// The channel is never closed; it is buffered (256 events) and pushes
// that arrive while it is full are dropped (counted by VerdictDrops) so
// a slow consumer cannot stall the ack reader.
func (c *Client) Verdicts() <-chan VerdictEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verdictsLocked()
}

func (c *Client) verdictsLocked() chan VerdictEvent {
	if c.verdicts == nil {
		c.verdicts = make(chan VerdictEvent, 256)
	}
	return c.verdicts
}

// VerdictDrops reports how many pushed events were dropped because the
// Verdicts buffer was full.
func (c *Client) VerdictDrops() uint64 { return c.vdrops.Load() }

// Send transmits one message with at-least-once semantics. In reconnect
// mode it never fails transiently: the message is buffered and will be
// (re)delivered until acknowledged; the only errors are a closed or
// permanently failed client. Without reconnection, write errors are
// returned and permanent.
func (c *Client) Send(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if c.failed != nil {
		return c.failed
	}
	c.seq++
	om := outMsg{seq: c.seq, dev: m.Device, msg: m}
	c.unacked = append(c.unacked, om)
	c.m.sends.Inc()
	c.lastSend = time.Now()
	if c.conn == nil {
		return nil // reconnect loop will replay it
	}
	if err := c.sw.data(om.dev, om.seq, om.msg); err != nil {
		return c.connFailedLocked(err)
	}
	return nil
}

// connFailedLocked handles a broken connection. In reconnect mode it
// schedules redial and reports success (the message stays buffered);
// otherwise the failure is permanent and returned. Caller holds c.mu.
func (c *Client) connFailedLocked(err error) error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.sw = nil
		c.gen++
	}
	c.failFpWaitersLocked(fmt.Sprintf("wire: connection lost: %v", err))
	if !c.opts.Reconnect {
		c.failed = fmt.Errorf("wire: client: %v: %w", err, ErrClientClosed)
		c.cond.Broadcast()
		return err
	}
	if !c.dialing {
		c.dialing = true
		go c.redial()
	}
	return nil
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// redial re-establishes the session with exponential backoff + jitter,
// replaying the unacked buffer once connected.
func (c *Client) redial() {
	fails := 0
	for {
		c.mu.Lock()
		if c.closed {
			c.dialing = false
			c.mu.Unlock()
			return
		}
		c.attempt++
		attempt := c.attempt
		delay := c.backoff(fails)
		c.mu.Unlock()

		time.Sleep(delay)
		conn, err := c.opts.Dial(c.addr)
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				conn.Close()
				return
			}
			err = c.install(conn)
			if err == nil {
				c.dialing = false
				c.m.reconnects.Inc()
				c.cond.Broadcast()
				c.mu.Unlock()
				c.logf("wire: client %s: reconnected (attempt %d)", c.opts.Stream, attempt)
				return
			}
			c.mu.Unlock()
			conn.Close()
		}
		fails++
		c.logf("wire: client %s: reconnect attempt %d failed: %v", c.opts.Stream, attempt, err)
		if c.opts.MaxAttempts > 0 && fails >= c.opts.MaxAttempts {
			c.mu.Lock()
			c.failed = fmt.Errorf("wire: client: giving up after %d attempts: %v: %w", fails, err, ErrClientClosed)
			c.dialing = false
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
	}
}

// backoff computes the delay before reconnect attempt number fails
// (0-based), exponential with per-attempt jitter. The jitter fraction
// is derived by hashing the stable per-client seed with the global
// attempt counter, never from shared RNG state: every attempt of every
// dial episode lands on its own point of [1-j, 1+j], so a fleet of
// clients (or one client redialing repeatedly) cannot fall into
// lock-step retry storms the way a reseeded-per-dial RNG allowed.
// Caller holds c.mu (for attempt).
func (c *Client) backoff(fails int) time.Duration {
	d := c.opts.BackoffMin << uint(fails)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	if j := c.opts.Jitter; j > 0 {
		u := jitterFor(c.jitterSeed, uint64(c.attempt)) // uniform in [0, 1)
		f := 1 + j*(2*u-1)                              // uniform in [1-j, 1+j)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = c.opts.BackoffMin
	}
	return d
}

// jitterFor maps (seed, attempt) to a uniform fraction in [0, 1) with a
// splitmix64 finalizer — deterministic for tests that pin the seed,
// distinct across attempts by construction.
func jitterFor(seed, attempt uint64) float64 {
	x := seed + attempt*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// readLoop consumes acks and heartbeat echoes for one connection
// generation; a read error triggers the reconnect policy.
func (c *Client) readLoop(conn net.Conn, gen int) {
	fr := newFrameReader(bufio.NewReader(conn))
	for {
		if hb := c.opts.Heartbeat; hb > 0 {
			conn.SetReadDeadline(time.Now().Add(2*hb + time.Second))
		}
		f, err := fr.read()
		c.mu.Lock()
		if c.closed || gen != c.gen {
			c.mu.Unlock()
			return
		}
		if err != nil {
			c.connFailedLocked(err)
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		switch f.Type {
		case frameAck:
			if f.Seq > c.acked {
				c.acked = f.Seq
			}
			pruned := 0
			for pruned < len(c.unacked) && c.unacked[pruned].seq <= f.Seq {
				pruned++
			}
			if pruned > 0 {
				c.unacked = append(c.unacked[:0], c.unacked[pruned:]...)
				c.m.acked.Add(int64(pruned))
			}
			c.lastAck = time.Now()
			c.cond.Broadcast()
		case frameHeartbeat:
			// Liveness only; the read deadline was already refreshed.
		case frameVerdict:
			select {
			case c.verdictsLocked() <- f.Event:
			default:
				c.vdrops.Add(1)
			}
		case frameResult:
			if h := c.opts.OnResult; h != nil {
				// The callback runs outside the lock (it may be slow and
				// must not deadlock against client accessors) but still
				// synchronously in frame order: the next frame — in
				// particular the ack that follows this result — is not
				// read until it returns.
				c.mu.Unlock()
				h(f.Result)
				c.mu.Lock()
				if c.closed || gen != c.gen {
					c.mu.Unlock()
					return
				}
			}
		case frameFpResp:
			if ch, ok := c.fpWaiters[f.Fp.ID]; ok {
				delete(c.fpWaiters, f.Fp.ID)
				ch <- f.Fp
			}
		}
		c.mu.Unlock()
	}
}

// Fingerprint requests the server's per-subspace model digests for the
// epoch (global subspace index → digest), blocking until the response
// arrives, the context is done, or the connection drops (an in-flight
// request does not survive a reconnect — callers retry; the model it
// would have described may have changed anyway). A server-side failure
// (e.g. no verifier for the epoch) is returned as an error with the
// server's message.
func (c *Client) Fingerprint(ctx context.Context, epoch string) (map[int]string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return nil, err
	}
	if c.conn == nil {
		c.mu.Unlock()
		return nil, errors.New("wire: fingerprint: not connected")
	}
	c.fpSeq++
	id := c.fpSeq
	ch := make(chan FingerprintReply, 1)
	if c.fpWaiters == nil {
		c.fpWaiters = make(map[uint64]chan FingerprintReply)
	}
	c.fpWaiters[id] = ch
	sw := c.sw
	c.mu.Unlock()
	if err := sw.fpReq(id, epoch); err != nil {
		c.mu.Lock()
		delete(c.fpWaiters, id)
		c.connFailedLocked(err)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case rep := <-ch:
		if rep.Err != "" {
			return nil, fmt.Errorf("wire: fingerprint: %s", rep.Err)
		}
		return rep.Parts, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.fpWaiters, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// failFpWaitersLocked aborts every in-flight fingerprint request (the
// connection they were sent on is gone). Caller holds c.mu.
func (c *Client) failFpWaitersLocked(cause string) {
	for id, ch := range c.fpWaiters {
		delete(c.fpWaiters, id)
		ch <- FingerprintReply{ID: id, Err: cause}
	}
}

// maintain runs the client's timers: idle heartbeats and the resend
// timeout that forces a reconnect when acks stall.
func (c *Client) maintain() {
	tick := c.opts.ResendTimeout / 4
	if hb := c.opts.Heartbeat; hb > 0 && hb/2 < tick {
		tick = hb / 2
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.maintDone:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		now := time.Now()
		if c.conn != nil && len(c.unacked) > 0 && c.opts.ResendTimeout > 0 &&
			now.Sub(c.lastAck) > c.opts.ResendTimeout {
			// Ack progress stalled: assume silent loss, force replay.
			c.logf("wire: client %s: %d unacked past resend timeout; reconnecting", c.opts.Stream, len(c.unacked))
			c.connFailedLocked(errors.New("wire: resend timeout"))
			c.mu.Unlock()
			continue
		}
		if hb := c.opts.Heartbeat; hb > 0 && c.conn != nil && now.Sub(c.lastSend) >= hb {
			sw := c.sw
			c.lastSend = now
			if err := sw.heartbeat(); err != nil {
				c.connFailedLocked(err)
			} else {
				c.m.heartbeats.Inc()
			}
		}
		c.mu.Unlock()
	}
}

// WaitAcked blocks until every sent message has been acknowledged by
// the server, the context is done, or the client fails permanently.
func (c *Client) WaitAcked(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.unacked) == 0 {
			return nil
		}
		if c.closed {
			return ErrClientClosed
		}
		if c.failed != nil {
			return c.failed
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("wire: %d messages still unacked: %w", len(c.unacked), err)
		}
		c.cond.Wait()
	}
}

// Acked returns the highest sequence the server has acknowledged.
func (c *Client) Acked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// Unacked returns the number of buffered, unacknowledged messages.
func (c *Client) Unacked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.unacked)
}

// Reconnects returns how many reconnection attempts have been made.
func (c *Client) Reconnects() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempt
}

// Close closes the agent's connection and stops reconnection. Buffered
// unacknowledged messages are dropped; call WaitAcked first for a clean
// drain.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn = nil
		c.sw = nil
	}
	c.gen++
	c.failFpWaitersLocked("wire: client closed")
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.maintDone != nil {
		close(c.maintDone)
	}
	return err
}

package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/fib"
	"repro/internal/obs"
)

// CorruptPolicy decides what to do with a data frame whose envelope
// parsed (device and sequence are known) but whose Msg body did not.
// Returning true consumes the frame — the stream advances past it and
// the sender is acked, typically after quarantining the device.
// Returning false drops the connection (the pre-session strictness).
type CorruptPolicy func(dev fib.DeviceID, seq uint64, err error) bool

// ServerOption tunes a Server.
type ServerOption func(*serverOpts)

type serverOpts struct {
	window           int
	readTimeout      time.Duration
	writeTimeout     time.Duration
	acceptBackoffMax time.Duration
	corrupt          CorruptPolicy
	subscribe        SubscribeHook
	results          ResultsHook
	fingerprint      FingerprintHook
	logf             func(string, ...any)
	deferAcks        bool
	preload          map[string]uint64
}

func defaultServerOpts() serverOpts {
	return serverOpts{
		window:           1024,
		acceptBackoffMax: time.Second,
	}
}

// WithWindow bounds the number of out-of-order frames buffered per
// stream while waiting for a gap to be filled by replay. Frames beyond
// the window are dropped unacknowledged (the client re-sends them).
func WithWindow(n int) ServerOption {
	return func(o *serverOpts) {
		if n > 0 {
			o.window = n
		}
	}
}

// WithReadTimeout closes connections that stay silent for longer than d
// (clients send heartbeats to stay alive). 0 disables the deadline.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(o *serverOpts) { o.readTimeout = d }
}

// WithWriteTimeout bounds each ack/heartbeat write. 0 disables.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(o *serverOpts) { o.writeTimeout = d }
}

// WithAcceptBackoff caps the exponential backoff used when Accept fails
// with a temporary error (e.g. file-descriptor exhaustion): the server
// retries instead of dying.
func WithAcceptBackoff(max time.Duration) ServerOption {
	return func(o *serverOpts) {
		if max > 0 {
			o.acceptBackoffMax = max
		}
	}
}

// WithCorruptPolicy installs the policy for data frames whose body does
// not parse. Without one, such frames drop the connection.
func WithCorruptPolicy(p CorruptPolicy) ServerOption {
	return func(o *serverOpts) { o.corrupt = p }
}

// WithServerLog directs the server's operational messages (connection
// teardown causes, quarantine events) to f. Default: silent.
func WithServerLog(f func(string, ...any)) ServerOption {
	return func(o *serverOpts) { o.logf = f }
}

// SubscribeHook connects a subscribe frame to the application's verdict
// source: it is called once per subscribe frame with the requested spec
// and a push function that writes a verdict frame to the subscribing
// connection (safe to call from any goroutine; a push error means the
// connection is gone). It returns a cancel function the server invokes
// when the connection closes, or an error to reject the subscription.
type SubscribeHook func(spec string, push func(VerdictEvent) error) (cancel func(), err error)

// WithSubscriptions installs the hook serving subscribe frames. Without
// one, subscribe frames are ignored (logged, connection kept).
func WithSubscriptions(h SubscribeHook) ServerOption {
	return func(o *serverOpts) { o.subscribe = h }
}

// ResultsHook connects a result-sub frame to the application's result
// stream, mirroring SubscribeHook: it is called once per result-sub
// frame with the requested subspace filter (empty = all) and a push
// function that writes a result frame to the subscribing connection.
// Pushes made from inside the server's data-frame handler are written
// before that frame's ack, so a client that has drained its acks has
// observed every result its sends triggered. The returned cancel runs
// when the connection closes; an error rejects the subscription.
type ResultsHook func(subspaces []int, push func(ResultEvent) error) (cancel func(), err error)

// WithResults installs the hook serving result-sub frames. Without one,
// result-sub frames are ignored (logged, connection kept).
func WithResults(h ResultsHook) ServerOption {
	return func(o *serverOpts) { o.results = h }
}

// FingerprintHook answers fingerprint requests: it returns the
// application's per-subspace model digests for the epoch (global
// subspace index → digest). An error is relayed to the requester
// verbatim in the response frame.
type FingerprintHook func(epoch string) (map[int]string, error)

// WithFingerprints installs the hook answering fingerprint request
// frames. Without one, requests are answered with an error response
// (the connection is kept).
func WithFingerprints(h FingerprintHook) ServerOption {
	return func(o *serverOpts) { o.fingerprint = h }
}

// WithDeferredAcks makes the server ack only up to the durable floor —
// the highest sequence captured by a committed checkpoint (advanced via
// CommitDurable) — instead of the highest consumed sequence. With
// checkpointing enabled this is what makes restore lossless: a client
// prunes its replay buffer on every ack, so acking past the checkpoint
// would let a crash strand the restored server behind frames the client
// no longer holds. Consumed-but-not-durable frames stay buffered client
// side and are simply re-sent on reconnect (the dedup window discards
// them when they were already consumed).
func WithDeferredAcks() ServerOption {
	return func(o *serverOpts) { o.deferAcks = true }
}

// WithStreams preloads per-stream ingest state from a checkpoint: each
// entry maps a stream name to its next expected sequence number at
// capture time. A reconnecting agent resumes from that point — frames
// before it were already folded into the restored model and are acked
// (hence pruned) immediately; only the post-checkpoint suffix replays.
func WithStreams(streams map[string]uint64) ServerOption {
	return func(o *serverOpts) {
		if len(streams) == 0 {
			return
		}
		o.preload = make(map[string]uint64, len(streams))
		for name, next := range streams {
			o.preload[name] = next
		}
	}
}

// streamState is the server's per-stream ingest state. It survives the
// stream's connections: a reconnecting client re-binds to it by sending
// the same stream identity in its hello.
type streamState struct {
	next    uint64                 // next expected sequence
	pending map[uint64]pendingData // out-of-order frames awaiting the gap
	// durable is the highest sequence covered by a committed checkpoint
	// (meaningful only under WithDeferredAcks): acks never exceed it, so
	// clients keep every frame a post-crash restore might still need.
	durable uint64
	// awaiting marks preloaded streams (WithStreams) that have not yet
	// seen a hello since restore — the replica is still waiting for this
	// agent to reconnect (restore progress for /v1/healthz).
	awaiting bool
	// sw is the session writer of the stream's live connection, if any;
	// CommitDurable uses it to push the advanced ack floor proactively
	// so idle streams prune without waiting for traffic.
	sw *sessionWriter
}

type pendingData struct {
	device fib.DeviceID
	msg    Msg
	err    error // non-nil: body did not parse
}

// Server accepts agent connections and serializes their messages into a
// single handler, preserving per-stream order. Delivery is at least
// once with receiver-side dedup: each stream's frames are consumed
// exactly once, in sequence order, no matter how many times the client
// reconnects and replays them.
type Server struct {
	l       net.Listener
	handler func(Msg) error
	opts    serverOpts

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	streams map[string]*streamState
	wg      sync.WaitGroup

	m smetrics
}

// smetrics holds resolved observability handles; the zero value (all
// nil) is the uninstrumented no-op state.
type smetrics struct {
	framesRx      *obs.Counter // data frames consumed by the handler
	bytesRx       *obs.Counter // wire bytes consumed (headers included)
	decodeErrs    *obs.Counter // connections ended by a protocol error
	connsTotal    *obs.Counter // agent connections accepted
	connsLive     *obs.Gauge   // currently open agent connections
	updates       *obs.Counter // native rule updates carried by frames
	dupFrames     *obs.Counter // duplicate data frames discarded by dedup
	windowDrops   *obs.Counter // out-of-order frames beyond the window
	corruptFrames *obs.Counter // data frames whose body failed to parse
	handlerErrors *obs.Counter // handler rejections (frame not consumed)
	handlerPanics *obs.Counter // panics recovered around the handler
	acksTx        *obs.Counter // ack frames written
	reconnects    *obs.Counter // hello frames from reconnecting clients
	streamResets  *obs.Counter // stream state reset by a fresh incarnation
	connTimeouts  *obs.Counter // connections closed by the read deadline
	streamsLive   *obs.Gauge   // streams with server-side state
	subsTotal     *obs.Counter // subscribe frames accepted
	verdictsTx    *obs.Counter // verdict frames pushed
	resultSubs    *obs.Counter // result-sub frames accepted
	resultsTx     *obs.Counter // result frames pushed
	fpRequests    *obs.Counter // fingerprint requests answered
}

// Instrument attaches the server to an observability registry; call it
// before Serve. Instrument(nil) is a no-op.
func (s *Server) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	s.m = smetrics{
		framesRx:      r.Counter("frames_rx"),
		bytesRx:       r.Counter("bytes_rx"),
		decodeErrs:    r.Counter("decode_errors"),
		connsTotal:    r.Counter("conns_total"),
		connsLive:     r.Gauge("conns_live"),
		updates:       r.Counter("updates_rx"),
		dupFrames:     r.Counter("dup_frames"),
		windowDrops:   r.Counter("window_drops"),
		corruptFrames: r.Counter("corrupt_frames"),
		handlerErrors: r.Counter("handler_errors"),
		handlerPanics: r.Counter("handler_panics"),
		acksTx:        r.Counter("acks_tx"),
		reconnects:    r.Counter("reconnects"),
		streamResets:  r.Counter("stream_resets"),
		connTimeouts:  r.Counter("conn_timeouts"),
		streamsLive:   r.Gauge("streams"),
		subsTotal:     r.Counter("subscriptions_total"),
		verdictsTx:    r.Counter("verdicts_tx"),
		resultSubs:    r.Counter("result_subscriptions_total"),
		resultsTx:     r.Counter("results_tx"),
		fpRequests:    r.Counter("fingerprint_requests_total"),
	}
}

// NewServer creates a server on the listener; Serve must be called to
// start accepting.
func NewServer(l net.Listener, handler func(Msg) error, opts ...ServerOption) *Server {
	o := defaultServerOpts()
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{
		l:       l,
		handler: handler,
		opts:    o,
		conns:   make(map[net.Conn]struct{}),
		streams: make(map[string]*streamState),
	}
	for name, next := range o.preload {
		if next == 0 {
			next = 1
		}
		s.streams[name] = &streamState{
			next:     next,
			pending:  make(map[uint64]pendingData),
			durable:  next - 1,
			awaiting: true,
		}
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.logf != nil {
		s.opts.logf(format, args...)
	}
}

// Serve accepts connections until Close. Each connection's frames are
// decoded and its data frames passed to the handler under a lock (the
// dispatcher is single-threaded), in sequence order with duplicates
// discarded. Temporary accept errors back off and retry; Serve returns
// after the listener closes.
func (s *Server) Serve() error {
	backoff := 5 * time.Millisecond
	for {
		conn, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() || isTemporary(err) {
				s.logf("wire: accept: %v (retrying in %s)", err, backoff)
				time.Sleep(backoff)
				if backoff *= 2; backoff > s.opts.acceptBackoffMax {
					backoff = s.opts.acceptBackoffMax
				}
				continue
			}
			return err
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// isTemporary reports whether an accept error is worth retrying. The
// Temporary method is deprecated for general errors but remains the
// accepted signal for Accept failures (net/http retries on it too).
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

func (s *Server) serveConn(conn net.Conn) {
	s.m.connsTotal.Inc()
	s.m.connsLive.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.m.handlerPanics.Inc()
			s.logf("wire: connection handler panic: %v", r)
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.m.connsLive.Add(-1)
		s.wg.Done()
	}()
	fr := newFrameReader(bufio.NewReader(conn))
	sw := newSessionWriter(conn, s.opts.writeTimeout)
	var st *streamState
	var lastRead uint64
	var cancels []func()
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	for {
		if s.opts.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.readTimeout))
		}
		f, err := fr.read()
		s.m.bytesRx.Add(int64(fr.nread - lastRead))
		lastRead = fr.nread
		if err != nil {
			s.connEnded(conn, err)
			return
		}
		switch f.Type {
		case frameHello:
			if st != nil {
				// A second hello on a bound connection is a duplicated
				// frame; honoring it could rewind the dedup state.
				s.logf("wire: %s: duplicate hello ignored", conn.RemoteAddr())
				continue
			}
			var resumed bool
			st, resumed = s.bindStream(f.Hello, sw)
			if resumed {
				// Tell the reconnecting client where the stream stands so
				// it can prune already-consumed frames before replaying.
				s.sendAck(sw, st)
			}
			defer s.unbindWriter(st, sw)
		case frameData:
			if st == nil {
				s.m.decodeErrs.Inc()
				s.logf("wire: %s: data frame before hello", conn.RemoteAddr())
				return
			}
			ackNow, fatal := s.ingest(st, f)
			if fatal {
				return
			}
			if ackNow {
				s.sendAck(sw, st)
			}
		case frameHeartbeat:
			// Echo so the client's read deadline is refreshed too.
			if err := sw.heartbeat(); err != nil {
				return
			}
		case frameAck:
			// Clients do not ack the server; ignore.
		case frameSubscribe:
			if s.opts.subscribe == nil {
				s.logf("wire: %s: subscribe %q ignored (no hook)", conn.RemoteAddr(), f.Spec)
				continue
			}
			push := func(ev VerdictEvent) error {
				err := sw.verdict(ev)
				if err == nil {
					s.m.verdictsTx.Inc()
				}
				return err
			}
			cancel, err := s.opts.subscribe(f.Spec, push)
			if err != nil {
				s.logf("wire: %s: subscribe %q rejected: %v", conn.RemoteAddr(), f.Spec, err)
				continue
			}
			if cancel != nil {
				cancels = append(cancels, cancel)
			}
			s.m.subsTotal.Inc()
		case frameResultSub:
			if s.opts.results == nil {
				s.logf("wire: %s: result subscription ignored (no hook)", conn.RemoteAddr())
				continue
			}
			push := func(ev ResultEvent) error {
				err := sw.result(ev)
				if err == nil {
					s.m.resultsTx.Inc()
				}
				return err
			}
			cancel, err := s.opts.results(f.SubSet, push)
			if err != nil {
				s.logf("wire: %s: result subscription rejected: %v", conn.RemoteAddr(), err)
				continue
			}
			if cancel != nil {
				cancels = append(cancels, cancel)
			}
			s.m.resultSubs.Inc()
		case frameFpReq:
			rep := FingerprintReply{ID: f.Fp.ID}
			if s.opts.fingerprint == nil {
				rep.Err = "wire: no fingerprint hook"
			} else if parts, err := s.opts.fingerprint(f.FpEpoch); err != nil {
				rep.Err = err.Error()
			} else {
				rep.Parts = parts
			}
			order := make([]int, 0, len(rep.Parts))
			for i := range rep.Parts {
				order = append(order, i)
			}
			sort.Ints(order)
			if err := sw.fpResp(rep, order); err != nil {
				return
			}
			s.m.fpRequests.Inc()
		}
	}
}

// connEnded classifies why a connection's read loop stopped.
func (s *Server) connEnded(conn net.Conn, err error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed || errors.Is(err, io.EOF) {
		return // clean end, or our own Close tore the connection down
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.m.connTimeouts.Inc()
		s.logf("wire: %s: closing silent connection: %v", conn.RemoteAddr(), err)
		return
	}
	if errors.Is(err, ErrCorruptFrame) || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrTruncated) {
		s.m.decodeErrs.Inc()
	}
	s.logf("wire: %s: connection ended: %v", conn.RemoteAddr(), err)
}

// bindStream finds or creates the ingest state for a stream, reporting
// whether existing state was resumed. Only a reconnecting client
// (attempt > 0) resumes: an attempt-0 hello for a known stream is a
// fresh client incarnation whose sequence numbers restart at its First,
// so the stale dedup state would silently discard everything it sends —
// reset it instead.
func (s *Server) bindStream(h helloInfo, sw *sessionWriter) (*streamState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := h.First
	if first == 0 {
		first = 1
	}
	st, ok := s.streams[h.Stream]
	switch {
	case !ok:
		st = &streamState{next: first, pending: make(map[uint64]pendingData), durable: first - 1}
		s.streams[h.Stream] = st
		s.m.streamsLive.Set(int64(len(s.streams)))
	case h.Attempt == 0:
		// A fresh client incarnation restarts its sequence numbering, so
		// the durable floor from the old numbering is meaningless too.
		st.next = first
		st.durable = first - 1
		clear(st.pending)
		s.m.streamResets.Inc()
		s.logf("wire: stream %q: reset by a new client incarnation (next = %d)", h.Stream, first)
	}
	st.awaiting = false
	st.sw = sw
	if h.Attempt > 0 {
		s.m.reconnects.Inc()
	}
	return st, h.Attempt > 0
}

// unbindWriter detaches a closing connection's writer from its stream
// (unless a newer connection already took over).
func (s *Server) unbindWriter(st *streamState, sw *sessionWriter) {
	if st == nil {
		return
	}
	s.mu.Lock()
	if st.sw == sw {
		st.sw = nil
	}
	s.mu.Unlock()
}

// sendAck writes the stream's cumulative ack (highest contiguous
// sequence consumed — capped at the durable floor under deferred acks).
// Write errors are ignored: the client will learn the state from a later
// ack, or on reconnect. Under deferred acks the same floor value may be
// re-sent many times while consumption runs ahead of checkpoints; that
// is deliberate — any ack frame refreshes the client's resend timer, so
// an actively-streaming client never churns on replays.
func (s *Server) sendAck(sw *sessionWriter, st *streamState) {
	s.mu.Lock()
	seq := st.next - 1
	if s.opts.deferAcks && st.durable < seq {
		seq = st.durable
	}
	s.mu.Unlock()
	if err := sw.ack(seq); err == nil {
		s.m.acksTx.Inc()
	}
}

// SnapshotStreams runs capture with the per-stream next-expected
// sequence numbers while the server's ingest lock is held: no frame can
// be consumed between building the map and whatever state the callback
// captures on its own locks, making the checkpoint a consistent cut of
// stream positions and model state. The callback must not call back into
// the server.
func (s *Server) SnapshotStreams(capture func(streams map[string]uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]uint64, len(s.streams))
	for name, st := range s.streams {
		m[name] = st.next
	}
	capture(m)
}

// CommitDurable advances the durable-ack floor after a checkpoint
// commits: streams maps stream name → next expected sequence at the
// checkpoint's cut (as captured by SnapshotStreams). The new floor is
// pushed proactively to live connections so idle streams prune their
// replay buffers without waiting for traffic.
func (s *Server) CommitDurable(streams map[string]uint64) {
	type push struct {
		sw  *sessionWriter
		seq uint64
	}
	var pushes []push
	s.mu.Lock()
	for name, next := range streams {
		st, ok := s.streams[name]
		if !ok || next == 0 {
			continue
		}
		if d := next - 1; d > st.durable {
			st.durable = d
		}
		if st.sw != nil {
			seq := st.next - 1
			if s.opts.deferAcks && st.durable < seq {
				seq = st.durable
			}
			pushes = append(pushes, push{st.sw, seq})
		}
	}
	s.mu.Unlock()
	for _, p := range pushes {
		if err := p.sw.ack(p.seq); err == nil {
			s.m.acksTx.Inc()
		}
	}
}

// ResumePending reports restore progress: how many checkpoint-preloaded
// streams are still waiting for their agent's first reconnect, out of
// how many were preloaded. A load balancer should treat the replica as
// warming until pending reaches zero (see the flash healthz "restoring"
// state).
func (s *Server) ResumePending() (pending, preloaded int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	preloaded = len(s.opts.preload)
	for _, st := range s.streams {
		if st.awaiting {
			pending++
		}
	}
	return pending, preloaded
}

// ingest routes one data frame through the stream's in-order, dedup
// window. It reports whether an ack should be sent and whether the
// connection must be dropped.
func (s *Server) ingest(st *streamState, f sessionFrame) (ackNow, fatal bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, true
	}
	switch {
	case f.Seq < st.next:
		// Already consumed (an at-least-once replay): discard, but re-ack
		// so the client prunes its buffer.
		s.m.dupFrames.Inc()
		return true, false
	case f.Seq > st.next:
		// A gap: an earlier frame was lost (or is still in flight).
		// Buffer within the window; the client's replay fills the gap.
		if f.Seq-st.next > uint64(s.opts.window) {
			s.m.windowDrops.Inc()
			return false, false
		}
		if _, dup := st.pending[f.Seq]; dup {
			s.m.dupFrames.Inc()
			return false, false
		}
		st.pending[f.Seq] = pendingData{device: f.Device, msg: f.Msg, err: f.MsgErr}
		return false, false
	}
	// Head of stream: consume it, then drain any buffered successors.
	cur := pendingData{device: f.Device, msg: f.Msg, err: f.MsgErr}
	for {
		ok, dead := s.consume(st.next, cur)
		if dead {
			return ackNow, true
		}
		if !ok {
			// Handler rejection: the frame is not consumed and not acked;
			// the client replays it after its resend timeout.
			return ackNow, false
		}
		st.next++
		ackNow = true
		nxt, have := st.pending[st.next]
		if !have {
			return ackNow, false
		}
		delete(st.pending, st.next)
		cur = nxt
	}
}

// consume applies one in-order frame: policy for corrupt bodies, the
// handler (panic-guarded) for parsed messages. ok reports the frame was
// consumed (the stream may advance); dead that the connection must drop.
func (s *Server) consume(seq uint64, pd pendingData) (ok, dead bool) {
	if pd.err != nil {
		s.m.corruptFrames.Inc()
		if s.opts.corrupt != nil && s.opts.corrupt(pd.device, seq, pd.err) {
			return true, false // discarded by policy; stream advances
		}
		s.logf("wire: device %d seq %d: dropping connection: %v", pd.device, seq, pd.err)
		return false, true
	}
	herr := s.callHandler(pd.msg)
	if herr != nil {
		s.m.handlerErrors.Inc()
		s.logf("wire: device %d seq %d: handler: %v", pd.device, seq, herr)
		return false, false
	}
	s.m.framesRx.Inc()
	s.m.updates.Add(int64(len(pd.msg.Updates)))
	return true, false
}

// callHandler invokes the handler, converting a panic into an error so
// one poisoned message cannot kill the server. The caller holds s.mu,
// preserving the single-threaded dispatcher contract.
func (s *Server) callHandler(m Msg) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.handlerPanics.Inc()
			err = fmt.Errorf("wire: handler panic: %v", r)
		}
	}()
	return s.handler(m)
}

// Streams reports the number of streams with server-side ingest state.
func (s *Server) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain. Stream state is discarded.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

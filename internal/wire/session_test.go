package wire

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fib"
)

// collector is a test handler recording consumed messages in order.
type collector struct {
	mu   sync.Mutex
	msgs []Msg
}

func (c *collector) handle(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	return nil
}

func (c *collector) epochs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.msgs))
	for i, m := range c.msgs {
		out[i] = m.Epoch
	}
	return out
}

func startTestServer(t *testing.T, handler func(Msg) error, opts ...ServerOption) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, handler, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func testMsg(dev fib.DeviceID, epoch string) Msg {
	return Msg{Device: dev, Epoch: epoch, Updates: []Update{{
		Op:   fib.Insert,
		Rule: Rule{ID: 1, Pri: 1, Action: fib.Forward(2), Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 9, Len: 16}}},
	}}}
}

func TestClientSendAcked(t *testing.T) {
	c := &collector{}
	_, addr := startTestServer(t, c.handle)
	cl, err := NewClient(addr, ClientOptions{Stream: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if err := cl.Send(testMsg(fib.DeviceID(i%3), fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitAcked(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cl.Acked(); got != 10 {
		t.Fatalf("acked = %d, want 10", got)
	}
	want := make([]string, 10)
	for i := range want {
		want[i] = fmt.Sprintf("m%d", i)
	}
	if got := c.epochs(); len(got) != 10 {
		t.Fatalf("server consumed %d msgs, want 10: %v", len(got), got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order broken at %d: got %v", i, got)
			}
		}
	}
}

// TestReconnectReplay kills the client's connection mid-stream and
// checks that replay with server-side dedup delivers every message
// exactly once, in order.
func TestReconnectReplay(t *testing.T) {
	c := &collector{}
	srv, addr := startTestServer(t, c.handle)
	var (
		connMu sync.Mutex
		conns  []net.Conn
	)
	cl, err := NewClient(addr, ClientOptions{
		Stream:        "replayer",
		Reconnect:     true,
		BackoffMin:    time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		ResendTimeout: 250 * time.Millisecond,
		Rand:          rand.New(rand.NewSource(1)),
		Dial: func(a string) (net.Conn, error) {
			conn, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			connMu.Lock()
			conns = append(conns, conn)
			connMu.Unlock()
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	total := 30
	for i := 0; i < total; i++ {
		if err := cl.Send(testMsg(1, fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 5 {
			// Sever the live connection; later sends land in the replay
			// buffer until the backoff loop re-dials.
			connMu.Lock()
			conns[len(conns)-1].Close()
			connMu.Unlock()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitAcked(ctx); err != nil {
		t.Fatal(err)
	}
	got := c.epochs()
	if len(got) != total {
		t.Fatalf("server consumed %d msgs, want %d (dups or loss): %v", len(got), total, got)
	}
	for i := range got {
		if got[i] != fmt.Sprintf("m%d", i) {
			t.Fatalf("order broken at %d: got %s", i, got[i])
		}
	}
	if cl.Reconnects() == 0 {
		t.Fatal("expected at least one reconnect")
	}
	if srv.Streams() != 1 {
		t.Fatalf("streams = %d, want 1", srv.Streams())
	}
}

// rawSession drives the server with hand-built frames.
type rawSession struct {
	t    *testing.T
	conn net.Conn
	sw   *sessionWriter
	fr   *frameReader
}

func dialRaw(t *testing.T, addr, stream string, first uint64) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rs := &rawSession{t: t, conn: conn, sw: newSessionWriter(conn, 0), fr: newFrameReader(bufio.NewReader(conn))}
	if err := rs.sw.hello(helloInfo{Version: sessionVersion, Stream: stream, First: first}); err != nil {
		t.Fatal(err)
	}
	return rs
}

func (rs *rawSession) send(seq uint64, m Msg) {
	rs.t.Helper()
	if err := rs.sw.data(m.Device, seq, m); err != nil {
		rs.t.Fatal(err)
	}
}

// waitAck reads frames until a cumulative ack ≥ seq arrives.
func (rs *rawSession) waitAck(seq uint64) {
	rs.t.Helper()
	rs.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		f, err := rs.fr.read()
		if err != nil {
			rs.t.Fatalf("waiting for ack %d: %v", seq, err)
		}
		if f.Type == frameAck && f.Seq >= seq {
			return
		}
	}
}

// TestServerDedupAndReorder feeds duplicates and out-of-order frames
// directly; the handler must see each message exactly once, in order.
func TestServerDedupAndReorder(t *testing.T) {
	c := &collector{}
	srv, addr := startTestServer(t, c.handle)
	rs := dialRaw(t, addr, "raw", 1)

	rs.send(1, testMsg(1, "m1"))
	rs.waitAck(1)
	rs.send(3, testMsg(1, "m3")) // gap: buffered in the window
	rs.send(4, testMsg(1, "m4")) // gap: buffered
	rs.send(1, testMsg(1, "m1")) // dup of consumed frame
	rs.send(2, testMsg(1, "m2")) // fills the gap; 2,3,4 drain
	rs.waitAck(4)
	rs.send(2, testMsg(1, "m2")) // replayed dup after consumption
	rs.waitAck(4)

	want := []string{"m1", "m2", "m3", "m4"}
	got := c.epochs()
	if len(got) != len(want) {
		t.Fatalf("consumed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("consumed %v, want %v", got, want)
		}
	}
	if srv.Streams() != 1 {
		t.Fatalf("streams = %d, want 1", srv.Streams())
	}
}

// TestCorruptBodyPolicy sends a data frame whose envelope parses but
// whose Msg body does not: with a corrupt policy the connection (and
// later frames) must survive; the poisoned frame is attributed to its
// device and skipped.
func TestCorruptBodyPolicy(t *testing.T) {
	c := &collector{}
	var (
		polMu   sync.Mutex
		polDev  fib.DeviceID
		polSeq  uint64
		polHits int
	)
	_, addr := startTestServer(t, c.handle, WithCorruptPolicy(func(dev fib.DeviceID, seq uint64, err error) bool {
		polMu.Lock()
		defer polMu.Unlock()
		polDev, polSeq = dev, seq
		polHits++
		return true
	}))
	rs := dialRaw(t, addr, "corrupt", 1)

	// Seq 1: envelope for device 7, then a garbage body (too short for a
	// Msg header).
	w := msgWriter{buf: []byte{frameData}}
	w.u32(7)
	w.u64(1)
	w.u8(0xFF)
	if err := writeFrame(bufio.NewWriter(rs.conn), w.buf); err != nil {
		t.Fatal(err)
	}
	rs.send(2, testMsg(7, "good"))
	rs.waitAck(2)

	polMu.Lock()
	defer polMu.Unlock()
	if polHits != 1 || polDev != 7 || polSeq != 1 {
		t.Fatalf("corrupt policy: hits=%d dev=%d seq=%d, want 1/7/1", polHits, polDev, polSeq)
	}
	got := c.epochs()
	if len(got) != 1 || got[0] != "good" {
		t.Fatalf("consumed %v, want [good]", got)
	}
}

// TestHandlerPanicRecovered: a panicking handler must not kill the
// server; the frame stays unacked (the client would replay it) and the
// connection lives on.
func TestHandlerPanicRecovered(t *testing.T) {
	c := &collector{}
	boom := true
	var mu sync.Mutex
	_, addr := startTestServer(t, func(m Msg) error {
		mu.Lock()
		b := boom
		boom = false
		mu.Unlock()
		if b {
			panic("poisoned message")
		}
		return c.handle(m)
	})
	rs := dialRaw(t, addr, "panic", 1)
	rs.send(1, testMsg(1, "m1")) // panics; not consumed, not acked
	rs.send(1, testMsg(1, "m1")) // replay succeeds
	rs.waitAck(1)
	if got := c.epochs(); len(got) != 1 || got[0] != "m1" {
		t.Fatalf("consumed %v, want [m1]", got)
	}
}

// TestFreshIncarnationResetsStream: a new client process reusing a
// stream identity restarts its sequence numbers; the server must reset
// the stream's ingest state instead of silently deduping everything the
// new incarnation sends.
func TestFreshIncarnationResetsStream(t *testing.T) {
	c := &collector{}
	srv, addr := startTestServer(t, c.handle)
	rs := dialRaw(t, addr, "reused", 1)
	rs.send(1, testMsg(1, "old1"))
	rs.send(2, testMsg(1, "old2"))
	rs.waitAck(2)
	rs.conn.Close()

	rs2 := dialRaw(t, addr, "reused", 1) // attempt 0: a fresh incarnation
	rs2.send(1, testMsg(1, "new1"))
	rs2.waitAck(1)

	want := []string{"old1", "old2", "new1"}
	got := c.epochs()
	if len(got) != len(want) {
		t.Fatalf("consumed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("consumed %v, want %v", got, want)
		}
	}
	if srv.Streams() != 1 {
		t.Fatalf("streams = %d, want 1 (reset, not a second stream)", srv.Streams())
	}
}

// TestDuplicateHelloIgnored: a duplicated hello frame on a bound
// connection must not rewind the dedup state (a rewind would re-apply
// already-consumed frames on replay).
func TestDuplicateHelloIgnored(t *testing.T) {
	c := &collector{}
	_, addr := startTestServer(t, c.handle)
	rs := dialRaw(t, addr, "dup-hello", 1)
	rs.send(1, testMsg(1, "m1"))
	rs.waitAck(1)
	// The transport duplicates the hello mid-session.
	if err := rs.sw.hello(helloInfo{Version: sessionVersion, Stream: "dup-hello", First: 1}); err != nil {
		t.Fatal(err)
	}
	rs.send(1, testMsg(1, "m1")) // replay of a consumed frame: still a dup
	rs.send(2, testMsg(1, "m2"))
	rs.waitAck(2)
	want := []string{"m1", "m2"}
	got := c.epochs()
	if len(got) != len(want) {
		t.Fatalf("consumed %v, want %v (hello rewound the stream)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("consumed %v, want %v", got, want)
		}
	}
}

// TestClientHeartbeat keeps an idle connection alive under a server read
// deadline shorter than the idle period.
func TestClientHeartbeat(t *testing.T) {
	c := &collector{}
	_, addr := startTestServer(t, c.handle, WithReadTimeout(150*time.Millisecond))
	cl, err := NewClient(addr, ClientOptions{
		Stream:    "hb",
		Reconnect: true,
		Heartbeat: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(400 * time.Millisecond) // several read-deadline periods idle
	if err := cl.Send(testMsg(1, "after-idle")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitAcked(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cl.Reconnects(); got != 0 {
		t.Fatalf("heartbeats should have kept the connection alive; reconnects = %d", got)
	}
}

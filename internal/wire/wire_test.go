package wire

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fib"
)

func sampleMsg() Msg {
	return Msg{
		Device: 42,
		Epoch:  "abcdef0123456789",
		Updates: []Update{
			{Op: fib.Insert, Rule: Rule{ID: 7, Pri: 3, Action: fib.Forward(9), Desc: fib.MatchDesc{
				{Field: "dst", Kind: fib.MatchPrefix, Value: 0xAB00, Len: 8},
			}}},
			{Op: fib.Delete, Rule: Rule{ID: 7, Pri: 3, Action: fib.Drop, Desc: fib.MatchDesc{
				{Field: "dst", Kind: fib.MatchTernary, Value: 0x3, Mask: 0xF},
				{Field: "src", Kind: fib.MatchPrefix, Value: 0x10, Len: 4},
			}}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := sampleMsg()
	if err := enc.Encode(want); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	type qField struct {
		Name byte
		Kind bool
		V    uint64
		L    uint8
		M    uint64
	}
	type qUpdate struct {
		Ins    bool
		ID     int64
		Pri    int32
		Act    uint16
		Fields []qField
	}
	check := func(dev uint16, epoch string, ups []qUpdate) bool {
		if len(epoch) > 1000 {
			epoch = epoch[:1000]
		}
		m := Msg{Device: fib.DeviceID(dev), Epoch: epoch}
		for _, qu := range ups {
			u := Update{Op: fib.Delete, Rule: Rule{ID: qu.ID, Pri: qu.Pri, Action: fib.Action(qu.Act)}}
			if qu.Ins {
				u.Op = fib.Insert
			}
			for _, f := range qu.Fields {
				kind := fib.MatchPrefix
				if f.Kind {
					kind = fib.MatchTernary
				}
				u.Rule.Desc = append(u.Rule.Desc, fib.FieldMatch{
					Field: string('a' + rune(f.Name%26)), Kind: kind,
					Value: f.V, Len: int(f.L), Mask: f.M,
				})
			}
			m.Updates = append(m.Updates, u)
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(m); err != nil {
			return false
		}
		got, err := NewDecoder(&buf).Decode()
		if err != nil {
			return false
		}
		if len(got.Updates) == 0 {
			got.Updates = nil
		}
		if len(m.Updates) == 0 {
			m.Updates = nil
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// Truncated header.
	if _, err := NewDecoder(bytes.NewReader([]byte{0, 0})).Decode(); err == nil {
		t.Error("truncated header accepted")
	}
	// Oversized frame.
	var hdr [4]byte
	hdr[0] = 0xFF
	if _, err := NewDecoder(bytes.NewReader(hdr[:])).Decode(); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated body.
	body := []byte{0, 0, 0, 10, 1, 2, 3}
	if _, err := NewDecoder(bytes.NewReader(body)).Decode(); err == nil {
		t.Error("truncated body accepted")
	}
	// Implausible update count inside a tiny frame.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(Msg{Device: 1, Epoch: "e"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the update count field (last 4 bytes of the frame).
	raw[len(raw)-1] = 0xFF
	raw[len(raw)-2] = 0xFF
	if _, err := NewDecoder(bytes.NewReader(raw)).Decode(); err == nil {
		t.Error("implausible count accepted")
	}
	// Random fuzz must never panic.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		junk := make([]byte, rng.Intn(64))
		rng.Read(junk)
		var frame []byte
		frame = append(frame, 0, 0, 0, byte(len(junk)))
		frame = append(frame, junk...)
		NewDecoder(bytes.NewReader(frame)).Decode()
	}
}

func TestFromFib(t *testing.T) {
	desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 4, Len: 2}}
	ups := []fib.Update{{Op: fib.Insert, Rule: fib.Rule{ID: 1, Pri: 1, Action: fib.Drop, Desc: desc}}}
	m, err := FromFib(3, "e1", ups)
	if err != nil {
		t.Fatal(err)
	}
	if m.Device != 3 || m.Epoch != "e1" || len(m.Updates) != 1 {
		t.Fatalf("FromFib = %+v", m)
	}
	// Rules without descriptors are rejected.
	if _, err := FromFib(3, "e1", []fib.Update{{Op: fib.Insert, Rule: fib.Rule{ID: 2}}}); err == nil {
		t.Error("opaque rule accepted")
	}
}

func TestServerEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Msg
	srv := NewServer(l, func(m Msg) error {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		return nil
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	const agents = 4
	const perAgent = 25
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			ag, err := Dial(l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer ag.Close()
			for i := 0; i < perAgent; i++ {
				m := sampleMsg()
				m.Device = fib.DeviceID(a)
				m.Updates[0].Rule.ID = int64(i)
				if err := ag.Send(m); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	// Drain: wait until all messages arrive (handlers run on conn
	// goroutines; poll briefly).
	for i := 0; i < 200; i++ {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == agents*perAgent {
			break
		}
		if i == 199 {
			t.Fatalf("received %d messages, want %d", n, agents*perAgent)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Per-device order preserved.
	lastID := map[fib.DeviceID]int64{}
	mu.Lock()
	defer mu.Unlock()
	for _, m := range got {
		id := m.Updates[0].Rule.ID
		if last, ok := lastID[m.Device]; ok && id != last+1 {
			t.Fatalf("device %d order broken: %d after %d", m.Device, id, last)
		}
		lastID[m.Device] = id
	}
}

package wire

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// These tests pin the checkpoint-integration contract of the session
// layer: under WithDeferredAcks the server never acks past the durable
// floor, CommitDurable advances the floor (proactively, to idle
// connections too), and WithStreams lets a restored server resume a
// reconnecting agent from the checkpointed sequence number — replayed
// pre-checkpoint frames are pruned, not re-consumed.

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeferredAcksHoldUntilCommitDurable(t *testing.T) {
	c := &collector{}
	srv, addr := startTestServer(t, c.handle, WithDeferredAcks())
	cl, err := NewClient(addr, ClientOptions{Stream: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if err := cl.Send(testMsg(1, fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "server consumption", func() bool { return len(c.epochs()) == 5 })

	// All five frames are consumed, but the durable floor is 0: nothing
	// may be acked, so the client's replay buffer must stay full.
	time.Sleep(50 * time.Millisecond)
	if got := cl.Acked(); got != 0 {
		t.Fatalf("acked = %d before any checkpoint, want 0", got)
	}
	if got := cl.Unacked(); got != 5 {
		t.Fatalf("unacked = %d, want 5", got)
	}

	// A checkpoint commits at the cut captured by SnapshotStreams: the
	// floor advances and is pushed to the idle connection proactively.
	var streams map[string]uint64
	srv.SnapshotStreams(func(m map[string]uint64) { streams = m })
	if streams["s1"] != 6 {
		t.Fatalf("snapshot next = %d, want 6", streams["s1"])
	}
	srv.CommitDurable(streams)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitAcked(ctx); err != nil {
		t.Fatalf("acks never advanced after CommitDurable: %v", err)
	}
	if got := cl.Acked(); got != 5 {
		t.Fatalf("acked = %d after commit, want 5", got)
	}
}

// TestRestoredServerResumesStream emulates a warm restart: a deferred-ack
// server consumes five frames, a checkpoint captures the stream cut, the
// server dies without ever acking, and a new server preloaded with the
// checkpointed stream state takes over. The surviving agent reconnects,
// replays its full buffer, and the restored server must prune the
// pre-checkpoint prefix (ack without consuming) and consume only the
// suffix.
func TestRestoredServerResumesStream(t *testing.T) {
	c1 := &collector{}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(l1, c1.handle, WithDeferredAcks())
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve() }()

	var (
		addrMu sync.Mutex
		addr   = l1.Addr().String()
	)
	cl, err := NewClient(addr, ClientOptions{
		Stream:        "agent-7",
		Reconnect:     true,
		BackoffMin:    time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		ResendTimeout: 100 * time.Millisecond,
		Rand:          rand.New(rand.NewSource(7)),
		Dial: func(string) (net.Conn, error) {
			addrMu.Lock()
			a := addr
			addrMu.Unlock()
			return net.Dial("tcp", a)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 5; i++ {
		if err := cl.Send(testMsg(2, fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "first server consumption", func() bool { return len(c1.epochs()) == 5 })

	// Checkpoint cut, then crash: the server never acked (deferred, no
	// commit), so the client still buffers all five frames.
	var streams map[string]uint64
	srv1.SnapshotStreams(func(m map[string]uint64) { streams = m })
	srv1.Close()
	<-done1
	if cl.Unacked() != 5 {
		t.Fatalf("unacked = %d after crash, want 5", cl.Unacked())
	}

	// Warm restart: new server preloaded from the checkpoint.
	c2 := &collector{}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(l2, c2.handle, WithDeferredAcks(), WithStreams(streams))
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve() }()
	t.Cleanup(func() { srv2.Close(); <-done2 })

	if pending, preloaded := srv2.ResumePending(); pending != 1 || preloaded != 1 {
		t.Fatalf("ResumePending before reconnect = (%d, %d), want (1, 1)", pending, preloaded)
	}

	addrMu.Lock()
	addr = l2.Addr().String()
	addrMu.Unlock()

	// The agent redials (attempt > 0) and replays frames 1..5: all below
	// the preloaded next-expected sequence, so they are acked up to the
	// durable floor and pruned — never handed to the handler again.
	waitFor(t, "replay pruning", func() bool { return cl.Acked() == 5 })
	if pending, preloaded := srv2.ResumePending(); pending != 0 || preloaded != 1 {
		t.Fatalf("ResumePending after reconnect = (%d, %d), want (0, 1)", pending, preloaded)
	}
	if got := c2.epochs(); len(got) != 0 {
		t.Fatalf("restored server re-consumed pre-checkpoint frames: %v", got)
	}

	// Post-checkpoint traffic is consumed normally and held below the
	// durable floor until the next checkpoint commits.
	for i := 5; i < 7; i++ {
		if err := cl.Send(testMsg(2, fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "suffix consumption", func() bool { return len(c2.epochs()) == 2 })
	if got := c2.epochs(); got[0] != "m5" || got[1] != "m6" {
		t.Fatalf("suffix = %v, want [m5 m6]", got)
	}
	if got := cl.Acked(); got != 5 {
		t.Fatalf("acked = %d past durable floor without a checkpoint", got)
	}

	srv2.SnapshotStreams(func(m map[string]uint64) { streams = m })
	if streams["agent-7"] != 8 {
		t.Fatalf("second snapshot next = %d, want 8", streams["agent-7"])
	}
	srv2.CommitDurable(streams)
	waitFor(t, "post-commit acks", func() bool { return cl.Acked() == 7 })
}

// TestFreshIncarnationResetsPreload: an attempt-0 hello is a brand-new
// client whose numbering restarts, so preloaded stream state must be
// discarded rather than silently swallowing everything it sends.
func TestFreshIncarnationResetsPreload(t *testing.T) {
	c := &collector{}
	srv, addr := startTestServer(t, c.handle, WithStreams(map[string]uint64{"s2": 100}))
	if pending, _ := srv.ResumePending(); pending != 1 {
		t.Fatalf("pending = %d, want 1", pending)
	}
	cl, err := NewClient(addr, ClientOptions{Stream: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Send(testMsg(1, "fresh")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitAcked(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.epochs(); len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("consumed %v, want the fresh client's frame", got)
	}
	if pending, _ := srv.ResumePending(); pending != 0 {
		t.Fatalf("pending = %d after fresh hello, want 0", pending)
	}
}

package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to both framing layers: the Msg
// codec (Decoder) and the session frame reader. Malformed input must
// never panic — every failure has to surface as a typed error (or a
// clean io.EOF), and an error must actually be typed: one of the wire
// sentinels or an I/O error, never a bare string.
func FuzzWireDecode(f *testing.F) {
	// Seed with a valid frame, a truncation of it, and header edge cases
	// (see testdata/fuzz/FuzzWireDecode for more).
	valid, err := appendMsgBody(nil, Msg{Device: 3, Epoch: "e1"})
	if err != nil {
		f.Fatal(err)
	}
	var framed bytes.Buffer
	if err := writeFrame(bufio.NewWriter(&framed), valid); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add(framed.Bytes()[:framed.Len()-1])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // oversized length header
	f.Add([]byte{0, 0, 0, 1})             // truncated 1-byte body

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		for {
			_, err := d.Decode()
			if err != nil {
				checkTyped(t, err)
				break
			}
		}
		fr := newFrameReader(bufio.NewReader(bytes.NewReader(data)))
		for {
			_, err := fr.read()
			if err != nil {
				checkTyped(t, err)
				break
			}
		}
	})
}

func checkTyped(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, io.EOF) ||
		errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrCorruptFrame) {
		return
	}
	t.Fatalf("decode error is not a typed sentinel: %v", err)
}

// Package wire implements the update-feed protocol between device agents
// and the Flash dispatcher: length-prefixed binary frames over TCP,
// playing the role of the Thrift messages in the paper's deployment.
//
// A frame carries one epoch-tagged update message: the device ID, the
// epoch tag, and a block of native rule updates in symbolic (MatchDesc)
// form — predicates are compiled against the receiver's BDD engine, since
// BDD references are engine-local. Per-connection framing preserves the
// per-device ordering §4.1 requires; the server serializes all
// connections into a single handler, matching the dispatcher's
// single-goroutine model.
//
// Two layers share the framing:
//
//   - The message codec (Encoder/Decoder) reads and writes bare Msg
//     frames. Snapshot files (snapshot.go) are sequences of these.
//   - The session protocol (session.go, server.go, client.go) wraps the
//     same Msg bodies in typed frames carrying stream identity and
//     sequence numbers, giving at-least-once delivery with receiver-side
//     dedup across agent reconnects.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/fib"
)

// MaxFrame bounds a frame's payload size (a storm block of ~1M updates).
const MaxFrame = 64 << 20

// Typed sentinel errors. Callers distinguish protocol corruption from
// I/O loss with errors.Is; the concrete errors wrap these with %w and
// carry the specifics (sizes, offsets) in their message.
var (
	// ErrFrameTooLarge reports a frame whose declared length exceeds
	// MaxFrame — either corruption of the length header or a hostile
	// peer. The stream cannot be resynchronized past it.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

	// ErrTruncated reports a stream that ended mid-frame (short read of
	// the header or body): I/O loss, e.g. a mid-frame disconnect.
	ErrTruncated = errors.New("wire: truncated frame")

	// ErrCorruptFrame reports a frame whose body was fully read but does
	// not parse: protocol corruption with framing intact, so a session
	// receiver may skip the frame and keep the connection.
	ErrCorruptFrame = errors.New("wire: corrupt frame")
)

// Rule is the symbolic form of a forwarding rule on the wire.
type Rule struct {
	ID     int64
	Pri    int32
	Action fib.Action
	Desc   fib.MatchDesc
}

// Update is one native rule update on the wire.
type Update struct {
	Op   fib.Op
	Rule Rule
}

// Msg is one epoch-tagged update block from a device agent.
type Msg struct {
	Device  fib.DeviceID
	Epoch   string
	Updates []Update
}

// ---- Msg body codec ----

// appendMsgBody appends the canonical encoding of m to buf.
func appendMsgBody(buf []byte, m Msg) ([]byte, error) {
	w := msgWriter{buf: buf}
	w.u32(uint32(m.Device))
	if err := w.str(m.Epoch); err != nil {
		return nil, err
	}
	w.u32(uint32(len(m.Updates)))
	for _, u := range m.Updates {
		w.u8(uint8(u.Op))
		w.u64(uint64(u.Rule.ID))
		w.u32(uint32(u.Rule.Pri))
		w.u32(uint32(u.Rule.Action))
		if len(u.Rule.Desc) > 0xFF {
			return nil, fmt.Errorf("wire: descriptor with %d constraints", len(u.Rule.Desc))
		}
		w.u8(uint8(len(u.Rule.Desc)))
		for _, f := range u.Rule.Desc {
			if err := w.str(f.Field); err != nil {
				return nil, err
			}
			w.u8(uint8(f.Kind))
			w.u64(f.Value)
			w.u32(uint32(f.Len))
			w.u64(f.Mask)
		}
	}
	return w.buf, nil
}

// parseMsgBody decodes a Msg from a fully-read frame body. Errors wrap
// ErrCorruptFrame.
func parseMsgBody(buf []byte) (Msg, error) {
	r := msgReader{buf: buf}
	var m Msg
	m.Device = fib.DeviceID(r.u32())
	m.Epoch = r.str()
	count := r.u32()
	if r.err == nil && int(count) > len(buf) { // each update is >1 byte
		return Msg{}, fmt.Errorf("wire: implausible update count %d: %w", count, ErrCorruptFrame)
	}
	m.Updates = make([]Update, 0, count)
	for i := uint32(0); i < count && r.err == nil; i++ {
		var u Update
		u.Op = fib.Op(r.u8())
		u.Rule.ID = int64(r.u64())
		u.Rule.Pri = int32(r.u32())
		u.Rule.Action = fib.Action(r.u32())
		nd := int(r.u8())
		for j := 0; j < nd && r.err == nil; j++ {
			var f fib.FieldMatch
			f.Field = r.str()
			f.Kind = fib.MatchKind(r.u8())
			f.Value = r.u64()
			f.Len = int(int32(r.u32()))
			f.Mask = r.u64()
			u.Rule.Desc = append(u.Rule.Desc, f)
		}
		m.Updates = append(m.Updates, u)
	}
	if r.err != nil {
		return Msg{}, r.err
	}
	if r.off != len(buf) {
		return Msg{}, fmt.Errorf("wire: %d trailing bytes in frame: %w", len(buf)-r.off, ErrCorruptFrame)
	}
	return m, nil
}

// msgWriter appends big-endian primitives to a buffer.
type msgWriter struct {
	buf []byte
}

func (w *msgWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *msgWriter) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *msgWriter) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *msgWriter) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *msgWriter) str(s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("wire: string of %d bytes too long", len(s))
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
	return nil
}

// msgReader is a bounds-checked cursor over a frame body. The first
// out-of-bounds read latches err; subsequent reads return zero values.
type msgReader struct {
	buf []byte
	off int
	err error
}

func (r *msgReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: frame body cut short at offset %d: %w", r.off, ErrCorruptFrame)
	}
}

func (r *msgReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *msgReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *msgReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *msgReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *msgReader) str() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// ---- Raw frame I/O (shared by the Msg codec and the session layer) ----

// writeFrame writes one length-prefixed frame and flushes it.
func writeFrame(w *bufio.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes: %w", len(body), ErrFrameTooLarge)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one length-prefixed frame body into buf (reusing its
// capacity) and returns the body plus the wire bytes consumed. It
// returns io.EOF at a clean stream end.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, uint64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return buf, 0, fmt.Errorf("wire: frame header cut short: %w", ErrTruncated)
		}
		return buf, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return buf, 4, fmt.Errorf("wire: frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, 4, fmt.Errorf("wire: frame body (%d of %d bytes): %w", len(buf), n, ErrTruncated)
	}
	return buf, 4 + uint64(n), nil
}

// ---- Msg codec (snapshot files, legacy framing) ----

// Encoder writes bare Msg frames to a stream.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
}

// NewEncoder wraps a writer (typically a net.Conn or a snapshot file).
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode writes one message as a frame and flushes it.
func (e *Encoder) Encode(m Msg) error {
	body, err := appendMsgBody(e.buf[:0], m)
	if err != nil {
		return err
	}
	e.buf = body
	return writeFrame(e.w, body)
}

// Decoder reads bare Msg frames from a stream.
type Decoder struct {
	r     *bufio.Reader
	buf   []byte
	nread uint64
}

// BytesRead reports the cumulative wire bytes consumed by successful and
// partial Decode calls, including frame headers.
func (d *Decoder) BytesRead() uint64 { return d.nread }

// NewDecoder wraps a reader (typically a net.Conn or a snapshot file).
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads the next message. It returns io.EOF at a clean stream
// end; other failures wrap ErrTruncated, ErrFrameTooLarge or
// ErrCorruptFrame so callers can tell I/O loss from protocol corruption.
func (d *Decoder) Decode() (Msg, error) {
	body, n, err := readFrame(d.r, d.buf)
	d.buf = body
	d.nread += n
	if err != nil {
		return Msg{}, err
	}
	return parseMsgBody(body)
}

// FromFib converts compiled updates to wire form; every rule must carry a
// symbolic descriptor.
func FromFib(dev fib.DeviceID, epoch string, ups []fib.Update) (Msg, error) {
	m := Msg{Device: dev, Epoch: epoch, Updates: make([]Update, 0, len(ups))}
	for _, u := range ups {
		if u.Rule.Desc == nil {
			return Msg{}, fmt.Errorf("wire: rule %d has no symbolic descriptor", u.Rule.ID)
		}
		m.Updates = append(m.Updates, Update{
			Op:   u.Op,
			Rule: Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc},
		})
	}
	return m, nil
}

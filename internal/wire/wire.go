// Package wire implements the update-feed protocol between device agents
// and the Flash dispatcher: length-prefixed binary frames over TCP,
// playing the role of the Thrift messages in the paper's deployment.
//
// A frame carries one epoch-tagged update message: the device ID, the
// epoch tag, and a block of native rule updates in symbolic (MatchDesc)
// form — predicates are compiled against the receiver's BDD engine, since
// BDD references are engine-local. Per-connection framing preserves the
// per-device ordering §4.1 requires; the server serializes all
// connections into a single handler, matching the dispatcher's
// single-goroutine model.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/fib"
	"repro/internal/obs"
)

// MaxFrame bounds a frame's payload size (a storm block of ~1M updates).
const MaxFrame = 64 << 20

// Rule is the symbolic form of a forwarding rule on the wire.
type Rule struct {
	ID     int64
	Pri    int32
	Action fib.Action
	Desc   fib.MatchDesc
}

// Update is one native rule update on the wire.
type Update struct {
	Op   fib.Op
	Rule Rule
}

// Msg is one epoch-tagged update block from a device agent.
type Msg struct {
	Device  fib.DeviceID
	Epoch   string
	Updates []Update
}

// Encoder writes frames to a stream.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
}

// NewEncoder wraps a writer (typically a net.Conn).
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

func (e *Encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *Encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *Encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *Encoder) str(s string) {
	if len(s) > 0xFFFF {
		panic("wire: string too long")
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// Encode writes one message as a frame and flushes it.
func (e *Encoder) Encode(m Msg) error {
	e.buf = e.buf[:0]
	e.u32(uint32(m.Device))
	e.str(m.Epoch)
	e.u32(uint32(len(m.Updates)))
	for _, u := range m.Updates {
		e.u8(uint8(u.Op))
		e.u64(uint64(u.Rule.ID))
		e.u32(uint32(u.Rule.Pri))
		e.u32(uint32(u.Rule.Action))
		if len(u.Rule.Desc) > 0xFF {
			return fmt.Errorf("wire: descriptor with %d constraints", len(u.Rule.Desc))
		}
		e.u8(uint8(len(u.Rule.Desc)))
		for _, f := range u.Rule.Desc {
			e.str(f.Field)
			e.u8(uint8(f.Kind))
			e.u64(f.Value)
			e.u32(uint32(f.Len))
			e.u64(f.Mask)
		}
	}
	if len(e.buf) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(e.buf))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(e.buf)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	return e.w.Flush()
}

// Decoder reads frames from a stream.
type Decoder struct {
	r     *bufio.Reader
	buf   []byte
	off   int
	err   error
	nread uint64
}

// BytesRead reports the cumulative wire bytes consumed by successful and
// partial Decode calls, including frame headers.
func (d *Decoder) BytesRead() uint64 { return d.nread }

// NewDecoder wraps a reader (typically a net.Conn).
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

func (d *Decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *Decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *Decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *Decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *Decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = errors.New("wire: truncated frame")
	}
}

// Decode reads the next message. It returns io.EOF at a clean stream end.
func (d *Decoder) Decode() (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Msg{}, errors.New("wire: truncated frame header")
		}
		return Msg{}, err
	}
	d.nread += 4
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Msg{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return Msg{}, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	d.nread += uint64(n)
	d.off, d.err = 0, nil

	var m Msg
	m.Device = fib.DeviceID(d.u32())
	m.Epoch = d.str()
	count := d.u32()
	if d.err == nil && int(count) > len(d.buf) { // each update is >1 byte
		return Msg{}, fmt.Errorf("wire: implausible update count %d", count)
	}
	m.Updates = make([]Update, 0, count)
	for i := uint32(0); i < count && d.err == nil; i++ {
		var u Update
		u.Op = fib.Op(d.u8())
		u.Rule.ID = int64(d.u64())
		u.Rule.Pri = int32(d.u32())
		u.Rule.Action = fib.Action(d.u32())
		nd := int(d.u8())
		for j := 0; j < nd && d.err == nil; j++ {
			var f fib.FieldMatch
			f.Field = d.str()
			f.Kind = fib.MatchKind(d.u8())
			f.Value = d.u64()
			f.Len = int(int32(d.u32()))
			f.Mask = d.u64()
			u.Rule.Desc = append(u.Rule.Desc, f)
		}
		m.Updates = append(m.Updates, u)
	}
	if d.err != nil {
		return Msg{}, d.err
	}
	if d.off != len(d.buf) {
		return Msg{}, fmt.Errorf("wire: %d trailing bytes in frame", len(d.buf)-d.off)
	}
	return m, nil
}

// Server accepts agent connections and serializes their messages into a
// single handler, preserving per-connection order.
type Server struct {
	l       net.Listener
	handler func(Msg) error

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	m smetrics
}

// smetrics holds resolved observability handles; the zero value (all
// nil) is the uninstrumented no-op state.
type smetrics struct {
	framesRx   *obs.Counter // frames decoded and handled
	bytesRx    *obs.Counter // wire bytes consumed (headers included)
	decodeErrs *obs.Counter // connections ended by a protocol error
	connsTotal *obs.Counter // agent connections accepted
	connsLive  *obs.Gauge   // currently open agent connections
	updates    *obs.Counter // native rule updates carried by frames
}

// Instrument attaches the server to an observability registry; call it
// before Serve. Instrument(nil) is a no-op.
func (s *Server) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	s.m = smetrics{
		framesRx:   r.Counter("frames_rx"),
		bytesRx:    r.Counter("bytes_rx"),
		decodeErrs: r.Counter("decode_errors"),
		connsTotal: r.Counter("conns_total"),
		connsLive:  r.Gauge("conns_live"),
		updates:    r.Counter("updates_rx"),
	}
}

// NewServer creates a server on the listener; Serve must be called to
// start accepting.
func NewServer(l net.Listener, handler func(Msg) error) *Server {
	return &Server{l: l, handler: handler, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until Close. Each connection's frames are
// decoded and passed to the handler under a lock (the dispatcher is
// single-threaded). Serve returns after the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	s.m.connsTotal.Inc()
	s.m.connsLive.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.m.connsLive.Add(-1)
		s.wg.Done()
	}()
	dec := NewDecoder(conn)
	var lastRead uint64
	for {
		m, err := dec.Decode()
		s.m.bytesRx.Add(int64(dec.BytesRead() - lastRead))
		lastRead = dec.BytesRead()
		if err != nil {
			// EOF is a clean stream end and a read failing because Close
			// tore the connection down is expected; anything else is a
			// protocol error (the connection is dropped either way).
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && !errors.Is(err, io.EOF) {
				s.m.decodeErrs.Inc()
			}
			return
		}
		s.m.framesRx.Inc()
		s.m.updates.Add(int64(len(m.Updates)))
		s.mu.Lock()
		closed := s.closed
		var herr error
		if !closed {
			herr = s.handler(m)
		}
		s.mu.Unlock()
		if closed || herr != nil {
			return
		}
	}
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

// Agent is a client that feeds update messages to a server.
type Agent struct {
	conn net.Conn
	enc  *Encoder
}

// Dial connects an agent to the server address.
func Dial(addr string) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Agent{conn: conn, enc: NewEncoder(conn)}, nil
}

// Send transmits one message.
func (a *Agent) Send(m Msg) error { return a.enc.Encode(m) }

// Close closes the agent's connection.
func (a *Agent) Close() error { return a.conn.Close() }

// FromFib converts compiled updates to wire form; every rule must carry a
// symbolic descriptor.
func FromFib(dev fib.DeviceID, epoch string, ups []fib.Update) (Msg, error) {
	m := Msg{Device: dev, Epoch: epoch, Updates: make([]Update, 0, len(ups))}
	for _, u := range ups {
		if u.Rule.Desc == nil {
			return Msg{}, fmt.Errorf("wire: rule %d has no symbolic descriptor", u.Rule.ID)
		}
		m.Updates = append(m.Updates, Update{
			Op:   u.Op,
			Rule: Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc},
		})
	}
	return m, nil
}

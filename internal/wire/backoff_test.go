package wire

import (
	"math"
	"testing"
	"time"
)

// TestJitterPerAttempt pins the reconnect backoff jitter contract:
// each attempt derives its own jitter fraction from (client seed,
// attempt counter) — deterministic for a pinned seed, distinct across
// attempts, uniform-bounded, and independent across clients. This is
// the regression fence for the lock-step retry-storm bug class where
// every attempt (or every client) reuses one jitter draw.
func TestJitterPerAttempt(t *testing.T) {
	const seed = 0x5eed
	// Deterministic: same (seed, attempt) → same fraction.
	for attempt := uint64(0); attempt < 8; attempt++ {
		a := jitterFor(seed, attempt)
		b := jitterFor(seed, attempt)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", attempt, a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("attempt %d: jitter %v outside [0,1)", attempt, a)
		}
	}
	// Distinct per attempt: consecutive attempts must not repeat the
	// draw (the storm failure mode).
	seen := map[float64]uint64{}
	for attempt := uint64(0); attempt < 64; attempt++ {
		u := jitterFor(seed, attempt)
		if prev, dup := seen[u]; dup {
			t.Fatalf("attempts %d and %d drew identical jitter %v", prev, attempt, u)
		}
		seen[u] = attempt
	}
	// Distinct per client: two clients with different seeds must not
	// trace the same jitter sequence.
	same := 0
	for attempt := uint64(0); attempt < 64; attempt++ {
		if jitterFor(seed, attempt) == jitterFor(seed+1, attempt) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 attempts drew identical jitter across different client seeds", same)
	}
	// Roughly uniform: the mean of many draws sits near 0.5.
	var sum float64
	const n = 4096
	for attempt := uint64(0); attempt < n; attempt++ {
		sum += jitterFor(seed, attempt)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("jitter mean %v far from 0.5 — not uniform", mean)
	}
}

// TestBackoffJitterBounds pins the backoff envelope: exponential growth
// capped at BackoffMax, with each delay inside [1-j, 1+j] of its base,
// and the sequence deterministic for a pinned client seed.
func TestBackoffJitterBounds(t *testing.T) {
	c := &Client{
		opts: ClientOptions{
			BackoffMin: 50 * time.Millisecond,
			BackoffMax: 5 * time.Second,
			Jitter:     0.2,
		},
		jitterSeed: 0xabc,
	}
	var first []time.Duration
	for fails := 0; fails < 10; fails++ {
		c.attempt = uint32(fails + 1)
		d := c.backoff(fails)
		base := c.opts.BackoffMin << uint(fails)
		if base > c.opts.BackoffMax || base <= 0 {
			base = c.opts.BackoffMax
		}
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if d < lo || d > hi {
			t.Fatalf("fails=%d: backoff %v outside jitter envelope [%v, %v]", fails, d, lo, hi)
		}
		first = append(first, d)
	}
	// Pinned seed → pinned sequence.
	for fails := 0; fails < 10; fails++ {
		c.attempt = uint32(fails + 1)
		if d := c.backoff(fails); d != first[fails] {
			t.Fatalf("fails=%d: backoff not deterministic for pinned seed: %v vs %v", fails, d, first[fails])
		}
	}
	// Same fails count on a later attempt draws different jitter (the
	// per-attempt property at the backoff level).
	c.attempt = 1
	a := c.backoff(3)
	c.attempt = 2
	b := c.backoff(3)
	if a == b {
		t.Fatalf("same fails, different attempts drew identical backoff %v", a)
	}
}

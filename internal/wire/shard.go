package wire

import "fmt"

// Shard routing/aggregation frames extend session protocol v2 for the
// distributed coordinator (internal/shard): a coordinator connects to a
// shard replica with the same Client it uses for agent traffic, streams
// the replica's share of the update stream as ordinary data frames, and
// uses these four frames to pull the replica's half of the answer back:
//
//   - a result-sub frame subscribes the connection to the replica's
//     live result stream (every deterministic early-detection result,
//     not just verdict flips), optionally filtered to a subspace set;
//   - result frames push those results back, riding the same ordered
//     connection as acks — a result caused by data frame seq=n is
//     always written before n's ack, so a client that has WaitAcked
//     has also observed every result its sends triggered;
//   - a fingerprint request/response pair fetches the replica's
//     per-subspace EC-model digests for one epoch, which the
//     coordinator merges across disjoint replicas into the fingerprint
//     a single-process run would report.
//
// Frame bodies (after the u32 length prefix):
//
//	result-sub [0x07][u16 n][n × u32 subspace]
//	result     [0x08][u32 subspace][u16-len epoch][u16-len check]
//	           [u8 verdict][u8 loop][u8 n][n × u64 witness]
//	fp-req     [0x09][u64 id][u16-len epoch]
//	fp-resp    [0x0A][u64 id][u16-len err][u32 n]
//	           [n × (u32 subspace, u16-len digest)]
//
// Verdict/loop codes are the flash package's Verdict and LoopResult
// values carried as opaque u8, exactly as in verdict frames.

// ResultEvent is one pushed early-detection result on the wire: the
// flash Result fields the coordinator needs to rebuild the verdict
// multiset (witness included so aggregated results stay printable).
type ResultEvent struct {
	Subspace int
	Epoch    string
	Check    string
	Verdict  uint8
	Loop     uint8
	Witness  []uint64
}

// FingerprintReply is a decoded fingerprint response. Err carries a
// server-side failure verbatim (empty on success); Parts maps global
// subspace index → per-subspace digest.
type FingerprintReply struct {
	ID    uint64
	Err   string
	Parts map[int]string
}

// appendResultSub encodes a result-sub frame body. An empty set
// subscribes to every subspace.
func appendResultSub(buf []byte, subspaces []int) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameResultSub)}
	if len(subspaces) > 0xFFFF {
		return nil, fmt.Errorf("wire: result subscription with %d subspaces", len(subspaces))
	}
	w.u16(uint16(len(subspaces)))
	for _, i := range subspaces {
		w.u32(uint32(i))
	}
	return w.buf, nil
}

// appendResult encodes a result frame body.
func appendResult(buf []byte, ev ResultEvent) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameResult)}
	w.u32(uint32(ev.Subspace))
	if err := w.str(ev.Epoch); err != nil {
		return nil, err
	}
	if err := w.str(ev.Check); err != nil {
		return nil, err
	}
	w.u8(ev.Verdict)
	w.u8(ev.Loop)
	if len(ev.Witness) > 0xFF {
		return nil, fmt.Errorf("wire: witness with %d fields", len(ev.Witness))
	}
	w.u8(uint8(len(ev.Witness)))
	for _, v := range ev.Witness {
		w.u64(v)
	}
	return w.buf, nil
}

// appendFpReq encodes a fingerprint request body.
func appendFpReq(buf []byte, id uint64, epoch string) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameFpReq)}
	w.u64(id)
	if err := w.str(epoch); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// appendFpResp encodes a fingerprint response body. Entries are written
// in ascending subspace order so the frame bytes are deterministic.
func appendFpResp(buf []byte, rep FingerprintReply, order []int) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameFpResp)}
	w.u64(rep.ID)
	if err := w.str(rep.Err); err != nil {
		return nil, err
	}
	w.u32(uint32(len(order)))
	for _, i := range order {
		w.u32(uint32(i))
		if err := w.str(rep.Parts[i]); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}
